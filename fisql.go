// Package fisql is the public API of the FISQL reproduction: an interactive
// framework that refines SQL generation through natural-language feedback
// and highlights, layered on an LLM-based NL2SQL assistant.
//
// The package wires together the building blocks under internal/ and
// exposes them through aliases, so downstream users program against one
// import path:
//
//	sys, _ := fisql.NewSpiderSystem()
//	sess := sys.Session("concert_singer", fisql.Options{Routing: true})
//	ans, _ := sess.Ask(ctx, "How many singers are there?")
//	ans, _ = sess.Feedback(ctx, "we are in 2024", nil)
//
// Two benchmark systems ship ready-made: the SPIDER-like open-domain corpus
// and the Experience-Platform closed-domain corpus, both served by a
// deterministic simulated LLM (see DESIGN.md for the substitution
// rationale). Plugging a real OpenAI-compatible client behind the Client
// interface swaps the simulation out without touching the pipeline.
package fisql

import (
	"fmt"
	"time"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/engine"
	"fisql/internal/eval"
	"fisql/internal/feedback"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/rag"
)

// Re-exported building blocks. The aliases keep one import path for users
// while the implementations live in internal packages.
type (
	// Client is the chat-completion interface the pipeline calls.
	Client = llm.Client
	// Sim is the deterministic simulated model.
	Sim = llm.Sim
	// Dataset is a benchmark corpus: schemas, databases, examples, demos.
	Dataset = dataset.Dataset
	// Example is one benchmark item.
	Example = dataset.Example
	// Assistant produces the four user-facing outputs of the paper's
	// Figure 4.
	Assistant = assistant.Assistant
	// Answer is the Assistant's response.
	Answer = assistant.Answer
	// Session is an interactive ask/feedback conversation.
	Session = core.Session
	// Corrector is a feedback-incorporation method.
	Corrector = core.Corrector
	// FISQL is the routed feedback pipeline (the paper's contribution).
	FISQL = core.FISQL
	// QueryRewrite is the rewrite-and-regenerate baseline.
	QueryRewrite = core.QueryRewrite
	// Feedback is one round of user feedback.
	Feedback = feedback.Feedback
	// Highlight grounds feedback to a span of the SQL text.
	Highlight = feedback.Highlight
	// Result is an executed query's result set.
	Result = engine.Result
	// Cache is a shared parse+plan cache for repeated query execution.
	Cache = engine.Cache
	// AnswerMemo is a shared cross-session cache of finished Answers with
	// singleflight collapsing of concurrent identical questions.
	AnswerMemo = assistant.AnswerMemo
	// Accuracy is a correct/total tally.
	Accuracy = eval.Accuracy
	// CorrectionResult is a method's multi-round correction outcome.
	CorrectionResult = eval.CorrectionResult
)

// System bundles a corpus with a model client and retrieval store.
type System struct {
	DS     *Dataset
	Client Client
	Store  *rag.Store
	// K is the number of retrieved demonstrations per prompt.
	K int
	// Cache is the system-wide parse+plan cache. Every Assistant (and thus
	// every session, including the server's) shares it, so concurrent users
	// asking the same questions — or one user iterating on feedback — reuse
	// each query's plan. Safe for concurrent use.
	Cache *Cache
	// Memo is the system-wide answer memo: fresh questions are pure in
	// (db, question), so every session shares finished Answers and a
	// thundering herd of identical questions runs the pipeline once
	// (singleflight). Feedback turns are never memoized — they depend on
	// per-session history. Set to nil before creating sessions when the
	// Client is non-deterministic (a real sampled LLM). Safe for concurrent
	// use.
	Memo *AnswerMemo
	// FoldFeedback makes every session fold its successful corrections back
	// into the retrieval store as new demonstrations (the store dedups), so
	// the demonstration library learns from live traffic. Leave off for
	// reproducing the paper's numbers — a growing pool shifts retrieval.
	FoldFeedback bool
}

// SetDemoIndex rebuilds the retrieval store over the corpus demonstrations
// with the named index ("exact" — the default linear scan — or "hnsw", the
// sublinear graph index with exact rerank). Call before creating assistants
// or sessions; they capture the store at construction.
func (s *System) SetDemoIndex(kind string) error {
	k, ok := rag.ParseIndexKind(kind)
	if !ok {
		return fmt.Errorf("unknown demo index %q (want %q or %q)", kind, rag.IndexExact, rag.IndexHNSW)
	}
	s.Store = rag.NewStoreOptions(s.DS.Demos, rag.Options{Index: k})
	return nil
}

// Observe registers the system's cache statistics on a metrics registry:
// plan-cache and answer-memo hit/miss counters plus live-entry gauges. The
// sources are the always-on atomic tallies the caches keep anyway, read at
// scrape time — the serving path pays nothing. Registering two systems
// (spider + aep) on one registry sums their series. A nil registry is a
// no-op.
func (s *System) Observe(r *obs.Registry) {
	if r == nil {
		return
	}
	if c := s.Cache; c != nil {
		r.CounterFunc("fisql_plan_cache_hits_total", func() int64 { h, _ := c.Stats(); return h })
		r.CounterFunc("fisql_plan_cache_misses_total", func() int64 { _, m := c.Stats(); return m })
		r.GaugeFunc("fisql_plan_cache_entries", func() int64 { return int64(c.Len()) })
	}
	if m := s.Memo; m != nil {
		r.CounterFunc("fisql_answer_memo_hits_total", func() int64 { h, _ := m.Stats(); return h })
		r.CounterFunc("fisql_answer_memo_misses_total", func() int64 { _, mi := m.Stats(); return mi })
		r.GaugeFunc("fisql_answer_memo_entries", func() int64 { return int64(m.Len()) })
	}
	if st := s.Store; st != nil {
		// Retrieval-store counters: search/hit volume, the feedback-fold
		// insert rate (inserts + dedup skips), live library size, and the
		// index-probe count that proves which index implementation is
		// actually serving (the CI differential gate reads the same source).
		r.CounterFunc("fisql_rag_searches_total", func() int64 { return st.Stats().Searches })
		r.CounterFunc("fisql_rag_hits_total", func() int64 { return st.Stats().Hits })
		r.CounterFunc("fisql_rag_inserts_total", func() int64 { return st.Stats().Inserts })
		r.CounterFunc("fisql_rag_dup_skips_total", func() int64 { return st.Stats().DupSkips })
		r.CounterFunc("fisql_rag_index_probes_total", func() int64 { return st.Stats().IndexProbes })
		r.GaugeFunc("fisql_rag_entries", func() int64 { return int64(st.Len()) })
		lat := r.Histogram("fisql_rag_search_seconds", nil)
		st.SetSearchObserver(func(d time.Duration) { lat.Observe(d) })
	}
	if b, ok := s.Client.(*llm.Batcher); ok {
		r.CounterFunc("fisql_llm_batch_calls_total", func() int64 { return b.Stats().Calls })
		r.CounterFunc("fisql_llm_batches_total", func() int64 { return b.Stats().Batches })
		r.CounterFunc("fisql_llm_batch_requests_total", func() int64 { return b.Stats().Batched })
		r.CounterFunc("fisql_llm_batch_dedup_total", func() int64 { return b.Stats().Deduped })
		r.CounterFunc("fisql_llm_batch_full_total", func() int64 { return b.Stats().FullFlushes })
		r.CounterFunc("fisql_llm_batch_deadline_total", func() int64 { return b.Stats().DeadlineFlushes })
		r.CounterFunc("fisql_llm_batch_abandoned_total", func() int64 { return b.Stats().AbandonedBatches })
		waits := r.Histogram("fisql_llm_batch_wait_seconds", nil)
		b.SetFlushObserver(func(_ int, wait time.Duration) { waits.Observe(wait) })
	}
	if s.DS != nil && len(s.DS.DBs) > 0 {
		// Engine columnar-execution counters, summed across the corpus's
		// databases (each Database keeps its own atomic tallies).
		dbs := make([]*engine.Database, 0, len(s.DS.DBs))
		for _, db := range s.DS.DBs {
			dbs = append(dbs, db)
		}
		r.CounterFunc("fisql_engine_columnar_hits_total", func() int64 {
			var n int64
			for _, db := range dbs {
				h, _ := db.ColumnarStats()
				n += h
			}
			return n
		})
		r.CounterFunc("fisql_engine_columnar_fallbacks_total", func() int64 {
			var n int64
			for _, db := range dbs {
				_, f := db.ColumnarStats()
				n += f
			}
			return n
		})
	}
}

// Options configures a session's correction method.
type Options struct {
	// Routing enables feedback-type identification (on in FISQL, off in
	// the -Routing ablation).
	Routing bool
	// Highlights forwards user highlight spans to the model.
	Highlights bool
	// DynamicDemos, when positive, selects that many routed repair
	// demonstrations by similarity to the feedback instead of the fixed
	// per-operation set (the paper's §5 routing extension).
	DynamicDemos int
}

// NewSpiderSystem builds the SPIDER-like benchmark served by the simulated
// model.
func NewSpiderSystem() (*System, error) { return NewSpiderSystemRows(1) }

// NewSpiderSystemRows builds the SPIDER-like benchmark with every database
// scaled to rows times its base row count (rows <= 1 is the standard
// corpus). Scaling deterministically appends table rows — questions, gold
// SQL and demonstrations are byte-identical at any multiplier — so it
// multiplies engine scan work; execution-match accuracy can shift slightly
// at scale because query results are computed over the extra rows.
func NewSpiderSystemRows(rows int) (*System, error) {
	ds, err := spider.BuildRows(rows)
	if err != nil {
		return nil, err
	}
	return NewSystem(ds, llm.NewSim(ds)), nil
}

// NewExperiencePlatformSystem builds the closed-domain Experience-Platform
// benchmark served by the simulated model.
func NewExperiencePlatformSystem() (*System, error) { return NewExperiencePlatformSystemRows(1) }

// NewExperiencePlatformSystemRows builds the Experience-Platform benchmark
// with the database scaled to rows times its base row count (rows <= 1 is
// the standard corpus).
func NewExperiencePlatformSystemRows(rows int) (*System, error) {
	ds, err := aep.BuildRows(rows)
	if err != nil {
		return nil, err
	}
	return NewSystem(ds, llm.NewSim(ds)), nil
}

// NewSystem assembles a system from a corpus and any Client (use a real API
// client in production, llm.NewSim for the offline benchmarks).
func NewSystem(ds *Dataset, client Client) *System {
	return &System{DS: ds, Client: client, Store: rag.NewStore(ds.Demos), K: 8,
		Cache: engine.NewCache(0), Memo: assistant.NewAnswerMemo(0)}
}

// Assistant returns the retrieval-augmented assistant over this system,
// sharing the system-wide plan cache and answer memo.
func (s *System) Assistant() *Assistant {
	return &assistant.Assistant{Client: s.Client, DS: s.DS, Store: s.Store, K: s.K,
		Cache: s.Cache, Memo: s.Memo}
}

// FISQL returns the feedback-incorporation pipeline with the given options.
func (s *System) FISQL(opt Options) *FISQL {
	return &core.FISQL{Client: s.Client, DS: s.DS, Store: s.Store, K: s.K,
		Routing: opt.Routing, Highlights: opt.Highlights, DynamicDemos: opt.DynamicDemos}
}

// QueryRewrite returns the rewrite baseline.
func (s *System) QueryRewrite() *QueryRewrite {
	return &core.QueryRewrite{Client: s.Client, DS: s.DS, Store: s.Store, K: s.K}
}

// Session opens an interactive conversation against one database. The
// default method is full FISQL (routing on, highlights on). When the system
// has FoldFeedback set, the session folds its successful corrections back
// into the shared retrieval store.
func (s *System) Session(db string, opt Options) *Session {
	sess := core.NewSession(s.Assistant(), s.FISQL(opt), db)
	if s.FoldFeedback {
		sess.FoldStore = s.Store
	}
	return sess
}

// Databases lists the corpus's database names in a stable order.
func (s *System) Databases() []string {
	out := make([]string, 0, len(s.DS.Schemas))
	for name := range s.DS.Schemas {
		out = append(out, name)
	}
	// Map order is random; sort for a stable CLI experience.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
