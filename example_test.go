package fisql_test

import (
	"context"
	"fmt"
	"log"

	"fisql"
)

// The paper's Figure 4 interaction: the Assistant misreads the implicit
// year, one line of feedback fixes it.
func Example() {
	sys, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	sess := sys.Session("experience_platform", fisql.Options{Routing: true})

	ans, _ := sess.Ask(ctx, "How many audiences were created in January?")
	fmt.Println(ans.SQL)

	ans, _ = sess.Feedback(ctx, "we are in 2024", nil)
	fmt.Println(ans.SQL)
	// Output:
	// SELECT COUNT(*) AS createdCount FROM hkg_dim_segment WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'
	// SELECT COUNT(*) AS createdCount FROM hkg_dim_segment WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'
}

// Comparing correction methods on the same error: FISQL edits the query in
// place; the rewrite baseline regenerates from a merged question.
func ExampleSystem_FISQL() {
	sys, err := fisql.NewExperiencePlatformSystem()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	method := sys.FISQL(fisql.Options{Routing: true})
	fixed, _ := method.Correct(ctx, "experience_platform",
		"How many audiences were created in January?",
		"SELECT COUNT(*) AS createdCount FROM hkg_dim_segment WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
		fisql.Feedback{Text: "we are in 2024"})
	fmt.Println(fixed)
	// Output:
	// SELECT COUNT(*) AS createdCount FROM hkg_dim_segment WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'
}

// Every answer carries the paper's four Assistant outputs.
func ExampleAssistant() {
	sys, err := fisql.NewSpiderSystem()
	if err != nil {
		log.Fatal(err)
	}
	a := sys.Assistant()
	ans := a.Answer(context.Background(), "concert_singer", "SELECT COUNT(*) FROM singer WHERE age > 40")
	fmt.Println(ans.Reformulation)
	for _, step := range ans.Explanation {
		fmt.Println("-", step)
	}
	// Output:
	// Finds the count of rows from singer where the age is greater than 40.
	// - First, consider all the singer.
	// - Then, keep only those where the age is greater than 40.
	// - Finally, return the count of rows.
}
