package eval

import (
	"context"
	"strings"
	"testing"

	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/rag"
)

func TestAnalyzeCorrectionSpider(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	res, _, err := RunGeneration(ctx, w.client, w.spider, 8)
	if err != nil {
		t.Fatal(err)
	}
	store := rag.NewStore(w.spider.Demos)
	method := &core.FISQL{Client: w.client, DS: w.spider, Store: store, K: 8, Routing: true}
	a, err := AnalyzeCorrection(ctx, method, w.spider, Errors(res))
	if err != nil {
		t.Fatal(err)
	}
	if a.N != 101 {
		t.Fatalf("n: %d", a.N)
	}
	// The attribution must reproduce the corpus quotas: 45 corrected, 20
	// multi-error, 16 uninterpretable, 20 misaligned, 0 edit-failures
	// (routing resolves the ambiguous one).
	want := map[Cause]int{
		CauseCorrected:       45,
		CauseMultiError:      20,
		CauseUninterpretable: 16,
		CauseMisaligned:      20,
		CauseEditFailed:      0,
	}
	for cause, n := range want {
		if a.Counts[cause] != n {
			t.Errorf("%v: got %d, want %d", cause, a.Counts[cause], n)
		}
	}

	// Without routing, exactly one extra failure shifts into the
	// edit-misapplied bucket (the op-ambiguous feedback).
	noRouting := &core.FISQL{Client: w.client, DS: w.spider, Store: store, K: 8, Routing: false}
	a2, err := AnalyzeCorrection(ctx, noRouting, w.spider, Errors(res))
	if err != nil {
		t.Fatal(err)
	}
	if a2.Counts[CauseEditFailed] != 1 || a2.Counts[CauseCorrected] != 44 {
		t.Errorf("no-routing analysis: corrected=%d editFailed=%d",
			a2.Counts[CauseCorrected], a2.Counts[CauseEditFailed])
	}
}

func TestPrintAnalysis(t *testing.T) {
	var sb strings.Builder
	PrintAnalysis(&sb, Analysis{Method: "FISQL", N: 101, Counts: map[Cause]int{
		CauseCorrected: 45, CauseMultiError: 20,
	}})
	out := sb.String()
	for _, want := range []string{"FISQL", "corrected", "multiple errors (a)", "45", "20"} {
		if !strings.Contains(out, want) {
			t.Errorf("analysis output missing %q:\n%s", want, out)
		}
	}
}

func TestRouterReport(t *testing.T) {
	w := getWorld(t)
	routed := RunRouterReport(w.spider, ClassifierRouted)
	naive := RunRouterReport(w.spider, ClassifierNaive)
	if routed.Total != 101 || naive.Total != 101 {
		t.Fatalf("totals: %d, %d", routed.Total, naive.Total)
	}
	if routed.Accuracy() <= naive.Accuracy() {
		t.Errorf("router should beat the naive classifier: %.1f vs %.1f",
			routed.Accuracy(), naive.Accuracy())
	}
	// The single designed confusion: the naive classifier reads the
	// dedup request (true Add) as a Remove.
	if naive.Confusion[dataset.OpAdd][dataset.OpRemove] == 0 {
		t.Error("expected the Add→Remove confusion in the naive matrix")
	}
	if routed.Confusion[dataset.OpAdd][dataset.OpRemove] != 0 {
		t.Error("router should not confuse dedup requests")
	}
	var sb strings.Builder
	PrintRouterReport(&sb, "router", routed)
	if !strings.Contains(sb.String(), "true\\pred") {
		t.Errorf("report header missing:\n%s", sb.String())
	}
}
