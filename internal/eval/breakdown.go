package eval

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/llm"
)

// Per-trap-kind correction breakdown and per-method cost accounting —
// analysis beyond the paper's headline tables.

// KindBreakdown tallies correction outcomes per trap kind.
type KindBreakdown struct {
	Method string
	// Rows maps trap kind → (corrected, total) over single-trap annotated
	// errors (multi-trap examples are reported under "multi").
	Rows map[string]Accuracy
}

// RunKindBreakdown runs one feedback round per annotated error and buckets
// the outcome by the trap kind the feedback targeted.
func RunKindBreakdown(ctx context.Context, corrector core.Corrector, ds *dataset.Dataset, errs []GenResult) (KindBreakdown, error) {
	annot := NewAnnotator(ds)
	out := KindBreakdown{Method: corrector.Name(), Rows: map[string]Accuracy{}}
	for _, ge := range errs {
		e := ge.Example
		fb, ok := annot.Annotate(e, ge.SQL, 1, false)
		if !ok {
			continue
		}
		key := "multi"
		if len(e.Traps) == 1 {
			key = e.Traps[0].Kind.String()
		}
		row := out.Rows[key]
		row.Total++
		next, err := corrector.Correct(ctx, e.DB, e.Question, ge.SQL, fb)
		if err != nil {
			return KindBreakdown{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		if Match(ds.DBs[e.DB], e.Gold, next) {
			row.Correct++
		}
		out.Rows[key] = row
	}
	return out, nil
}

// PrintKindBreakdown renders the per-kind table, sorted by kind name.
func PrintKindBreakdown(w io.Writer, b KindBreakdown) {
	fmt.Fprintf(w, "Correction rate by error kind — %s\n", b.Method)
	fmt.Fprintln(w, strings.Repeat("-", 52))
	keys := make([]string, 0, len(b.Rows))
	for k := range b.Rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		row := b.Rows[k]
		fmt.Fprintf(w, "%-22s %3d/%-3d (%5.1f%%)\n", k, row.Correct, row.Total, row.Pct())
	}
}

// ----------------------------------------------------------------------------
// Cost accounting

// Cost reports a method's LLM usage over one correction run.
type Cost struct {
	Method           string
	Instances        int
	Calls            int
	PromptTokens     int
	CompletionTokens int
}

// CallsPerInstance returns the average LLM calls per feedback instance.
func (c Cost) CallsPerInstance() float64 {
	if c.Instances == 0 {
		return 0
	}
	return float64(c.Calls) / float64(c.Instances)
}

// MeasureCost wraps the corrector-builder with metering and runs one
// correction round, reporting usage. build receives the metered client and
// must construct the method over it.
func MeasureCost(ctx context.Context, client llm.Client, ds *dataset.Dataset,
	errs []GenResult, build func(llm.Client) core.Corrector) (Cost, CorrectionResult, error) {
	stats := &llm.Stats{}
	metered := &llm.Metered{Inner: client, Stats: stats}
	method := build(metered)
	res, err := RunCorrection(ctx, method, ds, errs, CorrectionOptions{Rounds: 1})
	if err != nil {
		return Cost{}, CorrectionResult{}, err
	}
	pt, ct := stats.Tokens()
	return Cost{
		Method:           method.Name(),
		Instances:        res.N,
		Calls:            stats.Calls(),
		PromptTokens:     pt,
		CompletionTokens: ct,
	}, res, nil
}

// PrintCosts renders the method-cost comparison.
func PrintCosts(w io.Writer, costs []Cost) {
	fmt.Fprintln(w, "LLM cost per correction round")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	fmt.Fprintf(w, "%-22s %6s %12s %14s %12s\n", "Method", "calls", "calls/inst", "prompt toks", "compl toks")
	for _, c := range costs {
		fmt.Fprintf(w, "%-22s %6d %12.2f %14d %12d\n",
			c.Method, c.Calls, c.CallsPerInstance(), c.PromptTokens, c.CompletionTokens)
	}
}
