package eval

import (
	"strings"
	"testing"
)

func TestPrintFigure2(t *testing.T) {
	var sb strings.Builder
	PrintFigure2(&sb, Accuracy{Correct: 709, Total: 1034}, Accuracy{Correct: 48, Total: 200})
	out := sb.String()
	for _, want := range []string{"Figure 2", "SPIDER", "Experience Platform", "68.6%", "24.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintSection41(t *testing.T) {
	var sb strings.Builder
	PrintSection41(&sb, "SPIDER", Accuracy{Correct: 791, Total: 1034}, 243, 101)
	out := sb.String()
	for _, want := range []string{"SPIDER error collection", "243", "101", "42%"} {
		if !strings.Contains(out, want) {
			t.Errorf("§4.1 output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintTable2RendersDashes(t *testing.T) {
	var sb strings.Builder
	PrintTable2(&sb, "Table 2", []Table2Row{
		{Method: "Query Rewrite", AEP: 35.85, Spider: 16.83},
		{Method: "FISQL (- Routing)", AEP: -1, Spider: 43.56},
		{Method: "FISQL", AEP: 67.92, Spider: 44.55},
	})
	out := sb.String()
	for _, want := range []string{"35.85", "16.83", "43.56", "67.92", "44.55"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q:\n%s", want, out)
		}
	}
	// The paper leaves FISQL(-Routing) unmeasured on AEP: a dash, never a
	// negative number.
	if strings.Contains(out, "-1") {
		t.Errorf("negative sentinel leaked:\n%s", out)
	}
	var dashRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "- Routing") {
			dashRow = line
		}
	}
	if !strings.Contains(dashRow, " - ") && !strings.HasSuffix(strings.Fields(dashRow)[3], "-") {
		// The AEP column for the ablation renders as "-".
		fields := strings.Fields(dashRow)
		found := false
		for _, f := range fields {
			if f == "-" {
				found = true
			}
		}
		if !found {
			t.Errorf("ablation row lacks dash: %q", dashRow)
		}
	}
}

func TestPrintFigure8(t *testing.T) {
	var sb strings.Builder
	PrintFigure8(&sb, []CorrectionResult{
		{Method: "FISQL", N: 101, CumCorrected: []int{45, 60}},
		{Method: "FISQL (- Routing)", N: 101, CumCorrected: []int{44, 60}},
	})
	out := sb.String()
	for _, want := range []string{"Figure 8", "round 1", "round 2", "44.55%", "59.41%", "43.56%"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 8 output missing %q:\n%s", want, out)
		}
	}
}
