package eval

import (
	"context"
	"testing"

	"fisql/internal/core"
	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/llm"
	"fisql/internal/rag"
)

// TestShapeHoldsAcrossSeeds rebuilds both corpora from a different seed and
// re-runs the headline comparisons. The quotas fix the *statistics*; this
// test checks the *shape* — who wins and by roughly what factor — is a
// property of the mechanisms, not of one lucky corpus instance.
func TestShapeHoldsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-seed rebuild is slow")
	}
	sp, err := spider.BuildSeed(4242)
	if err != nil {
		t.Fatalf("spider: %v", err)
	}
	ae, err := aep.BuildSeed(4242)
	if err != nil {
		t.Fatalf("aep: %v", err)
	}
	client := llm.NewSim(sp, ae)
	ctx := context.Background()

	// Figure 2 shape: the zero-shot accuracies are fixed by the quotas.
	_, spAcc, err := RunGeneration(ctx, client, sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, aeAcc, err := RunGeneration(ctx, client, ae, 0)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "SPIDER zero-shot (seed 4242)", spAcc.Pct(), 68.6, 1.0)
	near(t, "AEP zero-shot (seed 4242)", aeAcc.Pct(), 24.0, 1.0)

	// Table 2 / Figure 8 shape on SPIDER: QR ≪ -Routing ≤ FISQL with a
	// roughly 2x FISQL-over-QR gap and a double-digit round-2 gain.
	spRes, _, err := RunGeneration(ctx, client, sp, 8)
	if err != nil {
		t.Fatal(err)
	}
	errs := Errors(spRes)
	store := rag.NewStore(sp.Demos)
	qrM := &core.QueryRewrite{Client: client, DS: sp, Store: store, K: 8}
	nrM := &core.FISQL{Client: client, DS: sp, Store: store, K: 8, Routing: false}
	fiM := &core.FISQL{Client: client, DS: sp, Store: store, K: 8, Routing: true}

	qr, err := RunCorrection(ctx, qrM, sp, errs, CorrectionOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := RunCorrection(ctx, nrM, sp, errs, CorrectionOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := RunCorrection(ctx, fiM, sp, errs, CorrectionOptions{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(qr.Pct(1) < nr.Pct(1) && nr.Pct(1) <= fi.Pct(1)) {
		t.Errorf("ordering broken: QR %.1f, -Routing %.1f, FISQL %.1f",
			qr.Pct(1), nr.Pct(1), fi.Pct(1))
	}
	if ratio := fi.Pct(1) / qr.Pct(1); ratio < 1.8 {
		t.Errorf("FISQL should correct ~2x the QR instances; ratio %.2f", ratio)
	}
	if gain := fi.Pct(2) - fi.Pct(1); gain < 10 {
		t.Errorf("round-2 gain should be double digits, got %.1f", gain)
	}
}
