package eval

import (
	"context"
	"errors"
	"testing"

	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/feedback"
)

func matchDB(t *testing.T) *engine.Database {
	t.Helper()
	db := engine.NewDatabase("m")
	if err := db.LoadScript(`
CREATE TABLE t (id INT, name TEXT, age INT);
INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20), (3, 'c', 30);`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMatchSemantics(t *testing.T) {
	db := matchDB(t)
	tests := []struct {
		gold, pred string
		want       bool
	}{
		{"SELECT name FROM t", "SELECT name FROM t", true},
		// Equivalent but differently written predicates.
		{"SELECT name FROM t WHERE age > 15", "SELECT name FROM t WHERE age >= 20", true},
		{"SELECT name FROM t", "SELECT name FROM t WHERE age > 15", false},
		// Ordered gold vs unordered prediction that happens to coincide.
		{"SELECT name FROM t ORDER BY age ASC", "SELECT name FROM t", true},
		{"SELECT name FROM t ORDER BY age DESC", "SELECT name FROM t", false},
		// Broken predictions never match.
		{"SELECT name FROM t", "NOT SQL", false},
		{"SELECT name FROM t", "SELECT missing FROM t", false},
	}
	for _, tc := range tests {
		if got := Match(db, tc.gold, tc.pred); got != tc.want {
			t.Errorf("Match(%q, %q) = %v, want %v", tc.gold, tc.pred, got, tc.want)
		}
	}
}

func TestMatchBrokenGold(t *testing.T) {
	db := matchDB(t)
	if Match(db, "NOT SQL", "SELECT name FROM t") {
		t.Error("broken gold cannot match")
	}
}

func TestAccuracyPct(t *testing.T) {
	if (Accuracy{}).Pct() != 0 {
		t.Error("empty accuracy should be 0")
	}
	a := Accuracy{Correct: 3, Total: 4}
	if a.Pct() != 75 {
		t.Errorf("pct: %v", a.Pct())
	}
	if a.String() != "3/4 (75.0%)" {
		t.Errorf("string: %q", a.String())
	}
}

func TestErrorsFilter(t *testing.T) {
	in := []GenResult{
		{Correct: true},
		{Correct: false},
		{Correct: false},
	}
	if got := len(Errors(in)); got != 2 {
		t.Errorf("errors: %d", got)
	}
}

func TestCorrectionResultPct(t *testing.T) {
	r := CorrectionResult{N: 50, CumCorrected: []int{10, 25}}
	if r.Pct(1) != 20 || r.Pct(2) != 50 {
		t.Errorf("pct: %v, %v", r.Pct(1), r.Pct(2))
	}
	if r.Pct(0) != 0 || r.Pct(3) != 0 {
		t.Error("out-of-range rounds should be 0")
	}
	if (CorrectionResult{}).Pct(1) != 0 {
		t.Error("empty result should be 0")
	}
}

// failingCorrector always errors.
type failingCorrector struct{}

func (failingCorrector) Name() string { return "failing" }
func (failingCorrector) Correct(context.Context, string, string, string, feedback.Feedback) (string, error) {
	return "", errors.New("boom")
}

// identityCorrector returns the SQL unchanged.
type identityCorrector struct{}

func (identityCorrector) Name() string { return "identity" }
func (identityCorrector) Correct(_ context.Context, _ string, _ string, prev string, _ feedback.Feedback) (string, error) {
	return prev, nil
}

// oracleCorrector returns the gold SQL, looked up from the example set.
type oracleCorrector struct{ ds *dataset.Dataset }

func (oracleCorrector) Name() string { return "oracle" }
func (o oracleCorrector) Correct(_ context.Context, _ string, question string, prev string, _ feedback.Feedback) (string, error) {
	e, ok := o.ds.ExampleByQuestion(question)
	if !ok {
		return prev, nil
	}
	return e.Gold, nil
}

var _ core.Corrector = failingCorrector{}

func TestRunCorrectionPropagatesErrors(t *testing.T) {
	w := getWorld(t)
	res, _, err := RunGeneration(context.Background(), w.client, w.aep, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCorrection(context.Background(), failingCorrector{}, w.aep, Errors(res), CorrectionOptions{Rounds: 1})
	if err == nil {
		t.Fatal("corrector error must propagate")
	}
}

func TestRunCorrectionBounds(t *testing.T) {
	w := getWorld(t)
	res, _, err := RunGeneration(context.Background(), w.client, w.aep, 8)
	if err != nil {
		t.Fatal(err)
	}
	errs := Errors(res)

	// Identity corrector fixes nothing.
	out, err := RunCorrection(context.Background(), identityCorrector{}, w.aep, errs, CorrectionOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.CumCorrected[0] != 0 {
		t.Errorf("identity corrected %d", out.CumCorrected[0])
	}
	if out.N != 53 || out.Skipped != 1 {
		t.Errorf("N=%d skipped=%d", out.N, out.Skipped)
	}

	// Oracle corrector fixes every annotated error in round 1.
	out, err = RunCorrection(context.Background(), oracleCorrector{ds: w.aep}, w.aep, errs, CorrectionOptions{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.CumCorrected[0] != out.N {
		t.Errorf("oracle corrected %d of %d", out.CumCorrected[0], out.N)
	}
}

func TestRunCorrectionRoundsDefault(t *testing.T) {
	w := getWorld(t)
	res, _, err := RunGeneration(context.Background(), w.client, w.aep, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunCorrection(context.Background(), identityCorrector{}, w.aep, Errors(res), CorrectionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.CumCorrected) != 1 {
		t.Errorf("rounds should default to 1, got %d", len(out.CumCorrected))
	}
}

func TestAnnotatorPhrases(t *testing.T) {
	w := getWorld(t)
	a := NewAnnotator(w.spider)
	if p := a.ColumnPhrase("singer", "song_name"); p != "song name" {
		t.Errorf("column phrase: %q", p)
	}
	if p := a.ColumnPhrase("", "song_name"); p != "song name" {
		t.Errorf("unqualified column phrase: %q", p)
	}
	if p := a.TablePhrase("singer"); p != "singers" {
		t.Errorf("table phrase: %q", p)
	}
	if p := a.TablePhrase("nope"); p != "" {
		t.Errorf("unknown table phrase: %q", p)
	}
}
