package eval

import (
	"fmt"
	"io"
	"strings"
)

// Report renders the paper's tables and figures from measured results. Each
// printer emits the same rows/series the paper reports, so `fisql-eval` and
// the benchmarks regenerate recognizable artifacts.

// PrintFigure2 renders the zero-shot accuracy comparison (Figure 2).
func PrintFigure2(w io.Writer, spiderAcc, aepAcc Accuracy) {
	fmt.Fprintln(w, "Figure 2 — Zero-shot NL2SQL accuracy")
	fmt.Fprintln(w, strings.Repeat("-", 44))
	fmt.Fprintf(w, "%-24s %s\n", "SPIDER", bar(spiderAcc.Pct()))
	fmt.Fprintf(w, "%-24s %s\n", "Experience Platform", bar(aepAcc.Pct()))
	fmt.Fprintf(w, "\nSPIDER: %s   Experience Platform: %s\n", spiderAcc, aepAcc)
}

func bar(pct float64) string {
	n := int(pct / 2)
	return fmt.Sprintf("%s %.1f%%", strings.Repeat("#", n), pct)
}

// PrintSection41 renders the error-collection statistics of §4.1.
func PrintSection41(w io.Writer, name string, acc Accuracy, errors, annotated int) {
	fmt.Fprintf(w, "§4.1 — %s error collection\n", name)
	fmt.Fprintln(w, strings.Repeat("-", 44))
	fmt.Fprintf(w, "one-shot accuracy:  %s\n", acc)
	fmt.Fprintf(w, "one-shot errors:    %d\n", errors)
	fmt.Fprintf(w, "annotated errors:   %d (%.0f%% of errors)\n",
		annotated, 100*float64(annotated)/float64(max(errors, 1)))
}

// Table2Row is one method's row for Table 2 / Table 3.
type Table2Row struct {
	Method string
	// AEP and Spider are %-instances-corrected; a negative value renders
	// as "-" (the paper leaves FISQL(-Routing) unmeasured on AEP).
	AEP, Spider float64
}

// PrintTable2 renders a Table 2 / Table 3 style comparison.
func PrintTable2(w io.Writer, title string, rows []Table2Row) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("-", 62))
	fmt.Fprintf(w, "%-22s %20s %16s\n", "Method", "% Corrected (AEP)", "% (SPIDER)")
	for _, r := range rows {
		aep := "-"
		if r.AEP >= 0 {
			aep = fmt.Sprintf("%.2f", r.AEP)
		}
		sp := "-"
		if r.Spider >= 0 {
			sp = fmt.Sprintf("%.2f", r.Spider)
		}
		fmt.Fprintf(w, "%-22s %20s %16s\n", r.Method, aep, sp)
	}
}

// PrintFigure8 renders the multi-round correction series (Figure 8).
func PrintFigure8(w io.Writer, results []CorrectionResult) {
	fmt.Fprintln(w, "Figure 8 — % instances corrected per feedback round (SPIDER)")
	fmt.Fprintln(w, strings.Repeat("-", 62))
	for _, r := range results {
		fmt.Fprintf(w, "%-22s", r.Method)
		for round := 1; round <= len(r.CumCorrected); round++ {
			fmt.Fprintf(w, "  round %d: %6.2f%%", round, r.Pct(round))
		}
		fmt.Fprintln(w)
	}
}
