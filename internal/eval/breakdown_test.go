package eval

import (
	"context"
	"strings"
	"testing"

	"fisql/internal/core"
	"fisql/internal/llm"
	"fisql/internal/rag"
)

func TestKindBreakdownSpider(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	res, _, err := RunGeneration(ctx, w.client, w.spider, 8)
	if err != nil {
		t.Fatal(err)
	}
	store := rag.NewStore(w.spider.Demos)
	method := &core.FISQL{Client: w.client, DS: w.spider, Store: store, K: 8, Routing: true}
	b, err := RunKindBreakdown(ctx, method, w.spider, Errors(res))
	if err != nil {
		t.Fatal(err)
	}
	var total, corrected int
	for _, row := range b.Rows {
		total += row.Total
		corrected += row.Correct
	}
	if total != 101 {
		t.Errorf("total: %d", total)
	}
	if corrected != 45 {
		t.Errorf("corrected: %d", corrected)
	}
	// Multi-trap examples never complete in one round.
	if multi := b.Rows["multi"]; multi.Total != 20 || multi.Correct != 0 {
		t.Errorf("multi bucket: %+v", multi)
	}
	var sb strings.Builder
	PrintKindBreakdown(&sb, b)
	if !strings.Contains(sb.String(), "multi") {
		t.Errorf("printout missing multi row:\n%s", sb.String())
	}
}

func TestMeasureCost(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	res, _, err := RunGeneration(ctx, w.client, w.spider, 8)
	if err != nil {
		t.Fatal(err)
	}
	errs := Errors(res)
	store := rag.NewStore(w.spider.Demos)

	fisqlCost, fisqlRes, err := MeasureCost(ctx, w.client, w.spider, errs, func(c llm.Client) core.Corrector {
		return &core.FISQL{Client: c, DS: w.spider, Store: store, K: 8, Routing: true}
	})
	if err != nil {
		t.Fatal(err)
	}
	noRouteCost, _, err := MeasureCost(ctx, w.client, w.spider, errs, func(c llm.Client) core.Corrector {
		return &core.FISQL{Client: c, DS: w.spider, Store: store, K: 8, Routing: false}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fisqlRes.N != 101 {
		t.Fatalf("instances: %d", fisqlRes.N)
	}
	// Routing costs exactly one extra LLM call per instance.
	if got := fisqlCost.CallsPerInstance() - noRouteCost.CallsPerInstance(); got < 0.99 || got > 1.01 {
		t.Errorf("routing call overhead: %.2f calls/instance, want ~1", got)
	}
	if fisqlCost.PromptTokens <= noRouteCost.PromptTokens {
		t.Error("routing should add prompt tokens (router prompt + demos)")
	}
	var sb strings.Builder
	PrintCosts(&sb, []Cost{fisqlCost, noRouteCost})
	if !strings.Contains(sb.String(), "calls/inst") {
		t.Errorf("cost printout malformed:\n%s", sb.String())
	}
}
