package eval

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestExportRoundtrip(t *testing.T) {
	e := NewExport()
	e.Figure2["spider"] = AccJSON(Accuracy{Correct: 709, Total: 1034})
	e.Errors["spider"] = ErrorStatsJSON{
		OneShotAccuracy: AccJSON(Accuracy{Correct: 791, Total: 1034}),
		Errors:          243, Annotated: 101,
	}
	e.AddCorrection("spider", CorrectionResult{
		Method: "FISQL", N: 101, CumCorrected: []int{45, 60}, Skipped: 142,
	})

	var sb strings.Builder
	if err := e.Write(&sb); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Figure2["spider"].Correct != 709 {
		t.Errorf("figure2: %+v", back.Figure2)
	}
	c := back.Corrections["spider/FISQL"]
	if c.N != 101 || len(c.PctByRound) != 2 {
		t.Errorf("correction: %+v", c)
	}
	if c.PctByRound[0] < 44 || c.PctByRound[0] > 45 {
		t.Errorf("round-1 pct: %v", c.PctByRound[0])
	}
	if c.PctByRound[1] < 59 || c.PctByRound[1] > 60 {
		t.Errorf("round-2 pct: %v", c.PctByRound[1])
	}
}
