package eval

import (
	"context"
	"math"
	"sync"
	"testing"

	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/llm"
	"fisql/internal/rag"
)

// The calibration tests run the full pipeline end-to-end — real prompts,
// real retrieval, real simulated-model parsing, real execution-accuracy —
// and compare against the paper's reported numbers (see EXPERIMENTS.md).

type world struct {
	spider *dataset.Dataset
	aep    *dataset.Dataset
	client llm.Client
}

var (
	worldOnce sync.Once
	theWorld  *world
	worldErr  error
)

func getWorld(t *testing.T) *world {
	t.Helper()
	worldOnce.Do(func() {
		sp, err := spider.Build()
		if err != nil {
			worldErr = err
			return
		}
		ae, err := aep.Build()
		if err != nil {
			worldErr = err
			return
		}
		theWorld = &world{spider: sp, aep: ae, client: llm.NewSim(sp, ae)}
	})
	if worldErr != nil {
		t.Fatalf("world: %v", worldErr)
	}
	return theWorld
}

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.2f, want %.2f (±%.1f)", name, got, want, tol)
	}
}

func TestFigure2ZeroShotAccuracy(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	_, spAcc, err := RunGeneration(ctx, w.client, w.spider, 0)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "SPIDER zero-shot accuracy", spAcc.Pct(), 68.6, 1.0)

	_, aepAcc, err := RunGeneration(ctx, w.client, w.aep, 0)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "AEP zero-shot accuracy", aepAcc.Pct(), 24.0, 1.0)
}

func TestSection41ErrorCollection(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	spRes, spAcc, err := RunGeneration(ctx, w.client, w.spider, 8)
	if err != nil {
		t.Fatal(err)
	}
	spErrs := Errors(spRes)
	if len(spErrs) != 243 {
		t.Errorf("SPIDER Assistant errors: %d, want 243", len(spErrs))
	}
	if spAcc.Correct != 1034-243 {
		t.Errorf("SPIDER Assistant accuracy: %v", spAcc)
	}
	annotated := 0
	for _, ge := range spErrs {
		if ge.Example.Annotatable {
			annotated++
		}
	}
	if annotated != 101 {
		t.Errorf("annotated SPIDER errors: %d, want 101", annotated)
	}

	aepRes, _, err := RunGeneration(ctx, w.client, w.aep, 8)
	if err != nil {
		t.Fatal(err)
	}
	aepErrs := Errors(aepRes)
	if len(aepErrs) != 54 {
		t.Errorf("AEP Assistant errors: %d, want 54", len(aepErrs))
	}
}

// table2 computes one cell of Table 2 / Figure 8 / Table 3.
func runMethod(t *testing.T, w *world, ds *dataset.Dataset, method core.Corrector, rounds int, highlights bool) CorrectionResult {
	t.Helper()
	ctx := context.Background()
	res, _, err := RunGeneration(ctx, w.client, ds, 8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunCorrection(ctx, method, ds, Errors(res), CorrectionOptions{Rounds: rounds, Highlights: highlights})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func methods(w *world, ds *dataset.Dataset) (fisql, noRouting *core.FISQL, qr *core.QueryRewrite) {
	store := rag.NewStore(ds.Demos)
	fisql = &core.FISQL{Client: w.client, DS: ds, Store: store, K: 8, Routing: true}
	noRouting = &core.FISQL{Client: w.client, DS: ds, Store: store, K: 8, Routing: false}
	qr = &core.QueryRewrite{Client: w.client, DS: ds, Store: store, K: 8}
	return
}

func TestTable2Spider(t *testing.T) {
	w := getWorld(t)
	fisql, noRouting, qr := methods(w, w.spider)

	r := runMethod(t, w, w.spider, qr, 1, false)
	if r.N != 101 {
		t.Fatalf("annotated N: %d, want 101", r.N)
	}
	near(t, "Query Rewrite SPIDER", r.Pct(1), 16.83, 0.5)

	r = runMethod(t, w, w.spider, noRouting, 1, false)
	near(t, "FISQL(-Routing) SPIDER", r.Pct(1), 43.56, 0.5)

	r = runMethod(t, w, w.spider, fisql, 1, false)
	near(t, "FISQL SPIDER", r.Pct(1), 44.55, 0.5)
}

func TestTable2AEP(t *testing.T) {
	w := getWorld(t)
	fisql, _, qr := methods(w, w.aep)

	r := runMethod(t, w, w.aep, qr, 1, false)
	if r.N != 53 {
		t.Fatalf("annotated N: %d, want 53", r.N)
	}
	near(t, "Query Rewrite AEP", r.Pct(1), 35.85, 0.5)

	r = runMethod(t, w, w.aep, fisql, 1, false)
	near(t, "FISQL AEP", r.Pct(1), 67.92, 0.5)
}

func TestFigure8FeedbackRounds(t *testing.T) {
	w := getWorld(t)
	fisql, noRouting, _ := methods(w, w.spider)

	rf := runMethod(t, w, w.spider, fisql, 2, false)
	near(t, "FISQL SPIDER round 1", rf.Pct(1), 44.55, 0.5)
	near(t, "FISQL SPIDER round 2", rf.Pct(2), 59.41, 0.5)

	rn := runMethod(t, w, w.spider, noRouting, 2, false)
	near(t, "FISQL(-Routing) SPIDER round 1", rn.Pct(1), 43.56, 0.5)
	near(t, "FISQL(-Routing) SPIDER round 2", rn.Pct(2), 59.41, 0.5)

	if rf.CumCorrected[1] != rn.CumCorrected[1] {
		t.Errorf("after 2 rounds FISQL(-Routing) should have corrected the same errors: %d vs %d",
			rn.CumCorrected[1], rf.CumCorrected[1])
	}
}

func TestTable3Highlighting(t *testing.T) {
	w := getWorld(t)
	fisqlAEP, _, _ := methods(w, w.aep)
	fisqlAEP.Highlights = true
	r := runMethod(t, w, w.aep, fisqlAEP, 1, true)
	near(t, "FISQL(+Highlighting) AEP", r.Pct(1), 69.81, 0.5)

	fisqlSp, _, _ := methods(w, w.spider)
	fisqlSp.Highlights = true
	rs := runMethod(t, w, w.spider, fisqlSp, 1, true)
	near(t, "FISQL(+Highlighting) SPIDER", rs.Pct(1), 44.55, 0.5)
}
