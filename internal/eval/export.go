package eval

import (
	"encoding/json"
	"io"
)

// Machine-readable experiment export, for dashboards or regression tracking
// alongside the human-readable report printers.

// Export is the serialized form of a full evaluation run.
type Export struct {
	// Figure2 holds zero-shot accuracies by corpus name.
	Figure2 map[string]AccuracyJSON `json:"figure2,omitempty"`
	// Errors holds the §4.1 error-collection statistics by corpus name.
	Errors map[string]ErrorStatsJSON `json:"errors,omitempty"`
	// Corrections holds correction results keyed "<corpus>/<method>".
	Corrections map[string]CorrectionJSON `json:"corrections,omitempty"`
}

// AccuracyJSON serializes an Accuracy.
type AccuracyJSON struct {
	Correct int     `json:"correct"`
	Total   int     `json:"total"`
	Pct     float64 `json:"pct"`
}

// ErrorStatsJSON serializes §4.1 statistics.
type ErrorStatsJSON struct {
	OneShotAccuracy AccuracyJSON `json:"one_shot_accuracy"`
	Errors          int          `json:"errors"`
	Annotated       int          `json:"annotated"`
}

// CorrectionJSON serializes a CorrectionResult.
type CorrectionJSON struct {
	Method       string    `json:"method"`
	N            int       `json:"n"`
	CumCorrected []int     `json:"cum_corrected"`
	PctByRound   []float64 `json:"pct_by_round"`
	Skipped      int       `json:"skipped"`
}

// NewExport returns an empty export.
func NewExport() *Export {
	return &Export{
		Figure2:     map[string]AccuracyJSON{},
		Errors:      map[string]ErrorStatsJSON{},
		Corrections: map[string]CorrectionJSON{},
	}
}

// AccJSON converts an Accuracy.
func AccJSON(a Accuracy) AccuracyJSON {
	return AccuracyJSON{Correct: a.Correct, Total: a.Total, Pct: a.Pct()}
}

// AddCorrection records a correction result under "<corpus>/<method>".
func (e *Export) AddCorrection(corpus string, r CorrectionResult) {
	pcts := make([]float64, len(r.CumCorrected))
	for i := range r.CumCorrected {
		pcts[i] = r.Pct(i + 1)
	}
	e.Corrections[corpus+"/"+r.Method] = CorrectionJSON{
		Method:       r.Method,
		N:            r.N,
		CumCorrected: r.CumCorrected,
		PctByRound:   pcts,
		Skipped:      r.Skipped,
	}
}

// Write renders the export as indented JSON.
func (e *Export) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
