package eval

import (
	"context"
	"fmt"
	"io"
	"strings"

	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/feedback"
)

// Error analysis tooling. The paper's §4.2 attributes residual errors to
// three causes: (a) queries with multiple errors needing multiple feedback
// rounds, (b) feedback the approach cannot interpret, and (c) feedback
// misaligned with the needed correction. This file quantifies that
// attribution for any method run, and reports the router's confusion
// matrix.

// Cause labels a residual error's reason.
type Cause int

// Residual-error causes (§4.2).
const (
	// CauseCorrected marks instances that were fixed (no residual error).
	CauseCorrected Cause = iota
	// CauseMultiError — the query carried several errors; one round fixed
	// at most one of them (paper cause (a)).
	CauseMultiError
	// CauseUninterpretable — the feedback carried no actionable edit
	// (paper cause (b)).
	CauseUninterpretable
	// CauseMisaligned — the feedback asked for a change that does not
	// correct the query (paper cause (c)).
	CauseMisaligned
	// CauseEditFailed — the feedback was aligned but the method's edit
	// missed (wrong operation type, wrong grounding).
	CauseEditFailed
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseCorrected:
		return "corrected"
	case CauseMultiError:
		return "multiple errors (a)"
	case CauseUninterpretable:
		return "uninterpretable feedback (b)"
	case CauseMisaligned:
		return "misaligned feedback (c)"
	case CauseEditFailed:
		return "edit misapplied"
	}
	return "?cause?"
}

// Analysis tallies one method's outcome per cause.
type Analysis struct {
	Method string
	N      int
	Counts map[Cause]int
}

// AnalyzeCorrection runs one feedback round for every annotated error and
// attributes each residual failure to its cause, using the corpus's trap
// annotations as ground truth.
func AnalyzeCorrection(ctx context.Context, corrector core.Corrector, ds *dataset.Dataset, errs []GenResult) (Analysis, error) {
	annot := NewAnnotator(ds)
	out := Analysis{Method: corrector.Name(), Counts: map[Cause]int{}}
	for _, ge := range errs {
		e := ge.Example
		fb, ok := annot.Annotate(e, ge.SQL, 1, false)
		if !ok {
			continue
		}
		out.N++
		next, err := corrector.Correct(ctx, e.DB, e.Question, ge.SQL, fb)
		if err != nil {
			return Analysis{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		if Match(ds.DBs[e.DB], e.Gold, next) {
			out.Counts[CauseCorrected]++
			continue
		}
		tr := e.Traps[fb.TrapIndex]
		switch {
		case tr.Vague:
			out.Counts[CauseUninterpretable]++
		case tr.Misaligned:
			out.Counts[CauseMisaligned]++
		case len(e.Traps) > 1:
			out.Counts[CauseMultiError]++
		default:
			out.Counts[CauseEditFailed]++
		}
	}
	return out, nil
}

// PrintAnalysis renders the cause breakdown.
func PrintAnalysis(w io.Writer, a Analysis) {
	fmt.Fprintf(w, "§4.2 — residual error analysis, %s (n=%d)\n", a.Method, a.N)
	fmt.Fprintln(w, strings.Repeat("-", 52))
	for _, c := range []Cause{CauseCorrected, CauseMultiError, CauseUninterpretable, CauseMisaligned, CauseEditFailed} {
		n := a.Counts[c]
		fmt.Fprintf(w, "%-30s %4d (%5.1f%%)\n", c, n, 100*float64(n)/float64(max(a.N, 1)))
	}
}

// ----------------------------------------------------------------------------
// Router confusion matrix

// RouterReport compares predicted operation types against ground truth over
// all annotated feedback of a corpus.
type RouterReport struct {
	// Confusion[true][predicted] counts instances.
	Confusion map[dataset.Op]map[dataset.Op]int
	Total     int
	Correct   int
}

// Accuracy returns the router's overall accuracy in percent.
func (r RouterReport) Accuracy() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Correct) / float64(r.Total)
}

// RunRouterReport classifies every annotated error's round-1 feedback with
// the given classifier.
func RunRouterReport(ds *dataset.Dataset, classify func(string) dataset.Op) RouterReport {
	annot := NewAnnotator(ds)
	rep := RouterReport{Confusion: map[dataset.Op]map[dataset.Op]int{}}
	for _, e := range ds.AnnotatedErrors() {
		fb, ok := annot.Annotate(e, e.WrongSQL(), 1, false)
		if !ok {
			continue
		}
		got := classify(fb.Text)
		if rep.Confusion[fb.Op] == nil {
			rep.Confusion[fb.Op] = map[dataset.Op]int{}
		}
		rep.Confusion[fb.Op][got]++
		rep.Total++
		if got == fb.Op {
			rep.Correct++
		}
	}
	return rep
}

// PrintRouterReport renders two classifiers' confusion matrices side by
// side.
func PrintRouterReport(w io.Writer, name string, rep RouterReport) {
	fmt.Fprintf(w, "Feedback-type classification — %s (accuracy %.1f%%)\n", name, rep.Accuracy())
	ops := []dataset.Op{dataset.OpAdd, dataset.OpRemove, dataset.OpEdit}
	fmt.Fprintf(w, "%-10s", "true\\pred")
	for _, p := range ops {
		fmt.Fprintf(w, "%8s", p)
	}
	fmt.Fprintln(w)
	for _, tr := range ops {
		fmt.Fprintf(w, "%-10s", tr)
		for _, p := range ops {
			fmt.Fprintf(w, "%8d", rep.Confusion[tr][p])
		}
		fmt.Fprintln(w)
	}
}

// ClassifierRouted adapts the router classifier for RunRouterReport.
func ClassifierRouted(text string) dataset.Op { return feedback.ClassifyRouted(text) }

// ClassifierNaive adapts the naive classifier for RunRouterReport.
func ClassifierNaive(text string) dataset.Op { return feedback.ClassifyNaive(text) }
