package eval

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/rag"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 100
		var hits [100]atomic.Int32
		if err := forEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := forEach(0, 4, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachFirstErrorWins checks the error contract: regardless of worker
// count and scheduling, the error surfaced is the one at the lowest failing
// index — what a serial loop would have stopped at.
func TestForEachFirstErrorWins(t *testing.T) {
	fail := map[int]bool{23: true, 61: true, 97: true}
	for _, workers := range []int{1, 2, 8} {
		err := forEach(100, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("index %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "index 23" {
			t.Errorf("workers=%d: got %v, want index 23", workers, err)
		}
	}
}

// TestParallelGenerationMatchesSerial is the concurrency cross-check the
// harness's determinism contract rests on: sharding examples across workers
// must produce byte-identical, identically ordered results and the same
// accuracy tally as the serial path, on both corpora. Run under -race this
// also audits the shared substrate (llm.Sim, rag.Store, schema, engine).
func TestParallelGenerationMatchesSerial(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		ds   *dataset.Dataset
		k    int
	}{
		{"spider/zero-shot", w.spider, 0},
		{"spider/rag", w.spider, 8},
		{"aep/rag", w.aep, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serialRes, serialAcc, err := RunGenerationOpts(ctx, w.client, tc.ds, tc.k, RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			parRes, parAcc, err := RunGenerationOpts(ctx, w.client, tc.ds, tc.k, RunOptions{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if parAcc != serialAcc {
				t.Errorf("accuracy: parallel %v, serial %v", parAcc, serialAcc)
			}
			if len(parRes) != len(serialRes) {
				t.Fatalf("result count: parallel %d, serial %d", len(parRes), len(serialRes))
			}
			for i := range serialRes {
				if !reflect.DeepEqual(parRes[i], serialRes[i]) {
					t.Fatalf("result %d differs:\nparallel: %+v\nserial:   %+v", i, parRes[i], serialRes[i])
				}
			}
		})
	}
}

// TestParallelCorrectionMatchesSerial does the same cross-check for the
// multi-round correction protocol, for both correction methods.
func TestParallelCorrectionMatchesSerial(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"spider", w.spider},
		{"aep", w.aep},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, _, err := RunGenerationOpts(ctx, w.client, tc.ds, 8, RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			errs := Errors(res)
			store := rag.NewStore(tc.ds.Demos)
			methods := []core.Corrector{
				&core.FISQL{Client: w.client, DS: tc.ds, Store: store, K: 8, Routing: true},
				&core.QueryRewrite{Client: w.client, DS: tc.ds, Store: store, K: 8},
			}
			for _, m := range methods {
				serial, err := RunCorrection(ctx, m, tc.ds, errs,
					CorrectionOptions{Rounds: 2, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				par, err := RunCorrection(ctx, m, tc.ds, errs,
					CorrectionOptions{Rounds: 2, Workers: 8})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(par, serial) {
					t.Errorf("%s: parallel %+v, serial %+v", m.Name(), par, serial)
				}
			}
		})
	}
}

// TestParallelCorrectionErrorDeterministic checks that a failing corrector
// surfaces the same (first-by-input-order) error from the parallel path as
// from the serial one.
func TestParallelCorrectionErrorDeterministic(t *testing.T) {
	w := getWorld(t)
	ctx := context.Background()
	res, _, err := RunGenerationOpts(ctx, w.client, w.aep, 8, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	errs := Errors(res)
	serialErr := correctionError(ctx, t, w.aep, errs, 1)
	parErr := correctionError(ctx, t, w.aep, errs, 8)
	if serialErr.Error() != parErr.Error() {
		t.Errorf("serial error %q, parallel error %q", serialErr, parErr)
	}
}

func correctionError(ctx context.Context, t *testing.T, ds *dataset.Dataset, errs []GenResult, workers int) error {
	t.Helper()
	_, err := RunCorrection(ctx, failingCorrector{}, ds, errs,
		CorrectionOptions{Rounds: 1, Workers: workers})
	if err == nil {
		t.Fatal("corrector error must propagate")
	}
	return err
}
