package eval

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fisql/internal/dataset"
	"fisql/internal/engine"
)

// forEach runs fn(i) for every i in [0, n) on a pool of at most workers
// goroutines (workers <= 0 means runtime.GOMAXPROCS(0); 1 runs serially on
// the calling goroutine).
//
// Indices are claimed in increasing order, so when any call fails the error
// returned is the one at the lowest failing index — exactly the error a
// serial loop would have stopped at. Remaining indices are abandoned on a
// best-effort basis after the first failure.
func forEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Claims are strictly increasing, so every index below a claimed one
	// was claimed too; the first non-nil entry is therefore the lowest
	// failing index overall, independent of goroutine interleaving.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// goldCache memoizes each example's executed gold result, so the
// multi-round correction protocol stops re-running the gold SQL on every
// Match. Safe for concurrent use. A nil cached result records a gold query
// that failed to parse or execute.
type goldCache struct {
	mu sync.Mutex
	m  map[*dataset.Example]*engine.Result
}

func newGoldCache() *goldCache {
	return &goldCache{m: make(map[*dataset.Example]*engine.Result)}
}

// gold returns the example's gold result, executing the gold SQL at most
// once per example (modulo benign duplicated work under contention — the
// result is deterministic either way).
func (c *goldCache) gold(db *engine.Database, e *dataset.Example) (*engine.Result, bool) {
	c.mu.Lock()
	res, hit := c.m[e]
	c.mu.Unlock()
	if hit {
		return res, res != nil
	}
	res, err := planCache.Query(db, e.Gold)
	if err != nil {
		res = nil
	}
	c.mu.Lock()
	c.m[e] = res
	c.mu.Unlock()
	return res, res != nil
}

// match is Match with the gold side served from the cache. EqualResults
// never mutates its arguments, so the cached result can be shared across
// workers.
func (c *goldCache) match(db *engine.Database, e *dataset.Example, predSQL string) bool {
	gold, ok := c.gold(db, e)
	if !ok {
		return false
	}
	pred, err := planCache.Query(db, predSQL)
	if err != nil {
		return false
	}
	return engine.EqualResults(gold, pred)
}
