// Package eval is the evaluation harness: execution-accuracy measurement,
// the Assistant error-collection protocol of §4.1, and the multi-round
// feedback-correction protocol behind Tables 2-3 and Figure 8.
package eval

import (
	"context"
	"fmt"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/feedback"
	"fisql/internal/llm"
	"fisql/internal/rag"
	"fisql/internal/schema"
)

// Accuracy is a correct/total tally.
type Accuracy struct {
	Correct, Total int
}

// Pct returns the percentage (0 for an empty tally).
func (a Accuracy) Pct() float64 {
	if a.Total == 0 {
		return 0
	}
	return 100 * float64(a.Correct) / float64(a.Total)
}

func (a Accuracy) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", a.Correct, a.Total, a.Pct())
}

// Match reports execution-accuracy: both queries run and produce equal
// results. A prediction that fails to parse or execute is wrong.
func Match(db *engine.Database, goldSQL, predSQL string) bool {
	exGold := engine.NewExecutor(db)
	gold, err := exGold.Query(goldSQL)
	if err != nil {
		return false
	}
	exPred := engine.NewExecutor(db)
	pred, err := exPred.Query(predSQL)
	if err != nil {
		return false
	}
	return engine.EqualResults(gold, pred)
}

// GenResult is one example's generation outcome.
type GenResult struct {
	Example *dataset.Example
	SQL     string
	Correct bool
}

// RunGeneration evaluates the NL2SQL pipeline over the whole corpus with k
// retrieved demonstrations (k=0 reproduces the zero-shot setting of
// Figure 2; k>0 the Assistant pipeline of §4.1).
func RunGeneration(ctx context.Context, client llm.Client, ds *dataset.Dataset, k int) ([]GenResult, Accuracy, error) {
	var store *rag.Store
	if k > 0 {
		store = rag.NewStore(ds.Demos)
	}
	asst := &assistant.Assistant{Client: client, DS: ds, Store: store, K: k}
	results := make([]GenResult, 0, len(ds.Examples))
	acc := Accuracy{Total: len(ds.Examples)}
	for _, e := range ds.Examples {
		sql, err := asst.GenerateSQL(ctx, e.DB, e.Question)
		if err != nil {
			return nil, Accuracy{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		ok := Match(ds.DBs[e.DB], e.Gold, sql)
		if ok {
			acc.Correct++
		}
		results = append(results, GenResult{Example: e, SQL: sql, Correct: ok})
	}
	return results, acc, nil
}

// Errors filters generation results down to the failures — the §4.1 error
// sets that feedback correction is evaluated on.
func Errors(results []GenResult) []GenResult {
	var out []GenResult
	for _, r := range results {
		if !r.Correct {
			out = append(out, r)
		}
	}
	return out
}

// NewAnnotator builds the simulated annotator for a corpus, rendering
// column and table names with the schemas' NL phrases.
func NewAnnotator(ds *dataset.Dataset) *feedback.Annotator {
	return &feedback.Annotator{
		ColumnPhrase: func(table, column string) string {
			lookup := func(s *schema.Schema) string {
				for ti := range s.Tables {
					t := &s.Tables[ti]
					if table != "" && t.Name != table {
						continue
					}
					if c := t.Column(column); c != nil && len(c.NL) > 0 {
						return c.NL[0]
					}
				}
				return ""
			}
			for _, s := range ds.Schemas {
				if p := lookup(s); p != "" {
					return p
				}
			}
			return ""
		},
		TablePhrase: func(table string) string {
			for _, s := range ds.Schemas {
				if t := s.Table(table); t != nil {
					return t.Phrase()
				}
			}
			return ""
		},
	}
}

// CorrectionResult reports a method's multi-round correction outcome.
type CorrectionResult struct {
	Method string
	// N is the number of errors with annotatable feedback (the paper's
	// denominators: 101 for SPIDER, 53 for Experience Platform).
	N int
	// CumCorrected[r-1] is the number of instances corrected by the end
	// of round r.
	CumCorrected []int
	// Skipped counts errors the annotator could not express feedback for.
	Skipped int
}

// Pct returns the % instances corrected by the end of round r (1-based).
func (c CorrectionResult) Pct(round int) float64 {
	if c.N == 0 || round < 1 || round > len(c.CumCorrected) {
		return 0
	}
	return 100 * float64(c.CumCorrected[round-1]) / float64(c.N)
}

// CorrectionOptions configures the protocol.
type CorrectionOptions struct {
	// Rounds is the number of feedback rounds (the paper uses 1 for
	// Tables 2-3 and 2 for Figure 8).
	Rounds int
	// Highlights lets the annotator attach highlight spans (Table 3).
	Highlights bool
}

// RunCorrection executes the feedback-correction protocol: for every
// Assistant error with annotatable feedback, iterate annotate→correct up to
// Rounds times, scoring execution accuracy after each round.
func RunCorrection(ctx context.Context, corrector core.Corrector, ds *dataset.Dataset,
	errs []GenResult, opt CorrectionOptions) (CorrectionResult, error) {
	if opt.Rounds < 1 {
		opt.Rounds = 1
	}
	annot := NewAnnotator(ds)
	res := CorrectionResult{Method: corrector.Name(), CumCorrected: make([]int, opt.Rounds)}
	for _, ge := range errs {
		e := ge.Example
		fb, ok := annot.Annotate(e, ge.SQL, 1, opt.Highlights)
		if !ok {
			res.Skipped++
			continue
		}
		res.N++
		cur := ge.SQL
		for round := 1; round <= opt.Rounds; round++ {
			if round > 1 {
				fb, ok = annot.Annotate(e, cur, round, opt.Highlights)
				if !ok {
					break
				}
			}
			next, err := corrector.Correct(ctx, e.DB, e.Question, cur, fb)
			if err != nil {
				return CorrectionResult{}, fmt.Errorf("%s round %d: %w", e.ID, round, err)
			}
			cur = next
			if Match(ds.DBs[e.DB], e.Gold, cur) {
				for r := round; r <= opt.Rounds; r++ {
					res.CumCorrected[r-1]++
				}
				break
			}
		}
	}
	return res, nil
}
