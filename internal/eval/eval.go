// Package eval is the evaluation harness: execution-accuracy measurement,
// the Assistant error-collection protocol of §4.1, and the multi-round
// feedback-correction protocol behind Tables 2-3 and Figure 8.
package eval

import (
	"context"
	"fmt"
	"sort"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/feedback"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/rag"
	"fisql/internal/schema"
)

// Accuracy is a correct/total tally.
type Accuracy struct {
	Correct, Total int
}

// Pct returns the percentage (0 for an empty tally).
func (a Accuracy) Pct() float64 {
	if a.Total == 0 {
		return 0
	}
	return 100 * float64(a.Correct) / float64(a.Total)
}

func (a Accuracy) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", a.Correct, a.Total, a.Pct())
}

// planCache is shared by every run in the process: correction experiments
// re-execute the same gold and candidate queries across rounds and methods,
// so each distinct (database, SQL) pair is parsed and planned exactly once.
// Plans are immutable and executed on per-call Executors, so concurrent
// workers can share entries freely.
var planCache = engine.NewCache(0)

// Match reports execution-accuracy: both queries run and produce equal
// results. A prediction that fails to parse or execute is wrong.
func Match(db *engine.Database, goldSQL, predSQL string) bool {
	gold, err := planCache.Query(db, goldSQL)
	if err != nil {
		return false
	}
	pred, err := planCache.Query(db, predSQL)
	if err != nil {
		return false
	}
	return engine.EqualResults(gold, pred)
}

// GenResult is one example's generation outcome.
type GenResult struct {
	Example *dataset.Example
	SQL     string
	Correct bool
}

// RunOptions configures how an evaluation run executes. The zero value
// shards examples across runtime.GOMAXPROCS(0) workers.
type RunOptions struct {
	// Workers bounds the worker pool that shards examples across
	// goroutines; 0 means runtime.GOMAXPROCS(0) and 1 forces the serial
	// path. Every value produces byte-identical, identically ordered
	// results and identical accuracy tallies — examples are independent
	// and the whole substrate (llm.Sim, rag.Store, schema, engine) is
	// deterministic and safe for concurrent reads.
	Workers int
	// Obs, when non-nil, records a per-example trace into its per-stage
	// latency histograms (retrieve/prompt/llm/plan/execute). Histograms are
	// atomic, so concurrent workers fold observations in without locking.
	Obs *obs.Metrics
	// Store overrides the retrieval store used for demonstration selection
	// (for example a store built with the HNSW index); nil builds the
	// default exact store over ds.Demos. Ignored when k == 0 — zero-shot
	// runs retrieve nothing.
	Store *rag.Store
}

// RunGeneration evaluates the NL2SQL pipeline over the whole corpus with k
// retrieved demonstrations (k=0 reproduces the zero-shot setting of
// Figure 2; k>0 the Assistant pipeline of §4.1). It runs with default
// RunOptions; use RunGenerationOpts to bound the worker pool.
func RunGeneration(ctx context.Context, client llm.Client, ds *dataset.Dataset, k int) ([]GenResult, Accuracy, error) {
	return RunGenerationOpts(ctx, client, ds, k, RunOptions{})
}

// RunGenerationOpts is RunGeneration with an explicit worker-pool bound.
// The Client must be safe for concurrent use when opt.Workers != 1
// (llm.Sim, Metered and Recorder all are).
func RunGenerationOpts(ctx context.Context, client llm.Client, ds *dataset.Dataset, k int, opt RunOptions) ([]GenResult, Accuracy, error) {
	var store *rag.Store
	if k > 0 {
		store = opt.Store
		if store == nil {
			store = rag.NewStore(ds.Demos)
		}
	}
	asst := &assistant.Assistant{Client: client, DS: ds, Store: store, K: k, Cache: planCache}
	results := make([]GenResult, len(ds.Examples))
	gold := newGoldCache()
	err := forEach(len(ds.Examples), opt.Workers, func(i int) error {
		e := ds.Examples[i]
		tr := opt.Obs.StartTrace()
		defer tr.Finish()
		ctx := obs.WithTrace(ctx, tr)
		sql, err := asst.GenerateSQL(ctx, e.DB, e.Question)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		results[i] = GenResult{Example: e, SQL: sql, Correct: gold.match(ds.DBs[e.DB], e, sql)}
		return nil
	})
	if err != nil {
		return nil, Accuracy{}, err
	}
	acc := Accuracy{Total: len(ds.Examples)}
	for _, r := range results {
		if r.Correct {
			acc.Correct++
		}
	}
	return results, acc, nil
}

// Errors filters generation results down to the failures — the §4.1 error
// sets that feedback correction is evaluated on.
func Errors(results []GenResult) []GenResult {
	var out []GenResult
	for _, r := range results {
		if !r.Correct {
			out = append(out, r)
		}
	}
	return out
}

// NewAnnotator builds the simulated annotator for a corpus, rendering
// column and table names with the schemas' NL phrases. Schemas are
// consulted in sorted name order: map iteration order varies call to call,
// which would make phrase choice — and thus feedback text — nondeterministic
// whenever more than one schema can render a name.
func NewAnnotator(ds *dataset.Dataset) *feedback.Annotator {
	names := make([]string, 0, len(ds.Schemas))
	for name := range ds.Schemas {
		names = append(names, name)
	}
	sort.Strings(names)
	schemas := make([]*schema.Schema, len(names))
	for i, name := range names {
		schemas[i] = ds.Schemas[name]
	}
	return &feedback.Annotator{
		ColumnPhrase: func(table, column string) string {
			lookup := func(s *schema.Schema) string {
				for ti := range s.Tables {
					t := &s.Tables[ti]
					if table != "" && t.Name != table {
						continue
					}
					if c := t.Column(column); c != nil && len(c.NL) > 0 {
						return c.NL[0]
					}
				}
				return ""
			}
			for _, s := range schemas {
				if p := lookup(s); p != "" {
					return p
				}
			}
			return ""
		},
		TablePhrase: func(table string) string {
			for _, s := range schemas {
				if t := s.Table(table); t != nil {
					return t.Phrase()
				}
			}
			return ""
		},
	}
}

// CorrectionResult reports a method's multi-round correction outcome.
type CorrectionResult struct {
	Method string
	// N is the number of errors with annotatable feedback (the paper's
	// denominators: 101 for SPIDER, 53 for Experience Platform).
	N int
	// CumCorrected[r-1] is the number of instances corrected by the end
	// of round r.
	CumCorrected []int
	// Skipped counts errors the annotator could not express feedback for.
	Skipped int
}

// Pct returns the % instances corrected by the end of round r (1-based).
func (c CorrectionResult) Pct(round int) float64 {
	if c.N == 0 || round < 1 || round > len(c.CumCorrected) {
		return 0
	}
	return 100 * float64(c.CumCorrected[round-1]) / float64(c.N)
}

// CorrectionOptions configures the protocol.
type CorrectionOptions struct {
	// Rounds is the number of feedback rounds (the paper uses 1 for
	// Tables 2-3 and 2 for Figure 8).
	Rounds int
	// Highlights lets the annotator attach highlight spans (Table 3).
	Highlights bool
	// Workers bounds the worker pool that shards error instances across
	// goroutines; 0 means runtime.GOMAXPROCS(0) and 1 forces the serial
	// path. Tallies are identical for every value. The Corrector must be
	// safe for concurrent use when Workers != 1 (core.FISQL and
	// core.QueryRewrite are: they hold only read-only configuration).
	Workers int
	// Obs, when non-nil, records a per-instance trace of the correction
	// path (route/retrieve/prompt/repair) into its stage histograms.
	Obs *obs.Metrics
}

// correctionOutcome is one error instance's verdict, folded into the
// CorrectionResult in input order so tallies never depend on scheduling.
type correctionOutcome struct {
	skipped bool
	// fixedAt is the 1-based round whose repair first matched gold; 0 when
	// no round fixed the instance.
	fixedAt int
}

// RunCorrection executes the feedback-correction protocol: for every
// Assistant error with annotatable feedback, iterate annotate→correct up to
// Rounds times, scoring execution accuracy after each round.
func RunCorrection(ctx context.Context, corrector core.Corrector, ds *dataset.Dataset,
	errs []GenResult, opt CorrectionOptions) (CorrectionResult, error) {
	if opt.Rounds < 1 {
		opt.Rounds = 1
	}
	annot := NewAnnotator(ds)
	gold := newGoldCache()
	outcomes := make([]correctionOutcome, len(errs))
	err := forEach(len(errs), opt.Workers, func(i int) error {
		ge := errs[i]
		e := ge.Example
		tr := opt.Obs.StartTrace()
		defer tr.Finish()
		ctx := obs.WithTrace(ctx, tr)
		fb, ok := annot.Annotate(e, ge.SQL, 1, opt.Highlights)
		if !ok {
			outcomes[i].skipped = true
			return nil
		}
		cur := ge.SQL
		for round := 1; round <= opt.Rounds; round++ {
			if round > 1 {
				fb, ok = annot.Annotate(e, cur, round, opt.Highlights)
				if !ok {
					break
				}
			}
			next, err := corrector.Correct(ctx, e.DB, e.Question, cur, fb)
			if err != nil {
				return fmt.Errorf("%s round %d: %w", e.ID, round, err)
			}
			cur = next
			if gold.match(ds.DBs[e.DB], e, cur) {
				outcomes[i].fixedAt = round
				break
			}
		}
		return nil
	})
	if err != nil {
		return CorrectionResult{}, err
	}
	res := CorrectionResult{Method: corrector.Name(), CumCorrected: make([]int, opt.Rounds)}
	for _, out := range outcomes {
		if out.skipped {
			res.Skipped++
			continue
		}
		res.N++
		if out.fixedAt > 0 {
			for r := out.fixedAt; r <= opt.Rounds; r++ {
				res.CumCorrected[r-1]++
			}
		}
	}
	return res, nil
}
