// Package assistant implements the AEP-Assistant surface of the paper
// (§3.2): for a user question it produces the four outputs of Figure 4 —
// the execution result, a reformulation showing the model's understanding,
// a step-by-step natural-language explanation, and the SQL itself
// ("Show Source").
package assistant

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"fisql/internal/dataset"
	"fisql/internal/engine"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/prompt"
	"fisql/internal/rag"
	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// Assistant wires the NL2SQL model, the retrieval store and the execution
// engine together. An Assistant is safe for concurrent use as long as its
// Client is: its own fields are read-only configuration, every call creates
// its own engine.Executor, and the Cache is itself concurrency-safe.
type Assistant struct {
	Client llm.Client
	DS     *dataset.Dataset
	Store  *rag.Store
	// K is the number of retrieved demonstrations (0 disables retrieval,
	// yielding the zero-shot prompt of Figure 1).
	K int
	// Cache, when set, serves parsed+planned queries so repeated Answer
	// calls on the same SQL (feedback rounds, concurrent sessions) skip the
	// parse and planning passes. Nil falls back to uncached interpretation.
	Cache *engine.Cache
	// Memo, when set, serves whole Answers for repeated Ask calls on the
	// same (db, question) across sessions, collapsing concurrent identical
	// misses into one pipeline run (see memo.go). Only sound when Client is
	// deterministic; nil disables memoization.
	Memo *AnswerMemo
}

// Answer is the Assistant's response to one question. An Answer is
// immutable once returned: memoized answers are shared across sessions,
// so consumers must only read it.
type Answer struct {
	SQL           string
	Result        *engine.Result
	Reformulation string
	Explanation   []string
	// Spans maps the displayed SQL's byte ranges onto clauses, enabling a
	// front-end to implement highlight selection (paper Figure 9). Empty
	// when the SQL did not parse.
	Spans []sqlast.Span
	// ExecErr is non-nil when the generated SQL failed to run; Result is
	// nil in that case (the UI shows "We found nothing for your query").
	ExecErr error

	// wire caches one transport encoding of this Answer (the REST server's
	// JSON body). Answers are immutable, so any encoding is too; rendering
	// once per Answer lets every session sharing a memoized Answer skip
	// re-serializing the result rows. Opaque to this package.
	wire atomic.Value // []byte
}

// Wire returns the cached transport encoding, or nil if none was set.
func (a *Answer) Wire() []byte {
	if b, ok := a.wire.Load().([]byte); ok {
		return b
	}
	return nil
}

// SetWire caches a transport encoding. The caller must not mutate b after
// the call. Concurrent setters race benignly: every encoding of an
// immutable Answer is identical, so either write may win.
func (a *Answer) SetWire(b []byte) { a.wire.Store(b) }

// presentation is the plan-derived half of an Answer — everything except
// the execution result. It is a pure function of the planned statement and
// its SQL text, so it is computed once per cached plan and hung off
// engine.Plan.Aux (sharing the plan cache's LRU lifetime).
type presentation struct {
	reformulation string
	explanation   []string
	spans         []sqlast.Span
}

// Ask runs the full pipeline for a question against one database. With a
// Memo configured, repeated questions are served from it and concurrent
// identical misses compute once.
func (a *Assistant) Ask(ctx context.Context, db, question string) (*Answer, error) {
	if a.Memo == nil {
		return a.ask(ctx, db, question)
	}
	return a.Memo.Do(ctx, db, question, func() (*Answer, error) {
		return a.ask(ctx, db, question)
	})
}

func (a *Assistant) ask(ctx context.Context, db, question string) (*Answer, error) {
	sql, err := a.GenerateSQL(ctx, db, question)
	if err != nil {
		return nil, err
	}
	if st := StreamFrom(ctx); st != nil {
		st.OnSQL(sql)
	}
	return a.Answer(ctx, db, sql), nil
}

// demoPool recycles the per-Ask demonstration slice: its length is bounded
// by K (single digits), so one pooled backing array serves every request.
var demoPool = sync.Pool{New: func() any {
	s := make([]prompt.Demo, 0, 16)
	return &s
}}

// GenerateSQL produces SQL for the question (retrieval-augmented when K>0).
// When the context carries an obs.Trace, the retrieve/prompt/llm stages are
// timed onto it (a context without one costs a nil check per stage).
func (a *Assistant) GenerateSQL(ctx context.Context, db, question string) (string, error) {
	s, ok := a.DS.Schemas[db]
	if !ok {
		return "", fmt.Errorf("unknown database %q", db)
	}
	tr := obs.TraceFrom(ctx)
	demosp := demoPool.Get().(*[]prompt.Demo)
	demos := (*demosp)[:0]
	if a.K > 0 && a.Store != nil {
		sp := tr.Start(obs.StageRetrieve)
		for _, hit := range a.Store.Search(question, db, a.K) {
			demos = append(demos, prompt.Demo{Question: hit.Demo.Question, SQL: hit.Demo.SQL})
		}
		sp.End()
	}
	sp := tr.Start(obs.StagePrompt)
	p := prompt.NL2SQL(s, demos, question)
	sp.End()
	*demosp = demos[:0]
	demoPool.Put(demosp)
	sp = tr.Start(obs.StageLLM)
	resp, err := a.Client.Complete(ctx, llm.Request{Prompt: p})
	sp.End()
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp.Text), nil
}

// Answer executes the SQL and assembles the four user-facing outputs. With
// a Cache configured, the parse and plan are served from it and only
// execution runs per call. With a Memo configured, the finished Answer is
// additionally shared per (db, sql) across sessions — sound because the
// assembly is a pure function of its arguments over immutable databases.
// An obs.Trace carried by ctx times the plan/execute/render stages.
func (a *Assistant) Answer(ctx context.Context, db, sql string) *Answer {
	if a.Memo == nil {
		return a.answer(ctx, db, sql)
	}
	// The wait context stays Background on purpose: fn never errors, so the
	// only DoSQL error is a canceled waiter — which would surface here as a
	// nil Answer to callers that cannot express one. The closure still sees
	// ctx, so a trace records the stages when this call computes the miss.
	ans, _ := a.Memo.DoSQL(context.Background(), db, sql, func() (*Answer, error) {
		return a.answer(ctx, db, sql), nil
	})
	return ans
}

func (a *Assistant) answer(ctx context.Context, db, sql string) *Answer {
	tr := obs.TraceFrom(ctx)
	stream := StreamFrom(ctx)
	ans := &Answer{SQL: sql}
	dbase := a.DS.DBs[db]
	var sel *sqlast.SelectStmt
	var plan *engine.Plan
	sp := tr.Start(obs.StagePlan)
	if a.Cache != nil {
		p, err := a.Cache.Plan(dbase, sql)
		if err != nil {
			sp.End()
			ans.ExecErr = err
			if stream != nil {
				stream.OnResult(nil, err)
			}
			return ans
		}
		plan, sel = p, p.Stmt
	} else {
		s, err := sqlparse.ParseSelect(sql)
		if err != nil {
			sp.End()
			ans.ExecErr = err
			if stream != nil {
				stream.OnResult(nil, err)
			}
			return ans
		}
		sel = s
	}
	sp.End()
	sp = tr.Start(obs.StageRender)
	if plan != nil {
		// The presentation depends only on the planned statement and its
		// SQL text — both fixed per plan-cache entry — so compute it once
		// per plan. Feedback rounds converging on the same corrected SQL
		// skip the reformulate/explain/re-print passes entirely.
		pres, ok := plan.Aux.Load().(*presentation)
		if !ok {
			pres = buildPresentation(sel, sql)
			plan.Aux.Store(pres)
		}
		ans.Reformulation = pres.reformulation
		ans.Explanation = pres.explanation
		ans.Spans = pres.spans
	} else {
		pres := buildPresentation(sel, sql)
		ans.Reformulation = pres.reformulation
		ans.Explanation = pres.explanation
		ans.Spans = pres.spans
	}
	sp.End()
	if stream != nil {
		stream.OnExplanation(ans.Reformulation, ans.Explanation, ans.Spans)
	}
	ex := engine.NewExecutor(dbase)
	var res *engine.Result
	var err error
	sp = tr.Start(obs.StageExecute)
	if plan != nil {
		res, err = ex.Run(plan)
	} else {
		res, err = ex.Select(sel)
	}
	sp.End()
	if err != nil {
		ans.ExecErr = err
		if stream != nil {
			stream.OnResult(nil, err)
		}
		return ans
	}
	ans.Result = res
	if stream != nil {
		stream.OnResult(res, nil)
	}
	return ans
}

// buildPresentation renders the non-result outputs for a parsed statement.
func buildPresentation(sel *sqlast.SelectStmt, sql string) *presentation {
	pres := &presentation{
		reformulation: Reformulate(sel),
		explanation:   Explain(sel),
	}
	// Re-print to guarantee the spans index into the exact displayed text.
	printed, spans := sqlast.PrintWithSpans(sel)
	if printed == sql {
		pres.spans = spans
	}
	return pres
}

// ----------------------------------------------------------------------------
// Reformulation and explanation (Figure 4's (b) and (c) outputs)

// Reformulate renders the Assistant's understanding of the query as one
// sentence ("Finds the count of segments created in January 2023.").
func Reformulate(sel *sqlast.SelectStmt) string {
	var what []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			what = append(what, "all columns")
		case it.TableStar != "":
			what = append(what, "all columns of "+it.TableStar)
		default:
			what = append(what, describeExpr(it.Expr))
		}
	}
	var sb strings.Builder
	sb.WriteString("Finds ")
	sb.WriteString(strings.Join(what, " and "))
	if sel.From != nil && sel.From.First.Name != "" {
		sb.WriteString(" from ")
		sb.WriteString(humanize(sel.From.First.Name))
	}
	if sel.Where != nil {
		sb.WriteString(" where ")
		sb.WriteString(describeCond(sel.Where))
	}
	sb.WriteString(".")
	return sb.String()
}

// Explain renders the step-by-step procedure description of Figure 4.
func Explain(sel *sqlast.SelectStmt) []string {
	var steps []string
	if sel.From != nil && sel.From.First.Name != "" {
		steps = append(steps, fmt.Sprintf("First, consider all the %s.", humanize(sel.From.First.Name)))
		for _, j := range sel.From.Joins {
			if j.Source.Name != "" {
				steps = append(steps, fmt.Sprintf("Then, match them with their %s.", humanize(j.Source.Name)))
			}
		}
	}
	if sel.Where != nil {
		steps = append(steps, fmt.Sprintf("Then, keep only those where %s.", describeCond(sel.Where)))
	}
	if len(sel.GroupBy) > 0 {
		var keys []string
		for _, g := range sel.GroupBy {
			keys = append(keys, describeExpr(g))
		}
		steps = append(steps, fmt.Sprintf("Then, group them by %s.", strings.Join(keys, ", ")))
	}
	if sel.Having != nil {
		steps = append(steps, fmt.Sprintf("Then, keep only groups where %s.", describeCond(sel.Having)))
	}
	if len(sel.OrderBy) > 0 {
		var keys []string
		for _, o := range sel.OrderBy {
			dir := "ascending"
			if o.Desc {
				dir = "descending"
			}
			keys = append(keys, fmt.Sprintf("%s (%s)", describeExpr(o.Expr), dir))
		}
		steps = append(steps, fmt.Sprintf("Then, sort the results by %s.", strings.Join(keys, ", ")))
	}
	final := "Finally, return "
	var what []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			what = append(what, "every column")
		case it.TableStar != "":
			what = append(what, "every column of "+it.TableStar)
		default:
			what = append(what, describeExpr(it.Expr))
		}
	}
	steps = append(steps, final+strings.Join(what, " and ")+".")
	if sel.Limit != nil {
		steps = append(steps, fmt.Sprintf("Only the first %s rows are returned.", sqlast.PrintExpr(sel.Limit)))
	}
	return steps
}

var aggPhrases = map[string]string{
	"COUNT": "the count of", "SUM": "the total", "AVG": "the average",
	"MIN": "the minimum", "MAX": "the maximum",
}

func describeExpr(e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		return "the " + humanize(x.Column)
	case *sqlast.FuncCall:
		p, ok := aggPhrases[x.Name]
		if !ok {
			return sqlast.PrintExpr(e)
		}
		if x.Star {
			return p + " rows"
		}
		if len(x.Args) == 1 {
			return p + " " + strings.TrimPrefix(describeExpr(x.Args[0]), "the ")
		}
		return sqlast.PrintExpr(e)
	case *sqlast.Literal:
		return sqlast.PrintExpr(e)
	default:
		return sqlast.PrintExpr(e)
	}
}

var cmpWords = map[sqlast.BinaryOp]string{
	sqlast.OpEq: "is", sqlast.OpNeq: "is not", sqlast.OpLt: "is less than",
	sqlast.OpLte: "is at most", sqlast.OpGt: "is greater than",
	sqlast.OpGte: "is at least",
}

func describeCond(e sqlast.Expr) string {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case sqlast.OpAnd:
			return describeCond(x.L) + " and " + describeCond(x.R)
		case sqlast.OpOr:
			return describeCond(x.L) + " or " + describeCond(x.R)
		default:
			if w, ok := cmpWords[x.Op]; ok {
				return describeExpr(x.L) + " " + w + " " + describeExpr(x.R)
			}
		}
	case *sqlast.InExpr:
		if x.Not {
			return describeExpr(x.X) + " is not one of the listed values"
		}
		return describeExpr(x.X) + " is one of the listed values"
	case *sqlast.BetweenExpr:
		return fmt.Sprintf("%s is between %s and %s", describeExpr(x.X), describeExpr(x.Lo), describeExpr(x.Hi))
	case *sqlast.LikeExpr:
		return describeExpr(x.X) + " matches " + describeExpr(x.Pattern)
	case *sqlast.IsNullExpr:
		if x.Not {
			return describeExpr(x.X) + " is present"
		}
		return describeExpr(x.X) + " is missing"
	}
	return sqlast.PrintExpr(e)
}

// humanize renders an identifier as words.
func humanize(ident string) string {
	return strings.ReplaceAll(ident, "_", " ")
}
