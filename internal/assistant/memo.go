// Answer memoization: the serving-path cache above the plan cache.
//
// Assistant.Ask is a pure function of (db, question): the retrieval store,
// schema and client configuration are immutable, the session history does
// not feed into a fresh question, and the shipped clients (llm.Sim) are
// deterministic. Thousands of sessions asking the same first-turn question
// therefore recompute the identical Answer through the full RAG → prompt →
// LLM → parse → execute pipeline. AnswerMemo caches the finished *Answer
// per (db, question) in a sharded bounded LRU and collapses concurrent
// identical misses into one pipeline execution (singleflight).
//
// Feedback turns are never memoized: a repair depends on the session's
// current SQL and feedback text, which vary per session, and Session
// routes them through Corrector.Correct + Assistant.Answer, not Ask.
//
// Cached *Answer values are shared across sessions and must be treated as
// immutable — every consumer in the repo (history, JSON rendering) only
// reads them. A non-deterministic Client (a real sampled LLM) should run
// with a nil memo.
package assistant

import (
	"container/list"
	"context"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// DefaultMemoCapacity bounds an AnswerMemo built with NewAnswerMemo(0).
// Sized like the engine's plan cache: holds a full corpus working set
// (every distinct question of both shipped corpora) with room to spare.
const DefaultMemoCapacity = 4096

// memoShards stripes the memo's locks; question hashes spread uniformly,
// so concurrent asks of different questions rarely contend.
const memoShards = 16

// AnswerMemo is a sharded, bounded LRU of finished Answers keyed by
// (db, question), with singleflight collapsing of concurrent misses. Safe
// for concurrent use. The zero value is not usable; build with
// NewAnswerMemo.
type AnswerMemo struct {
	capacity int // per-shard
	shards   [memoShards]memoShard
	hits     atomic.Int64
	misses   atomic.Int64
}

type memoShard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight
}

type memoEntry struct {
	key string
	ans *Answer
}

// flight is one in-progress pipeline execution that concurrent identical
// asks wait on instead of recomputing.
type flight struct {
	done chan struct{}
	ans  *Answer
	err  error
	// handoff marks a flight whose leader was torn down by its own context
	// (client disconnect) rather than by a pipeline failure: the error is
	// private to the leader, so waiters must not inherit it — they loop and
	// one of them re-runs the computation with its own fn and context.
	// Written before done closes, read only after it.
	handoff bool
	waiters atomic.Int64 // callers blocked on done, for tests/metrics
}

// NewAnswerMemo builds an empty memo holding at most capacity answers;
// capacity <= 0 means DefaultMemoCapacity.
func NewAnswerMemo(capacity int) *AnswerMemo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	perShard := (capacity + memoShards - 1) / memoShards
	m := &AnswerMemo{capacity: perShard}
	for i := range m.shards {
		m.shards[i].ll = list.New()
		m.shards[i].entries = make(map[string]*list.Element)
		m.shards[i].inflight = make(map[string]*flight)
	}
	return m
}

// Key namespaces: a question and a SQL text could collide as strings, so
// each kind gets its own prefix. db and payload are joined with NUL, which
// occurs in neither.
func askKey(db, question string) string { return "q\x00" + db + "\x00" + question }
func sqlKey(db, sql string) string      { return "s\x00" + db + "\x00" + sql }

func (m *AnswerMemo) shardFor(key string) *memoShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &m.shards[h.Sum32()&(memoShards-1)]
}

// Do returns the memoized Answer for a fresh question on (db, question),
// computing it with fn on a miss. Concurrent calls for the same key while
// fn runs block until the one execution finishes and share its result (or
// its error; errors are not cached, so the next call retries). A waiter
// whose ctx is canceled unblocks with ctx.Err() without disturbing the
// computation.
func (m *AnswerMemo) Do(ctx context.Context, db, question string, fn func() (*Answer, error)) (*Answer, error) {
	return m.do(ctx, askKey(db, question), fn)
}

// DoSQL returns the memoized executed Answer for (db, sql). Answer
// assembly — plan, execute, reformulate, explain — is pure in (db, sql)
// (databases are immutable), so it is shared across sessions even for
// feedback turns: the correction step that *produced* the SQL depends on
// session history and always runs live, but two sessions whose corrections
// converge on the same SQL share one execution.
func (m *AnswerMemo) DoSQL(ctx context.Context, db, sql string, fn func() (*Answer, error)) (*Answer, error) {
	return m.do(ctx, sqlKey(db, sql), fn)
}

func (m *AnswerMemo) do(ctx context.Context, key string, fn func() (*Answer, error)) (*Answer, error) {
	sh := m.shardFor(key)
	for {
		sh.mu.Lock()
		if el, ok := sh.entries[key]; ok {
			sh.ll.MoveToFront(el)
			ans := el.Value.(*memoEntry).ans
			sh.mu.Unlock()
			m.hits.Add(1)
			return ans, nil
		}
		if fl, ok := sh.inflight[key]; ok {
			fl.waiters.Add(1)
			sh.mu.Unlock()
			select {
			case <-fl.done:
				if fl.handoff {
					// The leader's context died mid-computation; its
					// context.Canceled is not this caller's error. Loop: the
					// first waiter back wins the leadership race and re-runs
					// fn — its own closure over its own live context.
					continue
				}
				m.hits.Add(1)
				return fl.ans, fl.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		fl := &flight{done: make(chan struct{})}
		sh.inflight[key] = fl
		sh.mu.Unlock()
		m.misses.Add(1)

		fl.ans, fl.err = fn()
		// Distinguish "the pipeline failed" (shared with waiters; they see
		// the same backend the next retry would) from "this caller was
		// canceled" (private; surviving waiters re-run instead).
		if fl.err != nil && ctx.Err() != nil && errors.Is(fl.err, ctx.Err()) {
			fl.handoff = true
		}

		sh.mu.Lock()
		delete(sh.inflight, key)
		if fl.err == nil {
			sh.entries[key] = sh.ll.PushFront(&memoEntry{key: key, ans: fl.ans})
			for sh.ll.Len() > m.capacity {
				old := sh.ll.Back()
				sh.ll.Remove(old)
				delete(sh.entries, old.Value.(*memoEntry).key)
			}
		}
		sh.mu.Unlock()
		close(fl.done)
		return fl.ans, fl.err
	}
}

// Get returns the memoized Answer for (db, question) without computing.
func (m *AnswerMemo) Get(db, question string) (*Answer, bool) {
	key := askKey(db, question)
	sh := m.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	sh.ll.MoveToFront(el)
	return el.Value.(*memoEntry).ans, true
}

// Len reports the number of memoized answers across shards.
func (m *AnswerMemo) Len() int {
	n := 0
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats reports cumulative (hits, misses); collapsed singleflight waiters
// count as hits.
func (m *AnswerMemo) Stats() (hits, misses int64) {
	return m.hits.Load(), m.misses.Load()
}
