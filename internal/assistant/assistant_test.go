package assistant

import (
	"context"
	"strings"
	"testing"

	"fisql/internal/dataset/spider"
	"fisql/internal/llm"
	"fisql/internal/rag"
	"fisql/internal/sqlparse"
)

func TestReformulate(t *testing.T) {
	tests := []struct {
		sql  string
		want string
	}{
		{"SELECT COUNT(*) FROM singer", "Finds the count of rows from singer."},
		{"SELECT name FROM singer WHERE age > 20",
			"Finds the name from singer where the age is greater than 20."},
		{"SELECT name, age FROM singer",
			"Finds the name and the age from singer."},
		{"SELECT * FROM singer", "Finds all columns from singer."},
		{"SELECT AVG(age) FROM singer", "Finds the average age from singer."},
	}
	for _, tc := range tests {
		s, err := sqlparse.ParseSelect(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		if got := Reformulate(s); got != tc.want {
			t.Errorf("%s:\n got %q\nwant %q", tc.sql, got, tc.want)
		}
	}
}

func TestExplainStepsFigure4Shape(t *testing.T) {
	s, err := sqlparse.ParseSelect(
		"SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'")
	if err != nil {
		t.Fatal(err)
	}
	steps := Explain(s)
	if len(steps) != 3 {
		t.Fatalf("steps: %v", steps)
	}
	if !strings.HasPrefix(steps[0], "First, consider all the hkg dim segment") {
		t.Errorf("step 1: %q", steps[0])
	}
	if !strings.Contains(steps[1], "keep only those where") ||
		!strings.Contains(steps[1], "'2023-01-01'") {
		t.Errorf("step 2: %q", steps[1])
	}
	if !strings.HasPrefix(steps[2], "Finally, return the count of rows") {
		t.Errorf("step 3: %q", steps[2])
	}
}

func TestExplainCoversAllClauses(t *testing.T) {
	s, err := sqlparse.ParseSelect(
		"SELECT country, COUNT(*) FROM singer JOIN concert ON singer.id = concert.singer_id " +
			"WHERE age > 20 GROUP BY country HAVING COUNT(*) > 1 ORDER BY country ASC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(Explain(s), " | ")
	for _, want := range []string{
		"consider all the singer",
		"match them with their concert",
		"keep only those where",
		"group them by",
		"keep only groups where",
		"sort the results by",
		"Finally, return",
		"first 5 rows",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, text)
		}
	}
}

func TestAskEndToEnd(t *testing.T) {
	ds, err := spider.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := &Assistant{
		Client: llm.NewSim(ds),
		DS:     ds,
		Store:  rag.NewStore(ds.Demos),
		K:      8,
	}
	e := ds.Examples[0]
	ans, err := a.Ask(context.Background(), e.DB, e.Question)
	if err != nil {
		t.Fatal(err)
	}
	if ans.SQL == "" || ans.Reformulation == "" || len(ans.Explanation) == 0 {
		t.Errorf("incomplete answer: %+v", ans)
	}
	if ans.ExecErr != nil {
		t.Errorf("execution failed: %v", ans.ExecErr)
	}
	if ans.Result == nil {
		t.Error("missing result")
	}
}

func TestAskUnknownDatabase(t *testing.T) {
	ds, err := spider.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := &Assistant{Client: llm.NewSim(ds), DS: ds}
	if _, err := a.Ask(context.Background(), "nope", "q?"); err == nil {
		t.Error("unknown db should error")
	}
}

func TestAnswerWithBadSQL(t *testing.T) {
	ds, err := spider.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := &Assistant{Client: llm.NewSim(ds), DS: ds}
	ans := a.Answer(context.Background(), "concert_singer", "THIS IS NOT SQL")
	if ans.ExecErr == nil {
		t.Error("bad SQL should surface an execution error")
	}
	ans = a.Answer(context.Background(), "concert_singer", "SELECT missing_column FROM singer")
	if ans.ExecErr == nil {
		t.Error("unknown column should surface an execution error")
	}
	if ans.Reformulation == "" {
		t.Error("reformulation should still be produced for parseable SQL")
	}
}

func TestAnswerSpans(t *testing.T) {
	ds, err := spider.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := &Assistant{Client: llm.NewSim(ds), DS: ds}
	sql := "SELECT name FROM singer WHERE age > 20 ORDER BY name ASC"
	ans := a.Answer(context.Background(), "concert_singer", sql)
	if len(ans.Spans) == 0 {
		t.Fatal("no spans")
	}
	found := map[string]string{}
	for _, sp := range ans.Spans {
		found[sp.Clause.String()] = sql[sp.Start:sp.End]
	}
	if found["WHERE"] != "WHERE age > 20" {
		t.Errorf("WHERE span: %q", found["WHERE"])
	}
	if found["ORDER BY"] != "ORDER BY name ASC" {
		t.Errorf("ORDER BY span: %q", found["ORDER BY"])
	}
	// Non-canonical SQL (spans would not index the displayed text) yields
	// no spans rather than wrong ones.
	ans = a.Answer(context.Background(), "concert_singer", "select   name from singer")
	if len(ans.Spans) != 0 {
		t.Errorf("non-canonical SQL should not carry spans: %+v", ans.Spans)
	}
}
