package assistant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemoDoCachesAndPromotes(t *testing.T) {
	m := NewAnswerMemo(64)
	var calls atomic.Int64
	fn := func() (*Answer, error) {
		calls.Add(1)
		return &Answer{SQL: "SELECT 1"}, nil
	}
	a1, err := m.Do(context.Background(), "db", "q", fn)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Do(context.Background(), "db", "q", fn)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("second Do should return the cached *Answer")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if hits, misses := m.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if got, ok := m.Get("db", "q"); !ok || got != a1 {
		t.Errorf("Get = (%v, %v), want the cached answer", got, ok)
	}
	if _, ok := m.Get("db", "other"); ok {
		t.Error("Get of an unknown question should miss")
	}
}

// TestMemoSingleflight proves the exactly-once contract: N concurrent asks
// of the same (db, question) run the pipeline function exactly once, and
// every caller receives the one shared *Answer.
func TestMemoSingleflight(t *testing.T) {
	const waiters = 8
	m := NewAnswerMemo(64)
	var calls atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})
	fn := func() (*Answer, error) {
		calls.Add(1)
		close(entered)
		<-release // hold the flight open so the others must join it
		return &Answer{SQL: "SELECT 42"}, nil
	}

	results := make(chan *Answer, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a, err := m.Do(context.Background(), "db", "q", fn)
		if err != nil {
			t.Error(err)
		}
		results <- a
	}()
	<-entered // the leader is inside fn; its flight is registered

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := m.Do(context.Background(), "db", "q", fn)
			if err != nil {
				t.Error(err)
			}
			results <- a
		}()
	}
	// Wait until all followers are parked on the flight before releasing it,
	// so this test genuinely exercises the waiter path.
	fl := func() *flight {
		key := askKey("db", "q")
		sh := m.shardFor(key)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.inflight[key]
	}()
	if fl == nil {
		t.Fatal("no inflight entry while fn is blocked")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fl.waiters.Load() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters joined the flight", fl.waiters.Load(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	if n := calls.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times for %d concurrent asks, want exactly 1", n, waiters+1)
	}
	var first *Answer
	for a := range results {
		if first == nil {
			first = a
		}
		if a != first {
			t.Fatal("concurrent asks returned different Answer pointers")
		}
	}
	if first == nil || first.SQL != "SELECT 42" {
		t.Fatalf("unexpected answer %+v", first)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	m := NewAnswerMemo(64)
	var calls atomic.Int64
	boom := errors.New("boom")
	fn := func() (*Answer, error) {
		calls.Add(1)
		return nil, boom
	}
	if _, err := m.Do(context.Background(), "db", "q", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := m.Do(context.Background(), "db", "q", fn); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want boom (errors must not be cached)", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("fn ran %d times, want 2 — a failed flight must retry", n)
	}
	if m.Len() != 0 {
		t.Errorf("memo holds %d entries after failures, want 0", m.Len())
	}
}

func TestMemoWaiterHonorsContext(t *testing.T) {
	m := NewAnswerMemo(64)
	release := make(chan struct{})
	entered := make(chan struct{})
	go m.Do(context.Background(), "db", "q", func() (*Answer, error) {
		close(entered)
		<-release
		return &Answer{}, nil
	})
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.Do(ctx, "db", "q", func() (*Answer, error) {
		t.Error("canceled waiter must not start its own flight")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestMemoKeyNamespaces checks that an ask for question X and an executed
// SQL that happens to equal X do not collide in the cache.
func TestMemoKeyNamespaces(t *testing.T) {
	m := NewAnswerMemo(64)
	text := "SELECT * FROM t"
	askAns := &Answer{SQL: "ask"}
	sqlAns := &Answer{SQL: "sql"}
	m.Do(context.Background(), "db", text, func() (*Answer, error) { return askAns, nil })
	got, err := m.DoSQL(context.Background(), "db", text, func() (*Answer, error) { return sqlAns, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != sqlAns {
		t.Error("DoSQL hit the ask-namespace entry; namespaces must be disjoint")
	}
	if m.Len() != 2 {
		t.Errorf("memo holds %d entries, want 2", m.Len())
	}
}

func TestMemoEvictsLRU(t *testing.T) {
	// Capacity 16 spreads to exactly 1 entry per shard, so any two keys that
	// land in the same shard exercise eviction of the least recently used.
	m := NewAnswerMemo(16)
	const n = 64
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("question %d", i)
		m.Do(context.Background(), "db", q, func() (*Answer, error) {
			return &Answer{SQL: q}, nil
		})
	}
	if got := m.Len(); got > 16 {
		t.Errorf("memo holds %d entries, capacity is 16", got)
	}
	// The most recent insertion into its shard must still be resident.
	if _, ok := m.Get("db", fmt.Sprintf("question %d", n-1)); !ok {
		t.Error("most recently used entry was evicted")
	}
}
