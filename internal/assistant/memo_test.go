package assistant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemoDoCachesAndPromotes(t *testing.T) {
	m := NewAnswerMemo(64)
	var calls atomic.Int64
	fn := func() (*Answer, error) {
		calls.Add(1)
		return &Answer{SQL: "SELECT 1"}, nil
	}
	a1, err := m.Do(context.Background(), "db", "q", fn)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m.Do(context.Background(), "db", "q", fn)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("second Do should return the cached *Answer")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if hits, misses := m.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if got, ok := m.Get("db", "q"); !ok || got != a1 {
		t.Errorf("Get = (%v, %v), want the cached answer", got, ok)
	}
	if _, ok := m.Get("db", "other"); ok {
		t.Error("Get of an unknown question should miss")
	}
}

// TestMemoSingleflight proves the exactly-once contract: N concurrent asks
// of the same (db, question) run the pipeline function exactly once, and
// every caller receives the one shared *Answer.
func TestMemoSingleflight(t *testing.T) {
	const waiters = 8
	m := NewAnswerMemo(64)
	var calls atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{})
	fn := func() (*Answer, error) {
		calls.Add(1)
		close(entered)
		<-release // hold the flight open so the others must join it
		return &Answer{SQL: "SELECT 42"}, nil
	}

	results := make(chan *Answer, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a, err := m.Do(context.Background(), "db", "q", fn)
		if err != nil {
			t.Error(err)
		}
		results <- a
	}()
	<-entered // the leader is inside fn; its flight is registered

	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a, err := m.Do(context.Background(), "db", "q", fn)
			if err != nil {
				t.Error(err)
			}
			results <- a
		}()
	}
	// Wait until all followers are parked on the flight before releasing it,
	// so this test genuinely exercises the waiter path.
	fl := func() *flight {
		key := askKey("db", "q")
		sh := m.shardFor(key)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.inflight[key]
	}()
	if fl == nil {
		t.Fatal("no inflight entry while fn is blocked")
	}
	deadline := time.Now().Add(5 * time.Second)
	for fl.waiters.Load() < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters joined the flight", fl.waiters.Load(), waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)

	if n := calls.Load(); n != 1 {
		t.Fatalf("pipeline ran %d times for %d concurrent asks, want exactly 1", n, waiters+1)
	}
	var first *Answer
	for a := range results {
		if first == nil {
			first = a
		}
		if a != first {
			t.Fatal("concurrent asks returned different Answer pointers")
		}
	}
	if first == nil || first.SQL != "SELECT 42" {
		t.Fatalf("unexpected answer %+v", first)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	m := NewAnswerMemo(64)
	var calls atomic.Int64
	boom := errors.New("boom")
	fn := func() (*Answer, error) {
		calls.Add(1)
		return nil, boom
	}
	if _, err := m.Do(context.Background(), "db", "q", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, err := m.Do(context.Background(), "db", "q", fn); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want boom (errors must not be cached)", err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("fn ran %d times, want 2 — a failed flight must retry", n)
	}
	if m.Len() != 0 {
		t.Errorf("memo holds %d entries after failures, want 0", m.Len())
	}
}

func TestMemoWaiterHonorsContext(t *testing.T) {
	m := NewAnswerMemo(64)
	release := make(chan struct{})
	entered := make(chan struct{})
	go m.Do(context.Background(), "db", "q", func() (*Answer, error) {
		close(entered)
		<-release
		return &Answer{}, nil
	})
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := m.Do(ctx, "db", "q", func() (*Answer, error) {
		t.Error("canceled waiter must not start its own flight")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	close(release)
}

// TestMemoKeyNamespaces checks that an ask for question X and an executed
// SQL that happens to equal X do not collide in the cache.
func TestMemoKeyNamespaces(t *testing.T) {
	m := NewAnswerMemo(64)
	text := "SELECT * FROM t"
	askAns := &Answer{SQL: "ask"}
	sqlAns := &Answer{SQL: "sql"}
	m.Do(context.Background(), "db", text, func() (*Answer, error) { return askAns, nil })
	got, err := m.DoSQL(context.Background(), "db", text, func() (*Answer, error) { return sqlAns, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got != sqlAns {
		t.Error("DoSQL hit the ask-namespace entry; namespaces must be disjoint")
	}
	if m.Len() != 2 {
		t.Errorf("memo holds %d entries, want 2", m.Len())
	}
}

func TestMemoEvictsLRU(t *testing.T) {
	// Capacity 16 spreads to exactly 1 entry per shard, so any two keys that
	// land in the same shard exercise eviction of the least recently used.
	m := NewAnswerMemo(16)
	const n = 64
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("question %d", i)
		m.Do(context.Background(), "db", q, func() (*Answer, error) {
			return &Answer{SQL: q}, nil
		})
	}
	if got := m.Len(); got > 16 {
		t.Errorf("memo holds %d entries, capacity is 16", got)
	}
	// The most recent insertion into its shard must still be resident.
	if _, ok := m.Get("db", fmt.Sprintf("question %d", n-1)); !ok {
		t.Error("most recently used entry was evicted")
	}
}

// TestMemoCanceledLeaderHandsOffToWaiters pins the disconnect-vs-dedup
// contract: when the singleflight leader's own context is canceled mid
// computation, surviving waiters must not inherit its context.Canceled —
// one of them re-runs the computation under its own context and every
// survivor gets the real Answer.
func TestMemoCanceledLeaderHandsOffToWaiters(t *testing.T) {
	m := NewAnswerMemo(64)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{}) // leader's fn has started
	leaderGo := make(chan struct{}) // release the leader's fn

	var runs atomic.Int64
	leaderFn := func() (*Answer, error) {
		runs.Add(1)
		close(leaderIn)
		<-leaderGo
		// The pipeline observes the canceled context, as a real ask would.
		return nil, fmt.Errorf("generate sql: %w", leaderCtx.Err())
	}
	waiterFn := func() (*Answer, error) {
		runs.Add(1)
		return &Answer{SQL: "SELECT 42"}, nil
	}

	var leaderErr error
	var wgLeader sync.WaitGroup
	wgLeader.Add(1)
	go func() {
		defer wgLeader.Done()
		_, leaderErr = m.Do(leaderCtx, "db", "q", leaderFn)
	}()
	<-leaderIn

	const waiters = 4
	results := make([]*Answer, waiters)
	errs := make([]error, waiters)
	var wgWaiters sync.WaitGroup
	started := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wgWaiters.Add(1)
		go func(i int) {
			defer wgWaiters.Done()
			started <- struct{}{}
			results[i], errs[i] = m.Do(context.Background(), "db", "q", waiterFn)
		}(i)
	}
	for i := 0; i < waiters; i++ {
		<-started
	}
	time.Sleep(10 * time.Millisecond) // let the waiters block on the flight

	cancelLeader()
	close(leaderGo)
	wgWaiters.Wait()
	wgLeader.Wait()

	if !errors.Is(leaderErr, context.Canceled) {
		t.Errorf("leader: err=%v, want its own context.Canceled", leaderErr)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Errorf("waiter %d poisoned by the leader's cancellation: %v", i, errs[i])
			continue
		}
		if results[i] == nil || results[i].SQL != "SELECT 42" {
			t.Errorf("waiter %d: answer %+v", i, results[i])
		}
	}
	// Exactly one waiter re-ran; the rest shared its result, now cached.
	if n := runs.Load(); n != 2 {
		t.Errorf("fn ran %d times, want 2 (canceled leader + one re-run)", n)
	}
	if got, ok := m.Get("db", "q"); !ok || got.SQL != "SELECT 42" {
		t.Errorf("re-run result not cached: (%v, %v)", got, ok)
	}
}

// TestMemoRealErrorStillSharedWithWaiters guards the other side of the
// handoff rule: a genuine pipeline failure (leader's ctx still live) is
// shared with every waiter — no retry stampede on a down backend.
func TestMemoRealErrorStillSharedWithWaiters(t *testing.T) {
	m := NewAnswerMemo(64)
	boom := errors.New("backend down")
	in := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int64
	fn := func() (*Answer, error) {
		runs.Add(1)
		close(in)
		<-release
		return nil, boom
	}
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leaderErr = m.Do(context.Background(), "db", "q", fn)
	}()
	<-in
	const waiters = 3
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = m.Do(context.Background(), "db", "q", fn)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if !errors.Is(leaderErr, boom) {
		t.Errorf("leader: %v", leaderErr)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("waiter %d: err=%v, want the shared pipeline error", i, err)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1 — real errors must stay singleflight", n)
	}
}
