// Streaming: stage-by-stage delivery of an Answer in progress.
//
// The serving tier's SSE endpoint wants to push each of the paper's four
// outputs to the client as soon as the pipeline produces it — SQL when the
// model answers, the reformulation and explanation when the plan's
// presentation is assembled, the result when execution finishes — instead
// of holding everything until the full Answer exists. A Stream carried by
// the request context receives those stage completions; a context without
// one costs the pipeline a nil check per stage, mirroring obs.Trace.
//
// Streaming is best-effort by design: a memoized Answer (or a singleflight
// waiter sharing another caller's computation) skips the pipeline, so no
// stage fires. Consumers that promise a complete event sequence (the SSE
// handler) synthesize the missing stages from the finished Answer — every
// payload below is derivable from it, so the synthesized stream is
// indistinguishable from a live one.
package assistant

import (
	"context"

	"fisql/internal/engine"
	"fisql/internal/sqlast"
)

// Stream observes pipeline stage completions for one Ask. Implementations
// are called from the goroutine running the pipeline, in order: OnSQL,
// OnExplanation, OnResult. On early pipeline failure later stages are
// skipped (generation errors fire no stage at all; a parse failure fires
// OnResult with the error but no OnExplanation).
type Stream interface {
	// OnSQL delivers the generated SQL, before planning and execution.
	OnSQL(sql string)
	// OnExplanation delivers the plan-derived presentation.
	OnExplanation(reformulation string, explanation []string, spans []sqlast.Span)
	// OnResult delivers the execution outcome: res on success, execErr when
	// the SQL failed to plan or run (exactly Answer.Result / Answer.ExecErr).
	OnResult(res *engine.Result, execErr error)
}

type streamKey struct{}

// WithStream returns a context carrying s; the pipeline stages of an Ask
// run under it report to s as they complete. A nil s returns ctx unchanged.
func WithStream(ctx context.Context, s Stream) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, streamKey{}, s)
}

// StreamFrom extracts the Stream carried by ctx, or nil.
func StreamFrom(ctx context.Context) Stream {
	s, _ := ctx.Value(streamKey{}).(Stream)
	return s
}
