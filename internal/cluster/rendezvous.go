// Package cluster is the multi-node serving tier: a router that pins
// sessions to nodes by rendezvous hashing, a compact binary-over-HTTP
// inter-node protocol that forwards /v1/* traffic to the owning node and
// streams journal frames to followers, and failover that promotes a
// session's follower when its owner dies — rebuilding the session by the
// same deterministic replay a single-node restart uses, so acknowledged
// turns survive a node loss byte-identically.
//
// Placement is pure function, not state: the owner of session s under
// member set M is the member with the highest rendezvous weight
// hash(member, s), and the designated follower is the second-highest.
// Because removing a member never reorders the remaining weights, the
// survivor ranked first after the owner dies is exactly the old follower —
// the node already holding the session's replicated journal. Failover
// therefore needs no ownership table, no leader election, and moves no
// session that didn't lose its owner.
package cluster

import "sort"

// Member is one node of the cluster as the router and the nodes themselves
// see it.
type Member struct {
	// ID is the stable node name; it feeds the rendezvous hash, so renaming
	// a node moves its sessions.
	ID string `json:"id"`
	// Addr is the node's base URL (scheme://host:port, no trailing slash).
	Addr string `json:"addr"`
}

// weight is the rendezvous score of key on member: FNV-1a 64 over the
// member id, a separator, and the key, passed through a splitmix64-style
// finalizer. FNV alone correlates scores of keys sharing long prefixes
// (session ids are "s1", "s2", ... — all sharing "s"); the finalizer's
// avalanche breaks that correlation so placement is uniform.
func weight(memberID, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(memberID); i++ {
		h ^= uint64(memberID[i])
		h *= prime64
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owners returns up to n members ranked by descending rendezvous weight
// for key: index 0 is the session's owner, index 1 its designated
// follower. Ties (astronomically unlikely with 64-bit weights, but the
// ordering must still be total) break toward the smaller member id.
func Owners(key string, members []Member, n int) []Member {
	if len(members) == 0 || n <= 0 {
		return nil
	}
	ranked := append([]Member(nil), members...)
	sort.Slice(ranked, func(a, b int) bool {
		wa, wb := weight(ranked[a].ID, key), weight(ranked[b].ID, key)
		if wa != wb {
			return wa > wb
		}
		return ranked[a].ID < ranked[b].ID
	})
	if n < len(ranked) {
		ranked = ranked[:n]
	}
	return ranked
}

// Owner returns the member that owns key, false when members is empty.
func Owner(key string, members []Member) (Member, bool) {
	top := Owners(key, members, 1)
	if len(top) == 0 {
		return Member{}, false
	}
	return top[0], true
}

// Follower returns the designated follower for key — the member holding
// the session's replicated journal — false when the cluster has fewer than
// two members.
func Follower(key string, members []Member) (Member, bool) {
	top := Owners(key, members, 2)
	if len(top) < 2 {
		return Member{}, false
	}
	return top[1], true
}
