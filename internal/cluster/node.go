package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/server"
)

// maxReplicaBody caps one replication request body. A full-session resync
// of the longest plausible session is well under a megabyte; 64 MiB keeps a
// runaway peer from ballooning the follower.
const maxReplicaBody = 64 << 20

// replStripes is the lock-striping factor of per-session replication: the
// owner must never interleave a session's full-resync frames with its
// incremental frames (the follower would retain duplicate records), so both
// paths serialize on the session's stripe.
const replStripes = 16

// NodeConfig configures NewNode.
type NodeConfig struct {
	// ID is this node's stable name; it must appear in Members.
	ID string
	// Members is the static bootstrap membership. The router's pushes
	// replace it at runtime.
	Members []Member
	// Systems maps corpus names to session factories, as for server.New.
	Systems map[string]server.SessionFactory
	// Journal is this node's own journal — the sessions it owns. Required:
	// a cluster node without local durability could not honor promotion.
	Journal *persist.Journal
	// Replica holds follower copies of sessions other nodes own. Required.
	Replica *persist.Journal
	// Metrics, when set, receives the fisql_cluster_* node-side series and
	// is passed through to the embedded server.
	Metrics *obs.Metrics
	// Client is the HTTP client for inter-node calls (replication,
	// handoff). Nil gets a 5-second-timeout default.
	Client *http.Client
	// AuthToken, when non-empty, gates every /internal/* endpoint behind
	// the TokenHeader header and rides on this node's own inter-node
	// calls. The router and all members must share one value; without it
	// any client that can reach a node's port can inject forged replica
	// frames or membership views.
	AuthToken string
	// ServerOptions are extra options for the embedded server (admission,
	// caps, TTLs). WithJournal, WithReplicator, WithPresetSessionIDs and
	// WithMetrics are supplied by NewNode and must not be repeated here.
	ServerOptions []server.Option
}

// Node is one cluster member: the single-node server plus the inter-node
// protocol — journal replication to followers, adoption of replicated
// sessions on promotion, and journaled handoff on rebalance. It serves
// /internal/* itself and delegates everything else to the embedded server.
type Node struct {
	id      string
	srv     *server.Server
	journal *persist.Journal
	replica *persist.Journal
	client  *http.Client
	mux     *http.ServeMux
	token   string

	// applyMu serializes membership application (install + reconcile +
	// resync) in handleMembers. The version check alone is not enough: it
	// runs before the reconcile phase, so a stale push could pass it, lose
	// the race to a newer push, and then reconcile the replica journal
	// against the outdated view — deleting replica sessions the newer view
	// still needs.
	applyMu sync.Mutex

	mu      sync.Mutex
	members []Member
	version int64
	// lastFollower records, per owned session, the node id its records were
	// last successfully replicated to. A mismatch with the current
	// rendezvous follower (membership changed, or a send failed) triggers a
	// full-session resync instead of an incremental frame.
	lastFollower map[string]string

	replMu [replStripes]sync.Mutex

	replicatedRecs *obs.Counter
	replErrs       *obs.Counter
	adoptedTotal   *obs.Counter
	handoffsOut    *obs.Counter
	redeliveries   *obs.Counter
}

// NewNode builds the node. The embedded server performs journal recovery
// before NewNode returns, exactly as a single-node restart would.
func NewNode(cfg NodeConfig) *Node {
	n := &Node{
		id:           cfg.ID,
		journal:      cfg.Journal,
		replica:      cfg.Replica,
		client:       cfg.Client,
		token:        cfg.AuthToken,
		members:      append([]Member(nil), cfg.Members...),
		lastFollower: map[string]string{},
	}
	if n.client == nil {
		n.client = &http.Client{Timeout: 5 * time.Second}
	}
	opts := append([]server.Option(nil), cfg.ServerOptions...)
	opts = append(opts,
		server.WithJournal(cfg.Journal),
		server.WithReplicator(n.replicate),
		server.WithPresetSessionIDs(),
	)
	if cfg.Metrics != nil {
		opts = append(opts, server.WithMetrics(cfg.Metrics))
		r := cfg.Metrics.Registry
		n.replicatedRecs = r.Counter("fisql_cluster_replicated_records_total")
		n.replErrs = r.Counter("fisql_cluster_replication_errors_total")
		n.adoptedTotal = r.Counter("fisql_cluster_adopted_sessions_total")
		n.handoffsOut = r.Counter("fisql_cluster_handoffs_out_total")
		n.redeliveries = r.Counter("fisql_cluster_delete_redeliveries_total")
		rep := cfg.Replica
		r.GaugeFunc("fisql_cluster_replica_sessions", func() int64 { return rep.Stats().LiveSessions })
	}
	n.srv = server.New(cfg.Systems, opts...)
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /internal/replicate", n.handleReplicate)
	n.mux.HandleFunc("POST /internal/members", n.handleMembers)
	n.mux.HandleFunc("POST /internal/promote", n.handlePromote)
	n.mux.HandleFunc("POST /internal/adopt", n.handleAdopt)
	n.mux.HandleFunc("POST /internal/rebalance", n.handleRebalance)
	n.mux.HandleFunc("GET /internal/status", n.handleStatus)
	return n
}

// Server exposes the embedded single-node server (recovery info, session
// ids) for the command and tests.
func (n *Node) Server() *server.Server { return n.srv }

// ServeHTTP routes /internal/* to the cluster protocol and everything else
// to the embedded server.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/internal/") {
		if !checkToken(w, r, n.token) {
			return
		}
		n.mux.ServeHTTP(w, r)
		return
	}
	n.srv.ServeHTTP(w, r)
}

func (n *Node) membersSnapshot() []Member {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Member(nil), n.members...)
}

func (n *Node) stripe(id string) *sync.Mutex {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &n.replMu[h.Sum32()%replStripes]
}

// replicate is the server.Replicator hook: called after the local journal
// append, before the turn is acknowledged. It ships the record to the
// session's rendezvous follower — incrementally when that follower is in
// sync, as a full-session frame stream when the follower changed or a
// previous send failed (the replica journal's re-create handling makes the
// full set a clean replacement, not a duplication).
func (n *Node) replicate(rec persist.Record) error {
	if rec.Type == persist.THandoff {
		// A handoff record is local bookkeeping: it ends the session's
		// residence in THIS journal while the new owner full-syncs the same
		// session to its own follower — and under the post-move membership
		// that follower is often the very node a shipped handoff frame
		// would reach. The replica journal treats a handoff like a delete,
		// so shipping it would destroy the replica the new owner just
		// established and silently orphan every later incremental frame,
		// leaving the moved session permanently single-copy. The old
		// follower's now-stale replica (if any) is dropped by
		// reconcileReplica on the membership push instead.
		n.mu.Lock()
		delete(n.lastFollower, rec.Session)
		n.mu.Unlock()
		return nil
	}
	members := n.membersSnapshot()
	f, ok := Follower(rec.Session, members)
	if !ok || f.ID == n.id {
		// Single-node cluster: no follower to keep. Local durability stands.
		return nil
	}
	mu := n.stripe(rec.Session)
	mu.Lock()
	defer mu.Unlock()
	n.mu.Lock()
	last := n.lastFollower[rec.Session]
	n.mu.Unlock()
	recs := []persist.Record{rec}
	if last != f.ID {
		// The just-appended record is already in the journal's retained set,
		// so the full set includes it. A delete of the session drops the set
		// to nil — ship the terminal record alone.
		if full := n.journal.SessionRecords(rec.Session); full != nil {
			recs = full
		}
	}
	if err := n.postFrames(f, "/internal/replicate", persist.EncodeFrames(recs)); err != nil {
		n.replErrs.Inc()
		n.mu.Lock()
		delete(n.lastFollower, rec.Session)
		n.mu.Unlock()
		if rec.Type == persist.TDelete {
			// The removal is already final here, but the follower missed it:
			// if this node died now, promotion would resurrect the session
			// from the stale replica (consuming a store slot too). Deletes
			// are acknowledged best-effort — a removal cannot be un-removed —
			// so keep pushing in the background until the follower confirms.
			go n.redeliverDelete(rec)
		}
		return err
	}
	n.replicatedRecs.Add(int64(len(recs)))
	n.mu.Lock()
	if rec.Type == persist.TDelete {
		delete(n.lastFollower, rec.Session)
	} else {
		n.lastFollower[rec.Session] = f.ID
	}
	n.mu.Unlock()
	return nil
}

// redeliverDelete retries a session's delete record against its current
// follower after the synchronous send failed, shrinking the resurrection
// window the best-effort delete replication leaves open. Session ids are
// never reused, so a late delivery can never clash with a new session of
// the same name; a delete landing on a follower that holds no replica is a
// harmless no-op. Each attempt re-resolves the follower from the
// then-current membership; attempts are bounded — past them, the stale
// replica is dropped at the latest by reconcileReplica on the next
// membership change involving the session.
func (n *Node) redeliverDelete(rec persist.Record) {
	frames := persist.EncodeFrames([]persist.Record{rec})
	delay := 25 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		time.Sleep(delay)
		delay *= 2
		f, ok := Follower(rec.Session, n.membersSnapshot())
		if !ok || f.ID == n.id {
			return // no follower to convince anymore
		}
		mu := n.stripe(rec.Session)
		mu.Lock()
		err := n.postFrames(f, "/internal/replicate", frames)
		mu.Unlock()
		if err == nil {
			n.redeliveries.Inc()
			return
		}
		n.replErrs.Inc()
	}
}

func (n *Node) postFrames(m Member, path string, frames []byte) error {
	req, err := http.NewRequest(http.MethodPost, m.Addr+path, bytes.NewReader(frames))
	if err != nil {
		return fmt.Errorf("post %s to %s: %w", path, m.ID, err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if n.token != "" {
		req.Header.Set(TokenHeader, n.token)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("post %s to %s: %w", path, m.ID, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("post %s to %s: status %d", path, m.ID, resp.StatusCode)
	}
	return nil
}

// handleReplicate appends a follower stream to the replica journal. The
// body is raw journal frames — the owner's on-disk encoding, CRC and all —
// validated as a whole before any record is applied, so a torn or corrupt
// stream leaves the replica journal untouched and the owner retries.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read frames: "+err.Error())
		return
	}
	recs, _, err := persist.ScanBytes(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decode frames: "+err.Error())
		return
	}
	appended := 0
	for _, rec := range recs {
		if rec.Type == persist.THandoff {
			// Defense in depth: no current owner ships handoff markers (they
			// are local bookkeeping — see replicate), and applying one here
			// would delete a replica whose new owner believes it is in sync.
			continue
		}
		if err := n.replica.Append(rec); err != nil {
			httpError(w, http.StatusInternalServerError, "replica append: "+err.Error())
			return
		}
		appended++
	}
	writeJSON(w, map[string]any{"appended": appended})
}

type membersMsg struct {
	Version int64    `json:"version"`
	Members []Member `json:"members"`
}

// handleMembers installs a pushed membership view, then reconciles both
// journals against it: replica sessions this node neither owns nor follows
// under the new view are dropped, and owned sessions whose rendezvous
// follower changed are resynced in full — so a single later failure never
// finds a session without a live replica.
func (n *Node) handleMembers(w http.ResponseWriter, r *http.Request) {
	var msg membersMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&msg); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	// Serialize install + reconcile (see applyMu): without this a stale
	// push that passed the version check could reconcile after a newer push
	// installed, pruning replicas against the outdated view.
	n.applyMu.Lock()
	defer n.applyMu.Unlock()
	n.mu.Lock()
	if msg.Version < n.version {
		// An out-of-order push from an older view; the newer one already
		// landed.
		n.mu.Unlock()
		writeJSON(w, map[string]any{"version": n.version, "stale": true})
		return
	}
	n.version = msg.Version
	n.members = append([]Member(nil), msg.Members...)
	n.mu.Unlock()

	n.reconcileReplica(msg.Members)
	for _, id := range n.srv.SessionIDs() {
		n.resyncSession(id, msg.Members)
	}
	writeJSON(w, map[string]any{"version": msg.Version, "members": len(msg.Members)})
}

// reconcileReplica drops replica sessions this node is no longer involved
// with. A session whose new owner is this node is kept — it is pending
// adoption by the promote call that follows a membership push.
func (n *Node) reconcileReplica(members []Member) {
	for _, id := range n.replica.LiveSessions() {
		keep := false
		for _, m := range Owners(id, members, 2) {
			if m.ID == n.id {
				keep = true
			}
		}
		if !keep {
			_ = n.replica.Append(persist.Record{Type: persist.TDelete, Session: id})
		}
	}
}

// resyncSession ships one owned session's full record set to its current
// follower if that follower is not known to be in sync.
func (n *Node) resyncSession(id string, members []Member) {
	f, ok := Follower(id, members)
	if !ok || f.ID == n.id {
		return
	}
	mu := n.stripe(id)
	mu.Lock()
	defer mu.Unlock()
	n.mu.Lock()
	last := n.lastFollower[id]
	n.mu.Unlock()
	if last == f.ID {
		return
	}
	recs := n.journal.SessionRecords(id)
	if recs == nil {
		return
	}
	if err := n.postFrames(f, "/internal/replicate", persist.EncodeFrames(recs)); err != nil {
		n.replErrs.Inc()
		return
	}
	n.replicatedRecs.Add(int64(len(recs)))
	n.mu.Lock()
	n.lastFollower[id] = f.ID
	n.mu.Unlock()
}

type promoteMsg struct {
	Dead string `json:"dead"`
}

type promoteResp struct {
	Adopted   []string `json:"adopted"`
	Watermark int64    `json:"watermark"`
}

// handlePromote runs after a node death (the router has already pushed the
// surviving membership): every replica session whose owner under the
// current view is this node is adopted — rebuilt by deterministic replay,
// journaled locally, replicated to its new follower — and its id watermark
// is reported so the router's id issuance never reuses a dead node's ids.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	var msg promoteMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&msg); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	members := n.membersSnapshot()
	var recs []persist.Record
	for _, id := range n.replica.LiveSessions() {
		owner, ok := Owner(id, members)
		if !ok || owner.ID != n.id {
			continue
		}
		recs = append(recs, n.replica.SessionRecords(id)...)
	}
	res := n.srv.AdoptSessions(recs)
	for _, id := range res.Adopted {
		// The session now lives in this node's own journal; its replica
		// entry here is done (its new follower got a copy during adoption).
		_ = n.replica.Append(persist.Record{Type: persist.TDelete, Session: id})
	}
	n.adoptedTotal.Add(int64(len(res.Adopted)))
	wm := n.journal.Watermark()
	if rw := n.replica.Watermark(); rw > wm {
		wm = rw
	}
	if res.MaxID > wm {
		wm = res.MaxID
	}
	writeJSON(w, promoteResp{Adopted: res.Adopted, Watermark: wm})
}

// handleAdopt receives a handed-off session as raw journal frames from its
// old owner during a rebalance and adopts it through the same replay path
// promotion uses.
func (n *Node) handleAdopt(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read frames: "+err.Error())
		return
	}
	recs, _, err := persist.ScanBytes(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "decode frames: "+err.Error())
		return
	}
	res := n.srv.AdoptSessions(recs)
	for _, id := range res.Adopted {
		// If this node followed the session before becoming its owner, that
		// replica copy is now redundant: the live copy sits in the own
		// journal and replicates onward to the session's new follower.
		// Without this, a later promotion would see the stale replica.
		_ = n.replica.Append(persist.Record{Type: persist.TDelete, Session: id})
	}
	n.adoptedTotal.Add(int64(len(res.Adopted)))
	writeJSON(w, promoteResp{Adopted: res.Adopted, Watermark: n.journal.Watermark()})
}

type rebalanceMsg struct {
	Members []Member `json:"members"`
}

// handleRebalance hands off every owned session whose rendezvous owner
// under the given target membership is another node: the session's full
// record set goes to the new owner's adopt endpoint, and only after the
// new owner confirms is the session released here — journaled as a
// THandoff naming the target, never a delete, so the journal records a
// move. Drain is this call with a membership that excludes this node.
func (n *Node) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var msg rebalanceMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&msg); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	moved := 0
	var failed []string
	for _, id := range n.srv.SessionIDs() {
		owner, ok := Owner(id, msg.Members)
		if !ok || owner.ID == n.id {
			continue
		}
		recs := n.journal.SessionRecords(id)
		if recs == nil {
			continue
		}
		if err := n.postFrames(owner, "/internal/adopt", persist.EncodeFrames(recs)); err != nil {
			failed = append(failed, id)
			continue
		}
		n.srv.ReleaseSession(id, owner.ID)
		moved++
	}
	n.handoffsOut.Add(int64(moved))
	writeJSON(w, map[string]any{"moved": moved, "failed": failed})
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	version := n.version
	n.mu.Unlock()
	writeJSON(w, map[string]any{
		"id":               n.id,
		"version":          version,
		"sessions":         len(n.srv.SessionIDs()),
		"replica_sessions": len(n.replica.LiveSessions()),
		"watermark":        n.journal.Watermark(),
	})
}

// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	b, _ := json.Marshal(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}
