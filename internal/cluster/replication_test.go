// Torn-frame sweep over the replication stream: the follower's replica
// journal is the only copy of a session once the owner dies, so a torn
// write at ANY byte boundary of that file must recover to exactly the
// acknowledged prefix — never a corrupt record, never a half-applied turn.
// The sweep truncates the replica at every byte offset, replays each
// prefix through a fresh server, and compares the served history against
// the history captured from the primary after the corresponding turn.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fisql/internal/persist"
	"fisql/internal/persist/persisttest"
	"fisql/internal/server"
)

func TestReplicaTornFrameSweep(t *testing.T) {
	tc := newTestCluster(t, 2, clusterOptions{})

	id := tc.createSession(t)
	// captures[k] is the primary-served history after the first k records
	// (k=1 is the bare create). A replica truncated to k complete frames
	// must replay to exactly captures[k].
	captures := map[int][]byte{}
	snap := func(k int) {
		h, err := persisttest.History(tc.client, tc.url(), id)
		if err != nil {
			t.Fatalf("capture after %d records: %v", k, err)
		}
		captures[k] = h
	}
	snap(1)
	code, ans := tc.ask(t, id, askQuestion)
	if code != http.StatusOK {
		t.Fatalf("ask: %d", code)
	}
	snap(2)
	// A grounded feedback turn when the SQL offers an anchor — the replica
	// must round-trip the highlight fields too; plain feedback otherwise.
	fb := map[string]any{"text": "we are in 2024"}
	if sql, _ := ans["sql"].(string); strings.Contains(sql, "2023") {
		fb["highlight"] = "2023"
		fb["highlight_start"] = strings.Index(sql, "2023")
	}
	if code, out := tc.postJSON("/v1/sessions/"+id+"/feedback", fb); code != http.StatusOK {
		t.Fatalf("feedback: %d %v", code, out)
	}
	snap(3)
	if code, _ := tc.ask(t, id, "And in February?"); code != http.StatusOK {
		t.Fatalf("second ask: %d", code)
	}
	snap(4)

	follower, ok := Follower(id, tc.router.Members())
	if !ok {
		t.Fatal("no follower")
	}
	fn := tc.nodes[follower.ID]
	// Crash both nodes journals-first: the replica file is left exactly as
	// the append stream wrote it, no shutdown courtesy.
	for _, tn := range tc.nodes {
		tn.kill(true)
	}
	full, err := os.ReadFile(fn.rpath)
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, err := persist.ScanBytes(full)
	if err != nil {
		t.Fatalf("replica stream itself is torn: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("replica has %d records, want 4 (create, ask, feedback, ask)", len(recs))
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		// Complete frames within the prefix — ends is ascending, so count
		// the entries at or below the cut.
		k := 0
		for k < len(ends) && ends[k] <= int64(cut) {
			k++
		}
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.replica", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := persist.Open(path, persist.Options{Fsync: persist.FsyncOff})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if got := len(j.Records()); got != k {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, k)
		}
		srv := server.New(map[string]server.SessionFactory{"aep": factory(t)}, server.WithJournal(j))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/sessions/"+id+"/history", nil))
		if k == 0 {
			if rec.Code != http.StatusNotFound {
				t.Errorf("cut %d: history of unreplayed session: %d, want 404", cut, rec.Code)
			}
		} else {
			if rec.Code != http.StatusOK {
				t.Fatalf("cut %d: history: %d %s", cut, rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), captures[k]) {
				t.Errorf("cut %d (%d records): replayed history differs from primary's:\nprimary: %s\nreplica: %s",
					cut, k, captures[k], rec.Body.Bytes())
			}
		}
		j.Close()
	}
	// The sweep covered every boundary class: mid-header, mid-payload, and
	// exact frame edges. Sanity-check the file is big enough to have done so.
	if len(full) < 4*12 {
		t.Fatalf("replica file implausibly small: %d bytes", len(full))
	}
	// One JSON-shape check so a formatting change can't silently equalize
	// both sides into garbage: the full replay must contain all six
	// messages (user/assistant per ask, feedback/assistant for the
	// grounded correction).
	var hist struct {
		Turns []json.RawMessage `json:"turns"`
	}
	if err := json.Unmarshal(captures[4], &hist); err != nil || len(hist.Turns) != 6 {
		t.Errorf("full history shape unexpected (err %v): %s", err, captures[4])
	}
}
