// Chaos suite for node failover: kill the owning node at randomized points
// of the request lifecycle — idle between turns, mid-request before the
// journal append, mid-request after the append (via fsync-observer
// injection), mid-SSE stream — and require that every acknowledged turn
// survives promotion with its history bytes intact. The contract under
// test, shared with DESIGN.md "Cluster serving":
//
//   - a turn acknowledged (200/done) before the kill is present,
//     byte-identical, in the promoted node's recovered history;
//   - a turn in flight at the kill either vanishes entirely or appears as
//     a well-formed trailing turn (persisttest.TurnsPrefix) — never as a
//     mutation of acknowledged bytes;
//   - session ids are never reissued across a promotion, even by a
//     restarted router.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/persist/persisttest"
)

// tryPost is the goroutine-safe request helper (no testing.T): chaos tests
// fire turns concurrently with the kill, where any outcome from 200 to a
// transport error is legitimate.
func (tc *testCluster) tryPost(path string, body any) (int, error) {
	buf, _ := json.Marshal(body)
	resp, err := tc.client.Post(tc.url()+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, nil
}

// victimWithSessions picks the node owning the most sessions — killing an
// idle node would make the failover assertions vacuous.
func victimWithSessions(t *testing.T, tc *testCluster) *testNode {
	t.Helper()
	var victim *testNode
	most := 0
	for _, tn := range tc.nodes {
		if tn.killed {
			continue
		}
		if n := len(tn.node.Server().SessionIDs()); n > most {
			victim, most = tn, n
		}
	}
	if victim == nil {
		t.Fatal("no node owns any session")
	}
	return victim
}

// TestFailoverByteIdentical is the deterministic core: a mixed workload
// (asks, grounded feedback, SSE turns), an idle kill of the busiest node,
// explicit failover, and a byte-for-byte comparison of every session's
// history — including the dead node's sessions, now served by the node
// that held their replicas.
func TestFailoverByteIdentical(t *testing.T) {
	rm := obs.NewMetrics()
	tc := newTestCluster(t, 3, clusterOptions{routerMetrics: rm, nodeMetrics: true})

	ids := make([]string, 0, 15)
	for i := 0; i < 15; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		code, ans := tc.ask(t, id, askQuestion)
		if code != http.StatusOK {
			t.Fatalf("ask: %d", code)
		}
		switch i % 3 {
		case 0:
			sql, _ := ans["sql"].(string)
			if off := strings.Index(sql, "2023"); off >= 0 {
				tc.postJSON("/v1/sessions/"+id+"/feedback", map[string]any{
					"text": "we are in 2024", "highlight": "2023", "highlight_start": off})
			}
		case 1:
			tc.feedback(t, id, "only the top 5")
		}
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}

	victim := victimWithSessions(t, tc)
	victimOwned := len(victim.node.Server().SessionIDs())
	victim.kill(false)
	tc.router.MarkDead(victim.id)

	if diffs := persisttest.DiffHistories(tc.client, tc.url(), capture); diffs != nil {
		t.Errorf("histories drifted across failover:\n%s", strings.Join(diffs, "\n"))
	}
	// The dead node's sessions moved to exactly the survivors rendezvous
	// ranks first, and every one keeps taking turns.
	for _, id := range ids {
		owner := tc.ownerOf(id)
		if owner.id == victim.id {
			t.Fatalf("dead node still resolves as owner of %s", id)
		}
		if code, out := tc.ask(t, id, "second question about audiences"); code != http.StatusOK {
			t.Errorf("post-failover ask %s: %d %v", id, code, out)
		}
	}
	// Router metrics observed the failover.
	snap := func(name string) int64 { return rm.Registry.Snapshot().Counters[name] }
	if v := snap("fisql_cluster_failovers_total"); v != 1 {
		t.Errorf("failovers_total = %d, want 1", v)
	}
	if v := snap("fisql_cluster_sessions_promoted_total"); v != int64(victimOwned) {
		t.Errorf("sessions_promoted_total = %d, victim owned %d", v, victimOwned)
	}
	// Survivors' metrics endpoints stay well-formed in both formats.
	for _, tn := range tc.nodes {
		if tn.killed {
			continue
		}
		resp, err := tc.client.Get(tn.ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatalf("metrics on %s: %v", tn.id, err)
		}
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Errorf("metrics JSON on %s: %v", tn.id, err)
		}
		resp.Body.Close()
	}
}

// TestFailoverRandomizedKillPoints kills the owner at a seeded-random
// point relative to an in-flight turn: idle, mid-request with the journal
// already dead (the turn must vanish), or mid-request with connections cut
// first (the turn may have reached the journal and follower — it may
// survive, but only as a whole trailing turn).
func TestFailoverRandomizedKillPoints(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			tc := newTestCluster(t, 3, clusterOptions{})

			ids := make([]string, 0, 6)
			for i := 0; i < 6; i++ {
				id := tc.createSession(t)
				ids = append(ids, id)
				for n := 1 + rng.Intn(3); n > 0; n-- {
					if code, _ := tc.ask(t, id, askQuestion); code != http.StatusOK {
						t.Fatalf("ask: %d", code)
					}
				}
			}
			capture, err := persisttest.Capture(tc.client, tc.url(), ids)
			if err != nil {
				t.Fatal(err)
			}

			victim := victimWithSessions(t, tc)
			// The in-flight turn targets one of the victim's own sessions.
			victimSessions := victim.node.Server().SessionIDs()
			target := victimSessions[rng.Intn(len(victimSessions))]

			mode := rng.Intn(3)
			var inFlight atomic.Bool
			var wg sync.WaitGroup
			if mode != 0 {
				inFlight.Store(true)
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Any outcome is legal: 200 (retried onto the promoted
					// node), 404/410/5xx (caught mid-move), transport error.
					_, _ = tc.tryPost("/v1/sessions/"+target+"/ask",
						map[string]string{"question": "in-flight question"})
				}()
				time.Sleep(time.Duration(rng.Intn(4)) * time.Millisecond)
			}
			victim.kill(mode == 1)
			wg.Wait()
			tc.router.MarkDead(victim.id)

			for _, id := range ids {
				post, err := persisttest.History(tc.client, tc.url(), id)
				if err != nil {
					t.Fatalf("session %s lost in failover: %v", id, err)
				}
				pre := capture[id]
				if id == target && inFlight.Load() {
					if !persisttest.TurnsPrefix(pre, post) {
						t.Errorf("in-flight session %s: acknowledged turns corrupted:\npre:  %s\npost: %s",
							id, pre, post)
					}
					continue
				}
				if !bytes.Equal(post, pre) {
					t.Errorf("session %s drifted:\npre:  %s\npost: %s", id, pre, post)
				}
			}
			// The survivors keep serving every session.
			for _, id := range ids {
				if code, out := tc.ask(t, id, "post-failover question"); code != http.StatusOK {
					t.Errorf("post-failover ask %s: %d %v", id, code, out)
				}
			}
		})
	}
}

// TestFailoverKillAfterJournalAppend pins the nastiest window with fault
// injection: the fsync observer fires inside Append — after the turn hit
// the owner's journal, before the response — and cuts the node's network
// there. The turn was locally durable and (the handler goroutine still
// runs) typically replicated, but never acknowledged: the recovered
// history must extend the acknowledged capture by whole turns only.
func TestFailoverKillAfterJournalAppend(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{fsync: persist.FsyncAlways})

	id := tc.createSession(t)
	if code, _ := tc.ask(t, id, askQuestion); code != http.StatusOK {
		t.Fatalf("baseline ask failed")
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), []string{id})
	if err != nil {
		t.Fatal(err)
	}

	victim := tc.ownerOf(id)
	var armed atomic.Bool
	var once sync.Once
	victim.journal.SetFsyncObserver(func(time.Duration) {
		if !armed.Load() {
			return
		}
		once.Do(func() {
			// Cut the network only: the journal stays alive, so the append
			// that triggered this fsync commits, and in-process replication
			// to the follower still goes through.
			victim.ts.Listener.Close()
			victim.ts.CloseClientConnections()
		})
	})
	armed.Store(true)
	// The ask's journal append fsyncs, the observer kills the network, the
	// response dies on the closed connection, and the router retries onto
	// the promoted follower. 200 means the turn was finally acknowledged
	// (possibly applied twice — documented at-least-once); an error means
	// it stayed unacknowledged. Either way no acknowledged byte may change.
	code, _ := tc.tryPost("/v1/sessions/"+id+"/ask", map[string]string{"question": "second question"})
	armed.Store(false)
	tc.router.MarkDead(victim.id)
	victim.journal.Crash()
	victim.replica.Crash()
	victim.killed = true

	post, err := persisttest.History(tc.client, tc.url(), id)
	if err != nil {
		t.Fatalf("session lost: %v", err)
	}
	if !persisttest.TurnsPrefix(capture[id], post) {
		t.Errorf("acknowledged turns corrupted (in-flight code %d):\npre:  %s\npost: %s",
			code, capture[id], post)
	}
	if code == http.StatusOK && bytes.Equal(post, capture[id]) {
		t.Errorf("turn was acknowledged after retry but is absent from the history")
	}
	if code2, _ := tc.ask(t, id, "third question"); code2 != http.StatusOK {
		t.Errorf("post-failover ask: %d", code2)
	}
}

// TestFailoverMidSSEStream kills the owner while an SSE response is
// streaming: the client's stream is torn mid-events (the router cannot
// retry once bytes have flowed), but the session survives on the promoted
// follower with its acknowledged turns intact.
func TestFailoverMidSSEStream(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	id := tc.createSession(t)
	if code, _ := tc.ask(t, id, askQuestion); code != http.StatusOK {
		t.Fatalf("baseline ask failed")
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), []string{id})
	if err != nil {
		t.Fatal(err)
	}
	victim := tc.ownerOf(id)

	body, _ := json.Marshal(map[string]string{"question": "streamed question"})
	req, _ := http.NewRequest(http.MethodPost, tc.url()+"/v1/sessions/"+id+"/ask", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := tc.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read up to the first committed event, then kill the owner under the
	// open stream.
	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil || strings.HasPrefix(line, "event: ") {
			break
		}
	}
	victim.kill(false)
	_, _ = br.ReadString(0) // drain whatever survives the cut; error expected
	resp.Body.Close()
	tc.router.MarkDead(victim.id)

	post, err := persisttest.History(tc.client, tc.url(), id)
	if err != nil {
		t.Fatalf("session lost: %v", err)
	}
	if !persisttest.TurnsPrefix(capture[id], post) {
		t.Errorf("acknowledged turns corrupted:\npre:  %s\npost: %s", capture[id], post)
	}
	if code, _ := tc.ask(t, id, "post-stream question"); code != http.StatusOK {
		t.Errorf("post-failover ask: %d", code)
	}
}

// TestDrainThenKillNewOwner pins the drain→failover composition: the
// drained node's handoffs must leave every moved session with a LIVE
// replica on its new rendezvous follower — the handoff marker is local
// bookkeeping and must never be replicated, because the replica journal
// treats it like a delete and the post-drain follower is exactly the node
// the new owner just full-synced. Losing the new owner right after the
// drain (and after further acknowledged turns) must therefore still
// recover every session byte-identically. Regression test for the
// moved-sessions-become-single-copy bug.
func TestDrainThenKillNewOwner(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		if code, _ := tc.ask(t, id, askQuestion); code != http.StatusOK {
			t.Fatalf("ask: %d", code)
		}
	}

	drained := victimWithSessions(t, tc)
	code, out := tc.postJSON("/internal/cluster/drain", map[string]string{"id": drained.id})
	if code != http.StatusOK {
		t.Fatalf("drain: %d %v", code, out)
	}

	// Every session has two copies again: its new owner's journal and a
	// live replica on its new follower. Under the bug the replicated
	// handoff record deleted exactly these replicas.
	members := tc.router.Members()
	for _, id := range ids {
		f, ok := Follower(id, members)
		if !ok {
			t.Fatal("no follower among the survivors")
		}
		if tc.nodes[f.ID].replica.SessionRecords(id) == nil {
			t.Errorf("session %s has no live replica on follower %s after drain", id, f.ID)
		}
	}

	// Post-drain turns must replicate incrementally onto those replicas —
	// under the bug they were silently dropped against the dead replica
	// session, so the damage would only show at the next failover.
	for _, id := range ids {
		if code, out := tc.ask(t, id, "post-drain question"); code != http.StatusOK {
			t.Fatalf("post-drain ask %s: %d %v", id, code, out)
		}
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the busier survivor — it owns sessions the drain just moved onto
	// it. The last node must recover all of them from its replicas.
	second := victimWithSessions(t, tc)
	if second.id == drained.id {
		t.Fatal("drained node still owns sessions")
	}
	second.kill(false)
	tc.router.MarkDead(second.id)

	if diffs := persisttest.DiffHistories(tc.client, tc.url(), capture); diffs != nil {
		t.Errorf("acknowledged turns lost across drain+failover:\n%s", strings.Join(diffs, "\n"))
	}
	for _, id := range ids {
		if code, out := tc.ask(t, id, "post-failover question"); code != http.StatusOK {
			t.Errorf("post-failover ask %s: %d %v", id, code, out)
		}
	}
}

// TestFailoverHealthLoopPromotes exercises the detection path the others
// bypass: no explicit MarkDead — the router's background health loop must
// notice the dead node and run the same promotion.
func TestFailoverHealthLoopPromotes(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{healthInterval: 20 * time.Millisecond})

	ids := make([]string, 0, 9)
	for i := 0; i < 9; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		tc.ask(t, id, askQuestion)
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}
	victim := victimWithSessions(t, tc)
	victim.kill(false)

	deadline := time.Now().Add(10 * time.Second)
	for len(tc.router.Members()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("health loop never removed the dead node; members: %v", tc.router.Members())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if diffs := persisttest.DiffHistories(tc.client, tc.url(), capture); diffs != nil {
		t.Errorf("histories drifted across health-loop failover:\n%s", strings.Join(diffs, "\n"))
	}
}

// TestFailoverNoIDReuse: ids stay unique across promotion AND across a
// router restart — the new router seeds its counter from the surviving
// nodes' journal watermarks, which cover even sessions that died with the
// failed node.
func TestFailoverNoIDReuse(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	seen := map[string]bool{}
	ids := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		id := tc.createSession(t)
		if seen[id] {
			t.Fatalf("id %s issued twice", id)
		}
		seen[id] = true
		ids = append(ids, id)
		tc.ask(t, id, askQuestion)
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}
	victim := victimWithSessions(t, tc)
	victim.kill(false)
	tc.router.MarkDead(victim.id)

	// A fresh router over the survivors — counter starts at zero and must
	// re-seed itself above every id ever issued.
	rt2 := NewRouter(RouterConfig{Members: tc.router.Members()})
	ts2 := httptest.NewServer(rt2)
	defer func() {
		rt2.Close()
		ts2.Close()
	}()
	client := tc.client
	for i := 0; i < 6; i++ {
		var out map[string]any
		resp, err := client.Post(ts2.URL+"/v1/sessions", "application/json",
			strings.NewReader(`{"corpus":"aep"}`))
		if err != nil {
			t.Fatal(err)
		}
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		id, _ := out["session_id"].(string)
		if id == "" || seen[id] {
			t.Fatalf("restarted router reissued or failed to issue an id: %q (out %v)", id, out)
		}
		seen[id] = true
	}
	// Old sessions remain reachable, byte-identical, through the new router.
	if diffs := persisttest.DiffHistories(client, ts2.URL, capture); diffs != nil {
		t.Errorf("histories drifted through restarted router:\n%s", strings.Join(diffs, "\n"))
	}
}
