package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testMembers(n int) []Member {
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{ID: fmt.Sprintf("node-%02d", i), Addr: fmt.Sprintf("http://10.0.0.%d", i)}
	}
	return out
}

func sessionKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// The production key shape: router-issued ids "s1", "s2", ... — all
		// sharing a prefix, which is exactly what the hash finalizer must
		// decorrelate.
		out[i] = fmt.Sprintf("s%d", i+1)
	}
	return out
}

// TestRendezvousDeterministicAndOrderFree: placement is a pure function of
// (key, member set) — repeated calls agree, and the order the members are
// listed in is irrelevant.
func TestRendezvousDeterministicAndOrderFree(t *testing.T) {
	members := testMembers(7)
	rng := rand.New(rand.NewSource(1))
	for _, key := range sessionKeys(200) {
		base := Owners(key, members, 3)
		if len(base) != 3 {
			t.Fatalf("key %s: got %d owners", key, len(base))
		}
		if again := Owners(key, members, 3); fmt.Sprint(again) != fmt.Sprint(base) {
			t.Fatalf("key %s: placement not deterministic", key)
		}
		shuffled := append([]Member(nil), members...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		if got := Owners(key, shuffled, 3); fmt.Sprint(got) != fmt.Sprint(base) {
			t.Fatalf("key %s: placement depends on member order:\nsorted:   %v\nshuffled: %v",
				key, base, got)
		}
		if base[0].ID == base[1].ID {
			t.Fatalf("key %s: owner and follower are the same member", key)
		}
	}
}

// TestRendezvousMinimalDisruption: removing one member moves exactly the
// sessions it owned — every one of them to its old follower — and demotes
// no other session's owner. This is the property failover stands on: the
// promoted node is guaranteed to be the one holding the replica.
func TestRendezvousMinimalDisruption(t *testing.T) {
	keys := sessionKeys(2000)
	for n := 3; n <= 16; n++ {
		members := testMembers(n)
		for dead := 0; dead < n; dead++ {
			survivors := append(append([]Member(nil), members[:dead]...), members[dead+1:]...)
			for _, key := range keys {
				before := Owners(key, members, 2)
				after, ok := Owner(key, survivors)
				if !ok {
					t.Fatal("no survivors")
				}
				if before[0].ID == members[dead].ID {
					// Orphaned session: the new owner must be the old
					// follower — the node that holds the replica.
					if after.ID != before[1].ID {
						t.Fatalf("n=%d dead=%s key=%s: new owner %s, want old follower %s",
							n, members[dead].ID, key, after.ID, before[1].ID)
					}
				} else if after.ID != before[0].ID {
					t.Fatalf("n=%d dead=%s key=%s: unaffected session moved %s -> %s",
						n, members[dead].ID, key, before[0].ID, after.ID)
				}
			}
			// Only exhaustively sweep the dead-member axis for small n; the
			// property is per-pair, so one removal per larger n suffices.
			if n > 6 {
				break
			}
		}
	}
}

// TestRendezvousBalance: ownership and follower placement spread uniformly
// — every node's share stays within 0.5x..1.5x of the mean across 3..16
// nodes. With thousands of keys the binomial spread is a few percent, so
// the tolerance has an order of magnitude of slack against hash bias while
// still catching a broken mix (prefix-correlated FNV alone fails it).
func TestRendezvousBalance(t *testing.T) {
	const keysN = 6000
	keys := sessionKeys(keysN)
	for n := 3; n <= 16; n++ {
		members := testMembers(n)
		owns := map[string]int{}
		follows := map[string]int{}
		for _, key := range keys {
			top := Owners(key, members, 2)
			owns[top[0].ID]++
			follows[top[1].ID]++
		}
		mean := float64(keysN) / float64(n)
		for _, m := range members {
			for what, counts := range map[string]map[string]int{"owner": owns, "follower": follows} {
				c := counts[m.ID]
				if f := float64(c); f < 0.5*mean || f > 1.5*mean {
					t.Errorf("n=%d: %s share of %s is %d, outside [%.0f, %.0f]",
						n, what, m.ID, c, 0.5*mean, 1.5*mean)
				}
			}
		}
	}
}

// TestRendezvousDegenerateInputs: empty member lists and n larger than the
// membership answer sanely.
func TestRendezvousDegenerateInputs(t *testing.T) {
	if got := Owners("s1", nil, 2); got != nil {
		t.Errorf("Owners on empty membership: %v", got)
	}
	if _, ok := Owner("s1", nil); ok {
		t.Error("Owner on empty membership reported ok")
	}
	one := testMembers(1)
	if _, ok := Follower("s1", one); ok {
		t.Error("Follower in a 1-node cluster reported ok")
	}
	if got := Owners("s1", one, 5); len(got) != 1 {
		t.Errorf("Owners(n=5) on 1 member: %v", got)
	}
}
