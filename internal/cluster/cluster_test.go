package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/engine"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/persist/persisttest"
	"fisql/internal/rag"
	"fisql/internal/server"
)

const askQuestion = "How many audiences were created in January?"

// testFactory mirrors the single-node server test factory: one shared
// dataset, simulated model, retrieval store and plan cache. Sharing it
// across every node of a test cluster matches production (all nodes serve
// the same corpus build) and is what makes cross-node replay deterministic.
type testFactory struct {
	ds    *dataset.Dataset
	sim   *llm.Sim
	store *rag.Store
	cache *engine.Cache
}

func (f *testFactory) NewSession(db string) *core.Session {
	asst := &assistant.Assistant{Client: f.sim, DS: f.ds, Store: f.store, K: 8, Cache: f.cache}
	method := &core.FISQL{Client: f.sim, DS: f.ds, Store: f.store, K: 8, Routing: true, Highlights: true}
	return core.NewSession(asst, method, db)
}

func (f *testFactory) Databases() []string {
	var out []string
	for name := range f.ds.Schemas {
		out = append(out, name)
	}
	return out
}

var (
	facOnce sync.Once
	facVal  *testFactory
	facErr  error
)

func factory(t *testing.T) *testFactory {
	t.Helper()
	facOnce.Do(func() {
		ds, err := aep.Build()
		if err != nil {
			facErr = err
			return
		}
		facVal = &testFactory{ds: ds, sim: llm.NewSim(ds), store: rag.NewStore(ds.Demos),
			cache: engine.NewCache(0)}
	})
	if facErr != nil {
		t.Fatal(facErr)
	}
	return facVal
}

// swapHandler lets the httptest servers exist (and hand out addresses)
// before the Nodes they serve are built — NodeConfig needs every member's
// address up front.
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "node not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

type testNode struct {
	id      string
	node    *Node
	ts      *httptest.Server
	handler *swapHandler
	journal *persist.Journal
	replica *persist.Journal
	jpath   string
	rpath   string
	metrics *obs.Metrics
	killed  bool
}

// kill simulates node death: established connections die, new dials fail,
// and the journals are closed without any shutdown courtesy — the file is
// left exactly as the append stream left it. crashJournalsFirst controls
// whether an in-flight turn can still reach the journal and its follower
// (connections first: yes, the turn may be durable but unacknowledged;
// journals first: no, it fails cleanly before the append).
func (tn *testNode) kill(crashJournalsFirst bool) {
	if tn.killed {
		return
	}
	tn.killed = true
	if crashJournalsFirst {
		tn.journal.Crash()
		tn.replica.Crash()
	}
	tn.ts.Listener.Close()
	tn.ts.CloseClientConnections()
	if !crashJournalsFirst {
		tn.journal.Crash()
		tn.replica.Crash()
	}
}

type testCluster struct {
	t       *testing.T
	dir     string
	members []Member
	nodes   map[string]*testNode
	router  *Router
	rts     *httptest.Server
	client  *http.Client
}

type clusterOptions struct {
	healthInterval time.Duration
	fsync          persist.FsyncPolicy
	routerMetrics  *obs.Metrics
	nodeMetrics    bool
	serverOptions  []server.Option
	token          string
}

// newTestCluster brings up n in-process nodes behind a router. The caller
// gets a plain HTTP client pointed at the router URL; per-node access goes
// through tc.nodes.
func newTestCluster(t *testing.T, n int, opts clusterOptions) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:      t,
		dir:    t.TempDir(),
		nodes:  map[string]*testNode{},
		client: &http.Client{Timeout: 30 * time.Second},
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%c", 'a'+i)
		sh := &swapHandler{}
		ts := httptest.NewServer(sh)
		tc.members = append(tc.members, Member{ID: id, Addr: ts.URL})
		tc.nodes[id] = &testNode{id: id, ts: ts, handler: sh}
	}
	for _, m := range tc.members {
		tn := tc.nodes[m.ID]
		tn.jpath = filepath.Join(tc.dir, m.ID+".journal")
		tn.rpath = filepath.Join(tc.dir, m.ID+".replica")
		var err error
		tn.journal, err = persist.Open(tn.jpath, persist.Options{Fsync: opts.fsync})
		if err != nil {
			t.Fatal(err)
		}
		tn.replica, err = persist.Open(tn.rpath, persist.Options{Fsync: opts.fsync})
		if err != nil {
			t.Fatal(err)
		}
		if opts.nodeMetrics {
			tn.metrics = obs.NewMetrics()
		}
		tn.node = NewNode(NodeConfig{
			ID:            m.ID,
			Members:       tc.members,
			Systems:       map[string]server.SessionFactory{"aep": factory(t)},
			Journal:       tn.journal,
			Replica:       tn.replica,
			Metrics:       tn.metrics,
			AuthToken:     opts.token,
			ServerOptions: opts.serverOptions,
		})
		tn.handler.set(tn.node)
	}
	tc.router = NewRouter(RouterConfig{
		Members:        tc.members,
		Metrics:        opts.routerMetrics,
		HealthInterval: opts.healthInterval,
		HealthTimeout:  500 * time.Millisecond,
		AuthToken:      opts.token,
	})
	tc.rts = httptest.NewServer(tc.router)
	t.Cleanup(func() {
		tc.router.Close()
		tc.rts.Close()
		for _, tn := range tc.nodes {
			if !tn.killed {
				tn.ts.Close()
				tn.journal.Close()
				tn.replica.Close()
			}
		}
	})
	return tc
}

func (tc *testCluster) url() string { return tc.rts.URL }

// ownerOf resolves the current owner node of a session id via the router's
// live membership — the same placement the router itself uses.
func (tc *testCluster) ownerOf(id string) *testNode {
	owner, ok := Owner(id, tc.router.Members())
	if !ok {
		tc.t.Fatal("no members")
	}
	return tc.nodes[owner.ID]
}

func (tc *testCluster) postJSON(path string, body any) (int, map[string]any) {
	tc.t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := tc.client.Post(tc.url()+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		tc.t.Fatalf("post %s: %v", path, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func (tc *testCluster) createSession(t *testing.T) string {
	t.Helper()
	code, out := tc.postJSON("/v1/sessions", map[string]string{"corpus": "aep"})
	if code != http.StatusOK {
		t.Fatalf("create: %d %v", code, out)
	}
	id, _ := out["session_id"].(string)
	if id == "" {
		t.Fatalf("no session id: %v", out)
	}
	return id
}

func (tc *testCluster) ask(t *testing.T, id, question string) (int, map[string]any) {
	t.Helper()
	return tc.postJSON("/v1/sessions/"+id+"/ask", map[string]string{"question": question})
}

func (tc *testCluster) feedback(t *testing.T, id, text string) (int, map[string]any) {
	t.Helper()
	return tc.postJSON("/v1/sessions/"+id+"/feedback", map[string]string{"text": text})
}

// ---------------------------------------------------------------------------

// TestClusterBasicRouting: sessions created through the router land on
// their rendezvous owners, spread across nodes, and every turn forwarded
// later reaches the same session state.
func TestClusterBasicRouting(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	const sessions = 24
	ids := make([]string, 0, sessions)
	for i := 0; i < sessions; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		if code, out := tc.ask(t, id, askQuestion); code != http.StatusOK {
			t.Fatalf("ask %s: %d %v", id, code, out)
		}
		if i%3 == 0 {
			if code, out := tc.feedback(t, id, "only the top 5"); code != http.StatusOK {
				t.Fatalf("feedback %s: %d %v", id, code, out)
			}
		}
	}

	// Placement: every session lives exactly on its rendezvous owner, and
	// more than one node carries load.
	nodesUsed := map[string]int{}
	for _, id := range ids {
		owner := tc.ownerOf(id)
		nodesUsed[owner.id]++
		found := false
		for _, sid := range owner.node.Server().SessionIDs() {
			if sid == id {
				found = true
			}
		}
		if !found {
			t.Errorf("session %s not on its owner %s", id, owner.id)
		}
	}
	if len(nodesUsed) < 2 {
		t.Errorf("all sessions on one node: %v", nodesUsed)
	}
	total := 0
	for _, tn := range tc.nodes {
		total += len(tn.node.Server().SessionIDs())
	}
	if total != sessions {
		t.Errorf("cluster holds %d sessions, want %d", total, sessions)
	}

	// Histories read back through the router.
	for _, id := range ids {
		if _, err := persisttest.History(tc.client, tc.url(), id); err != nil {
			t.Errorf("history %s: %v", id, err)
		}
	}
}

// TestClusterReplicaPlacement: every session's records are replicated to
// its rendezvous follower — and only there — before the turn is
// acknowledged, so the ack already implies follower durability.
func TestClusterReplicaPlacement(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	for i := 0; i < 12; i++ {
		id := tc.createSession(t)
		if code, out := tc.ask(t, id, askQuestion); code != http.StatusOK {
			t.Fatalf("ask %s: %d %v", id, code, out)
		}
		f, ok := Follower(id, tc.router.Members())
		if !ok {
			t.Fatal("no follower in a 3-node cluster")
		}
		for nid, tn := range tc.nodes {
			recs := tn.replica.SessionRecords(id)
			if nid == f.ID {
				// create + ask, replicated synchronously with the ack.
				if len(recs) != 2 {
					t.Errorf("follower %s holds %d records of %s, want 2", nid, len(recs), id)
				}
			} else if recs != nil {
				t.Errorf("non-follower %s holds a replica of %s", nid, id)
			}
		}
	}
}

// TestClusterSSEThroughRouter: an SSE ask streams through the router
// unharmed — complete event sequence, done payload equal to the plain JSON
// answer body.
func TestClusterSSEThroughRouter(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})
	id := tc.createSession(t)

	body, _ := json.Marshal(map[string]string{"question": askQuestion})
	req, _ := http.NewRequest(http.MethodPost, tc.url()+"/v1/sessions/"+id+"/ask", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := tc.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]string{}
	var order []string
	for _, block := range bytes.Split(raw, []byte("\n\n")) {
		var name, data string
		for _, line := range bytes.Split(block, []byte("\n")) {
			if v, ok := bytes.CutPrefix(line, []byte("event: ")); ok {
				name = string(v)
			}
			if v, ok := bytes.CutPrefix(line, []byte("data: ")); ok {
				data = string(v)
			}
		}
		if name != "" {
			events[name] = data
			order = append(order, name)
		}
	}
	want := []string{"open", "sql", "explanation", "result", "done"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("event order %v, want %v", order, want)
	}

	// The done payload matches the non-streamed answer of the same question
	// in a fresh session (deterministic pipeline + shared memo).
	id2 := tc.createSession(t)
	code, ans := tc.ask(t, id2, askQuestion)
	if code != http.StatusOK {
		t.Fatalf("plain ask: %d", code)
	}
	plain, _ := json.Marshal(ans)
	var fromSSE, fromPlain map[string]any
	if err := json.Unmarshal([]byte(events["done"]), &fromSSE); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	_ = json.Unmarshal(plain, &fromPlain)
	if fmt.Sprint(fromSSE) != fmt.Sprint(fromPlain) {
		t.Errorf("done payload differs from plain answer:\nsse:   %v\nplain: %v", fromSSE, fromPlain)
	}
}

// TestClusterDrain: draining a node moves its sessions to the survivors
// with byte-identical histories and journaled handoffs, and the drained
// node ends up empty.
func TestClusterDrain(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	ids := make([]string, 0, 18)
	for i := 0; i < 18; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		tc.ask(t, id, askQuestion)
		if i%2 == 0 {
			tc.feedback(t, id, "only the top 5")
		}
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the node owning the most sessions.
	victim := ""
	most := -1
	for nid, tn := range tc.nodes {
		if n := len(tn.node.Server().SessionIDs()); n > most {
			victim, most = nid, n
		}
	}
	if most == 0 {
		t.Fatal("no node owns any session")
	}
	code, out := tc.postJSON("/internal/cluster/drain", map[string]string{"id": victim})
	if code != http.StatusOK {
		t.Fatalf("drain: %d %v", code, out)
	}
	if moved := int(out["moved"].(float64)); moved != most {
		t.Errorf("drain moved %d sessions, node owned %d", moved, most)
	}
	if n := len(tc.nodes[victim].node.Server().SessionIDs()); n != 0 {
		t.Errorf("drained node still owns %d sessions", n)
	}
	if len(tc.router.Members()) != 2 {
		t.Errorf("membership after drain: %v", tc.router.Members())
	}
	if diffs := persisttest.DiffHistories(tc.client, tc.url(), capture); diffs != nil {
		t.Errorf("histories drifted across drain:\n%v", diffs)
	}
	// The handoffs were journaled as moves, not deletes: the drained node's
	// journal no longer retains the sessions.
	for _, id := range ids {
		if recs := tc.nodes[victim].journal.SessionRecords(id); recs != nil {
			t.Errorf("drained node still retains journal records of %s", id)
		}
	}
	// Moved sessions still take turns.
	for _, id := range ids[:4] {
		if code, out := tc.ask(t, id, askQuestion); code != http.StatusOK {
			t.Errorf("post-drain ask %s: %d %v", id, code, out)
		}
	}
}

// TestClusterAddNode: joining a node moves exactly the sessions the new
// placement assigns to it (minimal disruption), byte-identically.
func TestClusterAddNode(t *testing.T) {
	tc := newTestCluster(t, 2, clusterOptions{})

	ids := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		tc.ask(t, id, askQuestion)
	}
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}

	// Bring up the third node and compute, before the join, which sessions
	// the new placement will hand it.
	sh := &swapHandler{}
	ts := httptest.NewServer(sh)
	newMember := Member{ID: "node-c", Addr: ts.URL}
	target := append(append([]Member(nil), tc.members...), newMember)
	wantMoved := 0
	for _, id := range ids {
		if owner, _ := Owner(id, target); owner.ID == newMember.ID {
			wantMoved++
		}
	}
	jpath := filepath.Join(tc.dir, "node-c.journal")
	rpath := filepath.Join(tc.dir, "node-c.replica")
	j, err := persist.Open(jpath, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := persist.Open(rpath, persist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNode{id: newMember.ID, ts: ts, handler: sh, journal: j, replica: rep, jpath: jpath, rpath: rpath}
	tn.node = NewNode(NodeConfig{
		ID:      newMember.ID,
		Members: target,
		Systems: map[string]server.SessionFactory{"aep": factory(t)},
		Journal: j,
		Replica: rep,
	})
	sh.set(tn.node)
	tc.nodes[newMember.ID] = tn
	t.Cleanup(func() {
		if !tn.killed {
			ts.Close()
			j.Close()
			rep.Close()
		}
	})

	code, out := tc.postJSON("/internal/cluster/add", map[string]string{"id": newMember.ID, "addr": newMember.Addr})
	if code != http.StatusOK {
		t.Fatalf("add: %d %v", code, out)
	}
	if moved := int(out["moved"].(float64)); moved != wantMoved {
		t.Errorf("join moved %d sessions, rendezvous assigns the new node %d", moved, wantMoved)
	}
	if got := len(tn.node.Server().SessionIDs()); got != wantMoved {
		t.Errorf("new node owns %d sessions, want %d", got, wantMoved)
	}
	if diffs := persisttest.DiffHistories(tc.client, tc.url(), capture); diffs != nil {
		t.Errorf("histories drifted across join:\n%v", diffs)
	}
	for _, id := range ids {
		if code, out := tc.ask(t, id, askQuestion); code != http.StatusOK {
			t.Errorf("post-join ask %s: %d %v", id, code, out)
		}
	}
}

// TestClusterAuthToken: with a shared token configured the cluster works
// end to end — replication, drain and promotion all carry the header —
// while unauthenticated or wrongly-authenticated /internal/* calls are
// refused on the nodes and on the router's admin endpoints alike.
func TestClusterAuthToken(t *testing.T) {
	const token = "secret-42"
	tc := newTestCluster(t, 3, clusterOptions{token: token})

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		id := tc.createSession(t)
		ids = append(ids, id)
		if code, _ := tc.ask(t, id, askQuestion); code != http.StatusOK {
			t.Fatalf("ask: %d", code)
		}
	}
	// Replication carried the token: every session has a replica somewhere.
	replicas := 0
	for _, tn := range tc.nodes {
		replicas += len(tn.replica.LiveSessions())
	}
	if replicas != len(ids) {
		t.Errorf("replicated %d sessions, want %d", replicas, len(ids))
	}

	// Probes without or with a wrong token bounce off every /internal/*
	// surface with 403.
	var anyNode *testNode
	for _, tn := range tc.nodes {
		anyNode = tn
		break
	}
	for _, probe := range []struct{ url, token string }{
		{anyNode.ts.URL + "/internal/status", ""},
		{anyNode.ts.URL + "/internal/status", "wrong"},
		{tc.url() + "/internal/cluster/members", ""},
		{tc.url() + "/internal/cluster/members", "wrong"},
	} {
		req, _ := http.NewRequest(http.MethodGet, probe.url, nil)
		if probe.token != "" {
			req.Header.Set(TokenHeader, probe.token)
		}
		resp, err := tc.client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("GET %s (token %q): %d, want 403", probe.url, probe.token, resp.StatusCode)
		}
	}
	// Forged mutations are refused too: a replica-frame injection on a node
	// and a drain on the router.
	frames := persist.EncodeFrames([]persist.Record{{Type: persist.TDelete, Session: ids[0]}})
	resp, err := tc.client.Post(anyNode.ts.URL+"/internal/replicate", "application/octet-stream",
		bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("unauthenticated replicate: %d, want 403", resp.StatusCode)
	}
	if code, _ := tc.postJSON("/internal/cluster/drain", map[string]string{"id": anyNode.id}); code != http.StatusForbidden {
		t.Errorf("unauthenticated drain: %d, want 403", code)
	}

	// The authenticated admin path still works: drain one node with the
	// token (members/rebalance/adopt pushes all authenticate node-to-node).
	capture, err := persisttest.Capture(tc.client, tc.url(), ids)
	if err != nil {
		t.Fatal(err)
	}
	var drained *testNode
	most := -1
	for _, tn := range tc.nodes {
		if n := len(tn.node.Server().SessionIDs()); n > most {
			drained, most = tn, n
		}
	}
	body, _ := json.Marshal(map[string]string{"id": drained.id})
	req, _ := http.NewRequest(http.MethodPost, tc.url()+"/internal/cluster/drain", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TokenHeader, token)
	resp, err = tc.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated drain: %d", resp.StatusCode)
	}
	// And failover (members + promote pushes) authenticates as well.
	var second *testNode
	most = -1
	for _, tn := range tc.nodes {
		if tn == drained {
			continue
		}
		if n := len(tn.node.Server().SessionIDs()); n > most {
			second, most = tn, n
		}
	}
	second.kill(false)
	tc.router.MarkDead(second.id)
	if diffs := persisttest.DiffHistories(tc.client, tc.url(), capture); diffs != nil {
		t.Errorf("histories drifted across authenticated drain+failover:\n%v", diffs)
	}
}

// TestDeleteReplicationRedelivery: a delete whose synchronous replication
// to the follower fails is redelivered in the background once the follower
// is reachable again — otherwise the follower's replica keeps the deleted
// session alive and a later promotion resurrects it.
func TestDeleteReplicationRedelivery(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})

	id := tc.createSession(t)
	if code, _ := tc.ask(t, id, askQuestion); code != http.StatusOK {
		t.Fatalf("ask: %d", code)
	}
	f, ok := Follower(id, tc.router.Members())
	if !ok {
		t.Fatal("no follower")
	}
	fn := tc.nodes[f.ID]
	if fn.replica.SessionRecords(id) == nil {
		t.Fatal("follower holds no replica before the delete")
	}

	// Fail exactly the replication endpoint on the follower, so the owner's
	// synchronous delete replication misses while everything else runs.
	fn.handler.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/internal/replicate" {
			httpError(w, http.StatusInternalServerError, "injected replication failure")
			return
		}
		fn.node.ServeHTTP(w, r)
	}))
	req, _ := http.NewRequest(http.MethodDelete, tc.url()+"/v1/sessions/"+id, nil)
	resp, err := tc.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d (delete replication is best-effort and must not fail the request)", resp.StatusCode)
	}
	if fn.replica.SessionRecords(id) == nil {
		t.Fatal("replica dropped the session although replication was failing — fault injection missed")
	}

	// Heal the follower: the background redelivery must land the delete.
	fn.handler.set(fn.node)
	deadline := time.Now().Add(10 * time.Second)
	for fn.replica.SessionRecords(id) != nil {
		if time.Now().After(deadline) {
			t.Fatal("replica still holds the deleted session; the delete was never redelivered")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMembersStalePushIgnored: a membership push older than the installed
// view must neither install nor reconcile — its outdated member list would
// prune replica sessions the current view still needs. The concurrent leg
// hammers interleaved pushes under -race: application is serialized per
// node, so the highest version wins and the replica survives.
func TestMembersStalePushIgnored(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})
	tn := tc.nodes["node-a"]

	// A key node-a follows (or owns) under the full membership, so the full
	// view keeps its replica and any view excluding node-a would drop it.
	key := ""
	for i := 0; key == ""; i++ {
		k := fmt.Sprintf("probe%d", i)
		for _, m := range Owners(k, tc.members, 2) {
			if m.ID == tn.id {
				key = k
			}
		}
	}
	if err := tn.replica.Append(persist.Record{Type: persist.TCreate, Session: key, Corpus: "aep", DB: "aep", ID: 900000}); err != nil {
		t.Fatal(err)
	}

	pushMembers := func(version int64, members []Member) int {
		body, _ := json.Marshal(membersMsg{Version: version, Members: members})
		resp, err := tc.client.Post(tn.ts.URL+"/internal/members", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	withoutA := make([]Member, 0, len(tc.members)-1)
	for _, m := range tc.members {
		if m.ID != tn.id {
			withoutA = append(withoutA, m)
		}
	}

	// Sequential: install a fresh full view, then replay an older view that
	// excludes node-a. The stale push must not reconcile.
	if code := pushMembers(10, tc.members); code != http.StatusOK {
		t.Fatalf("push v10: %d", code)
	}
	if code := pushMembers(5, withoutA); code != http.StatusOK {
		t.Fatalf("push v5: %d", code)
	}
	if tn.replica.SessionRecords(key) == nil {
		t.Fatal("stale membership push pruned a replica the installed view still needs")
	}

	// Concurrent: interleave newer full views with older excluding views.
	// Serialized application applies them in arrival order, but any stale
	// view is rejected before its reconcile once a newer one landed — and
	// every applied view that includes node-a keeps the replica. End state:
	// highest version installed, replica alive (v20, pushed first, beats
	// every concurrent older view).
	if code := pushMembers(20, tc.members); code != http.StatusOK {
		t.Fatalf("push v20: %d", code)
	}
	var wg sync.WaitGroup
	for v := int64(11); v < 20; v++ {
		wg.Add(1)
		go func(v int64) {
			defer wg.Done()
			pushMembers(v, withoutA)
		}(v)
	}
	wg.Wait()
	if tn.replica.SessionRecords(key) == nil {
		t.Fatal("a racing stale push pruned a replica the newest view needs")
	}
	var st struct {
		Version int64 `json:"version"`
	}
	resp, err := tc.client.Get(tn.ts.URL + "/internal/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Version != 20 {
		t.Errorf("installed version %d, want 20", st.Version)
	}
}
