// Fanout through the cluster: GET /v1/sessions/{id}/events is pinned to
// the session's owner like every other per-session route, and the event
// sequence survives owner failover. The contract under test, shared with
// DESIGN.md "Session-event fanout": sequence numbers are a pure function
// of the session's acknowledged history, so a promoted follower re-seeds
// the exact sequence the dead owner had published — a subscriber that
// reconnects with Last-Event-ID sees no regressed, missing or duplicated
// sequence number across the failover.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

type fanoutFrame struct {
	id   string
	name string
	data string
}

// readFanoutFrame parses one SSE frame (optional id line, event line, data
// line, blank terminator) from a live stream.
func readFanoutFrame(r *bufio.Reader) (fanoutFrame, error) {
	var f fanoutFrame
	started := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return f, err
		}
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			if started {
				return f, nil
			}
			continue
		}
		started = true
		switch {
		case strings.HasPrefix(line, "id: "):
			f.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			f.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		default:
			return f, fmt.Errorf("unexpected SSE line %q", line)
		}
	}
}

// subscribeEvents opens the fanout stream through the router. from > 0
// resumes via Last-Event-ID.
func subscribeEvents(tc *testCluster, id string, from uint64) (*http.Response, *bufio.Reader, error) {
	req, err := http.NewRequest(http.MethodGet, tc.url()+"/v1/sessions/"+id+"/events", nil)
	if err != nil {
		return nil, nil, err
	}
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(from, 10))
	}
	resp, err := tc.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, nil, fmt.Errorf("subscribe: status %d body %s", resp.StatusCode, body)
	}
	return resp, bufio.NewReader(resp.Body), nil
}

// subscribeEventsRetry keeps dialing until the cluster answers the
// subscription — reconnection during a promotion window can see transport
// errors, 404 (session not yet adopted) or 502 (no owner resolvable).
func subscribeEventsRetry(t *testing.T, tc *testCluster, id string, from uint64) (*http.Response, *bufio.Reader) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, br, err := subscribeEvents(tc, id, from)
		if err == nil {
			return resp, br
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not resubscribe to %s: %v", id, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readFrames(t *testing.T, r *bufio.Reader, n int) []fanoutFrame {
	t.Helper()
	out := make([]fanoutFrame, 0, n)
	for len(out) < n {
		f, err := readFanoutFrame(r)
		if err != nil {
			t.Fatalf("read frame %d: %v", len(out), err)
		}
		out = append(out, f)
	}
	return out
}

// drainFrames reads complete frames until the stream errors or ends,
// swallowing the error — used on a connection the test is about to tear.
func drainFrames(r *bufio.Reader) []fanoutFrame {
	var out []fanoutFrame
	for {
		f, err := readFanoutFrame(r)
		if err != nil {
			return out
		}
		out = append(out, f)
	}
}

// checkFanoutSeq requires contiguous sequence ids first, first+1, ...
func checkFanoutSeq(t *testing.T, frames []fanoutFrame, first uint64, context string) {
	t.Helper()
	for i, f := range frames {
		want := strconv.FormatUint(first+uint64(i), 10)
		if f.id != want {
			t.Fatalf("%s: frame %d (%s) has id %q, want %q", context, i, f.name, f.id, want)
		}
	}
}

// askRaw posts a plain ask through the router and returns the raw body.
func (tc *testCluster) askRaw(t *testing.T, id, question string) []byte {
	t.Helper()
	buf, _ := json.Marshal(map[string]string{"question": question})
	resp, err := tc.client.Post(tc.url()+"/v1/sessions/"+id+"/ask", "application/json",
		bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask %s: %d %s", id, resp.StatusCode, raw)
	}
	return raw
}

func (tc *testCluster) deleteSession(t *testing.T, id string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, tc.url()+"/v1/sessions/"+id, nil)
	resp, err := tc.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete %s: %d", id, resp.StatusCode)
	}
}

// TestClusterFanoutRoutesToOwner: the router pins /events to the session's
// rendezvous owner; a subscription through the router replays the
// acknowledged history with contiguous sequence ids, the done payload is
// byte-identical to the plain answer body, and the stream terminates on
// delete.
func TestClusterFanoutRoutesToOwner(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})
	id := tc.createSession(t)
	plain := tc.askRaw(t, id, askQuestion)

	resp, br, err := subscribeEvents(tc, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readFrames(t, br, 5)
	checkFanoutSeq(t, frames, 1, "replayed history")
	want := []string{"open", "sql", "explanation", "result", "done"}
	for i, w := range want {
		if frames[i].name != w {
			t.Fatalf("frame %d is %q, want %q", i, frames[i].name, w)
		}
	}
	if got := frames[4].data + "\n"; got != string(plain) {
		t.Errorf("done payload differs from plain body\nfanout: %s\nplain:  %s",
			frames[4].data, plain)
	}

	tc.deleteSession(t, id)
	tail := drainFrames(br)
	if len(tail) != 1 || tail[0].name != "delete" || tail[0].id != "6" {
		t.Fatalf("post-delete tail %+v, want one delete frame with id 6", tail)
	}

	// Only the owner serves the session; a non-owner answers 404 directly.
	id2 := tc.createSession(t)
	owner := tc.ownerOf(id2)
	for _, tn := range tc.nodes {
		if tn == owner {
			continue
		}
		r2, err := tc.client.Get(tn.ts.URL + "/v1/sessions/" + id2 + "/events")
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Errorf("non-owner %s serves /events for %s: %d", tn.id, id2, r2.StatusCode)
		}
	}
}

// TestClusterFanoutSubscriberSurvivesFailover is the acceptance scenario:
// a subscriber is mid-stream when the owner dies; it reconnects through
// the router with Last-Event-ID and the promoted follower — whose topic
// was re-seeded by deterministic replay of the replicated journal —
// continues the sequence with no regress, no gap and no duplicate.
func TestClusterFanoutSubscriberSurvivesFailover(t *testing.T) {
	tc := newTestCluster(t, 3, clusterOptions{})
	id := tc.createSession(t)
	tc.askRaw(t, id, askQuestion)

	resp, br, err := subscribeEvents(tc, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	pre := readFrames(t, br, 5) // open + the acknowledged first turn
	checkFanoutSeq(t, pre, 1, "pre-failover")

	victim := tc.ownerOf(id)
	victim.kill(false)
	// The open stream is torn by the kill; keep any complete frames that
	// made it through (none are expected — no turn is in flight).
	pre = append(pre, drainFrames(br)...)
	resp.Body.Close()
	tc.router.MarkDead(victim.id)

	last, err := strconv.ParseUint(pre[len(pre)-1].id, 10, 64)
	if err != nil {
		t.Fatalf("last frame id %q: %v", pre[len(pre)-1].id, err)
	}
	resp2, br2 := subscribeEventsRetry(t, tc, id, last)
	defer resp2.Body.Close()

	if owner := tc.ownerOf(id); owner.id == victim.id {
		t.Fatal("dead node still resolves as owner")
	}
	post := tc.askRaw(t, id, "post-failover question")
	turn := readFrames(t, br2, 4) // sql, explanation, result, done
	tc.deleteSession(t, id)
	tail := drainFrames(br2)

	stitched := append(append(pre, turn...), tail...)
	checkFanoutSeq(t, stitched, 1, "stitched stream")
	for i, f := range stitched {
		if f.name == "dropped" {
			t.Fatalf("frame %d is a dropped marker; failover must not lose events", i)
		}
	}
	if turn[3].name != "done" || turn[3].data+"\n" != string(post) {
		t.Errorf("post-failover done payload mismatch: %+v", turn[3])
	}
	if len(tail) != 1 || tail[0].name != "delete" {
		t.Fatalf("stream did not end with a single delete frame: %+v", tail)
	}
}
