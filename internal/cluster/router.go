package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fisql/internal/obs"
)

// DefaultHealthTimeout bounds one health probe.
const DefaultHealthTimeout = time.Second

// forwardAttempts is how many ownership resolutions one request gets. Each
// failed attempt marks the unreachable node dead (triggering failover), so
// two retries cover the worst case of losing the owner and then losing its
// freshly promoted successor mid-request.
const forwardAttempts = 3

// RouterConfig configures NewRouter.
type RouterConfig struct {
	// Members is the initial membership. NewRouter pushes it to every node
	// synchronously so the nodes' static bootstrap views converge.
	Members []Member
	// Client forwards client traffic to nodes. Nil gets a default client
	// with no overall timeout (SSE streams are long-lived).
	Client *http.Client
	// Metrics, when set, receives the fisql_cluster_* router-side series
	// and serves GET /v1/metrics on the router.
	Metrics *obs.Metrics
	// HealthInterval is the period of the background health loop; <= 0
	// disables it (failures are then detected only by failing forwards).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default DefaultHealthTimeout).
	HealthTimeout time.Duration
	// AuthToken, when non-empty, gates the router's own /internal/cluster/*
	// administration endpoints behind the TokenHeader header and rides on
	// every control-plane call to the nodes. Must match the nodes'
	// NodeConfig.AuthToken; without it any client that can reach the router
	// can remove or add members.
	AuthToken string
}

// Router is the cluster's client-facing tier. It issues session ids from a
// router-global counter, pins each session to the node that rendezvous
// hashing selects for its id, and forwards /v1/* traffic there. When a
// node stops answering — health probe or live forward — the router removes
// it, pushes the surviving membership, and drives promotion on the
// survivors before releasing any waiting forwards, so the failover window
// is invisible to clients apart from latency.
type Router struct {
	client *http.Client
	// ctrl carries the control-plane calls (members, promote, rebalance).
	// Unlike the forwarding client it has a hard timeout: these calls run
	// under the membership write lock, and a hung node must not wedge the
	// router.
	ctrl    *http.Client
	health  *http.Client
	metrics *obs.Metrics
	mux     *http.ServeMux
	token   string
	nextID  atomic.Int64

	// mu gates forwards against membership changes: forwards take the read
	// side only to snapshot the member list; MarkDead, Drain and AddNode
	// hold the write side across the entire push-membership/promote/
	// rebalance sequence, so no forward can route by a half-applied view.
	mu      sync.RWMutex
	members []Member
	version int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	forwards  *obs.Counter
	retries   *obs.Counter
	failovers *obs.Counter
	promoted  *obs.Counter
	handoffs  *obs.Counter
}

// NewRouter builds the router, pushes the initial membership to every
// member, and starts the health loop when configured. Call Close to stop
// the loop.
func NewRouter(cfg RouterConfig) *Router {
	rt := &Router{
		client:  cfg.Client,
		metrics: cfg.Metrics,
		token:   cfg.AuthToken,
		members: append([]Member(nil), cfg.Members...),
		version: 1,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	rt.ctrl = &http.Client{Timeout: 30 * time.Second}
	ht := cfg.HealthTimeout
	if ht <= 0 {
		ht = DefaultHealthTimeout
	}
	rt.health = &http.Client{Timeout: ht}
	if cfg.Metrics != nil {
		r := cfg.Metrics.Registry
		rt.forwards = r.Counter("fisql_cluster_forwards_total")
		rt.retries = r.Counter("fisql_cluster_forward_retries_total")
		rt.failovers = r.Counter("fisql_cluster_failovers_total")
		rt.promoted = r.Counter("fisql_cluster_sessions_promoted_total")
		rt.handoffs = r.Counter("fisql_cluster_handoffs_total")
		r.GaugeFunc("fisql_cluster_nodes_live", func() int64 {
			rt.mu.RLock()
			defer rt.mu.RUnlock()
			return int64(len(rt.members))
		})
	}
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/databases", rt.handleDatabases)
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	rt.mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleForwardByID)
	rt.mux.HandleFunc("POST /v1/sessions/{id}/ask", rt.handleForwardByID)
	rt.mux.HandleFunc("POST /v1/sessions/{id}/feedback", rt.handleForwardByID)
	rt.mux.HandleFunc("GET /v1/sessions/{id}/history", rt.handleForwardByID)
	rt.mux.HandleFunc("GET /v1/sessions/{id}/events", rt.handleForwardByID)
	rt.mux.HandleFunc("POST /internal/cluster/drain", rt.handleDrain)
	rt.mux.HandleFunc("POST /internal/cluster/add", rt.handleAdd)
	rt.mux.HandleFunc("GET /internal/cluster/members", rt.handleMembers)
	if cfg.Metrics != nil {
		rt.mux.HandleFunc("GET /v1/metrics", rt.handleMetrics)
	}
	rt.mu.Lock()
	rt.pushMembersLocked()
	// Seed the id counter past every id any node has ever recorded (the
	// journal watermark survives even deletion and compaction): a restarted
	// router starts from a fresh counter, and reissuing a live — or dead —
	// session's id would hand one client another client's session.
	for _, m := range rt.members {
		var st struct {
			Watermark int64 `json:"watermark"`
		}
		if err := rt.getJSON(m, "/internal/status", &st); err == nil {
			rt.bumpNextID(st.Watermark)
		}
	}
	rt.mu.Unlock()
	if cfg.HealthInterval > 0 {
		go rt.healthLoop(cfg.HealthInterval)
	} else {
		close(rt.done)
	}
	return rt
}

// Close stops the health loop. The router keeps serving.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) healthLoop(interval time.Duration) {
	defer close(rt.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAndReap()
		}
	}
}

// probeAndReap health-checks every member and marks unreachable ones dead,
// reporting whether any died.
func (rt *Router) probeAndReap() bool {
	rt.mu.RLock()
	members := append([]Member(nil), rt.members...)
	rt.mu.RUnlock()
	died := false
	for _, m := range members {
		resp, err := rt.health.Get(m.Addr + "/v1/healthz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				continue
			}
		}
		rt.MarkDead(m.ID)
		died = true
	}
	return died
}

// MarkDead removes a member and drives failover: the surviving membership
// is pushed to every survivor (each resyncs sessions whose follower was
// the dead node and prunes stale replicas), then every survivor promotes —
// adopting the dead node's sessions from its replicated journal — and the
// router's id counter is advanced past every watermark the survivors
// report, so promoted sessions' ids are never reissued. The whole sequence
// runs under the write lock: forwards wait it out instead of observing
// sessions mid-move. Safe to call with an already-removed id (no-op), so
// concurrent failing forwards collapse into one failover.
func (rt *Router) MarkDead(id string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	idx := -1
	for i, m := range rt.members {
		if m.ID == id {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	rt.members = append(rt.members[:idx:idx], rt.members[idx+1:]...)
	rt.version++
	rt.failovers.Inc()
	rt.pushMembersLocked()
	for _, m := range rt.members {
		var res promoteResp
		if err := rt.postJSON(m, "/internal/promote", promoteMsg{Dead: id}, &res); err != nil {
			continue
		}
		rt.promoted.Add(int64(len(res.Adopted)))
		rt.bumpNextID(res.Watermark)
	}
}

// pushMembersLocked sends the current membership to every member. Caller
// holds the write lock. Push failures are ignored: a node that cannot be
// reached is about to be reaped by the health loop anyway.
func (rt *Router) pushMembersLocked() {
	msg := membersMsg{Version: rt.version, Members: rt.members}
	for _, m := range rt.members {
		_ = rt.postJSON(m, "/internal/members", msg, nil)
	}
}

func (rt *Router) postJSON(m Member, path string, v, out any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, m.Addr+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if rt.token != "" {
		req.Header.Set(TokenHeader, rt.token)
	}
	resp, err := rt.ctrl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("post %s to %s: status %d", path, m.ID, resp.StatusCode)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (rt *Router) getJSON(m Member, path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, m.Addr+path, nil)
	if err != nil {
		return err
	}
	if rt.token != "" {
		req.Header.Set(TokenHeader, rt.token)
	}
	resp, err := rt.ctrl.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("get %s from %s: status %d", path, m.ID, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (rt *Router) bumpNextID(wm int64) {
	for wm > 0 {
		cur := rt.nextID.Load()
		if cur >= wm || rt.nextID.CompareAndSwap(cur, wm) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Client-facing forwarding.

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	nodes := len(rt.members)
	version := rt.version
	rt.mu.RUnlock()
	writeJSON(w, map[string]any{"status": "ok", "nodes": nodes, "version": version})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		var buf bytes.Buffer
		if err := rt.metrics.Registry.WritePrometheus(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, "render metrics: "+err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	default:
		writeJSON(w, rt.metrics.Registry.Snapshot())
	}
}

func (rt *Router) handleDatabases(w http.ResponseWriter, r *http.Request) {
	// Corpus metadata is identical on every node; any live one will do, and
	// the corpus name doubles as a stable forwarding key.
	rt.forward(w, r, "databases:"+r.URL.Query().Get("corpus"), nil, "")
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusRequestEntityTooLarge, "read body: "+err.Error())
		return
	}
	// The id is issued here, before any node is involved: ownership is a
	// pure function of the id, so the id must exist first. The counter only
	// ever moves forward — across failovers it is re-seeded from node
	// watermarks — so no id is issued twice.
	id := "s" + strconv.FormatInt(rt.nextID.Add(1), 10)
	rt.forward(w, r, id, body, id)
}

func (rt *Router) handleForwardByID(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method == http.MethodPost {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			httpError(w, http.StatusRequestEntityTooLarge, "read body: "+err.Error())
			return
		}
		body = b
	}
	rt.forward(w, r, r.PathValue("id"), body, "")
}

// forward sends the request to the node owning key, retrying through
// failover: a transport error marks the owner dead (which promotes its
// sessions) and re-resolves ownership; a 5xx re-probes the cluster first —
// the owner may be healthy while its follower died mid-replication — and
// retries only if a node was actually reaped. The body was buffered by the
// caller, so every attempt sends identical bytes (at-least-once semantics:
// a retried turn that the first owner had journaled before dying can be
// applied twice; acknowledged turns are never lost). presetID, when set,
// rides the X-Fisql-Session-Id header and converts a 409 from a raced
// create retry into the success the client expects.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte, presetID string) {
	rt.forwards.Inc()
	lastErr := "no members"
	for attempt := 0; attempt < forwardAttempts; attempt++ {
		if attempt > 0 {
			rt.retries.Inc()
		}
		rt.mu.RLock()
		members := append([]Member(nil), rt.members...)
		rt.mu.RUnlock()
		owner, ok := Owner(key, members)
		if !ok {
			break
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, owner.Addr+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			httpError(w, http.StatusInternalServerError, "build request: "+err.Error())
			return
		}
		req.Header = r.Header.Clone()
		if presetID != "" {
			req.Header.Set("X-Fisql-Session-Id", presetID)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			if r.Context().Err() != nil {
				return // client went away; nothing to answer, no one to blame
			}
			lastErr = err.Error()
			rt.MarkDead(owner.ID)
			continue
		}
		if resp.StatusCode >= 500 && attempt < forwardAttempts-1 {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Sprintf("%s answered %d", owner.ID, resp.StatusCode)
			if !rt.probeAndReap() {
				// Every node is reachable: the 5xx is real, not a failover
				// artifact. Re-forward once anyway — a replication failure
				// heals as soon as membership settles — then give up.
			}
			continue
		}
		if presetID != "" && resp.StatusCode == http.StatusConflict {
			// This create is a retry that raced its own first attempt; the
			// session exists with our id, which is the outcome the client
			// asked for.
			var conflict struct {
				DB string `json:"db"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&conflict)
			resp.Body.Close()
			writeJSON(w, map[string]any{"session_id": presetID, "db": conflict.DB})
			return
		}
		rt.copyResponse(w, resp)
		return
	}
	httpError(w, http.StatusBadGateway, "no node could serve the request: "+lastErr)
}

// copyResponse relays a node response, flushing after every chunk so SSE
// events stream through the router unbuffered.
func (rt *Router) copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		// Push the status and headers out immediately: a freshly resumed
		// /events subscription may have no pending events, and a subscriber
		// must not wait for the first event to learn it is connected.
		fl.Flush()
	}
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Membership administration.

type drainMsg struct {
	ID string `json:"id"`
}

func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	if !checkToken(w, r, rt.token) {
		return
	}
	var msg drainMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&msg); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	moved, err := rt.Drain(msg.ID)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, map[string]any{"drained": msg.ID, "moved": moved})
}

// Drain moves every session off node id (journaled handoff to each
// session's new rendezvous owner), then removes it from the membership.
// The node keeps running and can be shut down or re-added afterwards.
func (rt *Router) Drain(id string) (moved int, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var draining Member
	idx := -1
	for i, m := range rt.members {
		if m.ID == id {
			idx, draining = i, m
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("unknown node %q", id)
	}
	target := append(rt.members[:idx:idx], rt.members[idx+1:]...)
	// Push the target view first — to everyone, including the draining node
	// — so the handoff's onward replication already picks followers from
	// the post-drain membership.
	rt.version++
	saved := rt.members
	rt.members = target
	rt.pushMembersLocked()
	_ = rt.postJSON(draining, "/internal/members", membersMsg{Version: rt.version, Members: target}, nil)
	var res struct {
		Moved  int      `json:"moved"`
		Failed []string `json:"failed"`
	}
	if err := rt.postJSON(draining, "/internal/rebalance", rebalanceMsg{Members: target}, &res); err != nil {
		// The drain did not run; restore the member rather than stranding
		// its sessions outside the membership.
		rt.members = saved
		rt.version++
		rt.pushMembersLocked()
		return 0, fmt.Errorf("rebalance %s: %w", id, err)
	}
	rt.handoffs.Add(int64(res.Moved))
	return res.Moved, nil
}

type addMsg struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

func (rt *Router) handleAdd(w http.ResponseWriter, r *http.Request) {
	if !checkToken(w, r, rt.token) {
		return
	}
	var msg addMsg
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&msg); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	if msg.ID == "" || msg.Addr == "" {
		httpError(w, http.StatusBadRequest, "need id and addr")
		return
	}
	moved, err := rt.AddNode(Member{ID: msg.ID, Addr: msg.Addr})
	if err != nil {
		httpError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, map[string]any{"added": msg.ID, "moved": moved})
}

// AddNode joins a member and rebalances: every existing node hands off the
// sessions the new rendezvous placement assigns elsewhere — by the
// minimal-disruption property, exactly the sessions the new node now owns.
func (rt *Router) AddNode(m Member) (moved int, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, existing := range rt.members {
		if existing.ID == m.ID {
			return 0, fmt.Errorf("node %q already a member", m.ID)
		}
	}
	old := rt.members
	rt.members = append(append([]Member(nil), rt.members...), m)
	rt.version++
	rt.pushMembersLocked()
	for _, node := range old {
		var res struct {
			Moved int `json:"moved"`
		}
		if err := rt.postJSON(node, "/internal/rebalance", rebalanceMsg{Members: rt.members}, &res); err != nil {
			continue
		}
		moved += res.Moved
	}
	rt.handoffs.Add(int64(moved))
	return moved, nil
}

// Members snapshots the current membership.
func (rt *Router) Members() []Member {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]Member(nil), rt.members...)
}

func (rt *Router) handleMembers(w http.ResponseWriter, r *http.Request) {
	if !checkToken(w, r, rt.token) {
		return
	}
	rt.mu.RLock()
	msg := membersMsg{Version: rt.version, Members: append([]Member(nil), rt.members...)}
	rt.mu.RUnlock()
	writeJSON(w, msg)
}
