package cluster

import (
	"crypto/subtle"
	"net/http"
)

// TokenHeader carries the shared cluster secret on every call to an
// /internal/* endpoint — inter-node replication and promotion as well as
// the router's membership administration.
const TokenHeader = "X-Fisql-Cluster-Token"

// checkToken reports whether r may reach an /internal/* endpoint under the
// configured shared token, answering 403 itself when not. An empty token
// leaves the endpoints open — acceptable only when the serving ports are
// unreachable from clients (see DESIGN.md "Cluster serving"); production
// deployments set the same -cluster-token on the router and every node.
func checkToken(w http.ResponseWriter, r *http.Request, token string) bool {
	if token == "" {
		return true
	}
	got := r.Header.Get(TokenHeader)
	if subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1 {
		return true
	}
	httpError(w, http.StatusForbidden, "missing or invalid "+TokenHeader)
	return false
}
