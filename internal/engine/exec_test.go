package engine

import (
	"testing"
)

// testDB builds the small concert/singer database used across engine tests.
func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("concert_singer")
	script := `
CREATE TABLE singer (id INT, name TEXT, age INT, country TEXT, song_name TEXT, song_release_year TEXT);
INSERT INTO singer VALUES
 (1, 'Joe Sharp', 52, 'Netherlands', 'You', '1992'),
 (2, 'Timbaland', 32, 'United States', 'Dangerous', '2008'),
 (3, 'Justin Brown', 29, 'France', 'Hey Oh', '2013'),
 (4, 'Rose White', 41, 'France', 'Sun', '2003'),
 (5, 'John Nizinik', 43, 'France', 'Gentleman', '2014'),
 (6, 'Tribal King', 25, 'France', 'Love', '2016');
CREATE TABLE concert (concert_id INT, concert_name TEXT, theme TEXT, stadium_id INT, year INT);
INSERT INTO concert VALUES
 (1, 'Auditions', 'Free choice', 1, 2014),
 (2, 'Super bootcamp', 'Free choice 2', 2, 2014),
 (3, 'Home Visits', 'Bleeding Love', 2, 2015),
 (4, 'Week 1', 'Wide Awake', 10, 2014),
 (5, 'Week 1', 'Happy Tonight', 9, 2015),
 (6, 'Week 2', 'Party All Night', 7, 2015);
CREATE TABLE singer_in_concert (concert_id INT, singer_id INT);
INSERT INTO singer_in_concert VALUES
 (1, 2), (1, 3), (1, 5), (2, 3), (2, 6), (3, 5), (4, 4), (5, 6), (6, 3);
CREATE TABLE stadium (stadium_id INT, location TEXT, name TEXT, capacity INT, average INT);
INSERT INTO stadium VALUES
 (1, 'Raith Rovers', 'Stark''s Park', 10104, 822),
 (2, 'Ayr United', 'Somerset Park', 11998, 1294),
 (7, 'Dumbarton', 'Strathclyde Homes Stadium', 2000, 837),
 (9, 'East Fife', 'Bayview Stadium', 2000, 1980),
 (10, 'Queen''s Park', 'Hampden Park', 52500, 1763);
`
	if err := db.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

func mustQuery(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := NewExecutor(db).Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT * FROM singer")
	if len(res.Rows) != 6 || len(res.Columns) != 6 {
		t.Fatalf("got %dx%d", len(res.Rows), len(res.Columns))
	}
	if res.Columns[1] != "name" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestWhereFilter(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT name FROM singer WHERE country = 'France'")
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

func TestCountStar(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT COUNT(*) FROM singer")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 6 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT COUNT(DISTINCT country) FROM singer")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestAggregates(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT MIN(age), MAX(age), AVG(age), SUM(age) FROM singer")
	row := res.Rows[0]
	if row[0].I != 25 || row[1].I != 52 {
		t.Errorf("min/max: %v", row)
	}
	if row[2].F != 37 {
		t.Errorf("avg: %v", row[2])
	}
	if row[3].I != 222 {
		t.Errorf("sum: %v", row[3])
	}
}

func TestGroupByHaving(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].S != "France" || res.Rows[0][1].I != 4 {
		t.Errorf("got %v", res.Rows[0])
	}
}

func TestOrderByDescLimit(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT name FROM singer ORDER BY age DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].S != "Joe Sharp" || res.Rows[1][0].S != "John Nizinik" {
		t.Errorf("got %v", res.Rows)
	}
	if !res.Ordered {
		t.Error("result should be marked ordered")
	}
}

func TestOrderByAggregate(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT country FROM singer GROUP BY country ORDER BY COUNT(*) DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "France" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestOrderByOrdinal(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT name, age FROM singer ORDER BY 2 ASC LIMIT 1")
	if res.Rows[0][0].S != "Tribal King" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	res := mustQuery(t, testDB(t), `
SELECT singer.name FROM singer
JOIN singer_in_concert ON singer.id = singer_in_concert.singer_id
JOIN concert ON concert.concert_id = singer_in_concert.concert_id
WHERE concert.year = 2014`)
	// Concerts 1, 2 and 4 are in 2014; their singer lists total 6 entries
	// (Justin Brown appears twice).
	if len(res.Rows) != 6 {
		t.Fatalf("got %d rows: %v", len(res.Rows), res.Rows)
	}
}

func TestJoinWithAliases(t *testing.T) {
	res := mustQuery(t, testDB(t), `
SELECT s.name FROM singer AS s JOIN singer_in_concert AS sc ON s.id = sc.singer_id
WHERE sc.concert_id = 1 ORDER BY s.name ASC`)
	if len(res.Rows) != 3 {
		t.Fatalf("got %v", res.Rows)
	}
	if res.Rows[0][0].S != "John Nizinik" {
		t.Errorf("got %v", res.Rows)
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	res := mustQuery(t, testDB(t), `
SELECT c.concert_name, st.name FROM concert AS c
LEFT JOIN stadium AS st ON c.stadium_id = st.stadium_id
WHERE c.concert_id = 4`)
	// Concert 4 is at stadium 10 which exists; use a missing stadium to
	// check padding: concert at stadium 10 exists, so craft differently.
	if len(res.Rows) != 1 {
		t.Fatalf("got %v", res.Rows)
	}
	res2 := mustQuery(t, testDB(t), `
SELECT sc.singer_id, st.name FROM singer_in_concert AS sc
LEFT JOIN stadium AS st ON sc.concert_id = st.stadium_id AND st.stadium_id = 999`)
	for _, row := range res2.Rows {
		if !row[1].IsNull() {
			t.Errorf("expected NULL pad, got %v", row[1])
		}
	}
}

func TestScalarSubquery(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT name, song_release_year FROM singer WHERE age = (SELECT MIN(age) FROM singer)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Tribal King" || res.Rows[0][1].S != "2016" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT name FROM singer WHERE id IN (SELECT singer_id FROM singer_in_concert WHERE concert_id = 1)")
	if len(res.Rows) != 3 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestNotInSubquery(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT name FROM singer WHERE id NOT IN (SELECT singer_id FROM singer_in_concert)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Joe Sharp" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestCorrelatedExists(t *testing.T) {
	res := mustQuery(t, testDB(t), `
SELECT name FROM singer WHERE EXISTS (
  SELECT 1 FROM singer_in_concert WHERE singer_in_concert.singer_id = singer.id)`)
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
}

func TestUnionIntersectExcept(t *testing.T) {
	db := testDB(t)
	union := mustQuery(t, db,
		"SELECT country FROM singer WHERE age > 40 UNION SELECT country FROM singer WHERE age < 30")
	if len(union.Rows) != 2 { // Netherlands+France vs France → {Netherlands, France}
		t.Errorf("union: %v", union.Rows)
	}
	inter := mustQuery(t, db,
		"SELECT country FROM singer WHERE age > 40 INTERSECT SELECT country FROM singer WHERE age < 30")
	if len(inter.Rows) != 1 || inter.Rows[0][0].S != "France" {
		t.Errorf("intersect: %v", inter.Rows)
	}
	except := mustQuery(t, db,
		"SELECT country FROM singer EXCEPT SELECT country FROM singer WHERE age < 35")
	if len(except.Rows) != 1 || except.Rows[0][0].S != "Netherlands" {
		t.Errorf("except: %v", except.Rows)
	}
}

func TestDistinct(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT DISTINCT country FROM singer")
	if len(res.Rows) != 3 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestLike(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT name FROM singer WHERE name LIKE 'J%'")
	if len(res.Rows) != 3 {
		t.Fatalf("got %v", res.Rows)
	}
	res = mustQuery(t, testDB(t), "SELECT name FROM singer WHERE name LIKE '%king'")
	if len(res.Rows) != 1 {
		t.Fatalf("case-insensitive LIKE: got %v", res.Rows)
	}
}

func TestBetween(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT name FROM singer WHERE age BETWEEN 29 AND 41")
	if len(res.Rows) != 3 {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestDateStringComparison(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT COUNT(*) FROM singer WHERE song_release_year >= '2008' AND song_release_year < '2015'")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestArithmetic(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT age + 10, age * 2, age - 5, age / 2 FROM singer WHERE id = 1")
	row := res.Rows[0]
	if row[0].I != 62 || row[1].I != 104 || row[2].I != 47 {
		t.Errorf("got %v", row)
	}
	if row[3].F != 26 {
		t.Errorf("division: %v", row[3])
	}
}

func TestCaseExpr(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT CASE WHEN age >= 40 THEN 'senior' ELSE 'junior' END FROM singer WHERE id = 1")
	if res.Rows[0][0].S != "senior" {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestDerivedTable(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT COUNT(*) FROM (SELECT country FROM singer WHERE age > 30) AS older")
	if res.Rows[0][0].I != 4 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestEmptyResultHeaders(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT * FROM singer WHERE age > 200")
	if len(res.Rows) != 0 {
		t.Fatalf("got rows: %v", res.Rows)
	}
	if len(res.Columns) != 6 {
		t.Errorf("header lost on empty result: %v", res.Columns)
	}
}

func TestErrors(t *testing.T) {
	db := testDB(t)
	ex := NewExecutor(db)
	for _, sql := range []string{
		"SELECT * FROM nope",
		"SELECT nope FROM singer",
		"SELECT singer.nope FROM singer",
		"SELECT nope.name FROM singer",
		"SELECT SUM(name) FROM singer",
		"SELECT MAX(*) FROM singer",
		"SELECT name FROM singer WHERE id = (SELECT id FROM singer)", // >1 row
	} {
		if _, err := ex.Query(sql); err == nil {
			t.Errorf("%q: expected error", sql)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	_, err := NewExecutor(testDB(t)).Query(
		"SELECT concert_id FROM concert JOIN singer_in_concert ON concert.concert_id = singer_in_concert.concert_id")
	if err == nil {
		t.Fatal("expected ambiguity error")
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDatabase("nulls")
	if err := db.LoadScript(`
CREATE TABLE t (id INT, v INT);
INSERT INTO t VALUES (1, 10), (2, NULL), (3, 30);`); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(db)
	res, err := ex.Query("SELECT id FROM t WHERE v > 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // NULL comparison is not true
		t.Errorf("NULL filtered rows: %v", res.Rows)
	}
	res, _ = ex.Query("SELECT id FROM t WHERE v IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Errorf("IS NULL: %v", res.Rows)
	}
	res, _ = ex.Query("SELECT COUNT(v), COUNT(*) FROM t")
	if res.Rows[0][0].I != 2 || res.Rows[0][1].I != 3 {
		t.Errorf("COUNT skips NULL: %v", res.Rows[0])
	}
	res, _ = ex.Query("SELECT AVG(v) FROM t")
	if res.Rows[0][0].F != 20 {
		t.Errorf("AVG skips NULL: %v", res.Rows[0][0])
	}
	// NOT IN with NULL in the list yields no rows (three-valued logic).
	res, _ = ex.Query("SELECT id FROM t WHERE 99 NOT IN (SELECT v FROM t)")
	if len(res.Rows) != 0 {
		t.Errorf("NOT IN with NULL should be empty: %v", res.Rows)
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT COUNT(*) FROM singer WHERE age > 100")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 0 {
		t.Fatalf("global aggregate over empty input: %v", res.Rows)
	}
	res = mustQuery(t, testDB(t),
		"SELECT country, COUNT(*) FROM singer WHERE age > 100 GROUP BY country")
	if len(res.Rows) != 0 {
		t.Fatalf("grouped aggregate over empty input: %v", res.Rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT LENGTH(name), LOWER(name), UPPER(country), ABS(0 - age) FROM singer WHERE id = 6")
	row := res.Rows[0]
	if row[0].I != 11 || row[1].S != "tribal king" || row[2].S != "FRANCE" || row[3].I != 25 {
		t.Errorf("got %v", row)
	}
}

func TestLimitOffset(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT id FROM singer ORDER BY id ASC LIMIT 2 OFFSET 3")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 4 || res.Rows[1][0].I != 5 {
		t.Fatalf("got %v", res.Rows)
	}
}
