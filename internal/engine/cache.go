package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultCacheCapacity bounds a Cache built with NewCache(0). The evaluation
// harness replays a few thousand distinct (gold, candidate) queries per
// corpus, so this holds a full experiment's working set without growing
// without bound under adversarial traffic.
const DefaultCacheCapacity = 4096

// Cache is a bounded, mutex-guarded parse+plan cache keyed by (database,
// SQL text). It removes the dominant repeated work of the evaluation loop —
// correction experiments re-execute the same gold and candidate queries
// across feedback rounds — by parsing and planning each distinct query once.
//
// Thread-safety contract: the Cache itself is safe for concurrent use from
// any number of goroutines, and the *Plan values it returns are immutable
// and shared. Executors are NOT concurrency-safe — each goroutine must run
// plans on its own Executor (Cache.Query does this for you).
//
// Keying and invalidation: databases are immutable after load, so the key
// uses *Database pointer identity — there is no invalidation protocol;
// loading a new Database yields new keys and old entries age out via LRU
// eviction. Parse and plan errors are cached too (negative caching): the
// harness re-submits known-bad candidate SQL on every feedback round, and
// re-discovering the same error is as wasteful as re-planning a good query.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[cacheKey]*list.Element

	// hits/misses tally lookups for observability (see Stats). A racing
	// duplicate miss counts as a miss for each goroutine that ran Prepare —
	// the tally reflects planning work actually done.
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheKey struct {
	db  *Database
	sql string
}

type cacheEntry struct {
	key  cacheKey
	plan *Plan
	err  error
}

// NewCache builds an empty cache holding at most capacity entries;
// capacity <= 0 means DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element),
	}
}

// Plan returns the plan (or remembered error) for sql against db, preparing
// and inserting it on a miss.
func (c *Cache) Plan(db *Database, sql string) (*Plan, error) {
	k := cacheKey{db: db, sql: sql}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.plan, e.err
	}
	c.mu.Unlock()
	c.misses.Add(1)

	// Prepare outside the lock: planning is deterministic, so two goroutines
	// racing on the same miss just duplicate some work; the first insert wins
	// and both return equivalent results.
	p, err := Prepare(db, sql)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		return e.plan, e.err
	}
	c.entries[k] = c.ll.PushFront(&cacheEntry{key: k, plan: p, err: err})
	for c.ll.Len() > c.capacity {
		old := c.ll.Back()
		c.ll.Remove(old)
		delete(c.entries, old.Value.(*cacheEntry).key)
	}
	return p, err
}

// Query plans sql via the cache and executes it on a fresh per-call
// Executor, making it safe to call concurrently.
func (c *Cache) Query(db *Database, sql string) (*Result, error) {
	p, err := c.Plan(db, sql)
	if err != nil {
		return nil, err
	}
	return NewExecutor(db).Run(p)
}

// Stats reports cumulative lookup (hits, misses). A hit is a lookup served
// from the cache; a miss is a lookup that ran Prepare (including the loser
// of a racing duplicate miss).
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached entries (hits and remembered errors).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
