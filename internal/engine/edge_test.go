package engine

import (
	"strings"
	"testing"
)

// Edge cases and less-traveled executor paths.

func TestTableStarProjection(t *testing.T) {
	res := mustQuery(t, testDB(t), `
SELECT singer.* FROM singer JOIN singer_in_concert ON singer.id = singer_in_concert.singer_id
WHERE singer_in_concert.concert_id = 1`)
	if len(res.Columns) != 6 {
		t.Fatalf("columns: %v", res.Columns)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
}

func TestTableStarUnknownTable(t *testing.T) {
	if _, err := NewExecutor(testDB(t)).Query("SELECT nope.* FROM singer"); err == nil {
		t.Fatal("unknown table star should error")
	}
}

func TestCrossJoin(t *testing.T) {
	db := testDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*) FROM singer CROSS JOIN stadium")
	if res.Rows[0][0].I != 6*5 {
		t.Fatalf("cross join count: %v", res.Rows[0][0])
	}
	// Comma syntax is an implicit cross join.
	res = mustQuery(t, db, "SELECT COUNT(*) FROM singer, stadium")
	if res.Rows[0][0].I != 30 {
		t.Fatalf("comma join count: %v", res.Rows[0][0])
	}
}

func TestDerivedTableWithAliasLookup(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT older.name FROM (SELECT name, age FROM singer WHERE age > 40) AS older ORDER BY older.age DESC")
	if len(res.Rows) != 3 || res.Rows[0][0].S != "Joe Sharp" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT 1 + 2, 'x'")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].S != "x" {
		t.Fatalf("got %v", res.Rows[0])
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT country FROM singer WHERE age < 30 UNION ALL SELECT country FROM singer WHERE age < 35")
	if len(res.Rows) != 2+3 {
		t.Fatalf("union all rows: %d", len(res.Rows))
	}
}

func TestOrderByAfterUnion(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT name FROM singer WHERE age > 45 UNION SELECT name FROM singer WHERE age < 30 ORDER BY name ASC")
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for i := 1; i < len(res.Rows); i++ {
		if strings.ToLower(res.Rows[i-1][0].S) > strings.ToLower(res.Rows[i][0].S) {
			t.Fatalf("not sorted: %v", res.Rows)
		}
	}
}

func TestMixedCompoundChain(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT country FROM singer UNION SELECT country FROM singer WHERE age > 100 EXCEPT SELECT country FROM singer WHERE country = 'France'")
	for _, row := range res.Rows {
		if row[0].S == "France" {
			t.Fatal("EXCEPT did not remove France")
		}
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT 1 / 0, 5 % 0")
	if !res.Rows[0][0].IsNull() || !res.Rows[0][1].IsNull() {
		t.Fatalf("division by zero: %v", res.Rows[0])
	}
}

func TestNegativeLimitReturnsAll(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT id FROM singer LIMIT -1")
	if len(res.Rows) != 6 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
}

func TestOffsetPastEnd(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT id FROM singer LIMIT 5 OFFSET 100")
	if len(res.Rows) != 0 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	// Global aggregation with HAVING filters the single group.
	res := mustQuery(t, testDB(t), "SELECT COUNT(*) FROM singer HAVING COUNT(*) > 100")
	if len(res.Rows) != 0 {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, testDB(t), "SELECT COUNT(*) FROM singer HAVING COUNT(*) > 2")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 6 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestInListLiteral(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT COUNT(*) FROM singer WHERE country IN ('France', 'Netherlands')")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
	res = mustQuery(t, testDB(t),
		"SELECT COUNT(*) FROM singer WHERE country NOT IN ('France', 'Netherlands')")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	res := mustQuery(t, testDB(t), `
SELECT name FROM singer AS s
WHERE (SELECT COUNT(*) FROM singer_in_concert WHERE singer_in_concert.singer_id = s.id) >= 3`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Justin Brown" {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT CASE WHEN age > 100 THEN 'old' END FROM singer WHERE id = 1")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestNotOperator(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT COUNT(*) FROM singer WHERE NOT country = 'France'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestNegationInProjection(t *testing.T) {
	res := mustQuery(t, testDB(t), "SELECT -age FROM singer WHERE id = 1")
	if res.Rows[0][0].I != -52 {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestBareAliasResolutionInOrderBy(t *testing.T) {
	res := mustQuery(t, testDB(t),
		"SELECT name AS n, age AS a FROM singer ORDER BY a DESC LIMIT 1")
	if res.Rows[0][0].S != "Joe Sharp" {
		t.Fatalf("got %v", res.Rows)
	}
	if res.Columns[0] != "n" || res.Columns[1] != "a" {
		t.Fatalf("alias columns: %v", res.Columns)
	}
}

func TestLoadScriptErrors(t *testing.T) {
	db := NewDatabase("bad")
	for _, script := range []string{
		"NOT SQL",
		"INSERT INTO missing VALUES (1)",
		"CREATE TABLE t (a INT); INSERT INTO t (nope) VALUES (1)",
		"CREATE TABLE t2 (a INT); INSERT INTO t2 VALUES (1, 2)",
		"CREATE TABLE t3 (a INT); INSERT INTO t3 VALUES ('x')",
	} {
		if err := db.LoadScript(script); err == nil {
			t.Errorf("script %q should fail", script)
		}
	}
}

func TestInsertNullAndBool(t *testing.T) {
	db := NewDatabase("nb")
	if err := db.LoadScript(`
CREATE TABLE t (a INT, b BOOL, c TEXT);
INSERT INTO t VALUES (NULL, TRUE, 'x'), (-3, FALSE, NULL);`); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("t")
	if !tab.Rows[0][0].IsNull() || !tab.Rows[0][1].B {
		t.Errorf("row 0: %v", tab.Rows[0])
	}
	if tab.Rows[1][0].I != -3 || tab.Rows[1][1].B || !tab.Rows[1][2].IsNull() {
		t.Errorf("row 1: %v", tab.Rows[1])
	}
}

func TestJoinResultCap(t *testing.T) {
	db := NewDatabase("cap")
	script := "CREATE TABLE big (x INT);"
	if err := db.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	tab, _ := db.Table("big")
	for i := 0; i < 3000; i++ {
		tab.Rows = append(tab.Rows, []Value{Int(int64(i))})
	}
	ex := NewExecutor(db)
	ex.maxRows = 10000
	if _, err := ex.Query("SELECT COUNT(*) FROM big AS a CROSS JOIN big AS b"); err == nil {
		t.Fatal("cartesian blowup should hit the row cap")
	}
}
