package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// Executor runs SELECT statements against one database. An Executor is not
// safe for concurrent use; they are cheap, so create one per goroutine.
type Executor struct {
	db *Database
	// maxRows caps intermediate join sizes to guard against accidental
	// cartesian blowups from generated queries.
	maxRows int
	// lastProjected holds the projection context of the most recent
	// execCore call, consumed immediately by orderRows.
	lastProjected []projected
}

// NewExecutor returns an executor over db.
func NewExecutor(db *Database) *Executor {
	return &Executor{db: db, maxRows: 2_000_000}
}

// Query parses and executes a SELECT given as text.
func (ex *Executor) Query(sql string) (*Result, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return ex.Select(sel)
}

// Select executes a parsed SELECT.
func (ex *Executor) Select(sel *sqlast.SelectStmt) (*Result, error) {
	return ex.execSelect(sel, nil)
}

// ----------------------------------------------------------------------------
// Row environments

// binding exposes one table source's columns under its alias.
type binding struct {
	alias string // lowercase alias or table name
	cols  []string
	vals  []Value
}

// rowEnv is the scope an expression evaluates in: the current row's
// bindings, chained to the enclosing query's scope for correlated
// subqueries.
type rowEnv struct {
	bindings []binding
	outer    *rowEnv
}

// lookup resolves a (possibly qualified) column reference.
func (env *rowEnv) lookup(table, col string) (Value, error) {
	for e := env; e != nil; e = e.outer {
		if table != "" {
			for _, b := range e.bindings {
				if b.alias == strings.ToLower(table) {
					for i, c := range b.cols {
						if strings.EqualFold(c, col) {
							return b.vals[i], nil
						}
					}
					return Value{}, fmt.Errorf("column %s.%s not found", table, col)
				}
			}
			continue // alias might belong to an outer scope
		}
		found := false
		var v Value
		for _, b := range e.bindings {
			for i, c := range b.cols {
				if strings.EqualFold(c, col) {
					if found {
						return Value{}, fmt.Errorf("ambiguous column %q", col)
					}
					found = true
					v = b.vals[i]
				}
			}
		}
		if found {
			return v, nil
		}
	}
	if table != "" {
		return Value{}, fmt.Errorf("unknown table or alias %q", table)
	}
	return Value{}, fmt.Errorf("unknown column %q", col)
}

// ----------------------------------------------------------------------------
// FROM evaluation

// sourceRows materializes one table source as a binding list per row.
func (ex *Executor) sourceRows(ts sqlast.TableSource, outer *rowEnv) (alias string, cols []string, rows [][]Value, err error) {
	if ts.Sub != nil {
		res, err := ex.execSelect(ts.Sub, outer)
		if err != nil {
			return "", nil, nil, err
		}
		alias = strings.ToLower(ts.Alias)
		if alias == "" {
			alias = "subquery"
		}
		return alias, res.Columns, res.Rows, nil
	}
	t, ok := ex.db.Table(ts.Name)
	if !ok {
		return "", nil, nil, fmt.Errorf("unknown table %q", ts.Name)
	}
	alias = strings.ToLower(ts.Alias)
	if alias == "" {
		alias = strings.ToLower(ts.Name)
	}
	cols = make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	return alias, cols, t.Rows, nil
}

// fromRows evaluates the FROM clause into a slice of row environments.
func (ex *Executor) fromRows(from *sqlast.FromClause, outer *rowEnv) ([]*rowEnv, error) {
	if from == nil {
		return []*rowEnv{{outer: outer}}, nil
	}
	alias, cols, rows, err := ex.sourceRows(from.First, outer)
	if err != nil {
		return nil, err
	}
	envs := make([]*rowEnv, 0, len(rows))
	for _, r := range rows {
		envs = append(envs, &rowEnv{
			bindings: []binding{{alias: alias, cols: cols, vals: r}},
			outer:    outer,
		})
	}
	for _, j := range from.Joins {
		jAlias, jCols, jRows, err := ex.sourceRows(j.Source, outer)
		if err != nil {
			return nil, err
		}
		joined := make([]*rowEnv, 0, len(envs))
		for _, left := range envs {
			matched := false
			for _, r := range jRows {
				cand := &rowEnv{
					bindings: append(append([]binding{}, left.bindings...),
						binding{alias: jAlias, cols: jCols, vals: r}),
					outer: outer,
				}
				if j.On != nil {
					ok, err := ex.evalBool(j.On, cand, nil)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				matched = true
				joined = append(joined, cand)
				if len(joined) > ex.maxRows {
					return nil, fmt.Errorf("join result exceeds %d rows", ex.maxRows)
				}
			}
			if !matched && j.Type == sqlast.JoinLeft {
				nulls := make([]Value, len(jCols))
				for i := range nulls {
					nulls[i] = Null()
				}
				joined = append(joined, &rowEnv{
					bindings: append(append([]binding{}, left.bindings...),
						binding{alias: jAlias, cols: jCols, vals: nulls}),
					outer: outer,
				})
			}
		}
		envs = joined
	}
	return envs, nil
}

// ----------------------------------------------------------------------------
// Expression evaluation

// evalCtx carries the optional aggregate group: when non-nil, aggregate
// function calls evaluate over these rows instead of erroring.
type evalCtx struct {
	group []*rowEnv
}

func (ex *Executor) evalBool(e sqlast.Expr, env *rowEnv, ctx *evalCtx) (bool, error) {
	v, err := ex.eval(e, env, ctx)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

func (ex *Executor) eval(e sqlast.Expr, env *rowEnv, ctx *evalCtx) (Value, error) {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		return env.lookup(x.Table, x.Column)
	case *sqlast.Literal:
		switch x.Kind {
		case sqlast.LitNull:
			return Null(), nil
		case sqlast.LitBool:
			return Bool(x.Text == "TRUE"), nil
		case sqlast.LitString:
			return Text(x.Text), nil
		case sqlast.LitNumber:
			if strings.Contains(x.Text, ".") {
				f, err := strconv.ParseFloat(x.Text, 64)
				if err != nil {
					return Value{}, fmt.Errorf("bad number %q", x.Text)
				}
				return Float(f), nil
			}
			i, err := strconv.ParseInt(x.Text, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("bad number %q", x.Text)
			}
			return Int(i), nil
		}
		return Value{}, fmt.Errorf("bad literal kind %d", x.Kind)
	case *sqlast.Binary:
		return ex.evalBinary(x, env, ctx)
	case *sqlast.Unary:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case sqlast.OpNot:
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.Truthy()), nil
		case sqlast.OpNeg:
			switch v.T {
			case TypeInt:
				return Int(-v.I), nil
			case TypeFloat:
				return Float(-v.F), nil
			case TypeNull:
				return Null(), nil
			}
			return Value{}, fmt.Errorf("cannot negate %s", v.T)
		}
		return Value{}, fmt.Errorf("bad unary op %d", x.Op)
	case *sqlast.FuncCall:
		return ex.evalFunc(x, env, ctx)
	case *sqlast.InExpr:
		return ex.evalIn(x, env, ctx)
	case *sqlast.BetweenExpr:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		lo, err := ex.eval(x.Lo, env, ctx)
		if err != nil {
			return Value{}, err
		}
		hi, err := ex.eval(x.Hi, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return Bool(in), nil
	case *sqlast.LikeExpr:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		pat, err := ex.eval(x.Pattern, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || pat.IsNull() {
			return Null(), nil
		}
		m := likeMatch(v.String(), pat.String())
		if x.Not {
			m = !m
		}
		return Bool(m), nil
	case *sqlast.IsNullExpr:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		isNull := v.IsNull()
		if x.Not {
			isNull = !isNull
		}
		return Bool(isNull), nil
	case *sqlast.ExistsExpr:
		res, err := ex.execSelect(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		exists := len(res.Rows) > 0
		if x.Not {
			exists = !exists
		}
		return Bool(exists), nil
	case *sqlast.SubqueryExpr:
		res, err := ex.execSelect(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		if len(res.Rows) == 0 {
			return Null(), nil
		}
		if len(res.Columns) != 1 {
			return Value{}, fmt.Errorf("scalar subquery returned %d columns", len(res.Columns))
		}
		if len(res.Rows) > 1 {
			return Value{}, fmt.Errorf("scalar subquery returned %d rows", len(res.Rows))
		}
		return res.Rows[0][0], nil
	case *sqlast.CaseExpr:
		for _, w := range x.Whens {
			ok, err := ex.evalBool(w.When, env, ctx)
			if err != nil {
				return Value{}, err
			}
			if ok {
				return ex.eval(w.Then, env, ctx)
			}
		}
		if x.Else != nil {
			return ex.eval(x.Else, env, ctx)
		}
		return Null(), nil
	}
	return Value{}, fmt.Errorf("unsupported expression %T", e)
}

func (ex *Executor) evalBinary(x *sqlast.Binary, env *rowEnv, ctx *evalCtx) (Value, error) {
	// AND/OR get three-valued logic with short-circuiting.
	if x.Op == sqlast.OpAnd || x.Op == sqlast.OpOr {
		l, err := ex.eval(x.L, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if x.Op == sqlast.OpAnd && !l.IsNull() && !l.Truthy() {
			return Bool(false), nil
		}
		if x.Op == sqlast.OpOr && !l.IsNull() && l.Truthy() {
			return Bool(true), nil
		}
		r, err := ex.eval(x.R, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			// a AND NULL is NULL unless a is false (handled above);
			// a OR NULL is NULL unless a is true (handled above).
			if x.Op == sqlast.OpAnd && !r.IsNull() && !r.Truthy() {
				return Bool(false), nil
			}
			if x.Op == sqlast.OpOr && !r.IsNull() && r.Truthy() {
				return Bool(true), nil
			}
			return Null(), nil
		}
		if x.Op == sqlast.OpAnd {
			return Bool(l.Truthy() && r.Truthy()), nil
		}
		return Bool(l.Truthy() || r.Truthy()), nil
	}
	l, err := ex.eval(x.L, env, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := ex.eval(x.R, env, ctx)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case sqlast.OpEq, sqlast.OpNeq, sqlast.OpLt, sqlast.OpLte, sqlast.OpGt, sqlast.OpGte:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c := Compare(l, r)
		switch x.Op {
		case sqlast.OpEq:
			return Bool(c == 0), nil
		case sqlast.OpNeq:
			return Bool(c != 0), nil
		case sqlast.OpLt:
			return Bool(c < 0), nil
		case sqlast.OpLte:
			return Bool(c <= 0), nil
		case sqlast.OpGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Value{}, fmt.Errorf("arithmetic on non-numeric values %s, %s", l.T, r.T)
		}
		bothInt := l.T == TypeInt && r.T == TypeInt
		switch x.Op {
		case sqlast.OpAdd:
			if bothInt {
				return Int(l.I + r.I), nil
			}
			return Float(lf + rf), nil
		case sqlast.OpSub:
			if bothInt {
				return Int(l.I - r.I), nil
			}
			return Float(lf - rf), nil
		case sqlast.OpMul:
			if bothInt {
				return Int(l.I * r.I), nil
			}
			return Float(lf * rf), nil
		case sqlast.OpDiv:
			if rf == 0 {
				return Null(), nil
			}
			return Float(lf / rf), nil
		default: // OpMod
			if !bothInt || r.I == 0 {
				return Null(), nil
			}
			return Int(l.I % r.I), nil
		}
	}
	return Value{}, fmt.Errorf("bad binary op %d", x.Op)
}

func (ex *Executor) evalIn(x *sqlast.InExpr, env *rowEnv, ctx *evalCtx) (Value, error) {
	v, err := ex.eval(x.X, env, ctx)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	var candidates []Value
	if x.Sub != nil {
		res, err := ex.execSelect(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		if len(res.Columns) != 1 {
			return Value{}, fmt.Errorf("IN subquery returned %d columns", len(res.Columns))
		}
		for _, row := range res.Rows {
			candidates = append(candidates, row[0])
		}
	} else {
		for _, le := range x.List {
			c, err := ex.eval(le, env, ctx)
			if err != nil {
				return Value{}, err
			}
			candidates = append(candidates, c)
		}
	}
	sawNull := false
	for _, c := range candidates {
		eq, known := Equal(v, c)
		if !known {
			sawNull = true
			continue
		}
		if eq {
			return Bool(!x.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(x.Not), nil
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively.
func likeMatch(s, pattern string) bool {
	return likeRec(strings.ToLower(s), strings.ToLower(pattern))
}

func likeRec(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRec(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRec(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRec(s[1:], p[1:])
	}
}

// ----------------------------------------------------------------------------
// Aggregates

func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// hasAggregate reports whether e contains an aggregate call outside
// subqueries.
func hasAggregate(e sqlast.Expr) bool {
	found := false
	sqlast.Walk(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.FuncCall:
			if isAggregateName(x.Name) {
				found = true
				return false
			}
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			return false // do not descend into subqueries
		case *sqlast.InExpr:
			if x.Sub != nil {
				sqlast.Walk(x.X, func(m sqlast.Expr) bool {
					if fc, ok := m.(*sqlast.FuncCall); ok && isAggregateName(fc.Name) {
						found = true
						return false
					}
					return true
				})
				return false
			}
		}
		return true
	})
	return found
}

func (ex *Executor) evalFunc(x *sqlast.FuncCall, env *rowEnv, ctx *evalCtx) (Value, error) {
	if isAggregateName(x.Name) {
		if ctx == nil || ctx.group == nil {
			return Value{}, fmt.Errorf("aggregate %s used outside aggregation context", x.Name)
		}
		return ex.evalAggregate(x, ctx.group)
	}
	// Scalar functions.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a, env, ctx)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Name {
	case "LENGTH":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("LENGTH takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].String()))), nil
	case "LOWER":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("LOWER takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(args[0].String())), nil
	case "UPPER":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("UPPER takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(args[0].String())), nil
	case "ABS":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("ABS takes 1 argument")
		}
		switch args[0].T {
		case TypeNull:
			return Null(), nil
		case TypeInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case TypeFloat:
			if args[0].F < 0 {
				return Float(-args[0].F), nil
			}
			return args[0], nil
		}
		return Value{}, fmt.Errorf("ABS of non-numeric value")
	}
	return Value{}, fmt.Errorf("unknown function %q", x.Name)
}

func (ex *Executor) evalAggregate(x *sqlast.FuncCall, group []*rowEnv) (Value, error) {
	// COUNT(*) counts rows; everything else evaluates the argument per row
	// and skips NULLs.
	if x.Star {
		if x.Name != "COUNT" {
			return Value{}, fmt.Errorf("%s(*) is not valid", x.Name)
		}
		return Int(int64(len(group))), nil
	}
	if len(x.Args) != 1 {
		return Value{}, fmt.Errorf("%s takes 1 argument", x.Name)
	}
	var vals []Value
	seen := map[string]bool{}
	for _, env := range group {
		v, err := ex.eval(x.Args[0], env, nil)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch x.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return Value{}, fmt.Errorf("%s of non-numeric value", x.Name)
			}
			if v.T != TypeInt {
				allInt = false
			}
			sum += f
		}
		if x.Name == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := Compare(v, best)
			if (x.Name == "MIN" && c < 0) || (x.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("unknown aggregate %q", x.Name)
}

// ----------------------------------------------------------------------------
// SELECT execution

func (ex *Executor) execSelect(sel *sqlast.SelectStmt, outer *rowEnv) (*Result, error) {
	res, err := ex.execCore(sel, outer)
	if err != nil {
		return nil, err
	}
	// Set operations combine projected row sets.
	for c := sel.Compound; c != nil; {
		right, err := ex.execCore(c.Right, outer)
		if err != nil {
			return nil, err
		}
		if len(right.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("%s arms have %d vs %d columns", c.Op, len(res.Columns), len(right.Columns))
		}
		res.Rows = combineSetOp(c.Op, res.Rows, right.Rows)
		c = c.Right.Compound
	}
	if sel.Compound != nil {
		switch sel.Compound.Op {
		case sqlast.SetUnion, sqlast.SetIntersect, sqlast.SetExcept:
			res.Rows = dedupeRows(res.Rows)
		}
	}
	// ORDER BY over the final projected rows.
	if len(sel.OrderBy) > 0 {
		if err := ex.orderRows(sel, res); err != nil {
			return nil, err
		}
		res.Ordered = true
	}
	// LIMIT / OFFSET.
	if sel.Limit != nil {
		lim, err := ex.eval(sel.Limit, &rowEnv{outer: outer}, nil)
		if err != nil {
			return nil, err
		}
		off := int64(0)
		if sel.Offset != nil {
			ov, err := ex.eval(sel.Offset, &rowEnv{outer: outer}, nil)
			if err != nil {
				return nil, err
			}
			off = ov.I
		}
		n, _ := lim.AsFloat()
		limit := int(n)
		start := int(off)
		if start > len(res.Rows) {
			start = len(res.Rows)
		}
		end := start + limit
		if limit < 0 || end > len(res.Rows) {
			end = len(res.Rows)
		}
		res.Rows = res.Rows[start:end]
	}
	return res, nil
}

func combineSetOp(op sqlast.SetOp, a, b [][]Value) [][]Value {
	switch op {
	case sqlast.SetUnion, sqlast.SetUnionAll:
		return append(a, b...)
	case sqlast.SetIntersect:
		keys := map[string]bool{}
		for _, r := range b {
			keys[rowKey(r)] = true
		}
		var out [][]Value
		for _, r := range a {
			if keys[rowKey(r)] {
				out = append(out, r)
			}
		}
		return out
	case sqlast.SetExcept:
		keys := map[string]bool{}
		for _, r := range b {
			keys[rowKey(r)] = true
		}
		var out [][]Value
		for _, r := range a {
			if !keys[rowKey(r)] {
				out = append(out, r)
			}
		}
		return out
	}
	return a
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		k := rowKey(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// projected carries an output row together with the environment/group it was
// produced from, so ORDER BY can evaluate arbitrary expressions.
type projected struct {
	row   []Value
	env   *rowEnv
	group []*rowEnv
}

// execCore runs one SELECT arm (no set ops, no order/limit) and stashes the
// per-row evaluation context in the result for ORDER BY.
func (ex *Executor) execCore(sel *sqlast.SelectStmt, outer *rowEnv) (*Result, error) {
	projRows, cols, err := ex.project(sel, outer)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for _, p := range projRows {
		res.Rows = append(res.Rows, p.row)
	}
	ex.lastProjected = projRows
	return res, nil
}

func (ex *Executor) orderRows(sel *sqlast.SelectStmt, res *Result) error {
	projRows := ex.lastProjected
	if len(projRows) != len(res.Rows) {
		// Set operations changed the row set; order on output columns only.
		projRows = nil
	}
	type sortRow struct {
		row  []Value
		keys []Value
	}
	rows := make([]sortRow, len(res.Rows))
	for i, r := range res.Rows {
		rows[i].row = r
		rows[i].keys = make([]Value, len(sel.OrderBy))
		for k, ob := range sel.OrderBy {
			v, err := ex.orderKey(ob.Expr, sel, res, r, projRows, i)
			if err != nil {
				return err
			}
			rows[i].keys[k] = v
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, ob := range sel.OrderBy {
			c := Compare(rows[i].keys[k], rows[j].keys[k])
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	for i := range rows {
		res.Rows[i] = rows[i].row
	}
	return nil
}

// orderKey evaluates one ORDER BY key for row i.
func (ex *Executor) orderKey(e sqlast.Expr, sel *sqlast.SelectStmt, res *Result, row []Value, projRows []projected, i int) (Value, error) {
	// Ordinal: ORDER BY 2.
	if lit, ok := e.(*sqlast.Literal); ok && lit.Kind == sqlast.LitNumber {
		n, err := strconv.Atoi(lit.Text)
		if err == nil && n >= 1 && n <= len(row) {
			return row[n-1], nil
		}
	}
	// Output column / alias match.
	if cr, ok := e.(*sqlast.ColumnRef); ok && cr.Table == "" {
		for j, c := range res.Columns {
			if strings.EqualFold(c, cr.Column) {
				return row[j], nil
			}
		}
	}
	// Expression match against a select item (e.g. ORDER BY COUNT(*)).
	want := sqlast.PrintExpr(e)
	for j, it := range sel.Items {
		if it.Expr != nil && sqlast.PrintExpr(it.Expr) == want && j < len(row) {
			return row[j], nil
		}
	}
	// General expression over the source row/group.
	if projRows != nil && i < len(projRows) {
		p := projRows[i]
		var ctx *evalCtx
		if p.group != nil {
			ctx = &evalCtx{group: p.group}
		}
		return ex.eval(e, p.env, ctx)
	}
	return Value{}, fmt.Errorf("cannot resolve ORDER BY expression %s", want)
}

// project evaluates FROM/WHERE/GROUP BY/HAVING and the select list.
func (ex *Executor) project(sel *sqlast.SelectStmt, outer *rowEnv) ([]projected, []string, error) {
	envs, err := ex.fromRows(sel.From, outer)
	if err != nil {
		return nil, nil, err
	}
	if sel.Where != nil {
		kept := envs[:0]
		for _, env := range envs {
			ok, err := ex.evalBool(sel.Where, env, nil)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				kept = append(kept, env)
			}
		}
		envs = kept
	}

	aggregated := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregated {
		for _, it := range sel.Items {
			if it.Expr != nil && hasAggregate(it.Expr) {
				aggregated = true
				break
			}
		}
	}
	if !aggregated {
		for _, ob := range sel.OrderBy {
			if hasAggregate(ob.Expr) && len(sel.GroupBy) > 0 {
				aggregated = true
				break
			}
		}
	}

	cols := ex.outputColumns(sel, envs)

	var out []projected
	if aggregated {
		groups, reps, err := ex.groupRows(sel, envs)
		if err != nil {
			return nil, nil, err
		}
		for gi, group := range groups {
			ctx := &evalCtx{group: group}
			rep := reps[gi]
			if sel.Having != nil {
				ok, err := ex.evalBool(sel.Having, rep, ctx)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					continue
				}
			}
			row, err := ex.projectRow(sel, rep, ctx)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, projected{row: row, env: rep, group: group})
		}
	} else {
		for _, env := range envs {
			row, err := ex.projectRow(sel, env, nil)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, projected{row: row, env: env})
		}
	}

	if sel.Distinct {
		seen := map[string]bool{}
		kept := out[:0]
		for _, p := range out {
			k := rowKey(p.row)
			if seen[k] {
				continue
			}
			seen[k] = true
			kept = append(kept, p)
		}
		out = kept
	}
	return out, cols, nil
}

// groupRows partitions envs by the GROUP BY key. With no GROUP BY the whole
// input is a single group (global aggregation). Returns groups plus one
// representative env per group.
func (ex *Executor) groupRows(sel *sqlast.SelectStmt, envs []*rowEnv) ([][]*rowEnv, []*rowEnv, error) {
	if len(sel.GroupBy) == 0 {
		rep := &rowEnv{}
		if len(envs) > 0 {
			rep = envs[0]
		}
		return [][]*rowEnv{envs}, []*rowEnv{rep}, nil
	}
	index := map[string]int{}
	var groups [][]*rowEnv
	var reps []*rowEnv
	for _, env := range envs {
		var kb strings.Builder
		for _, g := range sel.GroupBy {
			v, err := ex.eval(g, env, nil)
			if err != nil {
				return nil, nil, err
			}
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, nil)
			reps = append(reps, env)
		}
		groups[gi] = append(groups[gi], env)
	}
	return groups, reps, nil
}

// projectRow evaluates the select list for one row/group.
func (ex *Executor) projectRow(sel *sqlast.SelectStmt, env *rowEnv, ctx *evalCtx) ([]Value, error) {
	var row []Value
	for _, it := range sel.Items {
		switch {
		case it.Star:
			for _, b := range env.bindings {
				row = append(row, b.vals...)
			}
		case it.TableStar != "":
			found := false
			for _, b := range env.bindings {
				if b.alias == strings.ToLower(it.TableStar) {
					row = append(row, b.vals...)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown table %q in %s.*", it.TableStar, it.TableStar)
			}
		default:
			v, err := ex.eval(it.Expr, env, ctx)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
	}
	return row, nil
}

// outputColumns derives the result header.
func (ex *Executor) outputColumns(sel *sqlast.SelectStmt, envs []*rowEnv) []string {
	var cols []string
	var sample *rowEnv
	if len(envs) > 0 {
		sample = envs[0]
	}
	for _, it := range sel.Items {
		switch {
		case it.Star:
			if sample != nil {
				for _, b := range sample.bindings {
					cols = append(cols, b.cols...)
				}
			} else if schema := ex.starColumns(sel); schema != nil {
				cols = append(cols, schema...)
			} else {
				cols = append(cols, "*")
			}
		case it.TableStar != "":
			added := false
			if sample != nil {
				for _, b := range sample.bindings {
					if b.alias == strings.ToLower(it.TableStar) {
						cols = append(cols, b.cols...)
						added = true
					}
				}
			}
			if !added {
				if t, ok := ex.db.Table(it.TableStar); ok {
					for _, c := range t.Columns {
						cols = append(cols, c.Name)
					}
				} else {
					cols = append(cols, it.TableStar+".*")
				}
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				cols = append(cols, cr.Column)
			} else {
				cols = append(cols, sqlast.PrintExpr(it.Expr))
			}
		}
	}
	return cols
}

// starColumns derives the SELECT * header from the catalog when the row set
// is empty (so headers stay stable regardless of data).
func (ex *Executor) starColumns(sel *sqlast.SelectStmt) []string {
	if sel.From == nil || sel.From.First.Name == "" {
		return nil
	}
	var cols []string
	add := func(name string) bool {
		t, ok := ex.db.Table(name)
		if !ok {
			return false
		}
		for _, c := range t.Columns {
			cols = append(cols, c.Name)
		}
		return true
	}
	if !add(sel.From.First.Name) {
		return nil
	}
	for _, j := range sel.From.Joins {
		if j.Source.Name == "" || !add(j.Source.Name) {
			return nil
		}
	}
	return cols
}
