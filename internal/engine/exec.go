package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"

	"fisql/internal/sqlast"
)

// Executor runs SELECT statements against one database. An Executor is not
// safe for concurrent use; they are cheap, so create one per goroutine.
type Executor struct {
	db *Database
	// maxRows caps base-table scans, subquery materialization and
	// intermediate join sizes to guard against accidental cartesian blowups
	// from generated queries.
	maxRows int
	// lastProjected holds the projection context of the most recent
	// execCore call, consumed immediately by orderRows.
	lastProjected []projected
	// plan, when set, supplies resolved column slots so eval can index
	// binding values directly instead of scanning names per row.
	plan *Plan
	// noHashJoin forces the nested-loop join path; see SetHashJoin.
	noHashJoin bool
	// noColumnar disables the vectorized columnar path; see SetColumnar.
	noColumnar bool
	// colMinRows gates aggregated columnar plans on table size; see
	// SetColumnarMinRows.
	colMinRows int
	// likePatterns memoizes lowercased LIKE patterns so the per-row match
	// does not re-lower the pattern for every candidate row.
	likePatterns map[string]string
}

// DefaultColumnarMinRows is the table size below which aggregated
// statements skip the vectorized path. Scan/filter shapes win at any size
// (the mask kernels have almost no setup), but grouped aggregation pays a
// fixed cost per query — group key extraction, typed fold setup — that a
// tiny table cannot amortize: a ~50-row GROUP BY runs ~15% slower
// vectorized. The crossover sits well under a few hundred rows on the
// benchmark corpora; aggregated plans under this floor take the row path.
const DefaultColumnarMinRows = 128

// NewExecutor returns an executor over db.
func NewExecutor(db *Database) *Executor {
	return &Executor{db: db, maxRows: 2_000_000, colMinRows: DefaultColumnarMinRows}
}

// SetHashJoin toggles the hash equi-join fast path (on by default). The
// nested-loop path is semantically identical; the knob exists so
// differential tests and benchmarks can pin one side.
func (ex *Executor) SetHashJoin(on bool) { ex.noHashJoin = !on }

// SetColumnar toggles the vectorized columnar path Run tries before the
// row-at-a-time executor (on by default). The columnar path is
// result-identical by construction — it bails back to the row path rather
// than diverge — so the knob exists for differential tests and paired
// benchmarks, like SetHashJoin.
func (ex *Executor) SetColumnar(on bool) { ex.noColumnar = !on }

// SetColumnarMinRows overrides DefaultColumnarMinRows for this executor.
// n <= 0 removes the floor: every qualified statement vectorizes, however
// small its tables — the setting differential and kernel tests pin so tiny
// fixtures still exercise the columnar aggregate path.
func (ex *Executor) SetColumnarMinRows(n int) { ex.colMinRows = n }

// Query parses, plans and executes a SELECT given as text. Use a shared
// Cache to amortize the parse+plan work across repeated queries.
func (ex *Executor) Query(sql string) (*Result, error) {
	p, err := Prepare(ex.db, sql)
	if err != nil {
		return nil, err
	}
	return ex.Run(p)
}

// Run executes a prepared plan. The plan must have been prepared against the
// executor's database.
func (ex *Executor) Run(p *Plan) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("nil plan")
	}
	if p.db != ex.db {
		return nil, fmt.Errorf("plan prepared against a different database")
	}
	prev := ex.plan
	ex.plan = p
	defer func() { ex.plan = prev }()
	if !ex.noColumnar {
		if res, ok := ex.runVec(p); ok {
			ex.db.colHits.Add(1)
			return res, nil
		}
		ex.db.colFallbacks.Add(1)
	}
	return ex.execSelect(p.Stmt, nil)
}

// Select executes a parsed SELECT without a planning pass: every column
// reference resolves through the dynamic per-row lookup. This is the
// reference interpreter the differential tests compare planned execution
// against; production paths should prefer Query/Run.
func (ex *Executor) Select(sel *sqlast.SelectStmt) (*Result, error) {
	return ex.execSelect(sel, nil)
}

// ----------------------------------------------------------------------------
// Row environments

// binding exposes one table source's columns under its alias.
type binding struct {
	alias string // lowercase alias or table name
	cols  []string
	vals  []Value
}

// rowEnv is the scope an expression evaluates in: the current row's
// bindings, chained to the enclosing query's scope for correlated
// subqueries.
type rowEnv struct {
	bindings []binding
	outer    *rowEnv
}

// lookup resolves a (possibly qualified) column reference.
func (env *rowEnv) lookup(table, col string) (Value, error) {
	for e := env; e != nil; e = e.outer {
		if table != "" {
			for _, b := range e.bindings {
				if b.alias == strings.ToLower(table) {
					for i, c := range b.cols {
						if strings.EqualFold(c, col) {
							return b.vals[i], nil
						}
					}
					return Value{}, fmt.Errorf("column %s.%s not found", table, col)
				}
			}
			continue // alias might belong to an outer scope
		}
		found := false
		var v Value
		for _, b := range e.bindings {
			for i, c := range b.cols {
				if strings.EqualFold(c, col) {
					if found {
						return Value{}, fmt.Errorf("ambiguous column %q", col)
					}
					found = true
					v = b.vals[i]
				}
			}
		}
		if found {
			return v, nil
		}
	}
	if table != "" {
		return Value{}, fmt.Errorf("unknown table or alias %q", table)
	}
	return Value{}, fmt.Errorf("unknown column %q", col)
}

// ----------------------------------------------------------------------------
// FROM evaluation

// sourceRows materializes one table source as a binding list per row. Scans
// and subquery materializations are capped at maxRows so a huge generated
// base table errors instead of exhausting memory downstream.
func (ex *Executor) sourceRows(ts sqlast.TableSource, outer *rowEnv) (alias string, cols []string, rows [][]Value, err error) {
	if ts.Sub != nil {
		res, err := ex.execSelect(ts.Sub, outer)
		if err != nil {
			return "", nil, nil, err
		}
		alias = strings.ToLower(ts.Alias)
		if alias == "" {
			alias = "subquery"
		}
		if len(res.Rows) > ex.maxRows {
			return "", nil, nil, fmt.Errorf("FROM subquery %q exceeds %d rows", alias, ex.maxRows)
		}
		return alias, res.Columns, res.Rows, nil
	}
	t, ok := ex.db.Table(ts.Name)
	if !ok {
		return "", nil, nil, fmt.Errorf("unknown table %q", ts.Name)
	}
	alias = strings.ToLower(ts.Alias)
	if alias == "" {
		alias = strings.ToLower(ts.Name)
	}
	if len(t.Rows) > ex.maxRows {
		return "", nil, nil, fmt.Errorf("table %q exceeds %d rows", ts.Name, ex.maxRows)
	}
	cols = make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	return alias, cols, t.Rows, nil
}

// fromRows evaluates the FROM clause into a slice of row environments.
func (ex *Executor) fromRows(from *sqlast.FromClause, outer *rowEnv) ([]*rowEnv, error) {
	if from == nil {
		return []*rowEnv{{outer: outer}}, nil
	}
	envs, err := ex.baseEnvs(from.First, outer)
	if err != nil {
		return nil, err
	}
	for i := range from.Joins {
		j := &from.Joins[i]
		jAlias, jCols, jRows, err := ex.sourceRows(j.Source, outer)
		if err != nil {
			return nil, err
		}
		envs, err = ex.joinRows(envs, j, jAlias, jCols, jRows, outer)
		if err != nil {
			return nil, err
		}
	}
	return envs, nil
}

// baseEnvs materializes the first FROM source into row environments. A
// base-table scan with no outer scope reuses the database's shared scan
// environments, so the per-query cost is one pointer-slice copy (the slice
// the WHERE filter compacts in place); everything else bulk-allocates the
// environments and their single-binding slices in three allocations.
// Downstream stages never append to an emitted env's bindings (joins copy
// into a fresh scratch), so the capped one-element slices are safe to share.
func (ex *Executor) baseEnvs(ts sqlast.TableSource, outer *rowEnv) ([]*rowEnv, error) {
	if ts.Sub == nil && outer == nil {
		if t, ok := ex.db.Table(ts.Name); ok {
			if len(t.Rows) > ex.maxRows {
				return nil, fmt.Errorf("table %q exceeds %d rows", ts.Name, ex.maxRows)
			}
			alias := strings.ToLower(ts.Alias)
			if alias == "" {
				alias = strings.ToLower(ts.Name)
			}
			shared := ex.db.scanEnvs(t, alias)
			envs := make([]*rowEnv, len(shared))
			copy(envs, shared)
			return envs, nil
		}
	}
	alias, cols, rows, err := ex.sourceRows(ts, outer)
	if err != nil {
		return nil, err
	}
	envs := make([]*rowEnv, len(rows))
	envStore := make([]rowEnv, len(rows))
	bindStore := make([]binding, len(rows))
	for i, r := range rows {
		bindStore[i] = binding{alias: alias, cols: cols, vals: r}
		envStore[i] = rowEnv{bindings: bindStore[i : i+1 : i+1], outer: outer}
		envs[i] = &envStore[i]
	}
	return envs, nil
}

// joinRows joins the accumulated left side against one new source,
// dispatching to the hash equi-join when the ON clause qualifies and the
// nested loop otherwise. Both paths emit rows in identical (left-major,
// right-source) order, so downstream LIMIT-without-ORDER-BY results and the
// maxRows error point are the same either way.
func (ex *Executor) joinRows(envs []*rowEnv, j *sqlast.Join, jAlias string, jCols []string, jRows [][]Value, outer *rowEnv) ([]*rowEnv, error) {
	if !ex.noHashJoin {
		if spec, ok := ex.equiJoinSpec(envs, j, jAlias, jCols, jRows); ok {
			joined, done, err := ex.hashJoin(envs, j, jAlias, jCols, jRows, outer, spec)
			if err != nil {
				return nil, err
			}
			if done {
				return joined, nil
			}
		}
	}
	return ex.nestedJoin(envs, j, jAlias, jCols, jRows, outer)
}

// envArena snapshots scratch environments for emitted join rows, handing
// out rowEnv structs and binding slices from 256-entry blocks so a join
// emitting k rows costs ~2k/256 heap allocations instead of 2k. The binding
// structs are copied (column-name and value slices stay shared), and the
// carved slices are capacity-capped, so emitted environments are as
// isolated as individually allocated clones.
type envArena struct {
	envs  []rowEnv
	binds []binding
}

func (a *envArena) clone(src *rowEnv) *rowEnv {
	if len(a.envs) == 0 {
		a.envs = make([]rowEnv, 256)
	}
	e := &a.envs[0]
	a.envs = a.envs[1:]
	need := len(src.bindings)
	if len(a.binds) < need {
		a.binds = make([]binding, 256*need)
	}
	b := a.binds[:need:need]
	a.binds = a.binds[need:]
	copy(b, src.bindings)
	e.bindings = b
	e.outer = src.outer
	return e
}

// nestedJoin is the O(n·m) join: every (left, right) pair is materialized
// into a reusable scratch environment and tested against the ON clause; the
// scratch is cloned only for pairs that survive.
func (ex *Executor) nestedJoin(envs []*rowEnv, j *sqlast.Join, jAlias string, jCols []string, jRows [][]Value, outer *rowEnv) ([]*rowEnv, error) {
	joined := make([]*rowEnv, 0, len(envs))
	var nulls []Value
	if j.Type == sqlast.JoinLeft {
		nulls = make([]Value, len(jCols))
		for i := range nulls {
			nulls[i] = Null()
		}
	}
	scratch := &rowEnv{outer: outer}
	var arena envArena
	for _, left := range envs {
		nb := len(left.bindings)
		if cap(scratch.bindings) < nb+1 {
			scratch.bindings = make([]binding, nb+1)
		}
		scratch.bindings = scratch.bindings[:nb+1]
		copy(scratch.bindings, left.bindings)
		scratch.bindings[nb] = binding{alias: jAlias, cols: jCols}
		matched := false
		for _, r := range jRows {
			scratch.bindings[nb].vals = r
			if j.On != nil {
				ok, err := ex.evalBool(j.On, scratch, nil)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			matched = true
			joined = append(joined, arena.clone(scratch))
			if len(joined) > ex.maxRows {
				return nil, fmt.Errorf("join result exceeds %d rows", ex.maxRows)
			}
		}
		if !matched && j.Type == sqlast.JoinLeft {
			scratch.bindings[nb].vals = nulls
			joined = append(joined, arena.clone(scratch))
		}
	}
	return joined, nil
}

// ----------------------------------------------------------------------------
// Hash equi-join
//
// The fast path replaces the nested loop when the ON clause is a conjunction
// in which (a) one equality compares a column of the accumulated left side
// with a column of the newly joined source, (b) every conjunct is free of
// runtime errors by construction (so skipping its evaluation for pairs the
// hash table filters out cannot suppress an error the nested loop would
// raise), and (c) the key columns' non-NULL values are all numeric or all
// text on both sides. Condition (c) matters because Compare's equality is
// not transitive across types — Text("5") equals Int(5) and Bool(true)
// equals both Int(1) and Text("true") — so a string hash key is only
// faithful on a homogeneous domain: numbers hash by their float64 rendering
// (Compare treats int/float numerically) and text hashes by the exact string
// (case-insensitive compare plus exact tiebreak makes text equality exact
// string equality). Anything else bails to the nested loop.

// equiJoinSpec describes one hashable equality conjunct of a JOIN ON plus
// the remaining (residual) conjuncts evaluated per candidate pair.
type equiJoinSpec struct {
	leftBinding int // key column on the accumulated left side...
	leftCol     int
	rightCol    int  // ...equated with this column of the new source
	numeric     bool // key domain: numeric (int/float) vs text
	residual    []sqlast.Expr
}

// splitAnd flattens a conjunction into its top-level conjuncts.
func splitAnd(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sqlast.Expr{e}
}

// resolveJoinRef resolves a column reference against the join's two sides
// using the same rules as rowEnv.lookup (first alias match wins; bare names
// must be unambiguous). ok=false means the reference is unknown, ambiguous,
// or belongs to an outer scope — all reasons to keep the nested loop.
func resolveJoinRef(left []binding, rightAlias string, rightCols []string, table, col string) (onRight bool, bindIdx, colIdx int, ok bool) {
	if table != "" {
		want := strings.ToLower(table)
		for bi := range left {
			if left[bi].alias != want {
				continue
			}
			for ci, cn := range left[bi].cols {
				if strings.EqualFold(cn, col) {
					return false, bi, ci, true
				}
			}
			return false, 0, 0, false // first alias match lacks the column
		}
		if rightAlias == want {
			for ci, cn := range rightCols {
				if strings.EqualFold(cn, col) {
					return true, 0, ci, true
				}
			}
		}
		return false, 0, 0, false
	}
	count := 0
	for bi := range left {
		for ci, cn := range left[bi].cols {
			if strings.EqualFold(cn, col) {
				count++
				if count == 1 {
					onRight, bindIdx, colIdx = false, bi, ci
				}
			}
		}
	}
	for ci, cn := range rightCols {
		if strings.EqualFold(cn, col) {
			count++
			if count == 1 {
				onRight, colIdx = true, ci
			}
		}
	}
	if count != 1 {
		return false, 0, 0, false
	}
	return onRight, bindIdx, colIdx, true
}

// joinOperandSafe reports whether e evaluates without any possibility of
// error for every candidate join row: a resolvable column reference or a
// literal whose text parses.
func joinOperandSafe(e sqlast.Expr, left []binding, rightAlias string, rightCols []string) bool {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		_, _, _, ok := resolveJoinRef(left, rightAlias, rightCols, x.Table, x.Column)
		return ok
	case *sqlast.Literal:
		if x.Kind != sqlast.LitNumber {
			return true
		}
		// Number literals are re-parsed at eval time and can fail there.
		var err error
		if strings.Contains(x.Text, ".") {
			_, err = strconv.ParseFloat(x.Text, 64)
		} else {
			_, err = strconv.ParseInt(x.Text, 10, 64)
		}
		return err == nil
	}
	return false
}

// joinConjunctSafe restricts residual conjuncts to comparisons and IS NULL
// checks over safe operands — forms whose evaluation cannot error, so the
// hash path skipping them for non-matching pairs is unobservable.
func joinConjunctSafe(e sqlast.Expr, left []binding, rightAlias string, rightCols []string) bool {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case sqlast.OpEq, sqlast.OpNeq, sqlast.OpLt, sqlast.OpLte, sqlast.OpGt, sqlast.OpGte:
			return joinOperandSafe(x.L, left, rightAlias, rightCols) &&
				joinOperandSafe(x.R, left, rightAlias, rightCols)
		}
		return false
	case *sqlast.IsNullExpr:
		return joinOperandSafe(x.X, left, rightAlias, rightCols)
	}
	return false
}

// equiJoinSpec extracts a hashable equality from the ON clause, or reports
// that this join must run as a nested loop.
func (ex *Executor) equiJoinSpec(envs []*rowEnv, j *sqlast.Join, jAlias string, jCols []string, jRows [][]Value) (*equiJoinSpec, bool) {
	if j.On == nil || len(envs) == 0 {
		return nil, false
	}
	left := envs[0].bindings // all envs share the same binding structure
	conjs := splitAnd(j.On)
	for _, c := range conjs {
		if !joinConjunctSafe(c, left, jAlias, jCols) {
			return nil, false
		}
	}
	spec := &equiJoinSpec{}
	keyIdx := -1
	for i, c := range conjs {
		b, ok := c.(*sqlast.Binary)
		if !ok || b.Op != sqlast.OpEq {
			continue
		}
		lref, lok := b.L.(*sqlast.ColumnRef)
		rref, rok := b.R.(*sqlast.ColumnRef)
		if !lok || !rok {
			continue
		}
		lRight, lb, lc, ok1 := resolveJoinRef(left, jAlias, jCols, lref.Table, lref.Column)
		rRight, rb, rc, ok2 := resolveJoinRef(left, jAlias, jCols, rref.Table, rref.Column)
		if !ok1 || !ok2 || lRight == rRight {
			continue // both operands on the same side: not a cross-side key
		}
		if lRight {
			spec.leftBinding, spec.leftCol, spec.rightCol = rb, rc, lc
		} else {
			spec.leftBinding, spec.leftCol, spec.rightCol = lb, lc, rc
		}
		keyIdx = i
		break
	}
	if keyIdx < 0 {
		return nil, false
	}
	spec.residual = append(conjs[:keyIdx:keyIdx], conjs[keyIdx+1:]...)

	// Verify the key domain is homogeneous (all numeric or all text across
	// both sides' non-NULL values); Bool or a mixed domain bails out.
	const (
		domNone = iota
		domNum
		domText
	)
	dom := domNone
	classify := func(v Value) bool {
		switch v.T {
		case TypeNull:
			return true
		case TypeInt, TypeFloat:
			if dom == domText {
				return false
			}
			dom = domNum
			return true
		case TypeText:
			if dom == domNum {
				return false
			}
			dom = domText
			return true
		}
		return false // TypeBool equates with both numbers and text
	}
	for _, le := range envs {
		if !classify(le.bindings[spec.leftBinding].vals[spec.leftCol]) {
			return nil, false
		}
	}
	for _, r := range jRows {
		if !classify(r[spec.rightCol]) {
			return nil, false
		}
	}
	spec.numeric = dom == domNum
	return spec, true
}

// joinKey is a typed hash-join key. On a homogeneous numeric domain two
// values Compare-equal exactly when their float64 renderings are equal, so
// the key is the float's bit pattern (-0.0 folded into 0 so the two zeros
// collide); on a text domain equality is exact string equality, so the key
// is the raw string. A typed key avoids the strconv.FormatFloat allocation
// the previous string key paid per probe/build row.
type joinKey struct {
	f uint64
	s string
}

// makeJoinKey builds the hash key for one value. Numeric keys collapse
// int/float the way Compare does.
func makeJoinKey(v Value, numeric bool) joinKey {
	if numeric {
		f, _ := v.AsFloat()
		if f == 0 {
			f = 0
		}
		return joinKey{f: math.Float64bits(f)}
	}
	return joinKey{s: v.S}
}

// hashJoin executes the join described by spec, building a hash table on the
// smaller side. Emission order is left-major regardless of build side: when
// the left side is the build side, right-row matches are accumulated per
// left row first. done=false (with nil error) means the accumulation grew
// past maxRows and the caller should fall back to the nested loop, which
// owns the exact error-point semantics for pathological joins.
func (ex *Executor) hashJoin(envs []*rowEnv, j *sqlast.Join, jAlias string, jCols []string, jRows [][]Value, outer *rowEnv, spec *equiJoinSpec) ([]*rowEnv, bool, error) {
	leftKey := func(le *rowEnv) Value { return le.bindings[spec.leftBinding].vals[spec.leftCol] }

	// probe yields the candidate right-row indices for one left row, in
	// right-source order. NULL keys never match (Compare-equality with NULL
	// is unknown), so they are skipped on both sides.
	var probe func(li int, le *rowEnv) []int
	if len(jRows) <= len(envs) {
		ht := make(map[joinKey][]int, len(jRows))
		for ri, r := range jRows {
			v := r[spec.rightCol]
			if v.IsNull() {
				continue
			}
			k := makeJoinKey(v, spec.numeric)
			ht[k] = append(ht[k], ri)
		}
		probe = func(_ int, le *rowEnv) []int {
			v := leftKey(le)
			if v.IsNull() {
				return nil
			}
			return ht[makeJoinKey(v, spec.numeric)]
		}
	} else {
		ht := make(map[joinKey][]int, len(envs))
		for li, le := range envs {
			v := leftKey(le)
			if v.IsNull() {
				continue
			}
			k := makeJoinKey(v, spec.numeric)
			ht[k] = append(ht[k], li)
		}
		lists := make([][]int, len(envs))
		total := 0
		for ri, r := range jRows {
			v := r[spec.rightCol]
			if v.IsNull() {
				continue
			}
			for _, li := range ht[makeJoinKey(v, spec.numeric)] {
				lists[li] = append(lists[li], ri)
				total++
				if total > ex.maxRows {
					return nil, false, nil
				}
			}
		}
		probe = func(li int, _ *rowEnv) []int { return lists[li] }
	}

	joined := make([]*rowEnv, 0, len(envs))
	var nulls []Value
	if j.Type == sqlast.JoinLeft {
		nulls = make([]Value, len(jCols))
		for i := range nulls {
			nulls[i] = Null()
		}
	}
	scratch := &rowEnv{outer: outer}
	var arena envArena
	for li, left := range envs {
		nb := len(left.bindings)
		if cap(scratch.bindings) < nb+1 {
			scratch.bindings = make([]binding, nb+1)
		}
		scratch.bindings = scratch.bindings[:nb+1]
		copy(scratch.bindings, left.bindings)
		scratch.bindings[nb] = binding{alias: jAlias, cols: jCols}
		matched := false
		for _, ri := range probe(li, left) {
			scratch.bindings[nb].vals = jRows[ri]
			pass := true
			for _, c := range spec.residual {
				ok, err := ex.evalBool(c, scratch, nil)
				if err != nil {
					return nil, false, err
				}
				if !ok {
					pass = false
					break
				}
			}
			if !pass {
				continue
			}
			matched = true
			joined = append(joined, arena.clone(scratch))
			if len(joined) > ex.maxRows {
				return nil, false, fmt.Errorf("join result exceeds %d rows", ex.maxRows)
			}
		}
		if !matched && j.Type == sqlast.JoinLeft {
			scratch.bindings[nb].vals = nulls
			joined = append(joined, arena.clone(scratch))
		}
	}
	return joined, true, nil
}

// ----------------------------------------------------------------------------
// Expression evaluation

// evalCtx carries the optional aggregate group: when non-nil, aggregate
// function calls evaluate over these rows instead of erroring.
type evalCtx struct {
	group []*rowEnv
	// aggVals, when non-nil, supplies precomputed per-group aggregate values
	// keyed by call node. The vectorized path folds aggregates over column
	// arrays instead of row environments and injects the results here, so
	// scalar evaluation of HAVING/items/ORDER BY stays the row path's own
	// code. Nodes absent from the map fall through to the group fold.
	aggVals map[*sqlast.FuncCall]Value
}

func (ex *Executor) evalBool(e sqlast.Expr, env *rowEnv, ctx *evalCtx) (bool, error) {
	v, err := ex.eval(e, env, ctx)
	if err != nil {
		return false, err
	}
	return v.Truthy(), nil
}

func (ex *Executor) eval(e sqlast.Expr, env *rowEnv, ctx *evalCtx) (Value, error) {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		// Planned references read their value by slot index; anything the
		// planner left unresolved (or an env shape the slot does not fit,
		// e.g. the empty representative env of a global aggregation over no
		// rows) falls back to the dynamic name scan, which raises the
		// interpreter's errors at the interpreter's moments.
		if ex.plan != nil {
			if slot, ok := ex.plan.cols[x]; ok {
				e := env
				for d := 0; d < slot.depth && e != nil; d++ {
					e = e.outer
				}
				if e != nil && slot.binding < len(e.bindings) {
					b := &e.bindings[slot.binding]
					if slot.col < len(b.vals) {
						return b.vals[slot.col], nil
					}
				}
			}
		}
		return env.lookup(x.Table, x.Column)
	case *sqlast.Literal:
		switch x.Kind {
		case sqlast.LitNull:
			return Null(), nil
		case sqlast.LitBool:
			return Bool(x.Text == "TRUE"), nil
		case sqlast.LitString:
			return Text(x.Text), nil
		case sqlast.LitNumber:
			if strings.Contains(x.Text, ".") {
				f, err := strconv.ParseFloat(x.Text, 64)
				if err != nil {
					return Value{}, fmt.Errorf("bad number %q", x.Text)
				}
				return Float(f), nil
			}
			i, err := strconv.ParseInt(x.Text, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("bad number %q", x.Text)
			}
			return Int(i), nil
		}
		return Value{}, fmt.Errorf("bad literal kind %d", x.Kind)
	case *sqlast.Binary:
		return ex.evalBinary(x, env, ctx)
	case *sqlast.Unary:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case sqlast.OpNot:
			if v.IsNull() {
				return Null(), nil
			}
			return Bool(!v.Truthy()), nil
		case sqlast.OpNeg:
			switch v.T {
			case TypeInt:
				return Int(-v.I), nil
			case TypeFloat:
				return Float(-v.F), nil
			case TypeNull:
				return Null(), nil
			}
			return Value{}, fmt.Errorf("cannot negate %s", v.T)
		}
		return Value{}, fmt.Errorf("bad unary op %d", x.Op)
	case *sqlast.FuncCall:
		return ex.evalFunc(x, env, ctx)
	case *sqlast.InExpr:
		return ex.evalIn(x, env, ctx)
	case *sqlast.BetweenExpr:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		lo, err := ex.eval(x.Lo, env, ctx)
		if err != nil {
			return Value{}, err
		}
		hi, err := ex.eval(x.Hi, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return Null(), nil
		}
		in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
		if x.Not {
			in = !in
		}
		return Bool(in), nil
	case *sqlast.LikeExpr:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		pat, err := ex.eval(x.Pattern, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() || pat.IsNull() {
			return Null(), nil
		}
		m := ex.like(v.String(), pat.String())
		if x.Not {
			m = !m
		}
		return Bool(m), nil
	case *sqlast.IsNullExpr:
		v, err := ex.eval(x.X, env, ctx)
		if err != nil {
			return Value{}, err
		}
		isNull := v.IsNull()
		if x.Not {
			isNull = !isNull
		}
		return Bool(isNull), nil
	case *sqlast.ExistsExpr:
		res, err := ex.execSelect(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		exists := len(res.Rows) > 0
		if x.Not {
			exists = !exists
		}
		return Bool(exists), nil
	case *sqlast.SubqueryExpr:
		res, err := ex.execSelect(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		if len(res.Rows) == 0 {
			return Null(), nil
		}
		if len(res.Columns) != 1 {
			return Value{}, fmt.Errorf("scalar subquery returned %d columns", len(res.Columns))
		}
		if len(res.Rows) > 1 {
			return Value{}, fmt.Errorf("scalar subquery returned %d rows", len(res.Rows))
		}
		return res.Rows[0][0], nil
	case *sqlast.CaseExpr:
		for _, w := range x.Whens {
			ok, err := ex.evalBool(w.When, env, ctx)
			if err != nil {
				return Value{}, err
			}
			if ok {
				return ex.eval(w.Then, env, ctx)
			}
		}
		if x.Else != nil {
			return ex.eval(x.Else, env, ctx)
		}
		return Null(), nil
	}
	return Value{}, fmt.Errorf("unsupported expression %T", e)
}

func (ex *Executor) evalBinary(x *sqlast.Binary, env *rowEnv, ctx *evalCtx) (Value, error) {
	// AND/OR get three-valued logic with short-circuiting.
	if x.Op == sqlast.OpAnd || x.Op == sqlast.OpOr {
		l, err := ex.eval(x.L, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if x.Op == sqlast.OpAnd && !l.IsNull() && !l.Truthy() {
			return Bool(false), nil
		}
		if x.Op == sqlast.OpOr && !l.IsNull() && l.Truthy() {
			return Bool(true), nil
		}
		r, err := ex.eval(x.R, env, ctx)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			// a AND NULL is NULL unless a is false (handled above);
			// a OR NULL is NULL unless a is true (handled above).
			if x.Op == sqlast.OpAnd && !r.IsNull() && !r.Truthy() {
				return Bool(false), nil
			}
			if x.Op == sqlast.OpOr && !r.IsNull() && r.Truthy() {
				return Bool(true), nil
			}
			return Null(), nil
		}
		if x.Op == sqlast.OpAnd {
			return Bool(l.Truthy() && r.Truthy()), nil
		}
		return Bool(l.Truthy() || r.Truthy()), nil
	}
	l, err := ex.eval(x.L, env, ctx)
	if err != nil {
		return Value{}, err
	}
	r, err := ex.eval(x.R, env, ctx)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case sqlast.OpEq, sqlast.OpNeq, sqlast.OpLt, sqlast.OpLte, sqlast.OpGt, sqlast.OpGte:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		c := Compare(l, r)
		switch x.Op {
		case sqlast.OpEq:
			return Bool(c == 0), nil
		case sqlast.OpNeq:
			return Bool(c != 0), nil
		case sqlast.OpLt:
			return Bool(c < 0), nil
		case sqlast.OpLte:
			return Bool(c <= 0), nil
		case sqlast.OpGt:
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case sqlast.OpAdd, sqlast.OpSub, sqlast.OpMul, sqlast.OpDiv, sqlast.OpMod:
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Value{}, fmt.Errorf("arithmetic on non-numeric values %s, %s", l.T, r.T)
		}
		bothInt := l.T == TypeInt && r.T == TypeInt
		switch x.Op {
		case sqlast.OpAdd:
			if bothInt {
				return Int(l.I + r.I), nil
			}
			return Float(lf + rf), nil
		case sqlast.OpSub:
			if bothInt {
				return Int(l.I - r.I), nil
			}
			return Float(lf - rf), nil
		case sqlast.OpMul:
			if bothInt {
				return Int(l.I * r.I), nil
			}
			return Float(lf * rf), nil
		case sqlast.OpDiv:
			if rf == 0 {
				return Null(), nil
			}
			return Float(lf / rf), nil
		default: // OpMod
			if !bothInt || r.I == 0 {
				return Null(), nil
			}
			return Int(l.I % r.I), nil
		}
	}
	return Value{}, fmt.Errorf("bad binary op %d", x.Op)
}

func (ex *Executor) evalIn(x *sqlast.InExpr, env *rowEnv, ctx *evalCtx) (Value, error) {
	v, err := ex.eval(x.X, env, ctx)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	var candidates []Value
	if x.Sub != nil {
		res, err := ex.execSelect(x.Sub, env)
		if err != nil {
			return Value{}, err
		}
		if len(res.Columns) != 1 {
			return Value{}, fmt.Errorf("IN subquery returned %d columns", len(res.Columns))
		}
		candidates = make([]Value, 0, len(res.Rows))
		for _, row := range res.Rows {
			candidates = append(candidates, row[0])
		}
	} else {
		candidates = make([]Value, 0, len(x.List))
		for _, le := range x.List {
			c, err := ex.eval(le, env, ctx)
			if err != nil {
				return Value{}, err
			}
			candidates = append(candidates, c)
		}
	}
	sawNull := false
	for _, c := range candidates {
		eq, known := Equal(v, c)
		if !known {
			sawNull = true
			continue
		}
		if eq {
			return Bool(!x.Not), nil
		}
	}
	if sawNull {
		return Null(), nil
	}
	return Bool(x.Not), nil
}

// like matches s against a LIKE pattern, memoizing the lowered pattern so a
// WHERE ... LIKE 'literal' lowers the pattern once per query, not per row.
func (ex *Executor) like(s, pattern string) bool {
	lp, ok := ex.likePatterns[pattern]
	if !ok {
		if ex.likePatterns == nil || len(ex.likePatterns) >= 256 {
			ex.likePatterns = make(map[string]string)
		}
		lp = strings.ToLower(pattern)
		ex.likePatterns[pattern] = lp
	}
	return likeMatchLower(strings.ToLower(s), lp)
}

// likeMatch implements SQL LIKE with % and _ wildcards, case-insensitively.
func likeMatch(s, pattern string) bool {
	return likeMatchLower(strings.ToLower(s), strings.ToLower(pattern))
}

// likeMatchLower is an iterative two-pointer matcher over pre-lowered
// inputs: O(len(s)·len(p)) worst case. On a mismatch it backtracks to the
// most recent '%' and retries with that wildcard consuming one more
// character, instead of the exponential recursion a naive matcher does on
// patterns like %a%a%a%...
//
// Wildcards are defined over characters, not bytes: '_' must consume one
// full rune ('é' LIKE '_' is true) and '%' backtracking must advance by
// whole runes, never splitting a UTF-8 sequence. Pure-ASCII inputs — the
// overwhelmingly common case — take a byte-wise fast path with no
// allocation; anything multi-byte falls back to a rune-wise run of the
// same algorithm.
func likeMatchLower(s, p string) bool {
	if isASCII(s) && isASCII(p) {
		si, pi := 0, 0
		starP, starS := -1, 0
		for si < len(s) {
			if pi < len(p) && (p[pi] == '_' || p[pi] == s[si]) {
				si++
				pi++
			} else if pi < len(p) && p[pi] == '%' {
				starP, starS = pi, si
				pi++
			} else if starP >= 0 {
				starS++
				si, pi = starS, starP+1
			} else {
				return false
			}
		}
		for pi < len(p) && p[pi] == '%' {
			pi++
		}
		return pi == len(p)
	}
	return likeMatchRunes([]rune(s), []rune(p))
}

// likeMatchRunes is the rune-wise twin of the ASCII loop above.
func likeMatchRunes(s, p []rune) bool {
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		if pi < len(p) && (p[pi] == '_' || p[pi] == s[si]) {
			si++
			pi++
		} else if pi < len(p) && p[pi] == '%' {
			starP, starS = pi, si
			pi++
		} else if starP >= 0 {
			starS++
			si, pi = starS, starP+1
		} else {
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// ----------------------------------------------------------------------------
// Aggregates

func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// hasAggregate reports whether e contains an aggregate call outside
// subqueries.
func hasAggregate(e sqlast.Expr) bool {
	found := false
	sqlast.Walk(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.FuncCall:
			if isAggregateName(x.Name) {
				found = true
				return false
			}
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			return false // do not descend into subqueries
		case *sqlast.InExpr:
			if x.Sub != nil {
				sqlast.Walk(x.X, func(m sqlast.Expr) bool {
					if fc, ok := m.(*sqlast.FuncCall); ok && isAggregateName(fc.Name) {
						found = true
						return false
					}
					return true
				})
				return false
			}
		}
		return true
	})
	return found
}

func (ex *Executor) evalFunc(x *sqlast.FuncCall, env *rowEnv, ctx *evalCtx) (Value, error) {
	if isAggregateName(x.Name) {
		if ctx != nil && ctx.aggVals != nil {
			if v, ok := ctx.aggVals[x]; ok {
				return v, nil
			}
		}
		if ctx == nil || ctx.group == nil {
			return Value{}, fmt.Errorf("aggregate %s used outside aggregation context", x.Name)
		}
		return ex.evalAggregate(x, ctx.group)
	}
	// Scalar functions.
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a, env, ctx)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch x.Name {
	case "LENGTH":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("LENGTH takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(args[0].String()))), nil
	case "LOWER":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("LOWER takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(args[0].String())), nil
	case "UPPER":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("UPPER takes 1 argument")
		}
		if args[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(args[0].String())), nil
	case "ABS":
		if len(args) != 1 {
			return Value{}, fmt.Errorf("ABS takes 1 argument")
		}
		switch args[0].T {
		case TypeNull:
			return Null(), nil
		case TypeInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case TypeFloat:
			if args[0].F < 0 {
				return Float(-args[0].F), nil
			}
			return args[0], nil
		}
		return Value{}, fmt.Errorf("ABS of non-numeric value")
	}
	return Value{}, fmt.Errorf("unknown function %q", x.Name)
}

func (ex *Executor) evalAggregate(x *sqlast.FuncCall, group []*rowEnv) (Value, error) {
	// COUNT(*) counts rows; everything else evaluates the argument per row
	// and skips NULLs.
	if x.Star {
		if x.Name != "COUNT" {
			return Value{}, fmt.Errorf("%s(*) is not valid", x.Name)
		}
		return Int(int64(len(group))), nil
	}
	if len(x.Args) != 1 {
		return Value{}, fmt.Errorf("%s takes 1 argument", x.Name)
	}
	// One streaming pass: the argument is evaluated for every row (so
	// argument-evaluation errors surface exactly as before) and folded into
	// the running aggregate without materializing a value slice. The
	// SUM/AVG non-numeric error is deferred until after the loop because
	// the two-pass version it replaces reported evaluation errors from
	// later rows ahead of it.
	var seen map[string]bool
	var kb []byte
	n := 0
	sum := 0.0
	allInt := true
	badNumeric := false
	var best Value
	for _, env := range group {
		v, err := ex.eval(x.Args[0], env, nil)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			if seen == nil {
				seen = map[string]bool{}
			}
			kb = v.appendKey(kb[:0])
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
		}
		n++
		switch x.Name {
		case "SUM", "AVG":
			f, ok := v.AsFloat()
			if !ok {
				badNumeric = true
				continue
			}
			if v.T != TypeInt {
				allInt = false
			}
			if !badNumeric {
				sum += f
			}
		case "MIN", "MAX":
			if n == 1 {
				best = v
			} else if c := Compare(v, best); (x.Name == "MIN" && c < 0) || (x.Name == "MAX" && c > 0) {
				best = v
			}
		}
	}
	switch x.Name {
	case "COUNT":
		return Int(int64(n)), nil
	case "SUM", "AVG":
		if badNumeric {
			return Value{}, fmt.Errorf("%s of non-numeric value", x.Name)
		}
		if n == 0 {
			return Null(), nil
		}
		if x.Name == "AVG" {
			return Float(sum / float64(n)), nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if n == 0 {
			return Null(), nil
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("unknown aggregate %q", x.Name)
}

// ----------------------------------------------------------------------------
// SELECT execution

func (ex *Executor) execSelect(sel *sqlast.SelectStmt, outer *rowEnv) (*Result, error) {
	res, err := ex.execCore(sel, outer)
	if err != nil {
		return nil, err
	}
	// Set operations combine projected row sets.
	for c := sel.Compound; c != nil; {
		right, err := ex.execCore(c.Right, outer)
		if err != nil {
			return nil, err
		}
		if len(right.Columns) != len(res.Columns) {
			return nil, fmt.Errorf("%s arms have %d vs %d columns", c.Op, len(res.Columns), len(right.Columns))
		}
		res.Rows = combineSetOp(c.Op, res.Rows, right.Rows)
		c = c.Right.Compound
	}
	if sel.Compound != nil {
		switch sel.Compound.Op {
		case sqlast.SetUnion, sqlast.SetIntersect, sqlast.SetExcept:
			res.Rows = dedupeRows(res.Rows)
		}
	}
	// ORDER BY over the final projected rows.
	if len(sel.OrderBy) > 0 {
		if err := ex.orderRows(sel, res); err != nil {
			return nil, err
		}
		res.Ordered = true
	}
	// LIMIT / OFFSET.
	if sel.Limit != nil {
		lim, err := ex.eval(sel.Limit, &rowEnv{outer: outer}, nil)
		if err != nil {
			return nil, err
		}
		off := int64(0)
		if sel.Offset != nil {
			ov, err := ex.eval(sel.Offset, &rowEnv{outer: outer}, nil)
			if err != nil {
				return nil, err
			}
			off = ov.I
		}
		n, _ := lim.AsFloat()
		limit := int(n)
		start := int(off)
		if start > len(res.Rows) {
			start = len(res.Rows)
		}
		end := start + limit
		if limit < 0 || end > len(res.Rows) {
			end = len(res.Rows)
		}
		res.Rows = res.Rows[start:end]
	}
	return res, nil
}

func combineSetOp(op sqlast.SetOp, a, b [][]Value) [][]Value {
	switch op {
	case sqlast.SetUnion, sqlast.SetUnionAll:
		return append(a, b...)
	case sqlast.SetIntersect:
		keys := map[string]bool{}
		var kb []byte
		for _, r := range b {
			keys[rowKey(r)] = true
		}
		var out [][]Value
		for _, r := range a {
			kb = rowKeyAppend(kb[:0], r)
			if keys[string(kb)] {
				out = append(out, r)
			}
		}
		return out
	case sqlast.SetExcept:
		keys := map[string]bool{}
		var kb []byte
		for _, r := range b {
			keys[rowKey(r)] = true
		}
		var out [][]Value
		for _, r := range a {
			kb = rowKeyAppend(kb[:0], r)
			if !keys[string(kb)] {
				out = append(out, r)
			}
		}
		return out
	}
	return a
}

func dedupeRows(rows [][]Value) [][]Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	var kb []byte
	for _, r := range rows {
		kb = rowKeyAppend(kb[:0], r)
		if seen[string(kb)] {
			continue
		}
		seen[string(kb)] = true
		out = append(out, r)
	}
	return out
}

// projected carries an output row together with the environment/context it
// was produced from, so ORDER BY can evaluate arbitrary expressions.
type projected struct {
	row []Value
	env *rowEnv
	ctx *evalCtx // aggregate context; nil for non-aggregated rows
}

// execCore runs one SELECT arm (no set ops, no order/limit) and stashes the
// per-row evaluation context in the result for ORDER BY.
func (ex *Executor) execCore(sel *sqlast.SelectStmt, outer *rowEnv) (*Result, error) {
	projRows, cols, err := ex.project(sel, outer)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: cols}
	for _, p := range projRows {
		res.Rows = append(res.Rows, p.row)
	}
	ex.lastProjected = projRows
	return res, nil
}

func (ex *Executor) orderRows(sel *sqlast.SelectStmt, res *Result) error {
	projRows := ex.lastProjected
	if len(projRows) != len(res.Rows) {
		// Set operations changed the row set; order on output columns only.
		projRows = nil
	}
	// Hoist the row-independent work out of the per-row loop: the parsed
	// ordinal, the bare-column form, and the printed expressions compared
	// against printed select items are the same for every row.
	specs := make([]orderSpec, len(sel.OrderBy))
	for k, ob := range sel.OrderBy {
		specs[k] = orderSpec{expr: ob.Expr, want: sqlast.PrintExpr(ob.Expr)}
		if lit, ok := ob.Expr.(*sqlast.Literal); ok && lit.Kind == sqlast.LitNumber {
			if n, err := strconv.Atoi(lit.Text); err == nil {
				specs[k].ord, specs[k].hasOrd = n, true
			}
		}
		if cr, ok := ob.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			specs[k].cr = cr
		}
	}
	itemPrints := make([]string, len(sel.Items))
	for j, it := range sel.Items {
		if it.Expr != nil {
			itemPrints[j] = sqlast.PrintExpr(it.Expr)
		}
	}
	type sortRow struct {
		row  []Value
		keys []Value
	}
	rows := make([]sortRow, len(res.Rows))
	keyStore := make([]Value, len(res.Rows)*len(sel.OrderBy))
	for i, r := range res.Rows {
		rows[i].row = r
		rows[i].keys = keyStore[i*len(sel.OrderBy) : (i+1)*len(sel.OrderBy)]
		for k := range sel.OrderBy {
			v, err := ex.orderKey(&specs[k], sel, res, itemPrints, r, projRows, i)
			if err != nil {
				return err
			}
			rows[i].keys[k] = v
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for k, ob := range sel.OrderBy {
			c := Compare(rows[i].keys[k], rows[j].keys[k])
			if c != 0 {
				if ob.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	for i := range rows {
		res.Rows[i] = rows[i].row
	}
	return nil
}

// orderSpec carries the row-independent pieces of one ORDER BY key.
type orderSpec struct {
	expr   sqlast.Expr
	ord    int // parsed ordinal literal (ORDER BY 2), valid when hasOrd
	hasOrd bool
	cr     *sqlast.ColumnRef // unqualified column/alias reference, if any
	want   string            // printed expression for select-item matching
}

// orderKey evaluates one ORDER BY key for row i.
func (ex *Executor) orderKey(sp *orderSpec, sel *sqlast.SelectStmt, res *Result, itemPrints []string, row []Value, projRows []projected, i int) (Value, error) {
	// Ordinal: ORDER BY 2.
	if sp.hasOrd && sp.ord >= 1 && sp.ord <= len(row) {
		return row[sp.ord-1], nil
	}
	// Output column / alias match.
	if sp.cr != nil {
		for j, c := range res.Columns {
			if strings.EqualFold(c, sp.cr.Column) {
				return row[j], nil
			}
		}
	}
	// Expression match against a select item (e.g. ORDER BY COUNT(*)).
	for j, it := range sel.Items {
		if it.Expr != nil && itemPrints[j] == sp.want && j < len(row) {
			return row[j], nil
		}
	}
	// General expression over the source row/group.
	if projRows != nil && i < len(projRows) {
		p := projRows[i]
		return ex.eval(sp.expr, p.env, p.ctx)
	}
	return Value{}, fmt.Errorf("cannot resolve ORDER BY expression %s", sp.want)
}

// project evaluates FROM/WHERE/GROUP BY/HAVING and the select list.
func (ex *Executor) project(sel *sqlast.SelectStmt, outer *rowEnv) ([]projected, []string, error) {
	envs, err := ex.fromRows(sel.From, outer)
	if err != nil {
		return nil, nil, err
	}
	if sel.Where != nil {
		kept := envs[:0]
		for _, env := range envs {
			ok, err := ex.evalBool(sel.Where, env, nil)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				kept = append(kept, env)
			}
		}
		envs = kept
	}

	aggregated := len(sel.GroupBy) > 0 || sel.Having != nil
	if !aggregated {
		for _, it := range sel.Items {
			if it.Expr != nil && hasAggregate(it.Expr) {
				aggregated = true
				break
			}
		}
	}
	if !aggregated {
		for _, ob := range sel.OrderBy {
			if hasAggregate(ob.Expr) && len(sel.GroupBy) > 0 {
				aggregated = true
				break
			}
		}
	}

	cols := ex.outputColumns(sel, envs)

	var out []projected
	if aggregated {
		groups, reps, err := ex.groupRows(sel, envs)
		if err != nil {
			return nil, nil, err
		}
		for gi, group := range groups {
			ctx := &evalCtx{group: group}
			rep := reps[gi]
			if sel.Having != nil {
				ok, err := ex.evalBool(sel.Having, rep, ctx)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					continue
				}
			}
			row, err := ex.projectRow(sel, rep, ctx)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, projected{row: row, env: rep, ctx: ctx})
		}
	} else {
		out = make([]projected, 0, len(envs))
		for _, env := range envs {
			row, err := ex.projectRow(sel, env, nil)
			if err != nil {
				return nil, nil, err
			}
			out = append(out, projected{row: row, env: env})
		}
	}

	if sel.Distinct {
		seen := make(map[string]bool, len(out))
		kept := out[:0]
		var kb []byte
		for _, p := range out {
			kb = rowKeyAppend(kb[:0], p.row)
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			kept = append(kept, p)
		}
		out = kept
	}
	return out, cols, nil
}

// groupRows partitions envs by the GROUP BY key. With no GROUP BY the whole
// input is a single group (global aggregation). Returns groups plus one
// representative env per group.
func (ex *Executor) groupRows(sel *sqlast.SelectStmt, envs []*rowEnv) ([][]*rowEnv, []*rowEnv, error) {
	if len(sel.GroupBy) == 0 {
		rep := &rowEnv{}
		if len(envs) > 0 {
			rep = envs[0]
		}
		return [][]*rowEnv{envs}, []*rowEnv{rep}, nil
	}
	index := map[string]int{}
	var groups [][]*rowEnv
	var reps []*rowEnv
	var kb []byte
	for _, env := range envs {
		kb = kb[:0]
		for _, g := range sel.GroupBy {
			v, err := ex.eval(g, env, nil)
			if err != nil {
				return nil, nil, err
			}
			kb = v.appendKey(kb)
			kb = append(kb, '\x1f')
		}
		gi, ok := index[string(kb)]
		if !ok {
			gi = len(groups)
			index[string(kb)] = gi
			groups = append(groups, nil)
			reps = append(reps, env)
		}
		groups[gi] = append(groups[gi], env)
	}
	return groups, reps, nil
}

// projectRow evaluates the select list for one row/group.
func (ex *Executor) projectRow(sel *sqlast.SelectStmt, env *rowEnv, ctx *evalCtx) ([]Value, error) {
	row := make([]Value, 0, len(sel.Items))
	for _, it := range sel.Items {
		switch {
		case it.Star:
			for _, b := range env.bindings {
				row = append(row, b.vals...)
			}
		case it.TableStar != "":
			found := false
			for _, b := range env.bindings {
				if b.alias == strings.ToLower(it.TableStar) {
					row = append(row, b.vals...)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("unknown table %q in %s.*", it.TableStar, it.TableStar)
			}
		default:
			v, err := ex.eval(it.Expr, env, ctx)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
	}
	return row, nil
}

// outputColumns derives the result header.
func (ex *Executor) outputColumns(sel *sqlast.SelectStmt, envs []*rowEnv) []string {
	var cols []string
	var sample *rowEnv
	if len(envs) > 0 {
		sample = envs[0]
	}
	for _, it := range sel.Items {
		switch {
		case it.Star:
			if sample != nil {
				for _, b := range sample.bindings {
					cols = append(cols, b.cols...)
				}
			} else if schema := ex.starColumns(sel); schema != nil {
				cols = append(cols, schema...)
			} else {
				cols = append(cols, "*")
			}
		case it.TableStar != "":
			added := false
			if sample != nil {
				for _, b := range sample.bindings {
					if b.alias == strings.ToLower(it.TableStar) {
						cols = append(cols, b.cols...)
						added = true
					}
				}
			}
			if !added {
				if t, ok := ex.db.Table(it.TableStar); ok {
					for _, c := range t.Columns {
						cols = append(cols, c.Name)
					}
				} else {
					cols = append(cols, it.TableStar+".*")
				}
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				cols = append(cols, cr.Column)
			} else {
				cols = append(cols, sqlast.PrintExpr(it.Expr))
			}
		}
	}
	return cols
}

// starColumns derives the SELECT * header from the catalog when the row set
// is empty (so headers stay stable regardless of data).
func (ex *Executor) starColumns(sel *sqlast.SelectStmt) []string {
	if sel.From == nil || sel.From.First.Name == "" {
		return nil
	}
	var cols []string
	add := func(name string) bool {
		t, ok := ex.db.Table(name)
		if !ok {
			return false
		}
		for _, c := range t.Columns {
			cols = append(cols, c.Name)
		}
		return true
	}
	if !add(sel.From.First.Name) {
		return nil
	}
	for _, j := range sel.From.Joins {
		if j.Source.Name == "" || !add(j.Source.Name) {
			return nil
		}
	}
	return cols
}
