package engine

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCompareOrdering(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Int(2), Float(2.0), 0},
		{Float(1.5), Int(2), -1},
		{Text("apple"), Text("banana"), -1},
		{Text("Apple"), Text("apple"), -1}, // case-insensitive tie broken by case
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Bool(true), Bool(false), 1},
		{Bool(true), Int(1), 0},
		{Text("2023-01-01"), Text("2023-02-01"), -1}, // ISO date ordering
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTextAntisymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return Compare(Text(a), Text(b)) == -Compare(Text(b), Text(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEqualityMatchesCompare(t *testing.T) {
	// Two values with equal keys must compare equal; this keeps the
	// grouping map and Compare consistent.
	f := func(a, b int64) bool {
		keyEq := Int(a).Key() == Int(b).Key()
		cmpEq := Compare(Int(a), Int(b)) == 0
		return keyEq == cmpEq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntFloatKeyCollapse(t *testing.T) {
	if Int(3).Key() != Float(3.0).Key() {
		t.Error("integral float key should equal int key")
	}
	if Int(3).Key() == Float(3.5).Key() {
		t.Error("distinct values must have distinct keys")
	}
	if Int(3).Key() == Text("3").Key() {
		t.Error("number and text keys must differ")
	}
}

func TestEqualNullUnknown(t *testing.T) {
	if _, known := Equal(Null(), Int(1)); known {
		t.Error("NULL equality should be unknown")
	}
	if eq, known := Equal(Int(1), Int(1)); !known || !eq {
		t.Error("1 = 1 should be known true")
	}
}

func TestTruthy(t *testing.T) {
	tests := []struct {
		v    Value
		want bool
	}{
		{Bool(true), true},
		{Bool(false), false},
		{Int(0), false},
		{Int(7), true},
		{Float(0), false},
		{Float(0.1), true},
		{Text(""), false},
		{Text("x"), true},
		{Null(), false},
	}
	for _, tc := range tests {
		if got := tc.v.Truthy(); got != tc.want {
			t.Errorf("Truthy(%v) = %v", tc.v, got)
		}
	}
}

func TestParseLiteral(t *testing.T) {
	v, err := ParseLiteral("42", TypeInt)
	if err != nil || v.I != 42 {
		t.Errorf("int: %v, %v", v, err)
	}
	v, err = ParseLiteral("3.5", TypeFloat)
	if err != nil || v.F != 3.5 {
		t.Errorf("float: %v, %v", v, err)
	}
	v, err = ParseLiteral("TRUE", TypeBool)
	if err != nil || !v.B {
		t.Errorf("bool: %v, %v", v, err)
	}
	if _, err = ParseLiteral("zap", TypeInt); err == nil {
		t.Error("bad int should error")
	}
	if _, err = ParseLiteral("zap", TypeBool); err == nil {
		t.Error("bad bool should error")
	}
}

func TestTypeFromSQL(t *testing.T) {
	tests := map[string]Type{
		"INT": TypeInt, "integer": TypeInt,
		"REAL": TypeFloat, "FLOAT": TypeFloat,
		"BOOL": TypeBool, "BOOLEAN": TypeBool,
		"TEXT": TypeText, "VARCHAR": TypeText, "DATE": TypeText,
	}
	for name, want := range tests {
		if got := TypeFromSQL(name); got != want {
			t.Errorf("TypeFromSQL(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(5), "5"},
		{Float(2.5), "2.5"},
		{Text("hi"), "hi"},
		{Bool(true), "true"},
		{Null(), "NULL"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestLikeMatch(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "x%", false},
		{"hello", "", false},
		{"", "%", true},
		{"HELLO", "hello", true}, // case-insensitive
		{"abc", "a%c", true},
		{"abc", "a_c", true},
		{"ac", "a_c", false},
	}
	for _, tc := range tests {
		if got := likeMatch(tc.s, tc.p); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v", tc.s, tc.p, got)
		}
	}
}

// TestCompareFoldMatchesToLower pins the allocation-free text comparison to
// the definition it replaced: lexicographic order of strings.ToLower copies.
func TestCompareFoldMatchesToLower(t *testing.T) {
	ref := func(a, b string) int {
		al, bl := strings.ToLower(a), strings.ToLower(b)
		return strings.Compare(al, bl)
	}
	fixed := []string{
		"", "a", "A", "ab", "AB", "aB", "abc", "ABD", "z", "Z",
		"Straße", "STRASSE", "ñ", "Ñ", "É", "é", "日本語", "日本",
		"\xff", "a\xffb", "a\xc3", "�", "\U00010000", "K", "K",
	}
	for _, a := range fixed {
		for _, b := range fixed {
			if got, want := compareFold(a, b), ref(a, b); got != want {
				t.Errorf("compareFold(%q, %q) = %d, want %d", a, b, got, want)
			}
		}
	}
	f := func(a, b string) bool { return compareFold(a, b) == ref(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
