package engine

import "math"

// This file implements the columnar half of the engine's storage: a typed,
// column-major projection of a Table, built lazily once per table and cached
// on the Database. The row-major [][]Value layout stays the source of truth
// — output rows are always gathered from Table.Rows, never reconstructed
// from the arrays — so the columnar form is purely an acceleration
// structure for the vectorized kernels in vec.go: filter masks and
// aggregate folds stride over packed float64/string arrays instead of
// 48-byte Value structs scattered across row slices.

// colKind classifies the non-NULL values observed in one column. Kernels
// only run over kinds whose Compare semantics they can mirror exactly:
// numeric kinds compare as float64 (Compare's rule for int/float), string
// columns compare with compareFold plus an exact tiebreak. Everything else
// (bool, mixed domains, NaN) is kindOther and handled by the generic
// row-at-a-time fallback.
type colKind uint8

const (
	// kindEmpty means every value is NULL (or the table has no rows).
	kindEmpty colKind = iota
	// kindInt: all non-NULL values are TypeInt.
	kindInt
	// kindFloat: all non-NULL values are TypeFloat, none NaN.
	kindFloat
	// kindNum: a mix of TypeInt and TypeFloat, none NaN.
	kindNum
	// kindString: all non-NULL values are TypeText.
	kindString
	// kindOther: bool values, mixed text/number domains, or NaN — Compare
	// is not faithfully representable in a typed array (bool equates with
	// both numbers and text; NaN Compare-equals every number).
	kindOther
)

// colData is one column's typed projection.
type colData struct {
	kind colKind
	// nulls flags NULL slots; nil when the column has no NULLs.
	nulls []bool
	// nums holds the float64 rendering of every non-NULL value for the
	// numeric kinds (NULL slots are zero and must be guarded by nulls).
	nums []float64
	// strs holds the raw strings for kindString.
	strs []string
}

// null reports whether row i is NULL in this column.
func (c *colData) null(i int) bool { return c.nulls != nil && c.nulls[i] }

// colTable is the columnar projection of one table at a point in time.
type colTable struct {
	t *Table
	// n is the row count the projection was built from; the supported DDL
	// surface can only append rows, so n != len(t.Rows) is the complete
	// staleness signal (same contract as Database.scanEnvs).
	n    int
	cols []colData
}

// buildColTable projects t into typed column arrays.
func buildColTable(t *Table) *colTable {
	n := len(t.Rows)
	ct := &colTable{t: t, n: n, cols: make([]colData, len(t.Columns))}
	for ci := range t.Columns {
		c := &ct.cols[ci]
		// Pass 1: classify the column's non-NULL domain.
		kind := kindEmpty
		hasNull := false
		for _, row := range t.Rows {
			v := row[ci]
			switch v.T {
			case TypeNull:
				hasNull = true
				continue
			case TypeInt:
				switch kind {
				case kindEmpty:
					kind = kindInt
				case kindFloat, kindNum:
					kind = kindNum
				case kindInt:
				default:
					kind = kindOther
				}
			case TypeFloat:
				if math.IsNaN(v.F) {
					kind = kindOther
					break
				}
				switch kind {
				case kindEmpty:
					kind = kindFloat
				case kindInt, kindNum:
					kind = kindNum
				case kindFloat:
				default:
					kind = kindOther
				}
			case TypeText:
				if kind == kindEmpty || kind == kindString {
					kind = kindString
				} else {
					kind = kindOther
				}
			default:
				kind = kindOther
			}
		}
		c.kind = kind
		if hasNull {
			c.nulls = make([]bool, n)
		}
		// Pass 2: fill the typed array for kernel-usable kinds.
		switch kind {
		case kindInt, kindFloat, kindNum:
			c.nums = make([]float64, n)
			for i, row := range t.Rows {
				v := row[ci]
				if v.T == TypeNull {
					c.nulls[i] = true
					continue
				}
				f, _ := v.AsFloat()
				c.nums[i] = f
			}
		case kindString:
			c.strs = make([]string, n)
			for i, row := range t.Rows {
				v := row[ci]
				if v.T == TypeNull {
					c.nulls[i] = true
					continue
				}
				c.strs[i] = v.S
			}
		default:
			if hasNull {
				for i, row := range t.Rows {
					if row[ci].T == TypeNull {
						c.nulls[i] = true
					}
				}
			}
		}
	}
	return ct
}

// colTable returns the cached columnar projection of t, rebuilding it when
// rows were appended since the last build. Safe for concurrent use; the
// projection itself is immutable once returned.
func (db *Database) colTable(t *Table) *colTable {
	db.colMu.Lock()
	defer db.colMu.Unlock()
	if ct, ok := db.colCache[t]; ok && ct.n == len(t.Rows) {
		return ct
	}
	ct := buildColTable(t)
	if db.colCache == nil {
		db.colCache = map[*Table]*colTable{}
	}
	db.colCache[t] = ct
	return ct
}
