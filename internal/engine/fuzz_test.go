// Execution differential fuzzing: the planned+cached execution path must
// never panic and must agree byte-for-byte with the dynamic-lookup
// interpreter (hash joins off) on every input — gold SQL, trap variants,
// demonstration pool, and whatever mutations the fuzzer derives from them.
//
// This lives in an external test package because the seed corpus comes from
// internal/dataset, which itself imports internal/engine.
package engine_test

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/engine"
)

// fuzzWorld lazily builds both corpora's databases once per process; fuzz
// workers share the read-only catalogs and one plan cache, exactly like
// concurrent server sessions do.
var fuzzWorld struct {
	once  sync.Once
	dbs   map[string]*engine.Database
	seeds [][2]string // (db, sql) seed corpus
	cache *engine.Cache
	err   error
}

func fuzzSetup() error {
	fuzzWorld.once.Do(func() {
		fuzzWorld.dbs = make(map[string]*engine.Database)
		fuzzWorld.cache = engine.NewCache(0)
		for _, build := range []func() (*dataset.Dataset, error){spider.Build, aep.Build} {
			ds, err := build()
			if err != nil {
				fuzzWorld.err = err
				return
			}
			for name, db := range ds.DBs {
				fuzzWorld.dbs[name] = db
			}
			for _, e := range ds.Examples {
				fuzzWorld.seeds = append(fuzzWorld.seeds, [2]string{e.DB, e.Gold})
				if w := e.WrongSQL(); w != e.Gold {
					fuzzWorld.seeds = append(fuzzWorld.seeds, [2]string{e.DB, w})
				}
				for _, v := range e.Variants {
					fuzzWorld.seeds = append(fuzzWorld.seeds, [2]string{e.DB, v})
				}
			}
			for _, d := range ds.Demos {
				fuzzWorld.seeds = append(fuzzWorld.seeds, [2]string{d.DB, d.SQL})
			}
		}
		if fuzzWorld.err != nil {
			return
		}
		// A row-scaled corpus variant, so the differential also runs where
		// the columnar kernels process real batch sizes. Seeded with the
		// scan/filter/aggregate shapes the vectorized path specializes.
		scaled, err := aep.BuildRows(10)
		if err != nil {
			fuzzWorld.err = err
			return
		}
		for name, db := range scaled.DBs {
			sn := "scaled10:" + name
			fuzzWorld.dbs[sn] = db
			for _, t := range db.Tables() {
				c0 := t.Columns[0].Name
				cn := t.Columns[len(t.Columns)-1].Name
				fuzzWorld.seeds = append(fuzzWorld.seeds,
					[2]string{sn, fmt.Sprintf("SELECT COUNT(*) FROM %s", t.Name)},
					[2]string{sn, fmt.Sprintf("SELECT * FROM %s WHERE %s IS NOT NULL ORDER BY %s LIMIT 7", t.Name, c0, cn)},
					[2]string{sn, fmt.Sprintf("SELECT %s, COUNT(*) FROM %s GROUP BY %s HAVING COUNT(*) > 2", cn, t.Name, cn)},
					[2]string{sn, fmt.Sprintf("SELECT MIN(%s), MAX(%s), COUNT(%s) FROM %s WHERE %s IS NOT NULL", c0, cn, cn, t.Name, c0)},
				)
			}
			for _, e := range scaled.Examples {
				if e.DB == name {
					fuzzWorld.seeds = append(fuzzWorld.seeds, [2]string{sn, e.Gold})
				}
			}
		}
	})
	return fuzzWorld.err
}

// runRowLeg executes a cached plan on a columnar-disabled executor — the
// pure row-at-a-time reference the vectorized path must be indistinguishable
// from. ok=false means the statement didn't plan (nothing to compare).
func runRowLeg(db *engine.Database, sql string) (*engine.Result, error, bool) {
	p, err := fuzzWorld.cache.Plan(db, sql)
	if err != nil {
		return nil, nil, false
	}
	ex := engine.NewExecutor(db)
	ex.SetColumnar(false)
	res, err := ex.Run(p)
	return res, err, true
}

// runVecLeg executes a cached plan with the tiny-table aggregation floor
// removed: production executors route sub-DefaultColumnarMinRows aggregates
// to the row path, so without this leg the vectorized aggregate kernels
// would never face the native-scale (tiny) corpus tables.
func runVecLeg(db *engine.Database, sql string) (*engine.Result, error, bool) {
	p, err := fuzzWorld.cache.Plan(db, sql)
	if err != nil {
		return nil, nil, false
	}
	ex := engine.NewExecutor(db)
	ex.SetColumnarMinRows(0)
	res, err := ex.Run(p)
	return res, err, true
}

// FuzzExecPlannedVsDynamic differentially executes every (db, sql) input on
// the planned/cached/hash-join path and the dynamic-lookup interpreter.
// The two must agree on error-ness, error text, and the full result.
func FuzzExecPlannedVsDynamic(f *testing.F) {
	if err := fuzzSetup(); err != nil {
		f.Fatal(err)
	}
	for _, s := range fuzzWorld.seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, dbName, sql string) {
		// Unbounded inputs only slow the fuzzer down: parser depth, not
		// input length, is what shakes out executor bugs.
		if len(sql) > 512 {
			t.Skip()
		}
		db, ok := fuzzWorld.dbs[dbName]
		if !ok {
			t.Skip()
		}
		// Planned path, twice: the second run exercises the cache-hit
		// plan-reuse path (shared immutable plan, fresh executor).
		planned1, err1 := fuzzWorld.cache.Query(db, sql)
		planned2, err2 := fuzzWorld.cache.Query(db, sql)
		// Reference path: parse-per-call dynamic lookup, no hash joins.
		ex := engine.NewExecutor(db)
		ex.SetHashJoin(false)
		dynamic, errD := ex.Query(sql)

		if (err1 == nil) != (errD == nil) {
			t.Fatalf("planned err=%v dynamic err=%v\nsql: %q", err1, errD, sql)
		}
		if err1 != nil {
			if err1.Error() != errD.Error() {
				t.Fatalf("error text diverged:\nplanned: %s\ndynamic: %s\nsql: %q", err1, errD, sql)
			}
			if err2 == nil || err2.Error() != err1.Error() {
				t.Fatalf("cached re-run changed the error: %v vs %v\nsql: %q", err2, err1, sql)
			}
			if _, errR, planned := runRowLeg(db, sql); planned && (errR == nil || errR.Error() != err1.Error()) {
				t.Fatalf("columnar-off leg changed the error: %v vs %v\nsql: %q", errR, err1, sql)
			}
			if _, errV, planned := runVecLeg(db, sql); planned && (errV == nil || errV.Error() != err1.Error()) {
				t.Fatalf("unfloored columnar leg changed the error: %v vs %v\nsql: %q", errV, err1, sql)
			}
			return
		}
		if err2 != nil {
			t.Fatalf("first run succeeded, cached re-run failed: %v\nsql: %q", err2, sql)
		}
		if !reflect.DeepEqual(planned1, dynamic) {
			t.Fatalf("results diverged\nplanned: %+v\ndynamic: %+v\nsql: %q", planned1, dynamic, sql)
		}
		if !reflect.DeepEqual(planned1, planned2) {
			t.Fatalf("cached re-run diverged from first run\nsql: %q", sql)
		}
		// Third leg: the same shared plan with the columnar path disabled.
		// The planned legs above ran with it enabled, so any divergence
		// here is the vectorized executor's fault specifically.
		row, errR, planned := runRowLeg(db, sql)
		if planned && !reflect.DeepEqual(row, planned1) {
			t.Fatalf("columnar-off leg diverged (err=%v)\ncolumnar: %+v\nrow:      %+v\nsql: %q", errR, planned1, row, sql)
		}
		// Fourth leg: the floor removed, so the vectorized aggregate kernels
		// run even on tables the production threshold routes to the row path.
		vec, errV, planned := runVecLeg(db, sql)
		if planned && !reflect.DeepEqual(vec, planned1) {
			t.Fatalf("unfloored columnar leg diverged (err=%v)\nvec: %+v\nref: %+v\nsql: %q", errV, vec, planned1, sql)
		}
	})
}

// TestFuzzSeedCorpus runs the whole seed corpus through the differential
// check directly, so plain `go test` (no -fuzz) still covers every gold
// query, trap variant and demo on both paths.
func TestFuzzSeedCorpus(t *testing.T) {
	if err := fuzzSetup(); err != nil {
		t.Fatal(err)
	}
	if len(fuzzWorld.seeds) == 0 {
		t.Fatal("empty seed corpus")
	}
	for _, s := range fuzzWorld.seeds {
		db := fuzzWorld.dbs[s[0]]
		planned, errP := fuzzWorld.cache.Query(db, s[1])
		ex := engine.NewExecutor(db)
		ex.SetHashJoin(false)
		dynamic, errD := ex.Query(s[1])
		row, errR, hasPlan := runRowLeg(db, s[1])
		vec, errV, hasVec := runVecLeg(db, s[1])
		switch {
		case (errP == nil) != (errD == nil):
			t.Errorf("%s: planned err=%v dynamic err=%v\nsql: %q", s[0], errP, errD, s[1])
		case errP != nil:
			if errP.Error() != errD.Error() {
				t.Errorf("%s: error text diverged: %q vs %q", s[0], errP, errD)
			}
			if hasPlan && (errR == nil || errR.Error() != errP.Error()) {
				t.Errorf("%s: columnar-off error diverged: %v vs %v\nsql: %q", s[0], errR, errP, s[1])
			}
			if hasVec && (errV == nil || errV.Error() != errP.Error()) {
				t.Errorf("%s: unfloored columnar error diverged: %v vs %v\nsql: %q", s[0], errV, errP, s[1])
			}
		case !reflect.DeepEqual(planned, dynamic):
			t.Errorf("%s: results diverged for %q", s[0], strings.TrimSpace(s[1]))
		case hasPlan && !reflect.DeepEqual(row, planned):
			t.Errorf("%s: columnar-off leg diverged (err=%v) for %q", s[0], errR, strings.TrimSpace(s[1]))
		case hasVec && !reflect.DeepEqual(vec, planned):
			t.Errorf("%s: unfloored columnar leg diverged (err=%v) for %q", s[0], errV, strings.TrimSpace(s[1]))
		}
	}
}
