package engine

import (
	"errors"
	"math"
	"strings"

	"fisql/internal/sqlast"
)

// errBail is the columnar path's internal "cannot mirror this" sentinel: it
// aborts the attempt like any evaluation error would, routing the statement
// to the row executor. It never escapes runVec.
var errBail = errors.New("columnar bail")

// This file implements the vectorized columnar execution path. Executor.Run
// tries it before the row-at-a-time executor; SetColumnar(false) disables
// it. The design goal is byte-identical results with zero new error
// surfaces, achieved by construction rather than by re-implementation:
//
//   - Output rows are gathered from Table.Rows (the row-major source of
//     truth) by the row path's own projectRow/outputColumns/orderRows code,
//     evaluated over the same shared scan environments the row path uses.
//     The typed column arrays (columnar.go) feed only the WHERE masks,
//     GROUP BY partitioning and aggregate folds — stages whose results are
//     scalar selections or Values, never user-visible row structures.
//
//   - Aggregates are folded vectorized once per group and injected into
//     evalCtx.aggVals, so HAVING/items/ORDER BY still run through ex.eval.
//
//   - The path NEVER produces an error. Anything it cannot mirror exactly —
//     an evaluation error, an unsupported join domain, a scan past maxRows
//     — abandons the attempt and reruns on the row executor, which owns
//     every error message and error point. The columnar path can therefore
//     never succeed where the row path errors, nor error where it succeeds.
//
// Plan-time qualification (buildVecPlan) is purely structural: single
// catalog table, or exactly one INNER/LEFT hash equi-join of two catalog
// tables on a planned cross-side column equality. Everything else — derived
// tables, multi-joins, compound selects — routes to the row executor.

// vecPlan is a statement's columnar qualification, cached on the Plan.
type vecPlan struct {
	ok bool

	t1     *Table
	alias1 string
	cols1  []string

	// Join fields; t2 == nil means single-table.
	t2       *Table
	alias2   string
	cols2    []string
	joinType sqlast.JoinType
	leftCol  int // key column in t1
	rightCol int // key column in t2

	// aggregated mirrors project()'s detection; aggNodes are the aggregate
	// calls reachable from items/HAVING/ORDER BY, folded once per group.
	aggregated bool
	aggNodes   []*sqlast.FuncCall
}

// buildVecPlan qualifies p's statement for columnar execution.
func buildVecPlan(p *Plan) *vecPlan {
	no := &vecPlan{}
	sel := p.Stmt
	if sel.Compound != nil || sel.From == nil || sel.From.First.Sub != nil {
		return no
	}
	t1, ok := p.db.Table(sel.From.First.Name)
	if !ok {
		return no
	}
	vp := &vecPlan{ok: true, t1: t1}
	vp.alias1 = strings.ToLower(sel.From.First.Alias)
	if vp.alias1 == "" {
		vp.alias1 = strings.ToLower(sel.From.First.Name)
	}
	vp.cols1 = columnNames(t1)

	if len(sel.From.Joins) > 1 {
		return no
	}
	if len(sel.From.Joins) == 1 {
		j := &sel.From.Joins[0]
		if j.Source.Sub != nil || j.On == nil {
			return no
		}
		if j.Type != sqlast.JoinInner && j.Type != sqlast.JoinLeft {
			return no
		}
		t2, ok := p.db.Table(j.Source.Name)
		if !ok {
			return no
		}
		conjs := splitAnd(j.On)
		if len(conjs) != 1 {
			return no
		}
		eq, ok := conjs[0].(*sqlast.Binary)
		if !ok || eq.Op != sqlast.OpEq {
			return no
		}
		lref, lok := eq.L.(*sqlast.ColumnRef)
		rref, rok := eq.R.(*sqlast.ColumnRef)
		if !lok || !rok {
			return no
		}
		ls, lok := p.cols[lref]
		rs, rok := p.cols[rref]
		if !lok || !rok || ls.depth != 0 || rs.depth != 0 {
			return no
		}
		switch {
		case ls.binding == 0 && rs.binding == 1:
			vp.leftCol, vp.rightCol = ls.col, rs.col
		case ls.binding == 1 && rs.binding == 0:
			vp.leftCol, vp.rightCol = rs.col, ls.col
		default:
			return no // both operands resolve to the same side
		}
		vp.t2 = t2
		vp.joinType = j.Type
		vp.alias2 = strings.ToLower(j.Source.Alias)
		if vp.alias2 == "" {
			vp.alias2 = strings.ToLower(j.Source.Name)
		}
		vp.cols2 = columnNames(t2)
	}

	// Mirror project()'s aggregation detection (its ORDER BY clause can
	// never flip the flag: it requires a non-empty GROUP BY, which already
	// set it).
	vp.aggregated = len(sel.GroupBy) > 0 || sel.Having != nil
	if !vp.aggregated {
		for _, it := range sel.Items {
			if it.Expr != nil && hasAggregate(it.Expr) {
				vp.aggregated = true
				break
			}
		}
	}
	if vp.aggregated {
		for _, it := range sel.Items {
			if it.Expr != nil {
				collectAggregates(it.Expr, &vp.aggNodes)
			}
		}
		collectAggregates(sel.Having, &vp.aggNodes)
		for _, ob := range sel.OrderBy {
			collectAggregates(ob.Expr, &vp.aggNodes)
		}
	}
	return vp
}

func columnNames(t *Table) []string {
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	return cols
}

// collectAggregates gathers the aggregate calls in e that evaluate in THIS
// statement's group context, with the same subquery-skipping walk as
// hasAggregate. Aggregate arguments are not descended into: nested
// aggregates error in the row path and the fold reproduces that.
func collectAggregates(e sqlast.Expr, out *[]*sqlast.FuncCall) {
	if e == nil {
		return
	}
	sqlast.Walk(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.FuncCall:
			if isAggregateName(x.Name) {
				*out = append(*out, x)
				return false
			}
		case *sqlast.SubqueryExpr, *sqlast.ExistsExpr:
			return false
		case *sqlast.InExpr:
			if x.Sub != nil {
				collectAggregates(x.X, out)
				return false
			}
		}
		return true
	})
}

// ----------------------------------------------------------------------------
// Execution

// vecPair is one joined row: an index into t1.Rows and one into t2.Rows,
// r == -1 for a LEFT JOIN null row.
type vecPair struct{ l, r int32 }

// vecExec is the per-run state of one columnar execution attempt.
type vecExec struct {
	ex   *Executor
	vp   *vecPlan
	stmt *sqlast.SelectStmt
	ct1  *colTable
	ct2  *colTable
	n    int // context rows: len(t1.Rows) or len(pairs)

	// Single-table: the database's shared scan environments (the very same
	// envs the row path evaluates over).
	envs []*rowEnv

	// Join: materialized pair indices plus a reusable scratch environment.
	pairs        []vecPair
	rightNulls   []Value
	scratch      rowEnv
	scratchBinds [2]binding
}

// runVec attempts columnar execution of p. ok=false means the caller must
// run the row executor; it is returned for both unqualified statements and
// mid-flight bails, and never carries a partial result.
func (ex *Executor) runVec(p *Plan) (*Result, bool) {
	vp := p.vec.Load()
	if vp == nil {
		vp = buildVecPlan(p)
		p.vec.Store(vp)
	}
	if !vp.ok {
		return nil, false
	}
	// Tiny-table aggregation: below the floor the row path wins — see
	// DefaultColumnarMinRows. Scan shapes stay vectorized at any size.
	if vp.aggregated && ex.colMinRows > 0 && len(vp.t1.Rows) < ex.colMinRows &&
		(vp.t2 == nil || len(vp.t2.Rows) < ex.colMinRows) {
		return nil, false
	}
	// The row executor owns the oversized-scan and oversized-join errors:
	// bail rather than replicate their text and order.
	if len(vp.t1.Rows) > ex.maxRows {
		return nil, false
	}
	v := &vecExec{ex: ex, vp: vp, stmt: p.Stmt}
	if vp.t2 == nil {
		v.n = len(vp.t1.Rows)
		v.ct1 = ex.db.colTable(vp.t1)
		v.envs = ex.db.scanEnvs(vp.t1, vp.alias1)
	} else {
		if len(vp.t2.Rows) > ex.maxRows {
			return nil, false
		}
		v.ct1 = ex.db.colTable(vp.t1)
		v.ct2 = ex.db.colTable(vp.t2)
		if !v.buildPairs() {
			return nil, false
		}
		v.n = len(v.pairs)
		v.rightNulls = make([]Value, len(vp.cols2))
		for i := range v.rightNulls {
			v.rightNulls[i] = Null()
		}
		v.scratchBinds[0] = binding{alias: vp.alias1, cols: vp.cols1}
		v.scratchBinds[1] = binding{alias: vp.alias2, cols: vp.cols2}
		v.scratch.bindings = v.scratchBinds[:]
	}
	return v.run()
}

// env returns the evaluation environment for context row i. Single-table
// environments are the shared scan envs (stable); join environments reuse
// one scratch env and are only valid until the next call.
func (v *vecExec) env(i int) *rowEnv {
	if v.vp.t2 == nil {
		return v.envs[i]
	}
	p := v.pairs[i]
	v.scratchBinds[0].vals = v.vp.t1.Rows[p.l]
	if p.r >= 0 {
		v.scratchBinds[1].vals = v.vp.t2.Rows[p.r]
	} else {
		v.scratchBinds[1].vals = v.rightNulls
	}
	return &v.scratch
}

// stableEnv is env for callers that retain the environment (ORDER BY,
// group representatives): join rows get a freshly allocated environment.
func (v *vecExec) stableEnv(i int32) *rowEnv {
	if v.vp.t2 == nil {
		return v.envs[i]
	}
	p := v.pairs[i]
	right := v.rightNulls
	if p.r >= 0 {
		right = v.vp.t2.Rows[p.r]
	}
	return &rowEnv{bindings: []binding{
		{alias: v.vp.alias1, cols: v.vp.cols1, vals: v.vp.t1.Rows[p.l]},
		{alias: v.vp.alias2, cols: v.vp.cols2, vals: right},
	}}
}

// buildPairs materializes the hash equi-join as (left, right) index pairs in
// the row path's emission order: left-major, right-source order per left
// row, LEFT JOIN null rows for matchless left rows. NULL keys never match.
// false means bail (unsupported key domain, or result larger than maxRows —
// the row executor owns the error/fallback semantics there).
func (v *vecExec) buildPairs() bool {
	vp := v.vp
	k1 := &v.ct1.cols[vp.leftCol]
	k2 := &v.ct2.cols[vp.rightCol]
	nLeft := len(vp.t1.Rows)
	leftJoin := vp.joinType == sqlast.JoinLeft

	// An all-NULL key column on either side means no pair can match,
	// whatever the other side's domain is.
	if k1.kind == kindEmpty || k2.kind == kindEmpty {
		if !leftJoin {
			return true
		}
		if nLeft > v.ex.maxRows {
			return false
		}
		v.pairs = make([]vecPair, nLeft)
		for i := range v.pairs {
			v.pairs[i] = vecPair{int32(i), -1}
		}
		return true
	}

	// The hash key is only faithful to Compare-equality on a homogeneous
	// domain (see the hash equi-join commentary in exec.go); bool and mixed
	// domains bail to the row executor's nested loop.
	numericKinds := func(k colKind) bool { return k == kindInt || k == kindFloat || k == kindNum }
	var numeric bool
	switch {
	case numericKinds(k1.kind) && numericKinds(k2.kind):
		numeric = true
	case k1.kind == kindString && k2.kind == kindString:
		numeric = false
	default:
		return false
	}

	count := 0
	pairs := make([]vecPair, 0, nLeft)
	emit := func(li int, matches []int32) bool {
		if len(matches) == 0 {
			if leftJoin {
				pairs = append(pairs, vecPair{int32(li), -1})
				count++
			}
			return count <= v.ex.maxRows
		}
		for _, ri := range matches {
			pairs = append(pairs, vecPair{int32(li), ri})
			count++
			if count > v.ex.maxRows {
				return false
			}
		}
		return true
	}

	if numeric {
		ht := make(map[uint64][]int32, len(vp.t2.Rows))
		for ri := range vp.t2.Rows {
			if k2.null(ri) {
				continue
			}
			f := k2.nums[ri]
			if f == 0 {
				f = 0 // fold -0.0 into 0 like makeJoinKey
			}
			b := math.Float64bits(f)
			ht[b] = append(ht[b], int32(ri))
		}
		for li := 0; li < nLeft; li++ {
			var matches []int32
			if !k1.null(li) {
				f := k1.nums[li]
				if f == 0 {
					f = 0
				}
				matches = ht[math.Float64bits(f)]
			}
			if !emit(li, matches) {
				return false
			}
		}
	} else {
		ht := make(map[string][]int32, len(vp.t2.Rows))
		for ri := range vp.t2.Rows {
			if k2.null(ri) {
				continue
			}
			s := k2.strs[ri]
			ht[s] = append(ht[s], int32(ri))
		}
		for li := 0; li < nLeft; li++ {
			var matches []int32
			if !k1.null(li) {
				matches = ht[k1.strs[li]]
			}
			if !emit(li, matches) {
				return false
			}
		}
	}
	v.pairs = pairs
	return true
}

// run executes the qualified statement. ok=false at any point means bail to
// the row executor.
func (v *vecExec) run() (*Result, bool) {
	stmt := v.stmt
	selIdx, ok := v.filter()
	if !ok {
		return nil, false
	}

	// Header: the row path derives it from the post-WHERE environments
	// (first survivor as sample, catalog fallback otherwise).
	var sampleEnvs []*rowEnv
	if len(selIdx) > 0 {
		sampleEnvs = []*rowEnv{v.env(int(selIdx[0]))}
	}
	cols := v.ex.outputColumns(stmt, sampleEnvs)

	var outRows [][]Value
	var outEnvs []*rowEnv // lazily filled for ORDER BY (aggregated path)
	var outCtxs []*evalCtx
	var outSrc []int32 // context row per output row (non-aggregated path)

	if v.vp.aggregated {
		groups, reps, ok := v.groupSel(selIdx)
		if !ok {
			return nil, false
		}
		for gi := range groups {
			aggVals := make(map[*sqlast.FuncCall]Value, len(v.vp.aggNodes))
			for _, node := range v.vp.aggNodes {
				val, err := v.aggValue(node, groups[gi])
				if err != nil {
					return nil, false
				}
				aggVals[node] = val
			}
			ctx := &evalCtx{aggVals: aggVals}
			var rep *rowEnv
			if reps[gi] < 0 {
				rep = &rowEnv{} // global aggregation over zero rows
			} else {
				rep = v.stableEnv(reps[gi])
			}
			if stmt.Having != nil {
				keep, err := v.ex.evalBool(stmt.Having, rep, ctx)
				if err != nil {
					return nil, false
				}
				if !keep {
					continue
				}
			}
			row, err := v.ex.projectRow(stmt, rep, ctx)
			if err != nil {
				return nil, false
			}
			outRows = append(outRows, row)
			outEnvs = append(outEnvs, rep)
			outCtxs = append(outCtxs, ctx)
		}
	} else {
		for _, i := range selIdx {
			row, err := v.ex.projectRow(stmt, v.env(int(i)), nil)
			if err != nil {
				return nil, false
			}
			outRows = append(outRows, row)
		}
		outSrc = selIdx
	}

	if stmt.Distinct {
		seen := make(map[string]bool, len(outRows))
		var kb []byte
		keptRows := outRows[:0]
		keptEnvs := outEnvs[:0]
		keptCtxs := outCtxs[:0]
		keptSrc := outSrc[:0]
		for i, r := range outRows {
			kb = rowKeyAppend(kb[:0], r)
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
			keptRows = append(keptRows, r)
			if outEnvs != nil {
				keptEnvs = append(keptEnvs, outEnvs[i])
				keptCtxs = append(keptCtxs, outCtxs[i])
			}
			if outSrc != nil {
				keptSrc = append(keptSrc, outSrc[i])
			}
		}
		outRows, outEnvs, outCtxs, outSrc = keptRows, keptEnvs, keptCtxs, keptSrc
	}

	res := &Result{Columns: cols, Rows: outRows}

	if len(stmt.OrderBy) > 0 {
		proj := make([]projected, len(outRows))
		for i := range outRows {
			proj[i].row = outRows[i]
			if v.vp.aggregated {
				proj[i].env = outEnvs[i]
				proj[i].ctx = outCtxs[i]
			} else {
				proj[i].env = v.stableEnv(outSrc[i])
			}
		}
		v.ex.lastProjected = proj
		if err := v.ex.orderRows(stmt, res); err != nil {
			return nil, false
		}
		res.Ordered = true
	}

	// LIMIT/OFFSET, mirroring execSelect (top level: empty env, no outer).
	if stmt.Limit != nil {
		lim, err := v.ex.eval(stmt.Limit, &rowEnv{}, nil)
		if err != nil {
			return nil, false
		}
		off := int64(0)
		if stmt.Offset != nil {
			ov, err := v.ex.eval(stmt.Offset, &rowEnv{}, nil)
			if err != nil {
				return nil, false
			}
			off = ov.I
		}
		n, _ := lim.AsFloat()
		limit := int(n)
		start := int(off)
		if start > len(res.Rows) {
			start = len(res.Rows)
		}
		end := start + limit
		if limit < 0 || end > len(res.Rows) {
			end = len(res.Rows)
		}
		res.Rows = res.Rows[start:end]
	}
	return res, true
}

// filter applies WHERE and returns the surviving context rows in order.
func (v *vecExec) filter() ([]int32, bool) {
	if v.stmt.Where == nil {
		sel := make([]int32, v.n)
		for i := range sel {
			sel[i] = int32(i)
		}
		return sel, true
	}
	if v.vp.t2 == nil {
		m, err := v.mask(v.stmt.Where)
		if err != nil {
			return nil, false
		}
		kept := 0
		for _, mv := range m {
			if mv == mTrue {
				kept++
			}
		}
		sel := make([]int32, 0, kept)
		for i, mv := range m {
			if mv == mTrue {
				sel = append(sel, int32(i))
			}
		}
		return sel, true
	}
	// Join rows: generic row-order evaluation over the scratch env (the
	// same evalBool the row path's WHERE filter runs).
	var sel []int32
	for i := 0; i < v.n; i++ {
		keep, err := v.ex.evalBool(v.stmt.Where, v.env(i), nil)
		if err != nil {
			return nil, false
		}
		if keep {
			sel = append(sel, int32(i))
		}
	}
	return sel, true
}

// ----------------------------------------------------------------------------
// Filter masks
//
// A mask holds one three-valued truth per context row — the truth3 of the
// value the row path's eval would produce. Typed kernels cover the
// comparison/LIKE/BETWEEN/IN/IS NULL shapes whose evaluation provably
// cannot error; everything else evaluates generically per row through
// ex.eval, so errors (which force a bail) and exotic semantics stay the row
// path's own.

const (
	mFalse int8 = 0
	mTrue  int8 = 1
	mNull  int8 = 2
)

func truth3(val Value) int8 {
	if val.IsNull() {
		return mNull
	}
	if val.Truthy() {
		return mTrue
	}
	return mFalse
}

// slotCol resolves e as a planned reference to a column of the scanned
// table (single-table context only).
func (v *vecExec) slotCol(e sqlast.Expr) (int, bool) {
	cr, ok := e.(*sqlast.ColumnRef)
	if !ok || v.ex.plan == nil {
		return 0, false
	}
	slot, ok := v.ex.plan.cols[cr]
	if !ok || slot.depth != 0 || slot.binding != 0 {
		return 0, false
	}
	return slot.col, true
}

// constVal evaluates a literal operand once. Literal evaluation is
// environment-free; an unparseable number literal surfaces as an error and
// bails the whole attempt (the row executor owns whether that error is ever
// reached).
func (v *vecExec) constVal(e sqlast.Expr) (Value, bool, error) {
	lit, ok := e.(*sqlast.Literal)
	if !ok {
		return Value{}, false, nil
	}
	val, err := v.ex.eval(lit, &rowEnv{}, nil)
	if err != nil {
		return Value{}, false, err
	}
	return val, true, nil
}

func fillMask(n int, m int8) []int8 {
	out := make([]int8, n)
	if m != 0 {
		for i := range out {
			out[i] = m
		}
	}
	return out
}

// cmpFloat mirrors Compare's numeric ordering.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpText mirrors Compare's text ordering: case-insensitive fold with an
// exact tiebreak (so equality is exact string equality).
func cmpText(a, b string) int {
	if c := compareFold(a, b); c != 0 {
		return c
	}
	return strings.Compare(a, b)
}

func cmpResult(op sqlast.BinaryOp, c int) int8 {
	var r bool
	switch op {
	case sqlast.OpEq:
		r = c == 0
	case sqlast.OpNeq:
		r = c != 0
	case sqlast.OpLt:
		r = c < 0
	case sqlast.OpLte:
		r = c <= 0
	case sqlast.OpGt:
		r = c > 0
	default: // OpGte
		r = c >= 0
	}
	if r {
		return mTrue
	}
	return mFalse
}

// flipCmp mirrors an ordering operator across swapped operands.
func flipCmp(op sqlast.BinaryOp) sqlast.BinaryOp {
	switch op {
	case sqlast.OpLt:
		return sqlast.OpGt
	case sqlast.OpLte:
		return sqlast.OpGte
	case sqlast.OpGt:
		return sqlast.OpLt
	case sqlast.OpGte:
		return sqlast.OpLte
	}
	return op // Eq/Neq are symmetric
}

func isNumericKind(k colKind) bool { return k == kindInt || k == kindFloat || k == kindNum }

// mask computes the truth mask of e over the scanned table.
func (v *vecExec) mask(e sqlast.Expr) ([]int8, error) {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case sqlast.OpAnd, sqlast.OpOr:
			a, err := v.mask(x.L)
			if err != nil {
				return nil, err
			}
			b, err := v.mask(x.R)
			if err != nil {
				return nil, err
			}
			if x.Op == sqlast.OpAnd {
				for i := range a {
					a[i] = and3(a[i], b[i])
				}
			} else {
				for i := range a {
					a[i] = or3(a[i], b[i])
				}
			}
			return a, nil
		case sqlast.OpEq, sqlast.OpNeq, sqlast.OpLt, sqlast.OpLte, sqlast.OpGt, sqlast.OpGte:
			return v.cmpMask(x)
		}
	case *sqlast.Unary:
		if x.Op == sqlast.OpNot {
			m, err := v.mask(x.X)
			if err != nil {
				return nil, err
			}
			for i := range m {
				switch m[i] {
				case mTrue:
					m[i] = mFalse
				case mFalse:
					m[i] = mTrue
				}
			}
			return m, nil
		}
	case *sqlast.IsNullExpr:
		if ci, ok := v.slotCol(x.X); ok {
			c := &v.ct1.cols[ci]
			m := make([]int8, v.n)
			for i := range m {
				if c.null(i) != x.Not {
					m[i] = mTrue
				}
			}
			return m, nil
		}
	case *sqlast.BetweenExpr:
		if m, ok, err := v.betweenMask(x); err != nil {
			return nil, err
		} else if ok {
			return m, nil
		}
	case *sqlast.LikeExpr:
		if m, ok, err := v.likeMask(x); err != nil {
			return nil, err
		} else if ok {
			return m, nil
		}
	case *sqlast.InExpr:
		if m, ok, err := v.inMask(x); err != nil {
			return nil, err
		} else if ok {
			return m, nil
		}
	case *sqlast.Literal:
		val, _, err := v.constVal(x)
		if err != nil {
			return nil, err
		}
		return fillMask(v.n, truth3(val)), nil
	case *sqlast.ColumnRef:
		if ci, ok := v.slotCol(x); ok {
			c := &v.ct1.cols[ci]
			switch {
			case isNumericKind(c.kind):
				m := make([]int8, v.n)
				for i := range m {
					switch {
					case c.null(i):
						m[i] = mNull
					case c.nums[i] != 0:
						m[i] = mTrue
					}
				}
				return m, nil
			case c.kind == kindString:
				m := make([]int8, v.n)
				for i := range m {
					switch {
					case c.null(i):
						m[i] = mNull
					case c.strs[i] != "":
						m[i] = mTrue
					}
				}
				return m, nil
			case c.kind == kindEmpty:
				return fillMask(v.n, mNull), nil
			}
		}
	}
	return v.genericMask(e)
}

// genericMask evaluates e per row with the row path's eval.
func (v *vecExec) genericMask(e sqlast.Expr) ([]int8, error) {
	m := make([]int8, v.n)
	for i := 0; i < v.n; i++ {
		val, err := v.ex.eval(e, v.env(i), nil)
		if err != nil {
			return nil, err
		}
		m[i] = truth3(val)
	}
	return m, nil
}

func and3(a, b int8) int8 {
	if a == mFalse || b == mFalse {
		return mFalse
	}
	if a == mNull || b == mNull {
		return mNull
	}
	return mTrue
}

func or3(a, b int8) int8 {
	if a == mTrue || b == mTrue {
		return mTrue
	}
	if a == mNull || b == mNull {
		return mNull
	}
	return mFalse
}

// cmpMask vectorizes a comparison when the operand shapes allow it.
func (v *vecExec) cmpMask(x *sqlast.Binary) ([]int8, error) {
	op := x.Op
	if ci, ok := v.slotCol(x.L); ok {
		if lit, isLit, err := v.constVal(x.R); err != nil {
			return nil, err
		} else if isLit {
			if m, ok := v.cmpColLit(ci, lit, op); ok {
				return m, nil
			}
			return v.genericMask(x)
		}
		if cj, ok := v.slotCol(x.R); ok {
			if m, ok := v.cmpColCol(ci, cj, op); ok {
				return m, nil
			}
		}
		return v.genericMask(x)
	}
	if lit, isLit, err := v.constVal(x.L); err != nil {
		return nil, err
	} else if isLit {
		if ci, ok := v.slotCol(x.R); ok {
			if m, ok := v.cmpColLit(ci, lit, flipCmp(op)); ok {
				return m, nil
			}
		}
	}
	return v.genericMask(x)
}

func (v *vecExec) cmpColLit(ci int, lit Value, op sqlast.BinaryOp) ([]int8, bool) {
	c := &v.ct1.cols[ci]
	if lit.IsNull() || c.kind == kindEmpty {
		return fillMask(v.n, mNull), true
	}
	if lf, ok := lit.numeric(); ok && isNumericKind(c.kind) {
		m := make([]int8, v.n)
		for i := range m {
			if c.null(i) {
				m[i] = mNull
				continue
			}
			m[i] = cmpResult(op, cmpFloat(c.nums[i], lf))
		}
		return m, true
	}
	if lit.T == TypeText && c.kind == kindString {
		m := make([]int8, v.n)
		if op == sqlast.OpEq || op == sqlast.OpNeq {
			want := op == sqlast.OpEq
			for i := range m {
				if c.null(i) {
					m[i] = mNull
					continue
				}
				if (c.strs[i] == lit.S) == want {
					m[i] = mTrue
				}
			}
			return m, true
		}
		for i := range m {
			if c.null(i) {
				m[i] = mNull
				continue
			}
			m[i] = cmpResult(op, cmpText(c.strs[i], lit.S))
		}
		return m, true
	}
	return nil, false
}

func (v *vecExec) cmpColCol(ci, cj int, op sqlast.BinaryOp) ([]int8, bool) {
	a, b := &v.ct1.cols[ci], &v.ct1.cols[cj]
	if a.kind == kindEmpty || b.kind == kindEmpty {
		return fillMask(v.n, mNull), true
	}
	switch {
	case isNumericKind(a.kind) && isNumericKind(b.kind):
		m := make([]int8, v.n)
		for i := range m {
			if a.null(i) || b.null(i) {
				m[i] = mNull
				continue
			}
			m[i] = cmpResult(op, cmpFloat(a.nums[i], b.nums[i]))
		}
		return m, true
	case a.kind == kindString && b.kind == kindString:
		m := make([]int8, v.n)
		for i := range m {
			if a.null(i) || b.null(i) {
				m[i] = mNull
				continue
			}
			m[i] = cmpResult(op, cmpText(a.strs[i], b.strs[i]))
		}
		return m, true
	}
	return nil, false
}

func (v *vecExec) betweenMask(x *sqlast.BetweenExpr) ([]int8, bool, error) {
	ci, ok := v.slotCol(x.X)
	if !ok {
		return nil, false, nil
	}
	lo, lok, err := v.constVal(x.Lo)
	if err != nil {
		return nil, false, err
	}
	hi, hok, err := v.constVal(x.Hi)
	if err != nil {
		return nil, false, err
	}
	if !lok || !hok {
		return nil, false, nil
	}
	c := &v.ct1.cols[ci]
	if lo.IsNull() || hi.IsNull() || c.kind == kindEmpty {
		return fillMask(v.n, mNull), true, nil
	}
	lf, lnum := lo.numeric()
	hf, hnum := hi.numeric()
	switch {
	case isNumericKind(c.kind) && lnum && hnum:
		m := make([]int8, v.n)
		for i := range m {
			if c.null(i) {
				m[i] = mNull
				continue
			}
			f := c.nums[i]
			in := cmpFloat(f, lf) >= 0 && cmpFloat(f, hf) <= 0
			if in != x.Not {
				m[i] = mTrue
			}
		}
		return m, true, nil
	case c.kind == kindString && lo.T == TypeText && hi.T == TypeText:
		m := make([]int8, v.n)
		for i := range m {
			if c.null(i) {
				m[i] = mNull
				continue
			}
			s := c.strs[i]
			in := cmpText(s, lo.S) >= 0 && cmpText(s, hi.S) <= 0
			if in != x.Not {
				m[i] = mTrue
			}
		}
		return m, true, nil
	}
	return nil, false, nil
}

func (v *vecExec) likeMask(x *sqlast.LikeExpr) ([]int8, bool, error) {
	ci, ok := v.slotCol(x.X)
	if !ok {
		return nil, false, nil
	}
	pat, isLit, err := v.constVal(x.Pattern)
	if err != nil {
		return nil, false, err
	}
	if !isLit {
		return nil, false, nil
	}
	c := &v.ct1.cols[ci]
	if pat.IsNull() || c.kind == kindEmpty {
		return fillMask(v.n, mNull), true, nil
	}
	if c.kind != kindString {
		return nil, false, nil
	}
	ps := pat.String()
	m := make([]int8, v.n)
	for i := range m {
		if c.null(i) {
			m[i] = mNull
			continue
		}
		if v.ex.like(c.strs[i], ps) != x.Not {
			m[i] = mTrue
		}
	}
	return m, true, nil
}

func (v *vecExec) inMask(x *sqlast.InExpr) ([]int8, bool, error) {
	if x.Sub != nil {
		return nil, false, nil
	}
	ci, ok := v.slotCol(x.X)
	if !ok {
		return nil, false, nil
	}
	candidates := make([]Value, 0, len(x.List))
	for _, le := range x.List {
		cv, isLit, err := v.constVal(le)
		if err != nil {
			return nil, false, err
		}
		if !isLit {
			return nil, false, nil
		}
		candidates = append(candidates, cv)
	}
	rows := v.vp.t1.Rows
	m := make([]int8, v.n)
	for i := range m {
		val := rows[i][ci]
		if val.IsNull() {
			m[i] = mNull
			continue
		}
		sawNull := false
		matched := false
		for _, cv := range candidates {
			eq, known := Equal(val, cv)
			if !known {
				sawNull = true
				continue
			}
			if eq {
				matched = true
				break
			}
		}
		switch {
		case matched:
			if !x.Not {
				m[i] = mTrue
			}
		case sawNull:
			m[i] = mNull
		default:
			if x.Not {
				m[i] = mTrue
			}
		}
	}
	return m, true, nil
}

// ----------------------------------------------------------------------------
// Grouping

// groupSel partitions the selected context rows by the GROUP BY key,
// mirroring groupRows: appendKey bytes per key expression, groups in
// first-seen order, first row as representative. rep == -1 marks the empty
// global group.
func (v *vecExec) groupSel(selIdx []int32) (groups [][]int32, reps []int32, ok bool) {
	if len(v.stmt.GroupBy) == 0 {
		rep := int32(-1)
		if len(selIdx) > 0 {
			rep = selIdx[0]
		}
		return [][]int32{selIdx}, []int32{rep}, true
	}

	// Fast path: a single bare column key over a typed column partitions
	// identically to its appendKey bytes (the key encodings are injective
	// per kind, and numeric map keys equate -0.0 with 0 just as appendKey
	// renders both as "#0").
	if v.vp.t2 == nil && len(v.stmt.GroupBy) == 1 {
		if ci, isCol := v.slotCol(v.stmt.GroupBy[0]); isCol {
			c := &v.ct1.cols[ci]
			switch {
			case isNumericKind(c.kind):
				index := make(map[float64]int, 64)
				nullGroup := -1
				for _, i := range selIdx {
					var gi int
					if c.null(int(i)) {
						if nullGroup < 0 {
							nullGroup = len(groups)
							groups = append(groups, nil)
							reps = append(reps, i)
						}
						gi = nullGroup
					} else {
						f := c.nums[i]
						g, found := index[f]
						if !found {
							g = len(groups)
							index[f] = g
							groups = append(groups, nil)
							reps = append(reps, i)
						}
						gi = g
					}
					groups[gi] = append(groups[gi], i)
				}
				return groups, reps, true
			case c.kind == kindString:
				index := make(map[string]int, 64)
				nullGroup := -1
				for _, i := range selIdx {
					var gi int
					if c.null(int(i)) {
						if nullGroup < 0 {
							nullGroup = len(groups)
							groups = append(groups, nil)
							reps = append(reps, i)
						}
						gi = nullGroup
					} else {
						s := c.strs[i]
						g, found := index[s]
						if !found {
							g = len(groups)
							index[s] = g
							groups = append(groups, nil)
							reps = append(reps, i)
						}
						gi = g
					}
					groups[gi] = append(groups[gi], i)
				}
				return groups, reps, true
			}
		}
	}

	index := map[string]int{}
	var kb []byte
	for _, i := range selIdx {
		kb = kb[:0]
		for _, g := range v.stmt.GroupBy {
			val, err := v.ex.eval(g, v.env(int(i)), nil)
			if err != nil {
				return nil, nil, false
			}
			kb = val.appendKey(kb)
			kb = append(kb, '\x1f')
		}
		gi, found := index[string(kb)]
		if !found {
			gi = len(groups)
			index[string(kb)] = gi
			groups = append(groups, nil)
			reps = append(reps, i)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups, reps, true
}

// ----------------------------------------------------------------------------
// Aggregate folds

// gatherSlot reads the value of a depth-0 planned column slot for context
// row i without building an environment.
func (v *vecExec) gatherSlot(i int32, slot colSlot) Value {
	if v.vp.t2 == nil {
		return v.vp.t1.Rows[i][slot.col]
	}
	p := v.pairs[i]
	if slot.binding == 0 {
		return v.vp.t1.Rows[p.l][slot.col]
	}
	if p.r < 0 {
		return Null()
	}
	return v.vp.t2.Rows[p.r][slot.col]
}

// argSlot resolves an aggregate argument as a depth-0 column reference of
// either source.
func (v *vecExec) argSlot(e sqlast.Expr) (colSlot, bool) {
	cr, ok := e.(*sqlast.ColumnRef)
	if !ok || v.ex.plan == nil {
		return colSlot{}, false
	}
	slot, ok := v.ex.plan.cols[cr]
	if !ok || slot.depth != 0 {
		return colSlot{}, false
	}
	max := 1
	if v.vp.t2 != nil {
		max = 2
	}
	if slot.binding >= max {
		return colSlot{}, false
	}
	return slot, true
}

// aggValue folds one aggregate call over a group of context rows, mirroring
// evalAggregate exactly (same NULL skipping, same DISTINCT keys, same
// deferred non-numeric error, same first-wins ties in MIN/MAX). An error
// bails the whole columnar attempt.
func (v *vecExec) aggValue(x *sqlast.FuncCall, group []int32) (Value, error) {
	if x.Star {
		if x.Name != "COUNT" {
			return Value{}, errBail
		}
		return Int(int64(len(group))), nil
	}
	if len(x.Args) != 1 {
		return Value{}, errBail
	}

	// Typed folds over single-table columns.
	if v.vp.t2 == nil && !x.Distinct {
		if ci, ok := v.slotCol(x.Args[0]); ok {
			c := &v.ct1.cols[ci]
			if val, ok := v.typedFold(x.Name, c, ci, group); ok {
				return val, nil
			}
		}
	}

	// Generic fold: per-row argument values (gathered directly for bare
	// column refs, evaluated otherwise), folded with evalAggregate's exact
	// streaming logic.
	slot, fastArg := v.argSlot(x.Args[0])
	var seen map[string]bool
	var kb []byte
	n := 0
	sum := 0.0
	allInt := true
	badNumeric := false
	var best Value
	for _, i := range group {
		var val Value
		if fastArg {
			val = v.gatherSlot(i, slot)
		} else {
			var err error
			val, err = v.ex.eval(x.Args[0], v.env(int(i)), nil)
			if err != nil {
				return Value{}, err
			}
		}
		if val.IsNull() {
			continue
		}
		if x.Distinct {
			if seen == nil {
				seen = map[string]bool{}
			}
			kb = val.appendKey(kb[:0])
			if seen[string(kb)] {
				continue
			}
			seen[string(kb)] = true
		}
		n++
		switch x.Name {
		case "SUM", "AVG":
			f, ok := val.AsFloat()
			if !ok {
				badNumeric = true
				continue
			}
			if val.T != TypeInt {
				allInt = false
			}
			if !badNumeric {
				sum += f
			}
		case "MIN", "MAX":
			if n == 1 {
				best = val
			} else if c := Compare(val, best); (x.Name == "MIN" && c < 0) || (x.Name == "MAX" && c > 0) {
				best = val
			}
		}
	}
	switch x.Name {
	case "COUNT":
		return Int(int64(n)), nil
	case "SUM", "AVG":
		if badNumeric {
			return Value{}, errBail
		}
		if n == 0 {
			return Null(), nil
		}
		if x.Name == "AVG" {
			return Float(sum / float64(n)), nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if n == 0 {
			return Null(), nil
		}
		return best, nil
	}
	return Value{}, errBail
}

// typedFold folds COUNT/SUM/AVG/MIN/MAX over one typed column. ok=false
// falls through to the generic fold.
func (v *vecExec) typedFold(name string, c *colData, ci int, group []int32) (Value, bool) {
	if c.kind == kindEmpty {
		// Every value NULL: COUNT is 0, everything else NULL.
		if name == "COUNT" {
			return Int(0), true
		}
		if name == "SUM" || name == "AVG" || name == "MIN" || name == "MAX" {
			return Null(), true
		}
		return Value{}, false
	}
	switch name {
	case "COUNT":
		if c.kind == kindOther {
			return Value{}, false
		}
		n := 0
		if c.nulls == nil {
			n = len(group)
		} else {
			for _, i := range group {
				if !c.nulls[i] {
					n++
				}
			}
		}
		return Int(int64(n)), true
	case "SUM", "AVG":
		// kindNum would need per-row int/float tags to reproduce SUM's
		// all-int result typing; the generic fold handles it.
		if c.kind != kindInt && c.kind != kindFloat {
			return Value{}, false
		}
		n := 0
		sum := 0.0
		for _, i := range group {
			if c.null(int(i)) {
				continue
			}
			n++
			sum += c.nums[i]
		}
		if n == 0 {
			return Null(), true
		}
		if name == "AVG" {
			return Float(sum / float64(n)), true
		}
		if c.kind == kindInt {
			return Int(int64(sum)), true
		}
		return Float(sum), true
	case "MIN", "MAX":
		isMin := name == "MIN"
		switch {
		case isNumericKind(c.kind):
			bestIdx := int32(-1)
			var bestF float64
			for _, i := range group {
				if c.null(int(i)) {
					continue
				}
				f := c.nums[i]
				if bestIdx < 0 || (isMin && f < bestF) || (!isMin && f > bestF) {
					bestIdx, bestF = i, f
				}
			}
			if bestIdx < 0 {
				return Null(), true
			}
			return v.vp.t1.Rows[bestIdx][ci], true
		case c.kind == kindString:
			bestIdx := int32(-1)
			var bestS string
			for _, i := range group {
				if c.null(int(i)) {
					continue
				}
				s := c.strs[i]
				if bestIdx < 0 {
					bestIdx, bestS = i, s
					continue
				}
				cmp := cmpText(s, bestS)
				if (isMin && cmp < 0) || (!isMin && cmp > 0) {
					bestIdx, bestS = i, s
				}
			}
			if bestIdx < 0 {
				return Null(), true
			}
			return v.vp.t1.Rows[bestIdx][ci], true
		}
	}
	return Value{}, false
}
