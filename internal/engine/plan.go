package engine

import (
	"fmt"
	"strings"
	"sync/atomic"

	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// This file implements the compile-once half of the engine: a planning pass
// that walks a parsed SELECT exactly once per (statement, database) and
// resolves every ColumnRef to a fixed (scope depth, binding, column) slot.
// Execution then reads values by index instead of re-scanning binding and
// column names (strings.ToLower/EqualFold) for every row.
//
// Planning is deliberately *semantics-free*: a reference the planner cannot
// resolve — or resolves to a problem (unknown column, ambiguity) — is left
// out of the slot map and recorded as a diagnostic. At runtime such
// references fall back to the dynamic rowEnv.lookup path, which errors (or
// doesn't — an unknown column in a WHERE clause over an empty table is never
// evaluated) at exactly the moment the seed interpreter would. This keeps
// planned execution result-identical to interpretation while still reporting
// unknown/ambiguous columns before execution via Plan.Diagnostics.

// colSlot addresses one column value inside a rowEnv chain: walk `depth`
// levels up the outer chain, then index bindings[binding].vals[col].
type colSlot struct {
	depth   int
	binding int
	col     int
}

// Plan is a SELECT statement resolved against one database's schema. A Plan
// is immutable after PlanSelect returns and safe for concurrent use by any
// number of Executors; callers must not mutate Stmt. Executors themselves
// remain single-goroutine — create one per goroutine and share the Plan.
type Plan struct {
	// Stmt is the planned statement. Shared, read-only.
	Stmt *sqlast.SelectStmt

	// Aux caches derived read-only data a higher layer computes from this
	// plan exactly once (the assistant stores its rendered presentation —
	// reformulation, explanation, highlight spans — here). Tying the cache
	// to the plan gives it the plan cache's lifetime: LRU eviction drops
	// both together, so no side table can leak. Opaque to the engine.
	Aux atomic.Value

	db    *Database
	cols  map[*sqlast.ColumnRef]colSlot
	diags []string

	// vec lazily caches the statement's columnar qualification (see vec.go):
	// built on first Run, shared by every executor running this plan. The
	// build is deterministic, so a racing double-build stores equal values.
	vec atomic.Pointer[vecPlan]
}

// Diagnostics returns the column-resolution problems found at plan time
// (unknown tables, unknown columns, ambiguous references), in source-walk
// order. A non-empty list does not mean execution will fail: the interpreter
// only errors when the offending expression is actually evaluated, and the
// planned path preserves that behavior exactly.
func (p *Plan) Diagnostics() []string {
	out := make([]string, len(p.diags))
	copy(out, p.diags)
	return out
}

// Prepare parses and plans a SELECT against db.
func Prepare(db *Database, sql string) (*Plan, error) {
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		return nil, err
	}
	return PlanSelect(db, sel), nil
}

// PlanSelect plans a parsed SELECT against db. It never fails: resolution
// problems become Diagnostics and unresolved references simply keep the
// dynamic lookup path at runtime.
func PlanSelect(db *Database, sel *sqlast.SelectStmt) *Plan {
	pl := &planner{db: db, cols: make(map[*sqlast.ColumnRef]colSlot)}
	pl.selectStmt(sel, nil)
	return &Plan{Stmt: sel, db: db, cols: pl.cols, diags: pl.diags}
}

// ----------------------------------------------------------------------------
// Planner

// planBinding mirrors one runtime binding: the alias it answers to and its
// column names. A binding is opaque when its header cannot be derived
// statically (see selectHeader); references through it stay dynamic.
type planBinding struct {
	alias  string
	cols   []string
	opaque bool
}

// planScope mirrors the binding structure of a rowEnv at plan time.
type planScope struct {
	bindings []planBinding
	outer    *planScope
}

type planner struct {
	db    *Database
	cols  map[*sqlast.ColumnRef]colSlot
	diags []string
}

func (p *planner) diag(msg string) { p.diags = append(p.diags, msg) }

// selectStmt plans a full SELECT including compound arms, ORDER BY and
// LIMIT/OFFSET. outer is the enclosing query's scope (nil at top level).
func (p *planner) selectStmt(sel *sqlast.SelectStmt, outer *planScope) {
	scope := p.selectCore(sel, outer)
	for c := sel.Compound; c != nil; c = c.Right.Compound {
		p.selectCore(c.Right, outer)
	}
	// ORDER BY keys resolve leniently (no diagnostics): output-column and
	// alias references are matched by orderRows before eval is ever called,
	// so an unresolved name here is usually not an error. For compound
	// selects the keys are skipped entirely: orderRows may evaluate them
	// against another arm's row envs (or not at all), so slots planned
	// against the first arm's scope would be wrong.
	if sel.Compound == nil {
		for _, ob := range sel.OrderBy {
			p.expr(ob.Expr, scope, false)
		}
	}
	// LIMIT/OFFSET evaluate in an empty scope chained to outer
	// (execSelect uses &rowEnv{outer: outer}).
	limitScope := &planScope{outer: outer}
	p.expr(sel.Limit, limitScope, false)
	p.expr(sel.Offset, limitScope, false)
}

// selectCore plans one SELECT arm (FROM/WHERE/GROUP BY/HAVING/items) and
// returns its row scope.
func (p *planner) selectCore(sel *sqlast.SelectStmt, outer *planScope) *planScope {
	scope := &planScope{outer: outer}
	if sel.From != nil {
		scope.bindings = append(scope.bindings, p.sourceBinding(sel.From.First, outer))
		for i := range sel.From.Joins {
			j := &sel.From.Joins[i]
			scope.bindings = append(scope.bindings, p.sourceBinding(j.Source, outer))
			// The ON clause sees exactly the sources joined so far — the
			// scope currently holds that prefix, and slot indices into it
			// stay valid as later bindings are appended.
			p.expr(j.On, scope, true)
		}
	}
	for _, it := range sel.Items {
		p.expr(it.Expr, scope, true)
	}
	p.expr(sel.Where, scope, true)
	for _, g := range sel.GroupBy {
		p.expr(g, scope, true)
	}
	p.expr(sel.Having, scope, true)
	return scope
}

// sourceBinding plans one table source and returns its binding.
func (p *planner) sourceBinding(ts sqlast.TableSource, outer *planScope) planBinding {
	if ts.Sub != nil {
		p.selectStmt(ts.Sub, outer)
		alias := strings.ToLower(ts.Alias)
		if alias == "" {
			alias = "subquery"
		}
		cols, stable := p.selectHeader(ts.Sub)
		return planBinding{alias: alias, cols: cols, opaque: !stable}
	}
	alias := strings.ToLower(ts.Alias)
	if alias == "" {
		alias = strings.ToLower(ts.Name)
	}
	t, ok := p.db.Table(ts.Name)
	if !ok {
		p.diag(fmt.Sprintf("unknown table %q", ts.Name))
		return planBinding{alias: alias, opaque: true}
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	return planBinding{alias: alias, cols: cols}
}

// selectHeader derives the output header of a derived table statically. The
// header must be identical whether or not the subquery produces rows
// (outputColumns expands * from a sample row env when it has one and falls
// back to the catalog when it doesn't), so star items are only considered
// stable when both paths provably agree; anything else makes the binding
// opaque and keeps lookups through it dynamic.
func (p *planner) selectHeader(sel *sqlast.SelectStmt) ([]string, bool) {
	var srcs []sqlast.TableSource
	if sel.From != nil {
		srcs = append(srcs, sel.From.First)
		for _, j := range sel.From.Joins {
			srcs = append(srcs, j.Source)
		}
	}
	catalogOnly := true // every source is a named catalog table
	for _, ts := range srcs {
		if ts.Sub != nil || ts.Name == "" {
			catalogOnly = false
			break
		}
		if _, ok := p.db.Table(ts.Name); !ok {
			catalogOnly = false
			break
		}
	}
	var cols []string
	for _, it := range sel.Items {
		switch {
		case it.Star:
			if sel.From == nil {
				continue // SELECT * with no FROM projects no columns
			}
			if !catalogOnly {
				return nil, false
			}
			for _, ts := range srcs {
				t, _ := p.db.Table(ts.Name)
				for _, c := range t.Columns {
					cols = append(cols, c.Name)
				}
			}
		case it.TableStar != "":
			// Stable only when the empty-input fallback (catalog lookup by
			// the star's name) matches the sample-env expansion: exactly one
			// source answers to the alias, and it is the named table itself.
			want := strings.ToLower(it.TableStar)
			matches := 0
			var mt *Table
			for _, ts := range srcs {
				if ts.Sub != nil {
					return nil, false
				}
				alias := strings.ToLower(ts.Alias)
				if alias == "" {
					alias = strings.ToLower(ts.Name)
				}
				if alias != want {
					continue
				}
				matches++
				if !strings.EqualFold(ts.Name, it.TableStar) {
					return nil, false
				}
				mt, _ = p.db.Table(ts.Name)
			}
			if matches != 1 || mt == nil {
				return nil, false
			}
			for _, c := range mt.Columns {
				cols = append(cols, c.Name)
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				cols = append(cols, cr.Column)
			} else {
				cols = append(cols, sqlast.PrintExpr(it.Expr))
			}
		}
	}
	return cols, true
}

// expr walks an expression, resolving ColumnRefs in scope and descending
// into subqueries with the scope as their outer chain. strict controls
// whether resolution failures are reported as diagnostics.
func (p *planner) expr(e sqlast.Expr, scope *planScope, strict bool) {
	switch x := e.(type) {
	case nil:
	case *sqlast.ColumnRef:
		p.resolve(x, scope, strict)
	case *sqlast.Literal:
	case *sqlast.Binary:
		p.expr(x.L, scope, strict)
		p.expr(x.R, scope, strict)
	case *sqlast.Unary:
		p.expr(x.X, scope, strict)
	case *sqlast.FuncCall:
		for _, a := range x.Args {
			p.expr(a, scope, strict)
		}
	case *sqlast.InExpr:
		p.expr(x.X, scope, strict)
		for _, v := range x.List {
			p.expr(v, scope, strict)
		}
		if x.Sub != nil {
			p.selectStmt(x.Sub, scope)
		}
	case *sqlast.BetweenExpr:
		p.expr(x.X, scope, strict)
		p.expr(x.Lo, scope, strict)
		p.expr(x.Hi, scope, strict)
	case *sqlast.LikeExpr:
		p.expr(x.X, scope, strict)
		p.expr(x.Pattern, scope, strict)
	case *sqlast.IsNullExpr:
		p.expr(x.X, scope, strict)
	case *sqlast.ExistsExpr:
		p.selectStmt(x.Sub, scope)
	case *sqlast.SubqueryExpr:
		p.selectStmt(x.Sub, scope)
	case *sqlast.CaseExpr:
		for _, w := range x.Whens {
			p.expr(w.When, scope, strict)
			p.expr(w.Then, scope, strict)
		}
		p.expr(x.Else, scope, strict)
	}
}

// resolve mirrors rowEnv.lookup structurally: same scope walk, same
// first-alias-match rule for qualified references, same cross-binding
// ambiguity rule for bare ones. Anything it cannot decide statically (an
// opaque binding in the way) is left to the dynamic path with no diagnostic.
func (p *planner) resolve(x *sqlast.ColumnRef, scope *planScope, strict bool) {
	depth := 0
	for s := scope; s != nil; s, depth = s.outer, depth+1 {
		if x.Table != "" {
			want := strings.ToLower(x.Table)
			aliasFound := false
			for bi := range s.bindings {
				b := &s.bindings[bi]
				if b.alias != want {
					continue
				}
				// lookup stops at the first binding answering to the alias.
				aliasFound = true
				if b.opaque {
					return
				}
				for ci, c := range b.cols {
					if strings.EqualFold(c, x.Column) {
						p.cols[x] = colSlot{depth: depth, binding: bi, col: ci}
						return
					}
				}
				if strict {
					p.diag(fmt.Sprintf("column %s.%s not found", x.Table, x.Column))
				}
				return
			}
			if aliasFound {
				return
			}
			continue // alias might belong to an outer scope
		}
		count := 0
		hasOpaque := false
		var slot colSlot
		for bi := range s.bindings {
			b := &s.bindings[bi]
			if b.opaque {
				hasOpaque = true
				continue
			}
			for ci, c := range b.cols {
				if strings.EqualFold(c, x.Column) {
					count++
					if count == 1 {
						slot = colSlot{depth: depth, binding: bi, col: ci}
					}
				}
			}
		}
		if count > 1 {
			if strict {
				p.diag(fmt.Sprintf("ambiguous column %q", x.Column))
			}
			return
		}
		if hasOpaque {
			// The opaque binding may hold the column too (ambiguity) or hold
			// it when nothing else does; either way only runtime can tell.
			return
		}
		if count == 1 {
			p.cols[x] = slot
			return
		}
		// Not present in this scope; fall through to the outer one.
	}
	if strict {
		if x.Table != "" {
			p.diag(fmt.Sprintf("unknown table or alias %q", x.Table))
		} else {
			p.diag(fmt.Sprintf("unknown column %q", x.Column))
		}
	}
}
