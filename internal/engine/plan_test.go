package engine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"fisql/internal/sqlparse"
)

// runBothWays executes sql through the planned path (Prepare+Run with hash
// joins enabled) and through the seed interpreter (unplanned Select with
// hash joins disabled) and requires identical results and identical error
// text.
func runBothWays(t *testing.T, db *Database, sql string) (*Result, error) {
	t.Helper()
	var refRes *Result
	var refErr error
	if sel, err := sqlparse.ParseSelect(sql); err != nil {
		refErr = err
	} else {
		ref := NewExecutor(db)
		ref.SetHashJoin(false)
		refRes, refErr = ref.Select(sel)
	}
	plan, err := Prepare(db, sql)
	var gotRes *Result
	var gotErr error
	if err != nil {
		gotErr = err
	} else {
		gotRes, gotErr = NewExecutor(db).Run(plan)
	}
	if (refErr == nil) != (gotErr == nil) ||
		(refErr != nil && refErr.Error() != gotErr.Error()) {
		t.Fatalf("query %q: interpreter err %v, planned err %v", sql, refErr, gotErr)
	}
	if !reflect.DeepEqual(refRes, gotRes) {
		t.Fatalf("query %q:\ninterpreter: %+v\nplanned:     %+v", sql, refRes, gotRes)
	}
	return gotRes, gotErr
}

func TestPlanResolvesAndExecutesIdentically(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT name, age FROM singer WHERE age > 30 ORDER BY age DESC",
		"SELECT s.name FROM singer AS s JOIN singer_in_concert AS sc ON s.id = sc.singer_id",
		"SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 1",
		"SELECT name FROM singer WHERE id IN (SELECT singer_id FROM singer_in_concert WHERE concert_id = 1)",
		"SELECT t.name FROM (SELECT name, age FROM singer) AS t WHERE t.age < 30",
		"SELECT name FROM singer WHERE EXISTS (SELECT 1 FROM singer_in_concert WHERE singer_id = singer.id)",
		"SELECT name FROM singer UNION SELECT concert_name FROM concert",
		"SELECT * FROM singer ORDER BY 2 LIMIT 3",
		"SELECT name AS n FROM singer ORDER BY n",
	}
	for _, q := range queries {
		p, err := Prepare(db, q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		if d := p.Diagnostics(); len(d) != 0 {
			t.Errorf("query %q: unexpected diagnostics %v", q, d)
		}
		runBothWays(t, db, q)
	}
}

func TestPlanDiagnostics(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT nope FROM singer", `unknown column "nope"`},
		{"SELECT singer.nope FROM singer", "column singer.nope not found"},
		{"SELECT x.name FROM singer", `unknown table or alias "x"`},
		{"SELECT concert_id FROM concert JOIN singer_in_concert ON concert.concert_id = singer_in_concert.concert_id",
			`ambiguous column "concert_id"`},
		{"SELECT * FROM no_such_table", `unknown table "no_such_table"`},
	}
	for _, c := range cases {
		p, err := Prepare(db, c.sql)
		if err != nil {
			t.Fatalf("prepare %q: %v", c.sql, err)
		}
		found := false
		for _, d := range p.Diagnostics() {
			if strings.Contains(d, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("query %q: diagnostics %v do not mention %q", c.sql, p.Diagnostics(), c.want)
		}
		// Diagnostics are advisory: execution must still behave exactly like
		// the interpreter (erroring where it errors).
		runBothWays(t, db, c.sql)
	}
}

// TestPlanLazyErrorSemantics pins the property that makes planning
// best-effort: the interpreter only raises unknown-column errors when the
// expression is evaluated, so a bad WHERE over an empty table succeeds.
// Planned execution must preserve that while still surfacing the problem as
// a diagnostic.
func TestPlanLazyErrorSemantics(t *testing.T) {
	db := testDB(t)
	if err := db.LoadScript("CREATE TABLE empty_t (a INT);"); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT a FROM empty_t WHERE nope = 1"
	p, err := Prepare(db, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Diagnostics()) == 0 {
		t.Error("expected a diagnostic for the unknown column")
	}
	res, execErr := runBothWays(t, db, sql)
	if execErr != nil {
		t.Fatalf("unexpected execution error: %v", execErr)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("expected 0 rows, got %d", len(res.Rows))
	}
}

func TestCacheHitReturnsSamePlan(t *testing.T) {
	db := testDB(t)
	c := NewCache(0)
	p1, err := c.Plan(db, "SELECT name FROM singer")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Plan(db, "SELECT name FROM singer")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second Plan call did not hit the cache")
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
	// A different database is a different key even for the same SQL.
	db2 := testDB(t)
	p3, err := c.Plan(db2, "SELECT name FROM singer")
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Error("plans must not be shared across databases")
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
}

func TestCacheNegativeCaching(t *testing.T) {
	db := testDB(t)
	c := NewCache(0)
	_, err1 := c.Plan(db, "SELEC broken")
	if err1 == nil {
		t.Fatal("expected a parse error")
	}
	_, err2 := c.Plan(db, "SELEC broken")
	if err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("cached error mismatch: %v vs %v", err1, err2)
	}
	if c.Len() != 1 {
		t.Errorf("parse errors should be cached; Len=%d", c.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	db := testDB(t)
	c := NewCache(3)
	for i := 0; i < 5; i++ {
		if _, err := c.Plan(db, fmt.Sprintf("SELECT name FROM singer LIMIT %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries, want capacity 3", c.Len())
	}
	// LIMIT 4 was inserted last and must still be resident; a hit keeps the
	// plan pointer stable.
	p1, _ := c.Plan(db, "SELECT name FROM singer LIMIT 4")
	p2, _ := c.Plan(db, "SELECT name FROM singer LIMIT 4")
	if p1 != p2 {
		t.Error("most-recent entry was evicted")
	}
}

func TestCacheQueryConcurrent(t *testing.T) {
	db := testDB(t)
	c := NewCache(0)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				res, err := c.Query(db, "SELECT COUNT(*) FROM singer WHERE age > 30")
				if err == nil && res.Rows[0][0].I != 4 {
					err = fmt.Errorf("got %v", res.Rows[0][0])
				}
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestPlanOpaqueDerivedTable: a derived table whose header depends on the
// data (SELECT t.* through an alias) must stay on the dynamic lookup path
// rather than getting wrong static slots.
func TestPlanOpaqueDerivedTable(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT name FROM (SELECT s.* FROM singer AS s) AS d WHERE age > 30",
		"SELECT d.name FROM (SELECT * FROM singer JOIN concert ON singer.id = concert.stadium_id) AS d",
	}
	for _, q := range queries {
		runBothWays(t, db, q)
	}
}

func TestRunRejectsForeignPlan(t *testing.T) {
	db1, db2 := testDB(t), testDB(t)
	p, err := Prepare(db1, "SELECT name FROM singer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewExecutor(db2).Run(p); err == nil {
		t.Error("Run accepted a plan prepared against a different database")
	}
	if _, err := NewExecutor(db1).Run(nil); err == nil {
		t.Error("Run accepted a nil plan")
	}
}

// TestPlanCorrelatedDepth exercises slot resolution across scope depths: the
// inner query references both its own binding and the outer row.
func TestPlanCorrelatedDepth(t *testing.T) {
	db := testDB(t)
	runBothWays(t, db,
		"SELECT name FROM singer WHERE age > (SELECT AVG(age) FROM singer AS s2 WHERE s2.country = singer.country)")
}
