package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// Relational invariants checked over randomized data and predicates. These
// pin the executor semantics the evaluation metric depends on.

func randomDB(rng *rand.Rand, rows int) *Database {
	db := NewDatabase("prop")
	t := &Table{
		Name: "items",
		Columns: []Column{
			{Name: "id", Type: TypeInt},
			{Name: "grp", Type: TypeText},
			{Name: "val", Type: TypeInt},
			{Name: "score", Type: TypeFloat},
		},
	}
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < rows; i++ {
		t.Rows = append(t.Rows, []Value{
			Int(int64(i + 1)),
			Text(groups[rng.Intn(len(groups))]),
			Int(int64(rng.Intn(100))),
			Float(float64(rng.Intn(1000)) / 10),
		})
	}
	db.AddTable(t)
	return db
}

func count(t *testing.T, ex *Executor, sql string) int {
	t.Helper()
	res, err := ex.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return len(res.Rows)
}

func TestPropertyFilterMonotone(t *testing.T) {
	// Adding an AND conjunct never increases the row count.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		db := randomDB(rng, 30+rng.Intn(50))
		ex := NewExecutor(db)
		v1, v2 := rng.Intn(100), rng.Intn(100)
		base := count(t, ex, fmt.Sprintf("SELECT id FROM items WHERE val > %d", v1))
		narrowed := count(t, ex, fmt.Sprintf("SELECT id FROM items WHERE val > %d AND val < %d", v1, v2))
		if narrowed > base {
			t.Fatalf("trial %d: conjunct increased rows %d -> %d", trial, base, narrowed)
		}
		widened := count(t, ex, fmt.Sprintf("SELECT id FROM items WHERE val > %d OR val < %d", v1, v2))
		if widened < base {
			t.Fatalf("trial %d: disjunct decreased rows %d -> %d", trial, base, widened)
		}
	}
}

func TestPropertyDistinctNotLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 20+rng.Intn(80))
		ex := NewExecutor(db)
		all := count(t, ex, "SELECT grp FROM items")
		distinct := count(t, ex, "SELECT DISTINCT grp FROM items")
		if distinct > all {
			t.Fatalf("trial %d: distinct %d > all %d", trial, distinct, all)
		}
		if distinct > 4 {
			t.Fatalf("trial %d: more distinct groups than exist: %d", trial, distinct)
		}
	}
}

func TestPropertyLimitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 10+rng.Intn(40))
		ex := NewExecutor(db)
		n := 1 + rng.Intn(20)
		got := count(t, ex, fmt.Sprintf("SELECT id FROM items ORDER BY id ASC LIMIT %d", n))
		total := count(t, ex, "SELECT id FROM items")
		want := n
		if total < n {
			want = total
		}
		if got != want {
			t.Fatalf("trial %d: LIMIT %d over %d rows returned %d", trial, n, total, got)
		}
	}
}

func TestPropertyGroupCountsSumToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 20+rng.Intn(60))
		ex := NewExecutor(db)
		res, err := ex.Query("SELECT grp, COUNT(*) FROM items GROUP BY grp")
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, row := range res.Rows {
			sum += row[1].I
		}
		total, err := ex.Query("SELECT COUNT(*) FROM items")
		if err != nil {
			t.Fatal(err)
		}
		if sum != total.Rows[0][0].I {
			t.Fatalf("trial %d: group counts sum %d != total %d", trial, sum, total.Rows[0][0].I)
		}
	}
}

func TestPropertyMinMaxWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 10+rng.Intn(40))
		ex := NewExecutor(db)
		res, err := ex.Query("SELECT MIN(val), MAX(val), AVG(val) FROM items")
		if err != nil {
			t.Fatal(err)
		}
		mn, mx, avg := res.Rows[0][0], res.Rows[0][1], res.Rows[0][2]
		if Compare(mn, mx) > 0 {
			t.Fatalf("trial %d: MIN %v > MAX %v", trial, mn, mx)
		}
		if avg.F < float64(mn.I) || avg.F > float64(mx.I) {
			t.Fatalf("trial %d: AVG %v outside [%v, %v]", trial, avg, mn, mx)
		}
	}
}

func TestPropertyOrderBySorts(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 10+rng.Intn(60))
		ex := NewExecutor(db)
		res, err := ex.Query("SELECT val FROM items ORDER BY val ASC")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if Compare(res.Rows[i-1][0], res.Rows[i][0]) > 0 {
				t.Fatalf("trial %d: not sorted at %d", trial, i)
			}
		}
		res, err = ex.Query("SELECT val FROM items ORDER BY val DESC")
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Rows); i++ {
			if Compare(res.Rows[i-1][0], res.Rows[i][0]) < 0 {
				t.Fatalf("trial %d: not reverse-sorted at %d", trial, i)
			}
		}
	}
}

func TestPropertySetOperations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 20+rng.Intn(40))
		ex := NewExecutor(db)
		a := fmt.Sprintf("SELECT grp FROM items WHERE val > %d", rng.Intn(80))
		b := fmt.Sprintf("SELECT grp FROM items WHERE val < %d", rng.Intn(80))
		union := count(t, ex, a+" UNION "+b)
		inter := count(t, ex, a+" INTERSECT "+b)
		exceptN := count(t, ex, a+" EXCEPT "+b)
		distinctA := count(t, ex, "SELECT DISTINCT grp FROM (SELECT * FROM items) AS s WHERE val > 0")
		_ = distinctA
		// |A ∪ B| = |A\B| + |A ∩ B| + |B\A| ≥ max parts; check the two
		// identities that only need A-side quantities:
		if inter+exceptN > union {
			t.Fatalf("trial %d: |A∩B| + |A\\B| = %d exceeds |A∪B| = %d", trial, inter+exceptN, union)
		}
		if exceptN > union {
			t.Fatalf("trial %d: |A\\B| %d > |A∪B| %d", trial, exceptN, union)
		}
	}
}

func TestPropertyJoinCardinality(t *testing.T) {
	// LEFT JOIN preserves every left row at least once; INNER JOIN never
	// exceeds the LEFT JOIN row count.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng, 15+rng.Intn(25))
		other := &Table{
			Name: "tags",
			Columns: []Column{
				{Name: "item_id", Type: TypeInt},
				{Name: "tag", Type: TypeText},
			},
		}
		items, _ := db.Table("items")
		for i := 0; i < rng.Intn(30); i++ {
			other.Rows = append(other.Rows, []Value{
				Int(int64(rng.Intn(len(items.Rows) * 2))), // some dangle
				Text("t"),
			})
		}
		db.AddTable(other)
		ex := NewExecutor(db)
		left := count(t, ex, "SELECT items.id FROM items LEFT JOIN tags ON items.id = tags.item_id")
		inner := count(t, ex, "SELECT items.id FROM items JOIN tags ON items.id = tags.item_id")
		if left < len(items.Rows) {
			t.Fatalf("trial %d: LEFT JOIN lost rows: %d < %d", trial, left, len(items.Rows))
		}
		if inner > left {
			t.Fatalf("trial %d: INNER %d > LEFT %d", trial, inner, left)
		}
	}
}
