package engine

import (
	"fmt"
	"reflect"
	"testing"

	"fisql/internal/sqlparse"
)

// runBoth executes sql twice — columnar enabled and disabled — and requires
// identical results (or identical errors). The columnar leg removes the
// tiny-table aggregation floor so the fixtures here, all far below
// DefaultColumnarMinRows, still drive the vectorized kernels.
func runBoth(t *testing.T, db *Database, sql string) (*Result, bool) {
	t.Helper()
	exOn := NewExecutor(db)
	exOn.SetColumnarMinRows(0)
	on, onErr := exOn.Query(sql)
	exOff := NewExecutor(db)
	exOff.SetColumnar(false)
	off, offErr := exOff.Query(sql)
	if (onErr == nil) != (offErr == nil) {
		t.Fatalf("%s: error divergence: columnar=%v row=%v", sql, onErr, offErr)
	}
	if onErr != nil {
		if onErr.Error() != offErr.Error() {
			t.Fatalf("%s: error text divergence: columnar=%v row=%v", sql, onErr, offErr)
		}
		return nil, false
	}
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("%s: result divergence:\ncolumnar: %+v\nrow:      %+v", sql, on, off)
	}
	return on, true
}

func TestColumnarParity(t *testing.T) {
	db := testDB(t)
	queries := []string{
		// Scan / filter shapes (vectorized kernels).
		"SELECT * FROM singer",
		"SELECT name FROM singer WHERE country = 'France'",
		"SELECT name FROM singer WHERE age > 30",
		"SELECT name FROM singer WHERE age >= 30 AND country <> 'France'",
		"SELECT name FROM singer WHERE age < 30 OR is_male = 'F'",
		"SELECT name FROM singer WHERE NOT (age > 30)",
		"SELECT * FROM stadium WHERE capacity BETWEEN 2000 AND 12000",
		"SELECT * FROM stadium WHERE name LIKE '%Park%'",
		"SELECT * FROM stadium WHERE stadium_id IN (1, 2, 9)",
		"SELECT * FROM stadium WHERE location IS NOT NULL",
		"SELECT name FROM singer WHERE 30 < age",
		"SELECT name FROM singer WHERE age = age",
		"SELECT name FROM singer WHERE NULL",
		// Aggregates, grouping, HAVING.
		"SELECT COUNT(*) FROM singer",
		"SELECT COUNT(*), SUM(capacity), AVG(average), MIN(name), MAX(location) FROM stadium",
		"SELECT country, COUNT(*) FROM singer GROUP BY country",
		"SELECT country, COUNT(*) FROM singer GROUP BY country HAVING COUNT(*) > 1",
		"SELECT year, COUNT(*) FROM concert GROUP BY year ORDER BY COUNT(*) DESC, year",
		"SELECT COUNT(DISTINCT country) FROM singer",
		"SELECT AVG(age) FROM singer WHERE country = 'France'",
		// ORDER BY / LIMIT / DISTINCT.
		"SELECT name, capacity FROM stadium ORDER BY capacity DESC LIMIT 2",
		"SELECT name FROM singer ORDER BY age LIMIT 2 OFFSET 1",
		"SELECT DISTINCT country FROM singer ORDER BY country",
		// Joins (vectorized pair building).
		"SELECT s.name, c.concert_name FROM concert AS c JOIN stadium AS s ON c.stadium_id = s.stadium_id",
		"SELECT c.concert_name, s.name FROM concert AS c LEFT JOIN stadium AS s ON c.stadium_id = s.stadium_id ORDER BY c.concert_id",
		"SELECT s.name, COUNT(*) FROM concert AS c JOIN stadium AS s ON c.stadium_id = s.stadium_id GROUP BY s.name",
		"SELECT c.concert_name FROM concert AS c JOIN stadium AS s ON c.stadium_id = s.stadium_id WHERE s.capacity > 10000",
		// Subqueries (generic eval through shared envs, or row fallback).
		"SELECT name FROM singer WHERE age > (SELECT AVG(age) FROM singer)",
		"SELECT name FROM singer AS s WHERE EXISTS (SELECT 1 FROM singer_in_concert AS sc WHERE sc.singer_id = s.singer_id)",
		"SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert)",
		// Expression projections.
		"SELECT name, age * 2 + 1 FROM singer WHERE age % 2 = 0",
		"SELECT UPPER(name), LENGTH(country) FROM singer",
		"SELECT CASE WHEN age > 40 THEN 'old' ELSE 'young' END FROM singer",
		// Error cases must error identically (fallback owns the message).
		"SELECT nosuch FROM singer",
		"SELECT name FROM singer WHERE age > 'x' AND nosuch = 1",
		"SELECT SUM(name) FROM singer",
	}
	for _, q := range queries {
		runBoth(t, db, q)
	}
	hits, falls := db.ColumnarStats()
	if hits == 0 {
		t.Fatalf("columnar path never hit (hits=%d fallbacks=%d)", hits, falls)
	}
}

func TestColumnarNullAndMixedColumns(t *testing.T) {
	db := NewDatabase("d")
	if err := db.LoadScript(`
CREATE TABLE t (id INT, num REAL, s TEXT, b BOOL);
INSERT INTO t VALUES (1, 1.5, 'a', TRUE);
INSERT INTO t VALUES (2, NULL, 'B', FALSE);
INSERT INTO t VALUES (NULL, -0.0, NULL, NULL);
INSERT INTO t VALUES (4, 2, 'a', TRUE);
CREATE TABLE e (id INT, x INT);
INSERT INTO e (id) VALUES (1);
INSERT INTO e (id) VALUES (2);
`); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT * FROM t WHERE num > 1",
		"SELECT * FROM t WHERE num IS NULL",
		"SELECT * FROM t WHERE s = 'a'",
		"SELECT * FROM t WHERE s = 'A'", // equality is exact, not folded
		"SELECT * FROM t WHERE s < 'b'", // ordering folds case
		"SELECT * FROM t WHERE b",       // bool column: kindOther, generic path
		"SELECT * FROM t WHERE id",
		"SELECT * FROM t WHERE num BETWEEN 0 AND 2",
		"SELECT * FROM t WHERE id IN (1, NULL)",
		"SELECT * FROM t WHERE id NOT IN (1, 2, 4)",
		"SELECT COUNT(num), SUM(num), MIN(num), MAX(s) FROM t",
		"SELECT num, COUNT(*) FROM t GROUP BY num",
		"SELECT s, COUNT(*) FROM t GROUP BY s",
		// All-NULL column: kindEmpty kernels and folds.
		"SELECT * FROM e WHERE x > 0",
		"SELECT * FROM e WHERE x IS NULL",
		"SELECT COUNT(x), SUM(x), MIN(x) FROM e",
		"SELECT x, COUNT(*) FROM e GROUP BY x",
		// Join keyed on a column with NULLs, and on an all-NULL column.
		"SELECT a.id, b.id FROM t AS a JOIN t AS b ON a.num = b.num",
		"SELECT t.id, e.id FROM t LEFT JOIN e ON t.id = e.x",
		"SELECT t.id, e.id FROM t JOIN e ON t.id = e.x",
	}
	for _, q := range queries {
		runBoth(t, db, q)
	}
}

func TestColumnarQualification(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT * FROM singer", true},
		{"SELECT COUNT(*) FROM singer GROUP BY country", true},
		{"SELECT * FROM concert JOIN stadium ON concert.stadium_id = stadium.stadium_id", true},
		{"SELECT * FROM concert LEFT JOIN stadium ON concert.stadium_id = stadium.stadium_id", true},
		// Not qualified: derived table, cross join, compound, multi-join,
		// non-equi ON, same-side ON.
		{"SELECT * FROM (SELECT * FROM singer) AS s", false},
		{"SELECT * FROM singer CROSS JOIN stadium", false},
		{"SELECT name FROM singer UNION SELECT name FROM stadium", false},
		{"SELECT * FROM concert JOIN stadium ON concert.stadium_id = stadium.stadium_id JOIN singer ON singer.singer_id = concert.concert_id", false},
		{"SELECT * FROM concert JOIN stadium ON concert.stadium_id < stadium.stadium_id", false},
		{"SELECT * FROM concert AS c JOIN stadium AS s ON c.stadium_id = c.concert_id", false},
	}
	for _, c := range cases {
		sel, err := sqlparse.ParseSelect(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		p := PlanSelect(db, sel)
		vp := buildVecPlan(p)
		if vp.ok != c.want {
			t.Errorf("%s: qualified=%v, want %v", c.sql, vp.ok, c.want)
		}
	}
}

func TestColumnarCounters(t *testing.T) {
	db := testDB(t)
	h0, f0 := db.ColumnarStats()
	exAll := NewExecutor(db)
	exAll.SetColumnarMinRows(0)
	if _, err := exAll.Query("SELECT COUNT(*) FROM singer"); err != nil {
		t.Fatal(err)
	}
	h1, f1 := db.ColumnarStats()
	if h1 != h0+1 || f1 != f0 {
		t.Fatalf("expected a hit: hits %d->%d fallbacks %d->%d", h0, h1, f0, f1)
	}
	// The same aggregate on a default executor falls back: singer sits far
	// below DefaultColumnarMinRows.
	mustQuery(t, db, "SELECT COUNT(*) FROM singer")
	hm, fm := db.ColumnarStats()
	if hm != h1 || fm != f1+1 {
		t.Fatalf("expected a tiny-table fallback: hits %d->%d fallbacks %d->%d", h1, hm, f1, fm)
	}
	mustQuery(t, db, "SELECT name FROM singer UNION SELECT name FROM stadium")
	h2, f2 := db.ColumnarStats()
	if h2 != hm || f2 != fm+1 {
		t.Fatalf("expected a fallback: hits %d->%d fallbacks %d->%d", hm, h2, fm, f2)
	}
	// A disabled executor counts nothing.
	ex := NewExecutor(db)
	ex.SetColumnar(false)
	if _, err := ex.Query("SELECT COUNT(*) FROM singer"); err != nil {
		t.Fatal(err)
	}
	h3, f3 := db.ColumnarStats()
	if h3 != h2 || f3 != f2 {
		t.Fatalf("disabled executor moved counters: hits %d->%d fallbacks %d->%d", h2, h3, f2, f3)
	}
}

// TestColumnarMinRows pins the tiny-table aggregation floor: aggregated
// statements vectorize at DefaultColumnarMinRows rows and fall back one row
// under it, scans vectorize at any size, and SetColumnarMinRows(0) removes
// the floor — with identical results on every path.
func TestColumnarMinRows(t *testing.T) {
	db := NewDatabase("d")
	if err := db.LoadScript("CREATE TABLE big (id INT, grp TEXT);\nCREATE TABLE small (id INT, grp TEXT);"); err != nil {
		t.Fatal(err)
	}
	fill := func(name string, rows int) {
		tbl, _ := db.Table(name)
		for i := 0; i < rows; i++ {
			tbl.Rows = append(tbl.Rows, []Value{Int(int64(i)), Text(fmt.Sprintf("g%d", i%7))})
		}
	}
	fill("big", DefaultColumnarMinRows)
	fill("small", DefaultColumnarMinRows-1)
	agg := "SELECT grp, COUNT(*) FROM %s GROUP BY grp ORDER BY grp"
	scan := "SELECT id FROM %s WHERE id >= 3"
	check := func(ex *Executor, sql string, wantHit bool) {
		t.Helper()
		h0, f0 := db.ColumnarStats()
		if _, err := ex.Query(sql); err != nil {
			t.Fatal(err)
		}
		h1, f1 := db.ColumnarStats()
		if hit := h1 == h0+1 && f1 == f0; hit != wantHit {
			t.Errorf("%s: columnar hit=%v, want %v", sql, hit, wantHit)
		}
	}
	ex := NewExecutor(db)
	check(ex, fmt.Sprintf(agg, "big"), true)
	check(ex, fmt.Sprintf(agg, "small"), false)
	check(ex, fmt.Sprintf(scan, "big"), true)
	check(ex, fmt.Sprintf(scan, "small"), true)
	exAll := NewExecutor(db)
	exAll.SetColumnarMinRows(0)
	check(exAll, fmt.Sprintf(agg, "small"), true)
	for _, tbl := range []string{"big", "small"} {
		runBoth(t, db, fmt.Sprintf(agg, tbl))
	}
}

func TestColKindClassification(t *testing.T) {
	db := NewDatabase("d")
	if err := db.LoadScript(`
CREATE TABLE k (i INT, f REAL, m REAL, s TEXT, b BOOL, e INT, mx TEXT);
INSERT INTO k (i, f, m, s, b, mx) VALUES (1, 1.5, 2, 'x', TRUE, 'a');
INSERT INTO k (i, f, m, s, b, mx) VALUES (2, 2.5, 2.5, 'y', FALSE, '3');
`); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("k")
	// DDL coerces by column type, so mixed-type columns can't be scripted;
	// patch rows directly to get an int/float mix and a text/number mix.
	tbl.Rows[0][2] = Int(2)
	tbl.Rows[1][6] = Int(3)
	ct := db.colTable(tbl)
	wants := []colKind{kindInt, kindFloat, kindNum, kindString, kindOther, kindEmpty, kindOther}
	for i, want := range wants {
		if ct.cols[i].kind != want {
			t.Errorf("col %s: kind=%d want %d", tbl.Columns[i].Name, ct.cols[i].kind, want)
		}
	}
	// Cache invalidates on append.
	tbl.Rows = append(tbl.Rows, []Value{Null(), Null(), Null(), Null(), Null(), Null(), Null()})
	ct2 := db.colTable(tbl)
	if ct2 == ct || ct2.n != 3 {
		t.Fatalf("expected rebuild after append (n=%d)", ct2.n)
	}
	if !ct2.cols[0].null(2) {
		t.Fatal("appended NULL row not reflected in null bitmap")
	}
}

func TestColumnarLimitParity(t *testing.T) {
	db := testDB(t)
	for _, q := range []string{
		"SELECT name FROM singer LIMIT 0",
		"SELECT name FROM singer LIMIT 100",
		"SELECT name FROM singer LIMIT 2 OFFSET 100",
		"SELECT name FROM singer WHERE age > 1000 LIMIT 3",
	} {
		runBoth(t, db, q)
	}
}
