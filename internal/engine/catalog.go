package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// Column describes one column of a table.
type Column struct {
	Name string
	Type Type
}

// Table is an in-memory relation. Rows are slices parallel to Columns.
type Table struct {
	Name    string
	Columns []Column
	Rows    [][]Value
}

// ColumnIndex returns the index of the named column (case-insensitive), or
// -1 if absent.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Database is a named collection of tables. Loading (AddTable, ExecDDL,
// LoadScript) must happen-before any concurrent use; once loaded, a
// Database is read-only and safe for any number of concurrent Executors.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string

	// scanMu guards scanCache, the lazily built shared row environments
	// for base-table scans (see scanEnvs).
	scanMu    sync.Mutex
	scanCache map[scanKey][]*rowEnv

	// colMu guards colCache, the lazily built columnar projections of each
	// table (see columnar.go). Same staleness contract as scanCache: rows
	// can only be appended, so a length mismatch triggers a rebuild.
	colMu    sync.Mutex
	colCache map[*Table]*colTable

	// colHits/colFallbacks tally how many Run calls the vectorized columnar
	// path served versus routed to the row executor. Kept per database (not
	// package-global) so wiring code can register each corpus once without
	// double-counting when several systems share one metrics registry.
	colHits      atomic.Int64
	colFallbacks atomic.Int64
}

// ColumnarStats reports how many planned executions the vectorized columnar
// path served (hits) versus handed to the row-at-a-time executor
// (fallbacks). Counting happens in Executor.Run; the dynamic Select path and
// executors with SetColumnar(false) are not counted.
func (db *Database) ColumnarStats() (hits, fallbacks int64) {
	return db.colHits.Load(), db.colFallbacks.Load()
}

type scanKey struct {
	t     *Table
	alias string
}

// scanEnvs returns shared, read-only row environments for scanning t under
// the given lower-cased alias with no outer scope. They are built once per
// (table, alias) and reused by every query and executor: callers copy the
// returned pointer slice before compacting it and never mutate the
// environments themselves. The supported DDL surface can only append rows,
// so a length mismatch is the complete staleness signal and triggers a
// rebuild.
func (db *Database) scanEnvs(t *Table, alias string) []*rowEnv {
	key := scanKey{t: t, alias: alias}
	db.scanMu.Lock()
	defer db.scanMu.Unlock()
	if envs, ok := db.scanCache[key]; ok && len(envs) == len(t.Rows) {
		return envs
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = c.Name
	}
	envs := make([]*rowEnv, len(t.Rows))
	envStore := make([]rowEnv, len(t.Rows))
	bindStore := make([]binding, len(t.Rows))
	for i, r := range t.Rows {
		bindStore[i] = binding{alias: alias, cols: cols, vals: r}
		envStore[i] = rowEnv{bindings: bindStore[i : i+1 : i+1]}
		envs[i] = &envStore[i]
	}
	if db.scanCache == nil {
		db.scanCache = map[scanKey][]*rowEnv{}
	}
	db.scanCache[key] = envs
	return envs
}

// NewDatabase returns an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// AddTable registers a table; it replaces any existing table with the same
// (case-insensitive) name.
func (db *Database) AddTable(t *Table) {
	key := strings.ToLower(t.Name)
	if _, exists := db.tables[key]; !exists {
		db.order = append(db.order, key)
	}
	db.tables[key] = t
}

// Table looks up a table by case-insensitive name.
func (db *Database) Table(name string) (*Table, bool) {
	if db == nil {
		return nil, false
	}
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables in registration order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.tables[k])
	}
	return out
}

// ExecDDL applies a CREATE TABLE or INSERT statement to the database.
func (db *Database) ExecDDL(stmt sqlast.Statement) error {
	switch s := stmt.(type) {
	case *sqlast.CreateTableStmt:
		t := &Table{Name: s.Name}
		for _, c := range s.Columns {
			t.Columns = append(t.Columns, Column{Name: c.Name, Type: TypeFromSQL(c.Type)})
		}
		db.AddTable(t)
		return nil
	case *sqlast.InsertStmt:
		t, ok := db.Table(s.Table)
		if !ok {
			return fmt.Errorf("insert into unknown table %q", s.Table)
		}
		colIdx := make([]int, 0, len(t.Columns))
		if len(s.Columns) == 0 {
			for i := range t.Columns {
				colIdx = append(colIdx, i)
			}
		} else {
			for _, name := range s.Columns {
				i := t.ColumnIndex(name)
				if i < 0 {
					return fmt.Errorf("insert into %s: unknown column %q", s.Table, name)
				}
				colIdx = append(colIdx, i)
			}
		}
		for _, exprRow := range s.Rows {
			if len(exprRow) != len(colIdx) {
				return fmt.Errorf("insert into %s: %d values for %d columns", s.Table, len(exprRow), len(colIdx))
			}
			row := make([]Value, len(t.Columns))
			for i := range row {
				row[i] = Null()
			}
			for i, e := range exprRow {
				v, err := literalValue(e, t.Columns[colIdx[i]].Type)
				if err != nil {
					return fmt.Errorf("insert into %s: %w", s.Table, err)
				}
				row[colIdx[i]] = v
			}
			t.Rows = append(t.Rows, row)
		}
		return nil
	default:
		return fmt.Errorf("unsupported DDL statement %T", stmt)
	}
}

// literalValue evaluates the constant expressions INSERT supports.
func literalValue(e sqlast.Expr, t Type) (Value, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		switch x.Kind {
		case sqlast.LitNull:
			return Null(), nil
		case sqlast.LitBool:
			return Bool(x.Text == "TRUE"), nil
		case sqlast.LitString:
			// Parse against the column type, so 'x' into an INT column is
			// rejected rather than silently stored as text.
			return ParseLiteral(x.Text, t)
		case sqlast.LitNumber:
			if t == TypeInt || t == TypeFloat {
				return ParseLiteral(x.Text, t)
			}
			// Numeric literal into a TEXT column keeps its text.
			return Text(x.Text), nil
		}
	case *sqlast.Unary:
		if x.Op == sqlast.OpNeg {
			v, err := literalValue(x.X, t)
			if err != nil {
				return Value{}, err
			}
			switch v.T {
			case TypeInt:
				return Int(-v.I), nil
			case TypeFloat:
				return Float(-v.F), nil
			}
		}
	}
	return Value{}, fmt.Errorf("unsupported literal expression %T", e)
}

// LoadScript parses and applies a semicolon-separated DDL/DML script.
func (db *Database) LoadScript(src string) error {
	stmts, err := sqlparse.ParseScript(src)
	if err != nil {
		return err
	}
	for _, s := range stmts {
		if err := db.ExecDDL(s); err != nil {
			return err
		}
	}
	return nil
}
