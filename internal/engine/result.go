package engine

import (
	"sort"
	"strings"
)

// Result is the output of executing a SELECT.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Ordered is true when the query had an ORDER BY, in which case row
	// order is significant for equality.
	Ordered bool
}

// rowKey renders one row as a canonical string.
func rowKey(row []Value) string { return string(rowKeyAppend(nil, row)) }

// rowKeyAppend appends the row's dedup key to dst; callers that key many
// rows reuse one buffer and use map lookups on string(buf), which Go
// performs without allocating.
func rowKeyAppend(dst []byte, row []Value) []byte {
	for i, v := range row {
		if i > 0 {
			dst = append(dst, '\x1f')
		}
		dst = v.appendKey(dst)
	}
	return dst
}

// Fingerprint returns a canonical rendering of the result's data: ordered
// rows joined in order, unordered rows joined after sorting. Column names
// are excluded — execution-accuracy compares data, not header spelling.
func (r *Result) Fingerprint() string {
	keys := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		keys[i] = rowKey(row)
	}
	if !r.Ordered {
		sort.Strings(keys)
	}
	return strings.Join(keys, "\x1e")
}

// EqualResults implements the execution-match metric: identical column
// count, identical row multiset — compared in order as soon as either side
// imposed an ORDER BY. The asymmetric case matters: a prediction that drops
// the gold query's ORDER BY must count as wrong, exactly as in SPIDER-style
// execution-accuracy harnesses. Engine row order is deterministic, so the
// comparison is well-defined for the unordered side too.
func EqualResults(a, b *Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Columns) != len(b.Columns) || len(a.Rows) != len(b.Rows) {
		return false
	}
	ordered := a.Ordered || b.Ordered
	ka := make([]string, len(a.Rows))
	kb := make([]string, len(b.Rows))
	for i := range a.Rows {
		ka[i] = rowKey(a.Rows[i])
		kb[i] = rowKey(b.Rows[i])
	}
	if !ordered {
		sort.Strings(ka)
		sort.Strings(kb)
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	// If exactly one side imposed an order, the multiset comparison above
	// is the fair one (the unordered side may legally return any order).
	return true
}

// Format renders the result as an aligned text table for CLI/chat display.
func (r *Result) Format() string {
	if len(r.Rows) == 0 {
		return "(no rows)"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			s := v.String()
			cells[i][j] = s
			if j < len(widths) && len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		for j, s := range vals {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(s)
			for k := len(s); k < widths[j]; k++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	for j, w := range widths {
		if j > 0 {
			sb.WriteString("-+-")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}
