package engine

import (
	"fmt"
	"testing"
)

// unicodeDB is a tiny table of non-ASCII names for LIKE regressions.
func unicodeDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("unicode")
	script := `
CREATE TABLE people (id INT, name TEXT);
INSERT INTO people VALUES
 (1, 'José'),
 (2, 'Zoë'),
 (3, '日本語'),
 (4, 'abc'),
 (5, 'ÉCLAIR');
`
	if err := db.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestLikeMatchUnicode exercises the matcher directly: _ must consume one
// rune, not one byte, and % boundaries must never split a multi-byte
// sequence. The ASCII cases pin the fast path to the same semantics.
func TestLikeMatchUnicode(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"é", "_", true},   // one rune, two bytes
		{"é", "__", false}, // byte-wise matching made this true
		{"éa", "__", true},
		{"José", "Jos_", true},
		{"José", "J%É", true}, // case-insensitive across the fold
		{"日本語", "___", true},
		{"日本語", "日_語", true},
		{"日本語", "%本%", true},
		{"日本語", "日本", false},
		{"Zoë", "zo_", true},
		{"Zoë", "%ë", true},
		{"abc", "a_c", true}, // ASCII fast path
		{"abc", "a%", true},
		{"abc", "____", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// TestLikeUnicodeBothExecutors runs multi-byte LIKE patterns through the
// dynamic interpreter and the planned path; the two must agree with each
// other and with the rune-wise expectation.
func TestLikeUnicodeBothExecutors(t *testing.T) {
	db := unicodeDB(t)
	cases := []struct {
		pattern string
		want    []string
	}{
		{"Jos_", []string{"José"}}, // byte-wise saw 5 bytes and failed
		{"____", []string{"José"}},
		{"___", []string{"Zoë", "日本語", "abc"}},
		{"日_語", []string{"日本語"}},
		{"%本%", []string{"日本語"}},
		{"%ë", []string{"Zoë"}},
		{"z%", []string{"Zoë"}},
		{"é%", []string{"ÉCLAIR"}}, // fold on a multi-byte leading rune
	}
	for _, c := range cases {
		q := fmt.Sprintf("SELECT name FROM people WHERE name LIKE '%s' ORDER BY id", c.pattern)
		res, err := runBothWays(t, db, q)
		if err != nil {
			t.Fatalf("pattern %q: %v", c.pattern, err)
		}
		var got []string
		for _, row := range res.Rows {
			got = append(got, fmt.Sprint(row[0]))
		}
		if len(got) != len(c.want) {
			t.Errorf("pattern %q: got %v, want %v", c.pattern, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("pattern %q: got %v, want %v", c.pattern, got, c.want)
				break
			}
		}
	}
}
