package engine

import (
	"strings"
	"testing"
)

func res(ordered bool, rows ...[]Value) *Result {
	cols := []string{}
	if len(rows) > 0 {
		for i := range rows[0] {
			cols = append(cols, string(rune('a'+i)))
		}
	}
	return &Result{Columns: cols, Rows: rows, Ordered: ordered}
}

func TestEqualResultsUnorderedMultiset(t *testing.T) {
	a := res(false, []Value{Int(1)}, []Value{Int(2)})
	b := res(false, []Value{Int(2)}, []Value{Int(1)})
	if !EqualResults(a, b) {
		t.Error("unordered results should match as multisets")
	}
}

func TestEqualResultsOrderedSensitive(t *testing.T) {
	a := res(true, []Value{Int(1)}, []Value{Int(2)})
	b := res(true, []Value{Int(2)}, []Value{Int(1)})
	if EqualResults(a, b) {
		t.Error("ordered results must match in order")
	}
	c := res(true, []Value{Int(1)}, []Value{Int(2)})
	if !EqualResults(a, c) {
		t.Error("identical ordered results should match")
	}
}

func TestEqualResultsMixedOrderIsOrderSensitive(t *testing.T) {
	// A prediction that drops the gold ORDER BY must be able to fail: one
	// ordered side forces ordered comparison.
	a := res(true, []Value{Int(1)}, []Value{Int(2)})
	b := res(false, []Value{Int(2)}, []Value{Int(1)})
	if EqualResults(a, b) {
		t.Error("one ordered side must force order-sensitive comparison")
	}
	c := res(false, []Value{Int(1)}, []Value{Int(2)})
	if !EqualResults(a, c) {
		t.Error("same order should still match")
	}
}

func TestEqualResultsDifferentShape(t *testing.T) {
	a := res(false, []Value{Int(1)})
	b := res(false, []Value{Int(1)}, []Value{Int(1)})
	if EqualResults(a, b) {
		t.Error("different row counts must differ")
	}
	c := res(false, []Value{Int(1), Int(2)})
	if EqualResults(a, c) {
		t.Error("different column counts must differ")
	}
}

func TestEqualResultsMultisetDuplicates(t *testing.T) {
	a := res(false, []Value{Int(1)}, []Value{Int(1)}, []Value{Int(2)})
	b := res(false, []Value{Int(1)}, []Value{Int(2)}, []Value{Int(2)})
	if EqualResults(a, b) {
		t.Error("multiset cardinalities must match")
	}
}

func TestEqualResultsNumericTypeCollapse(t *testing.T) {
	a := res(false, []Value{Int(3)})
	b := res(false, []Value{Float(3.0)})
	if !EqualResults(a, b) {
		t.Error("COUNT-style int vs float results should compare equal")
	}
}

func TestEqualResultsNil(t *testing.T) {
	if !EqualResults(nil, nil) {
		t.Error("nil == nil")
	}
	if EqualResults(nil, res(false)) {
		t.Error("nil != non-nil")
	}
}

func TestFingerprintStability(t *testing.T) {
	a := res(false, []Value{Int(2)}, []Value{Int(1)})
	b := res(false, []Value{Int(1)}, []Value{Int(2)})
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("unordered fingerprint should be order-independent")
	}
	c := res(true, []Value{Int(2)}, []Value{Int(1)})
	d := res(true, []Value{Int(1)}, []Value{Int(2)})
	if c.Fingerprint() == d.Fingerprint() {
		t.Error("ordered fingerprint should be order-dependent")
	}
}

func TestFormatTable(t *testing.T) {
	r := &Result{
		Columns: []string{"Name", "Release Year"},
		Rows:    [][]Value{{Text("Tribal King"), Text("2016")}},
	}
	out := r.Format()
	if !strings.Contains(out, "Tribal King") || !strings.Contains(out, "Release Year") {
		t.Errorf("format output: %q", out)
	}
	empty := &Result{Columns: []string{"x"}}
	if empty.Format() != "(no rows)" {
		t.Errorf("empty format: %q", empty.Format())
	}
}
