// Package engine is an in-memory relational engine: a catalog of typed
// tables plus an executor for the sqlast SELECT surface. It exists so the
// evaluation harness can measure *execution accuracy* — the paper's metric —
// by really running gold and predicted SQL and comparing result sets.
package engine

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Type is the dynamic type of a Value.
type Type int

// Value types. Dates are stored as TEXT in ISO form (YYYY-MM-DD), which
// makes lexicographic comparison agree with chronological order.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	}
	return "?type?"
}

// Value is a dynamically typed SQL value.
type Value struct {
	T Type
	I int64
	F float64
	S string
	B bool
}

// Constructors.

// Null returns the SQL NULL value.
func Null() Value { return Value{T: TypeNull} }

// Int returns an integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Text returns a text value.
func Text(s string) Value { return Value{T: TypeText, S: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{T: TypeBool, B: b} }

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Truthy reports whether v counts as true in a filter. NULL is not true.
func (v Value) Truthy() bool {
	switch v.T {
	case TypeBool:
		return v.B
	case TypeInt:
		return v.I != 0
	case TypeFloat:
		return v.F != 0
	case TypeText:
		return v.S != ""
	}
	return false
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.T {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	}
	return 0, false
}

// String renders the value the way result tables display it.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeInt:
		return strconv.FormatInt(v.I, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TypeText:
		return v.S
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?value?"
}

// Key renders the value as a canonical map key. Integers and integral floats
// collapse to the same key so that e.g. COUNT results compare equal across
// numeric types.
func (v Value) Key() string { return string(v.appendKey(nil)) }

// appendKey appends the exact bytes Key returns to dst, letting hot dedup
// and grouping loops reuse one scratch buffer instead of allocating a
// string per value.
func (v Value) appendKey(dst []byte) []byte {
	switch v.T {
	case TypeNull:
		return append(dst, "\x00N"...)
	case TypeInt:
		return strconv.AppendInt(append(dst, '#'), v.I, 10)
	case TypeFloat:
		if v.F == float64(int64(v.F)) {
			return strconv.AppendInt(append(dst, '#'), int64(v.F), 10)
		}
		return strconv.AppendFloat(append(dst, '#'), v.F, 'g', -1, 64)
	case TypeText:
		return append(append(dst, 's'), v.S...)
	case TypeBool:
		if v.B {
			return append(dst, "#1"...)
		}
		return append(dst, "#0"...)
	}
	return append(dst, '?')
}

// Compare orders two values: -1, 0, +1. NULL sorts before everything.
// Numeric types compare numerically across int/float/bool; text compares
// lexicographically (case-insensitive, matching common collations used by
// NL2SQL evaluation harnesses). Mixed text/number falls back to the string
// rendering.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	af, aok := a.numeric()
	bf, bok := b.numeric()
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	as, bs := a.String(), b.String()
	if c := compareFold(as, bs); c != 0 {
		return c
	}
	return strings.Compare(as, bs)
}

// compareFold orders a and b exactly as comparing strings.ToLower(a) to
// strings.ToLower(b) would, without allocating the lowered copies. Lowered
// runes are compared in code-point order, which for UTF-8 text equals byte
// order of the lowered strings (no encoding is a prefix of another);
// invalid bytes decode to U+FFFD, the same replacement ToLower emits.
func compareFold(a, b string) int {
	for len(a) > 0 && len(b) > 0 {
		var ra, rb rune
		if c := a[0]; c < utf8.RuneSelf {
			ra, a = rune(c), a[1:]
		} else {
			r, size := utf8.DecodeRuneInString(a)
			ra, a = r, a[size:]
		}
		if c := b[0]; c < utf8.RuneSelf {
			rb, b = rune(c), b[1:]
		} else {
			r, size := utf8.DecodeRuneInString(b)
			rb, b = r, b[size:]
		}
		if ra == rb {
			continue
		}
		la, lb := lowerRune(ra), lowerRune(rb)
		if la != lb {
			if la < lb {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) > 0:
		return 1
	case len(b) > 0:
		return -1
	}
	return 0
}

func lowerRune(r rune) rune {
	if r < utf8.RuneSelf {
		if 'A' <= r && r <= 'Z' {
			return r + ('a' - 'A')
		}
		return r
	}
	return unicode.ToLower(r)
}

func (v Value) numeric() (float64, bool) {
	switch v.T {
	case TypeInt:
		return float64(v.I), true
	case TypeFloat:
		return v.F, true
	case TypeBool:
		if v.B {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Equal reports SQL equality (NULL never equals anything, including NULL).
// The second result is false when the comparison involves NULL.
func Equal(a, b Value) (eq, known bool) {
	if a.IsNull() || b.IsNull() {
		return false, false
	}
	return Compare(a, b) == 0, true
}

// ParseLiteral converts literal source text into a Value of the named
// column type. Used when loading INSERT fixtures.
func ParseLiteral(text string, t Type) (Value, error) {
	switch t {
	case TypeInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad int literal %q: %w", text, err)
		}
		return Int(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad float literal %q: %w", text, err)
		}
		return Float(f), nil
	case TypeBool:
		switch strings.ToUpper(text) {
		case "TRUE", "1":
			return Bool(true), nil
		case "FALSE", "0":
			return Bool(false), nil
		}
		return Value{}, fmt.Errorf("bad bool literal %q", text)
	default:
		return Text(text), nil
	}
}

// TypeFromSQL maps a CREATE TABLE type name onto an engine type.
func TypeFromSQL(name string) Type {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER":
		return TypeInt
	case "REAL", "FLOAT":
		return TypeFloat
	case "BOOL", "BOOLEAN":
		return TypeBool
	default: // TEXT, VARCHAR, DATE, anything else
		return TypeText
	}
}
