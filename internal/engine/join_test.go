package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"fisql/internal/sqlparse"
)

// joinDB builds a fixture with NULL keys, duplicate keys and mixed-type
// keys for the hash-join edge cases.
func joinDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("join_edge")
	script := `
CREATE TABLE l (id INT, tag TEXT);
INSERT INTO l VALUES (1, 'a'), (2, 'b'), (NULL, 'c'), (2, 'd'), (5, 'e');
CREATE TABLE r (id INT, val TEXT);
INSERT INTO r VALUES (2, 'x'), (NULL, 'y'), (2, 'z'), (9, 'w'), (1, 'v');
CREATE TABLE mixed (k TEXT, note TEXT);
INSERT INTO mixed VALUES ('2', 'two'), ('true', 'yes'), ('5', 'five');
`
	if err := db.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

// assertHashNestedAgree runs sql with the hash path enabled and disabled and
// requires byte-identical formatted results (row order included).
func assertHashNestedAgree(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	sel, err := sqlparse.ParseSelect(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	nested := NewExecutor(db)
	nested.SetHashJoin(false)
	nRes, nErr := nested.Select(sel)
	hRes, hErr := NewExecutor(db).Select(sel)
	if (nErr == nil) != (hErr == nil) || (nErr != nil && nErr.Error() != hErr.Error()) {
		t.Fatalf("query %q: nested err %v, hash err %v", sql, nErr, hErr)
	}
	if nErr != nil {
		return nil
	}
	if nRes.Format() != hRes.Format() {
		t.Fatalf("query %q:\nnested:\n%s\nhash:\n%s", sql, nRes.Format(), hRes.Format())
	}
	return hRes
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	db := joinDB(t)
	res := assertHashNestedAgree(t, db, "SELECT l.tag, r.val FROM l JOIN r ON l.id = r.id")
	// l NULL row and r NULL row must both be absent: 1-v, plus 2-{x,z} for
	// each of the two left id=2 rows.
	if len(res.Rows) != 5 {
		t.Fatalf("expected 6 rows (NULL keys dropped), got %d:\n%s", len(res.Rows), res.Format())
	}
	for _, row := range res.Rows {
		if row[0].String() == "c" || row[1].String() == "y" {
			t.Fatalf("NULL-keyed row matched: %s", res.Format())
		}
	}
}

func TestHashJoinLeftJoinNullExtension(t *testing.T) {
	db := joinDB(t)
	res := assertHashNestedAgree(t, db, "SELECT l.tag, r.val FROM l LEFT JOIN r ON l.id = r.id")
	// Unmatched left rows (id NULL and id 5) null-extend, in left order.
	if len(res.Rows) != 7 {
		t.Fatalf("expected 8 rows, got %d:\n%s", len(res.Rows), res.Format())
	}
	nulls := 0
	for _, row := range res.Rows {
		if row[1].IsNull() {
			nulls++
		}
	}
	if nulls != 2 {
		t.Fatalf("expected 2 null-extended rows, got %d:\n%s", nulls, res.Format())
	}
}

func TestHashJoinDuplicateKeys(t *testing.T) {
	db := joinDB(t)
	// Two left id=2 rows each match two right id=2 rows.
	res := assertHashNestedAgree(t, db, "SELECT l.tag, r.val FROM l JOIN r ON l.id = r.id WHERE l.id = 2")
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows from the 2x2 duplicate keys, got %d", len(res.Rows))
	}
}

// TestHashJoinMixedTypeDomainFallsBack: Compare treats Text("5") equal to
// Int(5), which a string-keyed hash table cannot reproduce. The executor
// must detect the mixed domain and take the nested loop, keeping results
// identical.
func TestHashJoinMixedTypeDomainFallsBack(t *testing.T) {
	db := joinDB(t)
	res := assertHashNestedAgree(t, db, "SELECT l.tag, mixed.note FROM l JOIN mixed ON l.id = mixed.k")
	// Int 2 (twice), 2 and 5 compare equal to Text '2' and '5'.
	if len(res.Rows) != 3 {
		t.Fatalf("expected 3 cross-type matches, got %d:\n%s", len(res.Rows), res.Format())
	}
}

// TestHashJoinAliasShadowing: the inner query joins under an alias that also
// exists in the outer scope; the join key must resolve to the inner binding.
func TestHashJoinAliasShadowing(t *testing.T) {
	db := testDB(t)
	queries := []string{
		// Inner s shadows outer s inside the EXISTS join.
		"SELECT s.name FROM singer AS s WHERE EXISTS (SELECT 1 FROM concert AS s JOIN singer_in_concert AS sc ON s.concert_id = sc.concert_id WHERE sc.singer_id = 3)",
		// Correlated reference from the ON clause to the outer row keeps the
		// nested loop (the key is not a two-sided column equality).
		"SELECT s.name FROM singer AS s WHERE EXISTS (SELECT 1 FROM singer_in_concert AS sc JOIN concert AS c ON c.concert_id = sc.concert_id AND sc.singer_id = s.id)",
	}
	for _, q := range queries {
		assertHashNestedAgree(t, db, q)
	}
}

func TestHashJoinPreservesRowOrderUnderLimit(t *testing.T) {
	db := testDB(t)
	// No ORDER BY: LIMIT keeps the first rows in join emission order, which
	// must be identical on both paths.
	assertHashNestedAgree(t, db,
		"SELECT s.name, sc.concert_id FROM singer AS s JOIN singer_in_concert AS sc ON s.id = sc.singer_id LIMIT 4")
}

func TestHashJoinThreeWay(t *testing.T) {
	db := testDB(t)
	assertHashNestedAgree(t, db,
		"SELECT s.name, c.concert_name FROM singer AS s JOIN singer_in_concert AS sc ON s.id = sc.singer_id JOIN concert AS c ON sc.concert_id = c.concert_id")
}

func TestHashJoinResidualConjuncts(t *testing.T) {
	db := testDB(t)
	assertHashNestedAgree(t, db,
		"SELECT s.name, c.concert_name FROM singer AS s JOIN singer_in_concert AS sc ON s.id = sc.singer_id AND sc.concert_id > 2 AND s.age < 50")
}

// TestScanRowCap: maxRows applies to base-table scans and subquery
// materialization, not only join outputs.
func TestScanRowCap(t *testing.T) {
	db := NewDatabase("big")
	var sb strings.Builder
	sb.WriteString("CREATE TABLE big (x INT);\nINSERT INTO big VALUES (0)")
	for i := 1; i < 300; i++ {
		fmt.Fprintf(&sb, ", (%d)", i)
	}
	sb.WriteString(";")
	if err := db.LoadScript(sb.String()); err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(db)
	ex.maxRows = 100
	if _, err := ex.Query("SELECT COUNT(*) FROM big"); err == nil {
		t.Error("scan past maxRows did not error")
	}
	// Subquery cap: each base scan (300 rows) stays under the 350 cap, but
	// the materialized UNION ALL (600 rows) exceeds it.
	ex2 := NewExecutor(db)
	ex2.maxRows = 350
	if _, err := ex2.Query("SELECT COUNT(*) FROM (SELECT x FROM big WHERE x < 50) AS s"); err != nil {
		t.Errorf("small subquery should pass: %v", err)
	}
	if _, err := ex2.Query("SELECT COUNT(*) FROM (SELECT x FROM big UNION ALL SELECT x FROM big) AS s"); err == nil {
		t.Error("subquery materialization past maxRows did not error")
	}
}

// TestLikePathological pins the iterative matcher: the old recursive
// implementation is exponential on stacked %a% groups and would hang here.
func TestLikePathological(t *testing.T) {
	s := strings.Repeat("a", 60) + "b"
	pattern := strings.Repeat("%a", 18) + "%c"
	start := time.Now()
	if likeMatch(s, pattern) {
		t.Error("pattern should not match")
	}
	if likeMatch(strings.Repeat("a", 200)+"c", pattern) != true {
		t.Error("pattern should match")
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("pathological LIKE took %v; matcher is not linear in backtracking", d)
	}

	db := testDB(t)
	res, err := NewExecutor(db).Query("SELECT name FROM singer WHERE name LIKE '%o%e%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // Joe Sharp, Rose White
		t.Fatalf("LIKE '%%o%%e%%' matched %d rows, want 2:\n%s", len(res.Rows), res.Format())
	}
}
