package llm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingBackend implements BatchCompleter and records every batch it
// receives. Responses echo the prompt so callers can verify slot routing.
type recordingBackend struct {
	mu      sync.Mutex
	batches [][]Request
	// errFor fails individual requests by prompt; errAll poisons batches.
	errFor map[string]error
	errAll error
	// block, when non-nil, is closed to release CompleteBatch calls.
	block chan struct{}
}

func (r *recordingBackend) Complete(ctx context.Context, req Request) (Response, error) {
	res, err := r.CompleteBatch(ctx, []Request{req})
	if err != nil {
		return Response{}, err
	}
	return res[0].Response, res[0].Err
}

func (r *recordingBackend) CompleteBatch(ctx context.Context, reqs []Request) ([]BatchResult, error) {
	if r.block != nil {
		select {
		case <-r.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	r.mu.Lock()
	cp := make([]Request, len(reqs))
	copy(cp, reqs)
	r.batches = append(r.batches, cp)
	r.mu.Unlock()
	if r.errAll != nil {
		return nil, r.errAll
	}
	out := make([]BatchResult, len(reqs))
	for i, req := range reqs {
		if err := r.errFor[req.Prompt]; err != nil {
			out[i].Err = err
			continue
		}
		out[i].Response = Response{Text: "echo:" + req.Prompt}
	}
	return out, nil
}

func (r *recordingBackend) snapshot() [][]Request {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([][]Request(nil), r.batches...)
}

func TestBatcherCoalescesConcurrentCalls(t *testing.T) {
	be := &recordingBackend{}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 8, MaxWait: 50 * time.Millisecond})
	const n = 8 // == MaxBatch so the batch flushes on full, not the deadline
	var wg sync.WaitGroup
	errs := make([]error, n)
	resps := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = b.Complete(context.Background(),
				Request{Prompt: fmt.Sprintf("q%d", i)})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("echo:q%d", i); resps[i].Text != want {
			t.Errorf("call %d routed to the wrong slot: got %q want %q", i, resps[i].Text, want)
		}
	}
	batches := be.snapshot()
	total := 0
	for _, bt := range batches {
		total += len(bt)
	}
	if total != n {
		t.Errorf("backend saw %d requests across %d batches, want %d", total, len(batches), n)
	}
	if len(batches) == n {
		t.Errorf("every call ran alone (%d single-request batches): nothing coalesced", n)
	}
	st := b.Stats()
	if st.Calls != n || st.Batched != n {
		t.Errorf("stats: calls=%d batched=%d, want %d/%d", st.Calls, st.Batched, n, n)
	}
	if st.FullFlushes == 0 && st.DeadlineFlushes == 0 {
		t.Error("no flush was counted")
	}
}

func TestBatcherFlushesOnDeadline(t *testing.T) {
	be := &recordingBackend{}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 64, MaxWait: time.Millisecond})
	resp, err := b.Complete(context.Background(), Request{Prompt: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "echo:solo" {
		t.Errorf("resp %q", resp.Text)
	}
	if st := b.Stats(); st.DeadlineFlushes != 1 || st.FullFlushes != 0 {
		t.Errorf("flush stats: deadline=%d full=%d, want 1/0", st.DeadlineFlushes, st.FullFlushes)
	}
}

func TestBatcherDedupsIdenticalRequests(t *testing.T) {
	be := &recordingBackend{block: make(chan struct{})}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 64, MaxWait: time.Millisecond})
	const n = 4
	var wg sync.WaitGroup
	resps := make([]Response, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], _ = b.Complete(context.Background(), Request{Prompt: "same"})
		}(i)
	}
	// Release the backend once all callers joined one batch (the block also
	// keeps the deadline flush from racing ahead of the joiners).
	time.Sleep(20 * time.Millisecond)
	close(be.block)
	wg.Wait()
	for i, r := range resps {
		if r.Text != "echo:same" {
			t.Errorf("caller %d: %q", i, r.Text)
		}
	}
	st := b.Stats()
	if st.Deduped == 0 {
		t.Error("no call was deduplicated")
	}
	if st.Calls != n || st.Batched+st.Deduped != n {
		t.Errorf("stats: calls=%d batched=%d deduped=%d", st.Calls, st.Batched, st.Deduped)
	}
}

func TestBatcherIsolatesPerRequestErrors(t *testing.T) {
	boom := errors.New("boom")
	be := &recordingBackend{errFor: map[string]error{"bad": boom}}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 2, MaxWait: 50 * time.Millisecond})
	var wg sync.WaitGroup
	var goodResp Response
	var goodErr, badErr error
	wg.Add(2)
	go func() { defer wg.Done(); goodResp, goodErr = b.Complete(context.Background(), Request{Prompt: "good"}) }()
	go func() { defer wg.Done(); _, badErr = b.Complete(context.Background(), Request{Prompt: "bad"}) }()
	wg.Wait()
	if goodErr != nil || goodResp.Text != "echo:good" {
		t.Errorf("good call poisoned by its batchmate: resp=%q err=%v", goodResp.Text, goodErr)
	}
	if !errors.Is(badErr, boom) {
		t.Errorf("bad call: err=%v, want %v", badErr, boom)
	}
}

// fallbackClient does NOT implement BatchCompleter, forcing the batcher's
// concurrent per-request fallback.
type fallbackClient struct {
	calls atomic.Int64
}

func (f *fallbackClient) Complete(_ context.Context, req Request) (Response, error) {
	f.calls.Add(1)
	return Response{Text: "echo:" + req.Prompt}, nil
}

func TestBatcherFallsBackToPerRequestCalls(t *testing.T) {
	fc := &fallbackClient{}
	b := NewBatcher(fc, BatcherConfig{MaxBatch: 4, MaxWait: 20 * time.Millisecond})
	var wg sync.WaitGroup
	resps := make([]Response, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], _ = b.Complete(context.Background(), Request{Prompt: fmt.Sprintf("q%d", i)})
		}(i)
	}
	wg.Wait()
	for i, r := range resps {
		if want := fmt.Sprintf("echo:q%d", i); r.Text != want {
			t.Errorf("call %d: got %q want %q", i, r.Text, want)
		}
	}
	if got := fc.calls.Load(); got != 4 {
		t.Errorf("inner Complete calls: %d, want 4", got)
	}
}

func TestBatcherCanceledCallerAbandonsWithoutPoisoningBatch(t *testing.T) {
	be := &recordingBackend{block: make(chan struct{})}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 64, MaxWait: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var canceledErr, survivorErr error
	var survivorResp Response
	wg.Add(2)
	go func() { defer wg.Done(); _, canceledErr = b.Complete(ctx, Request{Prompt: "doomed"}) }()
	go func() {
		defer wg.Done()
		survivorResp, survivorErr = b.Complete(context.Background(), Request{Prompt: "alive"})
	}()
	time.Sleep(10 * time.Millisecond) // both joined; backend blocked
	cancel()
	time.Sleep(10 * time.Millisecond)
	close(be.block)
	wg.Wait()
	if !errors.Is(canceledErr, context.Canceled) {
		t.Errorf("canceled caller: err=%v", canceledErr)
	}
	if survivorErr != nil || survivorResp.Text != "echo:alive" {
		t.Errorf("survivor: resp=%q err=%v — one caller's cancellation must not kill the batch",
			survivorResp.Text, survivorErr)
	}
}

func TestBatcherAllAbandonedCancelsBackendCall(t *testing.T) {
	be := &recordingBackend{block: make(chan struct{})}
	defer close(be.block)
	b := NewBatcher(be, BatcherConfig{MaxBatch: 64, MaxWait: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Complete(ctx, Request{Prompt: fmt.Sprintf("q%d", i)})
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	cancel() // every caller abandons; the backend ctx must be canceled
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("caller %d: err=%v", i, err)
		}
	}
	// The blocked CompleteBatch must return via the batch ctx without doing
	// work: the backend records a batch only on the success path.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && len(be.snapshot()) == 0 &&
		b.Stats().AbandonedBatches == 0 && b.Stats().Batches == 0 {
		time.Sleep(time.Millisecond)
	}
	if got := be.snapshot(); len(got) != 0 {
		t.Errorf("abandoned batch still completed %d batches against the backend", len(got))
	}
}

func TestBatcherMismatchedBackendLengthFailsEverySlot(t *testing.T) {
	be := &shortBackend{}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 2, MaxWait: 20 * time.Millisecond})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Complete(context.Background(), Request{Prompt: fmt.Sprintf("q%d", i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("caller %d: expected an error from the short backend", i)
		}
	}
}

// shortBackend returns fewer results than requests — a broken backend the
// batcher must not index out of range on.
type shortBackend struct{}

func (s *shortBackend) Complete(context.Context, Request) (Response, error) {
	return Response{Text: "ok"}, nil
}

func (s *shortBackend) CompleteBatch(_ context.Context, reqs []Request) ([]BatchResult, error) {
	if len(reqs) < 2 {
		out := make([]BatchResult, len(reqs))
		for i := range out {
			out[i].Response = Response{Text: "ok"}
		}
		return out, nil
	}
	return []BatchResult{{Response: Response{Text: "ok"}}}, nil
}

// TestBatcherStress hammers one batcher from many goroutines with mixed
// cancellation under -race: every non-canceled call must get its own
// prompt's echo back.
func TestBatcherStress(t *testing.T) {
	be := &recordingBackend{}
	b := NewBatcher(be, BatcherConfig{MaxBatch: 4, MaxWait: 100 * time.Microsecond, MaxConcurrent: 2})
	const workers = 16
	const perWorker = 50
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (w+i)%5 == 0 {
					ctx, cancel = context.WithTimeout(ctx, 50*time.Microsecond)
				}
				prompt := fmt.Sprintf("w%d-i%d", w, i%7)
				resp, err := b.Complete(ctx, Request{Prompt: prompt})
				cancel()
				if err == nil && resp.Text != "echo:"+prompt {
					failures.Add(1)
				}
				if err != nil && !errors.Is(err, context.DeadlineExceeded) &&
					!errors.Is(err, context.Canceled) {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d calls got a wrong slot or an unexpected error", n)
	}
	st := b.Stats()
	if st.Calls != workers*perWorker {
		t.Errorf("calls=%d, want %d", st.Calls, workers*perWorker)
	}
}
