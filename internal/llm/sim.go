package llm

import (
	"context"
	"fmt"
	"strings"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/nl2sql"
	"fisql/internal/prompt"
	"fisql/internal/schema"
)

// Sim is the deterministic simulated chat model. It understands the prompt
// layouts of internal/prompt and dispatches:
//
//   - NL2SQL prompts: resolve the question against its latent corpus
//     knowledge and emit the gold SQL — unless the question trips a planted
//     ambiguity trap that no in-prompt demonstration disambiguates, in
//     which case it emits the naive misreading. This reproduces the paper's
//     zero-shot vs RAG accuracy gap mechanically.
//   - Repair prompts (Figure 6): apply the feedback with the rule engine of
//     internal/nl2sql, using the routed operation type when the prompt
//     carries routed demonstrations (Figure 5) and a keyword guess
//     otherwise — the FISQL vs FISQL(-Routing) difference.
//   - Routing prompts: classify the feedback like the few-shot router.
//   - Rewrite prompts: fold the feedback into the question.
//
// A Sim is safe for concurrent use: every map is populated in NewSim and
// only read afterwards, and each Complete call works on per-call state.
type Sim struct {
	worlds []*dataset.Dataset

	byQuestion map[string]resolved
	// byContain holds every example's normalized trimmed question in corpus
	// order, precomputed so the containment fallback of resolve does not
	// re-normalize the whole corpus on every rewritten-question lookup.
	byContain []containEntry
	lexByDB   map[string]*schema.Lexicon
}

type resolved struct {
	ds *dataset.Dataset
	ex *dataset.Example
}

type containEntry struct {
	norm string
	r    resolved
}

// NewSim builds a simulator whose latent knowledge covers the given
// corpora.
func NewSim(worlds ...*dataset.Dataset) *Sim {
	s := &Sim{
		worlds:     worlds,
		byQuestion: make(map[string]resolved),
		lexByDB:    make(map[string]*schema.Lexicon),
	}
	for _, w := range worlds {
		for _, e := range w.Examples {
			r := resolved{ds: w, ex: e}
			s.byQuestion[schema.Normalize(e.Question)] = r
			if trimmed := strings.TrimRight(e.Question, "?. "); trimmed != "" {
				s.byContain = append(s.byContain, containEntry{norm: schema.Normalize(trimmed), r: r})
			}
		}
		for db, lx := range w.Lexicons {
			s.lexByDB[db] = lx
		}
	}
	return s
}

// Complete implements Client.
func (s *Sim) Complete(_ context.Context, req Request) (Response, error) {
	if strings.TrimSpace(req.Prompt) == "" {
		return Response{}, ErrEmptyPrompt
	}
	p, err := prompt.Parse(req.Prompt)
	if err != nil {
		return Response{}, fmt.Errorf("sim: cannot understand prompt: %w", err)
	}
	var text string
	switch p.Kind {
	case prompt.KindRouting:
		text = feedback.ClassifyRouted(p.Feedback).String()
	case prompt.KindRewrite:
		text = fmt.Sprintf("%s (%s)", strings.TrimRight(p.Question, "?. "), p.Feedback)
	case prompt.KindRepair:
		text = s.repair(p)
	default:
		text = s.generate(p)
	}
	return Response{
		Text:             text,
		PromptTokens:     CountTokens(req.Prompt),
		CompletionTokens: CountTokens(text),
	}, nil
}

// CompleteBatch implements BatchCompleter: one call answers every request
// of a Batcher flush. The simulation has no per-call setup to amortize, so
// this is semantically a loop over Complete — but it exercises the exact
// interface a real batched backend plugs into, and per-request failures
// (an empty prompt) stay isolated to their slot instead of failing the
// batch.
func (s *Sim) CompleteBatch(ctx context.Context, reqs []Request) ([]BatchResult, error) {
	out := make([]BatchResult, len(reqs))
	for i := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i].Response, out[i].Err = s.Complete(ctx, reqs[i])
	}
	return out, nil
}

// resolve finds the corpus example behind a question: exact match first,
// then containment (a rewritten question embeds the original).
func (s *Sim) resolve(question string) (resolved, bool, bool) {
	key := schema.Normalize(question)
	if r, ok := s.byQuestion[key]; ok {
		return r, false, true
	}
	for _, c := range s.byContain {
		if strings.Contains(key, c.norm) {
			return c.r, true, true
		}
	}
	return resolved{}, false, false
}

// generate answers an NL2SQL prompt.
func (s *Sim) generate(p *prompt.Parsed) string {
	r, rewritten, ok := s.resolve(p.Question)
	if !ok {
		// Outside the latent corpus: fall back to heuristic linking over
		// the prompt's schema.
		if lx := s.lexByDB[p.SchemaName]; lx != nil {
			if sql, ok := nl2sql.Generate(lx, p.Question); ok {
				return sql
			}
		}
		return "SELECT NULL -- question not understood"
	}
	e := r.ex
	demoNorms := make([]string, len(p.Demos))
	for i, d := range p.Demos {
		demoNorms[i] = schema.Normalize(d.Question)
	}
	var mask uint8
	for i, t := range e.Traps {
		if s.trapAvoided(t, demoNorms, rewritten) {
			continue
		}
		mask |= 1 << i
	}
	sql, ok := e.SQLFor(mask)
	if !ok {
		sql = e.WrongSQL()
	}
	return sql
}

// trapAvoided decides whether the model dodges one planted trap given the
// prompt's demonstration questions (pre-normalized by the caller).
func (s *Sim) trapAvoided(t dataset.Trap, demoNorms []string, rewritten bool) bool {
	// An in-context demonstration using the ambiguous phrase shows the
	// correct reading (the same containment rule as dataset.ContainsPhrase).
	if t.Phrase != "" {
		np := schema.Normalize(t.Phrase)
		for _, nd := range demoNorms {
			if strings.Contains(nd, np) {
				return true
			}
		}
	}
	// A rewritten question that folds clarifying feedback in rescues the
	// subset of misunderstandings the clarification actually reaches
	// (Query-Rewrite baseline; see DESIGN.md on this calibrated
	// assumption).
	if rewritten && t.RewriteFixable {
		return true
	}
	return false
}

// repair answers a feedback-incorporation prompt.
func (s *Sim) repair(p *prompt.Parsed) string {
	lx := s.lexiconFor(p)
	if lx == nil {
		return p.PrevSQL
	}
	op := feedback.ClassifyNaive(p.Feedback)
	if p.RoutedOp != nil {
		op = *p.RoutedOp
	}
	rep := &nl2sql.Repairer{Lex: lx}
	sql, _ := rep.Repair(p.PrevSQL, p.Feedback, op, p.Highlight)
	return sql
}

func (s *Sim) lexiconFor(p *prompt.Parsed) *schema.Lexicon {
	if r, _, ok := s.resolve(p.Question); ok {
		if lx := r.ds.Lexicons[r.ex.DB]; lx != nil {
			return lx
		}
	}
	return s.lexByDB[p.SchemaName]
}
