package llm

import (
	"context"
	"strings"
	"sync"
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/dataset/spider"
	"fisql/internal/prompt"
)

var (
	simOnce sync.Once
	simDS   *dataset.Dataset
	simAep  *dataset.Dataset
	sim     *Sim
	simErr  error
)

func getSim(t *testing.T) (*Sim, *dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	simOnce.Do(func() {
		simDS, simErr = spider.Build()
		if simErr != nil {
			return
		}
		simAep, simErr = aep.Build()
		if simErr != nil {
			return
		}
		sim = NewSim(simDS, simAep)
	})
	if simErr != nil {
		t.Fatal(simErr)
	}
	return sim, simDS, simAep
}

// promptFor builds a zero-shot NL2SQL prompt for an example.
func promptFor(ds *dataset.Dataset, e *dataset.Example) string {
	return prompt.NL2SQL(ds.Schemas[e.DB], nil, e.Question)
}

func complete(t *testing.T, s *Sim, p string) string {
	t.Helper()
	resp, err := s.Complete(context.Background(), Request{Prompt: p})
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	return resp.Text
}

func TestSimZeroShotFallsIntoTrap(t *testing.T) {
	s, ds, _ := getSim(t)
	for _, e := range ds.Errors()[:5] {
		p := prompt.NL2SQL(ds.Schemas[e.DB], nil, e.Question)
		got := complete(t, s, p)
		if got != e.WrongSQL() {
			t.Errorf("%s: zero-shot should produce the naive misreading\n got %q\nwant %q", e.ID, got, e.WrongSQL())
		}
	}
}

func TestSimCleanExampleCorrect(t *testing.T) {
	s, ds, _ := getSim(t)
	n := 0
	for _, e := range ds.Examples {
		if len(e.Traps) > 0 {
			continue
		}
		p := prompt.NL2SQL(ds.Schemas[e.DB], nil, e.Question)
		if got := complete(t, s, p); got != e.Gold {
			t.Errorf("%s: clean example answered wrongly: %q", e.ID, got)
		}
		if n++; n >= 5 {
			break
		}
	}
}

func TestSimDemoDisambiguates(t *testing.T) {
	s, ds, _ := getSim(t)
	var e *dataset.Example
	for _, cand := range ds.Errors() {
		if len(cand.Traps) == 1 && cand.Traps[0].DemoCovered {
			e = cand
			break
		}
	}
	// Covered traps were consumed by RAG; find any single-trap error and
	// hand-build the covering demo instead.
	if e == nil {
		for _, cand := range ds.Errors() {
			if len(cand.Traps) == 1 {
				e = cand
				break
			}
		}
	}
	if e == nil {
		t.Skip("no single-trap errors")
	}
	demo := prompt.Demo{Question: "context: " + e.Traps[0].Phrase + ", resolved", SQL: e.Gold}
	p := prompt.NL2SQL(ds.Schemas[e.DB], []prompt.Demo{demo}, e.Question)
	if got := complete(t, s, p); got != e.Gold {
		t.Errorf("demo containing the trap phrase should disambiguate\n got %q\nwant %q", got, e.Gold)
	}
	// An unrelated demo must not.
	p = prompt.NL2SQL(ds.Schemas[e.DB], []prompt.Demo{{Question: "something unrelated entirely", SQL: "SELECT 1"}}, e.Question)
	if got := complete(t, s, p); got != e.WrongSQL() {
		t.Errorf("unrelated demo should not disambiguate, got %q", got)
	}
}

func TestSimRoutingPrompt(t *testing.T) {
	s, _, _ := getSim(t)
	got := complete(t, s, prompt.Routing("we are in 2024"))
	if got != "Edit" {
		t.Errorf("routing: %q", got)
	}
	got = complete(t, s, prompt.Routing("remove the duplicate entries"))
	if got != "Add" {
		t.Errorf("router should resolve dedup idiom to Add: %q", got)
	}
}

func TestSimRewritePrompt(t *testing.T) {
	s, _, _ := getSim(t)
	got := complete(t, s, prompt.Rewrite("How many singers are there?", "we are in 2024"))
	if !strings.Contains(got, "How many singers are there") || !strings.Contains(got, "we are in 2024") {
		t.Errorf("rewrite: %q", got)
	}
}

func TestSimRepairPrompt(t *testing.T) {
	s, _, ae := getSim(t)
	var e *dataset.Example
	for _, cand := range ae.AnnotatedErrors() {
		if len(cand.Traps) == 1 && cand.Traps[0].Kind == dataset.WrongLiteral &&
			!cand.Traps[0].Misaligned && !cand.Traps[0].Vague && !cand.Traps[0].GroundingHard &&
			strings.Contains(strings.ToLower(cand.Traps[0].Column), "time") {
			e = cand
			break
		}
	}
	if e == nil {
		t.Skip("no year-trap example")
	}
	op := dataset.OpEdit
	p := prompt.Repair(ae.Schemas[e.DB], nil, nil, &op, e.Question, e.WrongSQL(), "we are in 2024", nil)
	got := complete(t, s, p)
	if got != e.Gold {
		t.Errorf("repair:\n got %q\nwant %q", got, e.Gold)
	}
}

func TestSimUnknownQuestionFallback(t *testing.T) {
	s, ds, _ := getSim(t)
	p := prompt.NL2SQL(ds.Schemas["concert_singer"], nil, "How many singers are there right now??")
	got := complete(t, s, p)
	// Falls back to heuristic linking (or the not-understood marker); it
	// must still be non-empty deterministic text.
	if got == "" {
		t.Error("empty fallback response")
	}
}

func TestSimEmptyPrompt(t *testing.T) {
	s, _, _ := getSim(t)
	if _, err := s.Complete(context.Background(), Request{Prompt: "  "}); err == nil {
		t.Error("empty prompt should error")
	}
}

func TestSimTokenAccounting(t *testing.T) {
	s, ds, _ := getSim(t)
	p := prompt.NL2SQL(ds.Schemas["concert_singer"], nil, ds.Examples[0].Question)
	resp, err := s.Complete(context.Background(), Request{Prompt: p})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PromptTokens == 0 || resp.CompletionTokens == 0 {
		t.Errorf("token counts missing: %+v", resp)
	}
}

func TestMeteredAndRecorder(t *testing.T) {
	s, ds, _ := getSim(t)
	stats := &Stats{}
	rec := &Recorder{Inner: &Metered{Inner: s, Stats: stats}}
	p := prompt.NL2SQL(ds.Schemas["concert_singer"], nil, ds.Examples[0].Question)
	if _, err := rec.Complete(context.Background(), Request{Prompt: p}); err != nil {
		t.Fatal(err)
	}
	if stats.Calls() != 1 {
		t.Errorf("calls: %d", stats.Calls())
	}
	pt, ct := stats.Tokens()
	if pt == 0 || ct == 0 {
		t.Errorf("tokens: %d, %d", pt, ct)
	}
	if len(rec.Calls) != 1 || rec.Calls[0].Prompt != p {
		t.Errorf("recorder: %+v", rec.Calls)
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("one two  three") != 3 {
		t.Error("token count")
	}
	if CountTokens("") != 0 {
		t.Error("empty token count")
	}
}

func TestSimRepairFallbackLexicon(t *testing.T) {
	// A repair prompt whose question is outside the corpus still repairs,
	// using the schema-derived lexicon of the announced database.
	s, ds, _ := getSim(t)
	op := dataset.OpEdit
	p := prompt.Repair(ds.Schemas["concert_singer"], nil, nil, &op,
		"A question nobody ever asked before??",
		"SELECT name FROM singer WHERE country = 'Spain'",
		"the country should be 'France'", nil)
	got := complete(t, s, p)
	if got != "SELECT name FROM singer WHERE country = 'France'" {
		t.Errorf("fallback repair: %q", got)
	}
}

func TestSimRewriteKeepsQuestionMarkTrim(t *testing.T) {
	s, _, _ := getSim(t)
	got := complete(t, s, prompt.Rewrite("How many?", "fb"))
	if got != "How many (fb)" {
		t.Errorf("rewrite: %q", got)
	}
}
