package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryBackoffSchedule pins the delay sequence: doubling from
// BaseDelay, capped at MaxDelay, every delay routed through Jitter.
func TestRetryBackoffSchedule(t *testing.T) {
	fail := func(n int) []error {
		outs := make([]error, n)
		for i := range outs {
			outs[i] = &Transient{Err: errors.New("x")}
		}
		return outs
	}
	var slept []time.Duration
	record := func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	cases := []struct {
		name string
		r    Retry
		want []time.Duration
	}{
		{
			name: "doubles then caps at MaxDelay",
			r:    Retry{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond},
			want: []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
				400 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond},
		},
		{
			name: "default cap is DefaultMaxDelay",
			r:    Retry{MaxAttempts: 8, BaseDelay: 500 * time.Millisecond},
			want: []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second,
				2 * time.Second, 2 * time.Second, 2 * time.Second, 2 * time.Second},
		},
		{
			name: "negative MaxDelay disables the cap",
			r:    Retry{MaxAttempts: 6, BaseDelay: time.Second, MaxDelay: -1},
			want: []time.Duration{time.Second, 2 * time.Second, 4 * time.Second,
				8 * time.Second, 16 * time.Second},
		},
		{
			name: "jitter sees the capped delay",
			r: Retry{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond,
				MaxDelay: 150 * time.Millisecond,
				Jitter:   func(d time.Duration) time.Duration { return d + time.Millisecond }},
			want: []time.Duration{101 * time.Millisecond, 151 * time.Millisecond,
				151 * time.Millisecond},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			slept = nil
			tc.r.Inner = &scripted{outcomes: fail(tc.r.MaxAttempts)}
			tc.r.Sleep = record
			if _, err := tc.r.Complete(context.Background(), Request{Prompt: "p"}); err == nil {
				t.Fatal("expected exhaustion error")
			}
			if len(slept) != len(tc.want) {
				t.Fatalf("slept %v, want %v", slept, tc.want)
			}
			for i := range slept {
				if slept[i] != tc.want[i] {
					t.Errorf("sleep[%d] = %v, want %v", i, slept[i], tc.want[i])
				}
			}
		})
	}
}

// TestFlakySeededRateIsReproducible checks that two identically seeded
// wrappers inject the same failure schedule, and a different seed a
// different one.
func TestFlakySeededRateIsReproducible(t *testing.T) {
	schedule := func(seed int64) []bool {
		f := &Flaky{Inner: &scripted{}, FailRate: 0.4, Seed: seed}
		out := make([]bool, 50)
		for i := range out {
			_, err := f.Complete(context.Background(), Request{Prompt: "p"})
			out[i] = err != nil
			if err != nil && !IsTransient(err) {
				t.Fatal("rate-injected failure should be transient")
			}
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	failures := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			failures++
		}
	}
	if failures == 0 || failures == len(a) {
		t.Errorf("failures = %d of %d; rate 0.4 should fail some but not all", failures, len(a))
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical schedule")
	}
}

// TestFlakyLatencyHonorsCancellation checks that a context canceled during
// injected latency surfaces ctx.Err() without reaching the inner client.
func TestFlakyLatencyHonorsCancellation(t *testing.T) {
	inner := &scripted{}
	f := &Flaky{Inner: inner, Latency: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := f.Complete(ctx, Request{Prompt: "p"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if inner.calls != 0 {
		t.Errorf("inner client called %d times during canceled latency", inner.calls)
	}
}

// TestFlakyLatencyDelays checks the fixed+jitter delay actually elapses.
func TestFlakyLatencyDelays(t *testing.T) {
	f := &Flaky{Inner: &scripted{}, Latency: 10 * time.Millisecond, LatencyJitter: 5 * time.Millisecond, Seed: 1}
	t0 := time.Now()
	if _, err := f.Complete(context.Background(), Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(t0); el < 10*time.Millisecond {
		t.Errorf("call returned after %v, want >= 10ms", el)
	}
	if f.Calls() != 1 {
		t.Errorf("Calls() = %d, want 1", f.Calls())
	}
}

// TestFlakyConcurrent hammers one wrapper from many goroutines under -race;
// the total call count must be exact.
func TestFlakyConcurrent(t *testing.T) {
	f := &Flaky{Inner: &scriptedConcurrent{}, FailRate: 0.3, Seed: 42}
	done := make(chan struct{})
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				_, _ = f.Complete(context.Background(), Request{Prompt: "p"})
			}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if f.Calls() != goroutines*per {
		t.Errorf("Calls() = %d, want %d", f.Calls(), goroutines*per)
	}
}

// scriptedConcurrent is a trivially successful client safe for concurrent
// use (scripted mutates an unguarded counter).
type scriptedConcurrent struct{}

func (scriptedConcurrent) Complete(context.Context, Request) (Response, error) {
	return Response{Text: "ok"}, nil
}
