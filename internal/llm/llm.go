// Package llm defines the chat-completion client interface the FISQL
// pipeline talks to, and provides a deterministic simulated model.
//
// The paper's system calls gpt-3.5-turbo over the OpenAI API. That
// dependency is substituted (per DESIGN.md) by Sim: a model that sees only
// prompt text — exactly like a real API — parses the prompt layouts of
// internal/prompt, and behaves like a competent-but-fallible NL2SQL model:
// it falls into the corpus's planted ambiguity traps unless the prompt
// contains disambiguating demonstrations, and it repairs queries from
// feedback with the rule engine of internal/nl2sql. Any OpenAI-compatible
// client can be dropped in behind the same interface.
package llm

import (
	"context"
	"errors"
	"sync"
	"unicode"
)

// Request is one chat-completion call.
type Request struct {
	Prompt      string
	Temperature float64
	MaxTokens   int
}

// Response is the model's completion.
type Response struct {
	Text             string
	PromptTokens     int
	CompletionTokens int
}

// Client is the minimal chat-completion interface the pipeline depends on.
type Client interface {
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrEmptyPrompt is returned for requests without a prompt.
var ErrEmptyPrompt = errors.New("llm: empty prompt")

// CountTokens approximates token usage as whitespace-separated words; it
// only needs to be monotone in text length for the accounting benchmarks.
func CountTokens(text string) int {
	// Counts exactly what len(strings.Fields(text)) would, without
	// materializing the field slice for every prompt.
	n := 0
	inField := false
	for _, r := range text {
		if unicode.IsSpace(r) {
			inField = false
		} else if !inField {
			inField = true
			n++
		}
	}
	return n
}

// ----------------------------------------------------------------------------
// Middleware

// Stats counts calls and token usage across a Client. Safe for concurrent
// use.
type Stats struct {
	mu               sync.Mutex
	calls            int
	promptTokens     int
	completionTokens int
}

// Calls returns the number of completed calls.
func (s *Stats) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Tokens returns cumulative (prompt, completion) token counts.
func (s *Stats) Tokens() (prompt, completion int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promptTokens, s.completionTokens
}

func (s *Stats) record(resp Response) {
	s.mu.Lock()
	s.calls++
	s.promptTokens += resp.PromptTokens
	s.completionTokens += resp.CompletionTokens
	s.mu.Unlock()
}

// Metered wraps a client with call/token accounting.
type Metered struct {
	Inner Client
	Stats *Stats
}

// Complete forwards to the inner client and records usage.
func (m *Metered) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := m.Inner.Complete(ctx, req)
	if err == nil && m.Stats != nil {
		m.Stats.record(resp)
	}
	return resp, err
}

// Recorder keeps a transcript of calls, for debugging and golden tests.
type Recorder struct {
	Inner Client

	mu    sync.Mutex
	Calls []RecordedCall
}

// RecordedCall is one prompt/response pair.
type RecordedCall struct {
	Prompt   string
	Response string
	Err      error
}

// Complete forwards to the inner client and records the exchange.
func (r *Recorder) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := r.Inner.Complete(ctx, req)
	r.mu.Lock()
	r.Calls = append(r.Calls, RecordedCall{Prompt: req.Prompt, Response: resp.Text, Err: err})
	r.mu.Unlock()
	return resp, err
}
