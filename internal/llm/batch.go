// Batching dispatcher: the async serving layer in front of Client.
//
// Real LLM backends reward batching — one batched call amortizes network
// round-trips, scheduling and prefill work across requests — and punish
// convoy effects, where a burst of independent callers serializes into a
// queue of single-prompt calls. Batcher sits in front of any Client and
// collects concurrent Complete calls into deadline-bounded batches: a call
// joins the currently collecting batch, and the batch flushes when it
// reaches MaxBatch requests or when its oldest call has waited MaxWait,
// whichever comes first.
//
// The dispatcher is singleflight-aware on two levels. Upstream, the
// assistant's AnswerMemo already collapses identical (db, question) asks
// into one pipeline run, so the batcher mostly sees distinct prompts;
// within a batch, identical Requests are additionally deduplicated into one
// slot whose response every duplicate caller shares.
//
// Cancellation composes with the serving path's context threading: a caller
// whose ctx is canceled abandons its slot immediately (the batch keeps
// running for the survivors), and a batch whose every caller has abandoned
// cancels its backend call, so work nobody is waiting for stops consuming
// the LLM.
package llm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BatchResult is one request's outcome within a batched completion.
type BatchResult struct {
	Response Response
	Err      error
}

// BatchCompleter is the optional batched surface of a backend. A Batcher
// whose inner client implements it issues one CompleteBatch call per flush;
// otherwise it falls back to concurrent per-request Complete calls (the
// batch still bounds and aligns them, so admission and dedup semantics are
// identical). The returned slice must have one entry per request; a
// non-nil error poisons every entry of the batch.
type BatchCompleter interface {
	CompleteBatch(ctx context.Context, reqs []Request) ([]BatchResult, error)
}

// BatcherConfig tunes a Batcher.
type BatcherConfig struct {
	// MaxBatch is the largest batch; a batch reaching it flushes
	// immediately. <= 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxWait bounds how long the first call of a batch waits for company
	// before the batch flushes anyway. <= 0 means DefaultMaxWait.
	MaxWait time.Duration
	// MaxConcurrent caps the number of batches in flight against the
	// backend at once — the LLM stage's concurrency limit. Excess batches
	// queue (their callers keep waiting). <= 0 means unlimited.
	MaxConcurrent int
}

// DefaultMaxBatch is the batch-size cap of a Batcher configured with zero
// MaxBatch.
const DefaultMaxBatch = 8

// DefaultMaxWait is the collection deadline of a Batcher configured with
// zero MaxWait: long enough for a concurrent burst to coalesce, short
// enough to be invisible next to a real model's inference time.
const DefaultMaxWait = 2 * time.Millisecond

// BatcherStats is a point-in-time snapshot of a Batcher's counters.
type BatcherStats struct {
	// Calls counts requests entering Complete (duplicates included).
	Calls int64
	// Batched counts distinct requests sent to the backend.
	Batched int64
	// Batches counts flushes that reached the backend.
	Batches int64
	// Deduped counts calls that shared an identical in-batch request's slot.
	Deduped int64
	// FullFlushes counts batches flushed by reaching MaxBatch.
	FullFlushes int64
	// DeadlineFlushes counts batches flushed by the MaxWait deadline.
	DeadlineFlushes int64
	// AbandonedBatches counts batches canceled because every caller's
	// context was done before the flush completed.
	AbandonedBatches int64
}

// Batcher collects concurrent Complete calls into bounded batches. Safe for
// concurrent use. Build with NewBatcher.
type Batcher struct {
	inner    Client
	binner   BatchCompleter // non-nil when inner implements BatchCompleter
	maxBatch int
	maxWait  time.Duration
	sem      chan struct{} // nil = unlimited concurrent flushes

	// flushObs, when set via SetFlushObserver, sees every flush that
	// reached the backend.
	flushObs atomic.Value // func(size int, wait time.Duration)

	mu  sync.Mutex
	cur *batch

	calls, batched, batches, deduped atomic.Int64
	fullFlushes, deadlineFlushes     atomic.Int64
	abandonedBatches                 atomic.Int64
}

// batch is one collecting/in-flight group of requests. Requests append
// under the Batcher mutex until the batch detaches (reaches MaxBatch, hits
// its deadline, or loses its last caller); results become readable when
// done closes.
type batch struct {
	start   time.Time
	reqs    []Request
	index   map[Request]int // dedup: identical Request -> one slot
	results []BatchResult

	full chan struct{} // closed (under b.mu) when the batch reaches MaxBatch
	done chan struct{} // closed when results are ready

	// live counts callers still waiting, guarded by the Batcher mutex.
	// When it reaches zero before done, the last abandoning caller detaches
	// the batch and cancels ctx so the backend call stops.
	live   int
	ctx    context.Context
	cancel context.CancelFunc
}

// NewBatcher wraps inner with a batching dispatcher.
func NewBatcher(inner Client, cfg BatcherConfig) *Batcher {
	b := &Batcher{inner: inner, maxBatch: cfg.MaxBatch, maxWait: cfg.MaxWait}
	if b.maxBatch <= 0 {
		b.maxBatch = DefaultMaxBatch
	}
	if b.maxWait <= 0 {
		b.maxWait = DefaultMaxWait
	}
	if bc, ok := inner.(BatchCompleter); ok {
		b.binner = bc
	}
	if cfg.MaxConcurrent > 0 {
		b.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return b
}

// SetFlushObserver installs fn to observe every flush that reaches the
// backend: the number of distinct requests and how long the batch collected
// before flushing. Wiring code points this at a latency histogram; a nil fn
// removes the observer.
func (b *Batcher) SetFlushObserver(fn func(size int, wait time.Duration)) {
	b.flushObs.Store(fn)
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatcherStats {
	return BatcherStats{
		Calls:            b.calls.Load(),
		Batched:          b.batched.Load(),
		Batches:          b.batches.Load(),
		Deduped:          b.deduped.Load(),
		FullFlushes:      b.fullFlushes.Load(),
		DeadlineFlushes:  b.deadlineFlushes.Load(),
		AbandonedBatches: b.abandonedBatches.Load(),
	}
}

// Complete implements Client: the request joins the collecting batch (or
// opens one) and blocks until the batch's backend call delivers its slot. A
// canceled ctx abandons the slot without disturbing the other callers.
func (b *Batcher) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	b.calls.Add(1)

	b.mu.Lock()
	bat := b.cur
	if bat == nil {
		bctx, cancel := context.WithCancel(context.Background())
		bat = &batch{
			start: time.Now(),
			index: make(map[Request]int, b.maxBatch),
			full:  make(chan struct{}),
			done:  make(chan struct{}),
			ctx:   bctx, cancel: cancel,
		}
		b.cur = bat
		go b.flushAfterDeadline(bat)
	}
	idx, dup := bat.index[req]
	if !dup {
		idx = len(bat.reqs)
		bat.reqs = append(bat.reqs, req)
		bat.index[req] = idx
	} else {
		b.deduped.Add(1)
	}
	bat.live++
	if len(bat.reqs) >= b.maxBatch {
		// Detach so the next call opens a fresh batch, and wake the
		// deadline goroutine early.
		b.cur = nil
		close(bat.full)
	}
	b.mu.Unlock()

	select {
	case <-bat.done:
		res := bat.results[idx]
		return res.Response, res.Err
	case <-ctx.Done():
		b.abandon(bat)
		return Response{}, ctx.Err()
	}
}

// abandon releases one caller's claim on bat. The last caller to leave
// detaches the batch (so no newcomer joins a doomed group) and cancels its
// backend context: work nobody is waiting for stops.
func (b *Batcher) abandon(bat *batch) {
	b.mu.Lock()
	bat.live--
	last := bat.live == 0
	if last && b.cur == bat {
		b.cur = nil
	}
	b.mu.Unlock()
	if last {
		bat.cancel()
	}
}

// flushAfterDeadline owns one batch's lifecycle: wait for it to fill or for
// MaxWait to elapse, then run the backend call and publish the results.
func (b *Batcher) flushAfterDeadline(bat *batch) {
	defer bat.cancel()
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	select {
	case <-bat.full:
		b.fullFlushes.Add(1)
	case <-timer.C:
		b.mu.Lock()
		if b.cur == bat {
			b.cur = nil
		}
		b.mu.Unlock()
		b.deadlineFlushes.Add(1)
	case <-bat.ctx.Done():
		// Every caller abandoned while the batch was still collecting; the
		// abandon path already detached it. Nothing to deliver.
		b.abandonedBatches.Add(1)
		close(bat.done)
		return
	}
	// Detached: reqs is immutable from here (appends happen only while the
	// batch is b.cur, and both detach paths synchronize through b.mu or the
	// full channel).
	wait := time.Since(bat.start)
	if b.sem != nil {
		select {
		case b.sem <- struct{}{}:
			defer func() { <-b.sem }()
		case <-bat.ctx.Done():
			b.abandonedBatches.Add(1)
			close(bat.done)
			return
		}
	}
	bat.results = make([]BatchResult, len(bat.reqs))
	if b.binner != nil {
		res, err := b.binner.CompleteBatch(bat.ctx, bat.reqs)
		switch {
		case err != nil:
			for i := range bat.results {
				bat.results[i].Err = err
			}
		case len(res) != len(bat.reqs):
			err := fmt.Errorf("llm: batch backend returned %d results for %d requests", len(res), len(bat.reqs))
			for i := range bat.results {
				bat.results[i].Err = err
			}
		default:
			copy(bat.results, res)
		}
	} else {
		// Fallback for per-request backends: the batch still aligns the
		// calls, they just run as one concurrent wave.
		var wg sync.WaitGroup
		for i := range bat.reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := b.inner.Complete(bat.ctx, bat.reqs[i])
				bat.results[i] = BatchResult{Response: resp, Err: err}
			}(i)
		}
		wg.Wait()
	}
	b.batches.Add(1)
	b.batched.Add(int64(len(bat.reqs)))
	if fn, ok := b.flushObs.Load().(func(size int, wait time.Duration)); ok && fn != nil {
		fn(len(bat.reqs), wait)
	}
	close(bat.done)
}
