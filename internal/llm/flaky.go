package llm

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Flaky is a fault-injecting Client wrapper for failure testing. It can
// fail deterministically (every Nth call), fail randomly but reproducibly
// (a seeded failure rate), and delay calls (fixed latency plus seeded
// jitter) while honoring context cancellation — the three degradation
// modes a production LLM API exhibits. All injected failures are Transient,
// so Retry treats them exactly like real rate-limit or gateway errors.
//
// Safe for concurrent use. The fault schedule is a function of (Seed, call
// order), so a single-goroutine test replays identically run after run.
type Flaky struct {
	Inner Client
	// FailEvery makes call numbers divisible by it fail (must be >= 1 to
	// take effect). Deterministic regardless of Seed.
	FailEvery int
	// FailRate fails that fraction of calls (0 < FailRate <= 1), drawn
	// from a source seeded with Seed.
	FailRate float64
	// Seed seeds the FailRate and jitter source. Two Flakys with the same
	// configuration and call order inject the same faults.
	Seed int64
	// Latency delays every call before it fails or forwards, modeling an
	// in-flight request. The wait honors ctx: cancellation during the
	// delay returns ctx.Err() instead of a response.
	Latency time.Duration
	// LatencyJitter adds a seeded-uniform extra delay in [0, LatencyJitter).
	LatencyJitter time.Duration

	mu    sync.Mutex
	calls int
	rng   *rand.Rand
}

// ErrInjected is the cause inside every failure Flaky injects.
var ErrInjected = errors.New("injected failure")

// Calls reports how many Complete calls the wrapper has seen.
func (f *Flaky) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Complete injects the configured latency and failures, then forwards.
func (f *Flaky) Complete(ctx context.Context, req Request) (Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.FailEvery >= 1 && f.calls%f.FailEvery == 0
	delay := f.Latency
	if f.FailRate > 0 || f.LatencyJitter > 0 {
		if f.rng == nil {
			f.rng = rand.New(rand.NewSource(f.Seed))
		}
		if f.FailRate > 0 && f.rng.Float64() < f.FailRate {
			fail = true
		}
		if f.LatencyJitter > 0 {
			delay += time.Duration(f.rng.Int63n(int64(f.LatencyJitter)))
		}
	}
	f.mu.Unlock()
	if delay > 0 {
		select {
		case <-ctx.Done():
			return Response{}, ctx.Err()
		case <-time.After(delay):
		}
	}
	if fail {
		return Response{}, &Transient{Err: ErrInjected}
	}
	return f.Inner.Complete(ctx, req)
}
