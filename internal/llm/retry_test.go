package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// scripted is a test client that plays back canned outcomes.
type scripted struct {
	outcomes []error
	calls    int
}

func (s *scripted) Complete(_ context.Context, _ Request) (Response, error) {
	var err error
	if s.calls < len(s.outcomes) {
		err = s.outcomes[s.calls]
	}
	s.calls++
	if err != nil {
		return Response{}, err
	}
	return Response{Text: "ok"}, nil
}

func noSleep(context.Context, time.Duration) error { return nil }

func TestRetryRecoversFromTransient(t *testing.T) {
	s := &scripted{outcomes: []error{
		&Transient{Err: errors.New("429")},
		&Transient{Err: errors.New("502")},
		nil,
	}}
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	resp, err := r.Complete(context.Background(), Request{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" || s.calls != 3 {
		t.Errorf("resp %q after %d calls", resp.Text, s.calls)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	s := &scripted{outcomes: []error{
		&Transient{Err: errors.New("a")},
		&Transient{Err: errors.New("b")},
		&Transient{Err: errors.New("c")},
		nil,
	}}
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	_, err := r.Complete(context.Background(), Request{Prompt: "p"})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if s.calls != 3 {
		t.Errorf("calls: %d", s.calls)
	}
	if !IsTransient(err) {
		t.Error("exhaustion error should still unwrap to the transient cause")
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	s := &scripted{outcomes: []error{errors.New("bad request"), nil}}
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	_, err := r.Complete(context.Background(), Request{Prompt: "p"})
	if err == nil || s.calls != 1 {
		t.Errorf("permanent error retried: calls=%d err=%v", s.calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	s := &scripted{outcomes: []error{&Transient{Err: errors.New("x")}, nil}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Retry{Inner: s, MaxAttempts: 3} // real Sleep: sees cancelled ctx
	_, err := r.Complete(ctx, Request{Prompt: "p"})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

func TestFlakyInjectsDeterministically(t *testing.T) {
	inner := &scripted{}
	f := &Flaky{Inner: inner, FailEvery: 3}
	var failures int
	for i := 0; i < 9; i++ {
		if _, err := f.Complete(context.Background(), Request{Prompt: "p"}); err != nil {
			failures++
			if !IsTransient(err) {
				t.Error("injected failure should be transient")
			}
		}
	}
	if failures != 3 {
		t.Errorf("failures: %d, want 3", failures)
	}
}

func TestRetryOverFlakySimSurvivesPipeline(t *testing.T) {
	// End-to-end failure injection: a flaky sim wrapped in Retry must
	// behave identically to the bare sim.
	sim, ds, _ := getSim(t)
	bare := sim
	wrapped := &Retry{Inner: &Flaky{Inner: sim, FailEvery: 2}, MaxAttempts: 3, Sleep: noSleep}
	for _, e := range ds.Examples[:10] {
		p := Request{Prompt: promptFor(ds, e)}
		want, err := bare.Complete(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wrapped.Complete(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want.Text {
			t.Errorf("%s: wrapped output differs", e.ID)
		}
	}
}

func TestRetryCanceledContextMakesNoAttempt(t *testing.T) {
	s := &scripted{outcomes: []error{nil}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A stubbed Sleep that never checks ctx: the loop itself must refuse
	// the pre-canceled request before the first attempt.
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	_, err := r.Complete(ctx, Request{Prompt: "p"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if s.calls != 0 {
		t.Errorf("pre-canceled request still made %d attempts", s.calls)
	}
}

func TestRetryCancellationAbortsBackoffImmediately(t *testing.T) {
	// The backoff between attempts is the capped maximum; cancellation mid
	// sleep must return right away instead of waiting it out.
	s := &scripted{outcomes: []error{
		&Transient{Err: errors.New("x")},
		&Transient{Err: errors.New("y")},
		nil,
	}}
	r := &Retry{Inner: s, MaxAttempts: 3, BaseDelay: DefaultMaxDelay, MaxDelay: DefaultMaxDelay}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	t0 := time.Now()
	go func() {
		_, err := r.Complete(ctx, Request{Prompt: "p"})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt fail and the backoff arm
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
		if waited := time.Since(t0); waited >= DefaultMaxDelay {
			t.Errorf("cancellation waited out the %s backoff (%s elapsed)", DefaultMaxDelay, waited)
		}
	case <-time.After(DefaultMaxDelay / 2):
		t.Fatal("Complete still sleeping long after cancellation")
	}
	if s.calls != 1 {
		t.Errorf("attempts after cancellation: %d, want 1", s.calls)
	}
}

func TestRetryZeroDelayCanceledContextStopsRetrying(t *testing.T) {
	// With a zero/tiny delay and a canceled ctx, both select arms are ready
	// and Go picks randomly — the sleep must check ctx first so a canceled
	// request can never win the timer race and keep retrying. Run many
	// iterations to make a random pick essentially certain to occur.
	for i := 0; i < 100; i++ {
		s := &scripted{outcomes: []error{&Transient{Err: errors.New("x")}}}
		ctx, cancel := context.WithCancel(context.Background())
		r := &Retry{Inner: s, MaxAttempts: 5, BaseDelay: time.Nanosecond, Jitter: func(time.Duration) time.Duration {
			cancel() // cancel exactly as the first backoff begins
			return time.Nanosecond
		}}
		_, err := r.Complete(ctx, Request{Prompt: "p"})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: got %v, want context.Canceled", i, err)
		}
		if s.calls != 1 {
			t.Fatalf("iteration %d: canceled request made %d attempts, want 1", i, s.calls)
		}
	}
}
