package llm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// scripted is a test client that plays back canned outcomes.
type scripted struct {
	outcomes []error
	calls    int
}

func (s *scripted) Complete(_ context.Context, _ Request) (Response, error) {
	var err error
	if s.calls < len(s.outcomes) {
		err = s.outcomes[s.calls]
	}
	s.calls++
	if err != nil {
		return Response{}, err
	}
	return Response{Text: "ok"}, nil
}

func noSleep(context.Context, time.Duration) error { return nil }

func TestRetryRecoversFromTransient(t *testing.T) {
	s := &scripted{outcomes: []error{
		&Transient{Err: errors.New("429")},
		&Transient{Err: errors.New("502")},
		nil,
	}}
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	resp, err := r.Complete(context.Background(), Request{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ok" || s.calls != 3 {
		t.Errorf("resp %q after %d calls", resp.Text, s.calls)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	s := &scripted{outcomes: []error{
		&Transient{Err: errors.New("a")},
		&Transient{Err: errors.New("b")},
		&Transient{Err: errors.New("c")},
		nil,
	}}
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	_, err := r.Complete(context.Background(), Request{Prompt: "p"})
	if err == nil {
		t.Fatal("expected exhaustion error")
	}
	if s.calls != 3 {
		t.Errorf("calls: %d", s.calls)
	}
	if !IsTransient(err) {
		t.Error("exhaustion error should still unwrap to the transient cause")
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	s := &scripted{outcomes: []error{errors.New("bad request"), nil}}
	r := &Retry{Inner: s, MaxAttempts: 3, Sleep: noSleep}
	_, err := r.Complete(context.Background(), Request{Prompt: "p"})
	if err == nil || s.calls != 1 {
		t.Errorf("permanent error retried: calls=%d err=%v", s.calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	s := &scripted{outcomes: []error{&Transient{Err: errors.New("x")}, nil}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Retry{Inner: s, MaxAttempts: 3} // real Sleep: sees cancelled ctx
	_, err := r.Complete(ctx, Request{Prompt: "p"})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

func TestFlakyInjectsDeterministically(t *testing.T) {
	inner := &scripted{}
	f := &Flaky{Inner: inner, FailEvery: 3}
	var failures int
	for i := 0; i < 9; i++ {
		if _, err := f.Complete(context.Background(), Request{Prompt: "p"}); err != nil {
			failures++
			if !IsTransient(err) {
				t.Error("injected failure should be transient")
			}
		}
	}
	if failures != 3 {
		t.Errorf("failures: %d, want 3", failures)
	}
}

func TestRetryOverFlakySimSurvivesPipeline(t *testing.T) {
	// End-to-end failure injection: a flaky sim wrapped in Retry must
	// behave identically to the bare sim.
	sim, ds, _ := getSim(t)
	bare := sim
	wrapped := &Retry{Inner: &Flaky{Inner: sim, FailEvery: 2}, MaxAttempts: 3, Sleep: noSleep}
	for _, e := range ds.Examples[:10] {
		p := Request{Prompt: promptFor(ds, e)}
		want, err := bare.Complete(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wrapped.Complete(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want.Text {
			t.Errorf("%s: wrapped output differs", e.ID)
		}
	}
}
