package llm

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Transient marks an error as retryable. API clients wrap rate-limit and
// gateway errors with it; Retry only re-attempts errors that match.
type Transient struct {
	Err error
}

func (t *Transient) Error() string { return "transient: " + t.Err.Error() }

// Unwrap exposes the underlying error.
func (t *Transient) Unwrap() error { return t.Err }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *Transient
	return errors.As(err, &t)
}

// Retry wraps a client with bounded retries and exponential backoff for
// transient failures — the hygiene a production deployment needs in front
// of a rate-limited LLM API.
type Retry struct {
	Inner Client
	// MaxAttempts bounds total attempts (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50ms); it doubles per
	// attempt. Tests set it to 0.
	BaseDelay time.Duration
	// MaxDelay caps each backoff delay. Unbounded doubling is how a long
	// outage turns a retry loop into a multi-minute hang; the cap keeps the
	// worst single wait useful. 0 means the 2s default, negative disables
	// the cap.
	MaxDelay time.Duration
	// Jitter, when set, maps each capped delay to the duration actually
	// slept — hook in randomized spread so a herd of clients that failed
	// together does not retry in lockstep. Applied after the MaxDelay cap.
	Jitter func(d time.Duration) time.Duration
	// Sleep is stubbable for tests; defaults to time.Sleep honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// DefaultMaxDelay is the backoff cap of a Retry with zero MaxDelay.
const DefaultMaxDelay = 2 * time.Second

// Complete forwards to the inner client, retrying transient errors.
func (r *Retry) Complete(ctx context.Context, req Request) (Response, error) {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := r.BaseDelay
	if delay == 0 {
		delay = 50 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay == 0 {
		maxDelay = DefaultMaxDelay
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			// Check cancellation before arming the timer: with both
			// channels ready, select picks randomly, so an already-canceled
			// context could otherwise win a zero-or-tiny backoff and keep
			// the retry loop running.
			if err := ctx.Err(); err != nil {
				return err
			}
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		// A canceled request must not buy another attempt or wait out a
		// backoff delay — stubbed Sleep implementations (tests, custom
		// schedules) may not check ctx themselves, so the loop does.
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		if attempt > 0 {
			d := delay
			if maxDelay > 0 && d > maxDelay {
				d = maxDelay
			}
			if r.Jitter != nil {
				d = r.Jitter(d)
			}
			if err := sleep(ctx, d); err != nil {
				return Response{}, err
			}
			delay *= 2
		}
		resp, err := r.Inner.Complete(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !IsTransient(err) {
			return Response{}, err
		}
		lastErr = err
	}
	return Response{}, fmt.Errorf("llm: %d attempts failed: %w", attempts, lastErr)
}
