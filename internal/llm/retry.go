package llm

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Transient marks an error as retryable. API clients wrap rate-limit and
// gateway errors with it; Retry only re-attempts errors that match.
type Transient struct {
	Err error
}

func (t *Transient) Error() string { return "transient: " + t.Err.Error() }

// Unwrap exposes the underlying error.
func (t *Transient) Unwrap() error { return t.Err }

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *Transient
	return errors.As(err, &t)
}

// Retry wraps a client with bounded retries and exponential backoff for
// transient failures — the hygiene a production deployment needs in front
// of a rate-limited LLM API.
type Retry struct {
	Inner Client
	// MaxAttempts bounds total attempts (default 3).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50ms); it doubles per
	// attempt. Tests set it to 0.
	BaseDelay time.Duration
	// Sleep is stubbable for tests; defaults to time.Sleep honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Complete forwards to the inner client, retrying transient errors.
func (r *Retry) Complete(ctx context.Context, req Request) (Response, error) {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := r.BaseDelay
	if delay == 0 {
		delay = 50 * time.Millisecond
	}
	sleep := r.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
				return nil
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, delay); err != nil {
				return Response{}, err
			}
			delay *= 2
		}
		resp, err := r.Inner.Complete(ctx, req)
		if err == nil {
			return resp, nil
		}
		if !IsTransient(err) {
			return Response{}, err
		}
		lastErr = err
	}
	return Response{}, fmt.Errorf("llm: %d attempts failed: %w", attempts, lastErr)
}

// Flaky injects transient failures in front of a client: every Nth call
// fails once. Deterministic, for failure-injection tests.
type Flaky struct {
	Inner Client
	// FailEvery makes call numbers divisible by it fail (must be >= 1).
	FailEvery int

	calls int
}

// Complete fails deterministically, then forwards.
func (f *Flaky) Complete(ctx context.Context, req Request) (Response, error) {
	f.calls++
	if f.FailEvery >= 1 && f.calls%f.FailEvery == 0 {
		return Response{}, &Transient{Err: errors.New("injected failure")}
	}
	return f.Inner.Complete(ctx, req)
}
