// Package feedback implements the paper's feedback substrate: the
// Add/Remove/Edit taxonomy (Table 1), the two operation-type classifiers
// (the few-shot router versus a naive keyword heuristic), the simulated
// annotator that writes natural-language feedback from what a user can
// actually see, and highlight spans (Figure 9).
package feedback

import (
	"fmt"
	"strings"

	"fisql/internal/dataset"
	"fisql/internal/sqlast"
)

// Feedback is one round of user feedback on a generated SQL query.
type Feedback struct {
	// Text is the natural-language feedback as the user typed it.
	Text string
	// Op is the true operation type (hidden ground truth; systems must
	// infer it from Text or via the router).
	Op dataset.Op
	// TrapIndex is the trap this feedback targets (annotator-internal).
	TrapIndex int
	// Highlight optionally grounds the feedback to a span of the SQL.
	Highlight *Highlight
}

// Highlight is a user-selected span of the displayed SQL text (Figure 9).
type Highlight struct {
	Start, End int
	Text       string
}

// TaxonomyExamples returns the paper's Table 1 — one canonical feedback
// text per operation type.
func TaxonomyExamples() map[dataset.Op]string {
	return map[dataset.Op]string{
		dataset.OpAdd:    "order the names in ascending order.",
		dataset.OpRemove: "do not give descriptions",
		dataset.OpEdit:   "we are in 2024",
	}
}

// ----------------------------------------------------------------------------
// Operation-type classifiers

// ClassifyRouted models the paper's feedback-type identification step: a
// gpt-3.5 few-shot classification. With demonstrations the model resolves
// idioms correctly — notably that "remove the duplicates" asks to ADD a
// DISTINCT, not to remove anything.
func ClassifyRouted(text string) dataset.Op {
	t := normalize(text)
	switch {
	case containsAny(t, "instead of", "should be", "we are in", "i meant",
		"i wanted", "change the year", "change to", "is wrong", "use the"):
		return dataset.OpEdit
	case containsAny(t, "duplicate", "distinct", "only once"):
		return dataset.OpAdd
	case containsAny(t, "do not give", "don't give", "do not show",
		"don't need", "drop the", "remove the condition", "without the",
		"do not filter", "should not filter"):
		return dataset.OpRemove
	case containsAny(t, "sort", "order", "only include", "only count",
		"only show", "only give", "limit to", "the top ", "the first ",
		"add ", "also "):
		return dataset.OpAdd
	default:
		return dataset.OpEdit
	}
}

// ClassifyNaive is the surface-keyword heuristic a model falls back to when
// no routing step supplies the operation type. It reads "remove the
// duplicate entries" as a Remove — the failure mode routing exists to fix.
func ClassifyNaive(text string) dataset.Op {
	t := normalize(text)
	switch {
	case containsAny(t, "do not", "don't", "drop", "remove", "without"):
		return dataset.OpRemove
	case containsAny(t, "sort", "order", "only include", "only count",
		"only show", "only give", "the top ", "the first ", "include",
		"add ", "also "):
		return dataset.OpAdd
	case containsAny(t, "instead of", "should be", "we are in", "meant",
		"wanted", "change"):
		return dataset.OpEdit
	default:
		return dataset.OpEdit
	}
}

func normalize(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------------------------
// Routing demonstration store

// Demos returns the fixed demonstration set for one operation type —
// the examples appended to the NL2SQL prompt after routing (Figure 5).
func Demos(op dataset.Op) []RepairDemo {
	switch op {
	case dataset.OpEdit:
		return []RepairDemo{{
			Question: "how many audiences were created in January?",
			Original: "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment WHERE createdTime >= '2023-01-01' and createdTime < '2023-02-01'",
			Feedback: "we are in 2024",
			Updated:  "SELECT COUNT(*) AS segmentCount FROM hkg_dim_segment WHERE createdTime >= '2024-01-01' and createdTime < '2024-02-01'",
		}, {
			Question: "Show the name and the release year of the song by the youngest singer.",
			Original: "SELECT Name, Song_release_year FROM singer WHERE Age = (SELECT min(Age) FROM singer)",
			Feedback: "provide the song name instead of the singer name",
			Updated:  "SELECT Song_Name, Song_release_year FROM singer WHERE Age = (SELECT min(Age) FROM singer)",
		}}
	case dataset.OpAdd:
		return []RepairDemo{{
			Question: "List the names of all students.",
			Original: "SELECT name FROM student",
			Feedback: "order the names in ascending order.",
			Updated:  "SELECT name FROM student ORDER BY name ASC",
		}, {
			Question: "List the cities of the stores.",
			Original: "SELECT city FROM store",
			Feedback: "remove the duplicate entries",
			Updated:  "SELECT DISTINCT city FROM store",
		}}
	default:
		return []RepairDemo{{
			Question: "Show the id and description of each product.",
			Original: "SELECT id, description FROM product",
			Feedback: "do not give descriptions",
			Updated:  "SELECT id FROM product",
		}}
	}
}

// RepairDemo is one feedback-incorporation demonstration (Figure 5).
type RepairDemo struct {
	Question string
	Original string
	Feedback string
	Updated  string
}

// ----------------------------------------------------------------------------
// Simulated annotator

// Annotator writes feedback for Assistant errors the way the paper's
// annotators did: using only the question, the displayed SQL, its
// explanation and the execution result — never the gold SQL or schema. The
// trap metadata stands in for the annotator's knowledge of *what they
// meant*; the behaviour flags reproduce the paper's error analysis
// (misaligned feedback, uninterpretable feedback, multi-error queries).
type Annotator struct {
	// ColumnPhrase renders a column as the phrase a user would say. It is
	// resolved against the dataset's NL annotations by the caller.
	ColumnPhrase func(table, column string) string
	// TablePhrase renders a table name as a user phrase.
	TablePhrase func(table string) string
}

// Annotate produces the feedback a user gives after seeing currentSQL for
// the example, or ok=false when the user cannot express feedback (the
// example is not annotatable, or nothing is wrong). round is 1-based.
// withHighlights lets the annotator attach a highlight span when the
// feedback needs grounding (Table 3's setting).
func (a *Annotator) Annotate(e *dataset.Example, currentSQL string, round int, withHighlights bool) (Feedback, bool) {
	if !e.Annotatable {
		return Feedback{}, false
	}
	mask := e.UnfixedMask(currentSQL)
	if mask == 0 {
		return Feedback{}, false
	}
	ti := 0
	for ; ti < len(e.Traps); ti++ {
		if mask&(1<<ti) != 0 {
			break
		}
	}
	t := e.Traps[ti]
	fb := Feedback{Op: t.Kind.Op(), TrapIndex: ti}
	switch {
	case t.Vague:
		fb.Text = "hmm, that is not what I was looking for"
	case t.Misaligned:
		fb.Text = fmt.Sprintf("only include those whose %s is %s",
			a.colPhrase(t.Table, t.DecoyColumn), quote(t.DecoyValue))
		fb.Op = dataset.OpAdd // what the (misaligned) text asks for
	default:
		fb.Text = a.alignedText(e, t, round)
	}
	if withHighlights && t.GroundingHard {
		if h, ok := groundingHighlight(currentSQL, t); ok {
			fb.Highlight = &h
		}
	}
	return fb, true
}

func (a *Annotator) colPhrase(table, column string) string {
	if a.ColumnPhrase != nil {
		if p := a.ColumnPhrase(table, column); p != "" {
			return p
		}
	}
	return strings.ReplaceAll(column, "_", " ")
}

func (a *Annotator) tablePhrase(table string) string {
	if a.TablePhrase != nil {
		if p := a.TablePhrase(table); p != "" {
			return p
		}
	}
	return strings.ReplaceAll(table, "_", " ")
}

var aggFeedbackWords = map[string]string{
	"COUNT": "count", "SUM": "total", "AVG": "average",
	"MIN": "minimum", "MAX": "maximum",
}

func (a *Annotator) alignedText(e *dataset.Example, t dataset.Trap, round int) string {
	switch t.Kind {
	case dataset.WrongLiteral:
		if isYear(t.New) && isYear(t.Old) && isDateColumn(t.Column) {
			if round > 1 {
				return fmt.Sprintf("change the year to %s", t.New)
			}
			return fmt.Sprintf("we are in %s", t.New)
		}
		if t.GroundingHard {
			return fmt.Sprintf("the value should be %s", quote(t.New))
		}
		// Naming both the wrong and intended value lets the model locate
		// the literal wherever it sits (comparison, IN list, LIKE pattern).
		return fmt.Sprintf("the %s should be %s, not %s",
			a.colPhrase(t.Table, t.Column), quote(t.New), quote(t.Old))
	case dataset.WrongColumn:
		return fmt.Sprintf("provide the %s instead of the %s",
			a.colPhrase(t.Table, t.New), a.colPhrase(t.Table, t.Old))
	case dataset.WrongAggregate:
		return fmt.Sprintf("I wanted the %s, not the %s",
			aggFeedbackWords[t.New], aggFeedbackWords[t.Old])
	case dataset.WrongTable:
		return fmt.Sprintf("I meant the %s, not the %s",
			a.tablePhrase(t.New), a.tablePhrase(t.Old))
	case dataset.MissingOrderBy:
		dir := "ascending"
		if t.New == "DESC" {
			dir = "descending"
		}
		return fmt.Sprintf("sort the results by %s in %s order", a.colPhrase(t.Table, t.Column), dir)
	case dataset.MissingFilter:
		if t.Old == "gt" {
			return fmt.Sprintf("only count those with %s greater than %s",
				a.colPhrase(t.Table, t.Column), t.New)
		}
		return fmt.Sprintf("only include those whose %s is %s",
			a.colPhrase(t.Table, t.Column), quote(t.New))
	case dataset.MissingDistinct:
		if t.AmbiguousOp && round == 1 {
			return "remove the duplicate entries"
		}
		return "add distinct so each value appears only once"
	case dataset.ExtraColumn:
		return fmt.Sprintf("do not give the %s", a.colPhrase(t.Table, t.Column))
	case dataset.ExtraFilter:
		return fmt.Sprintf("drop the condition on %s", a.colPhrase(t.Table, t.Column))
	}
	return "this looks wrong"
}

// isDateColumn guards the "we are in {year}" phrasing: it only makes sense
// when the wrong literal is a date, not when a count happens to have four
// digits.
func isDateColumn(col string) bool {
	l := strings.ToLower(col)
	return strings.Contains(l, "date") || strings.Contains(l, "time")
}

func isYear(s string) bool {
	if len(s) != 4 {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

func quote(v string) string {
	if isNumber(v) {
		return v
	}
	return "'" + v + "'"
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' && !dot && i > 0:
			dot = true
		case r == '-' && i == 0:
		default:
			return false
		}
	}
	return true
}

// groundingHighlight locates the comparison the grounding-hard feedback
// refers to: the predicate on the trap's column within the displayed SQL.
func groundingHighlight(sql string, t dataset.Trap) (Highlight, bool) {
	// The wrong comparison mentions the trap column followed by the wrong
	// value; find "column" and extend through the literal after it.
	idx := indexFold(sql, t.Column)
	for idx >= 0 {
		rest := sql[idx:]
		if litEnd := literalEndAfter(rest); litEnd > 0 {
			return Highlight{Start: idx, End: idx + litEnd, Text: sql[idx : idx+litEnd]}, true
		}
		next := indexFold(sql[idx+1:], t.Column)
		if next < 0 {
			break
		}
		idx = idx + 1 + next
	}
	return Highlight{}, false
}

func indexFold(s, sub string) int {
	return strings.Index(strings.ToLower(s), strings.ToLower(sub))
}

// literalEndAfter returns the offset just past the first SQL literal
// following a comparison operator in s, or -1.
func literalEndAfter(s string) int {
	i := 0
	// Skip the column name.
	for i < len(s) && s[i] != ' ' {
		i++
	}
	// Expect an operator.
	for i < len(s) && s[i] == ' ' {
		i++
	}
	opStart := i
	for i < len(s) && strings.ContainsRune("=!<>", rune(s[i])) {
		i++
	}
	if i == opStart {
		return -1
	}
	for i < len(s) && s[i] == ' ' {
		i++
	}
	if i >= len(s) {
		return -1
	}
	if s[i] == '\'' {
		j := i + 1
		for j < len(s) && s[j] != '\'' {
			j++
		}
		if j < len(s) {
			return j + 1
		}
		return -1
	}
	j := i
	for j < len(s) && ((s[j] >= '0' && s[j] <= '9') || s[j] == '.' || s[j] == '-') {
		j++
	}
	if j == i {
		return -1
	}
	return j
}

// ClauseOf maps a byte offset in a printed SELECT onto its clause via the
// printer's span table. Used to report which clause a highlight grounds to.
func ClauseOf(spans []sqlast.Span, offset int) (sqlast.Clause, bool) {
	for _, sp := range spans {
		if offset >= sp.Start && offset < sp.End {
			return sp.Clause, true
		}
	}
	return 0, false
}
