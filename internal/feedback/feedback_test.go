package feedback

import (
	"strings"
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

func TestTaxonomyExamplesMatchPaperTable1(t *testing.T) {
	ex := TaxonomyExamples()
	if ex[dataset.OpAdd] != "order the names in ascending order." {
		t.Errorf("Add example: %q", ex[dataset.OpAdd])
	}
	if ex[dataset.OpRemove] != "do not give descriptions" {
		t.Errorf("Remove example: %q", ex[dataset.OpRemove])
	}
	if ex[dataset.OpEdit] != "we are in 2024" {
		t.Errorf("Edit example: %q", ex[dataset.OpEdit])
	}
}

func TestClassifiersOnTaxonomy(t *testing.T) {
	for op, text := range TaxonomyExamples() {
		if got := ClassifyRouted(text); got != op {
			t.Errorf("router misclassifies Table 1 example %q: %v", text, got)
		}
	}
}

// TestAlignedTemplateClassification pins the contract the correction
// pipeline depends on: every aligned feedback template classifies correctly
// under the router, and under the naive heuristic too except for the one
// designed op-ambiguous phrasing.
func TestAlignedTemplateClassification(t *testing.T) {
	tests := []struct {
		text  string
		op    dataset.Op
		naive bool // whether the naive classifier also gets it right
	}{
		{"we are in 2024", dataset.OpEdit, true},
		{"change the year to 2024", dataset.OpEdit, true},
		{"the segment name should be 'Aurora'", dataset.OpEdit, true},
		{"the value should be 'Folk'", dataset.OpEdit, true},
		{"provide the song name instead of the name", dataset.OpEdit, true},
		{"I wanted the total, not the count", dataset.OpEdit, true},
		{"I meant the audiences, not the datasets", dataset.OpEdit, true},
		{"sort the results by age in descending order", dataset.OpAdd, true},
		{"only include those whose country is 'France'", dataset.OpAdd, true},
		{"only count those with age greater than 30", dataset.OpAdd, true},
		{"add distinct so each value appears only once", dataset.OpAdd, true},
		{"do not give the description", dataset.OpRemove, true},
		{"drop the condition on year", dataset.OpRemove, true},
		// The designed ambiguity: dedup phrased as a removal.
		{"remove the duplicate entries", dataset.OpAdd, false},
	}
	for _, tc := range tests {
		if got := ClassifyRouted(tc.text); got != tc.op {
			t.Errorf("router: %q -> %v, want %v", tc.text, got, tc.op)
		}
		naiveGot := ClassifyNaive(tc.text)
		if tc.naive && naiveGot != tc.op {
			t.Errorf("naive: %q -> %v, want %v", tc.text, naiveGot, tc.op)
		}
		if !tc.naive && naiveGot == tc.op {
			t.Errorf("naive: %q unexpectedly classified correctly", tc.text)
		}
	}
}

func TestDemosPerOp(t *testing.T) {
	for _, op := range []dataset.Op{dataset.OpAdd, dataset.OpRemove, dataset.OpEdit} {
		demos := Demos(op)
		if len(demos) == 0 {
			t.Fatalf("no demos for %v", op)
		}
		for _, d := range demos {
			if d.Feedback == "" || d.Original == "" || d.Updated == "" {
				t.Errorf("%v demo incomplete: %+v", op, d)
			}
			if got := ClassifyRouted(d.Feedback); got != op {
				t.Errorf("%v demo feedback %q routes to %v", op, d.Feedback, got)
			}
		}
	}
}

func annotator() *Annotator {
	return &Annotator{
		ColumnPhrase: func(table, column string) string { return strings.ReplaceAll(column, "_", " ") },
		TablePhrase:  func(table string) string { return strings.ReplaceAll(table, "_", " ") },
	}
}

func twoVariantExample(kind dataset.TrapKind, tr dataset.Trap, gold, wrong string) *dataset.Example {
	tr.Kind = kind
	return &dataset.Example{
		ID: "t", DB: "db", Question: "q?", Gold: gold,
		Traps:       []dataset.Trap{tr},
		Variants:    map[uint8]string{1: wrong},
		Annotatable: true,
	}
}

func TestAnnotateYearEdit(t *testing.T) {
	e := twoVariantExample(dataset.WrongLiteral,
		dataset.Trap{Old: "2023", New: "2024", Column: "createdTime"},
		"SELECT COUNT(*) FROM t WHERE createdTime >= '2024-01-01'",
		"SELECT COUNT(*) FROM t WHERE createdTime >= '2023-01-01'")
	fb, ok := annotator().Annotate(e, e.WrongSQL(), 1, false)
	if !ok || fb.Text != "we are in 2024" {
		t.Fatalf("got %q, %v", fb.Text, ok)
	}
	fb, _ = annotator().Annotate(e, e.WrongSQL(), 2, false)
	if fb.Text != "change the year to 2024" {
		t.Errorf("round 2 rephrase: %q", fb.Text)
	}
}

func TestAnnotateNumericLiteralIsNotYearPhrased(t *testing.T) {
	e := twoVariantExample(dataset.WrongLiteral,
		dataset.Trap{Old: "8397", New: "4849", Column: "identity_count"},
		"SELECT COUNT(*) FROM t WHERE identity_count > 4849",
		"SELECT COUNT(*) FROM t WHERE identity_count > 8397")
	fb, ok := annotator().Annotate(e, e.WrongSQL(), 1, false)
	if !ok {
		t.Fatal("not annotated")
	}
	if strings.Contains(fb.Text, "we are in") {
		t.Errorf("4-digit count mistaken for a year: %q", fb.Text)
	}
	if !strings.Contains(fb.Text, "identity count should be 4849") {
		t.Errorf("got %q", fb.Text)
	}
}

func TestAnnotateSkipsNonAnnotatable(t *testing.T) {
	e := twoVariantExample(dataset.WrongLiteral, dataset.Trap{Old: "1", New: "2"},
		"SELECT 2", "SELECT 1")
	e.Annotatable = false
	if _, ok := annotator().Annotate(e, e.WrongSQL(), 1, false); ok {
		t.Error("non-annotatable example got feedback")
	}
}

func TestAnnotateStopsWhenFixed(t *testing.T) {
	e := twoVariantExample(dataset.WrongLiteral,
		dataset.Trap{Old: "'x'", New: "'y'", Column: "c"},
		"SELECT a FROM t WHERE c = 'y'",
		"SELECT a FROM t WHERE c = 'x'")
	if _, ok := annotator().Annotate(e, e.Gold, 1, false); ok {
		t.Error("fixed query should yield no feedback")
	}
}

func TestAnnotateVagueAndMisaligned(t *testing.T) {
	e := twoVariantExample(dataset.WrongLiteral,
		dataset.Trap{Old: "'x'", New: "'y'", Column: "c", Vague: true},
		"SELECT a FROM t WHERE c = 'y'", "SELECT a FROM t WHERE c = 'x'")
	fb, _ := annotator().Annotate(e, e.WrongSQL(), 1, false)
	if strings.Contains(fb.Text, "'y'") {
		t.Errorf("vague feedback leaks the correction: %q", fb.Text)
	}

	e2 := twoVariantExample(dataset.WrongLiteral,
		dataset.Trap{Old: "'x'", New: "'y'", Column: "c", Misaligned: true,
			DecoyColumn: "other", DecoyValue: "42"},
		"SELECT a FROM t WHERE c = 'y'", "SELECT a FROM t WHERE c = 'x'")
	fb, _ = annotator().Annotate(e2, e2.WrongSQL(), 1, false)
	if !strings.Contains(fb.Text, "other") || !strings.Contains(fb.Text, "42") {
		t.Errorf("misaligned feedback should name the decoy: %q", fb.Text)
	}
	if fb.Op != dataset.OpAdd {
		t.Errorf("misaligned text asks for an Add, got %v", fb.Op)
	}
}

func TestAnnotateAmbiguousDistinct(t *testing.T) {
	e := twoVariantExample(dataset.MissingDistinct,
		dataset.Trap{AmbiguousOp: true},
		"SELECT DISTINCT c FROM t", "SELECT c FROM t")
	fb, _ := annotator().Annotate(e, e.WrongSQL(), 1, false)
	if fb.Text != "remove the duplicate entries" {
		t.Errorf("round 1: %q", fb.Text)
	}
	fb, _ = annotator().Annotate(e, e.WrongSQL(), 2, false)
	if fb.Text != "add distinct so each value appears only once" {
		t.Errorf("round 2: %q", fb.Text)
	}
}

func TestAnnotateTargetsFirstUnfixedTrap(t *testing.T) {
	e := &dataset.Example{
		ID: "t2", DB: "db", Question: "q?",
		Gold: "SELECT a FROM t WHERE b = 'good'",
		Traps: []dataset.Trap{
			{Kind: dataset.WrongLiteral, Old: "'bad'", New: "'good'", Column: "b"},
			{Kind: dataset.ExtraFilter, Column: "c"},
		},
		Variants: map[uint8]string{
			1: "SELECT a FROM t WHERE b = 'bad'",
			2: "SELECT a FROM t WHERE b = 'good' AND c = 1",
			3: "SELECT a FROM t WHERE b = 'bad' AND c = 1",
		},
		Annotatable: true,
	}
	fb, ok := annotator().Annotate(e, e.Variants[3], 1, false)
	if !ok || fb.TrapIndex != 0 {
		t.Fatalf("round 1 should target trap 0: %+v", fb)
	}
	fb, ok = annotator().Annotate(e, e.Variants[2], 1, false)
	if !ok || fb.TrapIndex != 1 {
		t.Fatalf("with trap 0 fixed, should target trap 1: %+v", fb)
	}
	if !strings.Contains(fb.Text, "drop the condition on c") {
		t.Errorf("extra-filter feedback: %q", fb.Text)
	}
}

func TestGroundingHighlight(t *testing.T) {
	sql := "SELECT a FROM t WHERE x = 'one' AND y = 'two'"
	tr := dataset.Trap{Kind: dataset.WrongLiteral, Column: "y", Old: "'two'", New: "'three'", GroundingHard: true}
	h, ok := groundingHighlight(sql, tr)
	if !ok {
		t.Fatal("no highlight")
	}
	if h.Text != "y = 'two'" {
		t.Errorf("highlight text: %q", h.Text)
	}
	if sql[h.Start:h.End] != h.Text {
		t.Error("highlight span does not slice back")
	}
}

func TestGroundingHighlightNumeric(t *testing.T) {
	sql := "SELECT a FROM t WHERE x = 1 AND y >= 25"
	tr := dataset.Trap{Kind: dataset.WrongLiteral, Column: "y"}
	h, ok := groundingHighlight(sql, tr)
	if !ok || h.Text != "y >= 25" {
		t.Errorf("got %+v, %v", h, ok)
	}
}

func TestAnnotateAttachesHighlightOnlyWhenHardAndEnabled(t *testing.T) {
	e := twoVariantExample(dataset.WrongLiteral,
		dataset.Trap{Old: "'x'", New: "'y'", Column: "c", GroundingHard: true},
		"SELECT a FROM t WHERE b = 'k' AND c = 'y'",
		"SELECT a FROM t WHERE b = 'k' AND c = 'x'")
	fb, _ := annotator().Annotate(e, e.WrongSQL(), 1, true)
	if fb.Highlight == nil {
		t.Fatal("highlight missing")
	}
	fb, _ = annotator().Annotate(e, e.WrongSQL(), 1, false)
	if fb.Highlight != nil {
		t.Error("highlight attached with highlights disabled")
	}
}

func TestClauseOf(t *testing.T) {
	sel, err := sqlparse.ParseSelect("SELECT a FROM t WHERE b = 1 ORDER BY a ASC")
	if err != nil {
		t.Fatal(err)
	}
	text, spans := sqlast.PrintWithSpans(sel)
	idx := strings.Index(text, "b = 1")
	clause, ok := ClauseOf(spans, idx)
	if !ok || clause != sqlast.ClauseWhere {
		t.Errorf("clause at %d: %v, %v", idx, clause, ok)
	}
	if _, ok := ClauseOf(spans, len(text)+10); ok {
		t.Error("out-of-range offset should not resolve")
	}
}

func TestGroundingHighlightNoMatch(t *testing.T) {
	tr := dataset.Trap{Kind: dataset.WrongLiteral, Column: "absent"}
	if _, ok := groundingHighlight("SELECT a FROM t", tr); ok {
		t.Error("missing column should yield no highlight")
	}
	// Column present but no comparison after it.
	tr2 := dataset.Trap{Kind: dataset.WrongLiteral, Column: "a"}
	if _, ok := groundingHighlight("SELECT a FROM t", tr2); ok {
		t.Error("no comparison should yield no highlight")
	}
}

func TestLiteralEndAfterEdges(t *testing.T) {
	cases := []struct {
		in   string
		want int // -1 for no literal
	}{
		{"col = 'v'", len("col = 'v'")},
		{"col >= 42", len("col >= 42")},
		{"col = ", -1},
		{"col 'v'", -1}, // no operator
		{"col = 'unclosed", -1},
		{"col", -1},
	}
	for _, tc := range cases {
		if got := literalEndAfter(tc.in); got != tc.want {
			t.Errorf("literalEndAfter(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestAnnotatorFallbackPhrases(t *testing.T) {
	// Without callbacks, identifiers humanize.
	a := &Annotator{}
	e := twoVariantExample(dataset.ExtraColumn,
		dataset.Trap{Column: "song_name"},
		"SELECT name FROM t", "SELECT name, song_name FROM t")
	fb, ok := a.Annotate(e, e.WrongSQL(), 1, false)
	if !ok || !strings.Contains(fb.Text, "song name") {
		t.Errorf("fallback phrase: %q", fb.Text)
	}
}
