package feedback

import (
	"testing"

	"fisql/internal/dataset"
)

func TestLibraryCoversAllOps(t *testing.T) {
	seen := map[dataset.Op]int{}
	for _, e := range Library() {
		seen[e.Op]++
		if e.Demo.Feedback == "" || e.Demo.Original == "" || e.Demo.Updated == "" {
			t.Errorf("incomplete library entry: %+v", e)
		}
	}
	for _, op := range []dataset.Op{dataset.OpAdd, dataset.OpRemove, dataset.OpEdit} {
		if seen[op] < 2 {
			t.Errorf("library has only %d %v entries", seen[op], op)
		}
	}
}

func TestLibraryEntriesClassifyToTheirOp(t *testing.T) {
	for _, e := range Library() {
		if got := ClassifyRouted(e.Demo.Feedback); got != e.Op {
			t.Errorf("library feedback %q routes to %v, tagged %v", e.Demo.Feedback, got, e.Op)
		}
	}
}

func TestSelectDemosFallsBackToFixedSet(t *testing.T) {
	got := SelectDemos(dataset.OpEdit, "we are in 2024", "SELECT 1", 0)
	fixed := Demos(dataset.OpEdit)
	if len(got) != len(fixed) {
		t.Fatalf("k=0 should return the fixed set: %d vs %d", len(got), len(fixed))
	}
}

func TestSelectDemosRanksBySimilarity(t *testing.T) {
	// Year feedback should surface the year-edit demonstration first.
	got := SelectDemos(dataset.OpEdit, "we are in 2024",
		"SELECT COUNT(*) FROM hkg_dim_segment WHERE createdTime >= '2023-01-01'", 1)
	if len(got) != 1 {
		t.Fatalf("got %d demos", len(got))
	}
	if got[0].Feedback != "we are in 2024" {
		t.Errorf("top demo: %q", got[0].Feedback)
	}
	// Aggregate feedback should surface the aggregate-swap demonstration.
	got = SelectDemos(dataset.OpEdit, "I wanted the average, not the total",
		"SELECT SUM(salary) FROM employee", 1)
	if len(got) != 1 || got[0].Updated != "SELECT AVG(salary) FROM employee" {
		t.Errorf("aggregate demo not selected: %+v", got)
	}
}

func TestSelectDemosRespectsOpAndK(t *testing.T) {
	got := SelectDemos(dataset.OpRemove, "do not give the description", "SELECT id, description FROM product", 2)
	if len(got) > 2 {
		t.Fatalf("k not respected: %d", len(got))
	}
	for _, d := range got {
		if ClassifyRouted(d.Feedback) != dataset.OpRemove {
			t.Errorf("wrong-op demo selected: %q", d.Feedback)
		}
	}
}

func TestSelectDemosDeterministic(t *testing.T) {
	a := SelectDemos(dataset.OpAdd, "sort the results by age in ascending order", "SELECT name FROM t", 2)
	b := SelectDemos(dataset.OpAdd, "sort the results by age in ascending order", "SELECT name FROM t", 2)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].Feedback != b[i].Feedback {
			t.Fatal("nondeterministic ordering")
		}
	}
}
