package feedback

import (
	"sort"
	"strings"

	"fisql/internal/dataset"
)

// The paper's §5 names "routing enhanced with dynamic example selection
// based on query structure and feedback" as future work. This file
// implements it: a larger library of repair demonstrations tagged by
// operation type, and a selector that ranks them by lexical similarity to
// the live feedback (and the query it applies to) instead of always sending
// the fixed per-op set.

// LibraryEntry is a repair demonstration tagged with its operation type.
type LibraryEntry struct {
	Op   dataset.Op
	Demo RepairDemo
}

// Library returns the full demonstration library: the fixed sets of Demos
// plus additional coverage of each edit idiom.
func Library() []LibraryEntry {
	var out []LibraryEntry
	for _, op := range []dataset.Op{dataset.OpAdd, dataset.OpRemove, dataset.OpEdit} {
		for _, d := range Demos(op) {
			out = append(out, LibraryEntry{Op: op, Demo: d})
		}
	}
	out = append(out,
		LibraryEntry{Op: dataset.OpEdit, Demo: RepairDemo{
			Question: "What is the average salary of the employees?",
			Original: "SELECT SUM(salary) FROM employee",
			Feedback: "I wanted the average, not the total",
			Updated:  "SELECT AVG(salary) FROM employee",
		}},
		LibraryEntry{Op: dataset.OpEdit, Demo: RepairDemo{
			Question: "Show the titles of books from 'Ann'.",
			Original: "SELECT title FROM book WHERE author = 'Anna'",
			Feedback: "the author should be 'Ann'",
			Updated:  "SELECT title FROM book WHERE author = 'Ann'",
		}},
		LibraryEntry{Op: dataset.OpEdit, Demo: RepairDemo{
			Question: "How many products do we have?",
			Original: "SELECT COUNT(*) FROM supplier",
			Feedback: "I meant the products, not the suppliers",
			Updated:  "SELECT COUNT(*) FROM product",
		}},
		LibraryEntry{Op: dataset.OpAdd, Demo: RepairDemo{
			Question: "List the players.",
			Original: "SELECT player_name FROM player",
			Feedback: "only include those whose team is 'Ajax'",
			Updated:  "SELECT player_name FROM player WHERE team = 'Ajax'",
		}},
		LibraryEntry{Op: dataset.OpAdd, Demo: RepairDemo{
			Question: "List the trips.",
			Original: "SELECT trip_id FROM trip",
			Feedback: "only count those with duration greater than 30",
			Updated:  "SELECT trip_id FROM trip WHERE duration > 30",
		}},
		LibraryEntry{Op: dataset.OpRemove, Demo: RepairDemo{
			Question: "Show the loans from March.",
			Original: "SELECT loan_id FROM loan WHERE month = 'March' AND branch = 'Main'",
			Feedback: "drop the condition on branch",
			Updated:  "SELECT loan_id FROM loan WHERE month = 'March'",
		}},
	)
	return out
}

// SelectDemos ranks the library entries of the given operation type by
// token overlap with the feedback text (plus the current query, which
// carries structural hints) and returns the top k. With k <= 0 it falls
// back to the fixed set.
func SelectDemos(op dataset.Op, fbText, currentSQL string, k int) []RepairDemo {
	if k <= 0 {
		return Demos(op)
	}
	query := tokens(fbText + " " + currentSQL)
	type scored struct {
		demo  RepairDemo
		score float64
		idx   int
	}
	var hits []scored
	for i, entry := range Library() {
		if entry.Op != op {
			continue
		}
		s := overlapScore(query, tokens(entry.Demo.Feedback+" "+entry.Demo.Original))
		hits = append(hits, scored{demo: entry.Demo, score: s, idx: i})
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].score != hits[j].score {
			return hits[i].score > hits[j].score
		}
		return hits[i].idx < hits[j].idx
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	out := make([]RepairDemo, len(hits))
	for i, h := range hits {
		out[i] = h.demo
	}
	return out
}

func tokens(s string) map[string]bool {
	out := map[string]bool{}
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 1 { // skip single letters
			out[sb.String()] = true
		}
		sb.Reset()
	}
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '_' {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

func overlapScore(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	n := 0
	for w := range a {
		if b[w] {
			n++
		}
	}
	return float64(n) / float64(len(a)+len(b)-n)
}
