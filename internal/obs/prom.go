package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` header per metric family, families
// sorted by name, histogram buckets cumulative with a trailing `+Inf`
// bucket plus `_sum` and `_count` series. Output is deterministic for a
// given registry state, so it can be golden-tested. No-op on a nil
// registry.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bw.WriteString("# TYPE " + name + " counter\n")
		bw.WriteString(name + " " + strconv.FormatInt(snap.Counters[name], 10) + "\n")
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bw.WriteString("# TYPE " + name + " gauge\n")
		bw.WriteString(name + " " + strconv.FormatInt(snap.Gauges[name], 10) + "\n")
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		bw.WriteString("# TYPE " + name + " histogram\n")
		for _, b := range h.Buckets {
			bw.WriteString(name + `_bucket{le="` + b.LE + `"} ` +
				strconv.FormatInt(b.Count, 10) + "\n")
		}
		bw.WriteString(name + "_sum " + strconv.FormatFloat(h.SumSeconds, 'g', -1, 64) + "\n")
		bw.WriteString(name + "_count " + strconv.FormatInt(h.Count, 10) + "\n")
	}
	return bw.Flush()
}
