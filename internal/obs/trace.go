package obs

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Stage identifies one pipeline stage of the assistant request path or the
// feedback-correction path. Stage durations are recorded per request by a
// Trace and folded into per-stage latency histograms.
type Stage int

const (
	// StageRetrieve is the RAG demonstration search.
	StageRetrieve Stage = iota
	// StagePrompt is prompt assembly (NL2SQL, repair).
	StagePrompt
	// StageLLM is the generation chat-completion call.
	StageLLM
	// StagePlan is SQL parse + planning (or the plan-cache lookup).
	StagePlan
	// StageExecute is query execution.
	StageExecute
	// StageRender is answer presentation + wire encoding.
	StageRender
	// StageRoute is feedback-type identification (the routing LLM call).
	StageRoute
	// StageRepair is the feedback re-prompt chat-completion call.
	StageRepair

	// NumStages is the number of traced stages.
	NumStages
)

var stageNames = [NumStages]string{
	"retrieve", "prompt", "llm", "plan", "execute", "render", "route", "repair",
}

// String returns the stage's short name ("llm", "execute", ...).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// MetricName returns the stage histogram's registry name
// ("fisql_stage_llm_seconds", ...).
func (s Stage) MetricName() string { return "fisql_stage_" + s.String() + "_seconds" }

// Metrics bundles a registry with the pre-resolved per-stage latency
// histograms and a trace pool. It is the handle instrumented servers and
// harnesses hold; a nil *Metrics disables all tracing at zero cost
// (StartTrace returns a nil Trace whose every method is a no-op). Safe for
// concurrent use.
type Metrics struct {
	Registry *Registry
	stages   [NumStages]*Histogram
	traces   sync.Pool
}

// NewMetrics builds a registry with the per-stage histograms registered.
func NewMetrics() *Metrics {
	m := &Metrics{Registry: NewRegistry()}
	for s := Stage(0); s < NumStages; s++ {
		m.stages[s] = m.Registry.Histogram(s.MetricName(), nil)
	}
	m.traces.New = func() any { return &Trace{m: m} }
	return m
}

// StageHistogram returns the histogram behind one stage (nil on nil m).
func (m *Metrics) StageHistogram(s Stage) *Histogram {
	if m == nil || s < 0 || s >= NumStages {
		return nil
	}
	return m.stages[s]
}

// StartTrace returns a pooled per-request trace, or nil when m is nil. The
// caller must call Finish exactly once when the request completes; all
// Spans must have ended by then.
func (m *Metrics) StartTrace() *Trace {
	if m == nil {
		return nil
	}
	return m.traces.Get().(*Trace)
}

// Trace accumulates one request's per-stage durations. A stage entered
// more than once per request (two LLM calls in one correction) accumulates.
// A nil Trace is the disabled fast path: Start performs no clock read and
// Finish is a no-op. A Trace must not be shared across goroutines.
type Trace struct {
	m    *Metrics
	durs [NumStages]time.Duration
}

// Span is an open stage timing, closed by End. The zero Span (from a nil
// Trace) is a no-op.
type Span struct {
	tr    *Trace
	stage Stage
	start time.Time
}

// Start opens a span on the stage. On a nil Trace it returns the no-op
// zero Span without reading the clock.
func (t *Trace) Start(s Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, stage: s, start: time.Now()}
}

// End closes the span, accumulating its elapsed time on the trace.
func (sp Span) End() {
	if sp.tr == nil {
		return
	}
	sp.tr.durs[sp.stage] += time.Since(sp.start)
}

// Dur reports the accumulated duration of one stage (0 on a nil Trace) —
// for tests and in-flight inspection.
func (t *Trace) Dur(s Stage) time.Duration {
	if t == nil || s < 0 || s >= NumStages {
		return 0
	}
	return t.durs[s]
}

// Finish folds the trace's stage durations into the per-stage histograms
// (one observation per touched stage: a request's total time in that
// stage) and recycles the trace. The Trace must not be used after Finish.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	for s := range t.durs {
		if t.durs[s] > 0 {
			t.m.stages[s].Observe(t.durs[s])
			t.durs[s] = 0
		}
	}
	t.m.traces.Put(t)
}

// ----------------------------------------------------------------------------
// Context plumbing

type traceKey struct{}

// WithTrace attaches the trace to the context; a nil trace returns ctx
// unchanged so the disabled path allocates nothing.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when none is attached —
// and every method on that nil trace is a no-op, so instrumented code
// calls through unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ----------------------------------------------------------------------------
// Reporting

// StageStat is one stage's aggregate timing summary.
type StageStat struct {
	Stage string
	Count int64
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Mean  time.Duration
}

// StageStats summarizes every stage with at least one observation, in
// stage order. Empty on a nil Metrics.
func (m *Metrics) StageStats() []StageStat {
	if m == nil {
		return nil
	}
	var out []StageStat
	for s := Stage(0); s < NumStages; s++ {
		h := m.stages[s]
		n := h.Count()
		if n == 0 {
			continue
		}
		out = append(out, StageStat{
			Stage: s.String(),
			Count: n,
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			Mean:  h.Sum() / time.Duration(n),
		})
	}
	return out
}

// WriteStageSummary prints a human-readable per-stage timing table — the
// aggregate breakdown fisql-eval and fisql-loadgen report.
func (m *Metrics) WriteStageSummary(w io.Writer) {
	stats := m.StageStats()
	if len(stats) == 0 {
		fmt.Fprintln(w, "stage timings: no observations")
		return
	}
	fmt.Fprintf(w, "%-10s %10s %12s %12s %12s %12s\n",
		"stage", "count", "p50", "p95", "p99", "mean")
	for _, st := range stats {
		fmt.Fprintf(w, "%-10s %10d %12s %12s %12s %12s\n",
			st.Stage, st.Count, fmtDur(st.P50), fmtDur(st.P95), fmtDur(st.P99), fmtDur(st.Mean))
	}
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Nanoseconds())/1e6)
}

// SortedHistogramNames returns the snapshot's histogram names sorted — a
// convenience for consumers rendering stable reports.
func (s Snapshot) SortedHistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
