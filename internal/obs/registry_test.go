package obs

import (
	"math"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

// TestNilRegistryAndMetricsAreNoOps pins the disabled-mode contract: a nil
// registry hands out nil metrics and every operation on them is safe.
func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a non-nil counter")
	}
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(5)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("x", nil)
	h.Observe(time.Second)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram recorded something")
	}
	r.CounterFunc("x", func() int64 { return 1 })
	r.GaugeFunc("x", func() int64 { return 1 })
	if err := r.WritePrometheus(nil); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Errorf("nil snapshot not empty: %+v", snap)
	}
}

// TestHistogramBucketBoundaries pins the le (inclusive upper bound)
// semantics, the underflow region and the +Inf overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // underflow region -> bucket le=0.001
	h.Observe(time.Millisecond)       // exactly on a bound -> that bucket (le)
	h.Observe(5 * time.Millisecond)   // -> le=0.01
	h.Observe(100 * time.Millisecond) // exactly the top bound -> le=0.1
	h.Observe(200 * time.Millisecond) // -> +Inf overflow
	h.Observe(time.Hour)              // far overflow

	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	wantSum := 500*time.Microsecond + time.Millisecond + 5*time.Millisecond +
		100*time.Millisecond + 200*time.Millisecond + time.Hour
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

// near reports a ≈ b within a relative tolerance, for interpolated values.
func near(a, b time.Duration) bool {
	diff := math.Abs(float64(a - b))
	return diff <= 0.001*math.Max(math.Abs(float64(a)), math.Abs(float64(b)))+1
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// 100 identical observations landing in the (0.001, 0.01] bucket: the
	// p50 rank sits halfway through the bucket, so linear interpolation
	// reports lo + 0.5*(hi-lo) = 5.5ms.
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 100; i++ {
		h.Observe(5 * time.Millisecond)
	}
	if got := h.Quantile(0.50); !near(got, 5500*time.Microsecond) {
		t.Errorf("p50 = %v, want ~5.5ms", got)
	}
	if got := h.Quantile(0.99); !near(got, time.Duration(0.001e9+0.99*0.009e9)) {
		t.Errorf("p99 = %v, want ~9.91ms", got)
	}
}

func TestHistogramQuantileUnderflowRegion(t *testing.T) {
	// Observations below the first bound interpolate from a lower edge of
	// zero, not from the first bound.
	h := NewHistogram([]float64{0.001, 0.01})
	for i := 0; i < 10; i++ {
		h.Observe(500 * time.Microsecond)
	}
	if got := h.Quantile(0.50); !near(got, 500*time.Microsecond) {
		t.Errorf("p50 = %v, want ~0.5ms", got)
	}
}

func TestHistogramQuantileOverflowClamps(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.1})
	for i := 0; i < 5; i++ {
		h.Observe(30 * time.Second)
	}
	// Every rank lands in +Inf; the estimate clamps to the top finite bound.
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100*time.Millisecond {
			t.Errorf("q%.2f = %v, want 100ms (top finite bound)", q, got)
		}
	}
}

func TestHistogramQuantileSplitAcrossOverflow(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.1})
	for i := 0; i < 99; i++ {
		h.Observe(500 * time.Microsecond)
	}
	h.Observe(time.Minute)
	// Rank 99 is exactly the top of the first bucket.
	if got := h.Quantile(0.99); !near(got, time.Millisecond) {
		t.Errorf("p99 = %v, want ~1ms", got)
	}
	// Rank 100 crosses into the overflow bucket and clamps.
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}

func TestCounterAndGaugeFuncsSum(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("hits", func() int64 { return 3 })
	r.CounterFunc("hits", func() int64 { return 4 })
	r.Counter("hits").Add(2)
	r.GaugeFunc("live", func() int64 { return 5 })
	r.GaugeFunc("live", func() int64 { return 6 })
	snap := r.Snapshot()
	if got := snap.Counters["hits"]; got != 9 {
		t.Errorf("summed counter = %d, want 9 (2 direct + 3 + 4)", got)
	}
	if got := snap.Gauges["live"]; got != 11 {
		t.Errorf("summed gauge = %d, want 11", got)
	}
}

func TestSnapshotHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	hs, ok := r.Snapshot().Histograms["lat"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 3 {
		t.Errorf("count = %d, want 3", hs.Count)
	}
	if math.Abs(hs.SumSeconds-0.0255) > 1e-9 {
		t.Errorf("sum = %v, want 0.0255", hs.SumSeconds)
	}
	wantBuckets := []BucketCount{{LE: "0.001", Count: 1}, {LE: "0.01", Count: 2}, {LE: "+Inf", Count: 3}}
	if len(hs.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, wantBuckets)
	}
	for i, b := range wantBuckets {
		if hs.Buckets[i] != b {
			t.Errorf("bucket[%d] = %+v, want %+v", i, hs.Buckets[i], b)
		}
	}
	if hs.P99ms <= 0 {
		t.Errorf("p99 = %v, want > 0", hs.P99ms)
	}
}
