package obs

import (
	"strings"
	"testing"
	"time"
)

// TestPrometheusGolden pins the exact text exposition bytes: family order
// (counters, gauges, histograms; each sorted by name), TYPE headers,
// cumulative buckets with a trailing +Inf, and _sum/_count series.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total").Add(3)
	r.CounterFunc("t_cache_hits_total", func() int64 { return 7 })
	r.Gauge("t_live").Set(2)
	h := r.Histogram("t_lat_seconds", []float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(20 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE t_cache_hits_total counter
t_cache_hits_total 7
# TYPE t_requests_total counter
t_requests_total 3
# TYPE t_live gauge
t_live 2
# TYPE t_lat_seconds histogram
t_lat_seconds_bucket{le="0.001"} 1
t_lat_seconds_bucket{le="0.01"} 2
t_lat_seconds_bucket{le="+Inf"} 3
t_lat_seconds_sum 0.0255
t_lat_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("prometheus text mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestPrometheusDefaultBounds sanity-checks that a default-bounds latency
// histogram renders a parseable family (every line either a comment or
// "name value"), with as many bucket lines as bounds plus one.
func TestPrometheusDefaultBounds(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h_seconds", nil).Observe(3 * time.Millisecond)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	buckets := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable sample line %q", line)
		}
		if strings.HasPrefix(line, "h_seconds_bucket{") {
			buckets++
		}
	}
	if want := len(DefaultLatencyBounds) + 1; buckets != want {
		t.Errorf("bucket lines = %d, want %d", buckets, want)
	}
}
