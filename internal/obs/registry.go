// Package obs is the observability subsystem: a lightweight metrics
// registry (counters, gauges, fixed-bucket latency histograms) plus
// per-request trace spans threaded through context.Context (see trace.go).
//
// Two properties shape the design:
//
//   - Zero cost when disabled. Every type is nil-receiver-safe: a nil
//     *Registry hands out nil metrics, and every method on a nil *Counter,
//     *Gauge, *Histogram, *Trace or zero Span is a no-op that performs no
//     clock reads and no allocation. Instrumented code therefore never
//     branches on "is observability on" — it just calls through, and the
//     disabled path folds to a handful of nil checks.
//
//   - Safe under heavy concurrency. All mutation is lock-free
//     (sync/atomic); the registry's name→metric maps take a mutex only on
//     first registration and on scrape, never per observation.
//
// Components that should not depend on this package (the execution engine,
// the answer memo, the session store) keep their own cheap atomic tallies
// and are surfaced at wiring time through CounterFunc/GaugeFunc readouts.
package obs

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing tally. The zero value is ready to
// use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current tally (0 on a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. The zero value is ready to use; a nil
// Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on a nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the fixed histogram bucket upper bounds, in
// seconds, used for every latency histogram built without explicit bounds.
// They span 100µs to 2.5s — the serving path's observed range from cache
// hits to cold multi-join corrections — with a final implicit +Inf bucket
// catching everything slower.
var DefaultLatencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// lock-free atomic adds; quantiles are estimated at scrape time by linear
// interpolation within the bucket containing the target rank (the same
// estimate Prometheus's histogram_quantile computes). A nil Histogram
// discards all observations.
type Histogram struct {
	// bounds are the inclusive bucket upper bounds in seconds, strictly
	// increasing. buckets has len(bounds)+1 slots; the last is the +Inf
	// overflow bucket.
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// NewHistogram builds a histogram with the given bucket upper bounds in
// seconds (nil means DefaultLatencyBounds). Bounds must be sorted strictly
// increasing.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	s := d.Seconds()
	// First bucket whose upper bound is >= s; misses on every bound land
	// in the trailing +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, s)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the target bucket. The underflow region interpolates from 0; a
// rank landing in the +Inf overflow bucket reports the highest finite
// bound (there is no upper edge to interpolate toward). An empty or nil
// histogram reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.buckets))
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		if float64(cum)+float64(n) < rank || n == 0 {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: clamp to the last finite bound.
			return secondsToDuration(h.bounds[len(h.bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(cum)) / float64(n)
		return secondsToDuration(lo + frac*(hi-lo))
	}
	return secondsToDuration(h.bounds[len(h.bounds)-1])
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// ----------------------------------------------------------------------------

// Registry is a named collection of metrics. Metric lookups take the
// registry mutex; instrumented code should resolve its metrics once at
// wiring time and hold the pointers, leaving only atomic updates on the
// hot path. A nil Registry hands out nil metrics, so a fully disabled
// deployment costs nothing. Safe for concurrent use.
type Registry struct {
	mu           sync.Mutex
	counters     map[string]*Counter
	gauges       map[string]*Gauge
	hists        map[string]*Histogram
	counterFuncs map[string][]func() int64
	gaugeFuncs   map[string][]func() int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		hists:        map[string]*Histogram{},
		counterFuncs: map[string][]func() int64{},
		gaugeFuncs:   map[string][]func() int64{},
	}
}

// Counter returns the named counter, registering it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bounds (nil means DefaultLatencyBounds) on first use; later calls return
// the existing histogram regardless of bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a read-time counter source: components that keep
// their own atomic tallies (the plan cache, the answer memo, the session
// store) surface them without importing this package. Multiple sources
// under one name sum — two corpora each registering their plan cache
// report one combined tally. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = append(r.counterFuncs[name], fn)
}

// GaugeFunc registers a read-time gauge source; multiple sources under one
// name sum. No-op on a nil registry.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = append(r.gaugeFuncs[name], fn)
}

// ----------------------------------------------------------------------------
// Snapshots

// Snapshot is a point-in-time JSON-encodable view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot summarizes one histogram: totals, interpolated
// quantiles in milliseconds, and the cumulative bucket counts.
type HistogramSnapshot struct {
	Count      int64         `json:"count"`
	SumSeconds float64       `json:"sum_seconds"`
	P50ms      float64       `json:"p50_ms"`
	P95ms      float64       `json:"p95_ms"`
	P99ms      float64       `json:"p99_ms"`
	Buckets    []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket. LE is the upper bound in
// seconds rendered as a string ("0.005", "+Inf") — a string because JSON
// cannot encode infinity.
type BucketCount struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// Snapshot captures every metric. Concurrent updates during the capture
// may land in some metrics and not others; each individual metric is read
// atomically. Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] += c.Value()
	}
	for name, fns := range r.counterFuncs {
		for _, fn := range fns {
			snap.Counters[name] += fn()
		}
	}
	for name, g := range r.gauges {
		snap.Gauges[name] += g.Value()
	}
	for name, fns := range r.gaugeFuncs {
		for _, fn := range fns {
			snap.Gauges[name] += fn()
		}
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	return snap
}

func (h *Histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Count:      h.Count(),
		SumSeconds: h.Sum().Seconds(),
		P50ms:      durToMs(h.Quantile(0.50)),
		P95ms:      durToMs(h.Quantile(0.95)),
		P99ms:      durToMs(h.Quantile(0.99)),
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		out.Buckets = append(out.Buckets, BucketCount{LE: le, Count: cum})
	}
	return out
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func durToMs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
