package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceRecordsStages(t *testing.T) {
	m := NewMetrics()
	tr := m.StartTrace()
	sp := tr.Start(StageLLM)
	time.Sleep(time.Millisecond)
	sp.End()
	// A stage entered twice accumulates into one per-request observation.
	sp = tr.Start(StageLLM)
	sp.End()
	if tr.Dur(StageLLM) <= 0 {
		t.Fatal("no accumulated llm duration")
	}
	if tr.Dur(StageExecute) != 0 {
		t.Error("untouched stage has duration")
	}
	tr.Finish()
	if got := m.StageHistogram(StageLLM).Count(); got != 1 {
		t.Errorf("llm histogram count = %d, want 1 (accumulated per request)", got)
	}
	if got := m.StageHistogram(StageExecute).Count(); got != 0 {
		t.Errorf("execute histogram count = %d, want 0", got)
	}
}

func TestNilTraceIsNoOp(t *testing.T) {
	var m *Metrics
	tr := m.StartTrace()
	if tr != nil {
		t.Fatal("nil Metrics returned a trace")
	}
	sp := tr.Start(StageLLM) // must not panic or read the clock
	sp.End()
	if tr.Dur(StageLLM) != 0 {
		t.Error("nil trace has duration")
	}
	tr.Finish()
	if m.StageHistogram(StageLLM) != nil {
		t.Error("nil Metrics returned a histogram")
	}
	if m.StageStats() != nil {
		t.Error("nil Metrics returned stage stats")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceFrom(ctx); got != nil {
		t.Fatal("empty context yielded a trace")
	}
	// Attaching a nil trace must not allocate a new context.
	if got := WithTrace(ctx, nil); got != ctx {
		t.Error("WithTrace(nil) wrapped the context")
	}
	m := NewMetrics()
	tr := m.StartTrace()
	ctx2 := WithTrace(ctx, tr)
	if got := TraceFrom(ctx2); got != tr {
		t.Errorf("TraceFrom = %p, want %p", got, tr)
	}
	tr.Finish()
}

func TestTracePoolReuseResets(t *testing.T) {
	m := NewMetrics()
	tr := m.StartTrace()
	sp := tr.Start(StagePlan)
	time.Sleep(100 * time.Microsecond)
	sp.End()
	tr.Finish()
	// The recycled trace must come back clean.
	tr2 := m.StartTrace()
	for s := Stage(0); s < NumStages; s++ {
		if d := tr2.Dur(s); d != 0 {
			t.Errorf("recycled trace stage %s has leftover duration %v", s, d)
		}
	}
	tr2.Finish()
}

func TestStageNamesAndMetricNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		name := s.String()
		if name == "" || strings.Contains(name, "(") {
			t.Errorf("stage %d has no name", s)
		}
		if seen[name] {
			t.Errorf("duplicate stage name %q", name)
		}
		seen[name] = true
		if got := s.MetricName(); got != "fisql_stage_"+name+"_seconds" {
			t.Errorf("metric name = %q", got)
		}
	}
	if got := Stage(99).String(); got != "stage(99)" {
		t.Errorf("out-of-range stage name = %q", got)
	}
}

func TestStageStatsAndSummary(t *testing.T) {
	m := NewMetrics()
	tr := m.StartTrace()
	sp := tr.Start(StageExecute)
	time.Sleep(200 * time.Microsecond)
	sp.End()
	tr.Finish()
	stats := m.StageStats()
	if len(stats) != 1 || stats[0].Stage != "execute" || stats[0].Count != 1 {
		t.Fatalf("stats = %+v, want one execute entry", stats)
	}
	if stats[0].P50 <= 0 || stats[0].Mean <= 0 {
		t.Errorf("zero quantiles: %+v", stats[0])
	}
	var sb strings.Builder
	m.WriteStageSummary(&sb)
	if !strings.Contains(sb.String(), "execute") {
		t.Errorf("summary missing stage row:\n%s", sb.String())
	}
}
