package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentStress hammers one registry from many goroutines —
// first-use registration races, atomic updates, and concurrent scrapes —
// and verifies the final tallies. Run under -race, this is the
// thread-safety gate for the registry.
func TestRegistryConcurrentStress(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("func_total", func() int64 { return 1 })
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Re-resolving by name every iteration deliberately races
				// the registration path, not just the update path.
				r.Counter("shared_total").Inc()
				r.Gauge("gauge").Set(int64(i))
				r.Histogram("lat_seconds", nil).Observe(time.Duration(i%10+1) * time.Millisecond)
				if i%500 == 0 {
					snap := r.Snapshot()
					if snap.Counters["shared_total"] < 0 {
						t.Error("negative counter")
					}
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(g)
	}
	wg.Wait()
	if got, want := r.Counter("shared_total").Value(), int64(goroutines*iters); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got, want := r.Histogram("lat_seconds", nil).Count(), int64(goroutines*iters); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

// TestMetricsConcurrentTraces runs many request-shaped trace lifecycles in
// parallel against one Metrics — the serving pattern — and checks the
// per-stage observation totals.
func TestMetricsConcurrentTraces(t *testing.T) {
	m := NewMetrics()
	const goroutines = 8
	const reqs = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				tr := m.StartTrace()
				sp := tr.Start(StageLLM)
				sp.End()
				sp = tr.Start(StageExecute)
				sp.End()
				tr.Finish()
			}
		}()
	}
	wg.Wait()
	if got, want := m.StageHistogram(StageLLM).Count(), int64(goroutines*reqs); got != want {
		t.Errorf("llm observations = %d, want %d", got, want)
	}
	if got, want := m.StageHistogram(StageExecute).Count(), int64(goroutines*reqs); got != want {
		t.Errorf("execute observations = %d, want %d", got, want)
	}
	if got := m.StageHistogram(StageRetrieve).Count(); got != 0 {
		t.Errorf("untouched stage has %d observations", got)
	}
}
