package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/engine"
	"fisql/internal/llm"
	"fisql/internal/rag"
)

type testFactory struct {
	ds    *dataset.Dataset
	sim   *llm.Sim
	store *rag.Store
	cache *engine.Cache
}

func (f *testFactory) NewSession(db string) *core.Session {
	asst := &assistant.Assistant{Client: f.sim, DS: f.ds, Store: f.store, K: 8, Cache: f.cache}
	method := &core.FISQL{Client: f.sim, DS: f.ds, Store: f.store, K: 8, Routing: true, Highlights: true}
	return core.NewSession(asst, method, db)
}

func (f *testFactory) Databases() []string {
	var out []string
	for name := range f.ds.Schemas {
		out = append(out, name)
	}
	return out
}

var (
	srvOnce    sync.Once
	srvFactory *testFactory
	srvTS      *httptest.Server
	srvErr     error
)

func buildSharedFactory() {
	ds, err := aep.Build()
	if err != nil {
		srvErr = err
		return
	}
	srvFactory = &testFactory{ds: ds, sim: llm.NewSim(ds), store: rag.NewStore(ds.Demos),
		cache: engine.NewCache(0)}
	srvTS = httptest.NewServer(New(map[string]SessionFactory{"aep": srvFactory}))
}

func factory(t *testing.T) *testFactory {
	t.Helper()
	srvOnce.Do(buildSharedFactory)
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvFactory
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	factory(t)
	return srvTS
}

func postJSONRaw(url string, body any) (*http.Response, map[string]any, error) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out, nil
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	resp, out, err := postJSONRaw(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func TestDatabasesEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/databases?corpus=aep")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Databases []string `json:"databases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Databases) != 1 || out.Databases[0] != "experience_platform" {
		t.Errorf("databases: %v", out.Databases)
	}
}

func TestUnknownCorpus(t *testing.T) {
	ts := testServer(t)
	resp, _ := http.Get(ts.URL + "/v1/databases?corpus=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d", resp.StatusCode)
	}
	resp2, _ := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "nope"})
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("create status %d", resp2.StatusCode)
	}
}

func TestAskFeedbackFlow(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	id, _ := created["session_id"].(string)
	if id == "" {
		t.Fatalf("no session id: %v", created)
	}
	base := ts.URL + "/v1/sessions/" + id

	resp, ans := postJSON(t, base+"/ask", map[string]string{
		"question": "How many audiences were created in January?"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask: %d %v", resp.StatusCode, ans)
	}
	sql, _ := ans["sql"].(string)
	if !strings.Contains(sql, "2023") {
		t.Fatalf("trap did not fire: %q", sql)
	}

	resp, ans = postJSON(t, base+"/feedback", map[string]string{"text": "we are in 2024"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback: %d %v", resp.StatusCode, ans)
	}
	sql, _ = ans["sql"].(string)
	if !strings.Contains(sql, "2024-01-01") {
		t.Errorf("feedback not applied: %q", sql)
	}

	// History reflects the four turns.
	hresp, err := http.Get(base + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hist struct {
		Turns []struct{ Role, Text string } `json:"turns"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Turns) != 4 {
		t.Errorf("history turns: %d", len(hist.Turns))
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	base := ts.URL + "/v1/sessions/" + id

	resp, _ := postJSON(t, base+"/ask", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, base+"/feedback", map[string]string{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty feedback: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sessions/sNOPE/ask", map[string]string{"question": "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep", "db": "wrong"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown db: %d", resp.StatusCode)
	}
}

func TestHighlightParameter(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	base := ts.URL + "/v1/sessions/" + id
	_, ans := postJSON(t, base+"/ask", map[string]string{
		"question": "How many audiences were created in January?"})
	sql, _ := ans["sql"].(string)
	// Highlight an existing fragment; the call should succeed even when the
	// highlight is not needed for this repair.
	frag := sql[:10]
	resp, _ := postJSON(t, base+"/feedback", map[string]string{
		"text": "we are in 2024", "highlight": frag})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("feedback with highlight: %d", resp.StatusCode)
	}
}

func TestHighlightNotInSQLRejected(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	base := ts.URL + "/v1/sessions/" + id
	_, _ = postJSON(t, base+"/ask", map[string]string{
		"question": "How many audiences were created in January?"})
	// Regression: a highlight absent from the current SQL used to be
	// silently dropped; the client must learn its grounding was ignored.
	resp, out := postJSON(t, base+"/feedback", map[string]string{
		"text": "we are in 2024", "highlight": "NO SUCH FRAGMENT"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unmatched highlight: status %d, body %v", resp.StatusCode, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "highlight") {
		t.Errorf("error message should mention the highlight: %q", msg)
	}
}

func TestDeleteSession(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	base := ts.URL + "/v1/sessions/" + id

	req, _ := http.NewRequest(http.MethodDelete, base, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}

	// The session is gone for every endpoint.
	resp2, _ := postJSON(t, base+"/ask", map[string]string{"question": "x"})
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("ask after delete: %d", resp2.StatusCode)
	}
	// Deleting again 404s.
	resp3, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: %d", resp3.StatusCode)
	}
}

// TestSessionCapEvictsOldest checks the -max-sessions bound: the session
// map never exceeds the cap and the oldest session is evicted first.
func TestSessionCapEvictsOldest(t *testing.T) {
	f := factory(t)
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": f}, WithMaxSessions(2)))
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		if id == "" {
			t.Fatalf("create %d failed: %v", i, created)
		}
		ids = append(ids, id)
	}
	// Session 0 was evicted by session 2; sessions 1 and 2 survive.
	resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+ids[0]+"/ask", map[string]string{"question": "x"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest should be evicted: %d", resp.StatusCode)
	}
	for _, id := range ids[1:] {
		resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{
			"question": "How many audiences were created in January?"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("session %s should survive: %d", id, resp.StatusCode)
		}
	}
}
