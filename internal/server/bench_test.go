package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/core"
)

// memoFactory is the production configuration: sessions share the
// system-wide plan cache and answer memo, like fisql.System wires them.
type memoFactory struct {
	*testFactory
	memo *assistant.AnswerMemo
}

func (f *memoFactory) NewSession(db string) *core.Session {
	asst := &assistant.Assistant{Client: f.sim, DS: f.ds, Store: f.store, K: 8,
		Cache: f.cache, Memo: f.memo}
	method := &core.FISQL{Client: f.sim, DS: f.ds, Store: f.store, K: 8, Routing: true, Highlights: true}
	return core.NewSession(asst, method, db)
}

func benchServer(b *testing.B, memo bool) (*httptest.Server, []string) {
	b.Helper()
	f := benchFactory(b)
	var sf SessionFactory = f
	if memo {
		sf = &memoFactory{testFactory: f, memo: assistant.NewAnswerMemo(0)}
	}
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": sf}))
	b.Cleanup(ts.Close)
	var questions []string
	for _, e := range f.ds.Examples {
		questions = append(questions, e.Question)
	}
	return ts, questions
}

func benchFactory(b *testing.B) *testFactory {
	b.Helper()
	srvOnce.Do(buildSharedFactory)
	if srvErr != nil {
		b.Fatal(srvErr)
	}
	return srvFactory
}

func benchCreateSession(b *testing.B, ts *httptest.Server) string {
	b.Helper()
	resp, out := benchPostJSON(b, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("create session: %d", resp.StatusCode)
	}
	id, _ := out["session_id"].(string)
	if id == "" {
		b.Fatal("no session id")
	}
	return id
}

func benchPostJSON(b *testing.B, url string, body any) (*http.Response, map[string]any) {
	b.Helper()
	resp, out, err := postJSONRaw(url, body)
	if err != nil {
		b.Fatal(err)
	}
	return resp, out
}

// BenchmarkServerAskMemoized measures repeated identical asks with the
// cross-session answer memo: after the first request, the full pipeline is
// skipped and the cached wire bytes are replayed.
func BenchmarkServerAskMemoized(b *testing.B) {
	ts, questions := benchServer(b, true)
	id := benchCreateSession(b, ts)
	url := ts.URL + "/v1/sessions/" + id + "/ask"
	q := questions[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := benchPostJSON(b, url, map[string]string{"question": q})
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServerAskUncached measures the same traffic without the memo —
// the full RAG → prompt → LLM → parse → execute pipeline per request.
func BenchmarkServerAskUncached(b *testing.B) {
	ts, questions := benchServer(b, false)
	id := benchCreateSession(b, ts)
	url := ts.URL + "/v1/sessions/" + id + "/ask"
	q := questions[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, _ := benchPostJSON(b, url, map[string]string{"question": q})
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkServerMixed drives the ask/feedback/history mix of the loadgen
// through concurrent sessions — the serving-path macro-benchmark.
func BenchmarkServerMixed(b *testing.B) {
	ts, questions := benchServer(b, true)
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := benchCreateSession(b, ts)
		base := ts.URL + "/v1/sessions/" + id
		// First request of a session must be an ask.
		n := int(ctr.Add(1))
		benchPostJSON(b, base+"/ask", map[string]string{"question": questions[n%len(questions)]})
		for pb.Next() {
			n = int(ctr.Add(1))
			switch n % 10 {
			case 0, 1, 2, 3, 4: // 50% ask
				resp, _ := benchPostJSON(b, base+"/ask", map[string]string{"question": questions[n%len(questions)]})
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("ask status %d", resp.StatusCode)
				}
			case 5, 6, 7: // 30% feedback
				resp, _ := benchPostJSON(b, base+"/feedback", map[string]string{"text": "we are in 2024"})
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("feedback status %d", resp.StatusCode)
				}
			default: // 20% history
				resp, err := http.Get(base + "/history")
				if err != nil {
					b.Fatal(err)
				}
				drainBody(resp)
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("history status %d", resp.StatusCode)
				}
			}
		}
	})
}

// BenchmarkSessionStore measures raw store throughput: create, touch, and
// delete across shards with no HTTP or pipeline in the way.
func BenchmarkSessionStore(b *testing.B) {
	st := newSessionStore(1024, 0)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			id := fmt.Sprintf("s%d", i)
			st.put(id, &session{})
			st.get(id)
			st.remove(id)
			i++
		}
	})
}
