package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/core"
)

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Status   string `json:"status"`
		Sessions *int   `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "ok" || out.Sessions == nil {
		t.Errorf("healthz body: %+v", out)
	}
}

// TestHistoryWireFormat pins the /history body bytes: the incremental
// fragment cache must produce exactly what a full json.Marshal of the
// response object would, and a fresh session must report "turns": [] —
// an empty conversation, not an unknown one (null).
func TestHistoryWireFormat(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	base := ts.URL + "/v1/sessions/" + id

	getBody := func() string {
		t.Helper()
		resp, err := http.Get(base + "/history")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("history: %d %s", resp.StatusCode, b)
		}
		return string(b)
	}

	if got, want := getBody(), `{"db":"experience_platform","turns":[]}`+"\n"; got != want {
		t.Errorf("fresh history body = %q, want %q", got, want)
	}

	question := "How many audiences were created in January?"
	postJSON(t, base+"/ask", map[string]string{"question": question})
	postJSON(t, base+"/feedback", map[string]string{"text": "we are in 2024"})

	// Reference encoding, computed the way the pre-incremental server did.
	type turn struct {
		Role string `json:"role"`
		Text string `json:"text"`
	}
	hresp, _ := http.Get(base + "/history")
	var decoded struct {
		DB    string `json:"db"`
		Turns []turn `json:"turns"`
	}
	body, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatalf("history did not decode: %v", err)
	}
	want, _ := json.Marshal(map[string]any{"db": decoded.DB, "turns": decoded.Turns})
	if string(body) != string(want)+"\n" {
		t.Errorf("incremental history = %q\nwant full-marshal form %q", body, want)
	}
	if len(decoded.Turns) != 4 {
		t.Errorf("turns = %d, want 4", len(decoded.Turns))
	}
	// A second read replays the cached fragments; bytes must be stable.
	if got := getBody(); got != string(body) {
		t.Errorf("second history read differs:\n%q\n%q", got, body)
	}
}

// TestLockLiveGone checks the zombie-session guard: a handler that looked a
// session up before it was evicted answers 410 Gone, not a success on state
// nobody can see again.
func TestLockLiveGone(t *testing.T) {
	srv := &Server{}
	sess := &session{}
	rec := httptest.NewRecorder()
	if !srv.lockLive(rec, sess) {
		t.Fatal("live session should lock")
	}
	sess.mu.Unlock()

	sess.gone.Store(true)
	rec = httptest.NewRecorder()
	if srv.lockLive(rec, sess) {
		t.Fatal("gone session must not lock")
	}
	if rec.Code != http.StatusGone {
		t.Errorf("status = %d, want 410", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("410 body is not JSON: %v", err)
	}
	if msg, _ := out["error"].(string); msg != "session evicted" {
		t.Errorf("error = %q", msg)
	}
}

// plainFactory builds sessions with no plan cache and no answer memo — the
// seed serving path, kept as the differential reference.
type plainFactory struct{ *testFactory }

func (f *plainFactory) NewSession(db string) *core.Session {
	asst := &assistant.Assistant{Client: f.sim, DS: f.ds, Store: f.store, K: 8}
	method := &core.FISQL{Client: f.sim, DS: f.ds, Store: f.store, K: 8, Routing: true, Highlights: true}
	return core.NewSession(asst, method, db)
}

func rawPost(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestWireDifferentialMemoized proves the optimization contract: for every
// corpus question, the memoized+cached server answers with bytes identical
// to the plain (cacheless, memoless) server — on the cold path, the
// memo-hit path, and a feedback turn.
func TestWireDifferentialMemoized(t *testing.T) {
	f := factory(t)
	plain := httptest.NewServer(New(map[string]SessionFactory{"aep": &plainFactory{f}}))
	defer plain.Close()
	memo := httptest.NewServer(New(map[string]SessionFactory{"aep": &memoFactory{
		testFactory: f, memo: assistant.NewAnswerMemo(0)}}))
	defer memo.Close()

	ask := func(ts *httptest.Server, question string) []byte {
		t.Helper()
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		code, body := rawPost(t, ts.URL+"/v1/sessions/"+id+"/ask",
			map[string]string{"question": question})
		if code != http.StatusOK {
			t.Fatalf("ask %q: %d %s", question, code, body)
		}
		return body
	}

	for _, ex := range f.ds.Examples {
		want := ask(plain, ex.Question)
		if got := ask(memo, ex.Question); !bytes.Equal(got, want) {
			t.Fatalf("cold answer for %q differs:\nmemo:  %s\nplain: %s", ex.Question, got, want)
		}
		// Second ask is served from the memo (cached wire bytes included).
		if got := ask(memo, ex.Question); !bytes.Equal(got, want) {
			t.Fatalf("memo-hit answer for %q differs from plain server", ex.Question)
		}
	}

	// Feedback turns run the corrector live but share the executed answer;
	// the bytes must still match the plain server exactly.
	feedbackOn := func(ts *httptest.Server) []byte {
		t.Helper()
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		base := ts.URL + "/v1/sessions/" + id
		code, body := rawPost(t, base+"/ask",
			map[string]string{"question": "How many audiences were created in January?"})
		if code != http.StatusOK {
			t.Fatalf("ask: %d %s", code, body)
		}
		code, body = rawPost(t, base+"/feedback", map[string]string{"text": "we are in 2024"})
		if code != http.StatusOK {
			t.Fatalf("feedback: %d %s", code, body)
		}
		return body
	}
	want := feedbackOn(plain)
	if got := feedbackOn(memo); !bytes.Equal(got, want) {
		t.Fatalf("feedback answer differs:\nmemo:  %s\nplain: %s", got, want)
	}
}

// TestServingStress hammers one memoized server with concurrent creates,
// asks, feedback, history reads and deletes across all shards. Run under
// -race in CI. Asserts the store loses no live session (every request
// answers 200, or 404/410 only for ids this test deleted or the cap
// evicted) and that concurrently-served answers are byte-identical to the
// serially-computed reference.
func TestServingStress(t *testing.T) {
	f := factory(t)
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": &memoFactory{
		testFactory: f, memo: assistant.NewAnswerMemo(0)}},
		WithMaxSessions(0))) // no eviction: a non-200 is a lost session
	defer ts.Close()

	questions := make([]string, 0, len(f.ds.Examples))
	for _, ex := range f.ds.Examples {
		questions = append(questions, ex.Question)
	}
	// Serial reference bodies from the same server: the memo is already
	// populated after this, so the concurrent phase exercises the hit path
	// against known-good bytes.
	reference := make(map[string][]byte, len(questions))
	{
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		for _, q := range questions {
			code, body := rawPost(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": q})
			if code != http.StatusOK {
				t.Fatalf("reference ask %q: %d %s", q, code, body)
			}
			reference[q] = body
		}
	}

	const workers = 8
	const iters = 30
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
				id, _ := created["session_id"].(string)
				if id == "" {
					t.Errorf("worker %d: create failed: %v", w, created)
					return
				}
				base := ts.URL + "/v1/sessions/" + id
				q := questions[(w*iters+i)%len(questions)]
				code, body := rawPost(t, base+"/ask", map[string]string{"question": q})
				if code != http.StatusOK {
					t.Errorf("worker %d: ask on live session %s: %d %s", w, id, code, body)
					return
				}
				if !bytes.Equal(body, reference[q]) {
					t.Errorf("worker %d: concurrent answer for %q differs from serial reference", w, q)
					return
				}
				code, body = rawPost(t, base+"/feedback", map[string]string{"text": "we are in 2024"})
				if code != http.StatusOK {
					t.Errorf("worker %d: feedback on live session %s: %d %s", w, id, code, body)
					return
				}
				hresp, err := http.Get(base + "/history")
				if err != nil {
					t.Errorf("worker %d: history: %v", w, err)
					return
				}
				drainBody(hresp)
				if hresp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: history on live session %s: %d", w, id, hresp.StatusCode)
					return
				}
				req, _ := http.NewRequest(http.MethodDelete, base, nil)
				dresp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("worker %d: delete: %v", w, err)
					return
				}
				drainBody(dresp)
				if dresp.StatusCode != http.StatusOK {
					t.Errorf("worker %d: delete of live session %s: %d", w, id, dresp.StatusCode)
					return
				}
				// After our delete the session must be firmly gone.
				code, _ = rawPost(t, base+"/ask", map[string]string{"question": q})
				if code != http.StatusNotFound && code != http.StatusGone {
					t.Errorf("worker %d: ask after delete: %d, want 404 or 410", w, code)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every session the workers created was also deleted; only the serial
	// reference session remains.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Sessions int `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Sessions != 1 {
		t.Errorf("sessions after stress = %d, want 1 (the reference session)", hz.Sessions)
	}
}
