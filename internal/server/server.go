// Package server implements the REST API of cmd/fisql-server: the headless
// Assistant with per-session ask/feedback state.
//
// Sessions are created through the SessionFactory (fisql.System in
// production), whose Assistant carries the system-wide engine.Cache and
// answer memo: all concurrent sessions of one corpus share parsed+planned
// queries and memoized first-turn answers, so repeated questions across
// users skip the pipeline instead of re-running it.
//
// The session registry is sharded and lock-striped (see store.go): requests
// for different sessions proceed on different shard locks, eviction is
// true-LRU in O(1), and sessions evicted while a request is in flight
// answer 410 Gone.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/engine"
	"fisql/internal/feedback"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/pubsub"
	"fisql/internal/sqlast"
)

// SessionFactory creates sessions for one corpus. The public fisql.System
// is adapted to this interface by the command.
type SessionFactory interface {
	NewSession(db string) *core.Session
	Databases() []string
}

// DefaultMaxSessions caps the session store of a server built without an
// explicit WithMaxSessions: a long-running server must not grow its session
// state without bound.
const DefaultMaxSessions = 10000

// DefaultMaxBodyBytes caps a POST request body when WithMaxBodyBytes is not
// given. The largest legitimate bodies (a long question or feedback line
// plus a highlight) are a few kilobytes; 1 MiB leaves three orders of
// magnitude of headroom while keeping a hostile body from ballooning the
// decoder.
const DefaultMaxBodyBytes = 1 << 20

// Server is the HTTP handler. Create with New.
type Server struct {
	mux          *http.ServeMux
	systems      map[string]SessionFactory
	maxSessions  int
	sessionTTL   time.Duration
	maxBodyBytes int64
	pprof        bool

	nextID atomic.Int64
	store  *sessionStore

	// Session-event fanout (events.go). Every session has a hub topic; the
	// server publishes exactly the lifecycle events it journals, and
	// GET /v1/sessions/{id}/events subscribers follow them with resumable
	// sequence numbers.
	hub        *pubsub.Hub
	pubsubRing int

	// Cluster hooks. replicator, when set, ships every journaled record to
	// the session's follower before the turn is acknowledged. presetIDs lets
	// the router tier pre-assign session ids (the id must determine the
	// owning node, so it is issued before the create is forwarded).
	// handoffs names the target node of sessions being released by a drain,
	// so their removal journals a THandoff instead of a TDelete.
	replicator Replicator
	presetIDs  bool
	handoffMu  sync.Mutex
	handoffs   map[string]string

	// Admission control (admission.go). Nil limiters admit everything; the
	// precomputed Retry-After value rides on every shed response.
	admission  AdmissionConfig
	askLimit   *limiter
	fbLimit    *limiter
	retryAfter string

	// Durability. journal is nil when persistence is disabled. replaying
	// suppresses the store's delete-record hook while startup replay is
	// rebuilding sessions (evictions during replay are reconciled by
	// Retain afterwards, not journaled one by one).
	journal   *persist.Journal
	replaying atomic.Bool
	recovery  RecoveryInfo

	// Observability. metrics is nil when disabled; the derived counters
	// and histograms below are then nil too, and every use of them is a
	// no-op (see internal/obs's nil-receiver contract), so the disabled
	// serving path pays only dead nil checks.
	metrics      *obs.Metrics
	httpReqs     *obs.Counter
	httpErrs     *obs.Counter
	httpLatency  *obs.Histogram
	renderHits   *obs.Counter
	renderMisses *obs.Counter
	gone410      *obs.Counter
	sseStreams   *obs.Counter
	sseNoFlush   *obs.Counter
}

// Option configures a Server.
type Option func(*Server)

// WithMaxSessions caps the number of live sessions; creating one past the
// cap evicts the least recently used. n <= 0 means unlimited.
func WithMaxSessions(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithSessionTTL expires sessions idle for longer than d (no ask, feedback,
// or history access). Expiry is lazy — checked on lookup and during
// create-path sweeps — so no background goroutine runs. d <= 0 (the
// default) disables expiry.
func WithSessionTTL(d time.Duration) Option {
	return func(s *Server) { s.sessionTTL = d }
}

// WithMaxBodyBytes caps the request body of the POST endpoints (create,
// ask, feedback); a larger body answers 413 instead of being decoded.
// n <= 0 keeps DefaultMaxBodyBytes.
func WithMaxBodyBytes(n int64) Option {
	return func(s *Server) {
		if n > 0 {
			s.maxBodyBytes = n
		}
	}
}

// WithPubSubRing sets the per-session fanout ring capacity in events
// (pubsub.DefaultRingSize when n <= 0): how far back a reconnecting
// /events subscriber can resume via Last-Event-ID before the gap is
// reported as dropped.
func WithPubSubRing(n int) Option {
	return func(s *Server) { s.pubsubRing = n }
}

// Replicator ships one journal record to wherever the cluster keeps the
// session's redundant copy (the follower node). It is called after the
// local journal append succeeds and before the turn is acknowledged; an
// error fails the request without evicting the session — the local journal
// did capture the turn, only the follower copy is missing, and a retry
// re-replicates (see DESIGN.md "Cluster serving" for the exact contract).
type Replicator func(rec persist.Record) error

// WithReplicator installs the cluster replication hook.
func WithReplicator(fn Replicator) Option {
	return func(s *Server) { s.replicator = fn }
}

// WithPresetSessionIDs lets a create request carry its session id in the
// X-Fisql-Session-Id header — the cluster router issues ids centrally so
// rendezvous hashing over the id can pick the owning node before the
// session exists. Only enable this behind a trusted router: a client that
// can choose ids can probe for collisions (a preset id that already exists
// answers 409 instead of silently serving the existing session).
func WithPresetSessionIDs() Option {
	return func(s *Server) { s.presetIDs = true }
}

// WithJournal makes the server durable: every session lifecycle event
// (create, ask, feedback, delete/evict/expire) is appended to j before the
// response is acknowledged, and New replays j's surviving records through
// the normal ask/feedback pipeline to rebuild the pre-crash sessions —
// deterministic-replay recovery rather than state snapshotting. The caller
// opens the journal (persist.Open already truncated any torn tail) and
// closes it after the HTTP server has drained.
func WithJournal(j *persist.Journal) Option {
	return func(s *Server) { s.journal = j }
}

// WithMetrics enables observability: per-request trace spans feeding the
// per-stage latency histograms, HTTP/request/cache counters, and the
// GET /v1/metrics endpoint (JSON by default, Prometheus text with
// ?format=prometheus). Callers that want corpus cache statistics in the
// same registry register them on m.Registry (fisql.System.Observe does).
// A nil m leaves observability disabled.
func WithMetrics(m *obs.Metrics) Option {
	return func(s *Server) { s.metrics = m }
}

// WithPprof mounts net/http/pprof's profiling handlers under
// /debug/pprof/. Opt-in: profiling endpoints expose internals and cost
// CPU, so production deployments enable them deliberately (the command's
// -pprof flag).
func WithPprof() Option {
	return func(s *Server) { s.pprof = true }
}

// New builds the server over named corpora. With a journal configured, New
// also performs recovery: the journal's surviving records are replayed
// before New returns, so the handler starts serving with every pre-crash
// session restored.
func New(systems map[string]SessionFactory, opts ...Option) *Server {
	s := &Server{
		systems:      systems,
		maxSessions:  DefaultMaxSessions,
		maxBodyBytes: DefaultMaxBodyBytes,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.askLimit = newLimiter(s.admission.AskConcurrency, s.admission.Queue, s.admission.QueueTimeout)
	s.fbLimit = newLimiter(s.admission.FeedbackConcurrency, s.admission.Queue, s.admission.QueueTimeout)
	ra := s.admission.RetryAfter
	if ra <= 0 {
		ra = DefaultRetryAfter
	}
	// Retry-After carries whole seconds; round up so the hint never invites
	// a retry before the configured backoff has elapsed.
	secs := int64((ra + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	s.retryAfter = strconv.FormatInt(secs, 10)
	s.hub = pubsub.NewHub(s.pubsubRing)
	s.store = newSessionStore(s.maxSessions, s.sessionTTL)
	s.store.onRemove = func(id string) {
		target, handoff := s.handoffTarget(id)
		if handoff {
			// The session moved to another node; it did not end. Close the
			// topic without a delete event so a subscriber's stream just
			// ends — it reconnects through the router and resumes on the new
			// owner, whose adoption replay rebuilt the same sequence numbers.
			s.hub.CloseTopic(id)
		} else {
			// Delete/evict/expire: announce the end, then close. The batch
			// ordering matters only to subscribers still attached; a closed
			// topic makes any in-flight turn's publish a no-op.
			s.hub.Publish(id, deletePayload(id))
			s.hub.CloseTopic(id)
		}
		if s.replaying.Load() || (s.journal == nil && s.replicator == nil) {
			return
		}
		rec := persist.Record{Type: persist.TDelete, Session: id}
		if handoff {
			rec = persist.Record{Type: persist.THandoff, Session: id, Text: target}
		}
		// Best effort on both legs: a removal cannot be un-removed, and
		// deletes/handoffs replicate asynchronously with respect to the
		// follower's view. The cluster replicator redelivers a missed
		// delete in the background, which narrows — but does not close —
		// the resurrection window DESIGN.md documents.
		_ = s.journalAppend(rec)
	}
	if s.journal != nil {
		s.recoverJournal()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/databases", s.handleDatabases)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/ask", s.handleAsk)
	s.mux.HandleFunc("POST /v1/sessions/{id}/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /v1/sessions/{id}/history", s.handleHistory)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleEvents)
	if s.metrics != nil {
		r := s.metrics.Registry
		s.httpReqs = r.Counter("fisql_http_requests_total")
		s.httpErrs = r.Counter("fisql_http_errors_total")
		s.httpLatency = r.Histogram("fisql_http_request_seconds", nil)
		s.renderHits = r.Counter("fisql_render_cache_hits_total")
		s.renderMisses = r.Counter("fisql_render_cache_misses_total")
		s.gone410 = r.Counter("fisql_sessions_gone_total")
		s.sseStreams = r.Counter("fisql_sse_streams_total")
		s.sseNoFlush = r.Counter("fisql_sse_noflush_total")
		hub := s.hub
		r.CounterFunc("fisql_pubsub_published_total", func() int64 { return hub.Stats().Published })
		r.CounterFunc("fisql_pubsub_dropped_total", func() int64 { return hub.Stats().Dropped })
		r.CounterFunc("fisql_pubsub_replays_total", func() int64 { return hub.Stats().Replays })
		r.GaugeFunc("fisql_pubsub_subscribers", func() int64 { return hub.Stats().Subscribers })
		// The lag histogram's axis carries event counts, not seconds: each
		// delivery observes how many newer events the subscriber still had
		// buffered.
		lagHist := r.Histogram("fisql_pubsub_subscriber_lag_events", subscriberLagBounds)
		hub.SetLagObserver(func(lag int64) { lagHist.Observe(time.Duration(lag) * time.Second) })
		s.askLimit.observe(r, "fisql_admission_ask")
		s.fbLimit.observe(r, "fisql_admission_feedback")
		st := s.store
		r.CounterFunc("fisql_sessions_evicted_total", func() int64 { e, _ := st.stats(); return e })
		r.CounterFunc("fisql_sessions_expired_total", func() int64 { _, e := st.stats(); return e })
		r.GaugeFunc("fisql_sessions_live", func() int64 { return int64(st.len()) })
		if j := s.journal; j != nil {
			r.CounterFunc("fisql_journal_records_total", func() int64 { return j.Stats().Records })
			r.CounterFunc("fisql_journal_bytes_total", func() int64 { return j.Stats().Bytes })
			r.CounterFunc("fisql_journal_fsyncs_total", func() int64 { return j.Stats().Fsyncs })
			r.CounterFunc("fisql_journal_compactions_total", func() int64 { return j.Stats().Compactions })
			r.CounterFunc("fisql_journal_truncated_bytes_total", func() int64 { return j.Stats().TruncatedBytes })
			r.GaugeFunc("fisql_journal_live_sessions", func() int64 { return j.Stats().LiveSessions })
			rec := s.recovery
			r.GaugeFunc("fisql_journal_recovery_ms", func() int64 { return rec.Duration.Milliseconds() })
			r.GaugeFunc("fisql_journal_recovered_sessions", func() int64 { return int64(rec.Sessions) })
			j.SetFsyncObserver(r.Histogram("fisql_journal_fsync_seconds", nil).Observe)
		}
		s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	}
	if s.pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler. Every request runs under the
// statusWriter wrapper so mux-generated errors come out as JSON; with
// metrics enabled the request is also counted and its wall time observed.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := statusWriter{ResponseWriter: w, code: http.StatusOK}
	if s.metrics == nil {
		s.mux.ServeHTTP(&sw, r)
		return
	}
	t0 := time.Now()
	s.mux.ServeHTTP(&sw, r)
	s.httpReqs.Inc()
	if sw.code >= 400 {
		s.httpErrs.Inc()
	}
	s.httpLatency.Observe(time.Since(t0))
}

// statusWriter captures the response code for the error counter, exposes
// the wrapped writer via Unwrap so the SSE path can discover the real
// Flusher (flusherOf), and converts the only non-JSON error responses
// the server can emit — ServeMux's own text/plain 404 ("404 page not
// found") and 405 ("405 method not allowed") — to the {"error": ...} body
// every handler-written error already uses. The mux responses are
// recognized by their status plus text/plain Content-Type (handlers always
// set application/json before writing); status code and the 405 Allow
// header pass through untouched.
type statusWriter struct {
	http.ResponseWriter
	code      int
	intercept bool // mux error body replaced; swallow the original
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		w.intercept = true
		msg := "not found"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		httpError(w.ResponseWriter, code, msg)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.intercept {
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the wrapped writer so flusherOf can find the real
// http.Flusher behind the wrapper (the http.ResponseController convention).
// statusWriter deliberately does NOT implement Flush itself: an
// unconditional no-op Flush would make every wrapped connection claim to
// stream, hiding a non-flushing transport from the SSE path — which must
// detect it and fall back to a plain response instead of fake-streaming.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// ----------------------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "sessions": s.store.len()})
}

// handleMetrics serves the registry: a JSON snapshot by default, the
// Prometheus text exposition with ?format=prometheus (or prom/text).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := s.metrics.Registry.WritePrometheus(buf); err != nil {
			bufPool.Put(buf)
			httpError(w, http.StatusInternalServerError, "render metrics: "+err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		_, _ = w.Write(buf.Bytes())
		bufPool.Put(buf)
	default:
		writeJSON(w, s.metrics.Registry.Snapshot())
	}
}

func (s *Server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.systems[corpusOf(r)]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown corpus")
		return
	}
	writeJSON(w, map[string]any{"databases": sys.Databases()})
}

func corpusOf(r *http.Request) string {
	c := r.URL.Query().Get("corpus")
	if c == "" {
		c = "aep"
	}
	return c
}

type createReq struct {
	Corpus string `json:"corpus"`
	DB     string `json:"db"`
}

// decodeBody decodes a POST body into v under the configured size cap. A
// body over the cap answers 413 (instead of letting a hostile client feed
// the decoder without bound), malformed JSON answers 400; either way the
// response has been written and the caller just returns.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
		} else {
			httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		}
		return false
	}
	return true
}

// journalAppend records one lifecycle event, if a journal is configured,
// then ships it to the session's follower, if a replicator is configured.
// A failed local append is a broken durability promise, so callers surface
// it as a 500 and evict the diverged session; a failed replication comes
// back wrapped as a replicationError — the turn IS locally durable, so
// callers fail the request without evicting (isReplicationError).
func (s *Server) journalAppend(rec persist.Record) error {
	if s.journal != nil {
		if err := s.journal.Append(rec); err != nil {
			return err
		}
	}
	if s.replicator != nil {
		if err := s.replicator(rec); err != nil {
			return &replicationError{err: err}
		}
	}
	return nil
}

// replicationError marks a journalAppend failure that happened after the
// local append succeeded: only the follower copy is missing. The turn is
// not acknowledged (the request still fails), but the session's in-memory
// state matches the local journal exactly, so eviction would destroy a
// perfectly consistent session. A client retry at-least-once re-applies the
// turn and re-replicates — see DESIGN.md "Cluster serving".
type replicationError struct{ err error }

func (e *replicationError) Error() string { return "replicate: " + e.err.Error() }
func (e *replicationError) Unwrap() error { return e.err }

func isReplicationError(err error) bool {
	var re *replicationError
	return errors.As(err, &re)
}

// handoffTarget reports the node a session being removed is moving to, if
// its removal came from ReleaseSession rather than a delete/evict/expiry.
func (s *Server) handoffTarget(id string) (string, bool) {
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	t, ok := s.handoffs[id]
	return t, ok
}

// ReleaseSession removes id from this node as part of a cluster rebalance:
// the removal is journaled as a THandoff naming the target node instead of
// a TDelete, recording that the session moved rather than ended. Returns
// false when the session does not exist here.
func (s *Server) ReleaseSession(id, target string) bool {
	s.handoffMu.Lock()
	if s.handoffs == nil {
		s.handoffs = make(map[string]string)
	}
	s.handoffs[id] = target
	s.handoffMu.Unlock()
	_, ok := s.store.remove(id)
	s.handoffMu.Lock()
	delete(s.handoffs, id)
	s.handoffMu.Unlock()
	return ok
}

// SessionIDs snapshots the live session ids in sorted order — the cluster
// tier's view of what this node currently owns.
func (s *Server) SessionIDs() []string {
	ids := s.store.ids()
	out := make([]string, 0, len(ids))
	for id := range ids {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// dropDiverged evicts a session whose live state just diverged from the
// journal: the turn was applied to the in-memory session but its append
// failed, so keeping the session would serve (and, after a crash, replay
// against) a history the journal never captured — and a client retrying
// the 500 would double-apply the turn. Eviction makes the divergence
// unobservable: the session answers 404/410 until the client recreates it,
// and the removal hook journals the delete (best effort — on a broken
// journal the delete fails too, and replay then rebuilds the session from
// exactly the turns that were captured).
func (s *Server) dropDiverged(sess *session) {
	s.store.remove(sess.id)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Corpus == "" {
		req.Corpus = "aep"
	}
	sys, ok := s.systems[req.Corpus]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown corpus "+req.Corpus)
		return
	}
	dbs := sys.Databases()
	if req.DB == "" && len(dbs) > 0 {
		req.DB = dbs[0]
	}
	found := false
	for _, d := range dbs {
		if d == req.DB {
			found = true
		}
	}
	if !found {
		httpError(w, http.StatusNotFound, "unknown database "+req.DB)
		return
	}
	var n int64
	var id string
	if hid := r.Header.Get("X-Fisql-Session-Id"); s.presetIDs && hid != "" {
		if existing, ok := s.store.get(hid); ok {
			// A retried create (the router re-forwarding after a transient
			// failure) can race its own first attempt. 409 with the session's
			// coordinates lets the router treat the retry as satisfied.
			writeJSONStatus(w, http.StatusConflict, map[string]any{
				"error": "session exists", "session_id": hid, "db": existing.db,
			})
			return
		}
		id = hid
		if v, err := strconv.ParseInt(strings.TrimPrefix(hid, "s"), 10, 64); err == nil {
			n = v
			// Keep locally issued ids ahead of every preset one, so a node
			// falling back to local issuance can never collide.
			for {
				cur := s.nextID.Load()
				if cur >= v || s.nextID.CompareAndSwap(cur, v) {
					break
				}
			}
		}
	} else {
		n = s.nextID.Add(1)
		id = "s" + strconv.FormatInt(n, 10)
	}
	// Journal before registering: the create record must precede any delete
	// record a concurrent capacity eviction could emit for this id. The
	// numeric id rides along so the journal's id high-watermark survives
	// compaction (see persist.TWatermark).
	if err := s.journalAppend(persist.Record{
		Type: persist.TCreate, Session: id, Corpus: req.Corpus, DB: req.DB, ID: n,
	}); err != nil {
		if isReplicationError(err) && s.journal != nil {
			// The create reached the local journal but not the follower. The
			// client sees a 500 and will retry with a fresh id, so un-journal
			// the orphan rather than replaying an unacknowledged session
			// after a crash.
			_ = s.journal.Append(persist.Record{Type: persist.TDelete, Session: id})
		}
		httpError(w, http.StatusInternalServerError, "journal: "+err.Error())
		return
	}
	// Open the fanout topic before the session becomes visible: a subscriber
	// that sees the session in the store must find its topic.
	s.hub.Open(id)
	s.hub.Publish(id, openPayload(id, req.Corpus, req.DB))
	s.store.put(id, &session{sess: sys.NewSession(req.DB), db: req.DB})
	writeJSON(w, map[string]any{"session_id": id, "db": req.DB})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.remove(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, map[string]any{"session_id": id, "deleted": true})
}

func (s *Server) session(r *http.Request) (*session, error) {
	id := r.PathValue("id")
	sess, ok := s.store.get(id)
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

// lockLive acquires sess.mu and verifies the session still exists. A
// session can be evicted or deleted between the store lookup and the lock
// acquisition (another request may hold the mutex for a long pipeline run);
// operating on it anyway would answer on a zombie whose state no other
// request can ever see again. The caller must hold the returned lock via
// defer sess.mu.Unlock() when ok.
func (s *Server) lockLive(w http.ResponseWriter, sess *session) (ok bool) {
	sess.mu.Lock()
	if sess.gone.Load() {
		sess.mu.Unlock()
		s.gone410.Inc()
		httpError(w, http.StatusGone, "session evicted")
		return false
	}
	return true
}

// traced returns the request context and, with metrics enabled, a fresh
// per-request trace carried by it. The caller defers tr.Finish() — a nil
// trace (metrics disabled) makes every trace call a no-op and leaves the
// context untouched.
func (s *Server) traced(r *http.Request) (ctx context.Context, tr *obs.Trace) {
	ctx = r.Context()
	if s.metrics != nil {
		tr = s.metrics.StartTrace()
		ctx = obs.WithTrace(ctx, tr)
	}
	return ctx, tr
}

type askReq struct {
	Question string `json:"question"`
}

type feedbackReq struct {
	Text      string `json:"text"`
	Highlight string `json:"highlight,omitempty"`
	// HighlightStart optionally grounds the highlight to the byte offset
	// where it occurs in the current SQL — required to disambiguate a span
	// appearing more than once (a repeated column name). When absent, the
	// first occurrence is used (the documented fallback).
	HighlightStart *int `json:"highlight_start,omitempty"`
}

// answerJSON is the wire form of an Assistant answer.
type answerJSON struct {
	SQL           string     `json:"sql"`
	Reformulation string     `json:"reformulation"`
	Explanation   []string   `json:"explanation"`
	Spans         []spanJSON `json:"spans,omitempty"`
	Columns       []string   `json:"columns,omitempty"`
	Rows          [][]string `json:"rows,omitempty"`
	Error         string     `json:"error,omitempty"`
}

// spanJSON maps a byte range of the SQL onto its clause, for front-end
// highlight selection.
type spanJSON struct {
	Clause string `json:"clause"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
}

func toJSON(ans *assistant.Answer) answerJSON {
	out := answerJSON{
		SQL:           ans.SQL,
		Reformulation: ans.Reformulation,
		Explanation:   ans.Explanation,
		Spans:         spansToJSON(ans.Spans),
	}
	if ans.ExecErr != nil {
		out.Error = ans.ExecErr.Error()
		return out
	}
	if ans.Result != nil {
		out.Columns, out.Rows = resultToJSON(ans.Result)
	}
	return out
}

// spansToJSON renders highlightable spans; shared by the answer body and
// the SSE explanation event so the two forms cannot drift.
func spansToJSON(spans []sqlast.Span) []spanJSON {
	if len(spans) == 0 {
		return nil
	}
	out := make([]spanJSON, len(spans))
	for i, sp := range spans {
		out[i] = spanJSON{Clause: sp.Clause.String(), Start: sp.Start, End: sp.End}
	}
	return out
}

// resultToJSON renders an execution result's cells; shared by the answer
// body and the SSE result event.
func resultToJSON(res *engine.Result) (cols []string, rows [][]string) {
	cols = res.Columns
	if len(res.Rows) > 0 {
		// One backing array for all cells: a result is rendered cell by
		// cell, and per-row allocations dominated this path.
		rows = make([][]string, len(res.Rows))
		flat := make([]string, 0, len(res.Rows)*len(res.Columns))
		for i, row := range res.Rows {
			start := len(flat)
			for _, v := range row {
				flat = append(flat, v.String())
			}
			rows[i] = flat[start:len(flat):len(flat)]
		}
	}
	return cols, rows
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var req askReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Question) == "" {
		httpError(w, http.StatusBadRequest, "missing question")
		return
	}
	// Admission after validation: malformed requests get their precise 4xx
	// cheaply and never consume a pipeline slot.
	admitted, shedded := s.askLimit.acquire(r.Context())
	if !admitted {
		if shedded {
			s.shed(w)
		}
		// Otherwise the client vanished while queued; nothing to write.
		return
	}
	defer s.askLimit.release()
	if !s.lockLive(w, sess) {
		return
	}
	defer sess.mu.Unlock()
	ctx, tr := s.traced(r)
	defer tr.Finish()
	if wantsSSE(r) {
		if fl := flusherOf(w); fl != nil {
			s.streamAsk(ctx, w, fl, tr, sess, req.Question)
			return
		}
		// The client opted into streaming over a connection that cannot
		// stream: without a Flusher every event would buffer and arrive as
		// one burst at handler return — a fake stream that breaks live
		// following. Serve the plain JSON body instead, and count it.
		s.sseNoFlush.Inc()
	}
	ans, err := sess.sess.Ask(ctx, req.Question)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Journaled only on success: a failed ask appends no history, so replay
	// must not re-run it. Holding sess.mu keeps the journal's per-session
	// record order identical to the history order.
	if err := s.journalAppend(persist.Record{
		Type: persist.TAsk, Session: sess.id, Text: req.Question,
	}); err != nil {
		if !isReplicationError(err) {
			s.dropDiverged(sess)
		}
		httpError(w, http.StatusInternalServerError, "journal: "+err.Error())
		return
	}
	body, err := s.renderAnswer(tr, ans)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	// Acknowledged and journaled: fan the turn out to /events subscribers.
	s.publishAnswer(sess.id, nil, ans, body)
	writeBody(w, body)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var req feedbackReq
	if !s.decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, "missing feedback text")
		return
	}
	admitted, shedded := s.fbLimit.acquire(r.Context())
	if !admitted {
		if shedded {
			s.shed(w)
		}
		return
	}
	defer s.fbLimit.release()
	if !s.lockLive(w, sess) {
		return
	}
	defer sess.mu.Unlock()
	ctx, tr := s.traced(r)
	defer tr.Finish()
	var hl *feedback.Highlight
	hlStart := -1
	if req.Highlight != "" {
		sqlText := sess.sess.SQL()
		if req.HighlightStart != nil {
			// An explicit offset grounds a span that occurs more than once
			// in the SQL (first-occurrence matching would silently pick the
			// wrong one); it must point at an exact occurrence.
			o := *req.HighlightStart
			if o < 0 || o > len(sqlText)-len(req.Highlight) ||
				sqlText[o:o+len(req.Highlight)] != req.Highlight {
				httpError(w, http.StatusBadRequest,
					fmt.Sprintf("highlight %q does not occur at byte offset %d of the current SQL",
						req.Highlight, o))
				return
			}
			hlStart = o
		} else if idx := strings.Index(sqlText, req.Highlight); idx >= 0 {
			// Documented fallback: without highlight_start the first
			// occurrence is used.
			hlStart = idx
		} else {
			// Silently dropping the highlight would let the client believe
			// its grounding was used; tell it the span does not occur.
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("highlight %q does not occur in the current SQL", req.Highlight))
			return
		}
		hl = &feedback.Highlight{Start: hlStart, End: hlStart + len(req.Highlight), Text: req.Highlight}
	}
	ans, err := sess.sess.Feedback(ctx, req.Text, hl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// The resolved offset (not the client's raw request) is journaled, so
	// replay reconstructs the exact grounding even for the fallback path.
	if err := s.journalAppend(persist.Record{
		Type: persist.TFeedback, Session: sess.id, Text: req.Text,
		Highlight: req.Highlight, HighlightStart: hlStart,
	}); err != nil {
		if !isReplicationError(err) {
			s.dropDiverged(sess)
		}
		httpError(w, http.StatusInternalServerError, "journal: "+err.Error())
		return
	}
	body, err := s.renderAnswer(tr, ans)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	// The feedback event (mirroring the journaled record) precedes the
	// corrected turn's answer events in the same atomic batch.
	fb := feedbackPayload(req.Text, req.Highlight, hlStart)
	s.publishAnswer(sess.id, &fb, ans, body)
	writeBody(w, body)
}

type historyTurn struct {
	Role string `json:"role"`
	Text string `json:"text"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if !s.lockLive(w, sess) {
		return
	}
	defer sess.mu.Unlock()
	// Render only the turns appended since the last history request; older
	// fragments are already encoded in sess.histBuf. The stitched body is
	// byte-identical to encoding {"db": ..., "turns": [...]} in full (JSON
	// object keys sort "db" < "turns"), and an empty history yields
	// "turns": [] — a fresh session has no turns, not unknown turns (null).
	for _, t := range sess.sess.HistorySince(sess.histTurns) {
		frag, err := json.Marshal(historyTurn{Role: t.Role, Text: t.Text})
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
			return
		}
		if sess.histTurns > 0 {
			sess.histBuf = append(sess.histBuf, ',')
		}
		sess.histBuf = append(sess.histBuf, frag...)
		sess.histTurns++
	}
	dbJSON, err := json.Marshal(sess.db)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"db":`)
	buf.Write(dbJSON)
	buf.WriteString(`,"turns":[`)
	buf.Write(sess.histBuf)
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

// ----------------------------------------------------------------------------
// Response writing. Bodies are encoded into pooled buffers: the encoder
// error surfaces as a 500 before any bytes hit the wire (a direct
// json.NewEncoder(w) write would already have committed a 200), and the
// per-request buffer+encoder allocations disappear.

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeBody sends a pre-rendered JSON body (renderAnswer's output). Each
// distinct Answer renders to JSON exactly once: the bytes are cached on the
// (immutable) Answer, so every later request served by the same memoized
// Answer — a thundering herd of sessions asking the same question — skips
// the row rendering and encoding entirely.
func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// renderAnswer returns ans's wire bytes (the full JSON body, trailing
// newline included), rendering and caching them on first use. Both the
// plain answer body and the SSE done event are served from these bytes,
// which is what makes the streamed and non-streamed forms byte-identical.
func (s *Server) renderAnswer(tr *obs.Trace, ans *assistant.Answer) ([]byte, error) {
	if body := ans.Wire(); body != nil {
		s.renderHits.Inc()
		return body, nil
	}
	s.renderMisses.Inc()
	sp := tr.Start(obs.StageRender)
	defer sp.End()
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(toJSON(ans)); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	bufPool.Put(buf)
	ans.SetWire(body)
	return body, nil
}

// shed answers a load-shedding 429 with the configured Retry-After hint.
func (s *Server) shed(w http.ResponseWriter) {
	w.Header().Set("Retry-After", s.retryAfter)
	httpError(w, http.StatusTooManyRequests, "server overloaded, retry later")
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// A map[string]string cannot fail to encode; ignore-with-blank would
	// still be wrong for the success path above.
	_ = json.NewEncoder(buf).Encode(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}
