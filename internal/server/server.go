// Package server implements the REST API of cmd/fisql-server: the headless
// Assistant with per-session ask/feedback state.
//
// Sessions are created through the SessionFactory (fisql.System in
// production), whose Assistant carries the system-wide engine.Cache and
// answer memo: all concurrent sessions of one corpus share parsed+planned
// queries and memoized first-turn answers, so repeated questions across
// users skip the pipeline instead of re-running it.
//
// The session registry is sharded and lock-striped (see store.go): requests
// for different sessions proceed on different shard locks, eviction is
// true-LRU in O(1), and sessions evicted while a request is in flight
// answer 410 Gone.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/feedback"
)

// SessionFactory creates sessions for one corpus. The public fisql.System
// is adapted to this interface by the command.
type SessionFactory interface {
	NewSession(db string) *core.Session
	Databases() []string
}

// DefaultMaxSessions caps the session store of a server built without an
// explicit WithMaxSessions: a long-running server must not grow its session
// state without bound.
const DefaultMaxSessions = 10000

// Server is the HTTP handler. Create with New.
type Server struct {
	mux         *http.ServeMux
	systems     map[string]SessionFactory
	maxSessions int
	sessionTTL  time.Duration

	nextID atomic.Int64
	store  *sessionStore
}

// Option configures a Server.
type Option func(*Server)

// WithMaxSessions caps the number of live sessions; creating one past the
// cap evicts the least recently used. n <= 0 means unlimited.
func WithMaxSessions(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// WithSessionTTL expires sessions idle for longer than d (no ask, feedback,
// or history access). Expiry is lazy — checked on lookup and during
// create-path sweeps — so no background goroutine runs. d <= 0 (the
// default) disables expiry.
func WithSessionTTL(d time.Duration) Option {
	return func(s *Server) { s.sessionTTL = d }
}

// New builds the server over named corpora.
func New(systems map[string]SessionFactory, opts ...Option) *Server {
	s := &Server{
		systems:     systems,
		maxSessions: DefaultMaxSessions,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.store = newSessionStore(s.maxSessions, s.sessionTTL)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/databases", s.handleDatabases)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/ask", s.handleAsk)
	s.mux.HandleFunc("POST /v1/sessions/{id}/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /v1/sessions/{id}/history", s.handleHistory)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ----------------------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "ok", "sessions": s.store.len()})
}

func (s *Server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.systems[corpusOf(r)]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown corpus")
		return
	}
	writeJSON(w, map[string]any{"databases": sys.Databases()})
}

func corpusOf(r *http.Request) string {
	c := r.URL.Query().Get("corpus")
	if c == "" {
		c = "aep"
	}
	return c
}

type createReq struct {
	Corpus string `json:"corpus"`
	DB     string `json:"db"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	if req.Corpus == "" {
		req.Corpus = "aep"
	}
	sys, ok := s.systems[req.Corpus]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown corpus "+req.Corpus)
		return
	}
	dbs := sys.Databases()
	if req.DB == "" && len(dbs) > 0 {
		req.DB = dbs[0]
	}
	found := false
	for _, d := range dbs {
		if d == req.DB {
			found = true
		}
	}
	if !found {
		httpError(w, http.StatusNotFound, "unknown database "+req.DB)
		return
	}
	id := "s" + strconv.FormatInt(s.nextID.Add(1), 10)
	s.store.put(id, &session{sess: sys.NewSession(req.DB), db: req.DB})
	writeJSON(w, map[string]any{"session_id": id, "db": req.DB})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.remove(id); !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, map[string]any{"session_id": id, "deleted": true})
}

func (s *Server) session(r *http.Request) (*session, error) {
	id := r.PathValue("id")
	sess, ok := s.store.get(id)
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

// lockLive acquires sess.mu and verifies the session still exists. A
// session can be evicted or deleted between the store lookup and the lock
// acquisition (another request may hold the mutex for a long pipeline run);
// operating on it anyway would answer on a zombie whose state no other
// request can ever see again. The caller must hold the returned lock via
// defer sess.mu.Unlock() when ok.
func lockLive(w http.ResponseWriter, sess *session) (ok bool) {
	sess.mu.Lock()
	if sess.gone.Load() {
		sess.mu.Unlock()
		httpError(w, http.StatusGone, "session evicted")
		return false
	}
	return true
}

type askReq struct {
	Question string `json:"question"`
}

type feedbackReq struct {
	Text      string `json:"text"`
	Highlight string `json:"highlight,omitempty"`
}

// answerJSON is the wire form of an Assistant answer.
type answerJSON struct {
	SQL           string     `json:"sql"`
	Reformulation string     `json:"reformulation"`
	Explanation   []string   `json:"explanation"`
	Spans         []spanJSON `json:"spans,omitempty"`
	Columns       []string   `json:"columns,omitempty"`
	Rows          [][]string `json:"rows,omitempty"`
	Error         string     `json:"error,omitempty"`
}

// spanJSON maps a byte range of the SQL onto its clause, for front-end
// highlight selection.
type spanJSON struct {
	Clause string `json:"clause"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
}

func toJSON(ans *assistant.Answer) answerJSON {
	out := answerJSON{
		SQL:           ans.SQL,
		Reformulation: ans.Reformulation,
		Explanation:   ans.Explanation,
	}
	if len(ans.Spans) > 0 {
		out.Spans = make([]spanJSON, len(ans.Spans))
		for i, sp := range ans.Spans {
			out.Spans[i] = spanJSON{Clause: sp.Clause.String(), Start: sp.Start, End: sp.End}
		}
	}
	if ans.ExecErr != nil {
		out.Error = ans.ExecErr.Error()
		return out
	}
	if ans.Result != nil {
		out.Columns = ans.Result.Columns
		if rows := ans.Result.Rows; len(rows) > 0 {
			// One backing array for all cells: a result is rendered cell by
			// cell, and per-row allocations dominated this path.
			out.Rows = make([][]string, len(rows))
			flat := make([]string, 0, len(rows)*len(ans.Result.Columns))
			for i, row := range rows {
				start := len(flat)
				for _, v := range row {
					flat = append(flat, v.String())
				}
				out.Rows[i] = flat[start:len(flat):len(flat)]
			}
		}
	}
	return out
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var req askReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Question) == "" {
		httpError(w, http.StatusBadRequest, "missing question")
		return
	}
	if !lockLive(w, sess) {
		return
	}
	defer sess.mu.Unlock()
	ans, err := sess.sess.Ask(r.Context(), req.Question)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeAnswer(w, ans)
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var req feedbackReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, "missing feedback text")
		return
	}
	if !lockLive(w, sess) {
		return
	}
	defer sess.mu.Unlock()
	var hl *feedback.Highlight
	if req.Highlight != "" {
		idx := strings.Index(sess.sess.SQL(), req.Highlight)
		if idx < 0 {
			// Silently dropping the highlight would let the client believe
			// its grounding was used; tell it the span does not occur.
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("highlight %q does not occur in the current SQL", req.Highlight))
			return
		}
		hl = &feedback.Highlight{Start: idx, End: idx + len(req.Highlight), Text: req.Highlight}
	}
	ans, err := sess.sess.Feedback(r.Context(), req.Text, hl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeAnswer(w, ans)
}

type historyTurn struct {
	Role string `json:"role"`
	Text string `json:"text"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if !lockLive(w, sess) {
		return
	}
	defer sess.mu.Unlock()
	// Render only the turns appended since the last history request; older
	// fragments are already encoded in sess.histBuf. The stitched body is
	// byte-identical to encoding {"db": ..., "turns": [...]} in full (JSON
	// object keys sort "db" < "turns"), and an empty history yields
	// "turns": [] — a fresh session has no turns, not unknown turns (null).
	for _, t := range sess.sess.HistorySince(sess.histTurns) {
		frag, err := json.Marshal(historyTurn{Role: t.Role, Text: t.Text})
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
			return
		}
		if sess.histTurns > 0 {
			sess.histBuf = append(sess.histBuf, ',')
		}
		sess.histBuf = append(sess.histBuf, frag...)
		sess.histTurns++
	}
	dbJSON, err := json.Marshal(sess.db)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"db":`)
	buf.Write(dbJSON)
	buf.WriteString(`,"turns":[`)
	buf.Write(sess.histBuf)
	buf.WriteString("]}\n")
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

// ----------------------------------------------------------------------------
// Response writing. Bodies are encoded into pooled buffers: the encoder
// error surfaces as a 500 before any bytes hit the wire (a direct
// json.NewEncoder(w) write would already have committed a 200), and the
// per-request buffer+encoder allocations disappear.

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeAnswer sends an Assistant answer, rendering each distinct Answer to
// JSON exactly once: the bytes are cached on the (immutable) Answer, so
// every later request served by the same memoized Answer — a thundering
// herd of sessions asking the same question — skips the row rendering and
// encoding entirely.
func writeAnswer(w http.ResponseWriter, ans *assistant.Answer) {
	body := ans.Wire()
	if body == nil {
		buf := bufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(toJSON(ans)); err != nil {
			bufPool.Put(buf)
			httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
			return
		}
		body = make([]byte, buf.Len())
		copy(body, buf.Bytes())
		bufPool.Put(buf)
		ans.SetWire(body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		httpError(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// A map[string]string cannot fail to encode; ignore-with-blank would
	// still be wrong for the success path above.
	_ = json.NewEncoder(buf).Encode(map[string]string{"error": msg})
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(code)
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}
