// Package server implements the REST API of cmd/fisql-server: the headless
// Assistant with per-session ask/feedback state.
//
// Sessions are created through the SessionFactory (fisql.System in
// production), whose Assistant carries the system-wide engine.Cache: all
// concurrent sessions of one corpus share parsed+planned queries, so
// repeated questions across users hit the plan cache instead of re-parsing.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/feedback"
)

// SessionFactory creates sessions for one corpus. The public fisql.System
// is adapted to this interface by the command.
type SessionFactory interface {
	NewSession(db string) *core.Session
	Databases() []string
}

// DefaultMaxSessions caps the session map of a server built without an
// explicit WithMaxSessions: a long-running server must not grow its session
// state without bound.
const DefaultMaxSessions = 10000

// Server is the HTTP handler. Create with New.
type Server struct {
	mux         *http.ServeMux
	systems     map[string]SessionFactory
	maxSessions int

	mu       sync.Mutex
	nextID   int
	sessions map[string]*session
	// order lists live session ids oldest-first, driving eviction when the
	// cap is reached.
	order []string
}

type session struct {
	mu   sync.Mutex
	sess *core.Session
	db   string
}

// Option configures a Server.
type Option func(*Server)

// WithMaxSessions caps the number of live sessions; creating one past the
// cap evicts the oldest. n <= 0 means unlimited.
func WithMaxSessions(n int) Option {
	return func(s *Server) { s.maxSessions = n }
}

// New builds the server over named corpora.
func New(systems map[string]SessionFactory, opts ...Option) *Server {
	s := &Server{
		systems:     systems,
		sessions:    make(map[string]*session),
		maxSessions: DefaultMaxSessions,
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/databases", s.handleDatabases)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDeleteSession)
	s.mux.HandleFunc("POST /v1/sessions/{id}/ask", s.handleAsk)
	s.mux.HandleFunc("POST /v1/sessions/{id}/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /v1/sessions/{id}/history", s.handleHistory)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ----------------------------------------------------------------------------

func (s *Server) handleDatabases(w http.ResponseWriter, r *http.Request) {
	sys, ok := s.systems[corpusOf(r)]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown corpus")
		return
	}
	writeJSON(w, map[string]any{"databases": sys.Databases()})
}

func corpusOf(r *http.Request) string {
	c := r.URL.Query().Get("corpus")
	if c == "" {
		c = "aep"
	}
	return c
}

type createReq struct {
	Corpus string `json:"corpus"`
	DB     string `json:"db"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: "+err.Error())
		return
	}
	if req.Corpus == "" {
		req.Corpus = "aep"
	}
	sys, ok := s.systems[req.Corpus]
	if !ok {
		httpError(w, http.StatusNotFound, "unknown corpus "+req.Corpus)
		return
	}
	dbs := sys.Databases()
	if req.DB == "" && len(dbs) > 0 {
		req.DB = dbs[0]
	}
	found := false
	for _, d := range dbs {
		if d == req.DB {
			found = true
		}
	}
	if !found {
		httpError(w, http.StatusNotFound, "unknown database "+req.DB)
		return
	}
	s.mu.Lock()
	for s.maxSessions > 0 && len(s.sessions) >= s.maxSessions && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.sessions, oldest)
	}
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = &session{sess: sys.NewSession(req.DB), db: req.DB}
	s.order = append(s.order, id)
	s.mu.Unlock()
	writeJSON(w, map[string]any{"session_id": id, "db": req.DB})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		for i, sid := range s.order {
			if sid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, map[string]any{"session_id": id, "deleted": true})
}

func (s *Server) session(r *http.Request) (*session, error) {
	id := r.PathValue("id")
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("unknown session %q", id)
	}
	return sess, nil
}

type askReq struct {
	Question string `json:"question"`
}

type feedbackReq struct {
	Text      string `json:"text"`
	Highlight string `json:"highlight,omitempty"`
}

// answerJSON is the wire form of an Assistant answer.
type answerJSON struct {
	SQL           string     `json:"sql"`
	Reformulation string     `json:"reformulation"`
	Explanation   []string   `json:"explanation"`
	Spans         []spanJSON `json:"spans,omitempty"`
	Columns       []string   `json:"columns,omitempty"`
	Rows          [][]string `json:"rows,omitempty"`
	Error         string     `json:"error,omitempty"`
}

// spanJSON maps a byte range of the SQL onto its clause, for front-end
// highlight selection.
type spanJSON struct {
	Clause string `json:"clause"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
}

func toJSON(ans *assistant.Answer) answerJSON {
	out := answerJSON{
		SQL:           ans.SQL,
		Reformulation: ans.Reformulation,
		Explanation:   ans.Explanation,
	}
	for _, sp := range ans.Spans {
		out.Spans = append(out.Spans, spanJSON{Clause: sp.Clause.String(), Start: sp.Start, End: sp.End})
	}
	if ans.ExecErr != nil {
		out.Error = ans.ExecErr.Error()
		return out
	}
	if ans.Result != nil {
		out.Columns = ans.Result.Columns
		for _, row := range ans.Result.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.String()
			}
			out.Rows = append(out.Rows, cells)
		}
	}
	return out
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var req askReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Question) == "" {
		httpError(w, http.StatusBadRequest, "missing question")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	ans, err := sess.sess.Ask(r.Context(), req.Question)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, toJSON(ans))
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	var req feedbackReq
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Text) == "" {
		httpError(w, http.StatusBadRequest, "missing feedback text")
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	var hl *feedback.Highlight
	if req.Highlight != "" {
		idx := strings.Index(sess.sess.SQL(), req.Highlight)
		if idx < 0 {
			// Silently dropping the highlight would let the client believe
			// its grounding was used; tell it the span does not occur.
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("highlight %q does not occur in the current SQL", req.Highlight))
			return
		}
		hl = &feedback.Highlight{Start: idx, End: idx + len(req.Highlight), Text: req.Highlight}
	}
	ans, err := sess.sess.Feedback(r.Context(), req.Text, hl)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, toJSON(ans))
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	type turn struct {
		Role string `json:"role"`
		Text string `json:"text"`
	}
	var turns []turn
	for _, t := range sess.sess.History() {
		turns = append(turns, turn{Role: t.Role, Text: t.Text})
	}
	writeJSON(w, map[string]any{"db": sess.db, "turns": turns})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
