package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/llm"
)

// switchClient swaps the underlying Client between requests, so a test can
// make the model fail deterministically and then heal it. Safe for
// concurrent use.
type switchClient struct {
	mu sync.Mutex
	c  llm.Client
}

func (s *switchClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	s.mu.Lock()
	c := s.c
	s.mu.Unlock()
	return c.Complete(ctx, req)
}

func (s *switchClient) set(c llm.Client) {
	s.mu.Lock()
	s.c = c
	s.mu.Unlock()
}

// faultFactory is the production wiring (shared cache + memo) over an
// arbitrary — typically fault-injecting — client.
type faultFactory struct {
	*testFactory
	client llm.Client
	memo   *assistant.AnswerMemo
}

func (f *faultFactory) NewSession(db string) *core.Session {
	asst := &assistant.Assistant{Client: f.client, DS: f.ds, Store: f.store, K: 8,
		Cache: f.cache, Memo: f.memo}
	method := &core.FISQL{Client: f.client, DS: f.ds, Store: f.store, K: 8, Routing: true, Highlights: true}
	return core.NewSession(asst, method, db)
}

// TestTransientFailureDegradesCleanly drives the serving path into an
// injected LLM outage and verifies the degradation contract: the request
// answers 500, the session history records nothing for the failed turn, the
// answer memo is not poisoned with an error result, and the identical
// request succeeds once the model recovers.
func TestTransientFailureDegradesCleanly(t *testing.T) {
	f := factory(t)
	sw := &switchClient{c: &llm.Flaky{Inner: f.sim, FailEvery: 1}} // every call fails
	memo := assistant.NewAnswerMemo(0)
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": &faultFactory{
		testFactory: f, client: sw, memo: memo}}))
	defer ts.Close()

	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	question := f.ds.Examples[0].Question

	resp, out := postJSON(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": question})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("outage ask: status %d, want 500", resp.StatusCode)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "injected failure") {
		t.Errorf("error body %q should surface the transient cause", msg)
	}
	if memo.Len() != 0 {
		t.Errorf("memo holds %d answers after a failed ask; errors must not be cached", memo.Len())
	}
	hresp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hist struct {
		Turns []struct{ Role, Text string } `json:"turns"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Turns) != 0 {
		t.Errorf("failed ask corrupted history: %d turns recorded (%v), want 0", len(hist.Turns), hist.Turns)
	}

	// Recovery: the identical request on the same session now succeeds and
	// is memoized.
	sw.set(f.sim)
	resp2, out2 := postJSON(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": question})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ask: status %d body %v", resp2.StatusCode, out2)
	}
	if sql, _ := out2["sql"].(string); sql == "" {
		t.Error("recovered answer has no SQL")
	}
	// One successful ask memoizes two entries: the (db, question) answer
	// and the (db, sql) execution underneath it.
	if memo.Len() != 2 {
		t.Errorf("memo.Len() = %d after recovery, want 2", memo.Len())
	}
}

// TestOutageDoesNotLeakSingleflightWaiters fires concurrent identical asks
// into a failing model: every request must come back (5xx), none may hang
// on a singleflight channel, and the memo must stay empty so the next
// attempt retries the pipeline.
func TestOutageDoesNotLeakSingleflightWaiters(t *testing.T) {
	f := factory(t)
	sw := &switchClient{c: &llm.Flaky{Inner: f.sim, FailEvery: 1}}
	memo := assistant.NewAnswerMemo(0)
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": &faultFactory{
		testFactory: f, client: sw, memo: memo}}))
	defer ts.Close()

	question := f.ds.Examples[0].Question
	const clients = 8
	codes := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			// Each goroutine gets its own session; the memo key (db,
			// question) is shared, so misses singleflight-collapse.
			_, created, err := postJSONRaw(ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
			if err != nil {
				codes <- -1
				return
			}
			id, _ := created["session_id"].(string)
			r, _, err := postJSONRaw(ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": question})
			if err != nil {
				codes <- -1
				return
			}
			codes <- r.StatusCode
		}()
	}
	deadline := time.After(30 * time.Second)
	for i := 0; i < clients; i++ {
		select {
		case code := <-codes:
			if code != http.StatusInternalServerError {
				t.Errorf("concurrent outage ask returned %d, want 500", code)
			}
		case <-deadline:
			t.Fatalf("only %d/%d requests returned; singleflight waiter leaked", i, clients)
		}
	}
	if memo.Len() != 0 {
		t.Errorf("memo.Len() = %d after outage, want 0", memo.Len())
	}

	sw.set(f.sim)
	_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	id, _ := created["session_id"].(string)
	resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": question})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-outage ask: status %d", resp.StatusCode)
	}
}

// TestRetryMasksIntermittentFailures puts Retry between the server and a
// model that fails every other call: the serving path must never surface a
// 5xx, and answers must match the healthy model byte for byte.
func TestRetryMasksIntermittentFailures(t *testing.T) {
	f := factory(t)
	noSleep := func(context.Context, time.Duration) error { return nil }
	flaky := &llm.Retry{Inner: &llm.Flaky{Inner: f.sim, FailEvery: 2},
		MaxAttempts: 3, Sleep: noSleep}
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": &faultFactory{
		testFactory: f, client: flaky, memo: nil}}))
	defer ts.Close()
	healthy := httptest.NewServer(New(map[string]SessionFactory{"aep": &faultFactory{
		testFactory: f, client: f.sim, memo: nil}}))
	defer healthy.Close()

	ask := func(ts *httptest.Server, question string) (int, []byte) {
		t.Helper()
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		return rawPost(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": question})
	}
	for _, e := range f.ds.Examples[:5] {
		wantCode, want := ask(healthy, e.Question)
		gotCode, got := ask(ts, e.Question)
		if gotCode != wantCode || gotCode != http.StatusOK {
			t.Fatalf("%q: flaky=%d healthy=%d", e.Question, gotCode, wantCode)
		}
		if string(got) != string(want) {
			t.Errorf("%q: retried answer differs from healthy answer", e.Question)
		}
	}
}
