package server

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"fisql/internal/core"
)

// sessionShards is the lock-striping factor of the session store. Session
// ids hash uniformly (FNV-1a), so contention on any single shard is roughly
// 1/sessionShards of what the former global mutex saw. A power of two keeps
// the shard index a mask instead of a modulo.
const sessionShards = 16

// session is one live server session plus its store bookkeeping. The
// request mutex serializes the ask/feedback/history pipeline per session;
// the intrusive prev/next links live in the owning shard's LRU list and are
// guarded by that shard's lock, never by s.mu.
type session struct {
	mu   sync.Mutex
	sess *core.Session
	db   string

	// Incremental history rendering, guarded by mu. History is append-only,
	// so each turn is JSON-encoded exactly once into histBuf (fragments
	// joined by commas); histTurns counts the turns rendered so far. Without
	// this, every /history request re-escaped the whole conversation —
	// O(session age) encoding work that dominated the serving profile.
	histBuf   []byte
	histTurns int

	// gone flips to true when the session is evicted or deleted while a
	// handler may still hold a pointer to it (looked up before the removal,
	// waiting on mu). Handlers re-check it after acquiring mu and answer
	// 410 Gone instead of silently operating on a zombie session.
	gone atomic.Bool

	// Store bookkeeping, guarded by the owning shard's lock.
	id         string
	prev, next *session
	// lruSeq is the store-wide access clock value of the last touch; the
	// globally least-recently-used session is the shard tail with the
	// smallest lruSeq.
	lruSeq uint64
	// lastAccess is the wall-clock time of the last touch, driving idle-TTL
	// expiry.
	lastAccess time.Time
}

// sessionShard is one stripe: a map for O(1) id lookup plus an intrusive
// doubly-linked list ordered most- to least-recently used. All list
// surgery is O(1).
type sessionShard struct {
	mu   sync.RWMutex
	m    map[string]*session
	head *session // most recently used
	tail *session // least recently used
}

// sessionStore is a sharded, lock-striped session registry with true-LRU
// capacity eviction and optional idle-TTL expiry.
//
// Capacity semantics: the store holds at most maxSessions sessions once a
// put returns; concurrent puts may transiently overshoot by the number of
// in-flight creators, and each one evicts until the count is back under the
// cap. Eviction removes the globally least-recently-used session: every
// touch (create, ask, feedback, history) stamps a store-wide monotonic
// sequence and promotes the session to its shard's list head, so the global
// LRU victim is the shard tail with the minimum stamp — found by peeking
// sessionShards tails, O(1) for a fixed shard count.
type sessionStore struct {
	maxSessions int
	ttl         time.Duration
	// now is the clock, swappable by tests.
	now func() time.Time
	// onRemove, when set, observes every removal — explicit delete,
	// capacity eviction or idle-TTL expiry — outside the shard locks. The
	// journal hooks in here so replay knows which sessions are dead.
	onRemove func(id string)
	// clock is the store-wide access counter behind lruSeq stamps.
	clock atomic.Uint64
	// count tracks the live session total across shards.
	count atomic.Int64
	// evicted and expired tally capacity evictions and idle-TTL expiries
	// for observability (see stats); always-on atomic adds, no lock cost.
	evicted atomic.Int64
	expired atomic.Int64
	shards  [sessionShards]sessionShard
}

func newSessionStore(maxSessions int, ttl time.Duration) *sessionStore {
	st := &sessionStore{maxSessions: maxSessions, ttl: ttl, now: time.Now}
	for i := range st.shards {
		st.shards[i].m = make(map[string]*session)
	}
	return st
}

func (st *sessionStore) shardFor(id string) *sessionShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()&(sessionShards-1)]
}

// ---------------------------------------------------------------------------
// Intrusive list surgery. Callers hold the shard's write lock.

func (sh *sessionShard) pushFront(s *session) {
	s.prev = nil
	s.next = sh.head
	if sh.head != nil {
		sh.head.prev = s
	}
	sh.head = s
	if sh.tail == nil {
		sh.tail = s
	}
}

func (sh *sessionShard) unlink(s *session) {
	if s.prev != nil {
		s.prev.next = s.next
	} else {
		sh.head = s.next
	}
	if s.next != nil {
		s.next.prev = s.prev
	} else {
		sh.tail = s.prev
	}
	s.prev, s.next = nil, nil
}

func (sh *sessionShard) moveToFront(s *session) {
	if sh.head == s {
		return
	}
	sh.unlink(s)
	sh.pushFront(s)
}

// ---------------------------------------------------------------------------

// touch stamps the access clock on s. Caller holds the shard write lock.
func (st *sessionStore) touch(s *session) {
	s.lruSeq = st.clock.Add(1)
	s.lastAccess = st.now()
}

// put registers a new session, evicting least-recently-used sessions while
// the store is over capacity and expiring idle tails of the target shard.
func (st *sessionStore) put(id string, s *session) {
	s.id = id
	sh := st.shardFor(id)
	sh.mu.Lock()
	var expired []string
	if st.ttl > 0 {
		expired = st.expireTailLocked(sh)
	}
	sh.m[id] = s
	sh.pushFront(s)
	st.touch(s)
	sh.mu.Unlock()
	st.notifyRemoved(expired)
	st.count.Add(1)
	for st.maxSessions > 0 && st.count.Load() > int64(st.maxSessions) {
		victim, ok := st.evictOldest()
		if !ok {
			return
		}
		st.notifyRemoved([]string{victim})
	}
}

// notifyRemoved runs the removal hook for each id. Callers must have
// released every shard lock first — the hook may do I/O (journal append).
func (st *sessionStore) notifyRemoved(ids []string) {
	if st.onRemove == nil {
		return
	}
	for _, id := range ids {
		st.onRemove(id)
	}
}

// get returns the live session for id, promoting it to most-recently-used.
// An idle-TTL-expired session is removed and reported as absent.
func (st *sessionStore) get(id string) (*session, bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	if st.ttl > 0 && st.now().Sub(s.lastAccess) > st.ttl {
		st.removeLocked(sh, s)
		st.expired.Add(1)
		sh.mu.Unlock()
		st.notifyRemoved([]string{id})
		return nil, false
	}
	sh.moveToFront(s)
	st.touch(s)
	sh.mu.Unlock()
	return s, true
}

// has reports whether id is live, without promoting it in the LRU order or
// resetting its idle clock — a read-only existence probe.
func (st *sessionStore) has(id string) bool {
	sh := st.shardFor(id)
	sh.mu.RLock()
	_, ok := sh.m[id]
	sh.mu.RUnlock()
	return ok
}

// remove deletes id, returning the removed session.
func (st *sessionStore) remove(id string) (*session, bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.m[id]
	if ok {
		st.removeLocked(sh, s)
	}
	sh.mu.Unlock()
	if ok {
		st.notifyRemoved([]string{id})
	}
	return s, ok
}

// removeLocked unlinks and forgets s. Caller holds the shard write lock.
func (st *sessionStore) removeLocked(sh *sessionShard, s *session) {
	sh.unlink(s)
	delete(sh.m, s.id)
	s.gone.Store(true)
	st.count.Add(-1)
}

// expireTailLocked drops idle-expired sessions off the least-recent end of
// one shard, returning their ids so the caller can fire the removal hook
// after releasing the lock. Caller holds the shard write lock.
func (st *sessionStore) expireTailLocked(sh *sessionShard) []string {
	now := st.now()
	var ids []string
	for sh.tail != nil && now.Sub(sh.tail.lastAccess) > st.ttl {
		ids = append(ids, sh.tail.id)
		st.removeLocked(sh, sh.tail)
		st.expired.Add(1)
	}
	return ids
}

// evictOldest removes the globally least-recently-used session, returning
// its id: peek every shard's tail stamp under a read lock, then confirm and
// remove the winner under its write lock. A tail promoted between peek and
// confirm makes the snapshot stale; retry a bounded number of times
// (progress is still guaranteed by the caller's count check — another
// creator may have evicted on our behalf).
func (st *sessionStore) evictOldest() (string, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		var victim *sessionShard
		var victimSeq uint64
		for i := range st.shards {
			sh := &st.shards[i]
			sh.mu.RLock()
			if sh.tail != nil && (victim == nil || sh.tail.lruSeq < victimSeq) {
				victim = sh
				victimSeq = sh.tail.lruSeq
			}
			sh.mu.RUnlock()
		}
		if victim == nil {
			return "", false
		}
		victim.mu.Lock()
		if victim.tail != nil && victim.tail.lruSeq == victimSeq {
			id := victim.tail.id
			st.removeLocked(victim, victim.tail)
			st.evicted.Add(1)
			victim.mu.Unlock()
			return id, true
		}
		victim.mu.Unlock()
	}
	return "", false
}

// len reports the live session count.
func (st *sessionStore) len() int { return int(st.count.Load()) }

// ids snapshots the live session ids across all shards.
func (st *sessionStore) ids() map[string]bool {
	out := make(map[string]bool, st.len())
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.RLock()
		for id := range sh.m {
			out[id] = true
		}
		sh.mu.RUnlock()
	}
	return out
}

// stats reports cumulative (capacity evictions, idle-TTL expiries).
func (st *sessionStore) stats() (evicted, expired int64) {
	return st.evicted.Load(), st.expired.Load()
}
