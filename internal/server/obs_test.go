package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/obs"
)

// TestMetricsEndpoint drives a metrics-enabled server through ask, repeat
// ask (memo + render-cache hit), feedback and history, then checks that
// /v1/metrics reports per-stage latency histograms with observations and
// the cache hit/miss counters — in JSON and in Prometheus text.
func TestMetricsEndpoint(t *testing.T) {
	f := factory(t)
	m := obs.NewMetrics()
	memo := assistant.NewAnswerMemo(0)
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": &memoFactory{
		testFactory: f, memo: memo}}, WithMetrics(m)))
	defer ts.Close()

	newSession := func() string {
		t.Helper()
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		if id == "" {
			t.Fatal("no session id")
		}
		return id
	}
	question := f.ds.Examples[0].Question
	id := newSession()
	if resp, out := postJSON(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": question}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ask: %d %v", resp.StatusCode, out)
	}
	// Second session, same question: answer-memo hit, cached wire bytes.
	id2 := newSession()
	if resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+id2+"/ask", map[string]string{"question": question}); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat ask: %d", resp.StatusCode)
	}
	if resp, out := postJSON(t, ts.URL+"/v1/sessions/"+id+"/feedback", map[string]string{"text": "only count the ones created in 2023"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback: %d %v", resp.StatusCode, out)
	}
	if resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/history"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("history: %v %d", err, resp.StatusCode)
	} else {
		drainBody(resp)
	}

	// JSON snapshot.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics JSON did not decode: %v", err)
	}
	for _, name := range []string{
		"fisql_stage_retrieve_seconds", "fisql_stage_prompt_seconds",
		"fisql_stage_llm_seconds", "fisql_stage_plan_seconds",
		"fisql_stage_execute_seconds", "fisql_stage_route_seconds",
		"fisql_stage_repair_seconds", "fisql_http_request_seconds",
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("snapshot missing histogram %s", name)
			continue
		}
		if h.Count == 0 {
			t.Errorf("%s has no observations", name)
		}
		if h.P50ms < 0 || h.P99ms < h.P50ms {
			t.Errorf("%s quantiles implausible: p50=%v p99=%v", name, h.P50ms, h.P99ms)
		}
	}
	if snap.Counters["fisql_http_requests_total"] < 6 {
		t.Errorf("http requests = %d, want >= 6", snap.Counters["fisql_http_requests_total"])
	}
	if snap.Counters["fisql_render_cache_misses_total"] == 0 {
		t.Error("no render-cache misses counted")
	}
	if snap.Counters["fisql_render_cache_hits_total"] == 0 {
		t.Error("repeat ask should hit the render cache")
	}
	if snap.Gauges["fisql_sessions_live"] != 2 {
		t.Errorf("sessions_live = %d, want 2", snap.Gauges["fisql_sessions_live"])
	}

	// Prometheus text exposition.
	presp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content-type = %q", ct)
	}
	text, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE fisql_stage_llm_seconds histogram",
		"# TYPE fisql_http_requests_total counter",
		"# TYPE fisql_sessions_live gauge",
		`fisql_stage_llm_seconds_bucket{le="+Inf"}`,
		"fisql_stage_llm_seconds_count",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestMetricsDisabledNoEndpoint checks that a server without WithMetrics
// serves no /v1/metrics route and still answers normally — the zero-cost
// disabled mode.
func TestMetricsDisabledNoEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled metrics endpoint answered %d, want 404", resp.StatusCode)
	}
}

// TestPprofOptIn checks the /debug/pprof/ mount is present exactly when
// WithPprof is given.
func TestPprofOptIn(t *testing.T) {
	f := factory(t)
	on := httptest.NewServer(New(map[string]SessionFactory{"aep": f}, WithPprof()))
	defer on.Close()
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof-enabled cmdline: %d, want 200", resp.StatusCode)
	}

	off := testServer(t)
	resp2, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp2)
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("pprof-disabled cmdline: %d, want 404", resp2.StatusCode)
	}
}
