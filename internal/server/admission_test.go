package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fisql/internal/assistant"
	"fisql/internal/core"
	"fisql/internal/llm"
)

// clientFactory is testFactory with the LLM client swapped out, for tests
// that need to block or fault-inject the model path.
type clientFactory struct {
	*testFactory
	client llm.Client
}

func (f *clientFactory) NewSession(db string) *core.Session {
	asst := &assistant.Assistant{Client: f.client, DS: f.ds, Store: f.store, K: 8, Cache: f.cache}
	method := &core.FISQL{Client: f.client, DS: f.ds, Store: f.store, K: 8, Routing: true, Highlights: true}
	return core.NewSession(asst, method, db)
}

// gateClient parks every Complete call until release closes, so a test can
// hold pipeline slots occupied at will.
type gateClient struct {
	inner   llm.Client
	started chan struct{} // one token per call that reached the gate
	release chan struct{}
}

func (g *gateClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return llm.Response{}, ctx.Err()
	}
	return g.inner.Complete(ctx, req)
}

// admissionServer builds a server over the shared corpus with the given
// client and admission config, returning the Server for white-box checks.
func admissionServer(t *testing.T, client llm.Client, cfg AdmissionConfig) (*Server, *httptest.Server) {
	t.Helper()
	f := factory(t)
	srv := New(map[string]SessionFactory{"aep": &clientFactory{testFactory: f, client: client}},
		WithAdmission(cfg))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func newTestSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, out := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create session: status %d", resp.StatusCode)
	}
	sid, _ := out["session_id"].(string)
	if sid == "" {
		t.Fatal("create session: no id")
	}
	return sid
}

func TestAdmissionShedsWithRetryAfter(t *testing.T) {
	gate := &gateClient{inner: factory(t).sim,
		started: make(chan struct{}, 8), release: make(chan struct{})}
	srv, ts := admissionServer(t, gate, AdmissionConfig{
		AskConcurrency: 1,
		Queue:          1,
		QueueTimeout:   10 * time.Second,
		RetryAfter:     2 * time.Second,
	})
	sidA, sidB, sidC := newTestSession(t, ts), newTestSession(t, ts), newTestSession(t, ts)
	ask := func(sid string) (*http.Response, map[string]any, error) {
		return postJSONRaw(ts.URL+"/v1/sessions/"+sid+"/ask",
			map[string]string{"question": "how many users are there"})
	}

	// A occupies the single slot (its pipeline is parked at the gate).
	var wg sync.WaitGroup
	codes := make(map[string]int)
	var mu sync.Mutex
	launch := func(sid string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _, err := ask(sid)
			if err != nil {
				t.Errorf("ask %s: %v", sid, err)
				return
			}
			mu.Lock()
			codes[sid] = resp.StatusCode
			mu.Unlock()
		}()
	}
	launch(sidA)
	<-gate.started // A's pipeline is running and holds the slot

	// B fills the one queue spot.
	launch(sidB)
	for i := 0; srv.askLimit.waiting.Load() != 1; i++ {
		if i > 5000 {
			t.Fatal("second ask never entered the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	// C finds the queue full: shed, immediately, with the full contract.
	resp, body, err := ask(sidC)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full ask: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After %q, want %q", got, "2")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("429 Content-Type %q", ct)
	}
	if msg, _ := body["error"].(string); msg == "" {
		t.Errorf("429 body %v lacks the standard error field", body)
	}

	close(gate.release)
	wg.Wait()
	if codes[sidA] != http.StatusOK || codes[sidB] != http.StatusOK {
		t.Errorf("held asks finished %v, want both 200 — shedding must never cost admitted work", codes)
	}
	if a, s := srv.askLimit.admitted.Load(), srv.askLimit.shed.Load(); a != 2 || s != 1 {
		t.Errorf("limiter counters admitted=%d shed=%d, want 2/1", a, s)
	}
}

func TestAdmissionCanceledWhileQueuedWritesNothing(t *testing.T) {
	gate := &gateClient{inner: factory(t).sim,
		started: make(chan struct{}, 8), release: make(chan struct{})}
	srv, ts := admissionServer(t, gate, AdmissionConfig{
		AskConcurrency: 1,
		Queue:          1,
		QueueTimeout:   10 * time.Second,
	})
	sidA, sidB := newTestSession(t, ts), newTestSession(t, ts)

	done := make(chan int, 1)
	go func() {
		resp, _, err := postJSONRaw(ts.URL+"/v1/sessions/"+sidA+"/ask",
			map[string]string{"question": "how many users are there"})
		if err != nil {
			done <- -1
			return
		}
		done <- resp.StatusCode
	}()
	<-gate.started

	// B queues, then its client gives up: the server must just unwind — no
	// response bytes, no shed count, queue drained.
	impatient := &http.Client{Timeout: 100 * time.Millisecond}
	body := strings.NewReader(`{"question":"how many users are there"}`)
	if _, err := impatient.Post(ts.URL+"/v1/sessions/"+sidB+"/ask", "application/json", body); err == nil {
		t.Fatal("queued ask should have timed out client-side")
	}
	for i := 0; srv.askLimit.waiting.Load() != 0; i++ {
		if i > 5000 {
			t.Fatal("abandoned ask never left the admission queue")
		}
		time.Sleep(time.Millisecond)
	}
	if s := srv.askLimit.shed.Load(); s != 0 {
		t.Errorf("client disconnect counted as a shed (%d)", s)
	}

	close(gate.release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("held ask finished %d, want 200", code)
	}
	// The freed capacity is immediately usable.
	resp, _ := postJSON(t, ts.URL+"/v1/sessions/"+sidB+"/ask",
		map[string]string{"question": "how many users are there"})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ask after disconnect: status %d", resp.StatusCode)
	}
}

// TestAdmissionStress hammers a tightly limited server from many clients
// under -race and verifies the end-to-end accounting: every response is
// 200 or 429, the server's shed counter matches the client's 429 count,
// and each session's history holds exactly its acknowledged asks.
func TestAdmissionStress(t *testing.T) {
	// The injected latency makes service time non-trivial so the tight
	// limits actually bind (the bare sim answers in microseconds and the
	// queue would never fill).
	slow := &llm.Flaky{Inner: factory(t).sim, Latency: 2 * time.Millisecond}
	srv, ts := admissionServer(t, slow, AdmissionConfig{
		AskConcurrency: 2,
		Queue:          2,
		QueueTimeout:   2 * time.Millisecond,
	})
	const workers = 12
	const asksPerWorker = 30
	type tally struct {
		sid         string
		acked, shed int
		other       []int
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl := &tallies[w]
			tl.sid = newTestSession(t, ts)
			url := ts.URL + "/v1/sessions/" + tl.sid + "/ask"
			for i := 0; i < asksPerWorker; i++ {
				q := fmt.Sprintf("how many users are there (variant %d-%d)", w, i)
				resp, _, err := postJSONRaw(url, map[string]string{"question": q})
				if err != nil {
					tl.other = append(tl.other, -1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					tl.acked++
				case http.StatusTooManyRequests:
					tl.shed++
					if resp.Header.Get("Retry-After") == "" {
						tl.other = append(tl.other, resp.StatusCode)
					}
				default:
					tl.other = append(tl.other, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()

	totalAcked, totalShed := 0, 0
	for w := range tallies {
		tl := &tallies[w]
		totalAcked += tl.acked
		totalShed += tl.shed
		if len(tl.other) > 0 {
			t.Errorf("worker %d saw unexpected outcomes %v — overload may only answer 200 or a clean 429",
				w, tl.other)
		}
		if tl.acked+tl.shed != asksPerWorker {
			t.Errorf("worker %d: %d acked + %d shed != %d asks", w, tl.acked, tl.shed, asksPerWorker)
		}
	}
	if totalShed == 0 {
		t.Error("stress run shed nothing; the limits are not binding and the test is vacuous")
	}
	if got := srv.askLimit.shed.Load(); got != int64(totalShed) {
		t.Errorf("server shed counter %d != client-observed 429s %d", got, totalShed)
	}
	if got := srv.askLimit.admitted.Load(); got != int64(totalAcked) {
		t.Errorf("server admitted counter %d != acknowledged asks %d", got, totalAcked)
	}
	if w := srv.askLimit.waiting.Load(); w != 0 {
		t.Errorf("admission queue did not drain: %d still waiting", w)
	}

	// No acknowledged turn lost, no shed turn recorded: user-role history
	// turns == the worker's 200 count, exactly.
	for w := range tallies {
		tl := &tallies[w]
		resp, err := http.Get(ts.URL + "/v1/sessions/" + tl.sid + "/history")
		if err != nil {
			t.Fatal(err)
		}
		var hist struct {
			Turns []struct {
				Role string `json:"role"`
			} `json:"turns"`
		}
		err = json.NewDecoder(resp.Body).Decode(&hist)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("worker %d history: %v", w, err)
		}
		users := 0
		for _, turn := range hist.Turns {
			if turn.Role == "user" {
				users++
			}
		}
		if users != tl.acked {
			t.Errorf("worker %d: history has %d user turns, client got %d acks — %s",
				w, users, tl.acked, strconv.Quote(tl.sid))
		}
	}
}
