// Server-sent-events streaming for POST /v1/sessions/{id}/ask.
//
// A client that sends "Accept: text/event-stream" receives the answer
// stage-by-stage as the pipeline produces it, instead of one JSON body at
// the end:
//
//	event: open          data: {}
//	event: sql           data: {"sql": ...}
//	event: explanation   data: {"reformulation": ..., "explanation": [...], "spans": [...]}
//	event: result        data: {"columns": [...], "rows": [...]} | {"error": ...}
//	event: done          data: <the complete answer JSON>
//
// The done payload is the exact byte sequence a non-streaming ask would
// have received as its response body (minus the body's trailing newline,
// which SSE framing cannot carry) — rendered once and shared through the
// same wire cache, so the two forms can never drift. Stage events stream
// live while the pipeline computes; when a memoized Answer (or a
// singleflight share) skips the pipeline, the missing stages are
// synthesized from the finished Answer before done, so the event sequence
// is always complete: open, sql, explanation, result, done. The open event
// commits the stream before the pipeline runs, so once a client has opted
// into SSE, every outcome — including a generation failure that fires no
// stage at all — arrives as a well-formed event stream.
//
// A pipeline or journal failure after the stream has started is delivered
// as a terminal "error" event ({"error": ...}); the session and journal are
// left exactly as a failed non-streaming ask would leave them (no history
// turn, no journal record — or, on a journal append failure, the session
// evicted). The ask is journaled exactly once, at the same point as the
// non-streaming path: after pipeline success, before done.
//
// Every payload is a single line (JSON escaping keeps newlines out), so
// each event is one "data:" line and reconstruction is trivial.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"fisql/internal/assistant"
	"fisql/internal/engine"
	"fisql/internal/obs"
	"fisql/internal/persist"
	"fisql/internal/sqlast"
)

// wantsSSE reports whether the request opted into streaming.
func wantsSSE(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		if containsToken(accept, "text/event-stream") {
			return true
		}
	}
	return false
}

// containsToken reports whether the comma-separated header value lists the
// media type (parameters after ';' ignored). The comparison folds ASCII
// case: RFC 9110 media types are case-insensitive, so "Text/Event-Stream"
// must opt in exactly as "text/event-stream" does.
func containsToken(header, token string) bool {
	for len(header) > 0 {
		item := header
		if i := indexByte(header, ','); i >= 0 {
			item, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		if i := indexByte(item, ';'); i >= 0 {
			item = item[:i]
		}
		if strings.EqualFold(trimSpaces(item), token) {
			return true
		}
	}
	return false
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// Stage payload wire forms. resultJSON doubles as the error carrier to
// match the answer body ({"error": ...} when execution failed).
type sqlEvent struct {
	SQL string `json:"sql"`
}

type explanationEvent struct {
	Reformulation string     `json:"reformulation"`
	Explanation   []string   `json:"explanation"`
	Spans         []spanJSON `json:"spans,omitempty"`
}

type resultEvent struct {
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// sseStream writes one SSE response and implements assistant.Stream so the
// pipeline can push stages as they complete. It is used from the handler
// goroutine only (the pipeline runs synchronously under the session lock).
type sseStream struct {
	w http.ResponseWriter
	f http.Flusher

	started bool // response headers committed
	// failed and errored both end the stream, for opposite reasons. failed
	// means a write error: the client is gone, nothing further can be
	// delivered, so every later write is suppressed silently. errored means
	// an encoding bug: the client is still listening, so it was sent a
	// terminal "error" event and must not receive further events after it —
	// a truncated stream that announces itself, never one that looks
	// well-formed.
	failed  bool
	errored bool
	sentSQL bool
	sentExp bool
	sentRes bool
}

// dead reports that the stream can emit no more events.
func (st *sseStream) dead() bool { return st.failed || st.errored }

// event frames and flushes one SSE event, with seq as the SSE id line when
// non-zero (eventID). data must be newline-free (every caller passes a
// single-line JSON encoding).
func (st *sseStream) event(name string, data []byte) { st.eventID(name, data, 0) }

func (st *sseStream) eventID(name string, data []byte, seq uint64) {
	if st.dead() {
		return
	}
	if !st.started {
		h := st.w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		st.w.WriteHeader(http.StatusOK)
		st.started = true
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if seq > 0 {
		buf.WriteString("id: ")
		buf.WriteString(strconv.FormatUint(seq, 10))
		buf.WriteByte('\n')
	}
	buf.WriteString("event: ")
	buf.WriteString(name)
	buf.WriteString("\ndata: ")
	buf.Write(data)
	buf.WriteString("\n\n")
	if _, err := st.w.Write(buf.Bytes()); err != nil {
		st.failed = true
	}
	bufPool.Put(buf)
	if st.f != nil && !st.failed {
		st.f.Flush()
	}
}

// jsonEvent marshals v and emits it. Marshal of these fixed shapes cannot
// fail in practice — but if it ever does, that is an encoding bug, not a
// client disconnect: the client gets a terminal error event (and nothing
// after it) instead of a silently truncated stream.
func (st *sseStream) jsonEvent(name string, v any) {
	if st.dead() {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		st.event("error", mustErrorJSON("encode "+name+" event: "+err.Error()))
		st.errored = true
		return
	}
	st.event(name, data)
}

// mustErrorJSON renders {"error": msg}; a map[string]string cannot fail to
// marshal.
func mustErrorJSON(msg string) []byte {
	data, _ := json.Marshal(map[string]string{"error": msg})
	return data
}

// OnSQL implements assistant.Stream.
func (st *sseStream) OnSQL(sql string) {
	st.sentSQL = true
	st.jsonEvent("sql", sqlEvent{SQL: sql})
}

// OnExplanation implements assistant.Stream.
func (st *sseStream) OnExplanation(reformulation string, explanation []string, spans []sqlast.Span) {
	st.sentExp = true
	st.jsonEvent("explanation", explanationEvent{
		Reformulation: reformulation,
		Explanation:   explanation,
		Spans:         spansToJSON(spans),
	})
}

// OnResult implements assistant.Stream.
func (st *sseStream) OnResult(res *engine.Result, execErr error) {
	st.sentRes = true
	ev := resultEvent{}
	if execErr != nil {
		ev.Error = execErr.Error()
	} else if res != nil {
		ev.Columns, ev.Rows = resultToJSON(res)
	}
	st.jsonEvent("result", ev)
}

// fail terminates the stream: an "error" event if the response has
// started, a regular JSON error response otherwise.
func (st *sseStream) fail(code int, msg string) {
	if st.started {
		st.jsonEvent("error", map[string]string{"error": msg})
		return
	}
	httpError(st.w, code, msg)
}

// synthesize emits any stage event the live pipeline skipped (memo hit,
// singleflight share), in pipeline order, from the finished Answer.
func (st *sseStream) synthesize(ans *assistant.Answer) {
	if !st.sentSQL {
		st.OnSQL(ans.SQL)
	}
	if !st.sentExp {
		st.OnExplanation(ans.Reformulation, ans.Explanation, ans.Spans)
	}
	if !st.sentRes {
		st.OnResult(ans.Result, ans.ExecErr)
	}
}

// streamAsk is handleAsk's streaming tail: the caller has validated the
// request, verified the connection can actually stream (fl is the real
// Flusher behind w — see flusherOf), acquired admission and the session
// lock, and built the traced context. The ask is journaled at the same
// point as the non-streaming path.
func (s *Server) streamAsk(ctx context.Context, w http.ResponseWriter, fl http.Flusher,
	tr *obs.Trace, sess *session, question string) {
	st := &sseStream{w: w, f: fl}
	// Commit the stream before the pipeline runs: from here every outcome —
	// including failure — is delivered as events, so the client always
	// parses one well-formed stream.
	st.event("open", []byte("{}"))
	ans, err := sess.sess.Ask(assistant.WithStream(ctx, st), question)
	if err != nil {
		st.fail(http.StatusInternalServerError, err.Error())
		return
	}
	if err := s.journalAppend(persist.Record{
		Type: persist.TAsk, Session: sess.id, Text: question,
	}); err != nil {
		if !isReplicationError(err) {
			s.dropDiverged(sess)
		}
		st.fail(http.StatusInternalServerError, "journal: "+err.Error())
		return
	}
	body, err := s.renderAnswer(tr, ans)
	if err != nil {
		st.fail(http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	// Acknowledged: fan the turn out to /events subscribers as one atomic
	// batch. The private stream's stage events above were live
	// (pre-acknowledgment, so they carry no sequence number); the done event
	// carries the turn's fanout sequence number, letting this client hand
	// off to a resumable /events subscription without a gap.
	seq := s.publishAnswer(sess.id, nil, ans, body)
	st.synthesize(ans)
	// The rendered body is "{...}\n"; SSE data cannot frame the trailing
	// newline, so done carries the line itself — append '\n' to recover the
	// exact non-streamed body.
	st.eventID("done", body[:len(body)-1], seq)
	s.sseStreams.Inc()
}
