// Session-event fanout: GET /v1/sessions/{id}/events.
//
// Every session carries a pubsub topic (internal/pubsub) to which the
// server publishes its lifecycle events — open, then per acknowledged turn
// sql/explanation/result/done (plus feedback for a feedback turn), then
// delete — at exactly the points it journals them. Publishing only
// acknowledged turns makes the event stream a pure function of the
// journaled history: crash recovery and cluster failover promotion replay
// the journal through the same publish calls, rebuilding each topic with
// the same payloads under the same sequence numbers, so a subscriber that
// resumes against a rebuilt owner never sees a sequence regress or a
// duplicate turn.
//
// The endpoint is a long-lived SSE stream. Each event carries its topic
// sequence number as the SSE id line:
//
//	id: 7
//	event: done
//	data: {...}
//
// A reconnecting client sends Last-Event-ID: 7 (the standard EventSource
// behavior; ?from=7 works for plain HTTP clients) and receives 8, 9, ...
// — replayed from the ring when still retained. When the resume point has
// left the ring, or a slow reader was lapped while connected, the gap is
// announced as an un-sequenced "dropped" event ({"missed": N}) before the
// next delivered event; the client's view is then explicitly — never
// silently — incomplete, and it can re-fetch /history to resynchronize.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"fisql/internal/assistant"
	"fisql/internal/pubsub"
)

// subscriberLagBounds bucket the fanout lag histogram by events still
// buffered after a delivery (the histogram's "seconds" axis carries event
// counts for this metric).
var subscriberLagBounds = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// openPayload announces the session's coordinates as its first event.
func openPayload(id, corpus, db string) pubsub.Payload {
	data, _ := json.Marshal(map[string]string{"session_id": id, "corpus": corpus, "db": db})
	return pubsub.Payload{Type: "open", Data: data}
}

// deletePayload is the terminal event of an ended (not moved) session.
func deletePayload(id string) pubsub.Payload {
	data, _ := json.Marshal(map[string]string{"session_id": id})
	return pubsub.Payload{Type: "delete", Data: data}
}

// feedbackEvent mirrors the journaled feedback record: the resolved
// highlight offset (or -1), not the client's raw request, so the replayed
// payload is byte-identical to the live one.
type feedbackEvent struct {
	Text           string `json:"text"`
	Highlight      string `json:"highlight,omitempty"`
	HighlightStart int    `json:"highlight_start"`
}

func feedbackPayload(text, highlight string, start int) pubsub.Payload {
	data, _ := json.Marshal(feedbackEvent{Text: text, Highlight: highlight, HighlightStart: start})
	return pubsub.Payload{Type: "feedback", Data: data}
}

// answerPayloads renders one acknowledged turn as its fanout events. body
// is the turn's rendered wire body (renderAnswer), whose line — the body
// minus its trailing newline — becomes the done payload, byte-identical to
// the SSE done event and (plus '\n') to the plain response body. The stage
// payloads marshal through the same wire structs as the /ask SSE stream.
func answerPayloads(ans *assistant.Answer, body []byte) []pubsub.Payload {
	sqlData, _ := json.Marshal(sqlEvent{SQL: ans.SQL})
	expData, _ := json.Marshal(explanationEvent{
		Reformulation: ans.Reformulation,
		Explanation:   ans.Explanation,
		Spans:         spansToJSON(ans.Spans),
	})
	res := resultEvent{}
	if ans.ExecErr != nil {
		res.Error = ans.ExecErr.Error()
	} else if ans.Result != nil {
		res.Columns, res.Rows = resultToJSON(ans.Result)
	}
	resData, _ := json.Marshal(res)
	return []pubsub.Payload{
		{Type: "sql", Data: sqlData},
		{Type: "explanation", Data: expData},
		{Type: "result", Data: resData},
		{Type: "done", Data: body[:len(body)-1]},
	}
}

// publishAnswer publishes one acknowledged turn (optionally prefixed by its
// feedback event) to the session's topic as a single atomic batch, so a
// concurrent delete event can never interleave into the middle of a turn.
// Returns the sequence number of the done event (0 when the topic is gone —
// the session was deleted while the turn was in flight).
func (s *Server) publishAnswer(id string, fb *pubsub.Payload, ans *assistant.Answer, body []byte) uint64 {
	payloads := answerPayloads(ans, body)
	if fb != nil {
		payloads = append([]pubsub.Payload{*fb}, payloads...)
	}
	return s.hub.Publish(id, payloads...)
}

// flusherOf finds the http.Flusher behind w, walking Unwrap chains (the
// statusWriter wrapper, http.ResponseController-style middleware). Returns
// nil when the connection cannot stream — the caller must then fall back to
// a buffered response instead of fake-streaming into a burst.
func flusherOf(w http.ResponseWriter) http.Flusher {
	for {
		switch v := w.(type) {
		case http.Flusher:
			return v
		case interface{ Unwrap() http.ResponseWriter }:
			w = v.Unwrap()
		default:
			return nil
		}
	}
}

// lastEventID parses the subscriber's resume position: the standard
// Last-Event-ID header (set automatically by EventSource on reconnect), or
// ?from= for clients that cannot set headers. Absent means 0 — subscribe
// from the oldest retained event.
func lastEventID(r *http.Request) (uint64, error) {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("from")
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad Last-Event-ID %q: not a sequence number", v)
	}
	return n, nil
}

// handleEvents is the long-lived fanout subscription. It holds no session
// lock and no admission slot: subscribers read from the topic ring at their
// own pace and, by the hub's non-blocking publish contract, can never slow
// an ask down.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Existence probe without LRU promotion: following a session is not
	// using it, so a watch must not keep an idle session alive.
	if !s.store.has(id) {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	fl := flusherOf(w)
	if fl == nil {
		s.sseNoFlush.Inc()
		httpError(w, http.StatusNotAcceptable, "event subscription requires a connection that supports streaming")
		return
	}
	after, err := lastEventID(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	sub, err := s.hub.Subscribe(id, after)
	if err != nil {
		// The session vanished between the store probe and the subscribe.
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	defer sub.Cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ctx := r.Context()
	for {
		ev, missed, ok := sub.Next(ctx)
		if !ok {
			// Topic closed (session deleted or handed off) or client gone.
			// The stream just ends; a client that still wants the session
			// reconnects with its last id and gets 404 if it truly ended.
			return
		}
		if missed > 0 {
			// The gap marker carries no id: it is not part of the sequence,
			// and a reconnect must resume from the last real event.
			if !writeSSE(w, 0, "dropped", []byte(fmt.Sprintf(`{"missed":%d}`, missed))) {
				return
			}
		}
		if !writeSSE(w, ev.Seq, ev.Type, ev.Data) {
			return
		}
		fl.Flush()
	}
}

// writeSSE frames one event (id omitted when seq is 0). data must be
// newline-free — every published payload is single-line JSON.
func writeSSE(w http.ResponseWriter, seq uint64, name string, data []byte) bool {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if seq > 0 {
		buf.WriteString("id: ")
		buf.WriteString(strconv.FormatUint(seq, 10))
		buf.WriteByte('\n')
	}
	buf.WriteString("event: ")
	buf.WriteString(name)
	buf.WriteString("\ndata: ")
	buf.Write(data)
	buf.WriteString("\n\n")
	_, err := w.Write(buf.Bytes())
	bufPool.Put(buf)
	return err == nil
}
