package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fisql/internal/persist"
)

const askQuestion = "How many audiences were created in January?"

// journalServer opens (or reopens) the journal at path and serves the shared
// aep factory on top of it. The caller owns both: close the test server
// before crashing or closing the journal.
func journalServer(t *testing.T, path string, opts ...Option) (*httptest.Server, *persist.Journal, *Server) {
	t.Helper()
	j, err := persist.Open(path, persist.Options{Fsync: persist.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(map[string]SessionFactory{"aep": factory(t)}, append(opts, WithJournal(j))...)
	return httptest.NewServer(srv), j, srv
}

func getHistory(t *testing.T, base string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + "/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func createSession(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	id, _ := created["session_id"].(string)
	if id == "" {
		t.Fatalf("no session id: %v", created)
	}
	return id
}

// TestCrashRecoveryHistoryIdentical is the acceptance criterion end to end:
// journal a mixed workload (asks, grounded feedback with an explicit
// highlight_start, a delete), kill the server without any shutdown
// courtesy, restart on the same journal, and require every surviving
// session's /history body to be byte-identical to its pre-crash capture.
func TestCrashRecoveryHistoryIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	ts, j, _ := journalServer(t, path)

	// Session A: ask, then feedback grounded at an explicit byte offset.
	a := createSession(t, ts)
	_, ans := postJSON(t, ts.URL+"/v1/sessions/"+a+"/ask", map[string]string{"question": askQuestion})
	sql, _ := ans["sql"].(string)
	off := strings.Index(sql, "2023")
	resp, out := postJSON(t, ts.URL+"/v1/sessions/"+a+"/feedback", map[string]any{
		"text": "we are in 2024", "highlight": "2023", "highlight_start": off})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("grounded feedback: %d %v", resp.StatusCode, out)
	}

	// Session B: ask plus ungrounded feedback.
	b := createSession(t, ts)
	postJSON(t, ts.URL+"/v1/sessions/"+b+"/ask", map[string]string{"question": askQuestion})
	postJSON(t, ts.URL+"/v1/sessions/"+b+"/feedback", map[string]string{"text": "only the top 5"})

	// Session C: created and deleted before the crash; must stay dead.
	c := createSession(t, ts)
	postJSON(t, ts.URL+"/v1/sessions/"+c+"/ask", map[string]string{"question": askQuestion})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+c, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainBody(dresp)

	want := map[string]string{}
	for _, id := range []string{a, b} {
		_, body := getHistory(t, ts.URL+"/v1/sessions/"+id)
		want[id] = body
	}

	ts.Close()
	j.Crash()

	ts2, j2, srv2 := journalServer(t, path)
	defer ts2.Close()
	defer j2.Close()

	rec := srv2.Recovery()
	if rec.Sessions != 2 {
		t.Errorf("recovered sessions = %d, want 2 (info: %+v)", rec.Sessions, rec)
	}
	for id, pre := range want {
		code, post := getHistory(t, ts2.URL+"/v1/sessions/"+id)
		if code != http.StatusOK {
			t.Fatalf("session %s not recovered: %d", id, code)
		}
		if post != pre {
			t.Errorf("session %s history drifted after recovery:\npre:  %q\npost: %q", id, pre, post)
		}
	}
	if code, _ := getHistory(t, ts2.URL+"/v1/sessions/"+c); code != http.StatusNotFound {
		t.Errorf("deleted session %s resurrected: %d", c, code)
	}

	// The recovered server keeps serving: a new session id must not collide
	// with a replayed one.
	fresh := createSession(t, ts2)
	if fresh == a || fresh == b || fresh == c {
		t.Errorf("fresh id %s collides with a pre-crash session", fresh)
	}
}

// TestCrashRecoveryTornSweep truncates the journal at every byte boundary
// inside its final frame — the torn-write sweep from the issue. The final
// record is an ask on a dedicated victim session, so for every cut the
// earlier sessions are fully committed and must recover byte-identical; the
// victim simply loses the unacknowledged turn.
func TestCrashRecoveryTornSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	ts, j, _ := journalServer(t, path)

	a := createSession(t, ts)
	postJSON(t, ts.URL+"/v1/sessions/"+a+"/ask", map[string]string{"question": askQuestion})
	postJSON(t, ts.URL+"/v1/sessions/"+a+"/feedback", map[string]string{
		"text": "we are in 2024", "highlight": "2023"})
	victim := createSession(t, ts)
	_, victimEmpty := getHistory(t, ts.URL+"/v1/sessions/"+victim)
	postJSON(t, ts.URL+"/v1/sessions/"+victim+"/ask", map[string]string{"question": askQuestion})

	_, wantA := getHistory(t, ts.URL+"/v1/sessions/"+a)
	_, wantVictim := getHistory(t, ts.URL+"/v1/sessions/"+victim)

	ts.Close()
	j.Crash()

	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, err := persist.ScanBytes(img)
	if err != nil {
		t.Fatalf("pre-crash journal does not scan: %v", err)
	}
	last := recs[len(recs)-1]
	if last.Type != persist.TAsk || last.Session != victim {
		t.Fatalf("final record is %+v, want the victim ask", last)
	}
	lastStart := int64(0)
	if len(ends) > 1 {
		lastStart = ends[len(ends)-2]
	}

	for cut := lastStart; cut <= int64(len(img)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "journal")
			if err := os.WriteFile(p, img[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			ts2, j2, _ := journalServer(t, p)
			defer ts2.Close()
			defer j2.Close()

			code, gotA := getHistory(t, ts2.URL+"/v1/sessions/"+a)
			if code != http.StatusOK || gotA != wantA {
				t.Fatalf("committed session at cut %d: code %d\ngot:  %q\nwant: %q", cut, code, gotA, wantA)
			}
			code, gotV := getHistory(t, ts2.URL+"/v1/sessions/"+victim)
			if code != http.StatusOK {
				t.Fatalf("victim session gone at cut %d: %d", cut, code)
			}
			if cut == int64(len(img)) {
				if gotV != wantVictim {
					t.Fatalf("intact journal lost the final ask:\ngot:  %q\nwant: %q", gotV, wantVictim)
				}
			} else if gotV != victimEmpty {
				t.Fatalf("torn final record at cut %d must roll the victim back to empty:\ngot:  %q\nwant: %q",
					cut, gotV, victimEmpty)
			}
		})
	}
}

// TestNoIDReuseAfterCompactedDelete is the review repro for the id-reuse
// hole: create two sessions, delete the second, shut down gracefully (the
// journal's Close compacts, erasing every trace of the deleted session),
// restart — the next create must NOT reissue the dead id, or a stale
// client holding the old handle silently reads another client's session.
func TestNoIDReuseAfterCompactedDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	ts, j, _ := journalServer(t, path)

	a := createSession(t, ts)
	b := createSession(t, ts)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+b, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainBody(dresp)

	ts.Close()
	if err := j.Close(); err != nil { // graceful shutdown: compacts
		t.Fatal(err)
	}

	ts2, j2, _ := journalServer(t, path)
	defer ts2.Close()
	defer j2.Close()

	if code, _ := getHistory(t, ts2.URL+"/v1/sessions/"+b); code != http.StatusNotFound {
		t.Fatalf("deleted session %s resurrected after restart: %d", b, code)
	}
	fresh := createSession(t, ts2)
	if fresh == a || fresh == b {
		t.Errorf("fresh id %s reuses a pre-shutdown id (a=%s, deleted b=%s)", fresh, a, b)
	}
	if code, _ := getHistory(t, ts2.URL+"/v1/sessions/"+fresh); code != http.StatusOK {
		t.Errorf("fresh session %s not serving: %d", fresh, code)
	}
}

// TestJournalFailureEvictsSession: when a turn's journal append fails after
// the turn already mutated the live session, the handler must answer 500
// AND drop the session — keeping it would serve a history the journal
// never captured (divergent replay after a crash) and let a retry of the
// 500 double-apply the turn.
func TestJournalFailureEvictsSession(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	ts, j, _ := journalServer(t, path)
	defer ts.Close()

	id := createSession(t, ts)
	base := ts.URL + "/v1/sessions/" + id
	if resp, out := postJSON(t, base+"/ask", map[string]string{"question": askQuestion}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ask before failure: %d %v", resp.StatusCode, out)
	}

	// Break the journal out from under the server: every later append fails.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	resp, _ := postJSON(t, base+"/feedback", map[string]string{"text": "only the top 5"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("turn with a broken journal = %d, want 500", resp.StatusCode)
	}
	// The diverged session must be gone, not serving the uncaptured turn.
	if code, _ := getHistory(t, base); code != http.StatusNotFound && code != http.StatusGone {
		t.Errorf("diverged session still serving after journal failure: %d", code)
	}
	resp, _ = postJSON(t, base+"/ask", map[string]string{"question": askQuestion})
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusGone {
		t.Errorf("ask on the dropped session = %d, want 404/410", resp.StatusCode)
	}
}

// TestRecoveryRespectsEviction: sessions evicted by the LRU cap before the
// crash were journaled as deletes, so a restart under the same cap holds
// only the survivors.
func TestRecoveryRespectsEviction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	ts, j, _ := journalServer(t, path, WithMaxSessions(2))

	ids := []string{createSession(t, ts), createSession(t, ts), createSession(t, ts)}
	ts.Close()
	j.Crash()

	ts2, j2, srv2 := journalServer(t, path, WithMaxSessions(2))
	defer ts2.Close()
	defer j2.Close()
	if got := srv2.Recovery().Sessions; got != 2 {
		t.Errorf("recovered %d sessions, want 2", got)
	}
	if code, _ := getHistory(t, ts2.URL+"/v1/sessions/"+ids[0]); code != http.StatusNotFound {
		t.Errorf("evicted session %s recovered anyway: %d", ids[0], code)
	}
	for _, id := range ids[1:] {
		if code, _ := getHistory(t, ts2.URL+"/v1/sessions/"+id); code != http.StatusOK {
			t.Errorf("survivor %s missing after recovery: %d", id, code)
		}
	}
}

// TestJournalConcurrentStress hammers a journaled server from many
// goroutines (create/ask/feedback/delete interleaved), then crashes and
// recovers. Run under -race this doubles as the locking check for the
// journal append path; the recovery comparison proves no committed turn was
// interleaved out of order in the file.
func TestJournalConcurrentStress(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	ts, j, _ := journalServer(t, path)

	const workers = 8
	type result struct {
		id      string
		history string
		deleted bool
	}
	results := make([][]result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, created, err := postJSONRaw(ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
				if err != nil {
					t.Error(err)
					return
				}
				drainBody(resp)
				id, _ := created["session_id"].(string)
				base := ts.URL + "/v1/sessions/" + id
				if resp, _, err := postJSONRaw(base+"/ask", map[string]string{"question": askQuestion}); err == nil {
					drainBody(resp)
				}
				if i%2 == 0 {
					if resp, _, err := postJSONRaw(base+"/feedback", map[string]string{"text": "we are in 2024"}); err == nil {
						drainBody(resp)
					}
				}
				if i%3 == 2 {
					req, _ := http.NewRequest(http.MethodDelete, base, nil)
					if resp, err := http.DefaultClient.Do(req); err == nil {
						drainBody(resp)
					}
					results[w] = append(results[w], result{id: id, deleted: true})
					continue
				}
				hresp, err := http.Get(base + "/history")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(hresp.Body)
				hresp.Body.Close()
				results[w] = append(results[w], result{id: id, history: string(body)})
			}
		}()
	}
	wg.Wait()
	ts.Close()
	j.Crash()

	ts2, j2, _ := journalServer(t, path)
	defer ts2.Close()
	defer j2.Close()
	for _, rs := range results {
		for _, r := range rs {
			code, got := getHistory(t, ts2.URL+"/v1/sessions/"+r.id)
			if r.deleted {
				if code != http.StatusNotFound {
					t.Errorf("deleted session %s recovered: %d", r.id, code)
				}
				continue
			}
			if code != http.StatusOK {
				t.Errorf("session %s lost: %d", r.id, code)
				continue
			}
			if got != r.history {
				t.Errorf("session %s history drifted:\npre:  %q\npost: %q", r.id, r.history, got)
			}
		}
	}
}
