package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMaxBodyBytes caps the POST body: an oversized request answers 413
// before the JSON decoder buffers it, and a request within the cap is
// unaffected.
func TestMaxBodyBytes(t *testing.T) {
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": factory(t)},
		WithMaxBodyBytes(256)))
	defer ts.Close()

	resp, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create under the cap: %d", resp.StatusCode)
	}
	id, _ := created["session_id"].(string)
	base := ts.URL + "/v1/sessions/" + id

	resp, out := postJSON(t, base+"/ask", map[string]string{
		"question": strings.Repeat("why? ", 200)})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ask: status %d, body %v", resp.StatusCode, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "256") {
		t.Errorf("413 error should state the limit: %q", msg)
	}

	// The session is still usable after the rejected request.
	resp, _ = postJSON(t, base+"/ask", map[string]string{"question": askQuestion})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ask after 413: %d", resp.StatusCode)
	}
}

// TestHighlightStartOffset covers the explicit-grounding parameter: the
// byte offset disambiguates a fragment that occurs more than once, a
// mismatched offset is rejected, and omitting it keeps the documented
// first-occurrence fallback.
func TestHighlightStartOffset(t *testing.T) {
	ts := testServer(t)

	newAsked := func() (string, string) {
		t.Helper()
		_, created := postJSON(t, ts.URL+"/v1/sessions", map[string]string{"corpus": "aep"})
		id, _ := created["session_id"].(string)
		_, ans := postJSON(t, ts.URL+"/v1/sessions/"+id+"/ask", map[string]string{"question": askQuestion})
		sql, _ := ans["sql"].(string)
		if sql == "" {
			t.Fatalf("no sql in answer: %v", ans)
		}
		return ts.URL + "/v1/sessions/" + id, sql
	}

	t.Run("second occurrence", func(t *testing.T) {
		base, sql := newAsked()
		frag := "createdTime"
		second := strings.LastIndex(sql, frag)
		if second <= strings.Index(sql, frag) {
			t.Fatalf("fixture SQL no longer repeats %q: %q", frag, sql)
		}
		resp, out := postJSON(t, base+"/feedback", map[string]any{
			"text": "we are in 2024", "highlight": frag, "highlight_start": second})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offset at second occurrence: status %d, body %v", resp.StatusCode, out)
		}
	})

	t.Run("mismatched offset", func(t *testing.T) {
		base, sql := newAsked()
		off := strings.Index(sql, "2023")
		for _, bad := range []int{off + 1, -1, len(sql)} {
			resp, out := postJSON(t, base+"/feedback", map[string]any{
				"text": "we are in 2024", "highlight": "2023", "highlight_start": bad})
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("offset %d: status %d, body %v", bad, resp.StatusCode, out)
			}
			msg, _ := out["error"].(string)
			if !strings.Contains(msg, "byte offset") {
				t.Errorf("offset %d: error should mention the offset: %q", bad, msg)
			}
		}
		// The mismatches must not have consumed the turn.
		resp, _ := postJSON(t, base+"/feedback", map[string]any{
			"text": "we are in 2024", "highlight": "2023", "highlight_start": off})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("valid offset after rejects: %d", resp.StatusCode)
		}
	})

	t.Run("fallback without offset", func(t *testing.T) {
		base, _ := newAsked()
		resp, _ := postJSON(t, base+"/feedback", map[string]any{
			"text": "we are in 2024", "highlight": "2023"})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first-occurrence fallback: %d", resp.StatusCode)
		}
	})
}
