package server

import (
	"fmt"
	"testing"
	"time"
)

func newTestStore(max int, ttl time.Duration) (*sessionStore, *time.Time) {
	st := newSessionStore(max, ttl)
	now := time.Unix(1700000000, 0)
	st.now = func() time.Time { return now }
	return st, &now
}

func putN(st *sessionStore, n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("s%d", i)
		st.put(ids[i], &session{})
	}
	return ids
}

func TestStoreGetPromotesLRU(t *testing.T) {
	st, _ := newTestStore(2, 0)
	ids := putN(st, 2)
	// Touch s0 so s1 becomes the global LRU victim of the next put.
	if _, ok := st.get(ids[0]); !ok {
		t.Fatal("s0 should be present")
	}
	st.put("s2", &session{})
	if _, ok := st.get(ids[1]); ok {
		t.Error("s1 was the least recently used and should be evicted")
	}
	if _, ok := st.get(ids[0]); !ok {
		t.Error("s0 was promoted by get and should survive")
	}
	if st.len() != 2 {
		t.Errorf("len = %d, want 2", st.len())
	}
}

func TestStoreCapHoldsUnderBulkInsert(t *testing.T) {
	st, _ := newTestStore(8, 0)
	ids := putN(st, 50)
	if st.len() != 8 {
		t.Fatalf("len = %d, want 8", st.len())
	}
	// Exactly the 8 most recent creations survive, in every shard.
	for i, id := range ids {
		_, ok := st.get(id)
		if want := i >= len(ids)-8; ok != want {
			t.Errorf("session %s present=%v, want %v", id, ok, want)
		}
	}
}

func TestStoreEvictionSetsGone(t *testing.T) {
	st, _ := newTestStore(1, 0)
	s0 := &session{}
	st.put("s0", s0)
	st.put("s1", &session{})
	if !s0.gone.Load() {
		t.Error("evicted session must be flagged gone for in-flight handlers")
	}
}

func TestStoreRemove(t *testing.T) {
	st, _ := newTestStore(0, 0)
	s := &session{}
	st.put("a", s)
	got, ok := st.remove("a")
	if !ok || got != s {
		t.Fatalf("remove = (%v, %v), want the stored session", got, ok)
	}
	if !s.gone.Load() {
		t.Error("removed session must be flagged gone")
	}
	if st.len() != 0 {
		t.Errorf("len = %d after remove, want 0", st.len())
	}
	if _, ok := st.remove("a"); ok {
		t.Error("double remove should report absent")
	}
	if _, ok := st.get("a"); ok {
		t.Error("removed session should be gone from get")
	}
}

func TestStoreTTLExpiresIdleSessions(t *testing.T) {
	st, now := newTestStore(0, time.Minute)
	s := &session{}
	st.put("a", s)
	*now = now.Add(30 * time.Second)
	if _, ok := st.get("a"); !ok {
		t.Fatal("session should survive within the TTL")
	}
	// The get above refreshed lastAccess; expiry counts from the last touch.
	*now = now.Add(59 * time.Second)
	if _, ok := st.get("a"); !ok {
		t.Fatal("session touched 59s ago should survive a 60s TTL")
	}
	*now = now.Add(61 * time.Second)
	if _, ok := st.get("a"); ok {
		t.Error("session idle past the TTL should be expired on lookup")
	}
	if !s.gone.Load() {
		t.Error("expired session must be flagged gone")
	}
	if st.len() != 0 {
		t.Errorf("len = %d after expiry, want 0", st.len())
	}
}

func TestStoreTTLSweepOnPut(t *testing.T) {
	st, now := newTestStore(0, time.Minute)
	old := &session{}
	st.put("old", old)
	*now = now.Add(2 * time.Minute)
	// Creating a session in the same shard sweeps that shard's expired tail
	// without anyone ever looking the old session up again.
	sh := st.shardFor("old")
	id := "fresh"
	for i := 0; st.shardFor(id) != sh; i++ {
		id = fmt.Sprintf("fresh%d", i)
	}
	st.put(id, &session{})
	if !old.gone.Load() {
		t.Error("idle session should be swept by a same-shard create")
	}
	if st.len() != 1 {
		t.Errorf("len = %d, want 1", st.len())
	}
}
