package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"fisql/internal/obs"
	"fisql/internal/persist"
)

// readFrame parses one SSE frame (optional id line, event line, data line)
// from a live stream.
func readFrame(r *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	started := false
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			if started {
				return ev, nil
			}
			continue
		}
		started = true
		switch {
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		default:
			return ev, fmt.Errorf("unexpected SSE line %q", line)
		}
	}
}

// subscribe opens the fanout stream and returns the response plus a frame
// reader; from > 0 resumes via the Last-Event-ID header.
func subscribe(t *testing.T, ts *httptest.Server, sid string, from uint64) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/"+sid+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(from, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("subscribe: status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("subscribe: Content-Type %q", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// collectUntilEOF reads frames until the stream ends (topic closed).
func collectUntilEOF(t *testing.T, r *bufio.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	for {
		ev, err := readFrame(r)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return out
			}
			t.Fatalf("read frame: %v", err)
		}
		out = append(out, ev)
	}
}

// collectN reads exactly n frames and leaves the stream open.
func collectN(t *testing.T, r *bufio.Reader, n int) []sseEvent {
	t.Helper()
	out := make([]sseEvent, 0, n)
	for len(out) < n {
		ev, err := readFrame(r)
		if err != nil {
			t.Fatalf("read frame %d: %v", len(out), err)
		}
		out = append(out, ev)
	}
	return out
}

// checkContiguous requires the events' id lines to be the exact sequence
// first, first+1, ... (every fanout event carries its topic seq).
func checkContiguous(t *testing.T, events []sseEvent, first uint64, context string) {
	t.Helper()
	for i, ev := range events {
		want := strconv.FormatUint(first+uint64(i), 10)
		if ev.id != want {
			t.Fatalf("%s: event %d (%s) has id %q, want %q", context, i, ev.name, ev.id, want)
		}
	}
}

func fanoutServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	f := factory(t)
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": f}, opts...))
	t.Cleanup(ts.Close)
	return ts
}

func sendFeedback(t *testing.T, ts *httptest.Server, sid, text string) []byte {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"text": text})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sid+"/feedback", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feedback: status %d body %s", resp.StatusCode, raw)
	}
	return raw
}

func deleteSession(t *testing.T, ts *httptest.Server, sid string) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+sid, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drainBody(resp)
}

// TestEventsReplayThenLive: a subscriber that attaches late replays the
// ring from the beginning, then follows live turns, and the stream ends
// after the delete event. Every event id is gap-free, and each done
// payload is byte-identical to the plain ask body that produced it.
func TestEventsReplayThenLive(t *testing.T) {
	ts := fanoutServer(t)
	sid := newTestSession(t, ts)
	plain1 := askPlain(t, ts, sid, "how many users are there")
	fbBody := sendFeedback(t, ts, sid, "only count users from this year")

	resp, r := subscribe(t, ts, sid, 0)
	defer resp.Body.Close()
	// Replayed prefix: open, then ask turn, then feedback turn.
	replayed := collectN(t, r, 1+4+5)
	checkContiguous(t, replayed, 1, "replayed prefix")
	wantTypes := []string{"open", "sql", "explanation", "result", "done",
		"feedback", "sql", "explanation", "result", "done"}
	for i, want := range wantTypes {
		if replayed[i].name != want {
			t.Fatalf("replayed event %d is %q, want %q", i, replayed[i].name, want)
		}
	}
	if got := replayed[4].data + "\n"; got != string(plain1) {
		t.Errorf("replayed done differs from plain ask body\nfanout: %s\nplain:  %s",
			replayed[4].data, plain1)
	}
	if got := replayed[9].data + "\n"; got != string(fbBody) {
		t.Errorf("feedback-turn done differs from feedback response body\nfanout: %s\nplain:  %s",
			replayed[9].data, fbBody)
	}
	var fb struct {
		Text           string `json:"text"`
		HighlightStart int    `json:"highlight_start"`
	}
	if err := json.Unmarshal([]byte(replayed[5].data), &fb); err != nil ||
		fb.Text != "only count users from this year" || fb.HighlightStart != -1 {
		t.Errorf("feedback event data %q (err %v)", replayed[5].data, err)
	}

	// Live tail: another turn, then the delete.
	plain2 := askPlain(t, ts, sid, "list all users")
	deleteSession(t, ts, sid)
	tail := collectUntilEOF(t, r)
	if len(tail) != 5 {
		t.Fatalf("live tail has %d events, want 5 (sql..done, delete): %+v", len(tail), tail)
	}
	checkContiguous(t, tail, 11, "live tail")
	if tail[3].name != "done" || tail[3].data+"\n" != string(plain2) {
		t.Errorf("live done event mismatch: %+v", tail[3])
	}
	if tail[4].name != "delete" {
		t.Errorf("terminal event is %q, want delete", tail[4].name)
	}
}

// TestEventsResumeViaLastEventID: disconnecting mid-stream and resuming
// with Last-Event-ID yields the exact continuation — no gap, no duplicate.
func TestEventsResumeViaLastEventID(t *testing.T) {
	ts := fanoutServer(t)
	sid := newTestSession(t, ts)
	askPlain(t, ts, sid, "how many users are there")

	resp, r := subscribe(t, ts, sid, 0)
	firstHalf := collectN(t, r, 3) // open, sql, explanation
	resp.Body.Close()              // drop the connection mid-turn

	askPlain(t, ts, sid, "list all users")
	last, _ := strconv.ParseUint(firstHalf[len(firstHalf)-1].id, 10, 64)
	resp2, r2 := subscribe(t, ts, sid, last)
	defer resp2.Body.Close()
	deleteSession(t, ts, sid)
	secondHalf := collectUntilEOF(t, r2)

	all := append(firstHalf, secondHalf...)
	checkContiguous(t, all, 1, "stitched stream")
	want := []string{"open", "sql", "explanation", "result", "done",
		"sql", "explanation", "result", "done", "delete"}
	if len(all) != len(want) {
		t.Fatalf("stitched stream has %d events, want %d: %+v", len(all), len(want), all)
	}
	for i, w := range want {
		if all[i].name != w {
			t.Errorf("stitched event %d is %q, want %q", i, all[i].name, w)
		}
	}
}

// TestEventsRingLapMarksDrop: a resume point the ring no longer retains is
// announced as a dropped gap, never silently skipped.
func TestEventsRingLapMarksDrop(t *testing.T) {
	ts := fanoutServer(t, WithPubSubRing(4))
	sid := newTestSession(t, ts)
	askPlain(t, ts, sid, "how many users are there")
	askPlain(t, ts, sid, "list all users")
	// 9 events published (open + 2×4); the 4-slot ring retains 6..9.

	resp, r := subscribe(t, ts, sid, 0)
	defer resp.Body.Close()
	first := collectN(t, r, 1)[0]
	if first.name != "dropped" || first.id != "" {
		t.Fatalf("first frame = %+v, want an un-sequenced dropped marker", first)
	}
	var gap struct {
		Missed int `json:"missed"`
	}
	if err := json.Unmarshal([]byte(first.data), &gap); err != nil || gap.Missed != 5 {
		t.Fatalf("dropped data %q, want missed=5 (err %v)", first.data, err)
	}
	deleteSession(t, ts, sid)
	rest := collectUntilEOF(t, r)
	checkContiguous(t, rest, 6, "post-gap stream")
	if rest[len(rest)-1].name != "delete" {
		t.Fatalf("stream did not end with delete: %+v", rest)
	}
}

// TestEventsSessionChecks: unknown and deleted sessions answer 404; a bad
// Last-Event-ID answers 400.
func TestEventsSessionChecks(t *testing.T) {
	ts := fanoutServer(t)
	get := func(path, lastID string) int {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		drainBody(resp)
		return resp.StatusCode
	}
	if code := get("/v1/sessions/nope/events", ""); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", code)
	}
	sid := newTestSession(t, ts)
	if code := get("/v1/sessions/"+sid+"/events", "not-a-number"); code != http.StatusBadRequest {
		t.Errorf("bad Last-Event-ID: status %d, want 400", code)
	}
	deleteSession(t, ts, sid)
	if code := get("/v1/sessions/"+sid+"/events", ""); code != http.StatusNotFound {
		t.Errorf("deleted session: status %d, want 404", code)
	}
}

// TestWantsSSECaseInsensitive pins the RFC 9110 case-insensitivity of the
// Accept media type, with and without parameters.
func TestWantsSSECaseInsensitive(t *testing.T) {
	for _, accept := range []string{
		"text/event-stream",
		"Text/Event-Stream",
		"TEXT/EVENT-STREAM",
		"text/event-stream;charset=utf-8",
		"Text/Event-Stream ; charset=utf-8",
		"application/json, TEXT/event-stream;q=0.9",
	} {
		r := httptest.NewRequest(http.MethodPost, "/v1/sessions/s1/ask", nil)
		r.Header.Set("Accept", accept)
		if !wantsSSE(r) {
			t.Errorf("wantsSSE rejected Accept: %q", accept)
		}
	}
	for _, accept := range []string{
		"application/json",
		"text/event-streamx",
		"text/html, */*",
	} {
		r := httptest.NewRequest(http.MethodPost, "/v1/sessions/s1/ask", nil)
		r.Header.Set("Accept", accept)
		if wantsSSE(r) {
			t.Errorf("wantsSSE accepted Accept: %q", accept)
		}
	}
}

// TestMixedCaseAcceptStreams: end to end, a mixed-case Accept value gets a
// real event stream, not the silent JSON fallback it used to get.
func TestMixedCaseAcceptStreams(t *testing.T) {
	ts := testServer(t)
	sid := newTestSession(t, ts)
	body, _ := json.Marshal(map[string]string{"question": "how many users are there"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+sid+"/ask",
		bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "Text/Event-Stream;charset=utf-8")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("mixed-case Accept got Content-Type %q, want text/event-stream", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	checkSequence(t, parseSSE(t, raw), "mixed-case accept")
}

// noFlushWriter is a ResponseWriter that genuinely cannot stream — unlike
// httptest.ResponseRecorder, it implements no Flush.
type noFlushWriter struct {
	header http.Header
	buf    bytes.Buffer
	code   int
}

func newNoFlushWriter() *noFlushWriter {
	return &noFlushWriter{header: make(http.Header), code: http.StatusOK}
}

func (w *noFlushWriter) Header() http.Header         { return w.header }
func (w *noFlushWriter) WriteHeader(code int)        { w.code = code }
func (w *noFlushWriter) Write(b []byte) (int, error) { return w.buf.Write(b) }

// TestStreamAskNoFlusherFallsBackToJSON: an SSE opt-in over a connection
// with no Flusher must get the plain JSON body (counted), not a fake
// stream delivered as one burst.
func TestStreamAskNoFlusherFallsBackToJSON(t *testing.T) {
	f := factory(t)
	m := obs.NewMetrics()
	srv := New(map[string]SessionFactory{"aep": f}, WithMetrics(m))

	create := newNoFlushWriter()
	body, _ := json.Marshal(map[string]string{"corpus": "aep"})
	req := httptest.NewRequest(http.MethodPost, "/v1/sessions", bytes.NewReader(body))
	srv.ServeHTTP(create, req)
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := json.Unmarshal(create.buf.Bytes(), &created); err != nil || created.SessionID == "" {
		t.Fatalf("create: %s (err %v)", create.buf.Bytes(), err)
	}

	ask := newNoFlushWriter()
	body, _ = json.Marshal(map[string]string{"question": "how many users are there"})
	req = httptest.NewRequest(http.MethodPost, "/v1/sessions/"+created.SessionID+"/ask",
		bytes.NewReader(body))
	req.Header.Set("Accept", "text/event-stream")
	srv.ServeHTTP(ask, req)
	if ask.code != http.StatusOK {
		t.Fatalf("ask: status %d body %s", ask.code, ask.buf.Bytes())
	}
	if ct := ask.header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("no-Flusher SSE opt-in got Content-Type %q, want the JSON fallback", ct)
	}
	var ans struct {
		SQL string `json:"sql"`
	}
	if err := json.Unmarshal(ask.buf.Bytes(), &ans); err != nil || ans.SQL == "" {
		t.Fatalf("fallback body %q is not a full answer (err %v)", ask.buf.Bytes(), err)
	}
	snap := m.Registry.Snapshot()
	if got := snap.Counters["fisql_sse_noflush_total"]; got != 1 {
		t.Errorf("fisql_sse_noflush_total = %d, want 1", got)
	}

	// The fanout endpoint refuses outright: a subscription that cannot
	// stream is useless, so it answers 406 rather than pretending.
	events := newNoFlushWriter()
	req = httptest.NewRequest(http.MethodGet, "/v1/sessions/"+created.SessionID+"/events", nil)
	srv.ServeHTTP(events, req)
	if events.code != http.StatusNotAcceptable {
		t.Errorf("/events without Flusher: status %d, want 406", events.code)
	}
	if got := m.Registry.Snapshot().Counters["fisql_sse_noflush_total"]; got != 2 {
		t.Errorf("fisql_sse_noflush_total after /events = %d, want 2", got)
	}
}

// errAfterWriter fails every write after the first n bytes succeed —
// simulating a client that disconnected mid-stream.
type errAfterWriter struct {
	noFlushWriter
	fail bool
}

func (w *errAfterWriter) Write(b []byte) (int, error) {
	if w.fail {
		return 0, errors.New("broken pipe")
	}
	return w.noFlushWriter.Write(b)
}

// TestJSONEventErrorStates pins the two distinct terminal states of an SSE
// stream: a marshal failure (encoding bug, client still connected) emits a
// terminal error event and suppresses everything after it; a write failure
// (client gone) suppresses silently without attempting further writes.
func TestJSONEventErrorStates(t *testing.T) {
	// Marshal failure: the client must see a terminal error event.
	w := newNoFlushWriter()
	st := &sseStream{w: w}
	st.jsonEvent("result", func() {}) // func values cannot marshal
	if !st.errored || st.failed {
		t.Fatalf("marshal failure: errored=%v failed=%v, want errored only", st.errored, st.failed)
	}
	st.event("done", []byte("{}")) // must be suppressed after the terminal error
	events := parseSSE(t, w.buf.Bytes())
	if len(events) != 1 || events[0].name != "error" ||
		!strings.Contains(events[0].data, "encode result event") {
		t.Fatalf("marshal failure produced %+v, want a single terminal error event", events)
	}

	// Write failure: the client is gone; nothing further is written, and no
	// error event is fabricated into the void.
	ew := &errAfterWriter{noFlushWriter: *newNoFlushWriter()}
	st2 := &sseStream{w: ew}
	st2.event("open", []byte("{}"))
	ew.fail = true
	st2.jsonEvent("sql", sqlEvent{SQL: "SELECT 1"})
	if !st2.failed || st2.errored {
		t.Fatalf("write failure: failed=%v errored=%v, want failed only", st2.failed, st2.errored)
	}
	before := ew.buf.Len()
	st2.jsonEvent("done", map[string]string{})
	if ew.buf.Len() != before {
		t.Fatal("events were written after the stream failed")
	}
	events = parseSSE(t, ew.buf.Bytes())
	if len(events) != 1 || events[0].name != "open" {
		t.Fatalf("dead stream carries %+v, want only the open event", events)
	}
}

// TestEventsConcurrentFanout hammers one session with concurrent
// subscribers (attaching at staggered times), a writer driving turns, and
// subscriber churn, under -race: every subscriber's view must be gap-free
// and byte-identical to every other's over the common sequence range.
func TestEventsConcurrentFanout(t *testing.T) {
	ts := fanoutServer(t, WithPubSubRing(4096))
	f := factory(t)
	sid := newTestSession(t, ts)

	const subscribers = 6
	results := make(chan []sseEvent, subscribers)
	for i := 0; i < subscribers; i++ {
		go func(i int) {
			resp, r := subscribe(t, ts, sid, 0)
			defer resp.Body.Close()
			results <- collectUntilEOF(t, r)
		}(i)
		if i == subscribers/2 {
			// Stagger: half the subscribers attach mid-run and replay.
			askPlain(t, ts, sid, f.ds.Examples[0].Question)
		}
	}
	n := 8
	if len(f.ds.Examples) < n {
		n = len(f.ds.Examples)
	}
	for _, e := range f.ds.Examples[1:n] {
		askPlain(t, ts, sid, e.Question)
	}
	sendFeedback(t, ts, sid, "use a left join instead")
	deleteSession(t, ts, sid)

	var reference []sseEvent
	for i := 0; i < subscribers; i++ {
		got := <-results
		checkContiguous(t, got, 1, fmt.Sprintf("subscriber %d", i))
		if got[len(got)-1].name != "delete" {
			t.Fatalf("subscriber %d did not end with delete: %+v", i, got[len(got)-1])
		}
		if reference == nil {
			reference = got
		} else if len(got) != len(reference) {
			t.Fatalf("subscriber %d saw %d events, reference saw %d", i, len(got), len(reference))
		} else {
			for j := range got {
				if got[j] != reference[j] {
					t.Fatalf("subscriber %d event %d differs: %+v vs %+v", i, j, got[j], reference[j])
				}
			}
		}
	}
}

// TestEventsRecoveryReseedsSequences: after a crash and journal replay, a
// subscriber replaying from 0 sees byte-identical events under identical
// sequence numbers — the invariant that makes Last-Event-ID resumption
// safe across restarts and failover promotions.
func TestEventsRecoveryReseedsSequences(t *testing.T) {
	f := factory(t)
	path := filepath.Join(t.TempDir(), "sessions.journal")
	j, err := persist.Open(path, persist.Options{Fsync: persist.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": f},
		WithJournal(j), WithPubSubRing(4096)))
	sid := newTestSession(t, ts)
	askPlain(t, ts, sid, "how many users are there")
	sendFeedback(t, ts, sid, "only active users")
	askPlain(t, ts, sid, "list all users")

	resp, r := subscribe(t, ts, sid, 0)
	before := collectN(t, r, 1+4+5+4)
	resp.Body.Close()
	ts.Close()
	if err := j.Crash(); err != nil {
		t.Fatal(err)
	}

	j2, err := persist.Open(path, persist.Options{Fsync: persist.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ts2 := httptest.NewServer(New(map[string]SessionFactory{"aep": f},
		WithJournal(j2), WithPubSubRing(4096)))
	defer ts2.Close()
	resp2, r2 := subscribe(t, ts2, sid, 0)
	after := collectN(t, r2, len(before))
	resp2.Body.Close()

	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("event %d differs across recovery:\nbefore: %+v\nafter:  %+v",
				i, before[i], after[i])
		}
	}

	// And a mid-sequence resume against the recovered server continues
	// exactly where the pre-crash subscriber left off.
	last, _ := strconv.ParseUint(before[5].id, 10, 64)
	resp3, r3 := subscribe(t, ts2, sid, last)
	tail := collectN(t, r3, len(before)-6)
	resp3.Body.Close()
	for i, ev := range tail {
		if ev != before[6+i] {
			t.Fatalf("resumed event %d differs: %+v vs %+v", i, ev, before[6+i])
		}
	}
}

// TestEventsHandoffEndsWithoutDelete: a session released to another node
// (cluster rebalance) ends its local stream with no delete event — the
// session moved, it did not end.
func TestEventsHandoffEndsWithoutDelete(t *testing.T) {
	f := factory(t)
	srv := New(map[string]SessionFactory{"aep": f})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	sid := newTestSession(t, ts)
	askPlain(t, ts, sid, "how many users are there")

	resp, r := subscribe(t, ts, sid, 0)
	defer resp.Body.Close()
	done := make(chan []sseEvent, 1)
	go func() { done <- collectUntilEOF(t, r) }()
	if !srv.ReleaseSession(sid, "node-b") {
		t.Fatal("ReleaseSession returned false")
	}
	select {
	case events := <-done:
		for _, ev := range events {
			if ev.name == "delete" {
				t.Fatalf("handoff published a delete event: %+v", events)
			}
		}
		if len(events) != 5 {
			t.Fatalf("handoff stream has %d events, want the 5 published ones", len(events))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on handoff")
	}
}

// TestEventsSlowSubscriberDoesNotBlockAsks: a subscriber that never reads
// must not slow the ask path — the hub publish is non-blocking and the
// stalled reader's connection buffer is not the server's problem.
func TestEventsSlowSubscriberDoesNotBlockAsks(t *testing.T) {
	ts := fanoutServer(t, WithPubSubRing(8))
	f := factory(t)
	sid := newTestSession(t, ts)

	// Open a subscription and never read from it.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sessions/"+sid+"/events", nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	n := 6
	if len(f.ds.Examples) < n {
		n = len(f.ds.Examples)
	}
	start := time.Now()
	for _, e := range f.ds.Examples[:n] {
		askPlain(t, ts, sid, e.Question)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("asks took %v with a stalled subscriber attached", elapsed)
	}
	deleteSession(t, ts, sid)
}
