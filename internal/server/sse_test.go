package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/llm"
	"fisql/internal/persist"
)

type sseEvent struct {
	id   string // empty when the frame carries no id line
	name string
	data string
}

// parseSSE splits a complete event-stream body into events, requiring the
// exact framing the server promises: an optional id line, one event line,
// one data line.
func parseSSE(t *testing.T, body []byte) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, frame := range strings.Split(strings.TrimSuffix(string(body), "\n\n"), "\n\n") {
		lines := strings.Split(frame, "\n")
		var ev sseEvent
		if len(lines) == 3 && strings.HasPrefix(lines[0], "id: ") {
			ev.id = strings.TrimPrefix(lines[0], "id: ")
			lines = lines[1:]
		}
		if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: ") ||
			!strings.HasPrefix(lines[1], "data: ") {
			t.Fatalf("malformed SSE frame %q", frame)
		}
		ev.name = strings.TrimPrefix(lines[0], "event: ")
		ev.data = strings.TrimPrefix(lines[1], "data: ")
		events = append(events, ev)
	}
	return events
}

// askSSE posts a question with the event-stream accept header and returns
// the parsed events.
func askSSE(t *testing.T, ts *httptest.Server, sid, question string) []sseEvent {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"question": question})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+sid+"/ask",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("SSE ask: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE ask: Content-Type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseSSE(t, raw)
}

// askPlain posts a question without streaming and returns the raw body.
func askPlain(t *testing.T, ts *httptest.Server, sid, question string) []byte {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"question": question})
	resp, err := http.Post(ts.URL+"/v1/sessions/"+sid+"/ask", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain ask: status %d body %s", resp.StatusCode, raw)
	}
	return raw
}

var wantSequence = []string{"open", "sql", "explanation", "result", "done"}

func checkSequence(t *testing.T, events []sseEvent, context string) {
	t.Helper()
	if len(events) != len(wantSequence) {
		t.Fatalf("%s: got %d events, want %v", context, len(events), wantSequence)
	}
	for i, want := range wantSequence {
		if events[i].name != want {
			t.Fatalf("%s: event %d is %q, want %q", context, i, events[i].name, want)
		}
	}
}

// TestSSEDifferentialSweep asks every corpus example both streamed and
// plain — in both orders, so the live pipeline AND the memo-hit
// (synthesized) streaming paths are exercised — and requires the done
// payload to be byte-identical to the non-streamed body on all of them.
func TestSSEDifferentialSweep(t *testing.T) {
	f := factory(t)
	mf := &memoFactory{testFactory: f, memo: assistant.NewAnswerMemo(0)}
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": mf}))
	defer ts.Close()

	sseSID := newTestSession(t, ts)
	plainSID := newTestSession(t, ts)
	for i, e := range f.ds.Examples {
		var events []sseEvent
		var plain []byte
		if i%2 == 0 {
			// Streamed first: SSE runs the live pipeline, the plain ask is
			// then a memo hit served from the cached wire bytes.
			events = askSSE(t, ts, sseSID, e.Question)
			plain = askPlain(t, ts, plainSID, e.Question)
		} else {
			// Plain first: the SSE ask is a memo hit and every stage event
			// is synthesized from the finished Answer.
			plain = askPlain(t, ts, plainSID, e.Question)
			events = askSSE(t, ts, sseSID, e.Question)
		}
		checkSequence(t, events, e.ID)
		done := events[len(events)-1]
		if got := done.data + "\n"; got != string(plain) {
			t.Fatalf("%s: done payload differs from the plain body\nsse:   %s\nplain: %s",
				e.ID, done.data, plain)
		}
		// Stage payloads must agree with the final answer, not just exist.
		var ans struct {
			SQL   string   `json:"sql"`
			Error string   `json:"error"`
			Rows  [][]any  `json:"rows"`
			Expl  []string `json:"explanation"`
		}
		if err := json.Unmarshal(plain, &ans); err != nil {
			t.Fatalf("%s: plain body: %v", e.ID, err)
		}
		var sqlEv struct {
			SQL string `json:"sql"`
		}
		if err := json.Unmarshal([]byte(events[1].data), &sqlEv); err != nil || sqlEv.SQL != ans.SQL {
			t.Fatalf("%s: sql event %q disagrees with answer sql %q (err %v)",
				e.ID, events[1].data, ans.SQL, err)
		}
	}
}

// TestSSEFaultInjectionLeavesSessionAndJournalClean drives an SSE ask into
// an injected model failure and verifies the full blast radius contract:
// the stream stays a well-formed event stream ending in an error event,
// the session remains usable, and journal recovery reproduces exactly the
// acknowledged turns.
func TestSSEFaultInjectionLeavesSessionAndJournalClean(t *testing.T) {
	f := factory(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "sessions.journal")
	journal, err := persist.Open(path, persist.Options{Fsync: persist.FsyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	// Every second model call fails: ask #1 succeeds, ask #2 (streamed)
	// fails mid-pipeline, ask #3 succeeds.
	flaky := &llm.Flaky{Inner: f.sim, FailEvery: 2}
	srv := New(map[string]SessionFactory{"aep": &clientFactory{testFactory: f, client: flaky}},
		WithJournal(journal))
	ts := httptest.NewServer(srv)

	sid := newTestSession(t, ts)
	askPlain(t, ts, sid, "how many users are there")

	events := askSSE(t, ts, sid, "list all users")
	if len(events) != 2 || events[0].name != "open" || events[1].name != "error" {
		t.Fatalf("failed streamed ask produced %v, want [open error]", events)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(events[1].data), &errBody); err != nil || errBody.Error == "" {
		t.Fatalf("error event data %q is not the standard error shape (err %v)", events[1].data, err)
	}

	// The failure must not have wedged or corrupted the session.
	askPlain(t, ts, sid, "how many users are there in total")
	histBefore, err := sseHistory(ts, sid)
	if err != nil {
		t.Fatal(err)
	}
	userTurns := strings.Count(string(histBefore), `"role":"user"`)
	if userTurns != 2 {
		t.Fatalf("history holds %d user turns, want exactly the 2 acknowledged asks:\n%s",
			userTurns, histBefore)
	}

	// Crash and recover. Replay runs against a clean client (the injected
	// fault models a transient backend episode, not the corpus), and must
	// rebuild the acknowledged turns byte-for-byte.
	ts.Close()
	if err := journal.Crash(); err != nil {
		t.Fatal(err)
	}
	journal2, err := persist.Open(path, persist.Options{Fsync: persist.FsyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	srv2 := New(map[string]SessionFactory{"aep": f}, WithJournal(journal2))
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	histAfter, err := sseHistory(ts2, sid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(histBefore, histAfter) {
		t.Fatalf("history differs after recovery\nbefore: %s\nafter:  %s", histBefore, histAfter)
	}
}

func sseHistory(ts *httptest.Server, sid string) ([]byte, error) {
	resp, err := http.Get(ts.URL + "/v1/sessions/" + sid + "/history")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// TestSSEOptInOnly: without the accept header the endpoint answers the
// plain JSON body, whatever other Accept values the client sends.
func TestSSEOptInOnly(t *testing.T) {
	ts := testServer(t)
	sid := newTestSession(t, ts)
	body, _ := json.Marshal(map[string]string{"question": "how many users are there"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/"+sid+"/ask",
		bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/json, text/html")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer drainBody(resp)
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q without the SSE opt-in", ct)
	}
}

// TestMuxErrorsAreJSON pins the unified error contract on the only paths
// that used to bypass it: ServeMux's own 404 and 405 responses.
func TestMuxErrorsAreJSON(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Get(ts.URL + "/v1/definitely-not-a-route")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("404 Content-Type %q", ct)
	}
	var body map[string]string
	if err := json.Unmarshal(raw, &body); err != nil || body["error"] == "" {
		t.Errorf("404 body %q is not the standard error shape (err %v)", raw, err)
	}

	// Wrong method on a real route: 405, JSON, Allow preserved.
	resp, err = http.Get(ts.URL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("405 Content-Type %q", ct)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Errorf("405 Allow %q lost the method list", allow)
	}
	if err := json.Unmarshal(raw, &body); err != nil || body["error"] == "" {
		t.Errorf("405 body %q is not the standard error shape (err %v)", raw, err)
	}
}

// TestSSEConcurrentStreamsRace exercises streamed and plain asks of the
// same questions concurrently under -race: wire-cache sharing between the
// two forms must be safe, and every stream complete.
func TestSSEConcurrentStreamsRace(t *testing.T) {
	f := factory(t)
	mf := &memoFactory{testFactory: f, memo: assistant.NewAnswerMemo(0)}
	ts := httptest.NewServer(New(map[string]SessionFactory{"aep": mf}))
	defer ts.Close()
	questions := make([]string, 0, 8)
	for _, e := range f.ds.Examples {
		questions = append(questions, e.Question)
		if len(questions) == 8 {
			break
		}
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			sid := newTestSession(t, ts)
			for i, q := range questions {
				if (w+i)%2 == 0 {
					events := askSSE(t, ts, sid, q)
					checkSequence(t, events, q)
				} else {
					askPlain(t, ts, sid, q)
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
}
