// Admission control: bounded queues and load shedding for the pipeline
// endpoints.
//
// Past saturation, an unprotected server converges on the worst failure
// mode: every request is admitted, queues grow without bound inside the
// runtime (goroutines parked on session locks and the LLM), and p99 latency
// collapses for everyone while throughput stays pinned. Admission control
// trades a little refused work for bounded latency on the work that is
// accepted: each expensive endpoint class (ask, feedback) gets a
// concurrency limit plus a small bounded queue, and a request that finds
// the queue full — or waits in it longer than the queue timeout — is shed
// with 429 and a Retry-After hint instead of joining the convoy.
//
// History, create and delete stay unlimited: they are cheap, and shedding
// them would only push clients into retry loops without protecting
// anything.
package server

import (
	"context"
	"sync/atomic"
	"time"

	"fisql/internal/obs"
)

// DefaultQueueTimeout bounds how long an admitted-but-queued request waits
// for a slot before being shed. Sized so a briefly-full server drains its
// queue rather than shedding, while a saturated one refuses quickly enough
// that queue wait never dominates client latency.
const DefaultQueueTimeout = 100 * time.Millisecond

// DefaultRetryAfter is the Retry-After hint sent with load-shedding 429s.
const DefaultRetryAfter = time.Second

// AdmissionConfig bounds the concurrency of the pipeline endpoints. The
// zero value disables admission control entirely (every request admitted).
type AdmissionConfig struct {
	// AskConcurrency caps concurrently running asks; <= 0 leaves asks
	// unlimited.
	AskConcurrency int
	// FeedbackConcurrency caps concurrently running feedback requests;
	// <= 0 leaves them unlimited. A separate limit so ask saturation cannot
	// starve in-progress correction loops (and vice versa).
	FeedbackConcurrency int
	// Queue is the per-class bounded admission queue: how many requests may
	// wait for a slot beyond the concurrency limit. <= 0 means a queue as
	// deep as the class's concurrency limit.
	Queue int
	// QueueTimeout sheds a queued request that has waited this long without
	// getting a slot. <= 0 means DefaultQueueTimeout.
	QueueTimeout time.Duration
	// RetryAfter is the hint sent on shed responses (rounded up to whole
	// seconds, minimum 1, per the HTTP Retry-After grammar). <= 0 means
	// DefaultRetryAfter.
	RetryAfter time.Duration
}

// WithAdmission enables admission control with the given limits.
func WithAdmission(cfg AdmissionConfig) Option {
	return func(s *Server) { s.admission = cfg }
}

// limiter is one endpoint class's concurrency limit plus bounded queue. A
// nil limiter admits everything.
type limiter struct {
	sem          chan struct{} // capacity = concurrency limit
	maxQueue     int64
	queueTimeout time.Duration

	waiting  atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
	// queueWait, when metrics are on, observes the time admitted requests
	// spent queued (fast-path admissions observe zero only implicitly:
	// they never enter the queue and are not recorded).
	queueWait *obs.Histogram
}

// newLimiter builds a limiter admitting up to conc concurrent requests with
// a bounded queue of queue waiters. conc <= 0 returns nil (unlimited).
func newLimiter(conc, queue int, timeout time.Duration) *limiter {
	if conc <= 0 {
		return nil
	}
	if queue <= 0 {
		queue = conc
	}
	if timeout <= 0 {
		timeout = DefaultQueueTimeout
	}
	return &limiter{
		sem:          make(chan struct{}, conc),
		maxQueue:     int64(queue),
		queueTimeout: timeout,
	}
}

// acquire claims a slot. It returns (true, false) when admitted — the
// caller must release() when done — (false, true) when the request should
// be shed with 429, and (false, false) when the caller's context died while
// queued (the client is gone; nothing useful can be written).
func (l *limiter) acquire(ctx context.Context) (admitted, shed bool) {
	if l == nil {
		return true, false
	}
	select {
	case l.sem <- struct{}{}:
		l.admitted.Add(1)
		return true, false
	default:
	}
	// Slow path: try the bounded queue. The counter both bounds the queue
	// and doubles as the depth gauge.
	if l.waiting.Add(1) > l.maxQueue {
		l.waiting.Add(-1)
		l.shed.Add(1)
		return false, true
	}
	defer l.waiting.Add(-1)
	t0 := time.Now()
	timer := time.NewTimer(l.queueTimeout)
	defer timer.Stop()
	select {
	case l.sem <- struct{}{}:
		l.queueWait.Observe(time.Since(t0))
		l.admitted.Add(1)
		return true, false
	case <-timer.C:
		l.shed.Add(1)
		return false, true
	case <-ctx.Done():
		return false, false
	}
}

// release frees the slot claimed by a successful acquire.
func (l *limiter) release() {
	if l != nil {
		<-l.sem
	}
}

// running reports slots currently claimed.
func (l *limiter) running() int64 {
	if l == nil {
		return 0
	}
	return int64(len(l.sem))
}

// observe registers the limiter's counters and queue-wait histogram under
// the class prefix (e.g. "fisql_admission_ask").
func (l *limiter) observe(r *obs.Registry, prefix string) {
	if l == nil || r == nil {
		return
	}
	r.CounterFunc(prefix+"_admitted_total", func() int64 { return l.admitted.Load() })
	r.CounterFunc(prefix+"_shed_total", func() int64 { return l.shed.Load() })
	r.GaugeFunc(prefix+"_running", l.running)
	r.GaugeFunc(prefix+"_queued", func() int64 {
		// The bound check transiently overshoots; clamp for display.
		if n := l.waiting.Load(); n <= l.maxQueue {
			return n
		}
		return l.maxQueue
	})
	l.queueWait = r.Histogram(prefix+"_queue_seconds", nil)
}
