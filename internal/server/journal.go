package server

import (
	"context"
	"strconv"
	"strings"
	"time"

	"fisql/internal/feedback"
	"fisql/internal/persist"
)

// RecoveryInfo summarizes a journal replay performed by New.
type RecoveryInfo struct {
	// Records is the number of journal records replayed (including ones
	// skipped because their corpus or database no longer exists).
	Records int
	// Sessions is the number of sessions live after recovery.
	Sessions int
	// Skipped counts records that could not be applied: unknown corpus or
	// database, or a replayed turn that errored (possible only when the
	// model is not deterministic).
	Skipped int
	// TruncatedBytes is the torn/corrupt tail the journal dropped at Open.
	TruncatedBytes int64
	// Duration is the wall time of the replay.
	Duration time.Duration
	// CheckpointErr is the error from the post-recovery checkpoint (nil on
	// success). A failed checkpoint is not fatal — the journal still holds
	// every live session — but the next restart will replay records the
	// store already evicted, so the operator should know.
	CheckpointErr error
}

// Recovery reports the journal replay New performed (zero when no journal
// is configured).
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// recoverJournal rebuilds the pre-crash sessions by replaying the
// journal's surviving records through the normal Ask/Feedback pipeline.
// Replay is deterministic — the simulated model, plan cache and answer
// memo reproduce each turn exactly — so a recovered session's history is
// byte-identical to the one the crash interrupted. Unknown corpora or
// databases (a redeploy dropped them) skip the session instead of failing
// recovery. Runs before the server serves any request.
func (s *Server) recoverJournal() {
	t0 := time.Now()
	s.replaying.Store(true)
	defer s.replaying.Store(false)

	ctx := context.Background()
	recs := s.journal.Records()
	info := RecoveryInfo{Records: len(recs), TruncatedBytes: s.journal.Stats().TruncatedBytes}
	// Advance the id counter past every id the journal ever issued —
	// including deleted sessions, whose records are dropped from replay. A
	// client still holding a dead id must keep getting 404, not a fresh
	// session that happened to reuse it. The persisted watermark covers ids
	// whose create records compaction already dropped (a delete followed by
	// a checkpoint erases every trace of the session from SessionsSeen);
	// SessionsSeen covers ids that appear only in torn or partial groups.
	maxID := s.journal.Watermark()
	for _, id := range s.journal.SessionsSeen() {
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	for _, rec := range recs {
		switch rec.Type {
		case persist.TCreate:
			sys, ok := s.systems[rec.Corpus]
			if !ok || !hasDatabase(sys, rec.DB) {
				info.Skipped++
				continue
			}
			s.store.put(rec.Session, &session{sess: sys.NewSession(rec.DB), db: rec.DB})
		case persist.TAsk:
			sess, ok := s.store.get(rec.Session)
			if !ok {
				info.Skipped++
				continue
			}
			if _, err := sess.sess.Ask(ctx, rec.Text); err != nil {
				info.Skipped++
			}
		case persist.TFeedback:
			sess, ok := s.store.get(rec.Session)
			if !ok {
				info.Skipped++
				continue
			}
			var hl *feedback.Highlight
			if rec.HighlightStart >= 0 {
				hl = &feedback.Highlight{
					Start: rec.HighlightStart,
					End:   rec.HighlightStart + len(rec.Highlight),
					Text:  rec.Highlight,
				}
			}
			if _, err := sess.sess.Feedback(ctx, rec.Text, hl); err != nil {
				info.Skipped++
			}
		default:
			// Delete records never reach Records() (the journal drops the
			// whole session), but tolerate them for forward compatibility.
			info.Skipped++
		}
	}
	// Fresh ids must not collide with recovered ones.
	if cur := s.nextID.Load(); maxID > cur {
		s.nextID.Store(maxID)
	}
	// Reconcile: sessions the replay itself evicted (store cap below the
	// journal's session count) are dead; checkpoint the journal down to
	// exactly the surviving state so the next recovery replays no ghosts.
	live := s.store.ids()
	s.journal.Retain(func(id string) bool { return live[id] })
	info.CheckpointErr = s.journal.Checkpoint()
	info.Sessions = s.store.len()
	info.Duration = time.Since(t0)
	s.recovery = info
}

func hasDatabase(sys SessionFactory, db string) bool {
	for _, d := range sys.Databases() {
		if d == db {
			return true
		}
	}
	return false
}
