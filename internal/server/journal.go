package server

import (
	"context"
	"strconv"
	"strings"
	"time"

	"fisql/internal/feedback"
	"fisql/internal/persist"
)

// RecoveryInfo summarizes a journal replay performed by New.
type RecoveryInfo struct {
	// Records is the number of journal records replayed (including ones
	// skipped because their corpus or database no longer exists).
	Records int
	// Sessions is the number of sessions live after recovery.
	Sessions int
	// Skipped counts records that could not be applied: unknown corpus or
	// database, or a replayed turn that errored (possible only when the
	// model is not deterministic).
	Skipped int
	// TruncatedBytes is the torn/corrupt tail the journal dropped at Open.
	TruncatedBytes int64
	// Duration is the wall time of the replay.
	Duration time.Duration
	// CheckpointErr is the error from the post-recovery checkpoint (nil on
	// success). A failed checkpoint is not fatal — the journal still holds
	// every live session — but the next restart will replay records the
	// store already evicted, so the operator should know.
	CheckpointErr error
}

// Recovery reports the journal replay New performed (zero when no journal
// is configured).
func (s *Server) Recovery() RecoveryInfo { return s.recovery }

// recoverJournal rebuilds the pre-crash sessions by replaying the
// journal's surviving records through the normal Ask/Feedback pipeline.
// Replay is deterministic — the simulated model, plan cache and answer
// memo reproduce each turn exactly — so a recovered session's history is
// byte-identical to the one the crash interrupted. Unknown corpora or
// databases (a redeploy dropped them) skip the session instead of failing
// recovery. Runs before the server serves any request.
func (s *Server) recoverJournal() {
	t0 := time.Now()
	s.replaying.Store(true)
	defer s.replaying.Store(false)

	ctx := context.Background()
	recs := s.journal.Records()
	info := RecoveryInfo{Records: len(recs), TruncatedBytes: s.journal.Stats().TruncatedBytes}
	// Advance the id counter past every id the journal ever issued —
	// including deleted sessions, whose records are dropped from replay. A
	// client still holding a dead id must keep getting 404, not a fresh
	// session that happened to reuse it. The persisted watermark covers ids
	// whose create records compaction already dropped (a delete followed by
	// a checkpoint erases every trace of the session from SessionsSeen);
	// SessionsSeen covers ids that appear only in torn or partial groups.
	maxID := s.journal.Watermark()
	for _, id := range s.journal.SessionsSeen() {
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	groups, dropped := groupRecords(recs)
	info.Skipped += dropped
	for _, group := range groups {
		sess, skipped, ok := s.replayGroup(ctx, group)
		info.Skipped += skipped
		if !ok {
			continue
		}
		// Register in creation order: with a store cap below the journal's
		// session count, the earliest-created sessions are the LRU victims,
		// matching what the pre-crash eviction order journaled.
		s.store.put(group[0].Session, sess)
	}
	// Fresh ids must not collide with recovered ones.
	if cur := s.nextID.Load(); maxID > cur {
		s.nextID.Store(maxID)
	}
	// Reconcile: sessions the replay itself evicted (store cap below the
	// journal's session count) are dead; checkpoint the journal down to
	// exactly the surviving state so the next recovery replays no ghosts.
	live := s.store.ids()
	s.journal.Retain(func(id string) bool { return live[id] })
	info.CheckpointErr = s.journal.Checkpoint()
	info.Sessions = s.store.len()
	info.Duration = time.Since(t0)
	s.recovery = info
}

// groupRecords splits a record stream into per-session groups, each
// beginning at its TCreate. Journal record streams (Records and
// SessionRecords in internal/persist, and the replicated follower stream)
// keep each session's records contiguous in creation order, so a group is
// a maximal run starting at a create. dropped counts records preceding the
// first create — possible only in a torn or partial replica stream.
func groupRecords(recs []persist.Record) (groups [][]persist.Record, dropped int) {
	start := -1
	for i, rec := range recs {
		if rec.Type == persist.TCreate {
			if start >= 0 {
				groups = append(groups, recs[start:i])
			} else {
				dropped = i
			}
			start = i
		}
	}
	if start >= 0 {
		groups = append(groups, recs[start:])
	} else {
		dropped = len(recs)
	}
	return groups, dropped
}

// replayGroup rebuilds one session from its journal records (group[0] must
// be the TCreate) by replaying each turn through the normal Ask/Feedback
// pipeline — the shared deterministic-replay path of startup recovery and
// cluster adoption. The returned session is not yet registered in the
// store. ok is false when the corpus or database no longer exists; skipped
// counts turns that errored or records replay does not apply (delete and
// handoff markers, which a live group never contains).
//
// Replay publishes each rebuilt turn to the session's fanout topic exactly
// as the live handlers did: the hub only ever sees acknowledged (journaled)
// turns, and replay is deterministic, so a rebuilt topic re-seeds the same
// sequence numbers with byte-identical payloads — a subscriber resuming
// via Last-Event-ID against a restarted or promoted owner continues the
// sequence it was reading, with no regress and no duplicate turn.
func (s *Server) replayGroup(ctx context.Context, group []persist.Record) (sess *session, skipped int, ok bool) {
	create := group[0]
	sys, found := s.systems[create.Corpus]
	if !found || !hasDatabase(sys, create.DB) {
		return nil, len(group), false
	}
	sess = &session{sess: sys.NewSession(create.DB), db: create.DB}
	s.hub.Open(create.Session)
	s.hub.Publish(create.Session, openPayload(create.Session, create.Corpus, create.DB))
	for _, rec := range group[1:] {
		switch rec.Type {
		case persist.TAsk:
			ans, err := sess.sess.Ask(ctx, rec.Text)
			if err != nil {
				skipped++
				continue
			}
			if body, rerr := s.renderAnswer(nil, ans); rerr == nil {
				s.publishAnswer(create.Session, nil, ans, body)
			}
		case persist.TFeedback:
			var hl *feedback.Highlight
			if rec.HighlightStart >= 0 {
				hl = &feedback.Highlight{
					Start: rec.HighlightStart,
					End:   rec.HighlightStart + len(rec.Highlight),
					Text:  rec.Highlight,
				}
			}
			ans, err := sess.sess.Feedback(ctx, rec.Text, hl)
			if err != nil {
				skipped++
				continue
			}
			if body, rerr := s.renderAnswer(nil, ans); rerr == nil {
				fb := feedbackPayload(rec.Text, rec.Highlight, rec.HighlightStart)
				s.publishAnswer(create.Session, &fb, ans, body)
			}
		default:
			skipped++
		}
	}
	return sess, skipped, true
}

// AdoptResult reports what AdoptSessions did.
type AdoptResult struct {
	// Adopted lists the session ids now live on this node.
	Adopted []string
	// Skipped counts records that could not be applied (unknown corpus or
	// database, errored replay turns, or a group abandoned because this
	// node's own journal failed while adopting it).
	Skipped int
	// MaxID is the highest numeric session id among the adopted records (0
	// when none parse); the caller folds it into its id watermark so ids
	// are never reused across a promotion.
	MaxID int64
}

// AdoptSessions takes ownership of sessions replicated to this node: recs
// is the follower-journal record stream of the sessions to adopt, per-
// session contiguous with each group beginning at its TCreate. Each
// session is rebuilt by deterministic replay, journaled into this node's
// own journal (and replicated onward to its new follower), then registered
// in the store — the same recovery path a restart uses, so the adopted
// history is byte-identical to what the dead owner had acknowledged.
// Sessions already present are skipped, making a retried promotion
// idempotent.
func (s *Server) AdoptSessions(recs []persist.Record) AdoptResult {
	ctx := context.Background()
	var res AdoptResult
	groups, dropped := groupRecords(recs)
	res.Skipped += dropped
	for _, group := range groups {
		id := group[0].Session
		if s.store.has(id) {
			continue
		}
		sess, skipped, ok := s.replayGroup(ctx, group)
		res.Skipped += skipped
		if !ok {
			continue
		}
		adopted := true
		for _, rec := range group {
			if err := s.journalAppend(rec); err != nil {
				if isReplicationError(err) {
					// Locally durable; the replicator resyncs the follower in
					// full on the session's next turn (it tracks per-session
					// follower state and resends everything after a failure).
					continue
				}
				// This node's own journal broke: adopting anyway would hold
				// a session the journal never captured. Un-journal the
				// partial group (best effort) and leave the session behind.
				_ = s.journal.Append(persist.Record{Type: persist.TDelete, Session: id})
				adopted = false
				res.Skipped += len(group)
				break
			}
		}
		if !adopted {
			// The replay already opened and seeded the fanout topic; tear it
			// down with the abandoned session.
			s.hub.CloseTopic(id)
			continue
		}
		s.store.put(id, sess)
		res.Adopted = append(res.Adopted, id)
		if n, err := strconv.ParseInt(strings.TrimPrefix(id, "s"), 10, 64); err == nil && n > res.MaxID {
			res.MaxID = n
		}
	}
	// Fresh ids issued here must never collide with adopted ones.
	for res.MaxID > 0 {
		cur := s.nextID.Load()
		if cur >= res.MaxID || s.nextID.CompareAndSwap(cur, res.MaxID) {
			break
		}
	}
	return res
}

func hasDatabase(sys SessionFactory, db string) bool {
	for _, d := range sys.Databases() {
		if d == db {
			return true
		}
	}
	return false
}
