// Package schema models database schemas together with the natural-language
// vocabulary that maps user phrases onto schema elements.
//
// The NL annotations are what make the benchmarks interesting: the simulated
// NL2SQL model links question phrases to tables/columns through a Lexicon
// built from these annotations, and the closed-domain (Experience Platform)
// schemas deliberately contain jargon whose naive lexicon entry is wrong —
// the paper's central failure mode.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Column is a table column plus its natural-language surface forms.
type Column struct {
	Name string
	Type string // SQL type name: INT, REAL, TEXT, BOOL, DATE
	// NL lists phrases users employ for this column ("name", "song name").
	// The first entry is the canonical phrase used when generating
	// questions.
	NL []string
}

// ForeignKey is a single-column reference to another table.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Table is a relation plus its natural-language surface forms.
type Table struct {
	Name string
	// NL lists phrases users employ for this table; the first entry is
	// canonical ("singers", "audiences").
	NL          []string
	Columns     []Column
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return &t.Columns[i]
		}
	}
	return nil
}

// Phrase returns the canonical NL phrase for the table.
func (t *Table) Phrase() string {
	if len(t.NL) > 0 {
		return t.NL[0]
	}
	return t.Name
}

// Schema is one database's layout.
type Schema struct {
	Name   string
	Tables []Table
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	for i := range s.Tables {
		if strings.EqualFold(s.Tables[i].Name, name) {
			return &s.Tables[i]
		}
	}
	return nil
}

// DDL renders the schema as a CREATE TABLE script loadable by the engine.
func (s *Schema) DDL() string {
	var sb strings.Builder
	for _, t := range s.Tables {
		sb.WriteString("CREATE TABLE ")
		sb.WriteString(t.Name)
		sb.WriteString(" (")
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			sb.WriteByte(' ')
			sb.WriteString(c.Type)
		}
		if len(t.PrimaryKey) > 0 {
			sb.WriteString(", PRIMARY KEY (")
			sb.WriteString(strings.Join(t.PrimaryKey, ", "))
			sb.WriteString(")")
		}
		for _, fk := range t.ForeignKeys {
			fmt.Fprintf(&sb, ", FOREIGN KEY (%s) REFERENCES %s(%s)", fk.Column, fk.RefTable, fk.RefColumn)
		}
		sb.WriteString(");\n")
	}
	return sb.String()
}

// PromptText serializes the schema the way the NL2SQL prompt presents it
// (Figure 1 of the paper: full schema definitions).
func (s *Schema) PromptText() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Database: %s\n", s.Name)
	for _, t := range s.Tables {
		fmt.Fprintf(&sb, "Table %s(", t.Name)
		for i, c := range t.Columns {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s %s", c.Name, c.Type)
		}
		sb.WriteString(")")
		for _, fk := range t.ForeignKeys {
			fmt.Fprintf(&sb, " [%s -> %s.%s]", fk.Column, fk.RefTable, fk.RefColumn)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// ----------------------------------------------------------------------------
// Lexicon

// Ref locates a schema element a phrase can resolve to.
type Ref struct {
	Table  string
	Column string // empty for table references
}

// String renders the reference.
func (r Ref) String() string {
	if r.Column == "" {
		return r.Table
	}
	return r.Table + "." + r.Column
}

// Lexicon maps normalized phrases to candidate schema elements. When a
// phrase is ambiguous, candidates are kept in priority order: the first is
// what a naive linker picks. Closed-domain traps are built by registering
// the *wrong* resolution first.
//
// Registration (Add, AddFirst) must happen-before any concurrent use; once
// built, a Lexicon is read-only and safe for concurrent resolution.
type Lexicon struct {
	entries map[string][]Ref
}

// NewLexicon builds a lexicon from the schema's NL annotations. Each table
// and column phrase maps to its element; phrases registered by multiple
// elements accumulate candidates in schema order. The humanized identifier
// itself (underscores as spaces) is always registered too, so feedback can
// name a column that lacks a curated phrase.
func NewLexicon(s *Schema) *Lexicon {
	lx := &Lexicon{entries: make(map[string][]Ref)}
	for _, t := range s.Tables {
		for _, p := range t.NL {
			lx.Add(p, Ref{Table: t.Name})
		}
		lx.Add(strings.ReplaceAll(t.Name, "_", " "), Ref{Table: t.Name})
		for _, c := range t.Columns {
			for _, p := range c.NL {
				lx.Add(p, Ref{Table: t.Name, Column: c.Name})
			}
			lx.Add(strings.ReplaceAll(c.Name, "_", " "), Ref{Table: t.Name, Column: c.Name})
		}
	}
	return lx
}

// Normalize lower-cases and collapses whitespace in a phrase.
func Normalize(phrase string) string {
	return strings.Join(strings.Fields(strings.ToLower(phrase)), " ")
}

// Add registers one candidate for a phrase (appended after existing ones).
func (lx *Lexicon) Add(phrase string, ref Ref) {
	key := Normalize(phrase)
	lx.entries[key] = append(lx.entries[key], ref)
}

// AddFirst registers a candidate ahead of existing ones, making it the naive
// resolution. Closed-domain schemas use this to plant jargon traps.
func (lx *Lexicon) AddFirst(phrase string, ref Ref) {
	key := Normalize(phrase)
	lx.entries[key] = append([]Ref{ref}, lx.entries[key]...)
}

// Resolve returns the naive (first) resolution for a phrase.
func (lx *Lexicon) Resolve(phrase string) (Ref, bool) {
	refs := lx.entries[Normalize(phrase)]
	if len(refs) == 0 {
		return Ref{}, false
	}
	return refs[0], true
}

// Candidates returns all resolutions for a phrase, naive first.
func (lx *Lexicon) Candidates(phrase string) []Ref {
	return lx.entries[Normalize(phrase)]
}

// Ambiguous reports whether a phrase has multiple distinct resolutions.
func (lx *Lexicon) Ambiguous(phrase string) bool {
	return len(lx.entries[Normalize(phrase)]) > 1
}

// Phrases returns all registered phrases, sorted (for deterministic tests
// and debugging).
func (lx *Lexicon) Phrases() []string {
	out := make([]string, 0, len(lx.entries))
	for p := range lx.entries {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ResolveColumn finds the best column match for a free-text phrase: exact
// phrase lookup first, then token-overlap against all column phrases. Used
// by the feedback repair engine to ground "do not give descriptions" onto a
// projection column.
func (lx *Lexicon) ResolveColumn(phrase string) (Ref, bool) {
	if ref, ok := lx.Resolve(phrase); ok && ref.Column != "" {
		return ref, true
	}
	want := tokenSet(phrase)
	bestScore := 0.0
	var best Ref
	for p, refs := range lx.entries {
		ref := refs[0]
		if ref.Column == "" {
			continue
		}
		score := overlap(want, tokenSet(p))
		if score > bestScore {
			bestScore = score
			best = ref
		}
	}
	if bestScore == 0 {
		return Ref{}, false
	}
	return best, true
}

// ResolveTable finds the best table match for a free-text phrase: exact
// phrase lookup first (preferring table entries), then token-overlap
// against all table phrases.
func (lx *Lexicon) ResolveTable(phrase string) (Ref, bool) {
	for _, ref := range lx.Candidates(phrase) {
		if ref.Column == "" {
			return ref, true
		}
	}
	want := tokenSet(phrase)
	bestScore := 0.0
	var best Ref
	for p, refs := range lx.entries {
		for _, ref := range refs {
			if ref.Column != "" {
				continue
			}
			score := overlap(want, tokenSet(p))
			if score > bestScore {
				bestScore = score
				best = ref
			}
		}
	}
	if bestScore == 0 {
		return Ref{}, false
	}
	return best, true
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, w := range strings.Fields(Normalize(s)) {
		out[singular(w)] = true
	}
	return out
}

// singular strips a plural 's' so "descriptions" matches "description".
func singular(w string) string {
	if len(w) > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") {
		return w[:len(w)-1]
	}
	return w
}

func overlap(a, b map[string]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	n := 0
	for w := range a {
		if b[w] {
			n++
		}
	}
	return float64(n) / float64(len(a)+len(b)-n)
}
