package schema

import (
	"strings"
	"testing"
)

func sample() *Schema {
	return &Schema{
		Name: "concert_singer",
		Tables: []Table{
			{
				Name: "singer", NL: []string{"singers"},
				PrimaryKey: []string{"singer_id"},
				Columns: []Column{
					{Name: "singer_id", Type: "INT"},
					{Name: "name", Type: "TEXT", NL: []string{"name"}},
					{Name: "song_name", Type: "TEXT", NL: []string{"song name"}},
					{Name: "age", Type: "INT", NL: []string{"age"}},
				},
			},
			{
				Name: "concert", NL: []string{"concerts"},
				ForeignKeys: []ForeignKey{{Column: "singer_id", RefTable: "singer", RefColumn: "singer_id"}},
				Columns: []Column{
					{Name: "concert_id", Type: "INT"},
					{Name: "singer_id", Type: "INT"},
					{Name: "year", Type: "INT", NL: []string{"year"}},
				},
			},
		},
	}
}

func TestDDL(t *testing.T) {
	ddl := sample().DDL()
	for _, want := range []string{
		"CREATE TABLE singer (singer_id INT, name TEXT, song_name TEXT, age INT, PRIMARY KEY (singer_id));",
		"FOREIGN KEY (singer_id) REFERENCES singer(singer_id)",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func TestPromptText(t *testing.T) {
	pt := sample().PromptText()
	if !strings.Contains(pt, "Database: concert_singer") {
		t.Error("prompt text missing database header")
	}
	if !strings.Contains(pt, "Table singer(singer_id INT, name TEXT, song_name TEXT, age INT)") {
		t.Errorf("prompt text missing table line:\n%s", pt)
	}
	if !strings.Contains(pt, "[singer_id -> singer.singer_id]") {
		t.Error("prompt text missing FK annotation")
	}
}

func TestTableLookup(t *testing.T) {
	s := sample()
	if s.Table("SINGER") == nil {
		t.Error("table lookup should be case-insensitive")
	}
	if s.Table("nope") != nil {
		t.Error("unknown table should be nil")
	}
	tab := s.Table("singer")
	if tab.Column("NAME") == nil {
		t.Error("column lookup should be case-insensitive")
	}
	if tab.Column("nope") != nil {
		t.Error("unknown column should be nil")
	}
	if tab.Phrase() != "singers" {
		t.Errorf("phrase: %q", tab.Phrase())
	}
}

func TestLexiconResolve(t *testing.T) {
	lx := NewLexicon(sample())
	ref, ok := lx.Resolve("song name")
	if !ok || ref.Column != "song_name" {
		t.Errorf("song name -> %v, %v", ref, ok)
	}
	ref, ok = lx.Resolve("singers")
	if !ok || ref.Table != "singer" || ref.Column != "" {
		t.Errorf("singers -> %v, %v", ref, ok)
	}
	if _, ok := lx.Resolve("nonexistent thing"); ok {
		t.Error("unknown phrase should not resolve")
	}
}

func TestLexiconHumanizedNames(t *testing.T) {
	lx := NewLexicon(sample())
	// song_name has no "song_name" NL phrase, but the humanized identifier
	// is registered automatically.
	ref, ok := lx.ResolveColumn("song name")
	if !ok || ref.Column != "song_name" {
		t.Errorf("humanized: %v, %v", ref, ok)
	}
	ref, ok = lx.ResolveColumn("singer id")
	if !ok || ref.Column != "singer_id" {
		t.Errorf("singer id: %v, %v", ref, ok)
	}
}

func TestLexiconAmbiguityOrder(t *testing.T) {
	lx := NewLexicon(sample())
	// Plant an ambiguous jargon entry ahead of the real one.
	lx.AddFirst("name", Ref{Table: "singer", Column: "song_name"})
	ref, _ := lx.Resolve("name")
	if ref.Column != "song_name" {
		t.Errorf("AddFirst should win: %v", ref)
	}
	if !lx.Ambiguous("name") {
		t.Error("name should be ambiguous now")
	}
	cands := lx.Candidates("name")
	if len(cands) < 2 || cands[0].Column != "song_name" {
		t.Errorf("candidates: %v", cands)
	}
}

func TestResolveColumnFuzzy(t *testing.T) {
	lx := NewLexicon(sample())
	ref, ok := lx.ResolveColumn("the song names")
	if !ok || ref.Column != "song_name" {
		t.Errorf("fuzzy resolve: %v, %v", ref, ok)
	}
	if _, ok := lx.ResolveColumn("zzz qqq"); ok {
		t.Error("garbage should not resolve")
	}
}

func TestResolveTable(t *testing.T) {
	lx := NewLexicon(sample())
	ref, ok := lx.ResolveTable("concerts")
	if !ok || ref.Table != "concert" {
		t.Errorf("concerts: %v, %v", ref, ok)
	}
	// A column phrase must not resolve as a table.
	if ref, ok := lx.ResolveTable("age"); ok && ref.Table == "singer" && ref.Column == "" {
		// fuzzy match may land on something; just require it is a table ref
		if ref.Column != "" {
			t.Errorf("ResolveTable returned a column: %v", ref)
		}
	}
}

func TestNormalize(t *testing.T) {
	if Normalize("  Song   NAME ") != "song name" {
		t.Errorf("got %q", Normalize("  Song   NAME "))
	}
}

func TestPhrasesSorted(t *testing.T) {
	lx := NewLexicon(sample())
	ps := lx.Phrases()
	for i := 1; i < len(ps); i++ {
		if ps[i] < ps[i-1] {
			t.Fatalf("phrases not sorted at %d: %q < %q", i, ps[i], ps[i-1])
		}
	}
}

func TestRefString(t *testing.T) {
	if (Ref{Table: "t"}).String() != "t" {
		t.Error("table ref string")
	}
	if (Ref{Table: "t", Column: "c"}).String() != "t.c" {
		t.Error("column ref string")
	}
}
