package sqlast

import (
	"fmt"
	"strings"
)

// Clause identifies a region of a printed SELECT statement. Feedback
// highlights (internal/feedback) are resolved against these regions.
type Clause int

// Printed clause regions.
const (
	ClauseSelect Clause = iota
	ClauseFrom
	ClauseWhere
	ClauseGroupBy
	ClauseHaving
	ClauseOrderBy
	ClauseLimit
)

// String names the clause.
func (c Clause) String() string {
	switch c {
	case ClauseSelect:
		return "SELECT"
	case ClauseFrom:
		return "FROM"
	case ClauseWhere:
		return "WHERE"
	case ClauseGroupBy:
		return "GROUP BY"
	case ClauseHaving:
		return "HAVING"
	case ClauseOrderBy:
		return "ORDER BY"
	case ClauseLimit:
		return "LIMIT"
	}
	return "?clause?"
}

// Span is a byte range [Start, End) within a printed statement attributed to
// one clause of the outermost SELECT.
type Span struct {
	Clause     Clause
	Start, End int
}

// Print renders a statement as canonical single-line SQL.
func Print(s Statement) string {
	text, _ := PrintWithSpans(s)
	return text
}

// PrintExpr renders an expression as canonical SQL.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.sb.String()
}

// PrintWithSpans renders a statement and reports the clause spans of the
// outermost SELECT (empty for non-SELECT statements).
func PrintWithSpans(s Statement) (string, []Span) {
	var p printer
	switch st := s.(type) {
	case *SelectStmt:
		p.selectStmt(st, true)
	case *CreateTableStmt:
		p.createTable(st)
	case *InsertStmt:
		p.insert(st)
	default:
		p.sb.WriteString(fmt.Sprintf("?stmt %T?", s))
	}
	return p.sb.String(), p.spans
}

type printer struct {
	sb    strings.Builder
	spans []Span
}

func (p *printer) ws(parts ...string) {
	for _, s := range parts {
		p.sb.WriteString(s)
	}
}

func (p *printer) mark(c Clause, body func()) {
	start := p.sb.Len()
	body()
	p.spans = append(p.spans, Span{Clause: c, Start: start, End: p.sb.Len()})
}

func (p *printer) selectStmt(s *SelectStmt, outer bool) {
	mark := func(c Clause, body func()) {
		if outer {
			p.mark(c, body)
		} else {
			body()
		}
	}
	mark(ClauseSelect, func() {
		p.ws("SELECT ")
		if s.Distinct {
			p.ws("DISTINCT ")
		}
		for i, it := range s.Items {
			if i > 0 {
				p.ws(", ")
			}
			p.selectItem(it)
		}
	})
	if s.From != nil {
		p.ws(" ")
		mark(ClauseFrom, func() {
			p.ws("FROM ")
			p.tableSource(s.From.First)
			for _, j := range s.From.Joins {
				p.ws(" ", j.Type.String(), " ")
				p.tableSource(j.Source)
				if j.On != nil {
					p.ws(" ON ")
					p.expr(j.On, 0)
				}
			}
		})
	}
	if s.Where != nil {
		p.ws(" ")
		mark(ClauseWhere, func() {
			p.ws("WHERE ")
			p.expr(s.Where, 0)
		})
	}
	if len(s.GroupBy) > 0 {
		p.ws(" ")
		mark(ClauseGroupBy, func() {
			p.ws("GROUP BY ")
			for i, e := range s.GroupBy {
				if i > 0 {
					p.ws(", ")
				}
				p.expr(e, 0)
			}
		})
	}
	if s.Having != nil {
		p.ws(" ")
		mark(ClauseHaving, func() {
			p.ws("HAVING ")
			p.expr(s.Having, 0)
		})
	}
	if s.Compound != nil {
		p.ws(" ", s.Compound.Op.String(), " ")
		p.selectStmt(s.Compound.Right, false)
	}
	if len(s.OrderBy) > 0 {
		p.ws(" ")
		mark(ClauseOrderBy, func() {
			p.ws("ORDER BY ")
			for i, o := range s.OrderBy {
				if i > 0 {
					p.ws(", ")
				}
				p.expr(o.Expr, 0)
				if o.Desc {
					p.ws(" DESC")
				} else {
					p.ws(" ASC")
				}
			}
		})
	}
	if s.Limit != nil {
		p.ws(" ")
		mark(ClauseLimit, func() {
			p.ws("LIMIT ")
			p.expr(s.Limit, 0)
			if s.Offset != nil {
				p.ws(" OFFSET ")
				p.expr(s.Offset, 0)
			}
		})
	}
}

func (p *printer) selectItem(it SelectItem) {
	switch {
	case it.Star:
		p.ws("*")
	case it.TableStar != "":
		p.ws(it.TableStar, ".*")
	default:
		p.expr(it.Expr, 0)
		if it.Alias != "" {
			p.ws(" AS ", it.Alias)
		}
	}
}

func (p *printer) tableSource(ts TableSource) {
	if ts.Sub != nil {
		p.ws("(")
		p.selectStmt(ts.Sub, false)
		p.ws(")")
	} else {
		p.ws(ts.Name)
	}
	if ts.Alias != "" {
		p.ws(" AS ", ts.Alias)
	}
}

// binding powers for parenthesization; higher binds tighter.
func prec(op BinaryOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNeq, OpLt, OpLte, OpGt, OpGte:
		return 3
	case OpAdd, OpSub:
		return 4
	case OpMul, OpDiv, OpMod:
		return 5
	}
	return 0
}

func (p *printer) expr(e Expr, parent int) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			p.ws(x.Table, ".")
		}
		p.ws(x.Column)
	case *Literal:
		switch x.Kind {
		case LitNumber, LitBool:
			p.ws(x.Text)
		case LitString:
			p.ws("'", strings.ReplaceAll(x.Text, "'", "''"), "'")
		case LitNull:
			p.ws("NULL")
		}
	case *Binary:
		pr := prec(x.Op)
		if pr < parent {
			p.ws("(")
		}
		p.expr(x.L, pr)
		p.ws(" ", x.Op.String(), " ")
		p.expr(x.R, pr+1)
		if pr < parent {
			p.ws(")")
		}
	case *Unary:
		switch x.Op {
		case OpNot:
			// NOT binds looser than comparisons, so a comparison operand
			// needs no parentheses.
			p.ws("NOT ")
			p.expr(x.X, 3)
		case OpNeg:
			p.ws("-")
			p.expr(x.X, 6)
		}
	case *FuncCall:
		p.ws(x.Name, "(")
		if x.Distinct {
			p.ws("DISTINCT ")
		}
		if x.Star {
			p.ws("*")
		}
		for i, a := range x.Args {
			if i > 0 {
				p.ws(", ")
			}
			p.expr(a, 0)
		}
		p.ws(")")
	case *InExpr:
		p.expr(x.X, 3)
		if x.Not {
			p.ws(" NOT")
		}
		p.ws(" IN (")
		if x.Sub != nil {
			p.selectStmt(x.Sub, false)
		} else {
			for i, v := range x.List {
				if i > 0 {
					p.ws(", ")
				}
				p.expr(v, 0)
			}
		}
		p.ws(")")
	case *BetweenExpr:
		p.expr(x.X, 3)
		if x.Not {
			p.ws(" NOT")
		}
		p.ws(" BETWEEN ")
		p.expr(x.Lo, 4)
		p.ws(" AND ")
		p.expr(x.Hi, 4)
	case *LikeExpr:
		p.expr(x.X, 3)
		if x.Not {
			p.ws(" NOT")
		}
		p.ws(" LIKE ")
		p.expr(x.Pattern, 4)
	case *IsNullExpr:
		p.expr(x.X, 3)
		if x.Not {
			p.ws(" IS NOT NULL")
		} else {
			p.ws(" IS NULL")
		}
	case *ExistsExpr:
		if x.Not {
			p.ws("NOT ")
		}
		p.ws("EXISTS (")
		p.selectStmt(x.Sub, false)
		p.ws(")")
	case *SubqueryExpr:
		p.ws("(")
		p.selectStmt(x.Sub, false)
		p.ws(")")
	case *CaseExpr:
		p.ws("CASE")
		for _, w := range x.Whens {
			p.ws(" WHEN ")
			p.expr(w.When, 0)
			p.ws(" THEN ")
			p.expr(w.Then, 0)
		}
		if x.Else != nil {
			p.ws(" ELSE ")
			p.expr(x.Else, 0)
		}
		p.ws(" END")
	default:
		p.ws(fmt.Sprintf("?expr %T?", e))
	}
}

func (p *printer) createTable(s *CreateTableStmt) {
	p.ws("CREATE TABLE ", s.Name, " (")
	for i, c := range s.Columns {
		if i > 0 {
			p.ws(", ")
		}
		p.ws(c.Name, " ", c.Type)
	}
	if len(s.PrimaryKey) > 0 {
		p.ws(", PRIMARY KEY (", strings.Join(s.PrimaryKey, ", "), ")")
	}
	for _, fk := range s.ForeignKeys {
		p.ws(", FOREIGN KEY (", fk.Column, ") REFERENCES ", fk.RefTable, "(", fk.RefColumn, ")")
	}
	p.ws(")")
}

func (p *printer) insert(s *InsertStmt) {
	p.ws("INSERT INTO ", s.Table)
	if len(s.Columns) > 0 {
		p.ws(" (", strings.Join(s.Columns, ", "), ")")
	}
	p.ws(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			p.ws(", ")
		}
		p.ws("(")
		for j, v := range row {
			if j > 0 {
				p.ws(", ")
			}
			p.expr(v, 0)
		}
		p.ws(")")
	}
}
