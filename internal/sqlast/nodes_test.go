package sqlast

import "testing"

// Exhaustive per-node checks: every expression kind must print, clone
// deeply, and be visited by Walk.

func allExprKinds() map[string]Expr {
	sub := &SelectStmt{
		Items: []SelectItem{{Expr: &ColumnRef{Column: "x"}}},
		From:  &FromClause{First: TableSource{Name: "u"}},
	}
	return map[string]Expr{
		"column":           &ColumnRef{Column: "c"},
		"qualified column": &ColumnRef{Table: "t", Column: "c"},
		"number":           Num("42"),
		"float":            Num("4.5"),
		"string":           Str("hello"),
		"bool true":        Bool(true),
		"bool false":       Bool(false),
		"null":             Null(),
		"binary cmp":       &Binary{Op: OpLte, L: &ColumnRef{Column: "a"}, R: Num("1")},
		"binary and":       &Binary{Op: OpAnd, L: Bool(true), R: Bool(false)},
		"binary arith":     &Binary{Op: OpMod, L: Num("7"), R: Num("3")},
		"unary not":        &Unary{Op: OpNot, X: Bool(true)},
		"unary neg":        &Unary{Op: OpNeg, X: Num("5")},
		"count star":       &FuncCall{Name: "COUNT", Star: true},
		"agg distinct":     &FuncCall{Name: "SUM", Distinct: true, Args: []Expr{&ColumnRef{Column: "v"}}},
		"func two args":    &FuncCall{Name: "F", Args: []Expr{Num("1"), Num("2")}},
		"in list":          &InExpr{X: &ColumnRef{Column: "c"}, List: []Expr{Num("1"), Num("2")}},
		"not in sub":       &InExpr{X: &ColumnRef{Column: "c"}, Not: true, Sub: CloneSelect(sub)},
		"between":          &BetweenExpr{X: &ColumnRef{Column: "c"}, Lo: Num("1"), Hi: Num("2")},
		"not between":      &BetweenExpr{X: &ColumnRef{Column: "c"}, Not: true, Lo: Num("1"), Hi: Num("2")},
		"like":             &LikeExpr{X: &ColumnRef{Column: "c"}, Pattern: Str("a%")},
		"not like":         &LikeExpr{X: &ColumnRef{Column: "c"}, Not: true, Pattern: Str("a%")},
		"is null":          &IsNullExpr{X: &ColumnRef{Column: "c"}},
		"is not null":      &IsNullExpr{X: &ColumnRef{Column: "c"}, Not: true},
		"exists":           &ExistsExpr{Sub: CloneSelect(sub)},
		"not exists":       &ExistsExpr{Not: true, Sub: CloneSelect(sub)},
		"scalar subquery":  &SubqueryExpr{Sub: CloneSelect(sub)},
		"case":             &CaseExpr{Whens: []CaseWhen{{When: Bool(true), Then: Num("1")}}, Else: Num("0")},
		"case no else":     &CaseExpr{Whens: []CaseWhen{{When: Bool(false), Then: Num("1")}}},
	}
}

func TestEveryExprKindPrints(t *testing.T) {
	for name, e := range allExprKinds() {
		out := PrintExpr(e)
		if out == "" || out[0] == '?' {
			t.Errorf("%s: bad print %q", name, out)
		}
	}
}

func TestEveryExprKindClones(t *testing.T) {
	for name, e := range allExprKinds() {
		cp := CloneExpr(e)
		if PrintExpr(cp) != PrintExpr(e) {
			t.Errorf("%s: clone prints differently", name)
		}
	}
}

func TestEveryExprKindWalks(t *testing.T) {
	for name, e := range allExprKinds() {
		visited := 0
		Walk(e, func(Expr) bool { visited++; return true })
		if visited == 0 {
			t.Errorf("%s: walk visited nothing", name)
		}
	}
}

func TestCloneMutationIndependence(t *testing.T) {
	for name, e := range allExprKinds() {
		before := PrintExpr(e)
		cp := CloneExpr(e)
		mutateFirstLiteral(cp)
		if PrintExpr(e) != before {
			t.Errorf("%s: mutating the clone changed the original", name)
		}
	}
}

func mutateFirstLiteral(e Expr) {
	done := false
	Walk(e, func(x Expr) bool {
		if done {
			return false
		}
		if lit, ok := x.(*Literal); ok {
			lit.Text = "MUTATED"
			done = true
			return false
		}
		return true
	})
}

func TestPrintDerivedTableAndTableStar(t *testing.T) {
	sel := &SelectStmt{
		Items: []SelectItem{{TableStar: "s"}},
		From: &FromClause{First: TableSource{
			Sub: &SelectStmt{
				Items: []SelectItem{{Star: true}},
				From:  &FromClause{First: TableSource{Name: "singer"}},
			},
			Alias: "s",
		}},
	}
	want := "SELECT s.* FROM (SELECT * FROM singer) AS s"
	if got := Print(sel); got != want {
		t.Errorf("got %q", got)
	}
}

func TestPrintJoinTypes(t *testing.T) {
	for jt, word := range map[JoinType]string{
		JoinInner: "JOIN", JoinLeft: "LEFT JOIN", JoinCross: "CROSS JOIN",
	} {
		if jt.String() != word {
			t.Errorf("%d: %q", jt, jt.String())
		}
	}
	sel := &SelectStmt{
		Items: []SelectItem{{Star: true}},
		From: &FromClause{
			First: TableSource{Name: "a"},
			Joins: []Join{{Type: JoinCross, Source: TableSource{Name: "b"}}},
		},
	}
	if got := Print(sel); got != "SELECT * FROM a CROSS JOIN b" {
		t.Errorf("cross join: %q", got)
	}
}

func TestPrintCompoundWithOrder(t *testing.T) {
	sel := &SelectStmt{
		Items:    []SelectItem{{Expr: &ColumnRef{Column: "a"}}},
		From:     &FromClause{First: TableSource{Name: "t"}},
		Compound: &Compound{Op: SetExcept, Right: &SelectStmt{Items: []SelectItem{{Expr: &ColumnRef{Column: "b"}}}, From: &FromClause{First: TableSource{Name: "u"}}}},
		OrderBy:  []OrderItem{{Expr: &ColumnRef{Column: "a"}}},
		Limit:    Num("3"),
		Offset:   Num("1"),
	}
	want := "SELECT a FROM t EXCEPT SELECT b FROM u ORDER BY a ASC LIMIT 3 OFFSET 1"
	if got := Print(sel); got != want {
		t.Errorf("got %q", got)
	}
}

func TestOpAndClauseStrings(t *testing.T) {
	ops := map[BinaryOp]string{
		OpOr: "OR", OpAnd: "AND", OpEq: "=", OpNeq: "!=", OpLt: "<",
		OpLte: "<=", OpGt: ">", OpGte: ">=", OpAdd: "+", OpSub: "-",
		OpMul: "*", OpDiv: "/", OpMod: "%",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("op %d: %q", op, op.String())
		}
	}
	clauses := map[Clause]string{
		ClauseSelect: "SELECT", ClauseFrom: "FROM", ClauseWhere: "WHERE",
		ClauseGroupBy: "GROUP BY", ClauseHaving: "HAVING",
		ClauseOrderBy: "ORDER BY", ClauseLimit: "LIMIT",
	}
	for c, want := range clauses {
		if c.String() != want {
			t.Errorf("clause %d: %q", c, c.String())
		}
	}
}

func TestWalkSelectCoversEverything(t *testing.T) {
	sel := &SelectStmt{
		Items: []SelectItem{{Expr: &FuncCall{Name: "SUM", Args: []Expr{&ColumnRef{Column: "v"}}}}},
		From: &FromClause{
			First: TableSource{Sub: &SelectStmt{
				Items: []SelectItem{{Expr: &ColumnRef{Column: "inner1"}}},
			}},
			Joins: []Join{{
				Type:   JoinInner,
				Source: TableSource{Sub: &SelectStmt{Items: []SelectItem{{Expr: &ColumnRef{Column: "inner2"}}}}},
				On:     &Binary{Op: OpEq, L: &ColumnRef{Column: "j1"}, R: &ColumnRef{Column: "j2"}},
			}},
		},
		Where:   &ExistsExpr{Sub: &SelectStmt{Items: []SelectItem{{Expr: &ColumnRef{Column: "inner3"}}}}},
		GroupBy: []Expr{&ColumnRef{Column: "g"}},
		Having:  &Binary{Op: OpGt, L: &FuncCall{Name: "COUNT", Star: true}, R: Num("1")},
		OrderBy: []OrderItem{{Expr: &ColumnRef{Column: "o"}}},
		Limit:   Num("10"),
		Offset:  Num("2"),
		Compound: &Compound{Op: SetUnion, Right: &SelectStmt{
			Items: []SelectItem{{Expr: &ColumnRef{Column: "right1"}}},
		}},
	}
	seen := map[string]bool{}
	WalkSelect(sel, func(e Expr) bool {
		if cr, ok := e.(*ColumnRef); ok {
			seen[cr.Column] = true
		}
		return true
	})
	for _, col := range []string{"v", "inner1", "inner2", "j1", "j2", "inner3", "g", "o", "right1"} {
		if !seen[col] {
			t.Errorf("WalkSelect missed column %q (saw %v)", col, seen)
		}
	}
	// And the clone of this everything-statement roundtrips.
	if !EqualSelect(sel, CloneSelect(sel)) {
		t.Error("full-feature statement does not clone equal")
	}
}

func TestLiteralConstructors(t *testing.T) {
	if Num("1").Kind != LitNumber || Str("s").Kind != LitString ||
		Bool(true).Kind != LitBool || Null().Kind != LitNull {
		t.Error("literal constructor kinds wrong")
	}
	if Bool(true).Text != "TRUE" || Bool(false).Text != "FALSE" {
		t.Error("bool literal text")
	}
}
