package sqlast

import "testing"

func sampleSelect() *SelectStmt {
	return &SelectStmt{
		Items: []SelectItem{{Expr: &FuncCall{Name: "COUNT", Star: true}, Alias: "n"}},
		From:  &FromClause{First: TableSource{Name: "singer"}},
		Where: &Binary{Op: OpGt, L: &ColumnRef{Column: "age"}, R: Num("20")},
		OrderBy: []OrderItem{
			{Expr: &ColumnRef{Column: "age"}, Desc: true},
		},
		Limit: Num("5"),
	}
}

func TestPrintSelect(t *testing.T) {
	got := Print(sampleSelect())
	want := "SELECT COUNT(*) AS n FROM singer WHERE age > 20 ORDER BY age DESC LIMIT 5"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestPrintWithSpansCoversClauses(t *testing.T) {
	text, spans := PrintWithSpans(sampleSelect())
	found := map[Clause]string{}
	for _, sp := range spans {
		found[sp.Clause] = text[sp.Start:sp.End]
	}
	if found[ClauseSelect] != "SELECT COUNT(*) AS n" {
		t.Errorf("SELECT span: %q", found[ClauseSelect])
	}
	if found[ClauseFrom] != "FROM singer" {
		t.Errorf("FROM span: %q", found[ClauseFrom])
	}
	if found[ClauseWhere] != "WHERE age > 20" {
		t.Errorf("WHERE span: %q", found[ClauseWhere])
	}
	if found[ClauseOrderBy] != "ORDER BY age DESC" {
		t.Errorf("ORDER BY span: %q", found[ClauseOrderBy])
	}
	if found[ClauseLimit] != "LIMIT 5" {
		t.Errorf("LIMIT span: %q", found[ClauseLimit])
	}
}

func TestSpansOnlyForOuterSelect(t *testing.T) {
	sel := &SelectStmt{
		Items: []SelectItem{{Expr: &ColumnRef{Column: "name"}}},
		From:  &FromClause{First: TableSource{Name: "singer"}},
		Where: &Binary{Op: OpEq,
			L: &ColumnRef{Column: "age"},
			R: &SubqueryExpr{Sub: &SelectStmt{
				Items: []SelectItem{{Expr: &FuncCall{Name: "MIN", Args: []Expr{&ColumnRef{Column: "age"}}}}},
				From:  &FromClause{First: TableSource{Name: "singer"}},
			}},
		},
	}
	_, spans := PrintWithSpans(sel)
	count := map[Clause]int{}
	for _, sp := range spans {
		count[sp.Clause]++
	}
	if count[ClauseSelect] != 1 || count[ClauseFrom] != 1 || count[ClauseWhere] != 1 {
		t.Errorf("span counts: %v (inner select leaked spans?)", count)
	}
}

func TestPrintStringEscaping(t *testing.T) {
	got := PrintExpr(Str("it's"))
	if got != "'it''s'" {
		t.Errorf("got %q", got)
	}
}

func TestCloneSelectIsDeep(t *testing.T) {
	orig := sampleSelect()
	cp := CloneSelect(orig)
	if !EqualSelect(orig, cp) {
		t.Fatal("clone not equal to original")
	}
	// Mutate the clone; the original must not change.
	cp.Where.(*Binary).R = Num("99")
	cp.Items[0].Alias = "changed"
	cp.From.First.Name = "other"
	if Print(orig) != "SELECT COUNT(*) AS n FROM singer WHERE age > 20 ORDER BY age DESC LIMIT 5" {
		t.Errorf("original mutated: %s", Print(orig))
	}
}

func TestCloneNil(t *testing.T) {
	if CloneSelect(nil) != nil {
		t.Error("CloneSelect(nil) should be nil")
	}
	if CloneExpr(nil) != nil {
		t.Error("CloneExpr(nil) should be nil")
	}
}

func TestEqualSelect(t *testing.T) {
	a := sampleSelect()
	b := sampleSelect()
	if !EqualSelect(a, b) {
		t.Error("identical structures should be equal")
	}
	b.Distinct = true
	if EqualSelect(a, b) {
		t.Error("DISTINCT difference not detected")
	}
	if !EqualSelect(nil, nil) {
		t.Error("nil == nil")
	}
	if EqualSelect(a, nil) {
		t.Error("non-nil != nil")
	}
}

func TestWalkVisitsSubqueries(t *testing.T) {
	sel := &SelectStmt{
		Items: []SelectItem{{Expr: &ColumnRef{Column: "name"}}},
		Where: &InExpr{
			X: &ColumnRef{Column: "id"},
			Sub: &SelectStmt{
				Items: []SelectItem{{Expr: &ColumnRef{Column: "sid"}}},
				Where: &Binary{Op: OpEq, L: &ColumnRef{Column: "year"}, R: Num("2024")},
			},
		},
	}
	var cols []string
	WalkSelect(sel, func(e Expr) bool {
		if c, ok := e.(*ColumnRef); ok {
			cols = append(cols, c.Column)
		}
		return true
	})
	want := map[string]bool{"name": true, "id": true, "sid": true, "year": true}
	if len(cols) != 4 {
		t.Fatalf("visited %v, want 4 columns", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Errorf("unexpected column %q", c)
		}
	}
}

func TestWalkStopsDescent(t *testing.T) {
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpEq, L: &ColumnRef{Column: "a"}, R: Num("1")},
		R: &Binary{Op: OpEq, L: &ColumnRef{Column: "b"}, R: Num("2")},
	}
	var visited int
	Walk(e, func(x Expr) bool {
		visited++
		_, isBinary := x.(*Binary)
		return !isBinary || visited == 1 // stop below the two inner binaries
	})
	if visited != 3 {
		t.Errorf("visited %d nodes, want 3 (root + two children)", visited)
	}
}

func TestSetOpStrings(t *testing.T) {
	tests := map[SetOp]string{
		SetUnion:     "UNION",
		SetUnionAll:  "UNION ALL",
		SetIntersect: "INTERSECT",
		SetExcept:    "EXCEPT",
	}
	for op, want := range tests {
		if op.String() != want {
			t.Errorf("%d: got %q, want %q", op, op.String(), want)
		}
	}
}

func TestPrintCreateAndInsert(t *testing.T) {
	ct := &CreateTableStmt{
		Name: "t",
		Columns: []ColumnDef{
			{Name: "id", Type: "INT"},
			{Name: "name", Type: "TEXT"},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []ForeignKey{{Column: "gid", RefTable: "g", RefColumn: "id"}},
	}
	want := "CREATE TABLE t (id INT, name TEXT, PRIMARY KEY (id), FOREIGN KEY (gid) REFERENCES g(id))"
	if got := Print(ct); got != want {
		t.Errorf("create: got %q", got)
	}
	ins := &InsertStmt{Table: "t", Columns: []string{"id"}, Rows: [][]Expr{{Num("1")}, {Num("2")}}}
	wantIns := "INSERT INTO t (id) VALUES (1), (2)"
	if got := Print(ins); got != wantIns {
		t.Errorf("insert: got %q", got)
	}
}
