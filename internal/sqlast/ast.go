// Package sqlast defines the abstract syntax tree for the SQL dialect used
// throughout the repository, together with a deterministic printer and
// structural utilities (walking, cloning, equality).
//
// The AST is deliberately plain: exported structs with exported fields, no
// hidden invariants. Query perturbation (internal/dataset), repair
// (internal/nl2sql) and highlight grounding (internal/feedback) all operate
// by structurally editing these nodes and re-printing.
package sqlast

// Statement is implemented by all top-level SQL statements.
type Statement interface{ stmt() }

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// ----------------------------------------------------------------------------
// Statements

// SelectStmt is a SELECT query, possibly compounded with a set operation.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     *FromClause // nil for expression-only SELECTs (e.g. SELECT 1)
	Where    Expr        // nil if absent
	GroupBy  []Expr
	Having   Expr // nil if absent
	OrderBy  []OrderItem
	Limit    Expr // nil if absent
	Offset   Expr // nil if absent

	// Compound chains a set operation onto this SELECT:
	// "<this> UNION <Compound.Right>" etc. ORDER BY/LIMIT of the left
	// SELECT apply to the whole compound, as in SQLite.
	Compound *Compound
}

func (*SelectStmt) stmt() {}

// SetOp names a set operation combining two SELECTs.
type SetOp int

// Set operations.
const (
	SetUnion SetOp = iota
	SetUnionAll
	SetIntersect
	SetExcept
)

// String returns the SQL spelling of the operator.
func (op SetOp) String() string {
	switch op {
	case SetUnion:
		return "UNION"
	case SetUnionAll:
		return "UNION ALL"
	case SetIntersect:
		return "INTERSECT"
	case SetExcept:
		return "EXCEPT"
	}
	return "?setop?"
}

// Compound is the right-hand side of a set operation.
type Compound struct {
	Op    SetOp
	Right *SelectStmt
}

// SelectItem is one projection in the SELECT list. Exactly one of Star,
// TableStar, or Expr is set.
type SelectItem struct {
	Star      bool   // SELECT *
	TableStar string // SELECT t.*
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FromClause is the FROM clause: a first source plus zero or more joins.
type FromClause struct {
	First TableSource
	Joins []Join
}

// TableSource is a named table (with optional alias) or a derived table.
type TableSource struct {
	Name  string      // table name; empty if Sub is set
	Alias string      // optional
	Sub   *SelectStmt // derived table, nil for plain tables
}

// JoinType enumerates supported join flavors.
type JoinType int

// Join flavors.
const (
	JoinInner JoinType = iota
	JoinLeft
	JoinCross
)

// String returns the SQL spelling of the join type.
func (jt JoinType) String() string {
	switch jt {
	case JoinInner:
		return "JOIN"
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "?join?"
}

// Join attaches one more table source to a FROM clause.
type Join struct {
	Type   JoinType
	Source TableSource
	On     Expr // nil for CROSS JOIN
}

// ColumnDef declares one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type string // canonical upper-case type name: TEXT, INT, REAL, BOOL, DATE
}

// ForeignKey declares a single-column foreign key.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	Columns     []ColumnDef
	PrimaryKey  []string
	ForeignKeys []ForeignKey
}

func (*CreateTableStmt) stmt() {}

// InsertStmt is INSERT INTO ... VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means "all columns in declared order"
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// ----------------------------------------------------------------------------
// Expressions

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // optional qualifier
	Column string
}

func (*ColumnRef) expr() {}

// LiteralKind classifies a literal value.
type LiteralKind int

// Literal kinds.
const (
	LitNumber LiteralKind = iota
	LitString
	LitBool
	LitNull
)

// Literal is a constant. Numbers keep their source text so the printer
// round-trips exactly; the engine parses Text on demand.
type Literal struct {
	Kind LiteralKind
	Text string // number text or string content; "TRUE"/"FALSE" for bools
}

func (*Literal) expr() {}

// Convenience literal constructors.

// Num returns a numeric literal with the given source text.
func Num(text string) *Literal { return &Literal{Kind: LitNumber, Text: text} }

// Str returns a string literal.
func Str(text string) *Literal { return &Literal{Kind: LitString, Text: text} }

// Bool returns a boolean literal.
func Bool(v bool) *Literal {
	if v {
		return &Literal{Kind: LitBool, Text: "TRUE"}
	}
	return &Literal{Kind: LitBool, Text: "FALSE"}
}

// Null returns the NULL literal.
func Null() *Literal { return &Literal{Kind: LitNull} }

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators, in precedence groups (low to high: OR, AND, comparison,
// additive, multiplicative).
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLte
	OpGt
	OpGte
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String returns the SQL spelling of the operator.
func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNeq:
		return "!="
	case OpLt:
		return "<"
	case OpLte:
		return "<="
	case OpGt:
		return ">"
	case OpGte:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?op?"
}

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (*Binary) expr() {}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNot UnaryOp = iota
	OpNeg
)

// Unary is a unary operation.
type Unary struct {
	Op UnaryOp
	X  Expr
}

func (*Unary) expr() {}

// FuncCall is a function invocation, including aggregates. Star marks
// COUNT(*).
type FuncCall struct {
	Name     string // canonical upper case: COUNT, SUM, AVG, MIN, MAX, ...
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*FuncCall) expr() {}

// InExpr is "x [NOT] IN (list)" or "x [NOT] IN (subquery)".
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr      // nil if Sub is set
	Sub  *SelectStmt // nil if List is set
}

func (*InExpr) expr() {}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X      Expr
	Not    bool
	Lo, Hi Expr
}

func (*BetweenExpr) expr() {}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

func (*LikeExpr) expr() {}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Not bool
	Sub *SelectStmt
}

func (*ExistsExpr) expr() {}

// SubqueryExpr is a scalar subquery used as an expression.
type SubqueryExpr struct {
	Sub *SelectStmt
}

func (*SubqueryExpr) expr() {}

// CaseWhen is one WHEN/THEN arm of a CASE expression.
type CaseWhen struct {
	When Expr
	Then Expr
}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr // nil if absent
}

func (*CaseExpr) expr() {}
