package sqlast

// Walk calls fn for every expression node reachable from e, including e
// itself, in depth-first pre-order. If fn returns false the walk stops
// descending into that node's children (siblings continue).
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	case *Unary:
		Walk(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			Walk(a, fn)
		}
	case *InExpr:
		Walk(x.X, fn)
		for _, v := range x.List {
			Walk(v, fn)
		}
		if x.Sub != nil {
			WalkSelect(x.Sub, fn)
		}
	case *BetweenExpr:
		Walk(x.X, fn)
		Walk(x.Lo, fn)
		Walk(x.Hi, fn)
	case *LikeExpr:
		Walk(x.X, fn)
		Walk(x.Pattern, fn)
	case *IsNullExpr:
		Walk(x.X, fn)
	case *ExistsExpr:
		WalkSelect(x.Sub, fn)
	case *SubqueryExpr:
		WalkSelect(x.Sub, fn)
	case *CaseExpr:
		for _, w := range x.Whens {
			Walk(w.When, fn)
			Walk(w.Then, fn)
		}
		Walk(x.Else, fn)
	}
}

// WalkSelect calls fn for every expression node in the statement, including
// those inside subqueries and compound arms.
func WalkSelect(s *SelectStmt, fn func(Expr) bool) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		Walk(it.Expr, fn)
	}
	if s.From != nil {
		if s.From.First.Sub != nil {
			WalkSelect(s.From.First.Sub, fn)
		}
		for _, j := range s.From.Joins {
			if j.Source.Sub != nil {
				WalkSelect(j.Source.Sub, fn)
			}
			Walk(j.On, fn)
		}
	}
	Walk(s.Where, fn)
	for _, g := range s.GroupBy {
		Walk(g, fn)
	}
	Walk(s.Having, fn)
	for _, o := range s.OrderBy {
		Walk(o.Expr, fn)
	}
	Walk(s.Limit, fn)
	Walk(s.Offset, fn)
	if s.Compound != nil {
		WalkSelect(s.Compound.Right, fn)
	}
}

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		cp := *x
		return &cp
	case *Literal:
		cp := *x
		return &cp
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *FuncCall:
		cp := &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			cp.Args = append(cp.Args, CloneExpr(a))
		}
		return cp
	case *InExpr:
		cp := &InExpr{X: CloneExpr(x.X), Not: x.Not, Sub: CloneSelect(x.Sub)}
		for _, v := range x.List {
			cp.List = append(cp.List, CloneExpr(v))
		}
		return cp
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Not: x.Not, Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi)}
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Not: x.Not, Pattern: CloneExpr(x.Pattern)}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *ExistsExpr:
		return &ExistsExpr{Not: x.Not, Sub: CloneSelect(x.Sub)}
	case *SubqueryExpr:
		return &SubqueryExpr{Sub: CloneSelect(x.Sub)}
	case *CaseExpr:
		cp := &CaseExpr{Else: CloneExpr(x.Else)}
		for _, w := range x.Whens {
			cp.Whens = append(cp.Whens, CaseWhen{When: CloneExpr(w.When), Then: CloneExpr(w.Then)})
		}
		return cp
	}
	return nil
}

// CloneSelect returns a deep copy of s.
func CloneSelect(s *SelectStmt) *SelectStmt {
	if s == nil {
		return nil
	}
	cp := &SelectStmt{
		Distinct: s.Distinct,
		Where:    CloneExpr(s.Where),
		Having:   CloneExpr(s.Having),
		Limit:    CloneExpr(s.Limit),
		Offset:   CloneExpr(s.Offset),
	}
	for _, it := range s.Items {
		cp.Items = append(cp.Items, SelectItem{
			Star:      it.Star,
			TableStar: it.TableStar,
			Expr:      CloneExpr(it.Expr),
			Alias:     it.Alias,
		})
	}
	if s.From != nil {
		f := &FromClause{First: cloneSource(s.From.First)}
		for _, j := range s.From.Joins {
			f.Joins = append(f.Joins, Join{Type: j.Type, Source: cloneSource(j.Source), On: CloneExpr(j.On)})
		}
		cp.From = f
	}
	for _, g := range s.GroupBy {
		cp.GroupBy = append(cp.GroupBy, CloneExpr(g))
	}
	for _, o := range s.OrderBy {
		cp.OrderBy = append(cp.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	if s.Compound != nil {
		cp.Compound = &Compound{Op: s.Compound.Op, Right: CloneSelect(s.Compound.Right)}
	}
	return cp
}

func cloneSource(ts TableSource) TableSource {
	return TableSource{Name: ts.Name, Alias: ts.Alias, Sub: CloneSelect(ts.Sub)}
}

// EqualSelect reports whether two SELECT statements are structurally
// identical. It compares canonical printed forms, which is sound because the
// printer is deterministic and injective up to the equivalences we care
// about (whitespace, case of keywords).
func EqualSelect(a, b *SelectStmt) bool {
	if a == nil || b == nil {
		return a == b
	}
	return Print(a) == Print(b)
}
