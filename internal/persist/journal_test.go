package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

var errTestDiskFull = errors.New("injected: no space left on device")

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sessions.journal")
}

func mustOpen(t *testing.T, path string, opts Options) *Journal {
	t.Helper()
	j, err := Open(path, opts)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return j
}

func mustAppend(t *testing.T, j *Journal, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("append %+v: %v", r, err)
		}
	}
}

// workload is a mixed three-session history: s1 asks and gets grounded
// feedback, s2 asks, s3 is created and deleted.
func workload() []Record {
	return []Record{
		{Type: TCreate, Session: "s1", Corpus: "aep", DB: "experience_platform"},
		{Type: TCreate, Session: "s2", Corpus: "aep", DB: "experience_platform"},
		{Type: TAsk, Session: "s1", Text: "How many audiences?", HighlightStart: -1},
		{Type: TAsk, Session: "s2", Text: "List the segments", HighlightStart: -1},
		{Type: TFeedback, Session: "s1", Text: "we are in 2024",
			Highlight: "2023", HighlightStart: 42},
		{Type: TCreate, Session: "s3", Corpus: "aep", DB: "experience_platform"},
		{Type: TAsk, Session: "s3", Text: "doomed", HighlightStart: -1},
		{Type: TDelete, Session: "s3", HighlightStart: -1},
		{Type: TFeedback, Session: "s2", Text: "sort them", HighlightStart: -1},
	}
}

// liveWorkload is workload() minus the deleted session, in replay order
// (per-session order preserved, sessions by creation order).
func liveWorkload() []Record {
	return []Record{
		{Type: TCreate, Session: "s1", Corpus: "aep", DB: "experience_platform", HighlightStart: -1},
		{Type: TAsk, Session: "s1", Text: "How many audiences?", HighlightStart: -1},
		{Type: TFeedback, Session: "s1", Text: "we are in 2024",
			Highlight: "2023", HighlightStart: 42},
		{Type: TCreate, Session: "s2", Corpus: "aep", DB: "experience_platform", HighlightStart: -1},
		{Type: TAsk, Session: "s2", Text: "List the segments", HighlightStart: -1},
		{Type: TFeedback, Session: "s2", Text: "sort them", HighlightStart: -1},
	}
}

func TestRoundTripAndReplayOrder(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, workload()...)
	if got := j.Stats().LiveSessions; got != 2 {
		t.Errorf("live sessions = %d, want 2", got)
	}
	if err := j.Crash(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j2.Crash()
	if got, want := j2.Records(), liveWorkload(); !reflect.DeepEqual(got, want) {
		t.Errorf("recovered records:\ngot  %+v\nwant %+v", got, want)
	}
	if tb := j2.Stats().TruncatedBytes; tb != 0 {
		t.Errorf("clean journal reported %d truncated bytes", tb)
	}
}

// TestTornWriteSweep truncates the journal at every byte boundary of the
// final record and requires recovery to keep every fully committed record
// and drop only the torn one.
func TestTornWriteSweep(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, workload()...)
	if err := j.Crash(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, scanErr := ScanBytes(data)
	if scanErr != nil || len(recs) != len(workload()) {
		t.Fatalf("scan: %d records, err %v", len(recs), scanErr)
	}
	lastStart := ends[len(ends)-2]

	for cut := lastStart; cut <= ends[len(ends)-1]; cut++ {
		cutPath := filepath.Join(t.TempDir(), "cut.journal")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jc := mustOpen(t, cutPath, Options{Fsync: FsyncOff})
		wantRecs := len(recs) - 1
		wantTruncated := cut - lastStart
		if cut == ends[len(ends)-1] {
			wantRecs = len(recs)
			wantTruncated = 0
		}
		got, gotEnds, gotErr := func() ([]Record, []int64, error) {
			d, err := os.ReadFile(cutPath)
			if err != nil {
				t.Fatal(err)
			}
			return ScanBytes(d)
		}()
		if gotErr != nil {
			t.Errorf("cut %d: file not truncated cleanly after open: %v", cut, gotErr)
		}
		if len(got) != wantRecs {
			t.Errorf("cut %d: %d records survive, want %d", cut, len(got), wantRecs)
		}
		if tb := jc.Stats().TruncatedBytes; tb != wantTruncated {
			t.Errorf("cut %d: truncated bytes = %d, want %d", cut, tb, wantTruncated)
		}
		// The journal must accept appends after a torn-tail truncation.
		if err := jc.Append(Record{Type: TAsk, Session: "s1", Text: "after recovery", HighlightStart: -1}); err != nil {
			t.Errorf("cut %d: append after recovery: %v", cut, err)
		}
		d2, _ := os.ReadFile(cutPath)
		if _, e2, err := ScanBytes(d2); err != nil || int64(len(d2)) != e2[len(e2)-1] {
			t.Errorf("cut %d: journal not clean after post-recovery append: %v", cut, err)
		}
		_ = gotEnds
		jc.Crash()
	}
}

// TestCorruptMiddleRecord flips a payload byte of an interior record: the
// file must recover to the prefix before it (later records are
// unreachable once framing is lost).
func TestCorruptMiddleRecord(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, workload()...)
	j.Crash()

	data, _ := os.ReadFile(path)
	_, ends, _ := ScanBytes(data)
	// Corrupt a byte inside the third record's payload.
	data[ends[1]+frameHeader] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j2.Crash()
	// Only s1 and s2's creates survive (records 0 and 1).
	if got := len(j2.Records()); got != 2 {
		t.Errorf("%d records survive CRC corruption, want 2", got)
	}
	if st, _ := os.Stat(path); st.Size() != ends[1] {
		t.Errorf("file size after recovery = %d, want %d", st.Size(), ends[1])
	}
}

func TestCompactionDropsDeadSessions(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff, CompactMinBytes: 1})
	// With a 1-byte dead threshold, the delete of s3 triggers an automatic
	// compaction on the spot.
	mustAppend(t, j, workload()...)
	if c := j.Stats().Compactions; c == 0 {
		t.Fatal("no automatic compaction despite dead bytes over threshold")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, scanErr := ScanBytes(data)
	if scanErr != nil {
		t.Fatalf("compacted journal corrupt: %v", scanErr)
	}
	for _, r := range recs {
		if r.Session == "s3" {
			t.Errorf("deleted session record survived compaction: %+v", r)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j2.Crash()
	if got, want := j2.Records(), liveWorkload(); !reflect.DeepEqual(got, want) {
		t.Errorf("records after compaction:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCloseCheckpoints(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, workload()...)
	preClose, _ := os.Stat(path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	postClose, _ := os.Stat(path)
	if postClose.Size() >= preClose.Size() {
		t.Errorf("close checkpoint did not shrink the file: %d -> %d",
			preClose.Size(), postClose.Size())
	}
	if err := j.Append(Record{Type: TAsk, Session: "s1", HighlightStart: -1}); err == nil {
		t.Error("append after close must fail")
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRetainPrunes(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, workload()...)
	j.Retain(func(id string) bool { return id == "s2" })
	if got := j.Stats().LiveSessions; got != 1 {
		t.Fatalf("live sessions after retain = %d, want 1", got)
	}
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Crash()
	j2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j2.Crash()
	for _, r := range j2.Records() {
		if r.Session != "s2" {
			t.Errorf("retained journal still has %+v", r)
		}
	}
	if len(j2.Records()) != 3 {
		t.Errorf("retained records = %d, want 3", len(j2.Records()))
	}
}

func TestFsyncPolicies(t *testing.T) {
	always := mustOpen(t, tmpJournal(t), Options{Fsync: FsyncAlways})
	var observed int
	always.SetFsyncObserver(func(time.Duration) { observed++ })
	mustAppend(t, always, workload()[:3]...)
	if got := always.Stats().Fsyncs; got != 3 {
		t.Errorf("always: %d fsyncs after 3 appends, want 3", got)
	}
	if observed != 3 {
		t.Errorf("observer saw %d fsyncs, want 3", observed)
	}
	always.Crash()

	off := mustOpen(t, tmpJournal(t), Options{Fsync: FsyncOff})
	mustAppend(t, off, workload()[:3]...)
	if got := off.Stats().Fsyncs; got != 0 {
		t.Errorf("off: %d fsyncs, want 0", got)
	}
	off.Crash()

	interval := mustOpen(t, tmpJournal(t), Options{Fsync: FsyncInterval, FsyncEvery: 5 * time.Millisecond})
	mustAppend(t, interval, workload()[:3]...)
	deadline := time.Now().Add(2 * time.Second)
	for interval.Stats().Fsyncs == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := interval.Stats().Fsyncs; got == 0 {
		t.Error("interval: background ticker never synced")
	}
	interval.Crash()
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "off": FsyncOff,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() round trip: %q -> %q", s, got.String())
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestScanBytesRejectsImplausibleLength guards the corruption-vs-allocate
// distinction: a frame promising gigabytes is corruption, not a request.
func TestScanBytesRejectsImplausibleLength(t *testing.T) {
	data := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	recs, _, err := ScanBytes(data)
	if err == nil || len(recs) != 0 {
		t.Errorf("implausible length: recs=%d err=%v", len(recs), err)
	}
}

func TestEncodeDecodeHighlight(t *testing.T) {
	for _, r := range []Record{
		{Type: TFeedback, Session: "s9", Text: "fix the join",
			Highlight: "name", HighlightStart: 0},
		{Type: TFeedback, Session: "s9", Text: "fix the join", HighlightStart: -1},
		{Type: TCreate, Session: "s1", Corpus: "spider", DB: "concert_singer", HighlightStart: -1},
		{Type: TDelete, Session: "s1", HighlightStart: -1},
	} {
		frame := appendFrame(nil, r)
		recs, ends, err := ScanBytes(frame)
		if err != nil || len(recs) != 1 {
			t.Fatalf("scan of single frame: %d recs, %v", len(recs), err)
		}
		if !reflect.DeepEqual(recs[0], r) {
			t.Errorf("round trip: got %+v, want %+v", recs[0], r)
		}
		if ends[0] != int64(len(frame)) {
			t.Errorf("end offset %d, frame length %d", ends[0], len(frame))
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	payload := encodePayload(nil, Record{Type: TDelete, Session: "s1", HighlightStart: -1})
	payload = append(payload, 0x00)
	if _, err := decodePayload(payload); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := decodePayload([]byte{99, 0}); err == nil {
		t.Error("unknown record type accepted")
	}
	if _, err := decodePayload(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestRecreateAfterDelete pins the id-reuse semantics: a create after a
// delete starts the session's record group fresh.
func TestRecreateAfterDelete(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j,
		Record{Type: TCreate, Session: "s1", Corpus: "aep", DB: "db", HighlightStart: -1},
		Record{Type: TAsk, Session: "s1", Text: "old life", HighlightStart: -1},
		Record{Type: TDelete, Session: "s1", HighlightStart: -1},
		Record{Type: TCreate, Session: "s1", Corpus: "aep", DB: "db", HighlightStart: -1},
		Record{Type: TAsk, Session: "s1", Text: "new life", HighlightStart: -1},
	)
	j.Crash()
	j2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j2.Crash()
	recs := j2.Records()
	if len(recs) != 2 || recs[1].Text != "new life" {
		t.Errorf("recreated session records: %+v", recs)
	}
}

// TestCompactionPreservesWatermark is the id-reuse regression: deleting a
// session and compacting (graceful shutdown's Close) erases its create
// record, but the id high-watermark must survive in the rewritten file so a
// restart never reissues the dead id to a fresh session.
func TestCompactionPreservesWatermark(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j,
		Record{Type: TCreate, Session: "s1", Corpus: "aep", DB: "db", ID: 1},
		Record{Type: TCreate, Session: "s2", Corpus: "aep", DB: "db", ID: 2},
		Record{Type: TDelete, Session: "s2"},
	)
	if got := j.Watermark(); got != 2 {
		t.Fatalf("watermark before compaction = %d, want 2", got)
	}
	if err := j.Close(); err != nil { // graceful shutdown: compacts
		t.Fatal(err)
	}

	j2 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j2.Crash()
	if got := j2.Watermark(); got != 2 {
		t.Errorf("watermark after compaction+reopen = %d, want 2 (s2's id is reusable)", got)
	}
	if seen := j2.SessionsSeen(); len(seen) != 1 || seen[0] != "s1" {
		t.Errorf("sessions seen after compaction = %v, want [s1]", seen)
	}
	// The watermark frame is bookkeeping, not a session record: replay must
	// not see it.
	for _, r := range j2.Records() {
		if r.Type == TWatermark {
			t.Errorf("watermark record leaked into replay: %+v", r)
		}
	}
	// A second compaction cycle must carry it forward again.
	if err := j2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j2.Crash()
	j3 := mustOpen(t, path, Options{Fsync: FsyncOff})
	defer j3.Crash()
	if got := j3.Watermark(); got != 2 {
		t.Errorf("watermark after second compaction = %d, want 2", got)
	}
}

// TestAppendRollbackOnWriteError injects a short write and requires the
// journal to roll the file back to the last good frame boundary: a torn
// frame left mid-file would make every later acknowledged append
// unreachable for the scan at the next Open.
func TestAppendRollbackOnWriteError(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, Record{Type: TCreate, Session: "s1", Corpus: "aep", DB: "db", ID: 1})

	j.testWrite = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		return n, errTestDiskFull
	}
	if err := j.Append(Record{Type: TAsk, Session: "s1", Text: "torn", HighlightStart: -1}); err == nil {
		t.Fatal("short write did not surface an error")
	}
	j.testWrite = nil

	// The torn half-frame must be gone and the journal healthy again.
	if err := j.Append(Record{Type: TAsk, Session: "s1", Text: "after rollback", HighlightStart: -1}); err != nil {
		t.Fatalf("append after rollback: %v", err)
	}
	j.Crash()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, ends, scanErr := ScanBytes(data)
	if scanErr != nil {
		t.Fatalf("journal corrupt after rollback: %v", scanErr)
	}
	if int64(len(data)) != ends[len(ends)-1] {
		t.Errorf("torn bytes left in file: %d bytes, frames end at %d", len(data), ends[len(ends)-1])
	}
	if got := recs[len(recs)-1].Text; got != "after rollback" {
		t.Errorf("last record = %q, want the post-rollback append", got)
	}
	for _, r := range recs {
		if r.Text == "torn" {
			t.Error("failed append's record present in the file")
		}
	}
}

// TestAppendPoisonedWhenRollbackFails: if the truncate after a short write
// also fails, the journal must refuse all further appends — writing past a
// torn frame would acknowledge records recovery can never reach.
func TestAppendPoisonedWhenRollbackFails(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff})
	mustAppend(t, j, Record{Type: TCreate, Session: "s1", Corpus: "aep", DB: "db", ID: 1})

	j.testWrite = func(f *os.File, b []byte) (int, error) {
		n, _ := f.Write(b[:len(b)/2])
		f.Close() // makes the rollback Truncate fail too
		return n, errTestDiskFull
	}
	if err := j.Append(Record{Type: TAsk, Session: "s1", Text: "torn", HighlightStart: -1}); err == nil {
		t.Fatal("short write did not surface an error")
	}
	j.testWrite = nil
	if err := j.Append(Record{Type: TAsk, Session: "s1", Text: "again", HighlightStart: -1}); err == nil ||
		!strings.Contains(err.Error(), "failed") {
		t.Errorf("append on a poisoned journal = %v, want a failed-journal error", err)
	}
}

// TestAppendAfterCompactionStaysFramed appends after an in-line compaction
// and verifies the file remains a clean frame sequence.
func TestAppendAfterCompactionStaysFramed(t *testing.T) {
	path := tmpJournal(t)
	j := mustOpen(t, path, Options{Fsync: FsyncOff, CompactMinBytes: 1})
	mustAppend(t, j, workload()...)
	mustAppend(t, j, Record{Type: TAsk, Session: "s2", Text: "post-compaction", HighlightStart: -1})
	j.Crash()
	data, _ := os.ReadFile(path)
	recs, _, err := ScanBytes(data)
	if err != nil {
		t.Fatalf("journal corrupt after compaction+append: %v", err)
	}
	last := recs[len(recs)-1]
	if last.Text != "post-compaction" {
		t.Errorf("last record = %+v", last)
	}
	if bytes.Contains(data, []byte("doomed")) {
		t.Error("dead session text still present after compaction")
	}
}
