package persist

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeeds are representative journal images: every record type, grounded
// and ungrounded feedback, multi-record streams, and an empty file.
func fuzzSeeds() [][]byte {
	var frames []byte
	for _, r := range []Record{
		{Type: TWatermark, ID: 9001, HighlightStart: -1},
		{Type: TCreate, Session: "s1", Corpus: "aep", DB: "experience_platform", ID: 1, HighlightStart: -1},
		{Type: TAsk, Session: "s1", Text: "How many audiences were created in January?", HighlightStart: -1},
		{Type: TFeedback, Session: "s1", Text: "we are in 2024", Highlight: "2023", HighlightStart: 57},
		{Type: TFeedback, Session: "s1", Text: "only the top 5", HighlightStart: -1},
		{Type: TDelete, Session: "s1", HighlightStart: -1},
		{Type: TCreate, Session: "s2", Corpus: "spider", DB: "concert_singer", HighlightStart: -1},
		{Type: TAsk, Session: "s2", Text: "日本語 · non-ASCII question £€", HighlightStart: -1},
		{Type: THandoff, Session: "s2", Text: "node-b", HighlightStart: -1},
	} {
		frames = appendFrame(frames, r)
	}
	return [][]byte{
		nil,
		frames,
		frames[:len(frames)-3], // torn tail
		appendFrame(nil, Record{Type: TDelete, Session: "", HighlightStart: -1}),
		{0, 0, 0, 0, 0, 0, 0, 0},       // zero-length frame with zero CRC
		{0xff, 0xff, 0xff, 0xff, 1, 2}, // implausible length, torn header
	}
}

// FuzzJournalDecode hardens the journal decoder against arbitrary file
// images: it must never panic, never claim more bytes than it was given,
// and every record it does accept must survive a re-encode/decode round
// trip (canonical-form idempotence — the property replay-based recovery
// rests on).
func FuzzJournalDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, ends, err := ScanBytes(data)
		if len(recs) != len(ends) {
			t.Fatalf("%d records but %d offsets", len(recs), len(ends))
		}
		prev := int64(0)
		for i, end := range ends {
			if end <= prev || end > int64(len(data)) {
				t.Fatalf("offset %d of record %d not monotonic within %d input bytes",
					end, i, len(data))
			}
			prev = end
		}
		if err == nil && prev != int64(len(data)) {
			t.Fatalf("clean scan consumed %d of %d bytes", prev, len(data))
		}
		for i, r := range recs {
			frame := appendFrame(nil, r)
			again, _, err := ScanBytes(frame)
			if err != nil || len(again) != 1 {
				t.Fatalf("record %d: re-encode did not scan back: %v", i, err)
			}
			if !reflect.DeepEqual(again[0], r) {
				t.Fatalf("record %d: round trip drifted:\nfirst:  %+v\nsecond: %+v", i, r, again[0])
			}
			// The accepted payload region must match its re-encoding when the
			// original used canonical varints; at minimum the decoded form is
			// stable, which the DeepEqual above asserts. Also pin that frames
			// self-describe their length.
			start := int64(0)
			if i > 0 {
				start = ends[i-1]
			}
			if int64(len(frame)) > ends[i]-start {
				t.Fatalf("record %d: canonical encoding (%d bytes) longer than source frame (%d)",
					i, len(frame), ends[i]-start)
			}
		}
		_ = bytes.MinRead
	})
}
