// Package persist is the durability layer of the serving stack: an
// append-only, CRC32-framed journal of session lifecycle events
// (create/ask/feedback/delete) from which a restarted server rebuilds its
// sessions by deterministic replay through the normal ask/feedback
// pipeline. No session state is serialized — the deterministic simulated
// model plus the plan cache and answer memo make re-deriving it cheaper and
// simpler than snapshotting it (see DESIGN.md "Durability").
//
// The file format is a sequence of length-prefixed frames (record.go). A
// crash can tear at most the frame being written; Open truncates the file
// at the first torn or corrupt frame instead of failing, so every turn
// acknowledged before the crash survives. Compaction rewrites the file with
// an id high-watermark frame followed by the records of live sessions,
// dropping deleted and evicted ones — the watermark keeps dead sessions'
// ids unreusable even after their create records are gone.
package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FsyncPolicy controls when appended records are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs at most once per Options.FsyncEvery from a
	// background ticker — the default: bounded data loss, negligible
	// per-request cost.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs before every Append returns: an acknowledged turn
	// is on disk, at the price of one fsync per mutating request.
	FsyncAlways
	// FsyncOff never syncs except on Close. Crash durability is then up to
	// the operating system's writeback.
	FsyncOff
)

// ParseFsyncPolicy maps the flag spellings to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("unknown fsync policy %q (want always, interval or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncOff:
		return "off"
	}
	return "interval"
}

// DefaultFsyncEvery is the interval-policy sync period.
const DefaultFsyncEvery = 100 * time.Millisecond

// DefaultCompactMinBytes is the dead-byte threshold at which the server's
// -journal-compact flag triggers an automatic rewrite by default.
const DefaultCompactMinBytes = 4 << 20

// Options configures Open.
type Options struct {
	// Fsync is the sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default DefaultFsyncEvery).
	FsyncEvery time.Duration
	// CompactMinBytes triggers an automatic compaction whenever at least
	// this many dead bytes (records of deleted/evicted sessions) have
	// accumulated in the file. <= 0 disables automatic compaction;
	// Checkpoint and Close still compact.
	CompactMinBytes int64
	// FsyncObserver, when set, receives the wall time of every fsync —
	// the wiring point for a latency histogram.
	FsyncObserver func(time.Duration)
}

// Stats are the journal's cumulative tallies, kept as always-on atomics so
// observability wiring can surface them without the journal importing the
// metrics package.
type Stats struct {
	// Records and Bytes count appends since Open (recovered records are not
	// re-counted).
	Records int64
	Bytes   int64
	// Fsyncs counts file syncs; Compactions counts file rewrites.
	Fsyncs      int64
	Compactions int64
	// TruncatedBytes is the size of the torn/corrupt tail Open dropped.
	TruncatedBytes int64
	// LiveSessions is the number of sessions with retained records.
	LiveSessions int64
}

// sessLog is one live session's retained records: the decoded form for
// replay, the framed form for compaction. seq orders sessions by first
// record so compaction and replay preserve creation order.
type sessLog struct {
	seq    uint64
	recs   []Record
	frames []byte // concatenated full frames
}

// Journal is a crash-safe session event log. All methods are safe for
// concurrent use; Append serializes on an internal mutex, so per-session
// record order follows the callers' happens-before order.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	opts Options

	live      map[string]*sessLog
	seenIDs   []string
	seq       uint64
	fileBytes int64 // bytes currently in the file
	liveBytes int64 // bytes of frames belonging to live sessions
	// watermark is the largest numeric session id seen in any TCreate or
	// TWatermark record. Compaction persists it as a TWatermark frame so it
	// survives the deletion of the create records that established it.
	watermark int64
	replay    []Record
	dirty     bool
	closed    bool
	// failed poisons the journal after a partial append the rollback could
	// not undo: a torn frame sits mid-file, so any further append would be
	// acknowledged yet unreachable by the scan at the next Open.
	failed error
	stop   chan struct{}
	done   chan struct{}

	// testWrite, when non-nil, replaces the file write in Append — the
	// fault-injection hook behind the torn-append rollback tests.
	testWrite func(f *os.File, b []byte) (int, error)

	records        atomic.Int64
	bytes          atomic.Int64
	fsyncs         atomic.Int64
	compactions    atomic.Int64
	truncatedBytes atomic.Int64
	liveSessions   atomic.Int64
}

// Open reads (or creates) the journal at path, truncating it at the first
// torn or corrupt frame, and returns it ready for appends. The surviving
// records of sessions without a delete record are available from Records
// for replay.
func Open(path string, opts Options) (*Journal, error) {
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = DefaultFsyncEvery
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("read journal: %w", err)
	}
	recs, ends, scanErr := ScanBytes(data)
	good := int64(0)
	if len(ends) > 0 {
		good = ends[len(ends)-1]
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("open journal: %w", err)
	}
	if scanErr != nil {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("seek journal: %w", err)
	}

	j := &Journal{
		f:         f,
		path:      path,
		opts:      opts,
		live:      map[string]*sessLog{},
		fileBytes: good,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	j.truncatedBytes.Store(int64(len(data)) - good)
	seen := map[string]bool{}
	prev := int64(0)
	for i, r := range recs {
		if r.Session != "" && !seen[r.Session] {
			seen[r.Session] = true
			j.seenIDs = append(j.seenIDs, r.Session)
		}
		j.trackLocked(r, data[prev:ends[i]])
		prev = ends[i]
	}
	for _, sl := range j.sessionsInOrder() {
		j.replay = append(j.replay, sl.recs...)
	}
	j.liveSessions.Store(int64(len(j.live)))
	if opts.Fsync == FsyncInterval {
		go j.syncLoop()
	} else {
		close(j.done)
	}
	return j, nil
}

// Records returns the recovered records of live sessions in replay order:
// sessions in creation order, each session's records in append order.
// Records of deleted sessions are already dropped. The slice is owned by
// the journal; callers must not mutate it.
func (j *Journal) Records() []Record { return j.replay }

// SessionsSeen returns every distinct session id that appeared anywhere in
// the scanned file, including sessions whose records were dropped by a
// delete. Recovery uses it to keep the id counter ahead of ids that dead
// sessions consumed — a fresh session must never reuse an id some client
// still holds.
func (j *Journal) SessionsSeen() []string { return j.seenIDs }

// Watermark returns the largest numeric session id the journal has ever
// recorded (TCreate IDs and persisted TWatermark frames). Unlike
// SessionsSeen it survives compaction, which drops deleted sessions'
// create records: recovery seeds the id counter from it so a compacted
// journal can never cause a dead session's id to be reissued.
func (j *Journal) Watermark() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.watermark
}

// trackLocked folds r into the live-session map. frame is r's full framed
// encoding.
func (j *Journal) trackLocked(r Record, frame []byte) {
	switch r.Type {
	case TWatermark:
		if r.ID > j.watermark {
			j.watermark = r.ID
		}
		return
	case TCreate:
		if r.ID > j.watermark {
			j.watermark = r.ID
		}
		j.seq++
		if old := j.live[r.Session]; old != nil {
			j.liveBytes -= int64(len(old.frames))
		}
		j.live[r.Session] = &sessLog{seq: j.seq}
		fallthrough
	case TAsk, TFeedback:
		sl := j.live[r.Session]
		if sl == nil {
			// No create on record (it was torn away or compacted after a
			// delete): the session cannot be replayed, don't retain.
			return
		}
		sl.recs = append(sl.recs, r)
		sl.frames = append(sl.frames, frame...)
		j.liveBytes += int64(len(frame))
	case TDelete, THandoff:
		// A handoff ends the session's residence here just like a delete;
		// the session's records now live in the target node's journal.
		if sl := j.live[r.Session]; sl != nil {
			j.liveBytes -= int64(len(sl.frames))
			delete(j.live, r.Session)
		}
	}
}

func (j *Journal) sessionsInOrder() []*sessLog {
	out := make([]*sessLog, 0, len(j.live))
	for _, sl := range j.live {
		out = append(out, sl)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].seq < out[b].seq })
	return out
}

// Append writes one record. With FsyncAlways the record is on stable
// storage when Append returns; the other policies only guarantee it is in
// the file. Append may compact the journal in-line when the configured
// dead-byte threshold is crossed.
func (j *Journal) Append(r Record) error {
	frame := appendFrame(nil, r)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal %s is closed", j.path)
	}
	if j.failed != nil {
		return fmt.Errorf("journal %s is failed: %w", j.path, j.failed)
	}
	write := (*os.File).Write
	if j.testWrite != nil {
		write = j.testWrite
	}
	if n, err := write(j.f, frame); err != nil {
		// A partial write (ENOSPC, I/O error) left a torn frame mid-file.
		// Roll the file back to the last good boundary: the scan at the next
		// Open stops at the first corrupt frame, so leaving the torn bytes
		// in place would make every later acknowledged append unrecoverable.
		// If the rollback itself fails, poison the journal — refusing
		// further appends is the only way to keep the append-before-ack
		// contract honest.
		if n > 0 {
			if terr := j.f.Truncate(j.fileBytes); terr != nil {
				j.failed = fmt.Errorf("rollback of torn append: %w (after %v)", terr, err)
			} else if _, serr := j.f.Seek(j.fileBytes, 0); serr != nil {
				j.failed = fmt.Errorf("rollback of torn append: %w (after %v)", serr, err)
			}
		}
		return fmt.Errorf("append journal record: %w", err)
	}
	j.fileBytes += int64(len(frame))
	j.dirty = true
	j.records.Add(1)
	j.bytes.Add(int64(len(frame)))
	j.trackLocked(r, frame)
	j.liveSessions.Store(int64(len(j.live)))
	if j.opts.Fsync == FsyncAlways {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	if min := j.opts.CompactMinBytes; min > 0 && j.fileBytes-j.liveBytes >= min {
		return j.compactLocked()
	}
	return nil
}

// SessionRecords returns a copy of one live session's retained records in
// append order, or nil when the session is not live. Cluster replication
// uses it to resync a session's full history to a fresh follower and to
// hand a session off to a new owner.
func (j *Journal) SessionRecords(id string) []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	sl := j.live[id]
	if sl == nil {
		return nil
	}
	return append([]Record(nil), sl.recs...)
}

// LiveSessions returns the ids of sessions with retained records, in
// creation order.
func (j *Journal) LiveSessions() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.live))
	for _, sl := range j.sessionsInOrder() {
		if len(sl.recs) > 0 {
			out = append(out, sl.recs[0].Session)
		}
	}
	return out
}

// Retain prunes the live-session map to the sessions keep reports true for
// — the server calls this after replay, when capacity eviction may have
// dropped sessions the journal still considers live.
func (j *Journal) Retain(keep func(id string) bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for id, sl := range j.live {
		if !keep(id) {
			j.liveBytes -= int64(len(sl.frames))
			delete(j.live, id)
		}
	}
	j.liveSessions.Store(int64(len(j.live)))
}

// Checkpoint rewrites the journal to contain exactly the live sessions'
// records and syncs it — the graceful-shutdown and post-recovery hook.
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal %s is closed", j.path)
	}
	return j.compactLocked()
}

// compactLocked writes the live frames to a temp file, syncs it and renames
// it over the journal. Caller holds j.mu.
func (j *Journal) compactLocked() error {
	tmpPath := j.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("compact journal: %w", err)
	}
	written := int64(0)
	if j.watermark > 0 {
		// The watermark frame leads every compacted file: the live sessions
		// below may no longer include the create record that issued the
		// highest id, and recovery must still never reissue it.
		n, err := tmp.Write(appendFrame(nil, Record{Type: TWatermark, ID: j.watermark}))
		written += int64(n)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("compact journal: %w", err)
		}
	}
	for _, sl := range j.sessionsInOrder() {
		n, err := tmp.Write(sl.frames)
		written += int64(n)
		if err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("compact journal: %w", err)
		}
	}
	if err := j.observedSync(tmp); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("compact journal: %w", err)
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("compact journal: %w", err)
	}
	// Best effort: persist the directory entry for the rename.
	if dir, err := os.Open(filepath.Dir(j.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	// tmp's handle now refers to the file living at j.path; keep appending
	// through it.
	j.f.Close()
	j.f = tmp
	j.fileBytes = written
	j.liveBytes = written
	j.dirty = false
	// The rewrite replaced the whole file, so a torn frame a failed append
	// left behind is gone with it — the journal is healthy again.
	j.failed = nil
	j.compactions.Add(1)
	return nil
}

func (j *Journal) observedSync(f *os.File) error {
	t0 := time.Now()
	err := f.Sync()
	if err == nil {
		j.fsyncs.Add(1)
		if obs := j.opts.FsyncObserver; obs != nil {
			obs(time.Since(t0))
		}
	}
	return err
}

func (j *Journal) syncLocked() error {
	if !j.dirty {
		return nil
	}
	if err := j.observedSync(j.f); err != nil {
		return fmt.Errorf("fsync journal: %w", err)
	}
	j.dirty = false
	return nil
}

// syncLoop is the FsyncInterval background ticker.
func (j *Journal) syncLoop() {
	defer close(j.done)
	t := time.NewTicker(j.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.mu.Lock()
			if !j.closed {
				_ = j.syncLocked()
			}
			j.mu.Unlock()
		}
	}
}

// Close checkpoints (compacts and syncs) the journal and closes it — the
// graceful-shutdown path. Further appends fail.
func (j *Journal) Close() error {
	j.stopLoop()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	err := j.compactLocked()
	j.closed = true
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash closes the file descriptor without checkpointing or syncing,
// leaving the file exactly as the append stream left it — the
// kill-and-restart simulation used by tests and the loadgen restart
// scenario.
func (j *Journal) Crash() error {
	j.stopLoop()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

func (j *Journal) stopLoop() {
	j.mu.Lock()
	select {
	case <-j.stop:
	default:
		close(j.stop)
	}
	j.mu.Unlock()
	<-j.done
}

// SetFsyncObserver installs (or replaces) the fsync latency observer —
// the server wires a histogram in after Open.
func (j *Journal) SetFsyncObserver(fn func(time.Duration)) {
	j.mu.Lock()
	j.opts.FsyncObserver = fn
	j.mu.Unlock()
}

// Stats reports the cumulative tallies.
func (j *Journal) Stats() Stats {
	return Stats{
		Records:        j.records.Load(),
		Bytes:          j.bytes.Load(),
		Fsyncs:         j.fsyncs.Load(),
		Compactions:    j.compactions.Load(),
		TruncatedBytes: j.truncatedBytes.Load(),
		LiveSessions:   j.liveSessions.Load(),
	}
}
