package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Type identifies a journal record. The numeric values are part of the
// on-disk format and must never be reassigned.
type Type byte

const (
	// TCreate opens a session: Session, Corpus and DB are set.
	TCreate Type = 1
	// TAsk records a successful ask turn: Text is the question.
	TAsk Type = 2
	// TFeedback records a successful feedback turn: Text is the feedback;
	// Highlight/HighlightStart carry the resolved grounding span
	// (HighlightStart is -1 when the turn had no highlight).
	TFeedback Type = 3
	// TDelete ends a session (explicit delete, LRU eviction or TTL expiry);
	// replay drops every earlier record of the session.
	TDelete Type = 4
	// TWatermark carries the id high-watermark (ID): the largest numeric
	// session id ever issued. Compaction writes one at the head of every
	// rewritten file so the watermark survives the deletion of the create
	// records that established it — recovery must never hand out an id some
	// client still holds, even for a session deleted and compacted away.
	TWatermark Type = 5
	// THandoff ends a session's residence on this node without ending the
	// session: ownership moved to the node named in Text (cluster drain or
	// rebalance). Replay treats it like TDelete — the session is gone from
	// here — but the distinct type records that the session lives on
	// elsewhere, which matters when auditing a journal.
	THandoff Type = 6
)

// Record is one session lifecycle event. Which fields are meaningful
// depends on Type; unused fields are empty ("" / -1 / 0).
type Record struct {
	Type    Type
	Session string

	// ID is the numeric session id the server issued (TCreate) or the id
	// high-watermark (TWatermark). Zero when the writer has no numeric id.
	ID int64

	// TCreate only.
	Corpus string
	DB     string

	// TAsk question, TFeedback text, or THandoff target node id.
	Text string

	// TFeedback grounding. HighlightStart is the byte offset of Highlight
	// in the SQL the feedback was given on, or -1 for no highlight.
	Highlight      string
	HighlightStart int
}

// Framing: every record is written as
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// A reader that finds a short frame, a CRC mismatch or an undecodable
// payload treats the file as ending at the last good frame — the torn-write
// contract: an interrupted append loses only the record being written.
const frameHeader = 8

// maxPayload bounds a single record. A length prefix above it is treated as
// corruption rather than an instruction to allocate gigabytes.
const maxPayload = 1 << 24

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodePayload serializes r without the frame header.
func encodePayload(b []byte, r Record) []byte {
	b = append(b, byte(r.Type))
	b = appendString(b, r.Session)
	switch r.Type {
	case TCreate:
		b = appendString(b, r.Corpus)
		b = appendString(b, r.DB)
		b = appendUvarint(b, uint64(r.ID))
	case TAsk:
		b = appendString(b, r.Text)
	case TFeedback:
		b = appendString(b, r.Text)
		if r.HighlightStart >= 0 {
			b = append(b, 1)
			b = appendString(b, r.Highlight)
			b = appendUvarint(b, uint64(r.HighlightStart))
		} else {
			b = append(b, 0)
		}
	case TDelete:
	case TWatermark:
		b = appendUvarint(b, uint64(r.ID))
	case THandoff:
		b = appendString(b, r.Text)
	}
	return b
}

// appendFrame serializes r as a full length+CRC frame.
func appendFrame(b []byte, r Record) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = encodePayload(b, r)
	payload := b[start+frameHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b
}

type payloadReader struct {
	b   []byte
	pos int
	err error
}

func (p *payloadReader) byte() byte {
	if p.err != nil {
		return 0
	}
	if p.pos >= len(p.b) {
		p.err = fmt.Errorf("payload truncated at byte %d", p.pos)
		return 0
	}
	c := p.b[p.pos]
	p.pos++
	return c
}

func (p *payloadReader) uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		p.err = fmt.Errorf("bad uvarint at byte %d", p.pos)
		return 0
	}
	p.pos += n
	return v
}

// int64 reads a uvarint that must fit a non-negative int64 — a larger
// value is corruption, not an id.
func (p *payloadReader) int64() int64 {
	v := p.uvarint()
	if p.err == nil && v > math.MaxInt64 {
		p.err = fmt.Errorf("id %d overflows int64", v)
		return 0
	}
	return int64(v)
}

func (p *payloadReader) string() string {
	n := p.uvarint()
	if p.err != nil {
		return ""
	}
	if n > uint64(len(p.b)-p.pos) {
		p.err = fmt.Errorf("string length %d exceeds remaining %d bytes", n, len(p.b)-p.pos)
		return ""
	}
	s := string(p.b[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s
}

// decodePayload parses one record payload. Trailing bytes, unknown types
// and malformed fields are errors: a payload either decodes exactly or the
// frame is corrupt.
func decodePayload(b []byte) (Record, error) {
	p := &payloadReader{b: b}
	r := Record{Type: Type(p.byte()), HighlightStart: -1}
	r.Session = p.string()
	switch r.Type {
	case TCreate:
		r.Corpus = p.string()
		r.DB = p.string()
		r.ID = p.int64()
	case TAsk:
		r.Text = p.string()
	case TFeedback:
		r.Text = p.string()
		switch p.byte() {
		case 0:
		case 1:
			r.Highlight = p.string()
			start := p.uvarint()
			if p.err == nil && start > maxPayload {
				return Record{}, fmt.Errorf("highlight start %d out of range", start)
			}
			r.HighlightStart = int(start)
		default:
			if p.err == nil {
				return Record{}, fmt.Errorf("bad highlight flag")
			}
		}
	case TDelete:
	case TWatermark:
		r.ID = p.int64()
	case THandoff:
		r.Text = p.string()
	default:
		if p.err == nil {
			return Record{}, fmt.Errorf("unknown record type %d", r.Type)
		}
	}
	if p.err != nil {
		return Record{}, p.err
	}
	if p.pos != len(b) {
		return Record{}, fmt.Errorf("%d trailing bytes after record", len(b)-p.pos)
	}
	return r, nil
}

// EncodeFrames serializes recs in the journal's on-disk frame format — the
// wire form of cluster journal replication. A receiver validates and decodes
// the stream with ScanBytes, so the bytes a follower appends are exactly the
// bytes the primary's journal holds.
func EncodeFrames(recs []Record) []byte {
	var b []byte
	for _, r := range recs {
		b = appendFrame(b, r)
	}
	return b
}

// ScanBytes decodes a journal image frame by frame. It returns the records
// that decoded cleanly and, aligned with them, the end offset of each frame.
// err describes the first torn or corrupt frame (nil when the image ends
// exactly on a frame boundary); the good prefix is always returned — this
// is the truncate-don't-fail recovery contract.
func ScanBytes(data []byte) (recs []Record, ends []int64, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < frameHeader {
			return recs, ends, fmt.Errorf("torn frame header at offset %d", off)
		}
		n := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxPayload {
			return recs, ends, fmt.Errorf("frame at offset %d: implausible length %d", off, n)
		}
		if uint32(len(data)-off-frameHeader) < n {
			return recs, ends, fmt.Errorf("torn frame at offset %d: %d payload bytes promised, %d present",
				off, n, len(data)-off-frameHeader)
		}
		payload := data[off+frameHeader : off+frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, ends, fmt.Errorf("frame at offset %d: CRC mismatch", off)
		}
		r, derr := decodePayload(payload)
		if derr != nil {
			return recs, ends, fmt.Errorf("frame at offset %d: %v", off, derr)
		}
		off += frameHeader + int(n)
		recs = append(recs, r)
		ends = append(ends, int64(off))
	}
	return recs, ends, nil
}
