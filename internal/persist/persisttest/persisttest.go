// Package persisttest is the shared byte-identity checker for journal
// recovery scenarios. The durability contract — every acknowledged turn
// survives a crash with a byte-identical /history body — is asserted by the
// single-node restart scenario (fisql-loadgen -restart), the cluster
// failover scenario (fisql-loadgen -cluster), and the server and cluster
// test suites. Before this package each of them carried its own capture-
// and-diff loop; drifting copies of the one assertion the whole durability
// story rests on is exactly the bug surface this package removes.
//
// The helpers are plain functions returning errors (no testing.TB), so the
// loadgen binary and the test suites share the identical checker.
package persisttest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// History fetches the raw /v1/sessions/{id}/history body for one session.
// A non-200 status is an error carrying the code, so callers can
// distinguish "session lost" (404) from transport trouble.
func History(client *http.Client, base, id string) ([]byte, error) {
	url := base + "/v1/sessions/" + id + "/history"
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("get %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("get %s: status %d", url, resp.StatusCode)
	}
	return body, nil
}

// Capture fetches the history body of every id, keyed by id — the pre-crash
// capture side of a recovery scenario.
func Capture(client *http.Client, base string, ids []string) (map[string][]byte, error) {
	out := make(map[string][]byte, len(ids))
	for _, id := range ids {
		body, err := History(client, base, id)
		if err != nil {
			return nil, fmt.Errorf("capture %s: %w", id, err)
		}
		out[id] = body
	}
	return out, nil
}

// DiffHistories re-fetches every captured session from base and compares it
// byte for byte against its capture. It returns one human-readable line per
// mismatch (fetch failure or body drift), in sorted id order, and nil when
// every history is byte-identical — the recovery acceptance check.
func DiffHistories(client *http.Client, base string, want map[string][]byte) []string {
	ids := make([]string, 0, len(want))
	for id := range want {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var diffs []string
	for _, id := range ids {
		got, err := History(client, base, id)
		if err != nil {
			diffs = append(diffs, fmt.Sprintf("session %s: %v", id, err))
			continue
		}
		if !bytes.Equal(got, want[id]) {
			diffs = append(diffs, fmt.Sprintf("session %s history differs:\npre:  %s\npost: %s",
				id, want[id], got))
		}
	}
	return diffs
}

// TurnsPrefix reports whether post preserves every turn of pre byte for
// byte, allowing post to carry additional trailing turns. This is the
// failover contract for a turn that was journaled and replicated but whose
// response was lost in the crash: the recovered history is either exactly
// the last acknowledged capture or that capture plus the in-flight turn —
// never a mutation of an acknowledged turn.
//
// History bodies have the fixed shape {"db":...,"turns":[...]}\n, so pre
// minus its closing "]}\n" must be a byte prefix of post, and the remainder
// of post must either close the array immediately or continue it with a
// comma-separated turn.
func TurnsPrefix(pre, post []byte) bool {
	const closing = "]}\n"
	if !bytes.HasSuffix(pre, []byte(closing)) {
		return false
	}
	head := pre[:len(pre)-len(closing)]
	if !bytes.HasPrefix(post, head) {
		return false
	}
	rest := post[len(head):]
	if bytes.Equal(rest, []byte(closing)) {
		return true
	}
	// Additional turns: ",{...}...]}\n" — or, when pre had no turns at all
	// (head ends with '['), the first turn starts without a comma.
	if len(rest) == 0 || !bytes.HasSuffix(rest, []byte(closing)) {
		return false
	}
	if rest[0] == ',' {
		return true
	}
	return len(head) > 0 && head[len(head)-1] == '[' && rest[0] == '{'
}
