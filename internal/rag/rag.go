// Package rag implements the retrieval-augmented demonstration selection of
// the Assistant: a TF-IDF vector index over the demonstration pool with
// cosine-similarity top-k search, filtered per database.
//
// The pool is served through a pluggable Index (see index.go): the exact
// index scans every posting list (the seed behavior), the HNSW index
// (hnsw.go) navigates an approximate-nearest-neighbor graph and hands its
// candidate set to an exact rerank, so retrieval cost stays near-flat as the
// pool grows. Either way the top-k that Search returns is computed by the
// same exact cosine scoring and pool-order tie-break, which is what makes
// the two indexes byte-identical on corpora the HNSW candidates cover (the
// retrieval differential gate holds this at zero misses).
//
// Unlike the seed store, a Store is mutable: Add folds new demonstrations —
// the serving path's successful feedback corrections — into the pool at any
// time, concurrently with searches.
package rag

import (
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode"

	"fisql/internal/dataset"
)

// posting is one (term, weight) entry of a normalized TF-IDF vector.
// Vectors are stored as term-sorted posting lists so cosine similarity is a
// linear merge-join instead of map probes over re-sorted keys per Search.
type posting struct {
	term string
	w    float64
}

// demoKey identifies a demonstration for insert deduplication.
type demoKey struct {
	db, question, sql string
}

// Store is a TF-IDF index over demonstrations. It is safe for concurrent
// use: Search takes a read lock and Add a write lock, so incremental inserts
// interleave with retrieval without ever exposing a partially-indexed entry.
//
// IDF weights are frozen at build time: demonstrations folded in later are
// vectorized against the build-time document frequencies (unseen terms get
// the build-time unseen-term weight). Re-deriving IDF per insert would
// silently re-weight every existing vector — an O(pool) rebuild per Add and
// a determinism hazard — so growing the pool never changes the score of any
// existing (query, demo) pair; a full NewStore rebuild refreshes IDF.
type Store struct {
	mu    sync.RWMutex
	demos []dataset.Demo
	vecs  [][]posting
	idf   map[string]float64
	// baseN is the pool size the IDF table was derived from; it also fixes
	// the unseen-term weight so query vectorization is independent of later
	// inserts.
	baseN int
	seen  map[demoKey]struct{}
	index Index

	searches atomic.Int64
	hits     atomic.Int64
	inserts  atomic.Int64
	dups     atomic.Int64
	// searchObs, when set, observes every Search's wall time (the serving
	// path's fisql_rag_search_seconds histogram).
	searchObs atomic.Value // func(time.Duration)
}

// Options configures a Store build.
type Options struct {
	// Index selects the retrieval index: IndexExact (default) or IndexHNSW.
	Index IndexKind
	// HNSW parameterizes the HNSW graph when Index is IndexHNSW; zero
	// fields take defaults.
	HNSW HNSWConfig
	// Workers bounds the build's worker pool (0 = GOMAXPROCS, 1 = serial).
	// The built store — document frequencies, IDF table and every vector —
	// is bit-identical at any worker count.
	Workers int
}

// Tokenize splits text into lowercase alphanumeric terms.
func Tokenize(text string) []string {
	return appendTokens(nil, text)
}

// appendTokens appends text's tokens to dst. Lowering happens per rune
// (identical to strings.ToLower, which applies unicode.ToLower rune-wise)
// so no lowered copy of the whole text is materialized.
func appendTokens(dst []string, text string) []string {
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			dst = append(dst, sb.String())
			sb.Reset()
		}
	}
	for _, r := range text {
		r = unicode.ToLower(r)
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return dst
}

// NewStore indexes the demonstration pool with the exact scan index and
// default build parallelism — the drop-in equivalent of the seed store.
func NewStore(demos []dataset.Demo) *Store {
	return NewStoreOptions(demos, Options{})
}

// NewStoreOptions indexes the demonstration pool. The tokenize/IDF/vector
// passes run on a worker pool; document frequencies merge by integer
// addition and each vector is a pure function of its demo and the merged
// IDF table, so the build is deterministic at any worker count. The index
// itself is populated serially in pool order, which keeps HNSW graph
// construction reproducible.
func NewStoreOptions(demos []dataset.Demo, opt Options) *Store {
	s := &Store{
		demos: demos,
		idf:   make(map[string]float64),
		baseN: len(demos),
		seen:  make(map[demoKey]struct{}, len(demos)),
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(demos) {
		workers = len(demos)
	}
	if workers < 1 {
		workers = 1
	}

	// Pass 1: tokenize every demo and count per-chunk document frequencies.
	// Each worker owns a disjoint demo range; the local df maps merge by
	// addition, so the merged counts are independent of chunking.
	tokenLists := make([][]string, len(demos))
	localDF := make([]map[string]int, workers)
	runChunks(len(demos), workers, func(w, lo, hi int) {
		df := make(map[string]int)
		seen := make(map[string]bool)
		for i := lo; i < hi; i++ {
			toks := Tokenize(demos[i].Question)
			tokenLists[i] = toks
			clear(seen)
			for _, t := range toks {
				if !seen[t] {
					seen[t] = true
					df[t]++
				}
			}
		}
		localDF[w] = df
	})
	df := map[string]int{}
	for _, ldf := range localDF {
		for t, c := range ldf {
			df[t] += c
		}
	}
	n := float64(len(demos)) + 1
	for t, d := range df {
		s.idf[t] = math.Log(n / (1 + float64(d)))
	}

	// Pass 2: build every vector. Slots are disjoint and each vector depends
	// only on its own token list plus the (now frozen) IDF table.
	s.vecs = make([][]posting, len(demos))
	runChunks(len(demos), workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			s.vecs[i] = s.vector(tokenLists[i])
		}
	})

	// Pass 3: populate the index serially in pool order (reproducible HNSW
	// builds) and the dedup set.
	switch opt.Index {
	case IndexHNSW:
		s.index = newHNSWIndex(opt.HNSW)
	default:
		s.index = newExactIndex()
	}
	for i, d := range demos {
		s.seen[demoKey{d.DB, d.Question, d.SQL}] = struct{}{}
		s.index.Insert(i, d.DB, s.vecs[i])
	}
	// A bulk build is the one moment the whole graph is known; let the index
	// settle its memory layout before serving (no-op for the exact scan).
	if o, ok := s.index.(interface{ optimize() }); ok {
		o.optimize()
	}
	return s
}

// runChunks splits [0, n) into one contiguous chunk per worker and runs fn
// on each concurrently. fn(w, lo, hi) owns demos [lo, hi).
func runChunks(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 || n == 0 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// vector builds a normalized TF-IDF posting list sorted by term.
// Accumulation follows sorted term order: floating-point sums depend on
// order, and map iteration order varies run to run, which would make
// equal-similarity ties — and thus retrieval results — nondeterministic.
func (s *Store) vector(toks []string) []posting {
	return s.vectorInto(nil, toks)
}

// vectorInto builds the vector into vec's backing array (the Search
// scratch); scores are bit-identical to an unpooled build because the
// postings are sorted before any floating-point accumulation.
func (s *Store) vectorInto(vec []posting, toks []string) []posting {
	tf := map[string]float64{}
	for _, t := range toks {
		tf[t]++
	}
	if vec == nil {
		vec = make([]posting, 0, len(tf))
	}
	for t, c := range tf {
		vec = append(vec, posting{term: t, w: c})
	}
	sort.Slice(vec, func(i, j int) bool { return vec[i].term < vec[j].term })
	var norm float64
	for i := range vec {
		idf, ok := s.idf[vec[i].term]
		if !ok {
			idf = math.Log(float64(s.baseN) + 1) // unseen term
		}
		vec[i].w *= idf
		norm += vec[i].w * vec[i].w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i].w /= norm
		}
	}
	return vec
}

// cosine merge-joins two term-sorted posting lists. Shared terms are visited
// in sorted term order — the same accumulation order the map-based
// implementation used, and TF-IDF weights are non-negative with absent terms
// contributing exactly +0.0 — so scores are bit-identical to it.
func cosine(a, b []posting) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].term == b[j].term:
			dot += a[i].w * b[j].w
			i++
			j++
		case a[i].term < b[j].term:
			i++
		default:
			j++
		}
	}
	return dot
}

// Result is one retrieval hit.
type Result struct {
	Demo  dataset.Demo
	Score float64
}

// queryScratch holds the per-Search temporaries — token list and query
// posting vector — so the serving path's hottest retrieval allocations are
// recycled across requests. The scratch never escapes: hits are built
// fresh, and qv is returned to the pool before Search returns.
type queryScratch struct {
	toks []string
	qv   []posting
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// Search returns the top-k demonstrations for the query, restricted to the
// given database (empty db means no restriction). Ties break by pool order
// for determinism. k <= 0 returns nil.
//
// The index supplies a candidate id set (the whole db partition for the
// exact index, an ANN neighborhood for HNSW); every candidate is then
// re-scored with the exact cosine and selected by the exact path's
// descending-score, pool-order-tie-break rule. Candidate ids arrive in
// ascending pool order, so whenever the candidate set covers the true
// top-k, the result — demos, scores and order — is byte-identical to an
// exact scan.
func (s *Store) Search(query, db string, k int) []Result {
	if k <= 0 {
		return nil
	}
	obsFn, _ := s.searchObs.Load().(func(time.Duration))
	var t0 time.Time
	if obsFn != nil {
		t0 = time.Now()
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	sc.toks = appendTokens(sc.toks[:0], query)

	s.mu.RLock()
	qv := s.vectorInto(sc.qv[:0], sc.toks)
	sc.qv = qv
	cands := s.index.Candidates(qv, db, k)
	// Bounded top-k selection: keep at most k hits, ordered by descending
	// score with pool order breaking ties. Inserting each new hit after all
	// entries scoring >= its score reproduces exactly what a stable
	// descending sort of all hits followed by truncation would keep, without
	// materializing or sorting the full hit list.
	hits := make([]Result, 0, k+1)
	for _, id := range cands {
		scr := cosine(qv, s.vecs[id])
		if scr <= 0 {
			continue
		}
		if len(hits) == k && hits[k-1].Score >= scr {
			continue
		}
		pos := len(hits)
		for pos > 0 && hits[pos-1].Score < scr {
			pos--
		}
		hits = append(hits, Result{})
		copy(hits[pos+1:], hits[pos:])
		hits[pos] = Result{Demo: s.demos[id], Score: scr}
		if len(hits) > k {
			hits = hits[:k]
		}
	}
	s.mu.RUnlock()

	s.searches.Add(1)
	if len(hits) > 0 {
		s.hits.Add(1)
	}
	if obsFn != nil {
		obsFn(time.Since(t0))
	}
	return hits
}

// Add folds one demonstration into the pool, immediately visible to
// concurrent searches. An exact (db, question, sql) duplicate — the common
// case when many sessions converge on the same correction — is skipped, so
// repeated folds cannot balloon the pool; the return value reports whether
// the demo was inserted.
func (s *Store) Add(d dataset.Demo) bool {
	key := demoKey{d.DB, d.Question, d.SQL}
	s.mu.Lock()
	if _, dup := s.seen[key]; dup {
		s.mu.Unlock()
		s.dups.Add(1)
		return false
	}
	s.seen[key] = struct{}{}
	id := len(s.demos)
	s.demos = append(s.demos, d)
	vec := s.vector(Tokenize(d.Question))
	s.vecs = append(s.vecs, vec)
	s.index.Insert(id, d.DB, vec)
	s.mu.Unlock()
	s.inserts.Add(1)
	return true
}

// Len reports the live pool size (base demonstrations plus folded inserts).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.demos)
}

// IndexKindName reports which index implementation serves this store.
func (s *Store) IndexKindName() string { return s.index.Kind() }

// SetSearchObserver installs fn to observe every Search's wall time (nil
// disables). Used by the serving path's retrieval latency histogram.
func (s *Store) SetSearchObserver(fn func(time.Duration)) {
	if fn == nil {
		s.searchObs = atomic.Value{}
		return
	}
	s.searchObs.Store(fn)
}

// Stats is a point-in-time snapshot of the store's always-on counters.
type Stats struct {
	// Entries is the live pool size; Base is the size at build time.
	Entries, Base int
	// Searches counts Search calls; Hits those that returned at least one
	// demonstration.
	Searches, Hits int64
	// Inserts counts successful Adds, DupSkips deduplicated ones.
	Inserts, DupSkips int64
	// Index names the index implementation; IndexProbes counts the searches
	// it actually served (the CI gate that HNSW is not silently bypassed).
	Index       string
	IndexProbes int64
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	entries := len(s.demos)
	base := s.baseN
	kind := s.index.Kind()
	probes := s.index.Probes()
	s.mu.RUnlock()
	return Stats{
		Entries:  entries,
		Base:     base,
		Searches: s.searches.Load(),
		Hits:     s.hits.Load(),
		Inserts:  s.inserts.Load(),
		DupSkips: s.dups.Load(),
		Index:    kind, IndexProbes: probes,
	}
}
