// Package rag implements the retrieval-augmented demonstration selection of
// the Assistant: a TF-IDF vector index over the demonstration pool with
// cosine-similarity top-k search, filtered per database.
package rag

import (
	"math"
	"sort"
	"strings"

	"fisql/internal/dataset"
)

// Store is an immutable TF-IDF index over demonstrations. It is safe for
// concurrent use: the index is built once by NewStore and Search touches
// only per-call state.
type Store struct {
	demos []dataset.Demo
	vecs  []map[string]float64
	idf   map[string]float64
}

// Tokenize splits text into lowercase alphanumeric terms.
func Tokenize(text string) []string {
	var toks []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			toks = append(toks, sb.String())
			sb.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return toks
}

// NewStore indexes the demonstration pool.
func NewStore(demos []dataset.Demo) *Store {
	s := &Store{demos: demos, idf: make(map[string]float64)}
	df := map[string]int{}
	tokenLists := make([][]string, len(demos))
	for i, d := range demos {
		toks := Tokenize(d.Question)
		tokenLists[i] = toks
		seen := map[string]bool{}
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(demos)) + 1
	for t, d := range df {
		s.idf[t] = math.Log(n / (1 + float64(d)))
	}
	s.vecs = make([]map[string]float64, len(demos))
	for i, toks := range tokenLists {
		s.vecs[i] = s.vector(toks)
	}
	return s
}

// vector builds a normalized TF-IDF vector. Accumulation follows sorted
// term order: floating-point sums depend on order, and map iteration order
// varies run to run, which would make equal-similarity ties — and thus
// retrieval results — nondeterministic.
func (s *Store) vector(toks []string) map[string]float64 {
	tf := map[string]float64{}
	for _, t := range toks {
		tf[t]++
	}
	terms := make([]string, 0, len(tf))
	for t := range tf {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	var norm float64
	for _, t := range terms {
		idf, ok := s.idf[t]
		if !ok {
			idf = math.Log(float64(len(s.demos)) + 1) // unseen term
		}
		tf[t] *= idf
		norm += tf[t] * tf[t]
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for _, t := range terms {
			tf[t] /= norm
		}
	}
	return tf
}

// cosine computes the dot product in sorted term order, for the same
// determinism reason as vector.
func cosine(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	terms := make([]string, 0, len(a))
	for t := range a {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	var dot float64
	for _, t := range terms {
		dot += a[t] * b[t]
	}
	return dot
}

// Result is one retrieval hit.
type Result struct {
	Demo  dataset.Demo
	Score float64
}

// Search returns the top-k demonstrations for the query, restricted to the
// given database (empty db means no restriction). Ties break by pool order
// for determinism. k <= 0 returns nil.
func (s *Store) Search(query, db string, k int) []Result {
	if k <= 0 {
		return nil
	}
	qv := s.vector(Tokenize(query))
	var hits []Result
	for i, d := range s.demos {
		if db != "" && d.DB != db {
			continue
		}
		sc := cosine(qv, s.vecs[i])
		if sc <= 0 {
			continue
		}
		hits = append(hits, Result{Demo: d, Score: sc})
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// Len reports the pool size.
func (s *Store) Len() int { return len(s.demos) }
