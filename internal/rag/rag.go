// Package rag implements the retrieval-augmented demonstration selection of
// the Assistant: a TF-IDF vector index over the demonstration pool with
// cosine-similarity top-k search, filtered per database.
package rag

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"fisql/internal/dataset"
)

// posting is one (term, weight) entry of a normalized TF-IDF vector.
// Vectors are stored as term-sorted posting lists so cosine similarity is a
// linear merge-join instead of map probes over re-sorted keys per Search.
type posting struct {
	term string
	w    float64
}

// Store is an immutable TF-IDF index over demonstrations. It is safe for
// concurrent use: the index is built once by NewStore and Search touches
// only per-call state.
type Store struct {
	demos []dataset.Demo
	vecs  [][]posting
	idf   map[string]float64
}

// Tokenize splits text into lowercase alphanumeric terms.
func Tokenize(text string) []string {
	return appendTokens(nil, text)
}

// appendTokens appends text's tokens to dst. Lowering happens per rune
// (identical to strings.ToLower, which applies unicode.ToLower rune-wise)
// so no lowered copy of the whole text is materialized.
func appendTokens(dst []string, text string) []string {
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			dst = append(dst, sb.String())
			sb.Reset()
		}
	}
	for _, r := range text {
		r = unicode.ToLower(r)
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return dst
}

// NewStore indexes the demonstration pool, precomputing each demo's sorted
// posting list once.
func NewStore(demos []dataset.Demo) *Store {
	s := &Store{demos: demos, idf: make(map[string]float64)}
	df := map[string]int{}
	tokenLists := make([][]string, len(demos))
	for i, d := range demos {
		toks := Tokenize(d.Question)
		tokenLists[i] = toks
		seen := map[string]bool{}
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	n := float64(len(demos)) + 1
	for t, d := range df {
		s.idf[t] = math.Log(n / (1 + float64(d)))
	}
	s.vecs = make([][]posting, len(demos))
	for i, toks := range tokenLists {
		s.vecs[i] = s.vector(toks)
	}
	return s
}

// vector builds a normalized TF-IDF posting list sorted by term.
// Accumulation follows sorted term order: floating-point sums depend on
// order, and map iteration order varies run to run, which would make
// equal-similarity ties — and thus retrieval results — nondeterministic.
func (s *Store) vector(toks []string) []posting {
	return s.vectorInto(nil, toks)
}

// vectorInto builds the vector into vec's backing array (the Search
// scratch); scores are bit-identical to an unpooled build because the
// postings are sorted before any floating-point accumulation.
func (s *Store) vectorInto(vec []posting, toks []string) []posting {
	tf := map[string]float64{}
	for _, t := range toks {
		tf[t]++
	}
	if vec == nil {
		vec = make([]posting, 0, len(tf))
	}
	for t, c := range tf {
		vec = append(vec, posting{term: t, w: c})
	}
	sort.Slice(vec, func(i, j int) bool { return vec[i].term < vec[j].term })
	var norm float64
	for i := range vec {
		idf, ok := s.idf[vec[i].term]
		if !ok {
			idf = math.Log(float64(len(s.demos)) + 1) // unseen term
		}
		vec[i].w *= idf
		norm += vec[i].w * vec[i].w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i].w /= norm
		}
	}
	return vec
}

// cosine merge-joins two term-sorted posting lists. Shared terms are visited
// in sorted term order — the same accumulation order the map-based
// implementation used, and TF-IDF weights are non-negative with absent terms
// contributing exactly +0.0 — so scores are bit-identical to it.
func cosine(a, b []posting) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].term == b[j].term:
			dot += a[i].w * b[j].w
			i++
			j++
		case a[i].term < b[j].term:
			i++
		default:
			j++
		}
	}
	return dot
}

// Result is one retrieval hit.
type Result struct {
	Demo  dataset.Demo
	Score float64
}

// queryScratch holds the per-Search temporaries — token list and query
// posting vector — so the serving path's hottest retrieval allocations are
// recycled across requests. The scratch never escapes: hits are built
// fresh, and qv is returned to the pool before Search returns.
type queryScratch struct {
	toks []string
	qv   []posting
}

var scratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

// Search returns the top-k demonstrations for the query, restricted to the
// given database (empty db means no restriction). Ties break by pool order
// for determinism. k <= 0 returns nil.
func (s *Store) Search(query, db string, k int) []Result {
	if k <= 0 {
		return nil
	}
	sc := scratchPool.Get().(*queryScratch)
	defer scratchPool.Put(sc)
	sc.toks = appendTokens(sc.toks[:0], query)
	qv := s.vectorInto(sc.qv[:0], sc.toks)
	sc.qv = qv
	// Bounded top-k selection: keep at most k hits, ordered by descending
	// score with pool order breaking ties. Inserting each new hit after all
	// entries scoring >= its score reproduces exactly what a stable
	// descending sort of all hits followed by truncation would keep, without
	// materializing or sorting the full hit list.
	hits := make([]Result, 0, k+1)
	for i, d := range s.demos {
		if db != "" && d.DB != db {
			continue
		}
		sc := cosine(qv, s.vecs[i])
		if sc <= 0 {
			continue
		}
		if len(hits) == k && hits[k-1].Score >= sc {
			continue
		}
		pos := len(hits)
		for pos > 0 && hits[pos-1].Score < sc {
			pos--
		}
		hits = append(hits, Result{})
		copy(hits[pos+1:], hits[pos:])
		hits[pos] = Result{Demo: d, Score: sc}
		if len(hits) > k {
			hits = hits[:k]
		}
	}
	return hits
}

// Len reports the pool size.
func (s *Store) Len() int { return len(s.demos) }
