package rag

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"fisql/internal/dataset"
)

// synthPool builds a deterministic pool of n demos spread over the given
// dbs, with questions drawn from a small vocabulary so similarity scores
// collide often — the hardest case for pool-order tie-breaks.
func synthPool(n int, dbs []string) []dataset.Demo {
	vocab := []string{
		"count", "list", "name", "age", "singer", "pet", "show", "average",
		"max", "min", "city", "country", "order", "concert", "stadium",
		"weight", "year", "many", "how", "all", "the", "of", "total",
		"distinct", "group", "top", "oldest", "youngest", "per", "each",
	}
	rng := rand.New(rand.NewSource(7))
	demos := make([]dataset.Demo, n)
	for i := range demos {
		words := 2 + rng.Intn(7)
		q := ""
		for w := 0; w < words; w++ {
			if w > 0 {
				q += " "
			}
			q += vocab[rng.Intn(len(vocab))]
		}
		demos[i] = dataset.Demo{
			DB:       dbs[rng.Intn(len(dbs))],
			Question: q,
			SQL:      fmt.Sprintf("SELECT %d", i),
		}
	}
	return demos
}

// assertSameResults fails unless the two result lists are byte-identical:
// same demos, same order, bit-equal scores.
func assertSameResults(t *testing.T, label string, exact, got []Result) {
	t.Helper()
	if !reflect.DeepEqual(exact, got) {
		t.Fatalf("%s: results diverge\nexact: %+v\ngot:   %+v", label, exact, got)
	}
}

// TestHNSWMatchesExactProperty is the property test of the byte-identity
// contract: on random pools, queries and k — including the empty-db filter,
// k larger than the pool and zero-score queries — HNSW plus exact rerank
// returns exactly what the linear scan returns. The generator is seeded, so
// the test is deterministic; pool sizes straddle the whole-partition
// fallback threshold so both the fallback and real graph traversal are
// exercised.
func TestHNSWMatchesExactProperty(t *testing.T) {
	vocab := []string{
		"count", "list", "name", "age", "singer", "pet", "show", "average",
		"max", "min", "city", "country", "order", "concert", "stadium",
	}
	dbs := []string{"a", "b", "c"}
	cfg := HNSWConfig{EfSearch: 64}
	f := func(poolSeed int64, querySeed int64) bool {
		rng := rand.New(rand.NewSource(poolSeed))
		n := rng.Intn(240) // 0..239: partitions land both sides of ef=64
		demos := make([]dataset.Demo, n)
		for i := range demos {
			words := 1 + rng.Intn(6)
			q := ""
			for w := 0; w < words; w++ {
				if w > 0 {
					q += " "
				}
				q += vocab[rng.Intn(len(vocab))]
			}
			demos[i] = dataset.Demo{DB: dbs[rng.Intn(len(dbs))], Question: q, SQL: fmt.Sprintf("SELECT %d", i)}
		}
		exact := NewStoreOptions(demos, Options{Index: IndexExact})
		hnsw := NewStoreOptions(demos, Options{Index: IndexHNSW, HNSW: cfg})

		qrng := rand.New(rand.NewSource(querySeed))
		for trial := 0; trial < 12; trial++ {
			words := qrng.Intn(6) // 0 words = empty query
			q := ""
			for w := 0; w < words; w++ {
				if w > 0 {
					q += " "
				}
				if qrng.Intn(8) == 0 {
					q += "unseenterm" // zero-score path: no shared vocabulary
				} else {
					q += vocab[qrng.Intn(len(vocab))]
				}
			}
			db := ""
			if qrng.Intn(3) > 0 {
				db = dbs[qrng.Intn(len(dbs))]
			}
			k := qrng.Intn(300) - 2 // includes k <= 0 and k > pool size
			if !reflect.DeepEqual(exact.Search(q, db, k), hnsw.Search(q, db, k)) {
				t.Logf("diverged: pool=%d q=%q db=%q k=%d", n, q, db, k)
				return false
			}
		}
		return true
	}
	cfgQ := &quick.Config{Rand: rand.New(rand.NewSource(99)), MaxCount: 40}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Error(err)
	}
}

// TestHNSWMatchesExactFixture pins the identity on the package's small
// fixture pool for every (query, db, k) combination used elsewhere.
func TestHNSWMatchesExactFixture(t *testing.T) {
	exact := NewStoreOptions(pool(), Options{Index: IndexExact})
	hnsw := NewStoreOptions(pool(), Options{Index: IndexHNSW})
	queries := []string{
		"How many singers are there?", "list the name of all singers",
		"how many pets", "zzzz qqqq", "", "singers age name list average",
	}
	for _, q := range queries {
		for _, db := range []string{"", "music", "pets", "nosuchdb"} {
			for _, k := range []int{-1, 0, 1, 2, 100} {
				assertSameResults(t, fmt.Sprintf("q=%q db=%q k=%d", q, db, k),
					exact.Search(q, db, k), hnsw.Search(q, db, k))
			}
		}
	}
	if hnsw.IndexKindName() != string(IndexHNSW) {
		t.Fatalf("index kind = %q", hnsw.IndexKindName())
	}
	if p := hnsw.Stats().IndexProbes; p == 0 {
		t.Fatal("hnsw index served no probes")
	}
}

// TestHNSWTraversalLargePool forces real graph traversal (pool well above
// ef) and checks identity plus the needle query.
func TestHNSWTraversalLargePool(t *testing.T) {
	demos := synthPool(900, []string{"db"})
	demos = append(demos, dataset.Demo{DB: "db", Question: "the special needle question", SQL: "SELECT 42"})
	cfg := HNSWConfig{EfSearch: 48}
	exact := NewStoreOptions(demos, Options{Index: IndexExact})
	hnsw := NewStoreOptions(demos, Options{Index: IndexHNSW, HNSW: cfg})
	hits := hnsw.Search("special needle", "db", 4)
	if len(hits) == 0 || hits[0].Demo.SQL != "SELECT 42" {
		t.Fatalf("needle not found: %+v", hits)
	}
	for _, d := range demos[:50] {
		assertSameResults(t, d.Question,
			exact.Search(d.Question, "db", 8), hnsw.Search(d.Question, "db", 8))
	}
}

// TestHNSWDeterministicBuild rebuilds the same pool (serial and parallel)
// and requires bit-identical search results: levels are seeded per insert
// and neighbor selection is tie-broken, so the graphs must agree.
func TestHNSWDeterministicBuild(t *testing.T) {
	demos := synthPool(400, []string{"x", "y"})
	a := NewStoreOptions(demos, Options{Index: IndexHNSW, Workers: 1})
	b := NewStoreOptions(demos, Options{Index: IndexHNSW, Workers: 8})
	for i := 0; i < 40; i++ {
		q := demos[i*7].Question
		assertSameResults(t, q, a.Search(q, "x", 6), b.Search(q, "x", 6))
		assertSameResults(t, q, a.Search(q, "", 6), b.Search(q, "", 6))
	}
}

// TestParallelBuildIdentity is the parallel-NewStore satellite's identity
// gate: document frequencies, IDF table and every vector must be
// bit-identical at any worker count.
func TestParallelBuildIdentity(t *testing.T) {
	demos := synthPool(1207, []string{"a", "b", "c", "d"})
	serial := NewStoreOptions(demos, Options{Workers: 1})
	for _, workers := range []int{2, 3, 8, 64} {
		par := NewStoreOptions(demos, Options{Workers: workers})
		if !reflect.DeepEqual(serial.idf, par.idf) {
			t.Fatalf("workers=%d: IDF tables diverge", workers)
		}
		if !reflect.DeepEqual(serial.vecs, par.vecs) {
			t.Fatalf("workers=%d: vectors diverge", workers)
		}
	}
}

// TestAddFoldsDemo checks the incremental path: an added demo is
// immediately retrievable, duplicates are skipped, and existing results are
// byte-identical before and after (frozen IDF: growing the pool must not
// re-weight anything).
func TestAddFoldsDemo(t *testing.T) {
	for _, kind := range []IndexKind{IndexExact, IndexHNSW} {
		t.Run(string(kind), func(t *testing.T) {
			s := NewStoreOptions(pool(), Options{Index: kind})
			before := s.Search("list the name of all singers", "music", 3)

			d := dataset.Demo{DB: "films", Question: "How many films were released?", SQL: "SELECT COUNT(*) FROM film"}
			if !s.Add(d) {
				t.Fatal("first Add returned false")
			}
			if s.Add(d) {
				t.Fatal("duplicate Add returned true")
			}
			if s.Len() != len(pool())+1 {
				t.Fatalf("Len = %d", s.Len())
			}
			hits := s.Search("how many films released", "films", 2)
			if len(hits) == 0 || hits[0].Demo.SQL != d.SQL {
				t.Fatalf("added demo not retrieved: %+v", hits)
			}
			after := s.Search("list the name of all singers", "music", 3)
			assertSameResults(t, "pre-existing results changed by Add", before, after)

			st := s.Stats()
			if st.Inserts != 1 || st.DupSkips != 1 || st.Entries != len(pool())+1 || st.Base != len(pool()) {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestAddMatchesRebuildOrder checks that incremental Adds keep the two
// indexes in agreement: a store grown by Add returns the same results as
// the exact store grown the same way.
func TestAddMatchesRebuildOrder(t *testing.T) {
	base := synthPool(300, []string{"db"})
	extra := synthPool(90, []string{"db"})[30:]
	exact := NewStoreOptions(base, Options{Index: IndexExact})
	hnsw := NewStoreOptions(base, Options{Index: IndexHNSW, HNSW: HNSWConfig{EfSearch: 48}})
	for i, d := range extra {
		d.Question = fmt.Sprintf("%s added %d", d.Question, i)
		d.SQL = fmt.Sprintf("SELECT %d + 1000", i)
		exact.Add(d)
		hnsw.Add(d)
	}
	for i := 0; i < 30; i++ {
		q := base[i*9].Question
		assertSameResults(t, q, exact.Search(q, "db", 8), hnsw.Search(q, "db", 8))
	}
}

// TestConcurrentAddSearch is the -race stress: concurrent Adds, Searches
// and Stats snapshots on both index kinds must be race-clean and converge
// to the right pool size.
func TestConcurrentAddSearch(t *testing.T) {
	for _, kind := range []IndexKind{IndexExact, IndexHNSW} {
		t.Run(string(kind), func(t *testing.T) {
			s := NewStoreOptions(synthPool(200, []string{"a", "b"}), Options{Index: kind})
			const writers, perWriter, readers = 4, 40, 4
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWriter; i++ {
						s.Add(dataset.Demo{
							DB:       "a",
							Question: fmt.Sprintf("concurrent question %d from writer %d", i, w),
							SQL:      fmt.Sprintf("SELECT %d, %d", w, i),
						})
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 60; i++ {
						s.Search("concurrent question count list", "a", 8)
						if i%10 == 0 {
							s.Stats()
						}
					}
				}(r)
			}
			wg.Wait()
			if got, want := s.Len(), 200+writers*perWriter; got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
			hits := s.Search("concurrent question 39 from writer 3", "a", 1)
			if len(hits) == 0 {
				t.Fatal("folded demo not retrievable after concurrent run")
			}
		})
	}
}

// TestHNSWLayer0Reachable walks layer 0 from the entry point and requires
// every node reachable: the beam search can only return what it can reach,
// so a disconnected graph would silently cap recall.
func TestHNSWLayer0Reachable(t *testing.T) {
	demos := synthPool(800, []string{"db"})
	s := NewStoreOptions(demos, Options{Index: IndexHNSW})
	h := s.index.(*hnswIndex)
	g := h.graphs["db"]
	if g == nil || len(g.ids) != len(demos) {
		t.Fatal("missing graph")
	}
	seen := make([]bool, len(g.ids))
	queue := []int32{g.entry}
	seen[g.entry] = true
	visited := 1
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nb := range g.neighbors(n, 0) {
			if !seen[nb] {
				seen[nb] = true
				visited++
				queue = append(queue, nb)
			}
		}
	}
	if visited != len(g.ids) {
		t.Fatalf("layer 0 reachable: %d of %d nodes", visited, len(g.ids))
	}
}

// TestParseIndexKind pins the flag-value mapping.
func TestParseIndexKind(t *testing.T) {
	for s, want := range map[string]IndexKind{"": IndexExact, "exact": IndexExact, "hnsw": IndexHNSW} {
		got, ok := ParseIndexKind(s)
		if !ok || got != want {
			t.Errorf("ParseIndexKind(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseIndexKind("annoy"); ok {
		t.Error("unknown kind accepted")
	}
}
