package rag

import "sync/atomic"

// IndexKind names an Index implementation.
type IndexKind string

const (
	// IndexExact scans every posting list in the db partition — the seed
	// behavior, exact by construction.
	IndexExact IndexKind = "exact"
	// IndexHNSW navigates a hierarchical navigable-small-world graph and
	// returns an approximate neighborhood for exact reranking.
	IndexHNSW IndexKind = "hnsw"
)

// ParseIndexKind maps a flag value to an IndexKind ("" means exact).
func ParseIndexKind(s string) (IndexKind, bool) {
	switch IndexKind(s) {
	case "", IndexExact:
		return IndexExact, true
	case IndexHNSW:
		return IndexHNSW, true
	}
	return "", false
}

// Index produces candidate demonstration ids for a query; the Store
// re-scores candidates exactly, so an Index only decides which ids are
// worth scoring. Implementations are called under the Store's lock — Insert
// under the write lock, Candidates under the read lock — so they need no
// locking of their own beyond atomic counters.
type Index interface {
	// Kind names the implementation (the Stats/CI "which path served this"
	// signal).
	Kind() string
	// Insert registers demonstration id (a dense pool index; ids arrive in
	// increasing order) with its database partition and TF-IDF vector. The
	// vector is shared with the Store and must not be mutated.
	Insert(id int, db string, vec []posting)
	// Candidates returns ids to re-score for the query, restricted to db
	// (empty db = all partitions), in ascending pool order so the Store's
	// insertion loop reproduces the exact scan's pool-order tie-break. The
	// returned slice may alias internal state and is valid only until the
	// caller releases the Store's read lock; callers must not mutate it.
	// k is the number of results the caller ultimately wants.
	Candidates(qv []posting, db string, k int) []int32
	// Probes counts Candidates calls actually served (the CI gate that the
	// requested index is not silently bypassed).
	Probes() int64
}

// exactIndex partitions ids by database and returns the whole partition,
// reproducing the seed's linear scan: the Store's rerank then *is* the
// exact Search.
type exactIndex struct {
	all    []int32
	byDB   map[string][]int32
	probes atomic.Int64
}

func newExactIndex() *exactIndex {
	return &exactIndex{byDB: make(map[string][]int32)}
}

func (x *exactIndex) Kind() string { return string(IndexExact) }

func (x *exactIndex) Insert(id int, db string, _ []posting) {
	x.all = append(x.all, int32(id))
	x.byDB[db] = append(x.byDB[db], int32(id))
}

func (x *exactIndex) Candidates(_ []posting, db string, _ int) []int32 {
	x.probes.Add(1)
	if db == "" {
		return x.all
	}
	return x.byDB[db]
}

func (x *exactIndex) Probes() int64 { return x.probes.Load() }
