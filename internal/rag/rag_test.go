package rag

import (
	"fmt"
	"testing"
	"testing/quick"

	"fisql/internal/dataset"
)

func pool() []dataset.Demo {
	return []dataset.Demo{
		{DB: "music", Question: "How many singers are there?", SQL: "SELECT COUNT(*) FROM singer"},
		{DB: "music", Question: "List the name of all singers.", SQL: "SELECT name FROM singer"},
		{DB: "music", Question: "What is the average age of the singers?", SQL: "SELECT AVG(age) FROM singer"},
		{DB: "pets", Question: "How many pets are there?", SQL: "SELECT COUNT(*) FROM pet"},
		{DB: "pets", Question: "List the weight of all pets.", SQL: "SELECT weight FROM pet"},
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("How many Singers are there? (2024)")
	want := []string{"how", "many", "singers", "are", "there", "2024"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestSearchFindsNearDuplicate(t *testing.T) {
	s := NewStore(pool())
	hits := s.Search("Tell me how many singers are there right now", "music", 2)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Demo.SQL != "SELECT COUNT(*) FROM singer" {
		t.Errorf("top hit: %+v", hits[0].Demo)
	}
}

func TestSearchRespectsDBFilter(t *testing.T) {
	s := NewStore(pool())
	for _, hit := range s.Search("how many pets are there", "pets", 5) {
		if hit.Demo.DB != "pets" {
			t.Errorf("hit from wrong db: %+v", hit.Demo)
		}
	}
	all := s.Search("how many are there", "", 10)
	dbs := map[string]bool{}
	for _, h := range all {
		dbs[h.Demo.DB] = true
	}
	if len(dbs) < 2 {
		t.Error("unfiltered search should span databases")
	}
}

func TestSearchK(t *testing.T) {
	s := NewStore(pool())
	if got := len(s.Search("singers", "music", 1)); got > 1 {
		t.Errorf("k=1 returned %d", got)
	}
	if got := len(s.Search("singers age name list average", "music", 100)); got > 3 {
		t.Errorf("more hits than music demos: %d", got)
	}
}

func TestSearchScoresDescending(t *testing.T) {
	s := NewStore(pool())
	hits := s.Search("list the name of all singers", "music", 5)
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("scores not descending: %v", hits)
		}
	}
}

func TestExactQuestionIsTopHit(t *testing.T) {
	s := NewStore(pool())
	for _, d := range pool() {
		hits := s.Search(d.Question, d.DB, 1)
		if len(hits) == 0 || hits[0].Demo.Question != d.Question {
			t.Errorf("exact question %q not top hit: %+v", d.Question, hits)
		}
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewStore(nil)
	if s.Len() != 0 {
		t.Error("empty store length")
	}
	if hits := s.Search("anything", "", 3); len(hits) != 0 {
		t.Errorf("hits from empty store: %v", hits)
	}
}

func TestNoSharedTermsNoHit(t *testing.T) {
	s := NewStore(pool())
	if hits := s.Search("zzzz qqqq wwww", "music", 3); len(hits) != 0 {
		t.Errorf("zero-similarity hits returned: %v", hits)
	}
}

func TestSearchDeterministic(t *testing.T) {
	s := NewStore(pool())
	a := s.Search("how many singers", "music", 3)
	b := s.Search("how many singers", "music", 3)
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i].Demo.Question != b[i].Demo.Question {
			t.Fatal("nondeterministic ordering")
		}
	}
}

func TestCosineBounds(t *testing.T) {
	// Cosine similarity of normalized vectors stays within [0, 1+eps].
	s := NewStore(pool())
	f := func(q string) bool {
		for _, hit := range s.Search(q, "", 10) {
			if hit.Score < 0 || hit.Score > 1.0001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLargePoolTopK(t *testing.T) {
	var demos []dataset.Demo
	for i := 0; i < 500; i++ {
		demos = append(demos, dataset.Demo{
			DB:       "db",
			Question: fmt.Sprintf("question number %d about topic %d", i, i%7),
			SQL:      "SELECT 1",
		})
	}
	demos = append(demos, dataset.Demo{DB: "db", Question: "the special needle question", SQL: "SELECT 42"})
	s := NewStore(demos)
	hits := s.Search("special needle", "db", 4)
	if len(hits) == 0 || hits[0].Demo.SQL != "SELECT 42" {
		t.Errorf("needle not found: %+v", hits)
	}
	if len(hits) > 4 {
		t.Errorf("k not respected: %d", len(hits))
	}
}

// Regression: k <= 0 used to slice with a negative bound (hits[:k]) and
// panic whenever any demonstration matched the query.
func TestSearchNonPositiveK(t *testing.T) {
	s := NewStore(pool())
	for _, k := range []int{0, -1, -8} {
		if hits := s.Search("how many singers are there", "", k); hits != nil {
			t.Errorf("k=%d: want nil, got %d hits", k, len(hits))
		}
	}
}
