package rag

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// HNSW over TF-IDF posting lists.
//
// The index keeps one hierarchical navigable-small-world graph per database
// partition (demonstrations are only ever searched within a db, or across
// all dbs, never across an arbitrary subset). Distance is 1 - cosine, which
// is a proper dissimilarity in [0, 1] for the store's non-negative
// normalized vectors. Builds are reproducible: a node's level is a pure
// function of the config seed and its pool id (splitmix64), neighbor
// selection breaks distance ties by node order, and the Store populates the
// index serially in pool order — so the same pool and config always produce
// the same graph, and therefore the same candidate sets.
//
// When a partition holds no more nodes than the effective ef, graph
// navigation cannot beat — or even match — a straight scan of the
// partition, so Candidates returns the whole partition. That keeps small
// corpora structurally exact (the candidate set IS the exact scan's) and
// reserves graph traversal for the pools where it pays.

// HNSWConfig parameterizes the graph. Zero values take the defaults.
type HNSWConfig struct {
	// M is the neighbor budget per node per layer (layer 0 keeps 2M).
	M int
	// EfConstruction is the candidate-list width while inserting.
	EfConstruction int
	// EfSearch is the candidate-list width while searching; the effective
	// width is max(EfSearch, k). Larger ef = better recall, more distance
	// evaluations.
	EfSearch int
	// EfDescent is the beam width kept through the upper layers on the way
	// to layer 0. Zero takes max(M, 8), capped by the effective ef.
	EfDescent int
	// Seed drives the deterministic per-insert level assignment.
	Seed uint64
}

// Default HNSW parameters. DefaultEfSearch is sized so both benchmark
// corpora at 1x (largest partition: aep, 103 demos) fall under the
// whole-partition fallback — retrieval is structurally byte-identical to
// the exact scan there — while scaled pools traverse the graph.
const (
	DefaultM              = 16
	DefaultEfConstruction = 200
	DefaultEfSearch       = 128
	defaultSeed           = 0x9E3779B97F4A7C15
	maxLevel              = 24
)

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 0 {
		c.M = DefaultM
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = DefaultEfConstruction
	}
	if c.EfSearch <= 0 {
		c.EfSearch = DefaultEfSearch
	}
	if c.Seed == 0 {
		c.Seed = defaultSeed
	}
	return c
}

// ipost is an index-internal posting: the term interned to a dense int32 id
// and the weight narrowed to float32. Traversal evaluates hundreds of
// distances per search and at large pools every one is a cold memory
// access, so the representation is sized for cache lines, not precision:
// id compares are several times cheaper than term-string compares. Queries
// stay in this paired form (they are tiny and L1-resident); stored node
// vectors are split into separate term-id and weight arenas — see
// hnswGraph. The narrowed weights only steer the graph walk — the exact
// rerank in Store.Search re-scores every candidate with the string-keyed
// float64 cosine, so byte-identity of results never depends on this
// representation.
type ipost struct {
	t int32
	w float32
}

// hnswIndex implements Index with one graph per database partition.
type hnswIndex struct {
	cfg    HNSWConfig
	terms  map[string]int32 // term -> interned id, first-seen insert order
	graphs map[string]*hnswGraph
	probes atomic.Int64
	// scratch pools the per-search visited set and heaps so steady-state
	// searches allocate only their result slice.
	scratch sync.Pool
}

// hnswGraph is one partition's multi-layer graph. Node numbers are dense
// per-graph; ids maps them back to pool ids (ascending, since inserts
// arrive in pool order).
//
// Node vectors live in contiguous arenas rather than a per-node slice
// table: a distance evaluation costs one dense offset lookup plus one
// sequential read of the postings, instead of three dependent cache misses
// (pool-id table, slice header, scattered data). Term ids and weights are
// split into parallel arenas (structure-of-arrays): the merge-join streams
// term ids on every step but loads a weight only on the rare id match, so
// the bytes a distance evaluation actually touches are nearly halved
// versus interleaved postings. Layer-0 adjacency — read on every beam
// expansion — is likewise a fixed-stride arena instead of per-node slices.
// At a 100k-node pool the walk is memory-bound, and this layout is most of
// its speed: the hot state (term ids + layer-0 edges) for the benchmark
// corpora at 1000x fits in a large L3 where the nested-slice form does not
// come close.
type hnswGraph struct {
	ids     []int32
	levels  []int32
	tarena  []int32   // fixed-stride node vector term ids, padTerm-padded
	warena  []float32 // matching weights (0 at pads)
	vstride int32     // postings per arena block; grows (with a rebuild) when a longer vector arrives
	stride  int32     // layer-0 neighbor capacity per node (2M)
	nbr0    []int32 // fixed-stride layer-0 adjacency arena
	len0    []int32 // node -> live entries in its nbr0 block
	// upper[node][l-1] lists the node's neighbors at layer l >= 1; only
	// ~1/M of nodes have upper layers, so these stay as plain slices.
	upper  map[int32][][]int32
	entry  int32
	maxLvl int32
}

// padTerm fills the tail of fixed-stride vector blocks. It is larger than
// any real interned id, so the merge-joins skip pads for free (a pad can
// only meet another pad, contributing +0).
const padTerm = math.MaxInt32

func (g *hnswGraph) vecT(node int32) []int32 {
	return g.tarena[node*g.vstride : (node+1)*g.vstride]
}

func (g *hnswGraph) vecW(node int32) []float32 {
	return g.warena[node*g.vstride : (node+1)*g.vstride]
}

func (g *hnswGraph) neighbors(node, l int32) []int32 {
	if l == 0 {
		s := node * g.stride
		return g.nbr0[s : s+g.len0[node]]
	}
	return g.upper[node][l-1]
}

func newHNSWIndex(cfg HNSWConfig) *hnswIndex {
	h := &hnswIndex{
		cfg:    cfg.withDefaults(),
		terms:  make(map[string]int32),
		graphs: make(map[string]*hnswGraph),
	}
	h.scratch.New = func() any { return new(searchScratch) }
	return h
}

// intern appends the term-sorted posting list to g's arenas as an
// id-sorted, padTerm-padded fixed-stride block, returning the interned
// vector in paired form for use as the insert-time query. New terms get
// the next id (inserts run serially in pool order, so the assignment is
// deterministic). A vector longer than the current stride triggers a
// rebuild of the arenas at the new stride — the stride is "longest vector
// so far", a deterministic function of the insert stream, so rebuilt and
// incrementally-grown graphs are identical.
func (h *hnswIndex) intern(g *hnswGraph, vec []posting) []ipost {
	iv := make([]ipost, 0, len(vec))
	for _, p := range vec {
		tid, ok := h.terms[p.term]
		if !ok {
			tid = int32(len(h.terms))
			h.terms[p.term] = tid
		}
		iv = append(iv, ipost{tid, float32(p.w)})
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].t < iv[j].t })
	if n := int32(len(iv)); n > g.vstride {
		oldT, oldW := g.tarena, g.warena
		nodes := int32(0)
		if g.vstride > 0 {
			nodes = int32(len(oldT)) / g.vstride
		}
		g.tarena = make([]int32, 0, (nodes+1)*n)
		g.warena = make([]float32, 0, (nodes+1)*n)
		for i := int32(0); i < nodes; i++ {
			g.tarena = append(g.tarena, oldT[i*g.vstride:(i+1)*g.vstride]...)
			g.warena = append(g.warena, oldW[i*g.vstride:(i+1)*g.vstride]...)
			for j := g.vstride; j < n; j++ {
				g.tarena = append(g.tarena, padTerm)
				g.warena = append(g.warena, 0)
			}
		}
		g.vstride = n
	}
	for _, p := range iv {
		g.tarena = append(g.tarena, p.t)
		g.warena = append(g.warena, p.w)
	}
	for j := int32(len(iv)); j < g.vstride; j++ {
		g.tarena = append(g.tarena, padTerm)
		g.warena = append(g.warena, 0)
	}
	return iv
}

// internQuery converts a query vector, dropping terms the index has never
// seen: they cannot match any stored posting, and the weights (normalized
// against the full query norm) are kept, so the dot product over the
// remaining terms is the stored-vector cosine up to float32 rounding.
func (h *hnswIndex) internQuery(qv []posting, buf []ipost) []ipost {
	iq := buf[:0]
	for _, p := range qv {
		if tid, ok := h.terms[p.term]; ok {
			iq = append(iq, ipost{tid, float32(p.w)})
		}
	}
	sort.Slice(iq, func(i, j int) bool { return iq[i].t < iq[j].t })
	return iq
}

// idot merge-joins an id-sorted paired query against a node's arena block,
// accumulating in float64. The weight stream dw is only dereferenced on an
// id match, so a non-matching evaluation touches term-id cache lines alone.
func idot(q []ipost, dt []int32, dw []float32) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(q) && j < len(dt) {
		switch {
		case q[i].t == dt[j]:
			dot += float64(q[i].w) * float64(dw[j])
			i++
			j++
		case q[i].t < dt[j]:
			i++
		default:
			j++
		}
	}
	return dot
}

// idotNN merge-joins two nodes' arena blocks.
func idotNN(at []int32, aw []float32, bt []int32, bw []float32) float64 {
	var dot float64
	i, j := 0, 0
	for i < len(at) && j < len(bt) {
		switch {
		case at[i] == bt[j]:
			if at[i] == padTerm {
				return dot
			}
			dot += float64(aw[i]) * float64(bw[j])
			i++
			j++
		case at[i] < bt[j]:
			i++
		default:
			j++
		}
	}
	return dot
}

func (h *hnswIndex) Kind() string { return string(IndexHNSW) }

func (h *hnswIndex) Probes() int64 { return h.probes.Load() }

// nodeDist pairs a graph node with its distance to the current query.
type nodeDist struct {
	node int32
	dist float64
}

// closer is the index's total order on (distance, node): distance first,
// node number breaking ties, so every selection step is deterministic.
func closer(a, b nodeDist) bool {
	return a.dist < b.dist || (a.dist == b.dist && a.node < b.node)
}

// splitmix64 is the SplitMix64 mixer — a bijective avalanche over uint64.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// levelFor draws the node's top layer from the standard exponential level
// distribution (mean 1/ln M), seeded per insert id so rebuilding the same
// pool reproduces the same graph.
func levelFor(seed uint64, id int, m int) int32 {
	x := splitmix64(seed ^ (uint64(id) + 1))
	u := float64(x>>11) / (1 << 53) // uniform [0, 1)
	lvl := int32(-math.Log(1-u) / math.Log(float64(m)))
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

func (h *hnswIndex) dist(q []ipost, g *hnswGraph, node int32) float64 {
	return 1 - idot(q, g.vecT(node), g.vecW(node))
}

// ndist is the node-node distance used at build time.
func (h *hnswIndex) ndist(g *hnswGraph, a, b int32) float64 {
	return 1 - idotNN(g.vecT(a), g.vecW(a), g.vecT(b), g.vecW(b))
}

// Insert adds pool id with its vector to the db partition's graph: greedy
// descent through the upper layers, then an efConstruction-wide beam search
// per layer from the node's own level down, linking to the closest M
// results bidirectionally and pruning any neighbor list that overflows its
// budget back to the closest entries.
func (h *hnswIndex) Insert(id int, db string, vec []posting) {
	g := h.graphs[db]
	if g == nil {
		g = &hnswGraph{
			stride: int32(2 * h.cfg.M),
			upper:  make(map[int32][][]int32),
		}
		h.graphs[db] = g
	}
	node := int32(len(g.ids))
	lvl := levelFor(h.cfg.Seed, id, h.cfg.M)
	g.ids = append(g.ids, int32(id))
	g.levels = append(g.levels, lvl)
	g.nbr0 = append(g.nbr0, make([]int32, g.stride)...)
	g.len0 = append(g.len0, 0)
	if lvl > 0 {
		g.upper[node] = make([][]int32, lvl)
	}
	ivec := h.intern(g, vec)
	if node == 0 {
		g.entry, g.maxLvl = 0, lvl
		return
	}

	sc := h.scratch.Get().(*searchScratch)
	defer h.scratch.Put(sc)

	eps := []nodeDist{{g.entry, h.dist(ivec, g, g.entry)}}
	for l := g.maxLvl; l > lvl; l-- {
		eps[0] = h.greedy(g, ivec, eps[0], l)
	}
	for l := min(lvl, g.maxLvl); l >= 0; l-- {
		found := h.searchLayer(g, ivec, eps, h.cfg.EfConstruction, l, sc)
		sel := h.selectNeighbors(g, found, h.cfg.M)
		budget := h.cfg.M
		if l == 0 {
			budget = 2 * h.cfg.M
		}
		for _, f := range sel {
			h.addLink(g, node, f.node, l, budget)
			h.addLink(g, f.node, node, l, budget)
		}
		// Carry the whole result set down as the next layer's entry points
		// (the paper's Algorithm 1) — a single entry point funnels the next
		// beam into one basin.
		eps = append(eps[:0], found...)
	}
	if lvl > g.maxLvl {
		g.entry, g.maxLvl = node, lvl
	}
}

// selectNeighbors is the HNSW paper's neighbor-selection heuristic
// (Algorithm 4): walk the candidates closest-first, keeping one only if it
// is closer to the base than to every neighbor already kept. On clustered
// data — and a demonstration pool grown from user corrections is exactly
// that: dozens of near-rephrasings per question — the plain
// "keep the m closest" rule wires tight near-duplicate cliques with no
// edges out, and the beam search gets trapped inside the wrong cluster.
// The heuristic spends part of the budget on spread, keeping the graph
// navigable across clusters. Skipped candidates backfill any unused budget
// (the paper's keepPrunedConnections), preserving degree and connectivity.
func (h *hnswIndex) selectNeighbors(g *hnswGraph, cands []nodeDist, m int) []nodeDist {
	if len(cands) <= m {
		return cands
	}
	sel := make([]nodeDist, 0, m)
	var skipped []nodeDist
	for _, c := range cands {
		if len(sel) == m {
			break
		}
		diverse := true
		for _, s := range sel {
			if h.ndist(g, c.node, s.node) < c.dist {
				diverse = false
				break
			}
		}
		if diverse {
			sel = append(sel, c)
		} else {
			skipped = append(skipped, c)
		}
	}
	for _, c := range skipped {
		if len(sel) == m {
			break
		}
		sel = append(sel, c)
	}
	return sel
}

// addLink appends nb to node's layer-l neighbor list. A list already at its
// budget is re-selected over the old entries plus nb with the same diversity
// heuristic used at link time, keyed by the node's own vector — the
// fixed-stride layer-0 arena never overflows its block.
func (h *hnswIndex) addLink(g *hnswGraph, node, nb, l int32, budget int) {
	if l == 0 {
		if int(g.len0[node]) < budget {
			g.nbr0[node*g.stride+g.len0[node]] = nb
			g.len0[node]++
			return
		}
	} else {
		if list := g.upper[node][l-1]; len(list) < budget {
			g.upper[node][l-1] = append(list, nb)
			return
		}
	}
	list := g.neighbors(node, l)
	nds := make([]nodeDist, 0, len(list)+1)
	for _, x := range list {
		nds = append(nds, nodeDist{x, h.ndist(g, node, x)})
	}
	nds = append(nds, nodeDist{nb, h.ndist(g, node, nb)})
	sort.Slice(nds, func(i, j int) bool { return closer(nds[i], nds[j]) })
	sel := h.selectNeighbors(g, nds, budget)
	if l == 0 {
		s := node * g.stride
		for i, nd := range sel {
			g.nbr0[s+int32(i)] = nd.node
		}
		g.len0[node] = int32(len(sel))
	} else {
		out := g.upper[node][l-1][:0]
		for _, nd := range sel {
			out = append(out, nd.node)
		}
		g.upper[node][l-1] = out
	}
}

// greedy hill-climbs layer l from ep to a local distance minimum. Only
// strict improvements move, so it terminates and is deterministic under the
// fixed neighbor-list order.
func (h *hnswIndex) greedy(g *hnswGraph, q []ipost, ep nodeDist, l int32) nodeDist {
	for {
		improved := false
		for _, nb := range g.neighbors(ep.node, l) {
			if d := h.dist(q, g, nb); d < ep.dist {
				ep = nodeDist{nb, d}
				improved = true
			}
		}
		if !improved {
			return ep
		}
	}
}

// searchLayer is the ef-bounded best-first search of layer l from the given
// entry points: expand the closest unexpanded candidate, keep the ef best
// results, stop when the closest candidate is farther than the worst kept
// result. Returns the results sorted closest-first; the slice aliases sc
// and is valid until the next searchLayer call with the same scratch (eps
// may alias the previous call's result — it is consumed before the scratch
// is rewritten). When ef is at least the partition size the beam never
// evicts, so the search visits the entry points' entire connected
// component.
func (h *hnswIndex) searchLayer(g *hnswGraph, q []ipost, eps []nodeDist, ef int, l int32, sc *searchScratch) []nodeDist {
	sc.visited.reset(len(g.ids))
	sc.cand.reset(false)
	sc.res.reset(true)
	for _, ep := range eps {
		if !sc.visited.visit(ep.node) {
			continue
		}
		sc.cand.push(ep)
		sc.res.push(ep)
		if sc.res.len() > ef {
			sc.res.pop()
		}
	}
	for sc.cand.len() > 0 {
		c := sc.cand.pop()
		if c.dist > sc.res.top().dist {
			break
		}
		// Expand in two passes: collect the unvisited neighbors, then score
		// them in a loop whose iterations are independent. At large pools a
		// distance evaluation is a cold cache access; the dependency-free
		// scoring loop lets the CPU overlap those misses instead of
		// serializing each behind the previous neighbor's heap bookkeeping.
		batch := sc.batch[:0]
		for _, nb := range g.neighbors(c.node, l) {
			if sc.visited.visit(nb) {
				batch = append(batch, nb)
			}
		}
		sc.batch = batch
		bdist := sc.bdist[:0]
		for _, nb := range batch {
			bdist = append(bdist, h.dist(q, g, nb))
		}
		sc.bdist = bdist
		for i, nb := range batch {
			nd := nodeDist{nb, bdist[i]}
			if sc.res.len() < ef || closer(nd, sc.res.top()) {
				sc.cand.push(nd)
				sc.res.push(nd)
				if sc.res.len() > ef {
					sc.res.pop()
				}
			}
		}
	}
	// Drain the max-heap back to front for a closest-first result list.
	out := sc.out[:0]
	for sc.res.len() > 0 {
		out = append(out, sc.res.pop())
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	sc.out = out
	return out
}

// Candidates returns the ANN neighborhood of the query in ascending pool
// order: greedy descent to layer 0 followed by an ef-wide beam search, per
// partition (all partitions when db is empty). Partitions no larger than
// the effective ef are returned whole — see the package comment on the
// exact-fallback contract.
func (h *hnswIndex) Candidates(qv []posting, db string, k int) []int32 {
	h.probes.Add(1)
	ef := max(h.cfg.EfSearch, k)
	sc := h.scratch.Get().(*searchScratch)
	defer h.scratch.Put(sc)
	iq := h.internQuery(qv, sc.iq)
	sc.iq = iq[:0]
	if db != "" {
		g := h.graphs[db]
		if g == nil {
			return nil
		}
		return h.searchGraph(g, iq, ef, nil, sc)
	}
	var out []int32
	for _, g := range h.graphs {
		out = h.searchGraph(g, iq, ef, out, sc)
	}
	// Map iteration order is random; ascending pool order restores
	// determinism and the rerank's pool-order tie-break.
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (h *hnswIndex) searchGraph(g *hnswGraph, q []ipost, ef int, out []int32, sc *searchScratch) []int32 {
	if len(g.ids) == 0 {
		return out
	}
	if len(g.ids) <= ef {
		// The beam could not evict anything: a graph walk would visit the
		// whole partition the slow way. Hand back the partition, restoring
		// ascending pool order (node order is BFS order after optimize).
		base := len(out)
		out = append(out, g.ids...)
		part := out[base:]
		sort.Slice(part, func(i, j int) bool { return part[i] < part[j] })
		return out
	}
	// Beam descent: keep a small multi-point frontier through the upper
	// layers instead of a single greedy walker. One entry point funnels the
	// layer-0 beam into whichever basin the walker happened to land in —
	// with clustered pools (near-duplicate demonstrations) that basin is
	// often a tight wrong-cluster clique the beam then cannot leave. A
	// frontier of descentEf seeds keeps several basins alive until layer 0
	// adjudicates them with the full ef.
	descentEf := h.cfg.EfDescent
	if descentEf <= 0 {
		descentEf = max(h.cfg.M, 8)
	}
	descentEf = min(ef, descentEf)
	eps := []nodeDist{{g.entry, h.dist(q, g, g.entry)}}
	for l := g.maxLvl; l > 0; l-- {
		eps = h.searchLayer(g, q, eps, descentEf, l, sc)
	}
	found := h.searchLayer(g, q, eps, ef, 0, sc)
	base := len(out)
	for _, nd := range found {
		out = append(out, g.ids[nd.node])
	}
	part := out[base:]
	sort.Slice(part, func(i, j int) bool { return part[i] < part[j] })
	return out
}

// optimize renumbers every graph's nodes into breadth-first order from the
// entry point over layer 0. Beam expansion reads a node's neighbors and
// then their vectors; BFS order places a neighborhood's arena blocks on
// adjacent cache lines and pages, so the expansion's scattered reads turn
// into near-sequential ones the prefetcher can cover. The permutation is a
// pure function of the built graph (FIFO queue, neighbor lists in stored
// order, unreached nodes appended in node order), so optimized builds are
// as reproducible as the construction itself. Called once after a bulk
// build; later incremental inserts simply append past the ordered prefix.
func (h *hnswIndex) optimize() {
	for _, g := range h.graphs {
		reorderGraph(g)
	}
}

func reorderGraph(g *hnswGraph) {
	n := int32(len(g.ids))
	if n == 0 {
		return
	}
	order := make([]int32, 0, n) // new node -> old node
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, g.entry)
	seen[g.entry] = true
	for qi := 0; qi < len(queue); qi++ {
		x := queue[qi]
		order = append(order, x)
		for _, nb := range g.neighbors(x, 0) {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for x := int32(0); x < n; x++ {
		if !seen[x] {
			order = append(order, x)
		}
	}
	perm := make([]int32, n) // old node -> new node
	for newID, old := range order {
		perm[old] = int32(newID)
	}
	ids := make([]int32, n)
	levels := make([]int32, n)
	tarena := make([]int32, len(g.tarena))
	warena := make([]float32, len(g.warena))
	nbr0 := make([]int32, len(g.nbr0))
	len0 := make([]int32, n)
	upper := make(map[int32][][]int32, len(g.upper))
	for newID, old := range order {
		ni, oi := int32(newID), old
		ids[ni] = g.ids[oi]
		levels[ni] = g.levels[oi]
		copy(tarena[ni*g.vstride:(ni+1)*g.vstride], g.tarena[oi*g.vstride:(oi+1)*g.vstride])
		copy(warena[ni*g.vstride:(ni+1)*g.vstride], g.warena[oi*g.vstride:(oi+1)*g.vstride])
		len0[ni] = g.len0[oi]
		for j := int32(0); j < g.len0[oi]; j++ {
			nbr0[ni*g.stride+j] = perm[g.nbr0[oi*g.stride+j]]
		}
		if lists, ok := g.upper[oi]; ok {
			nl := make([][]int32, len(lists))
			for l, list := range lists {
				m := make([]int32, len(list))
				for k, nb := range list {
					m[k] = perm[nb]
				}
				nl[l] = m
			}
			upper[ni] = nl
		}
	}
	g.ids, g.levels = ids, levels
	g.tarena, g.warena = tarena, warena
	g.nbr0, g.len0, g.upper = nbr0, len0, upper
	g.entry = perm[g.entry]
}

// searchScratch holds one search's visited set, heaps, result list and
// interned-query buffer.
type searchScratch struct {
	visited visitSet
	cand    ndHeap // min-heap: closest candidate on top
	res     ndHeap // max-heap: worst kept result on top
	out     []nodeDist
	iq      []ipost
	batch   []int32   // expansion scratch: unvisited neighbors
	bdist   []float64 // expansion scratch: their distances
}

// visitSet is a bitset visited marker with a dirty-word list: a search
// touches a few hundred nodes, so reset clears only the words it dirtied.
// The bitset keeps the whole structure L1-resident even at a 100k-node
// graph (13KB), where a per-node epoch array would be another random
// cache-missing stream beside the vector reads.
type visitSet struct {
	bits  []uint64
	dirty []int32
}

func (v *visitSet) reset(n int) {
	words := (n + 63) / 64
	if len(v.bits) < words {
		v.bits = make([]uint64, words)
		v.dirty = v.dirty[:0]
		return
	}
	for _, w := range v.dirty {
		v.bits[w] = 0
	}
	v.dirty = v.dirty[:0]
}

// visit marks node and reports whether it was unvisited.
func (v *visitSet) visit(node int32) bool {
	w, b := node>>6, uint64(1)<<(node&63)
	if v.bits[w]&b != 0 {
		return false
	}
	if v.bits[w] == 0 {
		v.dirty = append(v.dirty, w)
	}
	v.bits[w] |= b
	return true
}

// ndHeap is a binary heap of nodeDist: min-heap over (dist, node) when
// maxHeap is false, max-heap otherwise.
type ndHeap struct {
	a       []nodeDist
	maxHeap bool
}

func (h *ndHeap) reset(maxHeap bool) { h.a = h.a[:0]; h.maxHeap = maxHeap }
func (h *ndHeap) len() int           { return len(h.a) }
func (h *ndHeap) top() nodeDist      { return h.a[0] }

func (h *ndHeap) before(x, y nodeDist) bool {
	if h.maxHeap {
		return closer(y, x)
	}
	return closer(x, y)
}

func (h *ndHeap) push(nd nodeDist) {
	h.a = append(h.a, nd)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.before(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *ndHeap) pop() nodeDist {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		c := 2*i + 1
		if c >= last {
			break
		}
		if r := c + 1; r < last && h.before(h.a[r], h.a[c]) {
			c = r
		}
		if !h.before(h.a[c], h.a[i]) {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return top
}
