package core

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/llm"
	"fisql/internal/rag"
)

var updateGolden = flag.Bool("update", false, "rewrite golden transcript files")

// TestGoldenTranscript pins the exact prompt/response exchange of the
// Figure 4 conversation. Any change to prompt layout, retrieval, routing or
// repair shows up as a readable diff in testdata/figure4_transcript.txt.
// Regenerate intentionally with: go test ./internal/core -run Golden -update
func TestGoldenTranscript(t *testing.T) {
	ds, sim := world(t)
	rec := &llm.Recorder{Inner: sim}
	store := rag.NewStore(ds.Demos)
	asst := &assistant.Assistant{Client: rec, DS: ds, Store: store, K: 4}
	method := &FISQL{Client: rec, DS: ds, Store: store, K: 4, Routing: true}
	sess := NewSession(asst, method, "experience_platform")
	ctx := context.Background()

	if _, err := sess.Ask(ctx, "How many audiences were created in January?"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feedback(ctx, "we are in 2024", nil); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	for i, call := range rec.Calls {
		fmt.Fprintf(&sb, "=== call %d ===\n--- prompt ---\n%s\n--- response ---\n%s\n\n",
			i+1, call.Prompt, call.Response)
	}
	got := sb.String()

	path := filepath.Join("testdata", "figure4_transcript.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transcript diverged from golden file %s;\nre-run with -update if the change is intentional.\n--- got ---\n%s", path, got)
	}
}

// TestGoldenTranscriptShape sanity-checks structural facts independent of
// the golden bytes, so the test still means something right after -update.
func TestGoldenTranscriptShape(t *testing.T) {
	ds, sim := world(t)
	rec := &llm.Recorder{Inner: sim}
	store := rag.NewStore(ds.Demos)
	asst := &assistant.Assistant{Client: rec, DS: ds, Store: store, K: 4}
	method := &FISQL{Client: rec, DS: ds, Store: store, K: 4, Routing: true}
	sess := NewSession(asst, method, "experience_platform")
	ctx := context.Background()

	if _, err := sess.Ask(ctx, "How many audiences were created in January?"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Feedback(ctx, "we are in 2024", nil); err != nil {
		t.Fatal(err)
	}
	// Exactly three LLM calls: generation, routing, repair.
	if len(rec.Calls) != 3 {
		t.Fatalf("calls: %d", len(rec.Calls))
	}
	if !strings.Contains(rec.Calls[0].Prompt, "Question: How many audiences were created in January?") {
		t.Error("call 1 should be the generation prompt")
	}
	if !strings.HasPrefix(rec.Calls[1].Prompt, "Classify the user feedback") {
		t.Error("call 2 should be the routing prompt")
	}
	if rec.Calls[1].Response != "Edit" {
		t.Errorf("router said %q", rec.Calls[1].Response)
	}
	if !strings.Contains(rec.Calls[2].Prompt, "received the following feedback") ||
		!strings.Contains(rec.Calls[2].Prompt, "Edit updates") {
		t.Error("call 3 should be the repair prompt with routed Edit demos")
	}
}
