// Package core implements the paper's primary contribution: the FISQL
// feedback-incorporation pipeline (§3.3) — feedback-type identification
// (routing), operation-specific demonstration retrieval, and feedback-aware
// SQL regeneration — together with its ablation FISQL(-Routing) and the
// Query-Rewrite baseline of §4.1.
package core

import (
	"context"
	"fmt"
	"strings"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/llm"
	"fisql/internal/obs"
	"fisql/internal/prompt"
	"fisql/internal/rag"
)

// Corrector turns (question, previous SQL, feedback) into a corrected SQL
// query. Implementations: FISQL (with and without routing) and
// QueryRewrite.
type Corrector interface {
	Name() string
	Correct(ctx context.Context, db, question, prevSQL string, fb feedback.Feedback) (string, error)
}

// FISQL is the feedback-infused correction pipeline. It is safe for
// concurrent use as long as its Client is: all fields are read-only
// configuration.
type FISQL struct {
	Client llm.Client
	DS     *dataset.Dataset
	Store  *rag.Store
	// K is the number of RAG demonstrations carried into the repair
	// prompt (as in standard generation).
	K int
	// Routing enables the feedback-type identification step; disabling it
	// yields the paper's FISQL(-Routing) ablation.
	Routing bool
	// Highlights passes user highlight spans into the prompt (Table 3).
	Highlights bool
	// DynamicDemos selects the routed repair demonstrations by similarity
	// to the live feedback instead of the fixed per-op set — the paper's
	// §5 routing extension. Ignored when Routing is off.
	DynamicDemos int
}

// Name identifies the method as the paper's tables do.
func (f *FISQL) Name() string {
	switch {
	case !f.Routing:
		return "FISQL (- Routing)"
	case f.Highlights:
		return "FISQL (+ Highlighting)"
	default:
		return "FISQL"
	}
}

// Route runs the feedback-type identification prompt and returns the
// predicted operation type.
func (f *FISQL) Route(ctx context.Context, fbText string) (dataset.Op, error) {
	resp, err := f.Client.Complete(ctx, llm.Request{Prompt: prompt.Routing(fbText)})
	if err != nil {
		return 0, err
	}
	op, ok := dataset.ParseOp(strings.TrimSpace(resp.Text))
	if !ok {
		return 0, fmt.Errorf("router returned unparseable type %q", resp.Text)
	}
	return op, nil
}

// Correct regenerates the SQL taking the feedback into account (Figure 6
// prompt, with Figure 5 routed demonstrations when Routing is on). An
// obs.Trace carried by ctx times the route/retrieve/prompt/repair stages
// of the correction path.
func (f *FISQL) Correct(ctx context.Context, db, question, prevSQL string, fb feedback.Feedback) (string, error) {
	s, ok := f.DS.Schemas[db]
	if !ok {
		return "", fmt.Errorf("unknown database %q", db)
	}
	tr := obs.TraceFrom(ctx)
	var routedOp *dataset.Op
	var routedDemos []feedback.RepairDemo
	if f.Routing {
		sp := tr.Start(obs.StageRoute)
		op, err := f.Route(ctx, fb.Text)
		if err != nil {
			sp.End()
			return "", err
		}
		routedOp = &op
		routedDemos = feedback.SelectDemos(op, fb.Text, prevSQL, f.DynamicDemos)
		sp.End()
	}
	var hl *feedback.Highlight
	if f.Highlights {
		hl = fb.Highlight
	}
	var demos []prompt.Demo
	if f.K > 0 && f.Store != nil {
		sp := tr.Start(obs.StageRetrieve)
		for _, hit := range f.Store.Search(question, db, f.K) {
			demos = append(demos, prompt.Demo{Question: hit.Demo.Question, SQL: hit.Demo.SQL})
		}
		sp.End()
	}
	sp := tr.Start(obs.StagePrompt)
	p := prompt.Repair(s, demos, routedDemos, routedOp, question, prevSQL, fb.Text, hl)
	sp.End()
	sp = tr.Start(obs.StageRepair)
	resp, err := f.Client.Complete(ctx, llm.Request{Prompt: p})
	sp.End()
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp.Text), nil
}

// QueryRewrite is the baseline that paraphrases question+feedback into a
// new standalone question and regenerates from scratch. Like FISQL it is
// safe for concurrent use as long as its Client is.
type QueryRewrite struct {
	Client llm.Client
	DS     *dataset.Dataset
	Store  *rag.Store
	K      int
}

// Name identifies the method.
func (q *QueryRewrite) Name() string { return "Query Rewrite" }

// Rewrite folds the feedback into the question.
func (q *QueryRewrite) Rewrite(ctx context.Context, question, fbText string) (string, error) {
	resp, err := q.Client.Complete(ctx, llm.Request{Prompt: prompt.Rewrite(question, fbText)})
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp.Text), nil
}

// Correct rewrites the question and regenerates SQL with the standard
// pipeline.
func (q *QueryRewrite) Correct(ctx context.Context, db, question, prevSQL string, fb feedback.Feedback) (string, error) {
	s, ok := q.DS.Schemas[db]
	if !ok {
		return "", fmt.Errorf("unknown database %q", db)
	}
	newQ, err := q.Rewrite(ctx, question, fb.Text)
	if err != nil {
		return "", err
	}
	var demos []prompt.Demo
	if q.K > 0 && q.Store != nil {
		for _, hit := range q.Store.Search(newQ, db, q.K) {
			demos = append(demos, prompt.Demo{Question: hit.Demo.Question, SQL: hit.Demo.SQL})
		}
	}
	resp, err := q.Client.Complete(ctx, llm.Request{Prompt: prompt.NL2SQL(s, demos, newQ)})
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(resp.Text), nil
}
