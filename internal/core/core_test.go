package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"fisql/internal/assistant"
	"fisql/internal/dataset"
	"fisql/internal/dataset/aep"
	"fisql/internal/feedback"
	"fisql/internal/llm"
	"fisql/internal/rag"
)

var (
	coreOnce sync.Once
	coreDS   *dataset.Dataset
	coreSim  *llm.Sim
	coreErr  error
)

func world(t *testing.T) (*dataset.Dataset, *llm.Sim) {
	t.Helper()
	coreOnce.Do(func() {
		coreDS, coreErr = aep.Build()
		if coreErr == nil {
			coreSim = llm.NewSim(coreDS)
		}
	})
	if coreErr != nil {
		t.Fatal(coreErr)
	}
	return coreDS, coreSim
}

func pipeline(t *testing.T, routing bool) (*FISQL, *dataset.Dataset) {
	ds, sim := world(t)
	return &FISQL{
		Client: sim, DS: ds, Store: rag.NewStore(ds.Demos), K: 8, Routing: routing,
	}, ds
}

func TestNames(t *testing.T) {
	f, _ := pipeline(t, true)
	if f.Name() != "FISQL" {
		t.Errorf("name: %q", f.Name())
	}
	f.Routing = false
	if f.Name() != "FISQL (- Routing)" {
		t.Errorf("name: %q", f.Name())
	}
	f.Routing = true
	f.Highlights = true
	if f.Name() != "FISQL (+ Highlighting)" {
		t.Errorf("name: %q", f.Name())
	}
	qr := &QueryRewrite{}
	if qr.Name() != "Query Rewrite" {
		t.Errorf("name: %q", qr.Name())
	}
}

func TestRoute(t *testing.T) {
	f, _ := pipeline(t, true)
	ctx := context.Background()
	tests := map[string]dataset.Op{
		"we are in 2024":                     dataset.OpEdit,
		"order the names in ascending order": dataset.OpAdd,
		"do not give descriptions":           dataset.OpRemove,
		"remove the duplicate entries":       dataset.OpAdd,
	}
	for text, want := range tests {
		op, err := f.Route(ctx, text)
		if err != nil {
			t.Fatalf("route %q: %v", text, err)
		}
		if op != want {
			t.Errorf("route %q: %v, want %v", text, op, want)
		}
	}
}

func TestCorrectFixesYearTrap(t *testing.T) {
	f, ds := pipeline(t, true)
	ctx := context.Background()
	var e *dataset.Example
	for _, cand := range ds.AnnotatedErrors() {
		tr := cand.Traps[0]
		if len(cand.Traps) == 1 && tr.Kind == dataset.WrongLiteral &&
			!tr.Misaligned && !tr.Vague && !tr.GroundingHard &&
			strings.Contains(strings.ToLower(tr.Column), "time") {
			e = cand
			break
		}
	}
	if e == nil {
		t.Skip("no year-trap example in corpus")
	}
	got, err := f.Correct(ctx, e.DB, e.Question, e.WrongSQL(),
		feedback.Feedback{Text: "we are in 2024"})
	if err != nil {
		t.Fatal(err)
	}
	if got != e.Gold {
		t.Errorf("got %q\nwant %q", got, e.Gold)
	}
}

func TestCorrectUnknownDB(t *testing.T) {
	f, _ := pipeline(t, true)
	if _, err := f.Correct(context.Background(), "nope", "q", "SELECT 1", feedback.Feedback{Text: "x"}); err == nil {
		t.Error("unknown db should error")
	}
	qr := &QueryRewrite{Client: nil, DS: f.DS}
	if _, err := qr.Correct(context.Background(), "nope", "q", "SELECT 1", feedback.Feedback{Text: "x"}); err == nil {
		t.Error("unknown db should error for rewrite too")
	}
}

func TestQueryRewriteFlow(t *testing.T) {
	ds, sim := world(t)
	qr := &QueryRewrite{Client: sim, DS: ds, Store: rag.NewStore(ds.Demos), K: 8}
	ctx := context.Background()
	newQ, err := qr.Rewrite(ctx, "How many audiences were created in January?", "we are in 2024")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(newQ, "How many audiences were created in January") ||
		!strings.Contains(newQ, "we are in 2024") {
		t.Errorf("rewrite lost content: %q", newQ)
	}
	// Correct returns *some* regenerated SQL without error.
	got, err := qr.Correct(ctx, "experience_platform",
		"How many audiences were created in January?",
		"SELECT COUNT(*) FROM hkg_dim_segment", feedback.Feedback{Text: "we are in 2024"})
	if err != nil {
		t.Fatal(err)
	}
	if got == "" {
		t.Error("empty regeneration")
	}
}

func TestSessionConversation(t *testing.T) {
	ds, sim := world(t)
	store := rag.NewStore(ds.Demos)
	asst := &assistant.Assistant{Client: sim, DS: ds, Store: store, K: 8}
	f := &FISQL{Client: sim, DS: ds, Store: store, K: 8, Routing: true}
	sess := NewSession(asst, f, "experience_platform")
	ctx := context.Background()

	if _, err := sess.Feedback(ctx, "premature", nil); err == nil {
		t.Error("feedback before any question should error")
	}

	ans, err := sess.Ask(ctx, "How many audiences were created in January?")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "2023") {
		t.Fatalf("expected the year trap to fire, got %q", ans.SQL)
	}
	ans, err = sess.Feedback(ctx, "we are in 2024", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.SQL, "2024-01-01") {
		t.Errorf("feedback not applied: %q", ans.SQL)
	}
	if sess.SQL() != ans.SQL {
		t.Error("session SQL not updated")
	}
	h := sess.History()
	if len(h) != 4 {
		t.Fatalf("history length: %d", len(h))
	}
	wantRoles := []string{"user", "assistant", "feedback", "assistant"}
	for i, r := range wantRoles {
		if h[i].Role != r {
			t.Errorf("turn %d role: %q, want %q", i, h[i].Role, r)
		}
	}
}

// TestHistoryReturnsCopy is a regression test: History used to return the
// internal slice, letting callers corrupt session state.
func TestHistoryReturnsCopy(t *testing.T) {
	ds, sim := world(t)
	store := rag.NewStore(ds.Demos)
	asst := &assistant.Assistant{Client: sim, DS: ds, Store: store, K: 8}
	f := &FISQL{Client: sim, DS: ds, Store: store, K: 8, Routing: true}
	sess := NewSession(asst, f, "experience_platform")
	ctx := context.Background()

	if _, err := sess.Ask(ctx, "How many audiences were created in January?"); err != nil {
		t.Fatal(err)
	}
	h := sess.History()
	h[0].Role = "mangled"
	h[0].Text = "mangled"
	if got := sess.History(); got[0].Role != "user" {
		t.Errorf("mutating the returned history leaked into the session: %+v", got[0])
	}

	// An append to the snapshot must not alias future session turns either.
	h = sess.History()
	_ = append(h, Turn{Role: "rogue", Text: "rogue"})
	if _, err := sess.Feedback(ctx, "we are in 2024", nil); err != nil {
		t.Fatal(err)
	}
	for _, turn := range sess.History() {
		if turn.Role == "rogue" {
			t.Error("appended turn leaked into session history")
		}
	}
}
