package core

import (
	"context"
	"fmt"

	"fisql/internal/assistant"
	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/rag"
)

// Session is one interactive conversation with the Assistant on a single
// database: ask a question, inspect the four outputs, then iterate with
// natural-language feedback (optionally grounded by a highlight) until the
// query matches intent — the Figure 4 loop.
type Session struct {
	Assistant *assistant.Assistant
	Corrector Corrector
	DB        string

	// FoldStore, when set, receives every successful correction — feedback
	// that produced a query which parsed and executed — as a new
	// (question, corrected SQL) demonstration, so the retrieval library
	// learns from live sessions ("Speak to your Parser": user feedback is
	// the best source of new demonstrations). The store deduplicates, so
	// many sessions converging on the same fix insert it once.
	FoldStore *rag.Store

	question string
	sql      string
	history  []Turn
}

// Turn records one exchange in the session.
type Turn struct {
	Role   string // "user", "feedback" or "assistant"
	Text   string
	Answer *assistant.Answer // set on assistant turns
}

// NewSession starts a session against one database.
func NewSession(a *assistant.Assistant, c Corrector, db string) *Session {
	return &Session{Assistant: a, Corrector: c, DB: db}
}

// History returns a copy of the conversation so far. Returning the internal
// slice would let callers mutate session state (or observe appends aliasing
// their snapshot).
func (s *Session) History() []Turn {
	return s.HistorySince(0)
}

// HistoryLen reports the number of turns so far.
func (s *Session) HistoryLen() int { return len(s.history) }

// HistorySince returns a copy of the turns from index n on. History is
// append-only, so callers that already consumed the first n turns (the
// server's incremental history rendering) receive exactly the new suffix.
func (s *Session) HistorySince(n int) []Turn {
	if n < 0 {
		n = 0
	}
	if n > len(s.history) {
		n = len(s.history)
	}
	out := make([]Turn, len(s.history)-n)
	copy(out, s.history[n:])
	return out
}

// SQL returns the current query, empty before the first question.
func (s *Session) SQL() string { return s.sql }

// Ask poses a fresh question, replacing any previous query context.
func (s *Session) Ask(ctx context.Context, question string) (*assistant.Answer, error) {
	ans, err := s.Assistant.Ask(ctx, s.DB, question)
	if err != nil {
		return nil, err
	}
	s.question = question
	s.sql = ans.SQL
	s.history = append(s.history,
		Turn{Role: "user", Text: question},
		Turn{Role: "assistant", Text: ans.SQL, Answer: ans})
	return ans, nil
}

// Feedback applies user feedback to the current query and re-answers.
func (s *Session) Feedback(ctx context.Context, text string, hl *feedback.Highlight) (*assistant.Answer, error) {
	if s.sql == "" {
		return nil, fmt.Errorf("no query to give feedback on; ask a question first")
	}
	fb := feedback.Feedback{Text: text, Highlight: hl}
	sql, err := s.Corrector.Correct(ctx, s.DB, s.question, s.sql, fb)
	if err != nil {
		return nil, err
	}
	s.sql = sql
	ans := s.Assistant.Answer(ctx, s.DB, sql)
	s.history = append(s.history,
		Turn{Role: "feedback", Text: text},
		Turn{Role: "assistant", Text: ans.SQL, Answer: ans})
	// Fold the correction into the demonstration library only once it
	// actually executed: a correction whose SQL fails to run would teach
	// future retrievals a broken demonstration.
	if s.FoldStore != nil && ans.ExecErr == nil {
		s.FoldStore.Add(dataset.Demo{DB: s.DB, Question: s.question, SQL: sql})
	}
	return ans, nil
}
