package nl2sql

import (
	"fmt"
	"regexp"
	"strings"

	"fisql/internal/schema"
)

// Generate is a heuristic fallback generator for questions outside the
// benchmark corpora (used by the interactive chat so the tool degrades
// gracefully). It handles simple count and list shapes via lexicon linking.
func Generate(lex *schema.Lexicon, question string) (string, bool) {
	q := strings.ToLower(strings.TrimSpace(question))
	q = strings.TrimRight(q, ".!?")
	if m := reHowMany.FindStringSubmatch(q); m != nil {
		if ref, ok := lex.ResolveTable(m[1]); ok {
			return fmt.Sprintf("SELECT COUNT(*) FROM %s", ref.Table), true
		}
	}
	if m := reListOf.FindStringSubmatch(q); m != nil {
		col, ok1 := lex.ResolveColumn(m[1])
		tab, ok2 := lex.ResolveTable(m[2])
		if ok1 && ok2 {
			return fmt.Sprintf("SELECT %s FROM %s", col.Column, tab.Table), true
		}
	}
	if m := reListAll.FindStringSubmatch(q); m != nil {
		if ref, ok := lex.ResolveTable(m[1]); ok {
			return fmt.Sprintf("SELECT * FROM %s", ref.Table), true
		}
	}
	return "", false
}

var (
	reHowMany = regexp.MustCompile(`^how many ([a-z0-9_ ]+?)(?: are there| do we have| exist)?$`)
	reListOf  = regexp.MustCompile(`^(?:list|show)(?: me)? the ([a-z0-9_ ]+?) of (?:all |the )?([a-z0-9_ ]+)$`)
	reListAll = regexp.MustCompile(`^(?:list|show)(?: me)?(?: all)? (?:the )?([a-z0-9_ ]+)$`)
)
