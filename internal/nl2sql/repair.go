// Package nl2sql implements the SQL-side model behaviour: the rule-based
// feedback repair engine (how the simulated model edits a query given
// natural-language feedback, an inferred or routed operation type, and an
// optional highlight), plus a small heuristic generator used as a fallback
// for questions outside the benchmark corpora.
package nl2sql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/schema"
	"fisql/internal/sqlast"
	"fisql/internal/sqlparse"
)

// Repairer applies feedback edits to SQL queries, grounding user phrases
// through the schema lexicon.
type Repairer struct {
	Lex *schema.Lexicon
}

// Repair edits prevSQL according to the feedback text, treating it as the
// given operation type. It returns the (possibly unchanged) SQL and whether
// an edit was applied. The highlight, when present, grounds ambiguous edits
// to a span of the displayed SQL.
func (r *Repairer) Repair(prevSQL, fbText string, op dataset.Op, hl *feedback.Highlight) (string, bool) {
	sel, err := sqlparse.ParseSelect(prevSQL)
	if err != nil {
		return prevSQL, false
	}
	// Pattern-match on a lower-cased copy but slice captured groups out of
	// the original text, so values keep the user's casing ('Priya', not
	// 'priya'). Lowering must be ASCII-only: Unicode case mapping can
	// change byte lengths and would misalign the capture offsets.
	orig := strings.TrimRight(strings.TrimSpace(fbText), ".!?")
	text := &fbMatch{lower: asciiLower(orig), orig: orig}
	changed := false
	switch op {
	case dataset.OpEdit:
		changed = r.applyEdit(sel, text, hl)
	case dataset.OpAdd:
		changed = r.applyAdd(sel, text)
	case dataset.OpRemove:
		changed = r.applyRemove(sel, text)
	}
	if !changed {
		return prevSQL, false
	}
	return sqlast.Print(sel), true
}

// ----------------------------------------------------------------------------
// Edit

// asciiLower lowercases A-Z only, guaranteeing len(out) == len(s) so byte
// offsets remain valid in the original string.
func asciiLower(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			if b == nil {
				b = []byte(s)
			}
			b[i] = c + 'a' - 'A'
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// fbMatch pairs the lower-cased feedback (for matching) with the original
// (for case-preserving extraction). Both strings are always the same byte
// length.
type fbMatch struct {
	lower, orig string
}

// groups runs the pattern against the lower-cased text and returns the
// capture groups sliced from the original text; nil when it does not match.
func (m *fbMatch) groups(re *regexp.Regexp) []string {
	idx := re.FindStringSubmatchIndex(m.lower)
	if idx == nil {
		return nil
	}
	out := make([]string, 0, len(idx)/2)
	for i := 0; i < len(idx); i += 2 {
		if idx[i] < 0 {
			out = append(out, "")
			continue
		}
		out = append(out, m.orig[idx[i]:idx[i+1]])
	}
	return out
}

func (m *fbMatch) contains(re *regexp.Regexp) bool { return re.MatchString(m.lower) }

var (
	reYear        = regexp.MustCompile(`(?:we are in|change the year to|the year should be)\s+(\d{4})`)
	reInsteadOf   = regexp.MustCompile(`the ([a-z0-9_ ]+?) instead of the ([a-z0-9_ ]+)$`)
	reWantedNot   = regexp.MustCompile(`i wanted the ([a-z]+), not the ([a-z]+)$`)
	reMeantNot    = regexp.MustCompile(`i meant the ([a-z0-9_ ]+?), not the ([a-z0-9_ ]+)$`)
	reShouldBeNot = regexp.MustCompile(`^the (.+?) should be (.+?), not (.+)$`)
	reColShouldBe = regexp.MustCompile(`^the (.+?) should be (.+)$`)
	reValShouldBe = regexp.MustCompile(`^the value should be (.+)$`)
)

func (r *Repairer) applyEdit(sel *sqlast.SelectStmt, text *fbMatch, hl *feedback.Highlight) bool {
	if m := text.groups(reYear); m != nil {
		return setYear(sel, m[1])
	}
	if m := text.groups(reInsteadOf); m != nil {
		return r.swapColumn(sel, m[2], m[1])
	}
	if m := text.groups(reWantedNot); m != nil {
		return swapAggregate(sel, strings.ToLower(m[2]), strings.ToLower(m[1]))
	}
	if m := text.groups(reMeantNot); m != nil {
		return r.swapTable(sel, m[2], m[1])
	}
	// "the value should be X" (no column named) must be tried before the
	// general column patterns, which would otherwise swallow it.
	if m := text.groups(reValShouldBe); m != nil {
		return setSomeComparisonValue(sel, parseValue(m[1]), hl)
	}
	// "the X should be A, not B" carries the wrong value too, so the
	// literal can be located anywhere (comparison, IN list, LIKE pattern).
	if m := text.groups(reShouldBeNot); m != nil {
		if replaceLiteral(sel, parseValue(m[3]), parseValue(m[2])) {
			return true
		}
		if ref, ok := r.Lex.ResolveColumn(m[1]); ok {
			return setComparisonValue(sel, ref.Column, parseValue(m[2]))
		}
		return false
	}
	if m := text.groups(reColShouldBe); m != nil {
		if ref, ok := r.Lex.ResolveColumn(m[1]); ok {
			return setComparisonValue(sel, ref.Column, parseValue(m[2]))
		}
		return false
	}
	return false
}

// replaceLiteral swaps every literal whose text equals old for new,
// anywhere in the statement. Returns whether anything changed.
func replaceLiteral(sel *sqlast.SelectStmt, old, new value) bool {
	changed := false
	sqlast.WalkSelect(sel, func(e sqlast.Expr) bool {
		if lit, ok := e.(*sqlast.Literal); ok && lit.Text == old.text {
			lit.Text = new.text
			changed = true
		}
		return true
	})
	return changed
}

// setYear shifts the years of the query's ISO-date literals so that the
// earliest one becomes the stated year — the repair a competent model
// performs for "we are in 2024". Shifting (rather than overwriting) keeps
// ranges that straddle a year boundary intact: a December window
// ['2023-12-01','2024-01-01') becomes ['2024-12-01','2025-01-01').
func setYear(sel *sqlast.SelectStmt, year string) bool {
	target, err := strconv.Atoi(year)
	if err != nil {
		return false
	}
	minYear := 0
	sqlast.WalkSelect(sel, func(e sqlast.Expr) bool {
		if lit, ok := e.(*sqlast.Literal); ok && lit.Kind == sqlast.LitString && isISODate(lit.Text) {
			y, _ := strconv.Atoi(lit.Text[:4])
			if minYear == 0 || y < minYear {
				minYear = y
			}
		}
		return true
	})
	if minYear == 0 || minYear == target {
		return false
	}
	delta := target - minYear
	changed := false
	sqlast.WalkSelect(sel, func(e sqlast.Expr) bool {
		if lit, ok := e.(*sqlast.Literal); ok && lit.Kind == sqlast.LitString && isISODate(lit.Text) {
			y, _ := strconv.Atoi(lit.Text[:4])
			lit.Text = fmt.Sprintf("%04d%s", y+delta, lit.Text[4:])
			changed = true
		}
		return true
	})
	return changed
}

func isISODate(s string) bool {
	if len(s) < 10 {
		return false
	}
	for i, r := range s[:10] {
		switch i {
		case 4, 7:
			if r != '-' {
				return false
			}
		default:
			if r < '0' || r > '9' {
				return false
			}
		}
	}
	return true
}

// swapColumn replaces references to the old column with the new one in the
// SELECT list.
func (r *Repairer) swapColumn(sel *sqlast.SelectStmt, oldPhrase, newPhrase string) bool {
	oldRef, ok1 := r.Lex.ResolveColumn(oldPhrase)
	newRef, ok2 := r.Lex.ResolveColumn(newPhrase)
	if !ok1 || !ok2 || strings.EqualFold(oldRef.Column, newRef.Column) {
		return false
	}
	changed := false
	for _, it := range sel.Items {
		sqlast.Walk(it.Expr, func(e sqlast.Expr) bool {
			if cr, ok := e.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, oldRef.Column) {
				cr.Column = newRef.Column
				changed = true
			}
			return true
		})
	}
	return changed
}

var aggByWord = map[string]string{
	"count": "COUNT", "total": "SUM", "sum": "SUM", "average": "AVG",
	"mean": "AVG", "minimum": "MIN", "lowest": "MIN", "smallest": "MIN",
	"maximum": "MAX", "highest": "MAX", "largest": "MAX",
}

// swapAggregate replaces the old aggregate function with the new one
// throughout the query (including scalar subqueries).
func swapAggregate(sel *sqlast.SelectStmt, oldWord, newWord string) bool {
	oldAgg, ok1 := aggByWord[oldWord]
	newAgg, ok2 := aggByWord[newWord]
	if !ok1 || !ok2 || oldAgg == newAgg {
		return false
	}
	changed := false
	sqlast.WalkSelect(sel, func(e sqlast.Expr) bool {
		if fc, ok := e.(*sqlast.FuncCall); ok && fc.Name == oldAgg {
			// COUNT(*) cannot become SUM(*); move the star onto the first
			// argument-free form only when a concrete column exists.
			if fc.Star && newAgg != "COUNT" {
				return true
			}
			fc.Name = newAgg
			changed = true
		}
		return true
	})
	return changed
}

// swapTable replaces the old table with the new one in FROM clauses.
func (r *Repairer) swapTable(sel *sqlast.SelectStmt, oldPhrase, newPhrase string) bool {
	oldRef, ok1 := r.Lex.ResolveTable(oldPhrase)
	newRef, ok2 := r.Lex.ResolveTable(newPhrase)
	if !ok1 || !ok2 || strings.EqualFold(oldRef.Table, newRef.Table) {
		return false
	}
	changed := false
	var visit func(s *sqlast.SelectStmt)
	visit = func(s *sqlast.SelectStmt) {
		if s == nil {
			return
		}
		if s.From != nil {
			if strings.EqualFold(s.From.First.Name, oldRef.Table) {
				s.From.First.Name = newRef.Table
				changed = true
			}
			for i := range s.From.Joins {
				if strings.EqualFold(s.From.Joins[i].Source.Name, oldRef.Table) {
					s.From.Joins[i].Source.Name = newRef.Table
					changed = true
				}
			}
		}
		if s.Compound != nil {
			visit(s.Compound.Right)
		}
	}
	visit(sel)
	// Subqueries referencing the old table follow too.
	sqlast.WalkSelect(sel, func(e sqlast.Expr) bool {
		switch x := e.(type) {
		case *sqlast.SubqueryExpr:
			visit(x.Sub)
		case *sqlast.ExistsExpr:
			visit(x.Sub)
		case *sqlast.InExpr:
			visit(x.Sub)
		}
		return true
	})
	return changed
}

// value is a parsed feedback value with its preferred literal kind.
type value struct {
	text   string
	quoted bool
}

func parseValue(raw string) value {
	raw = strings.TrimSpace(strings.TrimRight(raw, ".!?"))
	if len(raw) >= 2 && raw[0] == '\'' && raw[len(raw)-1] == '\'' {
		return value{text: raw[1 : len(raw)-1], quoted: true}
	}
	return value{text: raw}
}

func (v value) literal(previous *sqlast.Literal) *sqlast.Literal {
	if previous != nil {
		// Preserve the kind of the literal being replaced: a text column
		// compared to '1992' stays quoted even if the feedback says 1992.
		return &sqlast.Literal{Kind: previous.Kind, Text: v.text}
	}
	if v.quoted || !isNumeric(v.text) {
		return sqlast.Str(v.text)
	}
	return sqlast.Num(v.text)
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' && !dot && i > 0:
			dot = true
		case r == '-' && i == 0:
		default:
			return false
		}
	}
	return true
}

// comparison locates Binary comparisons with a literal right-hand side.
type comparison struct {
	bin *sqlast.Binary
	col string
}

func comparisons(e sqlast.Expr) []comparison {
	var out []comparison
	sqlast.Walk(e, func(x sqlast.Expr) bool {
		if b, ok := x.(*sqlast.Binary); ok {
			if cr, ok := b.L.(*sqlast.ColumnRef); ok {
				if _, ok := b.R.(*sqlast.Literal); ok {
					out = append(out, comparison{bin: b, col: cr.Column})
				}
			}
		}
		return true
	})
	return out
}

// setComparisonValue replaces the literal in the comparison on the named
// column (searching WHERE, then HAVING).
func setComparisonValue(sel *sqlast.SelectStmt, col string, v value) bool {
	for _, root := range []sqlast.Expr{sel.Where, sel.Having} {
		for _, c := range comparisons(root) {
			if strings.EqualFold(c.col, col) {
				c.bin.R = v.literal(c.bin.R.(*sqlast.Literal))
				return true
			}
		}
	}
	// HAVING COUNT(*) > n has no column ref; match aggregate comparisons
	// when the phrase resolved to nothing better.
	if sel.Having != nil {
		if b, ok := sel.Having.(*sqlast.Binary); ok {
			if lit, ok := b.R.(*sqlast.Literal); ok {
				b.R = v.literal(lit)
				return true
			}
		}
	}
	return false
}

// setSomeComparisonValue handles un-grounded value edits ("the value should
// be X"): without a highlight it edits the first literal comparison in the
// WHERE clause; with a highlight it edits the comparison inside the
// highlighted span — the mechanism by which highlights rescue grounding.
func setSomeComparisonValue(sel *sqlast.SelectStmt, v value, hl *feedback.Highlight) bool {
	comps := comparisons(sel.Where)
	if len(comps) == 0 {
		return false
	}
	target := comps[0]
	if hl != nil && hl.Text != "" {
		low := strings.ToLower(hl.Text)
		for _, c := range comps {
			if strings.Contains(low, strings.ToLower(c.col)) {
				target = c
				break
			}
		}
	}
	target.bin.R = v.literal(target.bin.R.(*sqlast.Literal))
	return true
}

// ----------------------------------------------------------------------------
// Add

var (
	reSortBy    = regexp.MustCompile(`(?:sort|order)(?: the results)? by (.+?) in (ascending|descending) order`)
	reOrderThe  = regexp.MustCompile(`order the (.+?) in (ascending|descending) order`)
	reOnlyEq    = regexp.MustCompile(`only (?:include|count|keep) those whose (.+?) is (.+)$`)
	reOnlyGt    = regexp.MustCompile(`only (?:include|count|keep) those with (.+?) greater than (.+)$`)
	reDistinct  = regexp.MustCompile(`duplicate|distinct|only once`)
	reAlsoShow  = regexp.MustCompile(`also (?:show|give|include) the (.+)$`)
	reLimitTopN = regexp.MustCompile(`only (?:show|give) the (?:top|first) (\d+)`)
)

func (r *Repairer) applyAdd(sel *sqlast.SelectStmt, text *fbMatch) bool {
	if m := text.groups(reSortBy); m != nil {
		return r.addOrderBy(sel, m[1], strings.ToLower(m[2]) == "descending")
	}
	if m := text.groups(reOrderThe); m != nil {
		return r.addOrderBy(sel, m[1], strings.ToLower(m[2]) == "descending")
	}
	if m := text.groups(reOnlyEq); m != nil {
		return r.addFilter(sel, m[1], parseValue(m[2]), sqlast.OpEq)
	}
	if m := text.groups(reOnlyGt); m != nil {
		return r.addFilter(sel, m[1], parseValue(m[2]), sqlast.OpGt)
	}
	if m := text.groups(reAlsoShow); m != nil {
		if ref, ok := r.Lex.ResolveColumn(m[1]); ok {
			sel.Items = append(sel.Items, sqlast.SelectItem{Expr: &sqlast.ColumnRef{Column: ref.Column}})
			return true
		}
		return false
	}
	if m := text.groups(reLimitTopN); m != nil {
		sel.Limit = sqlast.Num(m[1])
		return true
	}
	if text.contains(reDistinct) {
		if sel.Distinct {
			return false
		}
		sel.Distinct = true
		return true
	}
	return false
}

func (r *Repairer) addOrderBy(sel *sqlast.SelectStmt, phrase string, desc bool) bool {
	ref, ok := r.Lex.ResolveColumn(phrase)
	if !ok {
		return false
	}
	sel.OrderBy = []sqlast.OrderItem{{Expr: &sqlast.ColumnRef{Column: ref.Column}, Desc: desc}}
	return true
}

func (r *Repairer) addFilter(sel *sqlast.SelectStmt, phrase string, v value, op sqlast.BinaryOp) bool {
	ref, ok := r.Lex.ResolveColumn(phrase)
	if !ok {
		return false
	}
	var lit *sqlast.Literal
	if v.quoted || !isNumeric(v.text) {
		lit = sqlast.Str(v.text)
	} else {
		lit = sqlast.Num(v.text)
	}
	cond := &sqlast.Binary{Op: op, L: &sqlast.ColumnRef{Column: ref.Column}, R: lit}
	if sel.Where == nil {
		sel.Where = cond
	} else {
		sel.Where = &sqlast.Binary{Op: sqlast.OpAnd, L: sel.Where, R: cond}
	}
	return true
}

// ----------------------------------------------------------------------------
// Remove

var (
	reDoNotGive = regexp.MustCompile(`(?:do not|don't) (?:give|show|need|include)(?: the)? (.+)$`)
	reDropCond  = regexp.MustCompile(`(?:drop|remove) the (?:condition|filter) on (.+)$`)
)

func (r *Repairer) applyRemove(sel *sqlast.SelectStmt, text *fbMatch) bool {
	if m := text.groups(reDropCond); m != nil {
		if ref, ok := r.Lex.ResolveColumn(m[1]); ok {
			return removeFilter(sel, ref.Column)
		}
		return false
	}
	if m := text.groups(reDoNotGive); m != nil {
		if ref, ok := r.Lex.ResolveColumn(m[1]); ok {
			return removeSelectItem(sel, ref.Column)
		}
		return false
	}
	return false
}

func removeSelectItem(sel *sqlast.SelectStmt, col string) bool {
	if len(sel.Items) <= 1 {
		return false
	}
	for i, it := range sel.Items {
		match := false
		sqlast.Walk(it.Expr, func(e sqlast.Expr) bool {
			if cr, ok := e.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, col) {
				match = true
			}
			return true
		})
		if match {
			sel.Items = append(sel.Items[:i], sel.Items[i+1:]...)
			return true
		}
	}
	return false
}

// removeFilter drops the conjunct mentioning the column from the WHERE
// AND-chain.
func removeFilter(sel *sqlast.SelectStmt, col string) bool {
	mentions := func(e sqlast.Expr) bool {
		found := false
		sqlast.Walk(e, func(x sqlast.Expr) bool {
			if cr, ok := x.(*sqlast.ColumnRef); ok && strings.EqualFold(cr.Column, col) {
				found = true
			}
			return true
		})
		return found
	}
	var prune func(e sqlast.Expr) (sqlast.Expr, bool)
	prune = func(e sqlast.Expr) (sqlast.Expr, bool) {
		if b, ok := e.(*sqlast.Binary); ok && b.Op == sqlast.OpAnd {
			if l, changed := prune(b.L); changed {
				if l == nil {
					return b.R, true
				}
				b.L = l
				return b, true
			}
			if r, changed := prune(b.R); changed {
				if r == nil {
					return b.L, true
				}
				b.R = r
				return b, true
			}
			return b, false
		}
		if mentions(e) {
			return nil, true
		}
		return e, false
	}
	if sel.Where == nil {
		return false
	}
	w, changed := prune(sel.Where)
	if !changed {
		return false
	}
	sel.Where = w
	return true
}
