package nl2sql

import (
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/sqlparse"
)

// FuzzRepair checks the repair engine never panics on arbitrary feedback
// text and only ever returns parseable SQL when it reports a change.
func FuzzRepair(f *testing.F) {
	seeds := []struct {
		sql, fb string
		op      int
	}{
		{"SELECT name FROM singer WHERE country = 'Spain'", "the country should be 'France'", 2},
		{"SELECT name FROM singer", "sort the results by age in descending order", 0},
		{"SELECT name, description FROM singer", "do not give the description", 1},
		{"SELECT COUNT(*) FROM singer WHERE createdTime >= '2023-01-01'", "we are in 2024", 2},
		{"SELECT MIN(age) FROM singer", "I wanted the maximum, not the minimum", 2},
		{"SELECT name FROM singer", "", 0},
		{"SELECT name FROM singer", "the  should be ", 2},
		{"NOT SQL AT ALL", "anything", 0},
		{"SELECT a FROM t", "the x should be 'a', not 'b'", 2},
	}
	for _, s := range seeds {
		f.Add(s.sql, s.fb, s.op)
	}
	lx := lex()
	f.Fuzz(func(t *testing.T, sql, fb string, opRaw int) {
		op := dataset.Op(((opRaw % 3) + 3) % 3)
		r := &Repairer{Lex: lx}
		var hl *feedback.Highlight
		if len(fb)%2 == 0 && len(sql) > 3 {
			hl = &feedback.Highlight{Text: sql[:3]}
		}
		got, changed := r.Repair(sql, fb, op, hl)
		if !changed {
			if got != sql {
				t.Fatalf("unchanged repair altered the SQL: %q -> %q", sql, got)
			}
			return
		}
		if _, err := sqlparse.ParseSelect(got); err != nil {
			t.Fatalf("repair produced unparseable SQL %q from %q + %q: %v", got, sql, fb, err)
		}
	})
}
