package nl2sql

import (
	"strings"
	"testing"

	"fisql/internal/dataset"
	"fisql/internal/feedback"
	"fisql/internal/schema"
)

func lex() *schema.Lexicon {
	return schema.NewLexicon(&schema.Schema{
		Name: "db",
		Tables: []schema.Table{
			{
				Name: "singer", NL: []string{"singers"},
				Columns: []schema.Column{
					{Name: "singer_id", Type: "INT"},
					{Name: "name", Type: "TEXT", NL: []string{"name", "singer name"}},
					{Name: "song_name", Type: "TEXT", NL: []string{"song name"}},
					{Name: "country", Type: "TEXT", NL: []string{"country"}},
					{Name: "age", Type: "INT", NL: []string{"age"}},
					{Name: "description", Type: "TEXT", NL: []string{"description"}},
					{Name: "createdTime", Type: "DATE", NL: []string{"created time"}},
				},
			},
			{
				Name: "band", NL: []string{"bands"},
				Columns: []schema.Column{
					{Name: "band_id", Type: "INT"},
					{Name: "name", Type: "TEXT"},
				},
			},
		},
	})
}

func repair(t *testing.T, sql, fb string, op dataset.Op, hl *feedback.Highlight) (string, bool) {
	t.Helper()
	r := &Repairer{Lex: lex()}
	return r.Repair(sql, fb, op, hl)
}

func TestRepairYearShift(t *testing.T) {
	got, changed := repair(t,
		"SELECT COUNT(*) FROM singer WHERE createdTime >= '2023-01-01' AND createdTime < '2023-02-01'",
		"we are in 2024", dataset.OpEdit, nil)
	if !changed {
		t.Fatal("no change")
	}
	want := "SELECT COUNT(*) FROM singer WHERE createdTime >= '2024-01-01' AND createdTime < '2024-02-01'"
	if got != want {
		t.Errorf("got %q", got)
	}
}

func TestRepairYearShiftDecemberWindow(t *testing.T) {
	got, changed := repair(t,
		"SELECT COUNT(*) FROM singer WHERE createdTime >= '2023-12-01' AND createdTime < '2024-01-01'",
		"we are in 2024", dataset.OpEdit, nil)
	if !changed {
		t.Fatal("no change")
	}
	want := "SELECT COUNT(*) FROM singer WHERE createdTime >= '2024-12-01' AND createdTime < '2025-01-01'"
	if got != want {
		t.Errorf("year-straddling window mishandled: %q", got)
	}
}

func TestRepairYearNoDates(t *testing.T) {
	_, changed := repair(t, "SELECT COUNT(*) FROM singer", "we are in 2024", dataset.OpEdit, nil)
	if changed {
		t.Error("no dates to shift, but change reported")
	}
}

func TestRepairColumnSwap(t *testing.T) {
	got, changed := repair(t,
		"SELECT name, age FROM singer",
		"provide the song name instead of the singer name", dataset.OpEdit, nil)
	if !changed || got != "SELECT song_name, age FROM singer" {
		t.Errorf("got %q (%v)", got, changed)
	}
}

func TestRepairValueEditNamedColumn(t *testing.T) {
	got, changed := repair(t,
		"SELECT name FROM singer WHERE country = 'Spain'",
		"the country should be 'France'", dataset.OpEdit, nil)
	if !changed || got != "SELECT name FROM singer WHERE country = 'France'" {
		t.Errorf("got %q (%v)", got, changed)
	}
}

func TestRepairValueEditPreservesCase(t *testing.T) {
	got, _ := repair(t,
		"SELECT name FROM singer WHERE country = 'Spain'",
		"the country should be 'United States'", dataset.OpEdit, nil)
	if got != "SELECT name FROM singer WHERE country = 'United States'" {
		t.Errorf("casing lost: %q", got)
	}
}

func TestRepairValueEditPreservesLiteralKind(t *testing.T) {
	// A text column compared to a numeric-looking value keeps its quotes.
	got, _ := repair(t,
		"SELECT name FROM singer WHERE country = '1999'",
		"the country should be 2001", dataset.OpEdit, nil)
	if got != "SELECT name FROM singer WHERE country = '2001'" {
		t.Errorf("literal kind not preserved: %q", got)
	}
}

func TestRepairUngroundedValueEditPicksFirst(t *testing.T) {
	got, _ := repair(t,
		"SELECT name FROM singer WHERE country = 'Spain' AND description = 'Aurora'",
		"the value should be 'Breeze'", dataset.OpEdit, nil)
	if got != "SELECT name FROM singer WHERE country = 'Breeze' AND description = 'Aurora'" {
		t.Errorf("ungrounded edit should hit the first comparison: %q", got)
	}
}

func TestRepairHighlightGroundsValueEdit(t *testing.T) {
	hl := &feedback.Highlight{Text: "description = 'Aurora'"}
	got, _ := repair(t,
		"SELECT name FROM singer WHERE country = 'Spain' AND description = 'Aurora'",
		"the value should be 'Breeze'", dataset.OpEdit, hl)
	if got != "SELECT name FROM singer WHERE country = 'Spain' AND description = 'Breeze'" {
		t.Errorf("highlight not honoured: %q", got)
	}
}

func TestRepairAggregateSwap(t *testing.T) {
	got, changed := repair(t,
		"SELECT MIN(age) FROM singer",
		"I wanted the maximum, not the minimum", dataset.OpEdit, nil)
	if !changed || got != "SELECT MAX(age) FROM singer" {
		t.Errorf("got %q", got)
	}
}

func TestRepairAggregateSwapInSubquery(t *testing.T) {
	got, _ := repair(t,
		"SELECT song_name FROM singer WHERE age = (SELECT MIN(age) FROM singer)",
		"I wanted the maximum, not the minimum", dataset.OpEdit, nil)
	if got != "SELECT song_name FROM singer WHERE age = (SELECT MAX(age) FROM singer)" {
		t.Errorf("subquery aggregate untouched: %q", got)
	}
}

func TestRepairCountStarDoesNotBecomeSumStar(t *testing.T) {
	_, changed := repair(t,
		"SELECT COUNT(*) FROM singer",
		"I wanted the total, not the count", dataset.OpEdit, nil)
	if changed {
		t.Error("COUNT(*) must not become SUM(*)")
	}
}

func TestRepairTableSwap(t *testing.T) {
	got, changed := repair(t,
		"SELECT COUNT(*) FROM band",
		"I meant the singers, not the bands", dataset.OpEdit, nil)
	if !changed || got != "SELECT COUNT(*) FROM singer" {
		t.Errorf("got %q", got)
	}
}

func TestRepairAddOrderBy(t *testing.T) {
	got, changed := repair(t,
		"SELECT name FROM singer",
		"sort the results by age in descending order", dataset.OpAdd, nil)
	if !changed || got != "SELECT name FROM singer ORDER BY age DESC" {
		t.Errorf("got %q", got)
	}
}

func TestRepairAddFilterEq(t *testing.T) {
	got, _ := repair(t,
		"SELECT name FROM singer",
		"only include those whose country is 'France'", dataset.OpAdd, nil)
	if got != "SELECT name FROM singer WHERE country = 'France'" {
		t.Errorf("got %q", got)
	}
}

func TestRepairAddFilterGtConjoins(t *testing.T) {
	got, _ := repair(t,
		"SELECT name FROM singer WHERE country = 'France'",
		"only count those with age greater than 30", dataset.OpAdd, nil)
	if got != "SELECT name FROM singer WHERE country = 'France' AND age > 30" {
		t.Errorf("got %q", got)
	}
}

func TestRepairAddDistinct(t *testing.T) {
	for _, fb := range []string{
		"remove the duplicate entries", // as routed (Add)
		"add distinct so each value appears only once",
	} {
		got, changed := repair(t, "SELECT country FROM singer", fb, dataset.OpAdd, nil)
		if !changed || got != "SELECT DISTINCT country FROM singer" {
			t.Errorf("%q: got %q", fb, got)
		}
	}
	// Already distinct: no change.
	if _, changed := repair(t, "SELECT DISTINCT country FROM singer",
		"remove the duplicate entries", dataset.OpAdd, nil); changed {
		t.Error("distinct applied twice")
	}
}

func TestRepairNaiveOpMisfiresOnAmbiguousText(t *testing.T) {
	// Treated as a Remove (the naive classification), the dedup request
	// finds nothing to remove — the mechanism behind the routing gap.
	_, changed := repair(t, "SELECT country FROM singer",
		"remove the duplicate entries", dataset.OpRemove, nil)
	if changed {
		t.Error("Remove-typed dedup request should fail to apply")
	}
}

func TestRepairRemoveColumn(t *testing.T) {
	got, changed := repair(t,
		"SELECT name, description FROM singer",
		"do not give the description", dataset.OpRemove, nil)
	if !changed || got != "SELECT name FROM singer" {
		t.Errorf("got %q", got)
	}
	// Refuses to empty the select list.
	if _, changed := repair(t, "SELECT description FROM singer",
		"do not give the description", dataset.OpRemove, nil); changed {
		t.Error("must not remove the last projection")
	}
}

func TestRepairRemoveFilter(t *testing.T) {
	got, changed := repair(t,
		"SELECT name FROM singer WHERE country = 'France' AND age = 30",
		"drop the condition on age", dataset.OpRemove, nil)
	if !changed || got != "SELECT name FROM singer WHERE country = 'France'" {
		t.Errorf("got %q", got)
	}
	got, _ = repair(t,
		"SELECT name FROM singer WHERE age = 30",
		"drop the condition on age", dataset.OpRemove, nil)
	if got != "SELECT name FROM singer" {
		t.Errorf("sole filter should drop the WHERE entirely: %q", got)
	}
}

func TestRepairAlsoShowAndLimit(t *testing.T) {
	got, _ := repair(t, "SELECT name FROM singer",
		"also show the age", dataset.OpAdd, nil)
	if got != "SELECT name, age FROM singer" {
		t.Errorf("also-show: %q", got)
	}
	got, _ = repair(t, "SELECT name FROM singer",
		"only show the top 5", dataset.OpAdd, nil)
	if got != "SELECT name FROM singer LIMIT 5" {
		t.Errorf("limit: %q", got)
	}
}

func TestRepairVagueFeedbackUnchanged(t *testing.T) {
	sql := "SELECT name FROM singer"
	for _, op := range []dataset.Op{dataset.OpAdd, dataset.OpRemove, dataset.OpEdit} {
		got, changed := repair(t, sql, "hmm, that is not what I was looking for", op, nil)
		if changed || got != sql {
			t.Errorf("vague feedback changed SQL under %v: %q", op, got)
		}
	}
}

func TestRepairUnparseableSQLUnchanged(t *testing.T) {
	got, changed := repair(t, "NOT SQL", "we are in 2024", dataset.OpEdit, nil)
	if changed || got != "NOT SQL" {
		t.Error("unparseable input must pass through")
	}
}

func TestRepairUnknownPhrasesUnchanged(t *testing.T) {
	sql := "SELECT name FROM singer"
	got, changed := repair(t, sql,
		"provide the flux capacitance instead of the warp factor", dataset.OpEdit, nil)
	if changed || got != sql {
		t.Errorf("unresolvable phrases must not edit: %q", got)
	}
}

func TestGenerateFallback(t *testing.T) {
	sql, ok := Generate(lex(), "How many singers are there?")
	if !ok || sql != "SELECT COUNT(*) FROM singer" {
		t.Errorf("count: %q, %v", sql, ok)
	}
	sql, ok = Generate(lex(), "List the song name of all singers.")
	if !ok || sql != "SELECT song_name FROM singer" {
		t.Errorf("list: %q, %v", sql, ok)
	}
	if _, ok := Generate(lex(), "what is the meaning of life"); ok {
		t.Error("nonsense should not generate")
	}
}

func TestRepairTableSwapReachesSubqueries(t *testing.T) {
	got, changed := repair(t,
		"SELECT name FROM band WHERE band_id IN (SELECT band_id FROM band)",
		"I meant the singers, not the bands", dataset.OpEdit, nil)
	if !changed {
		t.Fatal("no change")
	}
	if strings.Contains(got, "band ") || strings.HasSuffix(got, "band)") {
		t.Errorf("subquery table not swapped: %q", got)
	}
}

func TestRepairAddOrderByUnknownColumn(t *testing.T) {
	_, changed := repair(t, "SELECT name FROM singer",
		"sort the results by warp factor in ascending order", dataset.OpAdd, nil)
	if changed {
		t.Error("unknown sort key must not change the query")
	}
}

func TestRepairShouldBeNotForm(t *testing.T) {
	got, changed := repair(t,
		"SELECT name FROM singer WHERE country IN ('France', 'Spain')",
		"the country should be 'Japan', not 'Spain'", dataset.OpEdit, nil)
	if !changed || got != "SELECT name FROM singer WHERE country IN ('France', 'Japan')" {
		t.Errorf("IN-list member edit: %q (%v)", got, changed)
	}
	got, changed = repair(t,
		"SELECT name FROM singer WHERE name LIKE 'A%'",
		"the name should be 'B%', not 'A%'", dataset.OpEdit, nil)
	if !changed || got != "SELECT name FROM singer WHERE name LIKE 'B%'" {
		t.Errorf("LIKE pattern edit: %q (%v)", got, changed)
	}
}

func TestRepairShouldBeNotFallsBackToComparison(t *testing.T) {
	// The stated old value does not appear literally; fall back to the
	// named column's comparison.
	got, changed := repair(t,
		"SELECT name FROM singer WHERE country = 'Espagne'",
		"the country should be 'France', not 'Spain'", dataset.OpEdit, nil)
	if !changed || got != "SELECT name FROM singer WHERE country = 'France'" {
		t.Errorf("fallback edit: %q (%v)", got, changed)
	}
}

func TestRepairNonASCIIFeedbackDoesNotPanic(t *testing.T) {
	// Regression for the fuzz finding: Unicode case mapping must not break
	// capture offsets.
	sql := "SELECT name FROM singer"
	got, changed := repair(t, sql, "the \xfd should Be 0", dataset.OpEdit, nil)
	if changed && got == "" {
		t.Error("bad output")
	}
	got, changed = repair(t, sql, "the Straße should be 'München'", dataset.OpEdit, nil)
	_ = got
	_ = changed
}
