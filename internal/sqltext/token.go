// Package sqltext tokenizes SQL source text.
//
// The lexer covers the SQL dialect used throughout this repository: the
// SELECT query surface needed by the SPIDER-like and Experience-Platform
// benchmarks, plus CREATE TABLE and INSERT for loading fixture data. Token
// positions are byte offsets into the original text so that higher layers
// (e.g. feedback highlights, see internal/feedback) can map user-selected
// spans back to query clauses.
package sqltext

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. Keywords are folded into KindKeyword with the canonical
// upper-case text stored in Token.Text; punctuation gets one kind each so the
// parser can switch on Kind directly.
const (
	KindEOF Kind = iota
	KindIdent
	KindKeyword
	KindNumber
	KindString
	KindComma
	KindDot
	KindLParen
	KindRParen
	KindStar
	KindEq
	KindNeq
	KindLt
	KindLte
	KindGt
	KindGte
	KindPlus
	KindMinus
	KindSlash
	KindPercent
	KindSemicolon
)

var kindNames = map[Kind]string{
	KindEOF:       "EOF",
	KindIdent:     "identifier",
	KindKeyword:   "keyword",
	KindNumber:    "number",
	KindString:    "string",
	KindComma:     ",",
	KindDot:       ".",
	KindLParen:    "(",
	KindRParen:    ")",
	KindStar:      "*",
	KindEq:        "=",
	KindNeq:       "!=",
	KindLt:        "<",
	KindLte:       "<=",
	KindGt:        ">",
	KindGte:       ">=",
	KindPlus:      "+",
	KindMinus:     "-",
	KindSlash:     "/",
	KindPercent:   "%",
	KindSemicolon: ";",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is a single lexical unit.
type Token struct {
	Kind Kind
	// Text is the token text. Keywords are canonicalized to upper case;
	// identifiers and literals keep their original spelling (string
	// literals are unquoted and unescaped).
	Text string
	// Pos and End delimit the token's byte range in the source.
	Pos, End int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case KindEOF:
		return "end of input"
	case KindIdent, KindKeyword, KindNumber:
		return fmt.Sprintf("%q", t.Text)
	case KindString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

// keywords is the set of reserved words recognized by the lexer. Anything
// else alphabetic is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "AS": true, "DISTINCT": true, "ALL": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "NULL": true, "JOIN": true, "INNER": true,
	"LEFT": true, "RIGHT": true, "OUTER": true, "CROSS": true, "ON": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "EXISTS": true,
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"FOREIGN": true, "REFERENCES": true, "INSERT": true, "INTO": true,
	"VALUES": true, "COUNT": true, "SUM": true, "AVG": true, "MIN": true,
	"MAX": true, "TRUE": true, "FALSE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "TEXT": true, "INT": true,
	"INTEGER": true, "REAL": true, "FLOAT": true, "BOOL": true,
	"BOOLEAN": true, "VARCHAR": true, "DATE": true,
}

// IsKeyword reports whether the upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[word] }
