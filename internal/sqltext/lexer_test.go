package sqltext

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasicSelect(t *testing.T) {
	toks, err := Tokenize("SELECT name, age FROM singer WHERE age >= 21")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind Kind
		text string
	}{
		{KindKeyword, "SELECT"},
		{KindIdent, "name"},
		{KindComma, ","},
		{KindIdent, "age"},
		{KindKeyword, "FROM"},
		{KindIdent, "singer"},
		{KindKeyword, "WHERE"},
		{KindIdent, "age"},
		{KindGte, ">="},
		{KindNumber, "21"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select From WhErE")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind != KindKeyword {
			t.Errorf("%q lexed as %v, want keyword", tok.Text, tok.Kind)
		}
	}
	if toks[0].Text != "SELECT" || toks[1].Text != "FROM" || toks[2].Text != "WHERE" {
		t.Errorf("keywords not canonicalized: %v", toks)
	}
}

func TestStringLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"'hello'", "hello"},
		{"''", ""},
		{"'it''s'", "it's"},
		{"'2023-01-01'", "2023-01-01"},
	}
	for _, tc := range tests {
		toks, err := Tokenize(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != KindString || toks[0].Text != tc.want {
			t.Errorf("%s: got %v, want string %q", tc.src, toks, tc.want)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("SELECT 'oops"); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"42", "42"},
		{"3.14", "3.14"},
		{"0", "0"},
		{"100.5", "100.5"},
	}
	for _, tc := range tests {
		toks, err := Tokenize(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if len(toks) != 1 || toks[0].Kind != KindNumber || toks[0].Text != tc.want {
			t.Errorf("%s: got %v", tc.src, toks)
		}
	}
}

func TestMalformedNumber(t *testing.T) {
	if _, err := Tokenize("12abc"); err == nil {
		t.Fatal("expected error for malformed number")
	}
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("= != <> < <= > >= + - * / %")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KindEq, KindNeq, KindNeq, KindLt, KindLte, KindGt, KindGte,
		KindPlus, KindMinus, KindStar, KindSlash, KindPercent}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLineComments(t *testing.T) {
	toks, err := Tokenize("SELECT 1 -- the answer\n, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("comment not skipped: %v", toks)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	for _, src := range []string{`"order"`, "`order`"} {
		toks, err := Tokenize(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != KindIdent || toks[0].Text != "order" {
			t.Errorf("%s: got %v", src, toks)
		}
	}
}

func TestTokenPositions(t *testing.T) {
	src := "SELECT name"
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[0].End != 6 {
		t.Errorf("SELECT span: got [%d,%d)", toks[0].Pos, toks[0].End)
	}
	if toks[1].Pos != 7 || toks[1].End != 11 {
		t.Errorf("name span: got [%d,%d)", toks[1].Pos, toks[1].End)
	}
	if src[toks[1].Pos:toks[1].End] != "name" {
		t.Errorf("span does not slice back to source")
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	_, err := Tokenize("SELECT @x")
	if err == nil {
		t.Fatal("expected error for '@'")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if le.Pos != 7 {
		t.Errorf("error position %d, want 7", le.Pos)
	}
}

func TestEOFToken(t *testing.T) {
	lx := New("  ")
	tok, err := lx.Next()
	if err != nil {
		t.Fatal(err)
	}
	if tok.Kind != KindEOF {
		t.Errorf("got %v, want EOF", tok.Kind)
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("SELECT") {
		t.Error("SELECT should be a keyword")
	}
	if IsKeyword("singer") {
		t.Error("singer should not be a keyword")
	}
}

func TestKindAndTokenStrings(t *testing.T) {
	if KindEOF.String() != "EOF" || KindComma.String() != "," {
		t.Error("kind strings")
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind should still render")
	}
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: KindEOF}, "end of input"},
		{Token{Kind: KindIdent, Text: "name"}, `"name"`},
		{Token{Kind: KindString, Text: "x"}, "'x'"},
		{Token{Kind: KindComma, Text: ","}, `","`},
	}
	for _, tc := range cases {
		if got := tc.tok.String(); got != tc.want {
			t.Errorf("token string: got %q, want %q", got, tc.want)
		}
	}
}

func TestLexerBangAlone(t *testing.T) {
	if _, err := Tokenize("a ! b"); err == nil {
		t.Error("lone '!' should error")
	}
}

func TestUnterminatedQuotedIdent(t *testing.T) {
	if _, err := Tokenize(`"oops`); err == nil {
		t.Error("unterminated quoted identifier should error")
	}
}
